module adminrefine

go 1.24
