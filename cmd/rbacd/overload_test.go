package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/cli"
	"adminrefine/internal/command"
	"adminrefine/internal/server"
	"adminrefine/internal/workload"
)

// TestOverloadDegradationEndToEnd drives the degradation contract against a
// real rbacd process with deliberately tiny admission limits: a steady phase
// sets the latency yardstick, then a storm (3x the rate plus greedy
// closed-loop clients) saturates both classes. The contract under test:
// excess load sheds with 429 (reads) / 503 (writes) + Retry-After and never
// hard errors, admitted latency stays bounded, observability endpoints stay
// ungated, the server's shed counters reconcile exactly with what clients
// saw, no acknowledged write is lost, and SIGTERM still drains cleanly.
func TestOverloadDegradationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process overload smoke")
	}
	mix := workload.DefaultServeMix(11)
	mix.Tenants = 4
	mix.Roles, mix.Users = 16, 32
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)

	prim := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-sync", "-compact-every", "-1",
		"-max-inflight-reads", "1", "-read-queue", "0",
		"-max-inflight-writes", "1", "-write-queue", "2",
		"-max-request-time", "2s")
	for i := 0; i < mix.Tenants; i++ {
		prim.putPolicy(t, g.TenantName(i), g.Policy(i))
	}
	// The write flood gets its own tenant so its grants never collide with
	// the harness's deterministic grant sequence (a duplicate grant is a
	// "nochange" outcome — an op error, not a shed).
	prim.putPolicy(t, "flood", g.Policy(0))

	target := cli.NewHTTPTarget(prim.base)
	const steadyRate, stormRate = 150.0, 450.0
	phase := 2 * time.Second
	steadyN := int(steadyRate*phase.Seconds()) + 8
	stormN := int(stormRate*phase.Seconds()) + 8
	slab := workload.GenServeOps(mix, steadyN+stormN)

	steady, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate: steadyRate, Duration: phase, Workers: 8,
	}, slab[:steadyN], target)
	if err != nil {
		t.Fatal(err)
	}
	if steady.Completed == 0 || steady.Errors != 0 || steady.Stale != 0 {
		t.Fatalf("steady phase not clean: %d completed, %d errors, %d stale", steady.Completed, steady.Errors, steady.Stale)
	}
	t.Logf("steady: %d completed, %d shed", steady.Completed, steady.Shed)
	steady429, steady503 := target.ShedCounts()

	// The storm: the open-loop harness at 3x the steady rate measures what a
	// well-behaved client experiences while two greedy clients run — a
	// parker pinning the single read slot (a read-your-writes authorize
	// against the next unborn generation holds its admission slot for the
	// whole generation wait) and a closed-loop write flood against
	// MaxInFlight 1 + queue 2.
	stop := make(chan struct{})
	var hammers sync.WaitGroup
	hammers.Add(1)
	go func() { // parker
		defer hammers.Done()
		op := workload.ServeOp{Kind: workload.OpAuthorize, Tenant: g.TenantName(0),
			Cmds: []command.Command{workload.ChurnGrant(0, mix.Users, mix.Roles)}}
		var minGen uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen, err := target.Do(&op, minGen)
			switch {
			case err == nil:
				minGen = gen + 1
			case errors.Is(err, workload.ErrShed):
				time.Sleep(time.Millisecond)
			default:
				minGen = 0
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for w := 0; w < 6; w++ {
		hammers.Add(1)
		go func(w int) { // write flood
			defer hammers.Done()
			for i := w; ; i += 6 {
				select {
				case <-stop:
					return
				default:
				}
				op := workload.ServeOp{Kind: workload.OpSubmit, Tenant: "flood",
					Cmds: []command.Command{workload.ChurnGrant(i%(mix.Users*mix.Roles), mix.Users, mix.Roles)}}
				target.Do(&op, 0) // sheds land in the target's counters; outcomes discarded
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// While the storm saturates both classes, observability must stay
	// ungated and a shed read must carry the contract's status line.
	var extra429, extra503 uint64
	stormDone := make(chan *workload.OpenLoopResult, 1)
	go func() {
		res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
			Rate: stormRate, Duration: phase, Workers: 8,
		}, slab[steadyN:], target)
		if err != nil {
			t.Error(err)
		}
		stormDone <- res
	}()
	time.Sleep(300 * time.Millisecond)
	for _, path := range []string{"/healthz", "/v1/tenants/" + g.TenantName(0) + "/stats"} {
		resp, err := http.Get(prim.base + path)
		if err != nil {
			t.Fatalf("%s during storm: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during storm: status %d — observability must never be gated", path, resp.StatusCode)
		}
	}
	if ra := pollFor429(t, prim.base, g.TenantName(0), mix); ra == "" {
		t.Fatal("shed read answered 429 without Retry-After")
	}
	extra429++

	storm := <-stormDone
	close(stop)
	hammers.Wait()
	if storm == nil {
		t.FailNow()
	}
	if storm.Errors != 0 {
		t.Fatalf("%d admitted ops failed during the storm (%d stale) — excess load must shed 429/503, not error", storm.Errors, storm.Stale)
	}
	if storm.Shed == 0 {
		t.Fatal("storm shed nothing from the harness — admission limits are not engaging")
	}
	after429, after503 := target.ShedCounts()
	if after429 == steady429 {
		t.Fatal("storm produced no 429s — reads are not shedding")
	}
	if after503 == steady503 {
		t.Fatal("storm produced no 503s — the write path is not shedding")
	}
	t.Logf("storm: %d completed, %d shed by harness (429 %d / 503 %d incl. hammers)",
		storm.Completed, storm.Shed, after429-steady429, after503-steady503)

	// Admitted latency bounded: shedding, not collapsing. Under the race
	// detector every service time is multiplied and the greedy clients
	// contend for this machine's cores, so the bound is held against the
	// 2s request budget rather than a healthy-machine yardstick.
	mult, floor := time.Duration(5), 500*time.Millisecond
	if raceEnabled {
		mult, floor = 10, 1500*time.Millisecond
	}
	for kind, sks := range steady.Kinds {
		admitted := sks.Count - sks.Shed
		oks := storm.Kinds[kind]
		if admitted == 0 || oks == nil || oks.Count == oks.Shed {
			continue
		}
		steadyP99 := time.Duration(sks.Hist.Quantile(0.99))
		bound := mult * steadyP99
		if bound < floor {
			bound = floor
		}
		stormP99 := time.Duration(oks.Hist.Quantile(0.99))
		if stormP99 > bound {
			t.Errorf("%s admitted p99 %v under storm exceeds bound %v (steady %v)", kind, stormP99, bound, steadyP99)
		}
	}

	// A client-tightened deadline on a read that must wait (a far-future
	// generation) is cut fast with 503 + Retry-After, not held to the
	// server's 2s budget.
	cutStart := time.Now()
	status, ra := deadlineProbe(t, prim.base, g.TenantName(0), mix, "50")
	if status != http.StatusServiceUnavailable || ra == "" {
		t.Fatalf("deadline-cut generation wait: status %d Retry-After %q, want 503 with Retry-After", status, ra)
	}
	if cut := time.Since(cutStart); cut > time.Second {
		t.Fatalf("50ms client deadline took %v to cut", cut)
	}
	extra503++

	// Zero acknowledged writes lost: every tenant still answers at its last
	// acked generation (retrying through the storm's draining tail).
	audited := 0
	for ti := range storm.LastAcked {
		gen := storm.LastAcked[ti]
		if sg := steady.LastAcked[ti]; sg > gen {
			gen = sg
		}
		if gen == 0 {
			continue
		}
		op := workload.ServeOp{Kind: workload.OpAuthorize, Tenant: g.TenantName(ti),
			Cmds: []command.Command{workload.ChurnGrant(0, mix.Users, mix.Roles)}}
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			if _, lastErr = target.Do(&op, gen); lastErr == nil {
				break
			}
			if !errors.Is(lastErr, workload.ErrShed) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if lastErr != nil {
			t.Fatalf("tenant %s lost acked generation %d: %v", op.Tenant, gen, lastErr)
		}
		audited++
	}
	if audited == 0 {
		t.Fatal("no tenant acknowledged a write — the storm never exercised the write path")
	}

	// The server's shed accounting reconciles exactly with what clients saw:
	// every request that could shed went through the counted target or was
	// tallied here by hand.
	total429, total503 := target.ShedCounts()
	total429 += extra429
	total503 += extra503
	var health struct {
		Overload map[string]any `json:"overload"`
	}
	resp, err := http.Get(prim.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var serverShed uint64
	for _, k := range []string{"shed_read", "shed_write", "shed_deadline", "breaker_fast_fail"} {
		if v, ok := health.Overload[k].(float64); ok {
			serverShed += uint64(v)
		}
	}
	if want := total429 + total503; serverShed != want {
		t.Fatalf("server shed counters total %d, clients observed %d (429 %d + 503 %d)", serverShed, want, total429, total503)
	}
	t.Logf("reconciled: server shed %d == client 429 %d + 503 %d; %d tenants' acked writes verified", serverShed, total429, total503, audited)

	// And the saturated node still drains cleanly on SIGTERM.
	prim.terminate(t)
}

// pollFor429 issues authorize reads until one sheds with 429, returning its
// Retry-After header. The parker holds the single read slot for a commit
// interval at a time, so a shed arrives within a few probes. The shed body
// must be the unified envelope with the overloaded code — clients dispatch
// on it, not on prose.
func pollFor429(t *testing.T, base, tenantName string, mix workload.ServeMix) string {
	t.Helper()
	body := authorizeBody(t, mix)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Post(base+"/v1/tenants/"+tenantName+"/authorize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if e := api.Decode(resp.StatusCode, raw); e.Code != api.CodeOverloaded {
				t.Fatalf("shed read code %q, want %q (body %s)", e.Code, api.CodeOverloaded, raw)
			}
			return resp.Header.Get("Retry-After")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no read shed 429 while the parker held the read slot")
	return ""
}

// deadlineProbe authorizes against a far-future generation under a client
// X-Request-Deadline, returning the status and Retry-After it got. A non-2xx
// answer must carry the deadline code in the unified envelope.
func deadlineProbe(t *testing.T, base, tenantName string, mix workload.ServeMix, budget string) (int, string) {
	t.Helper()
	body := authorizeBody(t, mix, 1<<40)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/tenants/"+tenantName+"/authorize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.HeaderRequestDeadline, budget)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if e := api.Decode(resp.StatusCode, raw); e.Code != api.CodeDeadline {
			t.Fatalf("deadline-cut code %q, want %q (body %s)", e.Code, api.CodeDeadline, raw)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// authorizeBody renders a one-command authorize request, with an optional
// min_generation.
func authorizeBody(t *testing.T, mix workload.ServeMix, minGen ...uint64) string {
	t.Helper()
	wc, err := server.EncodeCommand(workload.ChurnGrant(0, mix.Users, mix.Roles))
	if err != nil {
		t.Fatal(err)
	}
	req := server.BatchRequest{Commands: []server.WireCommand{wc}}
	if len(minGen) > 0 {
		req.MinGeneration = minGen[0]
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestFollowerBreakerFastFailsWhenUpstreamDies proves the daemon-level
// breaker wiring: one breaker is shared between the follower's pull client
// and the server's write-forwarding path, so after the primary dies hard
// the follower stops redirecting writes at the corpse (307) and answers
// 503 + Retry-After immediately, while its reads keep serving.
func TestFollowerBreakerFastFailsWhenUpstreamDies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process breaker smoke")
	}
	mix := workload.DefaultServeMix(13)
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)
	prim := startDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir())
	prim.putPolicy(t, "acme", g.Policy(0))
	fol := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-role", "follower", "-upstream", prim.base)

	// A write through the primary, then a follower read chasing its token:
	// the follower's pull loop for the tenant is now live — the breaker's
	// failure source once the upstream dies.
	_, gen := prim.submitGen(t, "acme", workload.ChurnGrant(0, mix.Users, mix.Roles))
	waitForGeneration(t, fol, "acme", gen)

	prim.kill(t)

	// The pull loop's consecutive failures trip the breaker within a few
	// backoff rounds; once open, a forwarded write fast-fails instead of
	// redirecting. Before the trip we see 307s — poll through them.
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	body := authorizeBody(t, mix)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened: follower still redirecting writes at a dead primary")
		}
		resp, err := noRedirect.Post(fol.base+"/v1/tenants/acme/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("breaker fast-fail 503 without Retry-After")
			}
			if e := api.Decode(resp.StatusCode, raw); e.Code != api.CodeUnavailable || e.Node == "" {
				t.Fatalf("breaker fast-fail envelope %+v, want %q with the dead upstream", e, api.CodeUnavailable)
			}
			break
		}
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("forwarded write: status %d, want 307 (breaker closed) or 503 (open)", resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Reads keep serving replicated state, and healthz shows the trip.
	resp, err := http.Post(fol.base+"/v1/tenants/acme/authorize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read after breaker trip: status %d", resp.StatusCode)
	}
	var health struct {
		Overload struct {
			Breaker struct {
				State string  `json:"state"`
				Trips float64 `json:"trips"`
			} `json:"breaker"`
		} `json:"overload"`
	}
	hresp, err := http.Get(fol.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Overload.Breaker.State == "closed" || health.Overload.Breaker.Trips == 0 {
		t.Fatalf("healthz breaker block does not show the trip: %+v", health.Overload.Breaker)
	}
}
