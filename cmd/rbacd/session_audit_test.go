package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/server"
	"adminrefine/internal/storage"
)

// sessionFixture is Figure 1 plus eve (single-path nurse) and a root
// administrator holding the strict grant/revoke privileges over eve's nurse
// assignment, so the test can flip it through the transition function.
func sessionFixture() *policy.Policy {
	p := policy.Figure1()
	p.Assign("eve", policy.RoleNurse)
	p.Assign("root", "admins")
	for _, priv := range []model.Privilege{
		model.Grant(model.User("eve"), model.Role(policy.RoleNurse)),
		model.Revoke(model.User("eve"), model.Role(policy.RoleNurse)),
	} {
		if _, err := p.GrantPrivilege("admins", priv); err != nil {
			panic(err)
		}
	}
	return p
}

// createSession creates a session over HTTP, honouring a min_generation
// token so role validation runs against fresh-enough state.
func (d *daemon) createSession(t *testing.T, tenant, user string, roles []string, minGen uint64) server.SessionResponse {
	t.Helper()
	var out struct {
		Results server.SessionResponse `json:"results"`
	}
	d.post(t, "/v1/tenants/"+tenant+"/sessions",
		map[string]any{"user": user, "activate": roles, "min_generation": minGen}, &out)
	return out.Results
}

// checkMin runs a batched access check with a min_generation token,
// returning the allowed bits, the generation served at, and the status.
func (d *daemon) checkMin(t *testing.T, tenant string, sid uint64, minGen uint64, queries []server.CheckQuery) ([]bool, uint64, int) {
	t.Helper()
	data, err := json.Marshal(map[string]any{"session": sid, "checks": queries, "min_generation": minGen})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/tenants/"+tenant+"/check", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results    []server.CheckResult `json:"results"`
		Generation uint64               `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := make([]bool, len(out.Results))
	for i, r := range out.Results {
		got[i] = r.Allowed
	}
	return got, out.Generation, resp.StatusCode
}

// audit fetches the tenant's audit trail.
func (d *daemon) audit(t *testing.T, tenant string) (records []storage.Record, total uint64) {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/tenants/" + tenant + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET audit: status %d", resp.StatusCode)
	}
	var out struct {
		Records []storage.Record `json:"records"`
		Total   uint64           `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Records, out.Total
}

// TestSessionAuditEndToEnd is the acceptance test of the dissolved monitor:
// sessions and access checks served per tenant on primary and follower
// alike, check honouring min_generation exactly like authorize (a follower
// never serves a verdict staler than the token), and the audit trail
// surviving SIGKILL+restart on the primary while streaming to the follower.
func TestSessionAuditEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	primDir, folDir := t.TempDir(), t.TempDir()
	primArgs := []string{"-addr", "127.0.0.1:0", "-data", primDir, "-mode", "refined"}
	prim := startDaemon(t, primArgs...)
	fol := startDaemon(t, "-addr", "127.0.0.1:0", "-data", folDir, "-mode", "refined",
		"-role", "follower", "-upstream", prim.base, "-poll-wait", "250ms")

	prim.putPolicy(t, "hosp", sessionFixture())

	readT1 := []server.CheckQuery{{Action: "read", Object: "t1"}}

	// Sessions are node-local: create one on each node for the same tenant.
	psess := prim.createSession(t, "hosp", "eve", []string{policy.RoleNurse}, 0)
	fsess := fol.createSession(t, "hosp", "eve", []string{policy.RoleNurse}, 0)
	for _, d := range []struct {
		name string
		d    *daemon
		sid  uint64
	}{{"primary", prim, psess.Session}, {"follower", fol, fsess.Session}} {
		got, _, code := d.d.checkMin(t, "hosp", d.sid, 0, readT1)
		if code != http.StatusOK || !got[0] {
			t.Fatalf("%s: initial check = %v (status %d), want allowed", d.name, got, code)
		}
	}
	// A primary session id means nothing on the follower beyond coincidence;
	// an id neither node issued is 404 (node-local state).
	if _, _, code := fol.checkMin(t, "hosp", 9999, 0, readT1); code != http.StatusNotFound {
		t.Fatalf("unknown session on follower: status %d, want 404", code)
	}

	// Flip eve's nurse assignment through the transition function and chase
	// each write's generation token with a follower check: the verdict at
	// min_generation=token must reflect the write, never a staler state.
	edge := func(op func(string, model.Vertex, model.Vertex) command.Command) command.Command {
		return op("root", model.User("eve"), model.Role(policy.RoleNurse))
	}
	applied := 0
	for i := 0; i < 6; i++ {
		var cmd command.Command
		var want bool
		if i%2 == 0 {
			cmd, want = edge(command.Revoke), false
		} else {
			cmd, want = edge(command.Grant), true
		}
		res, gen := prim.submitGen(t, "hosp", cmd)
		if res[0].Outcome != "applied" {
			t.Fatalf("flip %d: %+v", i, res)
		}
		applied++
		got, servedGen, code := fol.checkMin(t, "hosp", fsess.Session, gen, readT1)
		if code != http.StatusOK {
			t.Fatalf("flip %d: follower check with token %d: status %d", i, gen, code)
		}
		if servedGen < gen {
			t.Fatalf("flip %d: follower served generation %d below token %d", i, servedGen, gen)
		}
		if got[0] != want {
			t.Fatalf("flip %d: follower check at generation %d = %v, want %v (stale verdict)", i, gen, got[0], want)
		}
	}

	// An unreachable token 409s after the bounded wait — never a stale 200.
	if _, _, code := fol.checkMin(t, "hosp", fsess.Session, 1000, readT1); code != http.StatusConflict {
		t.Fatalf("unreachable min_generation check: status %d, want 409", code)
	}

	// A denied submit audits with its outcome on the primary.
	if res, _ := prim.submitGen(t, "hosp", command.Grant("nobody", model.User("eve"), model.Role(policy.RoleStaff))); res[0].Outcome != "denied" {
		t.Fatalf("denied probe: %+v", res)
	}

	precs, ptotal := prim.audit(t, "hosp")
	if ptotal != uint64(applied)+1 || len(precs) != applied+1 {
		t.Fatalf("primary audit: %d records, total %d, want %d applied + 1 denied", len(precs), ptotal, applied)
	}
	denials := 0
	for _, r := range precs {
		if !r.IsAudit() {
			t.Fatalf("non-audit record on the audit endpoint: %+v", r)
		}
		if r.Outcome == "denied" {
			denials++
		}
	}
	if denials != 1 {
		t.Fatalf("primary audit denials = %d, want 1", denials)
	}

	// The applied-command audit trail is visible on the follower (re-minted
	// from the replicated steps as they replayed).
	waitForGeneration(t, fol, "hosp", uint64(applied))
	frecs, _ := fol.audit(t, "hosp")
	fapplied := 0
	for _, r := range frecs {
		if r.IsAudit() && r.Outcome == "applied" {
			fapplied++
		}
	}
	if fapplied != applied {
		t.Fatalf("follower audit: %d applied records, want %d", fapplied, applied)
	}

	// A follower that joins late takes the snapshot-bootstrap path (no steps
	// left to replay) and must adopt the primary's audit window wholesale —
	// the denial record included, which step re-minting alone cannot ship.
	late := startDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir(), "-mode", "refined",
		"-role", "follower", "-upstream", prim.base, "-poll-wait", "250ms")
	lrecs, ltotal := late.audit(t, "hosp")
	if ltotal != ptotal || len(lrecs) != len(precs) {
		t.Fatalf("late follower audit: %d records total %d, want %d/%d", len(lrecs), ltotal, len(precs), ptotal)
	}
	for i := range lrecs {
		if lrecs[i].Outcome != precs[i].Outcome || lrecs[i].Seq != precs[i].Seq {
			t.Fatalf("late follower audit record %d = %+v, want %+v", i, lrecs[i], precs[i])
		}
	}

	// SIGKILL the primary and restart it on the same directory: the audit
	// trail must replay from the WAL — same records, same outcomes.
	prim.kill(t)
	prim2 := startDaemon(t, primArgs...)
	rrecs, rtotal := prim2.audit(t, "hosp")
	if rtotal != ptotal || len(rrecs) != len(precs) {
		t.Fatalf("post-SIGKILL audit: %d records total %d, want %d/%d", len(rrecs), rtotal, len(precs), ptotal)
	}
	for i := range rrecs {
		if rrecs[i].Outcome != precs[i].Outcome || rrecs[i].Seq != precs[i].Seq || rrecs[i].Actor != precs[i].Actor {
			t.Fatalf("post-SIGKILL audit record %d = %+v, want %+v", i, rrecs[i], precs[i])
		}
	}

	// And sessions really are node-local runtime state: the restarted
	// primary does not know the pre-crash session.
	if _, _, code := prim2.checkMin(t, "hosp", psess.Session, 0, readT1); code != http.StatusNotFound {
		t.Fatalf("pre-crash session survived the restart: status %d, want 404", code)
	}
}
