package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/command"
	"adminrefine/internal/placement"
	"adminrefine/internal/server"
	"adminrefine/internal/workload"
)

// reserveAddr grabs a free 127.0.0.1 port and releases it, so a cluster's
// node addresses can appear in every member's -cluster-seed before any of
// them has started. The tiny reuse race is acceptable in a test.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// clusterHealth is healthz plus the cluster fields the sharding tests read.
type clusterHealth struct {
	Role             string `json:"role"`
	Epoch            uint64 `json:"epoch"`
	NodeID           string `json:"node_id"`
	PlacementVersion uint64 `json:"placement_version"`
}

func (d *daemon) clusterHealth(t *testing.T) clusterHealth {
	t.Helper()
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h clusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// submitRouted submits one command at base, following any redirect the
// routing front answers (bytes.Reader sets GetBody, so the client re-sends
// the body through a 307). It returns the status, the acked generation, and
// the decoded error envelope on non-200.
func submitRouted(t *testing.T, base, name string, cmd command.Command) (int, uint64, *api.Error) {
	t.Helper()
	data, err := json.Marshal(batchOf(t, cmd))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/tenants/"+name+"/submit", "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, 0, &api.Error{Code: api.CodeUnavailable, Message: err.Error()}
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0, api.Decode(resp.StatusCode, raw.Bytes())
	}
	var out struct {
		Results    []server.SubmitResult `json:"results"`
		Generation uint64                `json:"generation"`
	}
	if err := json.Unmarshal(raw.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || (out.Results[0].Outcome != "applied" && out.Results[0].Outcome != "nochange") {
		t.Fatalf("submit %s at %s: unexpected results %+v", name, base, out.Results)
	}
	return resp.StatusCode, out.Generation, nil
}

// retrySubmit drives one command through the fleet until a node acks it,
// tolerating the transients a live cluster emits: fenced migration windows
// (421), stale-map misroutes (421), dead-peer forwards (502/503), and raw
// connection errors while a node is down. Every retry is the SAME command,
// so a duplicate of an already-committed attempt lands as "nochange" and
// does not double-apply.
func retrySubmit(t *testing.T, fleet []*daemon, name string, cmd command.Command) uint64 {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		base := fleet[i%len(fleet)].base
		code, gen, e := submitRouted(t, base, name, cmd)
		if code == http.StatusOK {
			return gen
		}
		switch e.Code {
		case api.CodeFenced, api.CodeMisrouted, api.CodeUnavailable, api.CodeOverloaded, api.CodeDeadline, api.CodeInternal:
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("submit %s at %s: status %d, unretryable envelope %+v", name, base, code, e)
		}
	}
	t.Fatalf("submit %s: no node acked within the retry budget", name)
	return 0
}

// TestClusterShardingChaosEndToEnd is the acceptance test of multi-primary
// sharding: three real rbacd primaries splitting the tenant space by one
// placement map, clients spraying every node (reads follow 307s, writes
// forward server-side), one tenant migrated live under concurrent writes,
// then the SIGKILL of a primary healed by promoting its follower and
// re-pointing the node identity — with zero acknowledged-write loss, a
// byte-identical audit trail for the migrated tenant (ASeq zeroed), and the
// placement version strictly monotone on every survivor.
func TestClusterShardingChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	addrA, addrB, addrC := reserveAddr(t), reserveAddr(t), reserveAddr(t)
	seed := fmt.Sprintf("n1=http://%s,n2=http://%s,n3=http://%s", addrA, addrB, addrC)
	start := func(addr, id string, extra ...string) *daemon {
		args := append([]string{"-addr", addr, "-data", t.TempDir(),
			"-node-id", id, "-cluster-seed", seed}, extra...)
		return startDaemon(t, args...)
	}
	a := start(addrA, "n1")
	b := start(addrB, "n2")
	c := start(addrC, "n3")
	// d is C's follower and shares its placement identity: the promotion
	// target that will BECOME n3 when C dies.
	d := start("127.0.0.1:0", "n3", "-role", "follower", "-upstream", c.base, "-poll-wait", "250ms")

	// An offline copy of the seed map (addresses don't feed the ring) picks
	// tenant names for each owner deterministically.
	seedNodes := []placement.Node{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}
	m, err := placement.New(1, seedNodes)
	if err != nil {
		t.Fatal(err)
	}
	tenantsOf := func(id string, n int) []string {
		var names []string
		for i := 0; len(names) < n && i < 100000; i++ {
			name := fmt.Sprintf("shard%05d", i)
			if o, _ := m.Owner(name); o.ID == id {
				names = append(names, name)
			}
		}
		if len(names) < n {
			t.Fatalf("found only %d tenants for %s", len(names), id)
		}
		return names
	}
	n1Tenants, n2Tenants, n3Tenants := tenantsOf("n1", 2), tenantsOf("n2", 2), tenantsOf("n3", 2)
	all := append(append(append([]string(nil), n1Tenants...), n2Tenants...), n3Tenants...)
	owned := map[string]string{}
	for _, name := range n1Tenants {
		owned[name] = "n1"
	}
	for _, name := range n2Tenants {
		owned[name] = "n2"
	}
	for _, name := range n3Tenants {
		owned[name] = "n3"
	}

	// Provision every tenant through a NON-owner: the PUT must forward
	// server-side and materialise on the owner only.
	fleet := []*daemon{a, b, c}
	for i, name := range all {
		fleet[(i+1)%3].putPolicy(t, name, workload.ChurnPolicy(8, 8))
	}

	// versionWatch asserts the placement version never moves backwards on
	// any watched node — the strict-monotonicity guarantee survivors give.
	lastVersion := map[*daemon]uint64{}
	versionWatch := func(watch ...*daemon) {
		t.Helper()
		for _, n := range watch {
			v := n.clusterHealth(t).PlacementVersion
			if v < lastVersion[n] {
				t.Fatalf("placement version on %s moved backwards: %d after %d", n.base, v, lastVersion[n])
			}
			lastVersion[n] = v
		}
	}
	waitVersion := func(want uint64, watch ...*daemon) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for _, n := range watch {
			for n.clusterHealth(t).PlacementVersion != want {
				if time.Now().After(deadline) {
					t.Fatalf("%s never converged on placement v%d (at v%d)", n.base, want, n.clusterHealth(t).PlacementVersion)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		versionWatch(watch...)
	}

	// Phase 1: routed churn spraying all three primaries. Every write to an
	// n3 tenant is confirmed on D (a min_generation read) before its ack is
	// counted — the semi-sync discipline that makes the zero-loss assertion
	// checkable after C is killed.
	gens := map[string]uint64{} // last acked generation per tenant
	counts := map[string]int{}  // distinct applied grants per tenant
	churn := func(spray []*daemon, confirmOn *daemon, rounds int) {
		t.Helper()
		for r := 0; r < rounds; r++ {
			for i, name := range all {
				gen := retrySubmit(t, []*daemon{spray[(r+i)%len(spray)]}, name, workload.ChurnGrant(counts[name], 8, 8))
				if want := uint64(counts[name] + 1); gen != want {
					t.Fatalf("tenant %s: acked generation %d, want %d (stream not monotone)", name, gen, want)
				}
				counts[name]++
				gens[name] = gen
				if owned[name] == "n3" && confirmOn != nil {
					if _, served, code := confirmOn.authorizeMin(t, name, gen, []command.Command{deniedProbe()}); code != http.StatusOK || served < gen {
						t.Fatalf("confirm %s gen %d on %s: status %d served %d", name, gen, confirmOn.base, code, served)
					}
				}
			}
			versionWatch(spray...)
		}
	}
	churn([]*daemon{a, b, c}, d, 8)

	// Phase 2: live migration under concurrent writes. shard tenant
	// n1Tenants[0] moves n1 → n2 while a hammer keeps submitting through
	// every node; writes that land in the fence window or on a stale map
	// retry until the new owner acks them.
	mig := n1Tenants[0]
	beforeTrail := a.auditTrail(t, mig)
	hammerGens := make(chan uint64, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(hammerGens)
		for i := 0; i < 12; i++ {
			hammerGens <- retrySubmit(t, fleet, mig, workload.ChurnGrant(counts[mig]+i, 8, 8))
		}
	}()
	var mres server.MigrateResponse
	// Drive the migration through a non-owner: it forwards to the source.
	c.post(t, "/v1/cluster/migrate", map[string]any{"tenant": mig, "to": "n2"}, &mres)
	if mres.Owner != "n2" || mres.Version != 2 {
		t.Fatalf("migrate response %+v, want owner n2 at placement v2", mres)
	}
	wg.Wait()
	counts[mig] += 12
	for gen := range hammerGens {
		if gen > gens[mig] {
			gens[mig] = gen
		}
	}
	owned[mig] = "n2"
	waitVersion(2, a, b, c)

	// Every hammered ack survived the flip, and the stream stayed exact:
	// the new owner's generation is precisely the applied count.
	if st := b.stats(t, mig); st.Generation != uint64(counts[mig]) || st.Generation < gens[mig] {
		t.Fatalf("migrated tenant at generation %d on the new owner, want %d (max acked %d)",
			st.Generation, counts[mig], gens[mig])
	}
	// The audit trail moved byte-identically: the pre-migration snapshot is
	// a prefix of the new owner's trail, ASeq zeroed on both sides.
	afterTrail := b.auditTrail(t, mig)
	if len(afterTrail) < len(beforeTrail) {
		t.Fatalf("migrated audit shrank: %d records, had %d", len(afterTrail), len(beforeTrail))
	}
	for i := range beforeTrail {
		want, _ := json.Marshal(beforeTrail[i])
		got, _ := json.Marshal(afterTrail[i])
		if !bytes.Equal(want, got) {
			t.Fatalf("migrated audit record %d diverged:\n  src %s\n  dst %s", i, want, got)
		}
	}

	// Phase 3: more spray churn on the post-migration map, still confirming
	// n3 writes on D.
	churn([]*daemon{a, b, c}, d, 4)

	// Phase 4: SIGKILL primary C mid-stream — no flush, no shutdown hook —
	// promote D in its place (epoch fencing first), and re-point the n3
	// identity at D's address under a placement CAS on a survivor.
	c.kill(t)
	var pr roleChange
	d.post(t, "/v1/cluster/promote", map[string]any{}, &pr)
	if pr.Role != "primary" || pr.Epoch != 1 {
		t.Fatalf("promote D: %+v, want primary at epoch 1", pr)
	}
	// Zero acknowledged-write loss: every confirmed n3 generation is on D.
	for _, name := range n3Tenants {
		st := d.stats(t, name)
		if st.Generation < gens[name] {
			t.Fatalf("tenant %s: promoted node at generation %d, acked %d — acknowledged write lost",
				name, st.Generation, gens[name])
		}
	}
	var push struct {
		Version uint64 `json:"version"`
	}
	a.post(t, "/v1/cluster/nodes", map[string]any{"id": "n3", "addr": d.base, "if_version": 2}, &push)
	if push.Version != 3 {
		t.Fatalf("repoint n3: placement v%d, want 3", push.Version)
	}
	// The re-point gossips to the survivors AND to D (it is n3's address
	// now); D jumps v1 → v3, which is still monotone.
	waitVersion(3, a, b, d)

	// Phase 5: the same streams continue against the healed fleet — n3
	// tenants now answer at D, generations continuing exactly where the
	// dead primary's acks left them.
	churn([]*daemon{a, b, d}, nil, 4)

	// Final topology: every survivor agrees on placement v3, A and B are
	// unfenced primaries at epoch 0, D is the n3 primary at epoch 1.
	for _, n := range []struct {
		d     *daemon
		id    string
		epoch uint64
	}{{a, "n1", 0}, {b, "n2", 0}, {d, "n3", 1}} {
		h := n.d.clusterHealth(t)
		if h.Role != "primary" || h.NodeID != n.id || h.Epoch != n.epoch || h.PlacementVersion != 3 {
			t.Fatalf("final topology: %s = %+v, want primary %s epoch %d placement v3", n.d.base, h, n.id, n.epoch)
		}
	}
	// And every tenant holds exactly its applied count — nothing lost,
	// nothing double-applied, across routing, migration, and failover.
	for _, name := range all {
		st := fleet[0].stats(t, name)
		if st.Generation != uint64(counts[name]) {
			t.Fatalf("tenant %s: final generation %d, want %d", name, st.Generation, counts[name])
		}
	}
}
