package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/replication"
	"adminrefine/internal/server"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// The e2e replication fixture: the churn policy, whose grant stream is
// authorized at every step, plus one always-denied probe.
const churnRoles, churnUsers = 32, 32

func churnGrant(i int) command.Command {
	return workload.ChurnGrant(i, churnUsers, churnRoles)
}

func deniedProbe() command.Command {
	return command.Grant("nobody", model.User("u0001"), model.Role("c0002"))
}

// followerStats is the follower's stats wire shape: tenant stats plus the
// replication block.
type followerStats struct {
	tenant.Stats
	Replication *replication.LagStats `json:"replication"`
}

func (d *daemon) followerStats(t *testing.T, name string) followerStats {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/tenants/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st followerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// submitGen submits commands and returns outcomes plus the generation token.
func (d *daemon) submitGen(t *testing.T, name string, cmds ...command.Command) ([]server.SubmitResult, uint64) {
	t.Helper()
	var out struct {
		Results    []server.SubmitResult `json:"results"`
		Generation uint64                `json:"generation"`
	}
	d.post(t, "/v1/tenants/"+name+"/submit", batchOf(t, cmds...), &out)
	return out.Results, out.Generation
}

// authorizeMin authorizes with a min_generation token, returning the allowed
// bits, the generation served, and the HTTP status.
func (d *daemon) authorizeMin(t *testing.T, name string, minGen uint64, cmds []command.Command) ([]bool, uint64, int) {
	t.Helper()
	req := batchOf(t, cmds...)
	req.MinGeneration = minGen
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/tenants/"+name+"/authorize", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results    []server.AuthorizeResult `json:"results"`
		Generation uint64                   `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := make([]bool, len(out.Results))
	for i, r := range out.Results {
		got[i] = r.Allowed
	}
	return got, out.Generation, resp.StatusCode
}

func waitForGeneration(t *testing.T, d *daemon, name string, min uint64) followerStats {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var st followerStats
	for time.Now().Before(deadline) {
		st = d.followerStats(t, name)
		if st.Generation >= min {
			return st
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("follower stuck at generation %d, want >= %d", st.Generation, min)
	return st
}

// TestReplicationEndToEnd is the acceptance test of the replicated service:
// a primary and a follower process, interleaved writes on the primary, the
// follower serving identical decisions for every generation it acknowledges,
// min_generation read-your-writes (wait or 409, never a stale answer),
// follower SIGKILL → restart → convergence from its local WAL, and reads
// surviving the primary dropping.
func TestReplicationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	primDir, folDir := t.TempDir(), t.TempDir()
	prim := startDaemon(t, "-addr", "127.0.0.1:0", "-data", primDir, "-mode", "refined")
	folArgs := []string{"-addr", "127.0.0.1:0", "-data", folDir, "-mode", "refined",
		"-role", "follower", "-upstream", prim.base, "-poll-wait", "250ms"}
	fol := startDaemon(t, folArgs...)

	prim.putPolicy(t, "acme", workload.ChurnPolicy(churnRoles, churnUsers))

	// Interleaved writes on the primary; every submit returns its token and
	// the follower honours it immediately: read-your-writes per generation.
	var lastGen uint64
	for i := 0; i < 10; i++ {
		res, gen := prim.submitGen(t, "acme", churnGrant(i))
		if res[0].Outcome != "applied" {
			t.Fatalf("submit %d: %+v", i, res)
		}
		if gen != uint64(i+1) {
			t.Fatalf("submit %d: generation token %d", i, gen)
		}
		lastGen = gen

		probes := []command.Command{churnGrant(i + 1), deniedProbe()}
		got, servedGen, code := fol.authorizeMin(t, "acme", gen, probes)
		if code != http.StatusOK {
			t.Fatalf("follower authorize with token %d: status %d", gen, code)
		}
		if servedGen < gen {
			t.Fatalf("follower served generation %d below token %d", servedGen, gen)
		}
		want, _, _ := prim.authorizeMin(t, "acme", 0, probes)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("iteration %d: follower %v, primary %v", i, got, want)
		}
	}

	// An unreachable token 409s with the replica's generation after the
	// bounded wait — never a stale 200.
	if _, _, code := fol.authorizeMin(t, "acme", lastGen+1000, []command.Command{deniedProbe()}); code != http.StatusConflict {
		t.Fatalf("unreachable min_generation: status %d, want 409", code)
	}

	// Writes through the follower transparently redirect to the primary.
	res, gen := fol.submitGen(t, "acme", churnGrant(10))
	if res[0].Outcome != "applied" || gen != lastGen+1 {
		t.Fatalf("redirected write: %+v gen %d", res, gen)
	}
	lastGen = gen

	// Follower stats carry replication telemetry.
	st := waitForGeneration(t, fol, "acme", lastGen)
	if st.Replication == nil || !st.Replication.Healthy {
		t.Fatalf("follower stats replication block: %+v", st.Replication)
	}

	// SIGKILL the follower mid-stream, write more, restart it on the same
	// data directory: it must resume from its local WAL position and
	// converge to the primary's generations.
	fol.kill(t)
	for i := 11; i < 16; i++ {
		if res, _ := prim.submitGen(t, "acme", churnGrant(i)); res[0].Outcome != "applied" {
			t.Fatalf("submit %d while follower down: %+v", i, res)
		}
	}
	fol2 := startDaemon(t, folArgs...)
	st = waitForGeneration(t, fol2, "acme", 16)
	if st.Generation != 16 {
		t.Fatalf("restarted follower at generation %d, want 16", st.Generation)
	}
	// The restart recovered local state (snapshot and/or WAL records): it
	// resumed, it did not re-bootstrap from zero.
	if !st.Recovered.SnapshotLoaded && st.Recovered.Records == 0 {
		t.Fatalf("restarted follower found no local state: %+v", st.Recovered)
	}
	probes := []command.Command{deniedProbe(), churnGrant(3), churnGrant(20)}
	want, _, _ := prim.authorizeMin(t, "acme", 0, probes)
	got, _, code := fol2.authorizeMin(t, "acme", 16, probes)
	if code != http.StatusOK || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-restart decisions: follower %v (status %d), primary %v", got, code, want)
	}

	// Drop the primary: the follower keeps serving reads from its replayed
	// state — stale but available.
	prim.kill(t)
	got, _, code = fol2.authorizeMin(t, "acme", 0, probes)
	if code != http.StatusOK || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("reads with primary down: follower %v (status %d), want %v", got, code, want)
	}
	fol2.terminate(t)
}
