//go:build race

package main

// raceEnabled relaxes timing bounds when the race detector multiplies
// service times (see TestOverloadDegradationEndToEnd).
const raceEnabled = true
