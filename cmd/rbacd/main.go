// Command rbacd is the multi-tenant RBAC authorization daemon: it serves the
// HTTP/JSON API of internal/server over a sharded tenant registry rooted at
// a data directory. Each tenant is an isolated policy with its own WAL and
// snapshot; tenants recover lazily on first touch and survive crashes (kill
// -9 included) by WAL replay.
//
//	rbacd -addr :8270 -data ./rbacd-data -mode refined
//
// Provision a tenant and drive it:
//
//	curl -X PUT  localhost:8270/v1/tenants/acme/policy --data-binary @policy.rpl
//	curl -X POST localhost:8270/v1/tenants/acme/authorize -d '{"commands":[...]}'
//	curl -X POST localhost:8270/v1/tenants/acme/submit    -d '{"commands":[...]}'
//	curl -X POST localhost:8270/v1/tenants/acme/sessions  -d '{"user":"diana","activate":["nurse"]}'
//	curl -X POST localhost:8270/v1/tenants/acme/check     -d '{"session":1,"checks":[{"action":"read","object":"t1"}]}'
//	curl         localhost:8270/v1/tenants/acme/audit
//	curl         localhost:8270/v1/tenants/acme/stats
//	curl         localhost:8270/healthz
//
// A second, binary data plane can listen beside HTTP (-wire-addr :8271):
// the same authorize/check/submit/session operations over persistent framed
// connections with pipelining and server-side batching, sharing admission,
// deadlines, generation tokens and epoch fencing with the HTTP plane (see
// internal/wire and ARCHITECTURE.md).
//
// Sessions (the paper's §2–3 monitor sessions) are node-local runtime
// state; the audit trail is durable in the WAL and replicated. Optional
// separation-of-duty constraints (-constraints rules.json) guard every
// write (SSD) and every session activation (DSD).
//
// Horizontal read fan-out: a primary streams its per-tenant WAL to follower
// processes, which serve authorize/explain/stats from replayed engines and
// answer writes with a 307 redirect to the primary,
//
//	rbacd -addr :8270 -data ./primary-data                           # primary
//	rbacd -addr :8271 -data ./replica-data -role follower \
//	      -upstream http://localhost:8270                            # follower
//
// with read-your-writes via generation tokens: every write response carries
// the tenant's generation, and a read passing it back as min_generation
// either waits (bounded) for the follower to catch up or gets 409 — never a
// stale answer.
//
// Multi-primary sharding: with -node-id and -cluster-seed the daemon joins a
// cluster of primaries that splits the tenant space by a versioned
// consistent-hash placement map (see internal/placement). Any node answers
// any tenant — foreign reads 307 to the owner, foreign writes forward
// transparently — and POST /v1/cluster/migrate moves a tenant live,
//
//	rbacd -addr :8270 -data ./a-data -node-id n1 \
//	      -cluster-seed n1=http://localhost:8270,n2=http://localhost:8271
//	rbacd -addr :8271 -data ./b-data -node-id n2 \
//	      -cluster-seed n1=http://localhost:8270,n2=http://localhost:8271
//
// with the adopted map persisted in the node store, gossiped between nodes,
// and stamped on every response as X-Placement-Version. A follower shares
// its primary's -node-id: it serves that identity's reads and redirects its
// writes upstream, and a promotion re-points the identity's address (POST
// /v1/cluster/nodes) without moving any tenants.
//
// On SIGINT/SIGTERM the daemon drains in-flight requests, compacts every
// resident tenant and exits; on SIGKILL the WAL recovers the state on the
// next start — followers resume pulling from their local WAL position.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/constraints"
	"adminrefine/internal/engine"
	"adminrefine/internal/placement"
	"adminrefine/internal/replication"
	"adminrefine/internal/server"
	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
	wirep "adminrefine/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run parses flags, starts the daemon and blocks until shutdown. It prints
// "rbacd: listening on ADDR" once the listener is bound (with the resolved
// port, so -addr :0 is scriptable — the end-to-end tests depend on it).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbacd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8270", "listen address (host:port; port 0 picks a free port)")
		wireAddr     = fs.String("wire-addr", "", "binary wire-protocol listen address alongside HTTP (host:port; port 0 picks a free port; empty disables)")
		dataDir      = fs.String("data", "rbacd-data", "root data directory; each tenant persists in its own subdirectory")
		mode         = fs.String("mode", "refined", "authorization regime: strict (literal Definition 5) or refined (ordering-based §4.1)")
		shards       = fs.Int("shards", 8, "lock-striped tenant shards")
		maxResident  = fs.Int("max-resident", 0, "max resident tenants per shard, LRU-evicted beyond it (0 = unlimited)")
		compactEvery = fs.Int("compact-every", 1024, "WAL records between tenant compactions (negative disables)")
		sync         = fs.Bool("sync", false, "fsync every WAL append (crash-durable against power loss, slower)")
		cacheSlots   = fs.Int("cache-slots", 0, "decision-cache slots per tenant engine (0 = default, negative disables)")
		role         = fs.String("role", "primary", "replication role: primary (serves writes + WAL stream) or follower (replicated reads, writes redirect upstream)")
		upstream     = fs.String("upstream", "", "primary base URL (required with -role follower), e.g. http://host:8270")
		pollWait     = fs.Duration("poll-wait", 10*time.Second, "follower: long-poll bound per replication pull")
		minGenWait   = fs.Duration("min-gen-wait", 2*time.Second, "bound on how long a min_generation read waits for the replica to catch up before 409")
		autoPromote  = fs.Bool("promote-on-upstream-loss", false, "follower: self-promote to primary after the upstream health probe fails -probe-threshold consecutive times")
		probeEvery   = fs.Duration("probe-interval", time.Second, "follower: upstream health-probe period (with -promote-on-upstream-loss)")
		probeAfter   = fs.Int("probe-threshold", 5, "follower: consecutive failed probes that depose the upstream (with -promote-on-upstream-loss)")
		consPath     = fs.String("constraints", "", `separation-of-duty constraint file (JSON [{"name","kind":"ssd"|"dsd","roles":[...],"n":2},...]); SSD guards every write, DSD guards session activations`)

		// Multi-primary cluster mode: a stable node identity plus a seed node
		// list build the version-1 placement map; restarts recover whatever
		// newer map the node last persisted (the recovered map always wins
		// over the seed — install-if-newer).
		nodeID        = fs.String("node-id", "", "this node's stable placement identity (cluster mode; a follower shares its primary's id)")
		clusterSeed   = fs.String("cluster-seed", "", "comma-separated id=url list seeding the version-1 placement map, e.g. n1=http://a:8270,n2=http://b:8270 (requires -node-id)")
		placementSeed = fs.Uint64("placement-seed", 1, "consistent-hash seed of the placement ring; every node of one cluster must agree")

		// Overload protection: every data-plane request runs under a deadline
		// and an admission slot; saturation sheds 429 (reads) / 503 (writes)
		// with Retry-After instead of queueing unboundedly.
		maxRequestTime = fs.Duration("max-request-time", 10*time.Second, "per-request deadline budget for data-plane requests; clients may tighten it with X-Request-Deadline (0 disables)")
		maxReads       = fs.Int("max-inflight-reads", 256, "concurrently admitted read-class requests (0 = unlimited)")
		readQueue      = fs.Int("read-queue", 0, "reads allowed to wait for a slot beyond -max-inflight-reads; excess sheds 429 on arrival")
		maxWrites      = fs.Int("max-inflight-writes", 64, "concurrently admitted write-class requests (0 = unlimited)")
		writeQueue     = fs.Int("write-queue", 256, "writes allowed to wait for a slot beyond -max-inflight-writes; excess sheds 503 on arrival")
		maxSubmitQueue = fs.Int("max-submit-queue", 1024, "per-tenant commit-group queue hard cap; submits beyond it shed 503 (0 = unlimited)")
		readHeaderTime = fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: slowloris bound on request headers")
		readTimeout    = fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: bound on reading a whole request")
		idleTimeout    = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: keep-alive connection reaper")
		maxHeaderBytes = fs.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var emode engine.Mode
	switch *mode {
	case "strict":
		emode = engine.Strict
	case "refined":
		emode = engine.Refined
	default:
		return fmt.Errorf("rbacd: unknown -mode %q (want strict or refined)", *mode)
	}
	switch *role {
	case "primary":
		if *upstream != "" {
			return fmt.Errorf("rbacd: -upstream is only meaningful with -role follower")
		}
		if *autoPromote {
			return fmt.Errorf("rbacd: -promote-on-upstream-loss is only meaningful with -role follower")
		}
	case "follower":
		if *upstream == "" {
			return fmt.Errorf("rbacd: -role follower requires -upstream")
		}
	default:
		return fmt.Errorf("rbacd: unknown -role %q (want primary or follower)", *role)
	}

	var cons *constraints.Set
	if *consPath != "" {
		data, err := os.ReadFile(*consPath)
		if err != nil {
			return fmt.Errorf("rbacd: read -constraints: %w", err)
		}
		if cons, err = constraints.ParseJSON(data); err != nil {
			return fmt.Errorf("rbacd: %w", err)
		}
	}

	// The node-level store at <data>/.node holds one durable fact: the
	// fencing epoch (a '.'-prefixed name can never collide with a tenant —
	// see tenant.ValidName). Promotion advances it, observing a higher peer
	// epoch adopts it, and a restart recovers it — so a SIGKILLed ex-primary
	// comes back still knowing it was deposed.
	nodeStore, _, _, err := storage.Open(filepath.Join(*dataDir, ".node"), storage.Options{})
	if err != nil {
		return fmt.Errorf("rbacd: open node store: %w", err)
	}
	epoch := replication.NewEpoch(nodeStore.Epoch(), nodeStore.SetEpoch)

	// Cluster mode: recover the node's persisted placement map, overlay the
	// seed map (adopted only when the store held nothing newer), and refuse
	// to start as a cluster node with no map or an identity outside it.
	var placeTable *placement.Table
	if *nodeID != "" || *clusterSeed != "" {
		if *nodeID == "" {
			nodeStore.Close()
			return fmt.Errorf("rbacd: -cluster-seed requires -node-id")
		}
		var recovered *placement.Map
		if data := nodeStore.Placement(); len(data) > 0 {
			if recovered, err = placement.DecodeMap(data); err != nil {
				nodeStore.Close()
				return fmt.Errorf("rbacd: recover placement map: %w", err)
			}
		}
		placeTable = placement.NewTable(recovered, nodeStore.SetPlacement)
		if *clusterSeed != "" {
			nodes, err := parseClusterSeed(*clusterSeed)
			if err != nil {
				nodeStore.Close()
				return err
			}
			seedMap, err := placement.New(*placementSeed, nodes)
			if err != nil {
				nodeStore.Close()
				return fmt.Errorf("rbacd: %w", err)
			}
			if _, err := placeTable.Install(seedMap); err != nil {
				nodeStore.Close()
				return fmt.Errorf("rbacd: persist placement map: %w", err)
			}
		}
		m := placeTable.Current()
		if m == nil {
			nodeStore.Close()
			return fmt.Errorf("rbacd: -node-id %s has no placement map (pass -cluster-seed on first start)", *nodeID)
		}
		if _, ok := m.NodeByID(*nodeID); !ok {
			nodeStore.Close()
			return fmt.Errorf("rbacd: -node-id %s is not in the placement map (version %d)", *nodeID, m.Version)
		}
	}

	reg := tenant.New(tenant.Options{
		Dir:              *dataDir,
		Mode:             emode,
		Shards:           *shards,
		MaxResident:      *maxResident,
		CompactEvery:     *compactEvery,
		Sync:             *sync,
		CacheSlots:       *cacheSlots,
		Constraints:      cons,
		Epoch:            epoch.Current,
		MaxQueuedSubmits: *maxSubmitQueue,
	})

	// One breaker guards the whole upstream relationship: the follower's
	// pull/bootstrap client records its failures, and while open the
	// server's write-forwarding path answers 503 + Retry-After instead of a
	// 307 to a dead primary. Repoint resets it along with the upstream.
	breaker := admission.NewBreaker(admission.BreakerOptions{})
	followerOpts := replication.FollowerOptions{
		PollWait: *pollWait,
		Epoch:    epoch,
		Breaker:  breaker,
	}
	var follower *replication.Follower
	if *role == "follower" {
		followerOpts.Upstream = strings.TrimRight(*upstream, "/")
		follower = replication.NewFollower(reg, followerOpts)
	}
	// The server owns the follower from here (promotion closes it, repoint
	// swaps it); closeAll only tears down what outlives the handler. Close
	// the registry before the node store so no applier writes after the
	// epoch handle's backing store is gone.
	closeAll := func() error {
		err := reg.Close()
		if cerr := nodeStore.Close(); err == nil {
			err = cerr
		}
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	clusterNote := ""
	if placeTable != nil {
		clusterNote = fmt.Sprintf(" node=%s placement=v%d", *nodeID, placeTable.Current().Version)
	}
	fmt.Fprintf(out, "rbacd: listening on %s (mode=%s data=%s role=%s%s)\n", ln.Addr(), emode, *dataDir, *role, clusterNote)

	handler := server.NewWithConfig(server.Config{
		Registry:              reg,
		Follower:              follower,
		MinGenWait:            *minGenWait,
		Constraints:           cons,
		Epoch:                 epoch,
		FollowerOptions:       followerOpts,
		PromoteOnUpstreamLoss: *autoPromote,
		ProbeInterval:         *probeEvery,
		ProbeThreshold:        *probeAfter,
		MaxRequestTime:        *maxRequestTime,
		Admission: admission.New(admission.Config{
			Read:  admission.Limits{MaxInFlight: *maxReads, MaxQueue: *readQueue},
			Write: admission.Limits{MaxInFlight: *maxWrites, MaxQueue: *writeQueue},
		}),
		Breaker:   breaker,
		Placement: placeTable,
		NodeID:    *nodeID,
	})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTime,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(ln) }()

	// The binary data plane listens beside HTTP on the same machinery:
	// identical admission, deadlines, generation tokens and epoch fencing,
	// just without the JSON.
	var wireSrv *wirep.Server
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			srv.Close()
			handler.Close()
			closeAll()
			return err
		}
		fmt.Fprintf(out, "rbacd: wire listening on %s\n", wln.Addr())
		wireSrv = wirep.NewServer(handler.WireConfig())
		go func() {
			if werr := wireSrv.Serve(wln); werr != nil {
				errc <- fmt.Errorf("rbacd: wire: %w", werr)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		fmt.Fprintf(out, "rbacd: %v, draining\n", sig)
		// Drain the binary plane first: Close wakes blocked connection
		// reads, lets every request already on the wire finish against live
		// sessions, flushes the responses and waits — so no in-flight binary
		// call sees the session drop below.
		if wireSrv != nil {
			wireSrv.Close()
			fmt.Fprintf(out, "rbacd: wire drained\n")
		}
		// Drop open sessions (node-local state dies with the node, before
		// the registry compacts below) and wake parked replication
		// long-polls, or they eat the drain budget (Shutdown waits for
		// handlers without cancelling them).
		if n := handler.DrainSessions(); n > 0 {
			fmt.Fprintf(out, "rbacd: dropped %d open sessions\n", n)
		}
		handler.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			closeAll()
			return err
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			if wireSrv != nil {
				wireSrv.Close()
			}
			handler.Close()
			closeAll()
			return err
		}
	}
	return closeAll()
}

// parseClusterSeed parses the -cluster-seed node list ("id=url,id=url,...").
func parseClusterSeed(s string) ([]placement.Node, error) {
	var nodes []placement.Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("rbacd: bad -cluster-seed entry %q (want id=url)", part)
		}
		nodes = append(nodes, placement.Node{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(nodes) == 0 {
		return nil, errors.New("rbacd: -cluster-seed has no nodes")
	}
	return nodes, nil
}
