package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/parser"
	"adminrefine/internal/policy"
	"adminrefine/internal/server"
	"adminrefine/internal/tenant"
)

// TestRbacdHelperProcess is not a test: it is rbacd itself, re-executed from
// the test binary so the end-to-end test can kill -9 a real process and
// restart it. Args arrive newline-separated in RBACD_ARGS.
func TestRbacdHelperProcess(t *testing.T) {
	if os.Getenv("RBACD_HELPER") != "1" {
		t.Skip("helper process for TestCrashRecoveryEndToEnd")
	}
	if err := run(strings.Split(os.Getenv("RBACD_ARGS"), "\n"), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemon is one rbacd child process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRbacdHelperProcess$")
	cmd.Env = append(os.Environ(), "RBACD_HELPER=1", "RBACD_ARGS="+strings.Join(args, "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The daemon prints "rbacd: listening on ADDR (...)" once bound.
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, addr, ok := strings.Cut(line, "listening on "); ok {
			host, _, _ := strings.Cut(addr, " ")
			d := &daemon{cmd: cmd, base: "http://" + host}
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return d
		}
	}
	t.Fatalf("daemon exited before announcing its address (scan err: %v)", sc.Err())
	return nil
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	d.cmd.Wait()
}

func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with: %v", err)
	}
}

func (d *daemon) putPolicy(t *testing.T, name string, p *policy.Policy) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, d.base+"/v1/tenants/"+name+"/policy", strings.NewReader(parser.Print(p, nil)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put policy %s: status %d", name, resp.StatusCode)
	}
}

func (d *daemon) post(t *testing.T, path string, body, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func (d *daemon) stats(t *testing.T, name string) tenant.Stats {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/tenants/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st tenant.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func batchOf(t *testing.T, cmds ...command.Command) server.BatchRequest {
	t.Helper()
	var req server.BatchRequest
	for _, c := range cmds {
		wc, err := server.EncodeCommand(c)
		if err != nil {
			t.Fatal(err)
		}
		req.Commands = append(req.Commands, wc)
	}
	return req
}

func (d *daemon) authorize(t *testing.T, name string, cmds []command.Command) []bool {
	t.Helper()
	var out struct {
		Results []server.AuthorizeResult `json:"results"`
	}
	d.post(t, "/v1/tenants/"+name+"/authorize", batchOf(t, cmds...), &out)
	got := make([]bool, len(out.Results))
	for i, r := range out.Results {
		got[i] = r.Allowed
	}
	return got
}

// TestCrashRecoveryEndToEnd is the acceptance test of the multi-tenant
// service: start rbacd, drive two tenants with interleaved submits and
// authorizes, kill the process with SIGKILL, restart it on the same data
// directory, and assert both tenants recover their exact pre-crash decisions
// and generations from WAL replay.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data", dir, "-mode", "refined"}

	d := startDaemon(t, args...)

	// Two tenants, same base policy, different administrative histories.
	d.putPolicy(t, "alpha", policy.Figure2())
	d.putPolicy(t, "beta", policy.Figure2())

	grantStaff := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	grantDB2 := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	// alice ∈ SO holds ¤(staff, ¤(bob, staff)): she may delegate the
	// appointment privilege to role staff (the paper's Example 2 chain).
	delegate := command.Grant(policy.UserAlice, model.Role(policy.RoleStaff), policy.PrivHRAssignBobStaff)
	grantJoeNurse := command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse))

	// Interleave submits and authorizes across the tenants.
	var sub struct {
		Results []server.SubmitResult `json:"results"`
	}
	d.post(t, "/v1/tenants/alpha/submit", batchOf(t, grantStaff), &sub)
	if sub.Results[0].Outcome != "applied" {
		t.Fatalf("alpha submit 1: %+v", sub.Results)
	}
	d.post(t, "/v1/tenants/beta/submit", batchOf(t, grantDB2), &sub)
	if sub.Results[0].Outcome != "applied" {
		t.Fatalf("beta submit 1: %+v", sub.Results)
	}
	d.authorize(t, "alpha", []command.Command{grantDB2})
	d.post(t, "/v1/tenants/alpha/submit", batchOf(t, delegate, grantJoeNurse), &sub)
	if sub.Results[0].Outcome != "applied" || sub.Results[1].Outcome != "applied" {
		t.Fatalf("alpha submit 2: %+v", sub.Results)
	}

	// The probe set mixes allowed and denied commands; the second probe
	// diverges between the tenants — in alpha, bob was assigned to staff and
	// staff was delegated ¤(bob, staff), so bob can now self-appoint; in
	// beta neither submit happened.
	probes := []command.Command{
		grantStaff,
		command.Grant(policy.UserBob, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserBob, model.User(policy.UserAlice), model.Role(policy.RoleStaff)),
	}
	wantAlpha := d.authorize(t, "alpha", probes)
	wantBeta := d.authorize(t, "beta", probes)
	if fmt.Sprint(wantAlpha) == fmt.Sprint(wantBeta) {
		t.Fatalf("tenants should have diverged: alpha %v, beta %v", wantAlpha, wantBeta)
	}
	genAlpha := d.stats(t, "alpha").Generation
	genBeta := d.stats(t, "beta").Generation
	if genAlpha != 3 || genBeta != 1 {
		t.Fatalf("pre-crash generations alpha=%d beta=%d, want 3, 1", genAlpha, genBeta)
	}

	// Crash: SIGKILL, no shutdown hook runs.
	d.kill(t)

	// Restart on the same data directory; tenants recover lazily.
	d2 := startDaemon(t, args...)
	gotAlpha := d2.authorize(t, "alpha", probes)
	gotBeta := d2.authorize(t, "beta", probes)
	if fmt.Sprint(gotAlpha) != fmt.Sprint(wantAlpha) {
		t.Fatalf("alpha decisions changed across crash: %v -> %v", wantAlpha, gotAlpha)
	}
	if fmt.Sprint(gotBeta) != fmt.Sprint(wantBeta) {
		t.Fatalf("beta decisions changed across crash: %v -> %v", wantBeta, gotBeta)
	}
	stAlpha := d2.stats(t, "alpha")
	stBeta := d2.stats(t, "beta")
	if stAlpha.Generation != genAlpha || stBeta.Generation != genBeta {
		t.Fatalf("generations changed across crash: alpha %d->%d, beta %d->%d",
			genAlpha, stAlpha.Generation, genBeta, stBeta.Generation)
	}
	if stAlpha.Recovered.Records != 3 {
		t.Fatalf("alpha replayed %d WAL records, want 3", stAlpha.Recovered.Records)
	}
	if !stAlpha.Recovered.SnapshotLoaded {
		t.Fatal("alpha should have loaded its provisioning snapshot")
	}

	// Graceful path: SIGTERM drains and compacts, so a third start replays
	// nothing.
	d2.terminate(t)
	d3 := startDaemon(t, args...)
	st3 := d3.stats(t, "alpha")
	if st3.Recovered.Records != 0 || !st3.Recovered.SnapshotLoaded {
		t.Fatalf("post-graceful-shutdown recovery %+v, want compacted snapshot with empty WAL", st3.Recovered)
	}
	if st3.Generation != genAlpha {
		t.Fatalf("generation after compacted restart %d, want %d", st3.Generation, genAlpha)
	}
	if got := d3.authorize(t, "alpha", probes); fmt.Sprint(got) != fmt.Sprint(wantAlpha) {
		t.Fatalf("alpha decisions changed across graceful restart: %v -> %v", wantAlpha, got)
	}
	d3.terminate(t)
}
