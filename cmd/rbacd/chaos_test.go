package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/command"
	"adminrefine/internal/server"
	"adminrefine/internal/storage"
	"adminrefine/internal/workload"
)

// healthDoc is the healthz wire shape the failover tests read: the node's
// role, its fencing epoch, and (for followers) the upstream it pulls from.
type healthDoc struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Upstream string `json:"upstream"`
}

func (d *daemon) health(t *testing.T) healthDoc {
	t.Helper()
	resp, err := http.Get(d.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthDoc
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func waitForRole(t *testing.T, d *daemon, role string) healthDoc {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var h healthDoc
	for time.Now().Before(deadline) {
		h = d.health(t)
		if h.Role == role {
			return h
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("node %s stuck in role %q, want %q", d.base, h.Role, role)
	return h
}

// roleChange is the admin endpoints' response shape.
type roleChange struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Upstream string `json:"upstream"`
}

func (d *daemon) promote(t *testing.T, ifEpoch uint64) roleChange {
	t.Helper()
	body := map[string]any{}
	if ifEpoch != 0 {
		body["if_epoch"] = ifEpoch
	}
	var out roleChange
	d.post(t, "/v1/promote", body, &out)
	return out
}

func (d *daemon) repoint(t *testing.T, upstream string) roleChange {
	t.Helper()
	var out roleChange
	d.post(t, "/v1/repoint", map[string]any{"upstream": upstream}, &out)
	return out
}

// submitStatus is d.post's non-fatal sibling: it submits and reports the raw
// HTTP status, so tests can assert a fenced node's 421 refusal. On non-2xx
// it also hands back the decoded error envelope for typed-code assertions.
func (d *daemon) submitStatus(t *testing.T, name string, cmds ...command.Command) (int, []server.SubmitResult, *api.Error) {
	t.Helper()
	data, err := json.Marshal(batchOf(t, cmds...))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/tenants/"+name+"/submit", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []server.SubmitResult `json:"results"`
	}
	json.Unmarshal(raw, &out)
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, out.Results, nil
	}
	return resp.StatusCode, out.Results, api.Decode(resp.StatusCode, raw)
}

// auditTrail fetches a tenant's full retained audit trail with the
// node-local audit index (ASeq) cleared — the byte-comparable form for
// cross-node convergence checks: everything else on a record (seq, actor,
// op, vertices, outcome, epoch stamp) is replicated content and must match.
func (d *daemon) auditTrail(t *testing.T, name string) []storage.Record {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/tenants/" + name + "/audit?limit=1000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit %s on %s: status %d", name, d.base, resp.StatusCode)
	}
	var out struct {
		Records []storage.Record `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		out.Records[i].ASeq = 0
	}
	return out.Records
}

func tenantIndex(t *testing.T, name string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(name, "r%03d", &i); err != nil {
		t.Fatalf("unexpected generated tenant name %q", name)
	}
	return i
}

// TestFailoverChaosEndToEnd is the acceptance test of surviving primary
// death: real rbacd processes under deterministic workload.ReplicatedGen
// churn, the primary SIGKILLed mid-stream, a follower promoted by epoch
// fencing, the fleet re-pointed, and — because the driver runs semi-
// synchronously, confirming every acknowledged write on the promotion target
// before counting it — a checkable zero-acknowledged-write-loss guarantee.
// The resurrected ex-primary then rejoins with a forked epoch-0 suffix and
// must be fenced on first touch and healed by a rewinding bootstrap.
func TestFailoverChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	primDir := t.TempDir()
	prim := startDaemon(t, "-addr", "127.0.0.1:0", "-data", primDir)
	folArgs := func(dir string) []string {
		return []string{"-addr", "127.0.0.1:0", "-data", dir,
			"-role", "follower", "-upstream", prim.base, "-poll-wait", "250ms"}
	}
	a := startDaemon(t, folArgs(t.TempDir())...)
	b := startDaemon(t, folArgs(t.TempDir())...)

	cfg := workload.ReplicatedConfig{
		Seed: 7, Tenants: 3, Roles: 16, Users: 16, Followers: 2,
		Skew: 1.2, SubmitFrac: 0.45, TokenFrac: 0.5, ConfirmWrites: true,
	}
	g := workload.NewReplicatedGen(cfg)
	for i := 0; i < cfg.Tenants; i++ {
		prim.putPolicy(t, g.TenantName(i), g.Policy(i))
	}

	// confirmed[i] is the highest generation of tenant i proven replicated
	// to the designated survivor before its ack was counted — the population
	// the zero-loss assertion quantifies over.
	confirmed := make([]uint64, cfg.Tenants)

	// drive pushes n generated operations: every write goes to primary and
	// is confirmed on confirmOn (a min_generation read) before the driver
	// proceeds; reads spread over the fleet, honouring their tokens. The
	// generation-token equality check doubles as the monotonicity assertion:
	// acked generations must continue the generator's count exactly,
	// across failovers included.
	drive := func(primary, confirmOn *daemon, fleet []*daemon, n int) {
		t.Helper()
		for j := 0; j < n; j++ {
			op := g.Next()
			i := tenantIndex(t, op.Tenant)
			if op.Submit {
				res, gen := primary.submitGen(t, op.Tenant, op.Cmd)
				if res[0].Outcome != "applied" {
					t.Fatalf("op %d: submit %s: %+v", j, op.Tenant, res)
				}
				if gen != op.MinGeneration {
					t.Fatalf("op %d: %s acked generation %d, want %d (not monotone with the stream)",
						j, op.Tenant, gen, op.MinGeneration)
				}
				if _, served, code := confirmOn.authorizeMin(t, op.Tenant, gen, []command.Command{deniedProbe()}); code != http.StatusOK || served < gen {
					t.Fatalf("op %d: confirm %s gen %d on %s: status %d, served %d",
						j, op.Tenant, gen, confirmOn.base, code, served)
				}
				confirmed[i] = gen
				continue
			}
			r := fleet[op.Node%len(fleet)]
			got, served, code := r.authorizeMin(t, op.Tenant, op.MinGeneration, []command.Command{op.Cmd, deniedProbe()})
			if code != http.StatusOK {
				t.Fatalf("op %d: read %s on %s (min %d): status %d", j, op.Tenant, r.base, op.MinGeneration, code)
			}
			if op.MinGeneration > 0 && served < op.MinGeneration {
				t.Fatalf("op %d: read served generation %d below token %d", j, served, op.MinGeneration)
			}
			if got[1] {
				t.Fatalf("op %d: denied probe allowed on %s", j, r.base)
			}
		}
	}

	// Phase 1: semi-synchronously confirmed churn against the epoch-0
	// primary, reads across both followers.
	drive(prim, a, []*daemon{a, b}, 90)

	// Phase 2: SIGKILL the primary — no shutdown hook, no flush — and
	// promote follower A. Promotion durably advances the fencing epoch
	// before the node serves a single write.
	prim.kill(t)
	pr := a.promote(t, 0)
	if pr.Role != "primary" || pr.Epoch != 1 {
		t.Fatalf("promote A: %+v, want primary at epoch 1", pr)
	}

	// Zero acknowledged-write loss: the driver confirmed every ack on A, so
	// A must hold exactly the generator's count for every tenant.
	for i := 0; i < cfg.Tenants; i++ {
		name := g.TenantName(i)
		st := a.stats(t, name)
		if st.Generation < confirmed[i] {
			t.Fatalf("tenant %s: promoted node at generation %d, confirmed %d — acknowledged write lost",
				name, st.Generation, confirmed[i])
		}
		if st.Generation != g.Generation(i) {
			t.Fatalf("tenant %s: promoted node at generation %d, generator at %d",
				name, st.Generation, g.Generation(i))
		}
	}

	// Re-point B at the new primary: it resumes pulling at its local WAL
	// position and adopts epoch 1 from the first response.
	if rp := b.repoint(t, a.base); rp.Role != "follower" || rp.Upstream != a.base {
		t.Fatalf("repoint B: %+v", rp)
	}

	// Phase 3: the same deterministic stream continues against the new
	// primary, confirmed on B. The in-drive token equality proves the
	// generation sequence continued exactly where the dead primary left it.
	drive(a, b, []*daemon{b}, 60)

	// Phase 4: audit convergence. B confirmed every write, so after catching
	// up it must hold a byte-identical audit trail: same records, same
	// order, same epoch stamps — only the node-local ASeq differs (zeroed).
	for i := 0; i < cfg.Tenants; i++ {
		name := g.TenantName(i)
		waitForGeneration(t, b, name, g.Generation(i))
		want, _ := json.Marshal(a.auditTrail(t, name))
		got, _ := json.Marshal(b.auditTrail(t, name))
		if !bytes.Equal(want, got) {
			t.Fatalf("tenant %s: audit diverged between promoted primary and follower:\nA: %s\nB: %s", name, want, got)
		}
		if g.Generation(i) > 0 && len(a.auditTrail(t, name)) == 0 {
			t.Fatalf("tenant %s: empty audit trail at generation %d", name, g.Generation(i))
		}
	}

	// Phase 5: resurrect the dead primary on its old data directory. Its
	// durable node epoch is still 0 — it never saw the coup — so it comes
	// back believing it is the primary, and even accepts a forked write.
	prim2 := startDaemon(t, "-addr", "127.0.0.1:0", "-data", primDir)
	if h := prim2.health(t); h.Role != "primary" || h.Epoch != 0 {
		t.Fatalf("resurrected ex-primary health: %+v, want primary at epoch 0", h)
	}
	forkTenant := g.TenantName(0)
	forkCmd := workload.ChurnGrant(int(g.Generation(0)), cfg.Users, cfg.Roles)
	if code, res, _ := prim2.submitStatus(t, forkTenant, forkCmd); code != http.StatusOK || res[0].Outcome != "applied" {
		t.Fatalf("fork write on resurrected ex-primary: status %d, %+v", code, res)
	}

	// First replication touch fences it: point B at the impostor. B's pull
	// carries epoch 1; a source seeing a higher peer epoch demotes itself on
	// the spot and answers 421. (The repointed follower pulls lazily — one
	// read on B starts the loop; B keeps serving its own state throughout.)
	b.repoint(t, prim2.base)
	b.authorizeMin(t, forkTenant, 0, []command.Command{deniedProbe()})
	if h := waitForRole(t, prim2, "fenced"); h.Epoch != 1 {
		t.Fatalf("fenced ex-primary adopted epoch %d, want 1", h.Epoch)
	}

	// A fenced node refuses writes outright: 421 with the typed fenced code
	// and its deposing epoch in the envelope — no redirect, no ack.
	if code, _, e := prim2.submitStatus(t, forkTenant, forkCmd); code != http.StatusMisdirectedRequest ||
		e == nil || e.Code != api.CodeFenced || e.Epoch != 1 {
		t.Fatalf("write to fenced ex-primary: status %d envelope %+v, want 421 %q at epoch 1", code, e, api.CodeFenced)
	}

	// Rejoin the fleet: B back to the real primary, the deposed node as a
	// follower of A. Its forked epoch-0 suffix fails the (epoch, seq) prefix
	// check and a rewinding snapshot bootstrap discards it; its unforked
	// tenants catch up incrementally from their local WAL positions.
	b.repoint(t, a.base)
	if rp := prim2.repoint(t, a.base); rp.Role != "follower" {
		t.Fatalf("rejoin deposed node: %+v", rp)
	}

	// More confirmed load with the full fleet reading, then final
	// convergence: every node at the generator's generation, identical
	// decisions and audit trails on all three, the fork gone.
	drive(a, b, []*daemon{b, prim2}, 40)
	for i := 0; i < cfg.Tenants; i++ {
		name := g.TenantName(i)
		want := g.Generation(i)
		waitForGeneration(t, b, name, want)
		waitForGeneration(t, prim2, name, want)
		if st := prim2.followerStats(t, name); st.Generation != want {
			t.Fatalf("rejoined node %s at generation %d, want %d (forked write must not survive)",
				name, st.Generation, want)
		}
		probes := []command.Command{workload.ChurnGrant(int(want), cfg.Users, cfg.Roles), deniedProbe()}
		wantDec, _, _ := a.authorizeMin(t, name, 0, probes)
		for _, d := range []*daemon{b, prim2} {
			if got, _, code := d.authorizeMin(t, name, want, probes); code != http.StatusOK || fmt.Sprint(got) != fmt.Sprint(wantDec) {
				t.Fatalf("tenant %s: decisions diverged on %s: %v (status %d), want %v", name, d.base, got, code, wantDec)
			}
		}
		wantAudit, _ := json.Marshal(a.auditTrail(t, name))
		for _, d := range []*daemon{b, prim2} {
			if got, _ := json.Marshal(d.auditTrail(t, name)); !bytes.Equal(wantAudit, got) {
				t.Fatalf("tenant %s: audit diverged on %s:\nwant %s\ngot  %s", name, d.base, wantAudit, got)
			}
		}
	}
	for _, n := range []struct {
		d    *daemon
		role string
	}{{a, "primary"}, {b, "follower"}, {prim2, "follower"}} {
		if h := n.d.health(t); h.Role != n.role || h.Epoch != 1 {
			t.Fatalf("final topology: %s is %q at epoch %d, want %q at epoch 1", n.d.base, h.Role, h.Epoch, n.role)
		}
	}

	// The whole fleet still shuts down gracefully after the churn.
	prim2.terminate(t)
	b.terminate(t)
	a.terminate(t)
}

// TestAutoPromoteOnUpstreamLoss exercises the hands-off failover path:
// a follower started with -promote-on-upstream-loss deposes a SIGKILLed
// upstream after the configured number of failed probes, serves writes at
// the advanced epoch, and — because the epoch is durable node state — still
// knows it was promoted after its own crash and restart.
func TestAutoPromoteOnUpstreamLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	primDir, aDir := t.TempDir(), t.TempDir()
	prim := startDaemon(t, "-addr", "127.0.0.1:0", "-data", primDir)
	a := startDaemon(t, "-addr", "127.0.0.1:0", "-data", aDir,
		"-role", "follower", "-upstream", prim.base, "-poll-wait", "250ms",
		"-promote-on-upstream-loss", "-probe-interval", "100ms", "-probe-threshold", "3")

	prim.putPolicy(t, "acme", workload.ChurnPolicy(churnRoles, churnUsers))
	var lastGen uint64
	for i := 0; i < 5; i++ {
		res, gen := prim.submitGen(t, "acme", churnGrant(i))
		if res[0].Outcome != "applied" {
			t.Fatalf("submit %d: %+v", i, res)
		}
		if _, served, code := a.authorizeMin(t, "acme", gen, []command.Command{deniedProbe()}); code != http.StatusOK || served < gen {
			t.Fatalf("confirm gen %d: status %d, served %d", gen, code, served)
		}
		lastGen = gen
	}

	// A healthy upstream keeps the probe quiet: several probe periods must
	// not flip the follower.
	time.Sleep(500 * time.Millisecond)
	if h := a.health(t); h.Role != "follower" || h.Epoch != 0 {
		t.Fatalf("follower self-promoted under a healthy upstream: %+v", h)
	}

	// Kill the primary; after probe-threshold consecutive failures the
	// follower promotes itself (durable epoch bump first) and serves writes
	// that continue the generation sequence.
	prim.kill(t)
	if h := waitForRole(t, a, "primary"); h.Epoch != 1 {
		t.Fatalf("auto-promoted at epoch %d, want 1", h.Epoch)
	}
	res, gen := a.submitGen(t, "acme", churnGrant(5))
	if res[0].Outcome != "applied" || gen != lastGen+1 {
		t.Fatalf("write after auto-promotion: %+v gen %d, want applied gen %d", res, gen, lastGen+1)
	}

	// The epoch survives the promoted node's own crash: restart on the same
	// data directory comes back at epoch 1 with the post-promotion write.
	a.kill(t)
	a2 := startDaemon(t, "-addr", "127.0.0.1:0", "-data", aDir)
	if h := a2.health(t); h.Role != "primary" || h.Epoch != 1 {
		t.Fatalf("restarted promoted node: %+v, want primary at epoch 1", h)
	}
	if st := a2.stats(t, "acme"); st.Generation != lastGen+1 {
		t.Fatalf("restarted promoted node at generation %d, want %d", st.Generation, lastGen+1)
	}
	a2.terminate(t)
}
