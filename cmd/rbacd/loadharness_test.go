package main

import (
	"sync/atomic"
	"testing"
	"time"

	"adminrefine/internal/cli"
	"adminrefine/internal/workload"
)

// TestLoadHarnessEndToEnd drives the open-loop socket harness against a real
// rbacd pair — a -sync primary taking the durable writes and a follower
// serving the reads — and then asserts the primary drains cleanly on SIGTERM
// while load is still arriving. This is the deployment-shaped smoke of the
// serve-mode bench: real processes, real TCP sockets, the wire API, and
// read-your-writes tokens crossing the replication stream.
func TestLoadHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process load smoke")
	}
	mix := workload.DefaultServeMix(7)
	mix.Tenants = 4
	mix.Roles, mix.Users = 16, 32
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)

	prim := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-sync", "-compact-every", "-1")
	for i := 0; i < mix.Tenants; i++ {
		prim.putPolicy(t, g.TenantName(i), g.Policy(i))
	}
	fol := startDaemon(t,
		"-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-role", "follower", "-upstream", prim.base)

	// Phase 1: steady-state load, reads on the follower, writes on the
	// primary. At a modest offered rate everything must complete, nothing
	// may drop, and no read-your-writes token may answer 409 — the follower
	// catches up within its min-generation wait.
	target := &cli.HTTPTarget{ReadBase: fol.base, WriteBase: prim.base}
	ops := workload.GenServeOps(mix, 2048)
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate:     200,
		Duration: 2 * time.Second,
		Workers:  8,
	}, ops, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("harness completed no ops against the live pair")
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d ops failed at steady state (%d stale)", res.Errors, res.Completed, res.Stale)
	}
	if res.Stale != 0 {
		t.Fatalf("%d reads answered 409 at steady state — follower could not honor read-your-writes", res.Stale)
	}
	if res.Dropped() != 0 {
		t.Fatalf("%d ops dropped at %0.f ops/s — target could not absorb a trivial rate", res.Dropped(), res.Offered)
	}
	for _, kind := range []string{"authorize", "check", "submit"} {
		ks := res.Kinds[kind]
		if ks == nil || ks.Count == 0 {
			t.Fatalf("no %s ops completed: %+v", kind, res.Kinds)
		}
		if ks.Hist.Max() <= 0 {
			t.Fatalf("%s recorded no latency", kind)
		}
	}
	t.Logf("steady state: %d ops, achieved %.0f/s offered %.0f/s", res.Completed, res.Achieved, res.Offered)

	// Phase 2: SIGTERM mid-load. A second open-loop run keeps hitting the
	// primary while it is told to shut down; the drain must still exit
	// cleanly (status 0) with requests in flight. Post-SIGTERM request
	// failures are expected — the assertion is the clean exit, checked by
	// terminate.
	var started atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		probe := &startedTarget{Target: &cli.HTTPTarget{ReadBase: prim.base}, started: &started}
		workload.RunOpenLoop(workload.OpenLoopConfig{
			Rate:       200,
			Duration:   2 * time.Second,
			Workers:    4,
			MaxOverrun: time.Second,
		}, ops, probe)
	}()
	for !started.Load() {
		time.Sleep(5 * time.Millisecond)
	}
	prim.terminate(t)
	<-done
}

// startedTarget flags once the first op has gone out, so the test terminates
// the daemon only with load genuinely in flight.
type startedTarget struct {
	Target  *cli.HTTPTarget
	started *atomic.Bool
}

func (s *startedTarget) Do(op *workload.ServeOp, minGen uint64) (uint64, error) {
	gen, err := s.Target.Do(op, minGen)
	s.started.Store(true)
	return gen, err
}
