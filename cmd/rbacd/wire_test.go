package main

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/command"
	"adminrefine/internal/wire"
	"adminrefine/internal/workload"
)

// wireDaemon is a daemon started with -wire-addr: the HTTP handle plus the
// binary listener's resolved address.
type wireDaemon struct {
	*daemon
	wireAddr string
}

// startWireDaemon launches rbacd with a binary data-plane listener and
// scrapes both announced addresses ("rbacd: listening on ..." comes first,
// "rbacd: wire listening on ..." after).
func startWireDaemon(t *testing.T, args ...string) *wireDaemon {
	t.Helper()
	args = append(args, "-wire-addr", "127.0.0.1:0")
	cmd := exec.Command(os.Args[0], "-test.run=^TestRbacdHelperProcess$")
	cmd.Env = append(os.Environ(), "RBACD_HELPER=1", "RBACD_ARGS="+strings.Join(args, "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	d := &wireDaemon{daemon: &daemon{cmd: cmd}}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, addr, ok := strings.Cut(line, "wire listening on "); ok {
			d.wireAddr = strings.TrimSpace(addr)
		} else if _, addr, ok := strings.Cut(line, "listening on "); ok {
			host, _, _ := strings.Cut(addr, " ")
			d.base = "http://" + host
		}
		if d.base != "" && d.wireAddr != "" {
			go func() {
				for sc.Scan() {
				}
			}()
			return d
		}
	}
	t.Fatalf("daemon exited before announcing its addresses (scan err: %v)", sc.Err())
	return nil
}

// putChurnPolicy provisions the churn fixture: every ChurnGrant command is
// authorized, u0 sits atop an 8-role chain whose bottom holds ("read","obj").
func (d *wireDaemon) putChurnPolicy(t *testing.T, name string) {
	t.Helper()
	d.putPolicy(t, name, workload.ChurnPolicy(8, 8))
}

// wantCode asserts err carries the given typed api code.
func wantCode(t *testing.T, err error, code string) *api.Error {
	t.Helper()
	var e *api.Error
	if !errors.As(err, &e) || e.Code != code {
		t.Fatalf("error %v, want api code %q", err, code)
	}
	return e
}

// TestWireDaemonEndToEnd drives a live rbacd's binary port end to end:
// durable submits with generation tokens, read-your-writes authorizes, the
// deadline field, bounded staleness, the session lifecycle — and finally
// SIGTERM with a request still parked on the wire, which must be answered
// and flushed (the drain) before the connection closes and the process
// exits cleanly.
func TestWireDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	d := startWireDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir(), "-min-gen-wait", "400ms")
	d.putChurnPolicy(t, "acme")

	c, err := wire.Dial(d.wireAddr, wire.ClientOptions{Conns: 2, CallTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if epoch, err := c.Ping(); err != nil || epoch != 0 {
		t.Fatalf("ping: epoch %d, err %v, want epoch 0", epoch, err)
	}

	var req wire.Request
	var resp wire.Response
	req.Op = wire.OpSubmit
	req.Tenant = "acme"
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(0, 8, 8))
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("wire submit: %v", err)
	}
	if len(resp.Steps) != 1 || resp.Steps[0].Outcome != wire.OutcomeApplied || resp.Generation != 1 {
		t.Fatalf("wire submit: steps %+v generation %d, want applied at generation 1", resp.Steps, resp.Generation)
	}
	gen := resp.Generation

	// Read-your-writes: the authorize carries the acked generation back.
	req.Reset()
	req.Op = wire.OpAuthorize
	req.Tenant = "acme"
	req.MinGen = gen
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(1, 8, 8))
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("wire authorize: %v", err)
	}
	if len(resp.Authz) != 1 || !resp.Authz[0].Allowed || resp.Generation < gen {
		t.Fatalf("wire authorize: %+v at generation %d, want allowed at >= %d", resp.Authz, resp.Generation, gen)
	}

	// An unreachable token with a tight deadline answers deadline, not a
	// 2s park: the binary twin of X-Request-Deadline.
	req.Reset()
	req.Op = wire.OpAuthorize
	req.Tenant = "acme"
	req.MinGen = 1 << 60
	req.DeadlineMS = 30
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(1, 8, 8))
	start := time.Now()
	wantCode(t, c.Do(&req, &resp), api.CodeDeadline)
	if waited := time.Since(start); waited > 300*time.Millisecond {
		t.Fatalf("deadline answer took %v, want ~30ms", waited)
	}

	// Without a deadline the same token waits out -min-gen-wait and answers
	// the typed staleness code with the demanded generation echoed.
	req.DeadlineMS = 0
	e := wantCode(t, c.Do(&req, &resp), api.CodeStaleGeneration)
	if e.MinGeneration != 1<<60 {
		t.Fatalf("stale envelope echoed min_generation %d, want %d", e.MinGeneration, uint64(1)<<60)
	}

	// Session lifecycle over the wire: create, check, delete, double delete.
	req.Reset()
	req.Op = wire.OpSessionCreate
	req.Tenant = "acme"
	req.User = "u0"
	req.Roles = append(req.Roles[:0], "c0000")
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("session create: %v", err)
	}
	sess := resp.Session
	req.Reset()
	req.Op = wire.OpCheck
	req.Tenant = "acme"
	req.Session = sess
	req.Checks = append(req.Checks[:0], wire.Check{Action: "read", Object: "obj"})
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("session check: %v", err)
	}
	if len(resp.Allowed) != 1 || !resp.Allowed[0] {
		t.Fatalf("session check: %v, want [true]", resp.Allowed)
	}
	req.Reset()
	req.Op = wire.OpSessionDelete
	req.Tenant = "acme"
	req.Session = sess
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("session delete: %v", err)
	}
	req.Reset()
	req.Op = wire.OpSessionDelete
	req.Tenant = "acme"
	req.Session = sess
	wantCode(t, c.Do(&req, &resp), api.CodeNotFound)

	// SIGTERM drain: park a min-generation read on the wire, then terminate.
	// The drain must answer it (staleness after the 400ms wait) rather than
	// slam the connection — a transport error here means an in-flight
	// request was dropped on shutdown.
	parked := make(chan error, 1)
	go func() {
		var preq wire.Request
		var presp wire.Response
		preq.Op = wire.OpAuthorize
		preq.Tenant = "acme"
		preq.MinGen = 1 << 60
		preq.Cmds = append(preq.Cmds, workload.ChurnGrant(1, 8, 8))
		parked <- c.Do(&preq, &presp)
	}()
	time.Sleep(100 * time.Millisecond) // let the park reach the server
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-parked:
		wantCode(t, err, api.CodeStaleGeneration)
	case <-time.After(10 * time.Second):
		t.Fatal("parked wire request never answered during drain")
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with: %v", err)
	}
}

// TestWireDaemonAdmissionShed proves the binary port sits behind the same
// admission control as HTTP: with one read slot, a parked min-generation
// read occupies it and a probe on a separate connection sheds with the
// typed overload code instead of queueing.
func TestWireDaemonAdmissionShed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	d := startWireDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-max-inflight-reads", "1", "-min-gen-wait", "5s")
	d.putChurnPolicy(t, "acme")

	// Separate clients: pipelined requests on one connection drain
	// sequentially and would never contend for the slot.
	parker, err := wire.Dial(d.wireAddr, wire.ClientOptions{Conns: 1, CallTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer parker.Close()
	prober, err := wire.Dial(d.wireAddr, wire.ClientOptions{Conns: 1, CallTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer prober.Close()

	parked := make(chan error, 1)
	go func() {
		var req wire.Request
		var resp wire.Response
		req.Op = wire.OpAuthorize
		req.Tenant = "acme"
		req.MinGen = 1 << 60 // unreachable: parks in the generation wait
		req.DeadlineMS = 1500
		req.Cmds = append(req.Cmds, workload.ChurnGrant(0, 8, 8))
		parked <- parker.Do(&req, &resp)
	}()

	// While the slot is held, probes must shed. The park needs a moment to
	// claim it, so tolerate initial successes.
	deadline := time.Now().Add(time.Second)
	var shedErr error
	for time.Now().Before(deadline) && shedErr == nil {
		var req wire.Request
		var resp wire.Response
		req.Op = wire.OpAuthorize
		req.Tenant = "acme"
		req.Cmds = append(req.Cmds, workload.ChurnGrant(0, 8, 8))
		if err := prober.Do(&req, &resp); err != nil {
			shedErr = err
		}
	}
	e := wantCode(t, shedErr, api.CodeOverloaded)
	if e.RetryAfter == 0 {
		t.Fatalf("shed envelope %+v carries no retry hint", e)
	}

	// The parked read itself ends on its deadline, not the 5s wait bound.
	select {
	case err := <-parked:
		wantCode(t, err, api.CodeDeadline)
	case <-time.After(10 * time.Second):
		t.Fatal("parked read never returned")
	}
	d.terminate(t)
}

// TestWireDaemonFencedAfterPromotion replays the coup against the binary
// port: a follower is promoted (epoch 1) and re-pointed at the old primary,
// whose next served pull fences it. The fenced ex-primary must refuse wire
// submits with the typed fenced code and its deposing epoch — no ack — while
// still stamping epoch 1 on the reads it serves.
func TestWireDaemonFencedAfterPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	prim := startWireDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir())
	prim.putChurnPolicy(t, "acme")

	c, err := wire.Dial(prim.wireAddr, wire.ClientOptions{Conns: 1, CallTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var req wire.Request
	var resp wire.Response
	req.Op = wire.OpSubmit
	req.Tenant = "acme"
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(0, 8, 8))
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("wire submit on healthy primary: %v", err)
	}
	if resp.Epoch != 0 {
		t.Fatalf("healthy primary stamped epoch %d, want 0", resp.Epoch)
	}

	// The coup: two followers replicate from the primary; A is promoted to
	// epoch 1, B re-points at A and adopts the epoch from its first pull,
	// then B re-points back at the old primary — whose next served pull
	// carries the higher peer epoch and deposes it on the spot.
	a := startDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-role", "follower", "-upstream", prim.base)
	b := startDaemon(t, "-addr", "127.0.0.1:0", "-data", t.TempDir(),
		"-role", "follower", "-upstream", prim.base)
	waitForGeneration(t, a, "acme", 1)
	waitForGeneration(t, b, "acme", 1)
	if pr := a.promote(t, 0); pr.Role != "primary" || pr.Epoch != 1 {
		t.Fatalf("promote follower A: %+v, want primary at epoch 1", pr)
	}
	b.repoint(t, a.base)
	adopted := time.Now().Add(15 * time.Second)
	for b.health(t).Epoch != 1 {
		if time.Now().After(adopted) {
			t.Fatal("follower B never adopted epoch 1 from the promoted primary")
		}
		// Pulls are lazy: reads keep the loop moving.
		b.authorizeMin(t, "acme", 0, []command.Command{deniedProbe()})
		time.Sleep(25 * time.Millisecond)
	}
	b.repoint(t, prim.base)
	b.authorizeMin(t, "acme", 0, []command.Command{deniedProbe()})
	waitForRole(t, prim.daemon, "fenced")

	// Writes: typed fenced refusal with the deposing epoch, nothing applied.
	req.Reset()
	req.Op = wire.OpSubmit
	req.Tenant = "acme"
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(1, 8, 8))
	e := wantCode(t, c.Do(&req, &resp), api.CodeFenced)
	if e.Epoch != 1 {
		t.Fatalf("fenced envelope carries epoch %d, want 1", e.Epoch)
	}

	// Reads still serve, now stamped with the adopted epoch.
	req.Reset()
	req.Op = wire.OpAuthorize
	req.Tenant = "acme"
	req.Cmds = append(req.Cmds[:0], workload.ChurnGrant(1, 8, 8))
	if err := c.Do(&req, &resp); err != nil {
		t.Fatalf("read on fenced node: %v", err)
	}
	if resp.Epoch != 1 {
		t.Fatalf("fenced node stamped epoch %d on a read, want 1", resp.Epoch)
	}
	b.terminate(t)
	a.terminate(t)
	prim.terminate(t)
}
