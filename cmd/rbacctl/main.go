// Command rbacctl is the administration tool for RPL policy files: it
// validates, formats, queries and executes administrative RBAC policies, and
// answers privilege-ordering and refinement questions. Run `rbacctl help`
// for the subcommand list.
package main

import (
	"fmt"
	"os"

	"adminrefine/internal/cli"
)

func main() {
	if err := cli.Rbacctl(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
