// Command rbacbench regenerates the paper's evaluation artifacts: each
// experiment of EXPERIMENTS.md prints its table or trace to stdout.
//
//	rbacbench -exp all      # run everything
//	rbacbench -exp F3       # the flexworker example
//	rbacbench -list         # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"adminrefine/internal/cli"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (F1 F2 F3 E5 E6 T1 L1 C1 S1 H1 A1, or all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range cli.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := cli.RunExperiment(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
