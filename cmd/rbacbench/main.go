// Command rbacbench regenerates the paper's evaluation artifacts: each
// experiment of EXPERIMENTS.md prints its table or trace to stdout. It can
// also emit the machine-readable perf trajectory consumed across PRs.
//
//	rbacbench -exp all                # run everything
//	rbacbench -exp F3                 # the flexworker example
//	rbacbench -exp P1                 # incremental engine churn + snapshots
//	rbacbench -list                   # list experiments
//	rbacbench -benchjson BENCH_3.json # run registered benchmarks, write JSON
//	rbacbench -benchjson out.json -benchfilter BatchVsSingle
//	rbacbench -benchdiff BENCH_3.json -benchfilter Authorize,BatchVsSingle
//	rbacbench -serve -serve-duration 3s  # open-loop socket load vs live rbacd
//	rbacbench -serve -wire               # + binary-protocol pass (Wire* series)
//
// -benchdiff re-runs the matching benchmarks and fails (exit 1) when any
// regresses against the committed baseline: >25% on ns/op (override with
// -benchtolerance) or any increase in allocs/op. scripts/benchdiff.sh wires
// this into CI.
//
// -serve stands up an in-process rbacd on a loopback socket (or dials
// -serve-target) and drives the open-loop load harness against it, printing
// coordinated-omission-free latency quantiles per op kind.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adminrefine/internal/cli"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (F1 F2 F3 E5 E6 T1 L1 C1 S1 H1 A1 P1, or all)")
	list := flag.Bool("list", false, "list experiments and exit")
	serve := flag.Bool("serve", false, "run the open-loop socket load harness against a live rbacd and print latency quantiles")
	serveTarget := flag.String("serve-target", "", "with -serve: base URL of an already-running rbacd (default: stand one up in-process)")
	serveRate := flag.Float64("serve-rate", 800, "with -serve: offered arrival rate in ops/sec")
	serveDuration := flag.Duration("serve-duration", 6*time.Second, "with -serve: load window")
	serveWorkers := flag.Int("serve-workers", 16, "with -serve: concurrent harness issuers")
	serveFollower := flag.Bool("serve-follower", false, "with -serve: stand up a WAL-streaming follower and point reads at it")
	serveRouted := flag.Bool("serve-routed", false, "with -serve: stand up a two-primary placement cluster and drive all load at a node owning none of the tenants, so every op crosses the routing front (emits Routed* series)")
	serveSync := flag.Bool("serve-sync", true, "with -serve: fsync each commit group on the primary (durable submits)")
	serveWire := flag.Bool("wire", false, "with -serve: also run the binary-protocol pass (persistent framed connections) and emit Wire* series next to the HTTP Serve* baseline")
	overload := flag.Bool("overload", false, "with -serve: run the saturation proof instead — a steady phase, then -overload-mult x that rate against an admission-limited stack, asserting the degradation contract (shed with 429/503, admitted p99 bounded, zero acked writes lost)")
	overloadMult := flag.Float64("overload-mult", 3, "with -serve -overload: overload-phase rate multiplier")
	serveJSON := flag.String("serve-json", "", "with -serve: also write the harness entries as BENCH-style JSON to this file")
	benchJSON := flag.String("benchjson", "", "output path: run the registered benchmarks and write results (name -> ns/op, allocs/op) to this file, e.g. BENCH_3.json")
	benchFilter := flag.String("benchfilter", "", "with -benchjson/-benchdiff: only run benchmarks whose name contains one of these comma-separated substrings")
	benchDiff := flag.String("benchdiff", "", "baseline path: re-run the matching benchmarks and exit non-zero on a regression vs this committed BENCH_*.json")
	benchTolerance := flag.Float64("benchtolerance", 25, "with -benchdiff: allowed ns/op regression in percent (allocs/op always compares exactly)")
	benchCanary := flag.String("benchcanary", "", "with -benchdiff: benchmark name measured in the same run but exempt from gating; its delta vs the baseline raises the machine-skew estimate")
	flag.Parse()

	if *list {
		for _, e := range cli.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *serve && *overload {
		// The serve-mode defaults (800 ops/s for 6s) describe a healthy-load
		// run; the overload bench picks its own steady baseline unless the
		// operator explicitly set a rate or window.
		oopts := cli.OverloadBenchOptions{Multiplier: *overloadMult, Workers: *serveWorkers}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "serve-rate":
				oopts.Rate = *serveRate
			case "serve-duration":
				oopts.Duration = *serveDuration
			}
		})
		results, err := cli.RunOverloadBench(os.Stdout, oopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *serveJSON != "" {
			if err := cli.WriteResultsJSON(*serveJSON, results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *serveJSON)
		}
		fmt.Println("overload: degradation contract held")
		return
	}
	if *serve {
		results, err := cli.RunServeBench(os.Stdout, cli.ServeBenchOptions{
			Rate:      *serveRate,
			Duration:  *serveDuration,
			Workers:   *serveWorkers,
			Sync:      *serveSync,
			Follower:  *serveFollower,
			Routed:    *serveRouted,
			TargetURL: *serveTarget,
			Wire:      *serveWire,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *serveJSON != "" {
			if err := cli.WriteResultsJSON(*serveJSON, results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *serveJSON)
		}
		return
	}
	if *benchDiff != "" {
		if err := cli.BenchDiff(os.Stdout, *benchDiff, *benchFilter, *benchCanary, *benchTolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: no regressions vs %s\n", *benchDiff)
		return
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cli.WriteBenchJSON(f, os.Stdout, *benchFilter); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}
	if err := cli.RunExperiment(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
