// Command rbacbench regenerates the paper's evaluation artifacts: each
// experiment of EXPERIMENTS.md prints its table or trace to stdout. It can
// also emit the machine-readable perf trajectory consumed across PRs.
//
//	rbacbench -exp all                # run everything
//	rbacbench -exp F3                 # the flexworker example
//	rbacbench -exp P1                 # incremental engine churn + snapshots
//	rbacbench -list                   # list experiments
//	rbacbench -benchjson BENCH_3.json # run registered benchmarks, write JSON
//	rbacbench -benchjson out.json -benchfilter BatchVsSingle
//	rbacbench -benchdiff BENCH_3.json -benchfilter Authorize,BatchVsSingle
//
// -benchdiff re-runs the matching benchmarks and fails (exit 1) when any
// regresses against the committed baseline: >25% on ns/op (override with
// -benchtolerance) or any increase in allocs/op. scripts/benchdiff.sh wires
// this into CI.
package main

import (
	"flag"
	"fmt"
	"os"

	"adminrefine/internal/cli"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (F1 F2 F3 E5 E6 T1 L1 C1 S1 H1 A1 P1, or all)")
	list := flag.Bool("list", false, "list experiments and exit")
	benchJSON := flag.String("benchjson", "", "output path: run the registered benchmarks and write results (name -> ns/op, allocs/op) to this file, e.g. BENCH_3.json")
	benchFilter := flag.String("benchfilter", "", "with -benchjson/-benchdiff: only run benchmarks whose name contains one of these comma-separated substrings")
	benchDiff := flag.String("benchdiff", "", "baseline path: re-run the matching benchmarks and exit non-zero on a regression vs this committed BENCH_*.json")
	benchTolerance := flag.Float64("benchtolerance", 25, "with -benchdiff: allowed ns/op regression in percent (allocs/op always compares exactly)")
	benchCanary := flag.String("benchcanary", "", "with -benchdiff: benchmark name measured in the same run but exempt from gating; its delta vs the baseline raises the machine-skew estimate")
	flag.Parse()

	if *list {
		for _, e := range cli.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *benchDiff != "" {
		if err := cli.BenchDiff(os.Stdout, *benchDiff, *benchFilter, *benchCanary, *benchTolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: no regressions vs %s\n", *benchDiff)
		return
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cli.WriteBenchJSON(f, os.Stdout, *benchFilter); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}
	if err := cli.RunExperiment(os.Stdout, *exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
