// Hospital: the paper's Figure 2 / Example 2 — Alice the security officer
// delegates appointment authority to HR via administrative privileges, HR
// exercises it through the transition function of Definition 5, and the
// whole run is persisted to a write-ahead log and recovered.
package main

import (
	"fmt"
	"log"
	"os"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
)

func main() {
	p := policy.Figure2()
	fmt.Println("Alice's administrative policy (Figure 2):")
	stats := p.Stats()
	fmt.Printf("  %d users, %d roles, %d PA edges (%d administrative)\n\n",
		stats.Users, stats.Roles, stats.PA, stats.AdminPrivVertices)

	// Persist every administrative action to a WAL.
	dir, err := os.MkdirTemp("", "hospital-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, _, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Compact(p); err != nil {
		log.Fatal(err)
	}

	m := monitor.New(p.Clone(), monitor.ModeStrict)
	store.Attach(m, func(err error) { log.Fatal(err) })

	// Example 2's working day: HR appoints, a rogue command bounces, HR
	// dismisses, and Alice delegates via a nested privilege.
	queue := command.Queue{
		command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserDiana, model.User(policy.UserDiana), model.Role(policy.RoleSO)),
		command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserAlice, model.Role(policy.RoleStaff), policy.PrivHRAssignBobStaff),
	}
	for _, res := range m.SubmitQueue(queue) {
		fmt.Printf("  %-48s -> %s\n", res.Cmd, res.Outcome)
	}

	// After Alice's delegation, Diana (a staff member) can appoint Bob too.
	res := m.Submit(command.Grant(policy.UserDiana, model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	fmt.Printf("  %-48s -> %s (delegated via nesting)\n\n", res.Cmd, res.Outcome)

	// Crash-recover from the log and verify the state survived.
	want := m.Policy()
	store.Close()
	store2, recovered, rec, err := storage.Open(dir, storage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	fmt.Printf("recovery: snapshot=%v, %d records replayed, state match=%v\n",
		rec.SnapshotLoaded, rec.Records, recovered.Equal(want))
}
