// Quickstart: build the paper's Figure 1 hospital policy with the policy
// API, ask reachability questions, and run sessions through the reference
// monitor. This is the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

func main() {
	// A non-administrative RBAC policy φ = (UA, RH, PA) — Definition 1.
	p := policy.New()

	// UA: Diana may act as nurse or staff.
	p.Assign("diana", "nurse")
	p.Assign("diana", "staff")

	// RH: senior → junior edges carry privilege inheritance.
	p.AddInherit("staff", "nurse")
	p.AddInherit("staff", "dbusr2")
	p.AddInherit("nurse", "dbusr1")
	p.AddInherit("nurse", "prntusr")
	p.AddInherit("dbusr2", "dbusr1")

	// PA: user privileges (action, object) assigned to roles.
	must(p.GrantPrivilege("dbusr1", model.Perm("read", "t1")))
	must(p.GrantPrivilege("dbusr1", model.Perm("read", "t2")))
	must(p.GrantPrivilege("dbusr2", model.Perm("write", "t3")))
	must(p.GrantPrivilege("nurse", model.Perm("prnt", "black")))
	must(p.GrantPrivilege("prntusr", model.Perm("prnt", "color")))

	// Reachability v →φ v' answers every authorization question.
	fmt.Println("diana can activate:", p.RolesActivatableBy("diana"))
	fmt.Println("nurse privileges:  ", p.AuthorizedPerms(model.Role("nurse")))
	fmt.Println("staff privileges:  ", p.AuthorizedPerms(model.Role("staff")))

	// Sessions give least privilege: Diana activates only what she needs.
	m := monitor.New(p, monitor.ModeStrict)
	sess, err := m.CreateSession("diana")
	if err != nil {
		log.Fatal(err)
	}
	if err := m.ActivateRole(sess.ID, "nurse"); err != nil {
		log.Fatal(err)
	}
	show(m, sess.ID, "read", "t1")  // true: nurse reaches dbusr1
	show(m, sess.ID, "write", "t3") // false: t3 needs staff or dbusr2

	if err := m.ActivateRole(sess.ID, "staff"); err != nil {
		log.Fatal(err)
	}
	show(m, sess.ID, "write", "t3") // true now
}

func show(m *monitor.Monitor, sid int, action, object string) {
	ok, err := m.CheckAccess(sid, action, object)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session may (%s,%s): %v\n", action, object, ok)
}

func must(_ bool, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
