// Audit: a compliance officer's tour of a scaled hospital policy — the ANSI
// review functions, privilege-escalation analysis over the administrative
// privileges, separation-of-duty constraints, and the ordering-derived
// assignment surface per administrator.
package main

import (
	"fmt"
	"log"

	"adminrefine/internal/analysis"
	"adminrefine/internal/command"
	"adminrefine/internal/constraints"
	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/workload"
)

func main() {
	p := workload.Hospital(2)

	// 1. Review functions: who is what, who can read the ward tables?
	fmt.Println("== membership review")
	fmt.Println("assigned to nurse_0:  ", p.AssignedUsers("nurse_0"))
	fmt.Println("authorized for dbusr1_0:", p.AuthorizedUsers("dbusr1_0"))
	fmt.Println("who can read t2_0:    ", p.UsersWithPerm(model.Perm("read", "t2_0")))
	fmt.Println("seniors of dbusr1_0:  ", p.Seniors("dbusr1_0"))

	// 2. Escalation analysis: can the flexworker ever read ward 0's records
	// through the administrative machinery?
	fmt.Println("\n== escalation analysis (grant-only saturation)")
	alphabet := core.RelevantCommands(p, nil, nil)
	res := analysis.CanEverObtain(p, "flex_0", model.Perm("read", "t1_0"), command.Strict{}, alphabet)
	fmt.Printf("flex_0 can eventually read t1_0: %v (in %d saturation rounds)\n", res.Reachable, res.Rounds)
	if res.Reachable {
		fmt.Println("witness commands:")
		for _, c := range res.Witness {
			fmt.Printf("  %s\n", c)
		}
	}

	// 3. The assignment surface the ordering gives Jane, per user.
	fmt.Println("\n== jane's assignment surface (strict + ordering-derived)")
	for _, u := range []string{"flex_0", "flex_1"} {
		opts := analysis.AssignableRoles(p, "jane", u)
		fmt.Printf("%s:\n", u)
		for _, o := range opts {
			regime := "strict"
			if !o.Strict {
				regime = "ordering"
			}
			fmt.Printf("  -> %-10s [%s via %s]\n", o.Role, regime, o.Justification)
		}
	}

	// 4. Separation of duty: dbusr3 (revocation administration) must not be
	// combined with nursing; the SSD guard vetoes the violating appointment.
	fmt.Println("\n== separation of duty")
	cs, err := constraints.NewSet(constraints.Constraint{
		Name: "nurse-vs-db3", Kind: constraints.SSD,
		Roles: []string{"nurse_0", "dbusr3_0"}, N: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	pol := p.Clone()
	pol.Assign("flex_0", "dbusr3_0")
	m := monitor.New(pol, monitor.ModeRefined)
	m.SetConstraints(cs)
	r := m.Submit(command.Grant("jane", model.User("flex_0"), model.Role("nurse_0")))
	fmt.Printf("appoint flex_0 as nurse_0 with db3 duty held: %s\n", r.Outcome)
	audit := m.Audit()
	fmt.Println("audit:", audit[len(audit)-1])
}
