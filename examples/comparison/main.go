// Comparison: the same administrative question asked of four models — the
// paper's ordering-refined policies, ARBAC97 ranges, Crampton & Loizou's
// administrative scope, and Wang & Osborn's role-graph domains. The question
// is the flexworker one: which (user, role) assignments may Jane (HR)
// perform on a scaled hospital?
package main

import (
	"fmt"
	"log"

	"adminrefine/internal/analysis"
	"adminrefine/internal/arbac"
	"adminrefine/internal/domains"
	"adminrefine/internal/scope"
	"adminrefine/internal/workload"
)

func main() {
	const nDepts = 3
	p := workload.Hospital(nDepts)
	fmt.Printf("scaled hospital: %d departments, %d roles, %d users\n\n",
		nDepts, len(p.Roles()), len(p.Users()))

	// The paper's model: strict Definition 5 vs the ordering (§4.1).
	rep := analysis.Flexibility(p, analysis.UAUniverse(p, "jane"))
	fmt.Printf("paper, strict Def. 5:      %3d assignments (explicit privileges only)\n", rep.Strict)
	fmt.Printf("paper, ordering-refined:   %3d assignments (%d derived extras, %d unsafe)\n",
		rep.Refined, len(rep.RefinedOnly), rep.UnsafeExtras)

	// ARBAC97: jane needs explicitly configured ranges per department.
	sys := arbac.NewSystem(p.Clone())
	sys.AddAdminRole("HRadmin")
	sys.AssignAdmin("jane", "HRadmin")
	for d := 0; d < nDepts; d++ {
		sys.Assign = append(sys.Assign, arbac.CanAssign{
			AdminRole: "HRadmin",
			Range:     arbac.Range{Low: fmt.Sprintf("staff_%d", d), High: fmt.Sprintf("staff_%d", d)},
		})
	}
	count := 0
	for _, u := range p.Users() {
		for _, r := range p.Roles() {
			if _, ok := sys.CanAssignUser("jane", u, r); ok {
				count++
			}
		}
	}
	fmt.Printf("ARBAC97 point ranges:      %3d assignments (any user, configured roles only)\n", count)

	// Administrative scope: authority follows hierarchy position; HR is not
	// above the medical roles, so Jane gets nothing.
	scopeCount := 0
	for range p.Users() {
		for _, r := range p.Roles() {
			if scope.CanAssignUser(p, "jane", r) {
				scopeCount++
			}
		}
	}
	fmt.Printf("administrative scope:      %3d assignments (HR holds no hierarchy position)\n", scopeCount)

	// Role-graph domains: Jane owns no domain.
	ds := domains.NewSystem(p.Clone())
	if err := ds.AddDomain("security", "SO", "", "SO", "HR"); err != nil {
		log.Fatal(err)
	}
	for d := 0; d < nDepts; d++ {
		members := []string{
			fmt.Sprintf("staff_%d", d), fmt.Sprintf("nurse_%d", d),
			fmt.Sprintf("dbusr1_%d", d), fmt.Sprintf("dbusr2_%d", d), fmt.Sprintf("dbusr3_%d", d),
		}
		if err := ds.AddDomain(fmt.Sprintf("dept_%d", d), members[0], "security", members...); err != nil {
			log.Fatal(err)
		}
	}
	domCount := 0
	for range p.Users() {
		for _, r := range p.Roles() {
			if ds.Administers("jane", r) {
				domCount++
			}
		}
	}
	fmt.Printf("role-graph domains:        %3d assignments (jane owns no domain)\n\n", domCount)

	fmt.Println("reading: the ordering derives per-user downward flexibility from each")
	fmt.Println("explicit privilege with zero configuration and zero safety loss; the")
	fmt.Println("baselines either need manual range/domain engineering or tie authority")
	fmt.Println("to hierarchy position. Run `rbacbench -exp C1` for the full table.")
}
