// Flexworker: the paper's Example 4 / Figure 3. Bob needs dbusr2 access for
// a database cleanup job. Jane (HR) holds ¤(bob, staff). Under the literal
// Definition 5 she can only put Bob into staff — handing him the nurses'
// medical privileges and hoping he applies least privilege himself. The
// privilege ordering (Definition 8) implicitly authorizes her for the weaker
// ¤(bob, dbusr2), so in refined mode she applies least privilege *for* him.
package main

import (
	"fmt"
	"log"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

func main() {
	p := policy.Figure2()
	direct := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))

	// Strict mode: the reference monitor denies the direct assignment.
	strict := monitor.New(p.Clone(), monitor.ModeStrict)
	fmt.Println("strict:", strict.Explain(direct))

	// Refined mode: authorized, with a machine-checkable derivation.
	refined := monitor.New(p.Clone(), monitor.ModeRefined)
	fmt.Println("\nrefined:", refined.Explain(direct))

	res := refined.Submit(direct)
	if res.Outcome != command.Applied {
		log.Fatalf("unexpected outcome %v", res.Outcome)
	}

	// Compare the two worlds Bob could end up in.
	staffWorld := p.Clone()
	command.Step(staffWorld, command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)), command.Strict{})
	db2World := refined.Policy()

	bob := model.User(policy.UserBob)
	fmt.Println("\nbob in staff world: ", staffWorld.AuthorizedPerms(bob))
	fmt.Println("bob in dbusr2 world:", db2World.AuthorizedPerms(bob))
	fmt.Println("\ndbusr2 world refines staff world (Theorem 1):",
		core.NonAdminRefines(staffWorld, db2World))

	// The derivation behind the decision, checked independently.
	d := core.NewDecider(p)
	strong := policy.PrivHRAssignBobStaff
	weak := model.Grant(bob, model.Role(policy.RoleDBUsr2))
	dv, ok := d.Explain(strong, weak)
	if !ok {
		log.Fatal("ordering lost")
	}
	fmt.Println("\nderivation:")
	fmt.Println(dv)
	if err := d.CheckDerivation(dv); err != nil {
		log.Fatalf("derivation does not re-check: %v", err)
	}
	fmt.Println("derivation re-checked against the policy: ok")
}
