// Delegation: the paper's Example 6 and Remark 2. A policy in which role r2
// may add members to r1's parent — (r2, ¤(r1,r2)) ∈ PA — makes the set of
// privileges weaker than ¤(r1,r2) infinite: each extra nesting of the grant
// connective is weaker again. The enumeration must therefore be bounded;
// Remark 2 conjectures the longest RH chain as the practical bound, because
// deeper nestings only add redundant administrative hops.
package main

import (
	"fmt"
	"log"

	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

func main() {
	p := policy.New()
	p.DeclareRole("r1")
	p.DeclareRole("r2")
	if _, err := p.GrantPrivilege("r2", model.Grant(model.Role("r1"), model.Role("r2"))); err != nil {
		log.Fatal(err)
	}
	d := core.NewDecider(p)
	base := model.Grant(model.Role("r1"), model.Role("r2"))

	fmt.Println("policy: (r2, ¤(r1,r2)) ∈ PA — members of r2 can make members of r1 member too")
	fmt.Printf("privilege under study: %s\n\n", base)

	// The infinite chain, finitely truncated.
	fmt.Println("weaker-set growth with the nesting bound:")
	for bound := 1; bound <= 6; bound++ {
		ws := d.WeakerSet(base, bound)
		fmt.Printf("  bound %d: %2d weaker privileges, deepest: %s\n", bound, len(ws), ws[len(ws)-1])
	}

	// Each chain element is weaker than the original (transitively), and the
	// derivation for the first hop goes through the privilege vertex.
	p1 := model.Grant(model.Role("r1"), base)
	p2 := model.Grant(model.Role("r1"), p1)
	fmt.Printf("\n%s Ã %s: %v\n", base, p1, d.Weaker(base, p1))
	fmt.Printf("%s Ã %s: %v (transitivity)\n", base, p2, d.Weaker(base, p2))
	fmt.Printf("one-step relation on the composite: %v (Definition 8 as printed is not transitive)\n",
		d.WeakerOneStep(base, p2))

	dv, ok := d.Explain(base, p1)
	if !ok {
		log.Fatal("derivation lost")
	}
	fmt.Println("\nderivation of the first hop:")
	fmt.Println(dv)

	// Remark 2's bound: with an empty RH the redundant tail is cut entirely.
	bound := core.DefaultNestBound(p, base)
	fmt.Printf("\nRemark 2 default bound = depth(%d) + longest RH chain(%d) = %d\n",
		base.Depth(), p.LongestRoleChain(), bound)
	fmt.Printf("weaker set at the default bound: %v\n", d.WeakerSet(base, bound))

	// Against a policy with a hierarchy, the bound widens accordingly.
	p2pol := policy.Figure2()
	d2 := core.NewDecider(p2pol)
	strong := policy.PrivHRAssignBobStaff
	b2 := core.DefaultNestBound(p2pol, strong)
	fmt.Printf("\nFigure 2, %s: Remark 2 bound = %d, |weaker set| = %d\n",
		strong, b2, len(d2.WeakerSet(strong, b2)))
}
