#!/bin/sh
# CI gate without make: build + vet + tests + engine race pass + a short
# incremental-benchmark smoke so regressions in the incremental path fail
# fast. Mirrors `make check`.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/engine/ ./internal/graph/ ./internal/core/ ./internal/monitor/ ./internal/tenant/ ./internal/server/
go test -run XXX -bench 'Incremental|BatchVsSingle' -benchtime=100x .
