#!/bin/sh
# CI gate without make: build + vet + tests + engine race pass + a short
# incremental-benchmark smoke so regressions in the incremental path fail
# fast, then the benchdiff gate comparing the authorize benchmarks against
# the committed BENCH_*.json baseline. Mirrors `make check`.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/engine/ ./internal/graph/ ./internal/core/ ./internal/monitor/ ./internal/tenant/ ./internal/server/ ./internal/decision/ ./internal/command/
go test -run XXX -bench 'Incremental|BatchVsSingle|CachedAuthorize|AuthorizeAllocs' -benchtime=100x .
scripts/benchdiff.sh
