#!/bin/sh
# Local one-shot gate without make: build + fmt + vet + tests + race pass
# over the concurrent stack (engine, tenant registry, server, replication) +
# the failure-path pass (daemon chaos e2e and storage fault injection, also
# under -race) + a short hot-path benchmark smoke + a bounded serve-mode
# smoke (open-loop socket load against a live in-process rbacd, HTTP and
# binary wire passes; fails on any op error) + the overload saturation smoke (3x an admission-limited
# stack's capacity; fails unless the degradation contract holds), then the
# benchdiff gate comparing the authorize and serving
# benchmarks against the newest committed BENCH_*.json baseline. Mirrors `make check`; CI runs the same pieces as a
# job matrix (see .github/workflows/ci.yml).
set -eux

cd "$(dirname "$0")/.."

go build ./...
test -z "$(gofmt -l .)"
go vet ./...
go test ./...
go test -race ./internal/engine/ ./internal/graph/ ./internal/core/ ./internal/monitor/ ./internal/session/ ./internal/tenant/ ./internal/server/ ./internal/replication/ ./internal/decision/ ./internal/command/ ./internal/admission/ ./internal/placement/ ./internal/api/ ./internal/wire/
go test -race ./cmd/rbacd/ ./internal/storage/ ./internal/fault/
go test -run XXX -bench 'Incremental|BatchVsSingle|CachedAuthorize|AuthorizeAllocs|ReplicatedAuthorize|AccessCheck' -benchtime=100x .
go run ./cmd/rbacbench -serve -wire -serve-rate 300 -serve-duration 3s
go run ./cmd/rbacbench -serve -overload -serve-duration 3s
scripts/benchdiff.sh
