#!/bin/sh
# Benchmark regression gate: re-run the authorize-path benchmarks and
# compare them against the newest committed BENCH_*.json baseline. Fails on
# a >25% ns/op regression beyond the run's machine-skew estimate — the
# larger of the median delta across all compared benchmarks and the delta
# of an ungated same-run canary benchmark (ClosureBuild, a stable
# CPU-bound workload whose drift against its baseline can only be the
# machine), so a uniformly slow or fast machine does not flap the gate;
# override the band with BENCHDIFF_TOLERANCE and the canary with
# BENCHDIFF_CANARY — or on an allocs/op increase: exact for 0-alloc
# baselines (the zero-allocation authorize fast path must stay at 0), with
# a small band for nonzero baselines whose amortized allocations round
# differently depending on the iteration count.
#
# Wired into scripts/check.sh and the GitHub Actions workflow.
set -eu

cd "$(dirname "$0")/.."

# Select the baseline by highest *numeric* suffix, not glob order: a plain
# `ls | tail -1` would sort BENCH_10.json before BENCH_2.json and silently
# compare against a stale baseline.
latest=$(ls BENCH_*.json | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -1)
if [ -z "$latest" ]; then
    echo "benchdiff: no BENCH_<n>.json baseline found" >&2
    exit 1
fi
base="BENCH_${latest}.json"
# ServeAuthorize/ServeDurableSubmit p50s gate the socket serving stack
# end-to-end (one bounded open-loop harness run feeds every Serve entry);
# WireAuthorize/p50 gates the binary data plane from the same run (the wire
# pass rides the serve run, so the HTTP-vs-wire comparison is same-machine
# same-moment); RoutedAuthorize/p50 gates the cross-node routing hop the
# same way (a second harness run against a two-primary placement cluster);
# medians only — tail quantiles are too noisy for a shared-runner gate.
filter=${BENCHDIFF_FILTER:-Authorize,BatchVsSingle,IncrementalGrant,MultiTenantAuthorize,AccessCheck,ServeAuthorize/p50,ServeDurableSubmit/p50,WireAuthorize/p50,RoutedAuthorize/p50}
tol=${BENCHDIFF_TOLERANCE:-25}
canary=${BENCHDIFF_CANARY:-ClosureBuild/roles=1024}

echo "benchdiff: comparing '$filter' against $base (tolerance ${tol}%, canary $canary)"
go run ./cmd/rbacbench -benchdiff "$base" -benchfilter "$filter" -benchcanary "$canary" -benchtolerance "$tol"
