// Package decision implements a lock-free, generation-tagged verdict cache
// for the authorization kernel: a fixed-size, power-of-two, set-associative
// table mapping a command fingerprint to the (allowed, justification)
// verdict computed at some engine generation.
//
// Correctness never depends on eviction or freshness — every entry carries
// the generation it was computed at, and the reader decides validity against
// its own snapshot using two watermarks maintained by the engine writer:
//
//   - posFloor: the oldest generation whose *positive* verdicts are still
//     valid. Ãφ and Definition 5 reachability are monotone in →φ, so purely
//     additive deltas (grants) preserve every allowed verdict; posFloor
//     advances only when an edge removal (or snapshot rebuild) makes the
//     policy shrink.
//   - negFloor: the oldest generation whose *negative* verdicts are still
//     valid. A grant can flip a denial to an allow, so negFloor advances on
//     every applied mutation that adds reachability; removals also advance
//     it (the conservative "everything drops on removal" rule).
//
// A positive entry therefore survives arbitrarily long grant-only churn —
// the decision-cache analogue of the positive-memo invariant in
// internal/core — while one removal invalidates the whole cache in O(1) by
// moving the floors, with no scan and no locks.
//
// Slots use a per-slot sequence lock built entirely from atomics (so the
// race detector models it): writers claim a slot by CAS-ing its sequence
// from even to odd, readers discard any observation whose sequence changed
// mid-read. Readers never block, never spin and never allocate; a writer
// that loses a claim race simply drops its store (it is a cache).
package decision

import "sync/atomic"

// ways is the set associativity: a fingerprint may live in any of `ways`
// consecutive slots of its bucket; stores evict the oldest-generation way.
const ways = 4

// DefaultSlots is the slot count engines use unless configured otherwise.
const DefaultSlots = 8192

// Cache is the sharded verdict cache. The zero value and New(0) are valid,
// permanently-empty caches (every Get misses, every Put is a no-op).
type Cache struct {
	slots []slot
	mask  uint32 // bucket index mask; bucket b spans slots[b*ways : b*ways+ways]

	hits      atomic.Uint64
	misses    atomic.Uint64
	stores    atomic.Uint64
	evictions atomic.Uint64
}

// slot holds one verdict: key packs the fingerprint (low 32 bits, nonzero
// when occupied) with the justification privilege id (high 32 bits); gen
// packs the computing generation (high 63 bits) with the allowed bit.
type slot struct {
	seq atomic.Uint64
	key atomic.Uint64
	gen atomic.Uint64
}

// New builds a cache with the given slot count, rounded up to a power of two
// multiple of the associativity. n <= 0 yields a disabled (always-miss)
// cache.
func New(n int) *Cache {
	if n <= 0 {
		return &Cache{}
	}
	buckets := 1
	for buckets*ways < n {
		buckets *= 2
	}
	return &Cache{slots: make([]slot, buckets*ways), mask: uint32(buckets - 1)}
}

// Slots reports the cache capacity in slots (0 = disabled).
func (c *Cache) Slots() int { return len(c.slots) }

// Enabled reports whether the cache can hold entries at all; callers may
// skip store-side work (witness interning) when it cannot.
func (c *Cache) Enabled() bool { return len(c.slots) != 0 }

// bucket maps a fingerprint to its first slot index. Fingerprints are dense
// small integers, so spread them with a Fibonacci multiply.
func (c *Cache) bucket(fp uint32) uint32 {
	return ((fp * 0x9E3779B1) >> 7 & c.mask) * ways
}

// Get looks up the verdict for fp as seen by a snapshot at generation gen
// with the given validity floors. It returns the justification privilege id
// and the allowed flag when a valid entry exists. Lock-free, allocation-free.
func (c *Cache) Get(fp uint32, gen, posFloor, negFloor uint64) (just uint32, allowed, ok bool) {
	if len(c.slots) == 0 || fp == 0 {
		return 0, false, false
	}
	b := c.bucket(fp)
	for i := uint32(0); i < ways; i++ {
		s := &c.slots[b+i]
		q := s.seq.Load()
		if q&1 != 0 {
			continue // mid-write
		}
		k := s.key.Load()
		if uint32(k) != fp {
			continue
		}
		g := s.gen.Load()
		if s.seq.Load() != q {
			continue // torn read
		}
		egen := g >> 1
		if egen > gen {
			continue // computed at a generation this snapshot cannot see
		}
		if g&1 == 1 {
			if egen < posFloor {
				continue // a removal since then may have shrunk the policy
			}
			c.hits.Add(1)
			return uint32(k >> 32), true, true
		}
		if egen < negFloor {
			continue // a grant since then may have flipped the denial
		}
		c.hits.Add(1)
		return 0, false, true
	}
	c.misses.Add(1)
	return 0, false, false
}

// Put stores the verdict computed for fp at generation gen. Within the
// bucket it reuses fp's existing slot or an empty one, otherwise it evicts
// the oldest-generation way. A store that races with another writer on the
// same slot is dropped. Allocation-free.
func (c *Cache) Put(fp uint32, gen uint64, allowed bool, just uint32) {
	if len(c.slots) == 0 || fp == 0 {
		return
	}
	b := c.bucket(fp)
	victim := -1
	victimGen := ^uint64(0)
	for i := uint32(0); i < ways; i++ {
		s := &c.slots[b+i]
		if s.seq.Load()&1 != 0 {
			continue
		}
		k := s.key.Load()
		if k == 0 || uint32(k) == fp {
			victim = int(b + i)
			break
		}
		if g := s.gen.Load() >> 1; g < victimGen {
			victim, victimGen = int(b+i), g
		}
	}
	if victim < 0 {
		return // whole bucket mid-write; drop the store
	}
	s := &c.slots[victim]
	q := s.seq.Load()
	if q&1 != 0 || !s.seq.CompareAndSwap(q, q+1) {
		return // lost the claim race; drop the store
	}
	oldKey := s.key.Load()
	if oldKey != 0 && uint32(oldKey) == fp && s.gen.Load()>>1 > gen {
		// A newer verdict for the same command is already here; keep it.
		s.seq.Store(q + 2)
		return
	}
	if oldKey != 0 && uint32(oldKey) != fp {
		c.evictions.Add(1)
	}
	g := gen << 1
	if allowed {
		g |= 1
	}
	s.key.Store(uint64(fp) | uint64(just)<<32)
	s.gen.Store(g)
	s.seq.Store(q + 2)
	c.stores.Add(1)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Slots     int    `json:"slots"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
}

// Stats reads the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Slots:     len(c.slots),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
	}
}
