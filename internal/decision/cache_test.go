package decision

import (
	"sync"
	"testing"
)

func TestGetMissOnEmpty(t *testing.T) {
	c := New(64)
	if _, _, ok := c.Get(1, 0, 0, 0); ok {
		t.Fatal("hit on empty cache")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d", st.Misses)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(64)
	c.Put(7, 3, true, 42)
	just, allowed, ok := c.Get(7, 3, 0, 0)
	if !ok || !allowed || just != 42 {
		t.Fatalf("got (%d,%v,%v)", just, allowed, ok)
	}
	c.Put(8, 3, false, 0)
	if _, allowed, ok := c.Get(8, 5, 0, 3); !ok || allowed {
		t.Fatal("negative verdict lost")
	}
}

func TestGenerationVisibility(t *testing.T) {
	c := New(64)
	c.Put(7, 10, true, 1)
	// A snapshot older than the entry cannot see it.
	if _, _, ok := c.Get(7, 9, 0, 0); ok {
		t.Fatal("entry from the future served to an older snapshot")
	}
	// A snapshot at or after the entry's generation can.
	if _, _, ok := c.Get(7, 10, 0, 0); !ok {
		t.Fatal("entry invisible at its own generation")
	}
	if _, _, ok := c.Get(7, 99, 0, 0); !ok {
		t.Fatal("entry invisible at a later generation")
	}
}

func TestFloors(t *testing.T) {
	c := New(64)
	c.Put(1, 5, true, 9)
	c.Put(2, 5, false, 0)
	// Positive survives a later additive delta (posFloor stays, negFloor moves).
	if _, allowed, ok := c.Get(1, 6, 0, 6); !ok || !allowed {
		t.Fatal("positive did not survive an additive delta")
	}
	// Negative does not survive an additive delta.
	if _, _, ok := c.Get(2, 6, 0, 6); ok {
		t.Fatal("negative survived an additive delta")
	}
	// Nothing survives a removal (both floors move).
	if _, _, ok := c.Get(1, 7, 7, 7); ok {
		t.Fatal("positive survived a removal")
	}
	if _, _, ok := c.Get(2, 7, 7, 7); ok {
		t.Fatal("negative survived a removal")
	}
}

func TestNewerEntryKept(t *testing.T) {
	c := New(64)
	c.Put(7, 10, true, 1)
	c.Put(7, 4, false, 0) // stale write loses
	if _, allowed, ok := c.Get(7, 10, 0, 0); !ok || !allowed {
		t.Fatal("newer entry was clobbered by an older write")
	}
}

func TestEvictionAccounting(t *testing.T) {
	c := New(ways) // a single bucket
	n := 3 * ways
	for fp := uint32(1); fp <= uint32(n); fp++ {
		c.Put(fp, uint64(fp), true, fp)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded after overfilling one bucket: %+v", st)
	}
	if st.Stores != uint64(n) {
		t.Fatalf("stores = %d, want %d", st.Stores, n)
	}
	// The highest-generation entries are the ones retained.
	hits := 0
	for fp := uint32(1); fp <= uint32(n); fp++ {
		if _, _, ok := c.Get(fp, uint64(n), 0, 0); ok {
			hits++
		}
	}
	if hits != ways {
		t.Fatalf("%d entries resident in a %d-way bucket", hits, ways)
	}
	if _, _, ok := c.Get(uint32(n), uint64(n), 0, 0); !ok {
		t.Fatal("newest entry was evicted instead of the oldest")
	}
}

func TestDisabledCache(t *testing.T) {
	for _, c := range []*Cache{New(0), New(-5), {}} {
		c.Put(1, 1, true, 1)
		if _, _, ok := c.Get(1, 1, 0, 0); ok {
			t.Fatal("disabled cache returned a hit")
		}
		if c.Enabled() {
			t.Fatal("disabled cache claims enabled")
		}
		if st := c.Stats(); st.Slots != 0 || st.Stores != 0 || st.Misses != 0 {
			t.Fatalf("disabled cache counted traffic: %+v", st)
		}
	}
}

func TestSlotRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, ways}, {ways, ways}, {ways + 1, 2 * ways}, {100, 128}, {8192, 8192},
	} {
		if got := New(tc.in).Slots(); got != tc.want {
			t.Fatalf("New(%d).Slots() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestZeroFingerprintRejected(t *testing.T) {
	c := New(64)
	c.Put(0, 1, true, 1)
	if _, _, ok := c.Get(0, 1, 0, 0); ok {
		t.Fatal("fingerprint 0 must never hit")
	}
	if st := c.Stats(); st.Stores != 0 {
		t.Fatal("fingerprint 0 was stored")
	}
}

// TestConcurrentPutGet hammers one small cache from many goroutines; run
// under -race this validates the all-atomic seqlock protocol, and the
// self-check validates that a hit never returns a verdict inconsistent with
// what some writer stored for that fingerprint (just must equal fp here).
func TestConcurrentPutGet(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				fp := uint32(i%200 + 1)
				if g%2 == 0 {
					c.Put(fp, uint64(i), true, fp)
				} else if just, allowed, ok := c.Get(fp, ^uint64(0)>>1, 0, 0); ok {
					if !allowed || just != fp {
						errc <- errInconsistent(fp, just)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

type errInconsistentT struct{ fp, just uint32 }

func errInconsistent(fp, just uint32) error { return errInconsistentT{fp, just} }
func (e errInconsistentT) Error() string    { return "torn read: fp/just mismatch" }
