// Package placement decides which primary owns each tenant in a
// multi-primary cluster. The decision is a pure function of a versioned Map:
// a deterministic consistent-hash ring (fixed seed, fixed virtual-node
// count) over the node set, plus an explicit override table recording
// tenants that migrations have pinned elsewhere. Two nodes holding the same
// Map version always agree on every owner — the property the routing front
// and the cross-node tests lean on.
//
// Maps are immutable; every change (override, node re-point) produces a new
// Map with Version+1. A node-local Table guards the current Map, persists
// candidates durably before exposing them, and adopts pushed maps only when
// strictly newer, mirroring how replication.Epoch handles fencing epochs.
package placement

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the keyspace split even to within a few percent for small
// clusters while the ring stays tiny (N*64 entries, rebuilt only on
// unmarshal).
const DefaultVNodes = 64

// Node is one primary in the cluster: a stable identity plus the base URL
// peers and redirected clients use to reach it. Addr may change (promotion
// re-points a dead node's ID at its promoted follower); ID never does, so
// ring positions survive failover.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Map is one version of the cluster's tenant→primary assignment.
type Map struct {
	Version uint64 `json:"version"`
	Seed    uint64 `json:"seed"`
	VNodes  int    `json:"vnodes"`
	// Nodes is kept sorted by ID so the JSON form is canonical.
	Nodes []Node `json:"nodes"`
	// Overrides pins individual tenants to a node ID regardless of the
	// ring — the durable record of completed migrations.
	Overrides map[string]string `json:"overrides,omitempty"`

	ringOnce sync.Once
	ring     []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into Nodes
}

// New builds a version-1 map over the given nodes. Node IDs must be unique
// and non-empty.
func New(seed uint64, nodes []Node) (*Map, error) {
	m := &Map{Version: 1, Seed: seed, VNodes: DefaultVNodes, Nodes: append([]Node(nil), nodes...)}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].ID < m.Nodes[j].ID })
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.ID == "" {
			return nil, errors.New("placement: empty node id")
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("placement: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	return m, nil
}

func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-64a mixes its trailing
// bytes weakly into the high bits, so sequential names ("tenant-0001",
// "tenant-0002", …) cluster on one arc of the ring and the split goes 70/20/10
// instead of even; full avalanche restores the uniformity consistent hashing
// assumes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (m *Map) buildRing() {
	pts := make([]ringPoint, 0, len(m.Nodes)*m.vnodes())
	for i, n := range m.Nodes {
		for v := 0; v < m.vnodes(); v++ {
			pts = append(pts, ringPoint{hash64(fmt.Sprintf("%d", m.Seed), n.ID, fmt.Sprintf("%d", v)), i})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Tie-break on node index so equal hashes (vanishingly rare but
		// possible) still order identically on every node.
		return pts[i].node < pts[j].node
	})
	m.ring = pts
}

func (m *Map) vnodes() int {
	if m.VNodes <= 0 {
		return DefaultVNodes
	}
	return m.VNodes
}

// Owner returns the node that owns tenant under this map. ok is false only
// when the map has no nodes.
func (m *Map) Owner(tenant string) (Node, bool) {
	if m == nil || len(m.Nodes) == 0 {
		return Node{}, false
	}
	if id, pinned := m.Overrides[tenant]; pinned {
		if n, ok := m.NodeByID(id); ok {
			return n, true
		}
		// Override pointing at a removed node: fall through to the ring.
	}
	m.ringOnce.Do(m.buildRing)
	h := hash64("tenant", tenant)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.Nodes[m.ring[i].node], true
}

// NodeByID resolves a node identity to its current address.
func (m *Map) NodeByID(id string) (Node, bool) {
	if m == nil {
		return Node{}, false
	}
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// clone copies the mutable parts (ring is rebuilt lazily on the copy).
func (m *Map) clone() *Map {
	c := &Map{Version: m.Version, Seed: m.Seed, VNodes: m.VNodes, Nodes: append([]Node(nil), m.Nodes...)}
	if len(m.Overrides) > 0 {
		c.Overrides = make(map[string]string, len(m.Overrides))
		for k, v := range m.Overrides {
			c.Overrides[k] = v
		}
	}
	return c
}

// WithOverride returns a Version+1 copy pinning tenant to node id. An
// override matching the ring assignment is stored anyway: it documents the
// migration and keeps the tenant stable across later node-set changes.
func (m *Map) WithOverride(tenant, id string) (*Map, error) {
	if _, ok := m.NodeByID(id); !ok {
		return nil, fmt.Errorf("placement: unknown node %q", id)
	}
	c := m.clone()
	if c.Overrides == nil {
		c.Overrides = make(map[string]string, 1)
	}
	c.Overrides[tenant] = id
	c.Version++
	return c, nil
}

// WithNodeAddr returns a Version+1 copy with node id re-pointed at addr —
// the cluster-level repoint after a follower is promoted in a dead
// primary's place.
func (m *Map) WithNodeAddr(id, addr string) (*Map, error) {
	c := m.clone()
	for i := range c.Nodes {
		if c.Nodes[i].ID == id {
			c.Nodes[i].Addr = addr
			c.Version++
			return c, nil
		}
	}
	return nil, fmt.Errorf("placement: unknown node %q", id)
}

// Encode renders the canonical JSON form used on the wire and in the node
// store's placement record.
func (m *Map) Encode() ([]byte, error) { return json.Marshal(m) }

// DecodeMap parses a Map from its JSON form.
func DecodeMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if len(m.Nodes) == 0 {
		return nil, errors.New("placement: map has no nodes")
	}
	return &m, nil
}

// ErrVersionConflict reports a CAS miss against the Table.
var ErrVersionConflict = errors.New("placement: version conflict")

// IsVersionConflict reports whether err is a Table CAS miss.
func IsVersionConflict(err error) bool { return errors.Is(err, ErrVersionConflict) }

// Table is a node's handle on its current placement map. All transitions
// persist the candidate map durably before exposing it, so a restarted node
// never resurrects an older version it already acknowledged. A nil Table
// (or one holding no map) means placement routing is disabled — the
// single-node deployments of earlier PRs.
type Table struct {
	mu      sync.Mutex
	cur     atomic.Pointer[Map]
	persist func([]byte) error
}

// NewTable wraps the recovered map (nil when the node store held none) and
// a persistence hook receiving the encoded map.
func NewTable(cur *Map, persist func([]byte) error) *Table {
	t := &Table{persist: persist}
	if cur != nil {
		t.cur.Store(cur)
	}
	return t
}

// Current returns the live map, or nil when none is installed. The returned
// Map must be treated as immutable.
func (t *Table) Current() *Map {
	if t == nil {
		return nil
	}
	return t.cur.Load()
}

// Install adopts m iff it is strictly newer than the current map (install-
// if-newer is what makes gossip pushes idempotent and immune to reordering).
// It reports whether the map was adopted. Persist failures leave the
// current map unchanged.
func (t *Table) Install(m *Map) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur := t.cur.Load(); cur != nil && m.Version <= cur.Version {
		return false, nil
	}
	if err := t.persistLocked(m); err != nil {
		return false, err
	}
	t.cur.Store(m)
	return true, nil
}

// CAS applies mutate to the current map iff its version equals ifVersion,
// persists the result, and installs it. A version mismatch (or no map)
// returns ErrVersionConflict.
func (t *Table) CAS(ifVersion uint64, mutate func(*Map) (*Map, error)) (*Map, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	if cur == nil || cur.Version != ifVersion {
		return nil, ErrVersionConflict
	}
	next, err := mutate(cur)
	if err != nil {
		return nil, err
	}
	if next.Version <= cur.Version {
		return nil, fmt.Errorf("placement: mutation did not advance version (%d -> %d)", cur.Version, next.Version)
	}
	if err := t.persistLocked(next); err != nil {
		return nil, err
	}
	t.cur.Store(next)
	return next, nil
}

func (t *Table) persistLocked(m *Map) error {
	if t.persist == nil {
		return nil
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return t.persist(data)
}
