package placement

import (
	"encoding/json"
	"fmt"
	"testing"
)

func nodeSet(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("http://10.0.0.%d:8270", i+1)}
	}
	return nodes
}

func tenants(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return names
}

// Two nodes that agree on (version, seed, node set) must agree on every
// owner — even when one of them rebuilt its Map from the wire form. This is
// the property the routing front leans on: a forwarded request lands on a
// node whose own map assigns it to itself.
func TestOwnerDeterministicAcrossDecodes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		m, err := New(1, nodeSet(n))
		if err != nil {
			t.Fatal(err)
		}
		data, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		remote, err := DecodeMap(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range tenants(500) {
			a, okA := m.Owner(name)
			b, okB := remote.Owner(name)
			if !okA || !okB || a.ID != b.ID {
				t.Fatalf("N=%d tenant %s: local %v(%v) remote %v(%v)", n, name, a.ID, okA, b.ID, okB)
			}
		}
	}
}

// Shuffled node order and JSON field order must not change ownership: New
// sorts the node list, and the ring points hash (seed, id, vnode) only.
func TestOwnerIgnoresInputOrder(t *testing.T) {
	nodes := nodeSet(4)
	m1, err := New(7, nodes)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]Node, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	m2, err := New(7, reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tenants(300) {
		a, _ := m1.Owner(name)
		b, _ := m2.Owner(name)
		if a.ID != b.ID {
			t.Fatalf("tenant %s: %s vs %s under shuffled input", name, a.ID, b.ID)
		}
	}
}

// Different seeds produce different rings (the seed is a real input, not
// decoration): at least some tenants move between seed 1 and seed 2.
func TestSeedChangesRing(t *testing.T) {
	m1, _ := New(1, nodeSet(3))
	m2, _ := New(2, nodeSet(3))
	moved := 0
	for _, name := range tenants(300) {
		a, _ := m1.Owner(name)
		b, _ := m2.Owner(name)
		if a.ID != b.ID {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed change moved no tenants — seed is not feeding the ring")
	}
}

// Consistent hashing's minimal-movement bound: growing N nodes by one moves
// roughly tenants/(N+1) tenants, never more than ceil(tenants/(N+1)) plus
// slack for vnode imbalance; and every move lands on the new node (a tenant
// never moves between two surviving nodes).
func TestAddNodeMovesBoundedFraction(t *testing.T) {
	const T = 2000
	names := tenants(T)
	for _, n := range []int{2, 3, 4, 7} {
		before, err := New(1, nodeSet(n))
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(1, nodeSet(n+1)) // adds node n+1, keeps n1..n
		if err != nil {
			t.Fatal(err)
		}
		newID := fmt.Sprintf("n%d", n+1)
		moved := 0
		for _, name := range names {
			a, _ := before.Owner(name)
			b, _ := after.Owner(name)
			if a.ID == b.ID {
				continue
			}
			if b.ID != newID {
				t.Fatalf("N=%d tenant %s moved %s→%s, not to the new node", n, name, a.ID, b.ID)
			}
			moved++
		}
		// Expected share is T/(N+1); allow 2× for 64-vnode imbalance. The
		// property being guarded is "no cascade": naive modulo hashing would
		// move ~N/(N+1) of all tenants (e.g. 2/3 at N=2), far above this.
		bound := 2 * (T/(n+1) + 1)
		if moved > bound {
			t.Fatalf("N=%d→%d moved %d of %d tenants, bound %d", n, n+1, moved, T, bound)
		}
		if moved == 0 {
			t.Fatalf("N=%d→%d moved nothing — new node owns no keyspace", n, n+1)
		}
	}
}

// Dropping a node relocates only its own tenants, spread over survivors.
func TestRemoveNodeStrandsOnlyItsTenants(t *testing.T) {
	const T = 1500
	names := tenants(T)
	before, _ := New(1, nodeSet(4))
	after, _ := New(1, nodeSet(3)) // drops n4
	for _, name := range names {
		a, _ := before.Owner(name)
		b, _ := after.Owner(name)
		if a.ID != "n4" && a.ID != b.ID {
			t.Fatalf("tenant %s moved %s→%s though its node survived", name, a.ID, b.ID)
		}
	}
}

// The vnode count keeps the split roughly even: no node owns more than ~2×
// its fair share at N=3 over a large tenant population.
func TestRingBalance(t *testing.T) {
	const T = 3000
	m, _ := New(1, nodeSet(3))
	counts := map[string]int{}
	for _, name := range tenants(T) {
		o, _ := m.Owner(name)
		counts[o.ID]++
	}
	for id, c := range counts {
		if c > 2*T/3 || c < T/8 {
			t.Fatalf("node %s owns %d of %d tenants — ring badly unbalanced (%v)", id, c, T, counts)
		}
	}
}

func TestOverridesAndVersioning(t *testing.T) {
	m, err := New(1, nodeSet(3))
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := m.Owner("acme")
	target := "n1"
	if owner.ID == "n1" {
		target = "n2"
	}
	m2, err := m.WithOverride("acme", target)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != m.Version+1 {
		t.Fatalf("override version %d, want %d", m2.Version, m.Version+1)
	}
	if o, _ := m2.Owner("acme"); o.ID != target {
		t.Fatalf("override ignored: owner %s, want %s", o.ID, target)
	}
	// The original is untouched (maps are immutable values).
	if o, _ := m.Owner("acme"); o.ID != owner.ID {
		t.Fatalf("WithOverride mutated its receiver")
	}
	// Round-trip preserves the override.
	data, _ := m2.Encode()
	back, err := DecodeMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if o, _ := back.Owner("acme"); o.ID != target {
		t.Fatalf("decoded override lost: owner %s, want %s", o.ID, target)
	}
	// Unknown node refused.
	if _, err := m.WithOverride("acme", "nope"); err == nil {
		t.Fatal("override to unknown node accepted")
	}

	// Re-point: same version bump, same identity, new address, same owners.
	m3, err := m2.WithNodeAddr(target, "http://promoted:9999")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Version != m2.Version+1 {
		t.Fatalf("repoint version %d, want %d", m3.Version, m2.Version+1)
	}
	if o, _ := m3.Owner("acme"); o.ID != target || o.Addr != "http://promoted:9999" {
		t.Fatalf("repoint owner %+v", o)
	}
	for _, name := range tenants(200) {
		a, _ := m2.Owner(name)
		b, _ := m3.Owner(name)
		if a.ID != b.ID {
			t.Fatalf("repoint moved tenant %s (%s→%s)", name, a.ID, b.ID)
		}
	}
}

func TestTableInstallAndCAS(t *testing.T) {
	var persisted [][]byte
	persist := func(data []byte) error {
		persisted = append(persisted, append([]byte(nil), data...))
		return nil
	}
	m1, _ := New(1, nodeSet(2))
	tbl := NewTable(nil, persist)
	if tbl.Current() != nil {
		t.Fatal("empty table holds a map")
	}
	if ok, err := tbl.Install(m1); err != nil || !ok {
		t.Fatalf("install v1: %v %v", ok, err)
	}
	// Install-if-newer: an equal or older push is a no-op.
	if ok, _ := tbl.Install(m1); ok {
		t.Fatal("re-install of same version adopted")
	}

	m2, err := tbl.CAS(1, func(cur *Map) (*Map, error) { return cur.WithOverride("acme", "n2") })
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 || tbl.Current().Version != 2 {
		t.Fatalf("CAS result v%d table v%d", m2.Version, tbl.Current().Version)
	}
	// Stale CAS misses.
	if _, err := tbl.CAS(1, func(cur *Map) (*Map, error) { return cur.WithOverride("acme", "n1") }); !IsVersionConflict(err) {
		t.Fatalf("stale CAS: %v, want version conflict", err)
	}
	// Older gossip after CAS is refused, newer adopted.
	if ok, _ := tbl.Install(m1); ok {
		t.Fatal("older gossip adopted after CAS")
	}
	m5 := m2.clone()
	m5.Version = 5
	if ok, _ := tbl.Install(m5); !ok {
		t.Fatal("newer gossip refused")
	}
	// Everything exposed was persisted first, in order.
	if len(persisted) != 3 {
		t.Fatalf("persisted %d maps, want 3", len(persisted))
	}
	var last Map
	if err := json.Unmarshal(persisted[len(persisted)-1], &last); err != nil || last.Version != 5 {
		t.Fatalf("last persisted version %d err %v", last.Version, err)
	}
}

func TestTableCASPersistFailureLeavesCurrent(t *testing.T) {
	m1, _ := New(1, nodeSet(2))
	fail := fmt.Errorf("disk gone")
	tbl := NewTable(m1, func([]byte) error { return fail })
	if _, err := tbl.CAS(1, func(cur *Map) (*Map, error) { return cur.WithOverride("a", "n1") }); err == nil {
		t.Fatal("CAS survived persist failure")
	}
	if tbl.Current().Version != 1 {
		t.Fatalf("failed CAS advanced the table to v%d", tbl.Current().Version)
	}
}
