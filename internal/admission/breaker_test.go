package admission

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) Advance(d time.Duration) { f.now = f.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_000_000, 0)} }
func testBreaker(clk *fakeClock, thr int) *Breaker {
	return NewBreaker(BreakerOptions{
		Threshold:   thr,
		Cooldown:    time.Second,
		MaxCooldown: 8 * time.Second,
		JitterSeed:  42,
		Clock:       clk.Now,
	})
}

// The breaker trips on the Threshold-th consecutive failure, not before,
// and a success in between resets the streak.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("open before threshold")
	}
	b.Failure() // third consecutive
	if !b.Open() {
		t.Fatal("not open after threshold consecutive failures")
	}
	if err := b.Allow(); !IsBreakerOpen(err) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}
	if b.RetryAfter() <= 0 {
		t.Fatal("RetryAfter should be positive while open")
	}
	if st := b.Stats(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// After the cooldown, exactly one caller is admitted as the half-open
// probe; its success closes the breaker, other callers stay refused until
// the verdict.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.Failure()
	if !b.Open() {
		t.Fatal("threshold-1 breaker should trip on first failure")
	}
	// Jittered window is within [cool/2, 3*cool/2); advancing past that
	// upper bound always clears it.
	clk.Advance(1500 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	// Probe in flight: everyone else still refused, and the peek stays
	// open so write-forwarding keeps shedding.
	if err := b.Allow(); !IsBreakerOpen(err) {
		t.Fatalf("second caller during probe = %v, want ErrBreakerOpen", err)
	}
	if !b.Open() {
		t.Fatal("Open() should stay true while the probe is in flight")
	}
	b.Success()
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
}

// A failed probe re-trips with a doubled cooldown (capped at MaxCooldown).
func TestBreakerFailedProbeDoublesCooldown(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.Failure() // trip #1, window from 1s cooldown
	first := b.RetryAfter()
	clk.Advance(1500 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Failure() // failed probe: trip #2, window from 2s cooldown
	second := b.RetryAfter()
	if second <= first {
		t.Fatalf("cooldown did not grow: first %v, second %v", first, second)
	}
	if st := b.Stats(); st.Trips != 2 {
		t.Fatalf("trips = %d, want 2", st.Trips)
	}
}

// The jittered windows are deterministic per seed — a chaos scenario
// replays bit-for-bit.
func TestBreakerJitterDeterministic(t *testing.T) {
	mk := func() time.Duration {
		clk := newFakeClock()
		b := testBreaker(clk, 1)
		b.Failure()
		return b.RetryAfter()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed, different windows: %v vs %v", a, b)
	}
}

// Reset (the repoint path) forgets everything.
func TestBreakerReset(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.Failure()
	if !b.Open() {
		t.Fatal("not open")
	}
	b.Reset()
	if b.Open() {
		t.Fatal("open after reset")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("reset breaker refused: %v", err)
	}
	if st := b.Stats(); st.State != "closed" || st.Failures != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

// A nil breaker passes everything — unconfigured call sites need no
// conditionals.
func TestNilBreaker(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil Allow = %v", err)
	}
	b.Success()
	b.Failure()
	b.Reset()
	if b.Open() {
		t.Fatal("nil breaker open")
	}
	if st := b.Stats(); st.State != "none" {
		t.Fatalf("nil stats = %+v", st)
	}
}
