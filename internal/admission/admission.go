// Package admission is the server's overload-protection core: per-class
// concurrency limits behind a semaphore-with-deadline primitive, and a
// circuit breaker for upstream dependencies. A node under 3× its sustained
// capacity must refuse the excess quickly and cheaply — queueing it
// unboundedly turns one overload into unbounded latency for every caller —
// so each request class (read / write / replication / analysis) owns a
// bounded in-flight budget plus a bounded wait queue, and whatever exceeds
// them is shed immediately with a typed error the transport maps onto
// 429/503 + Retry-After.
//
// Shed order is a policy choice made by the limits, not the code: reads are
// configured with a shallow (usually zero) queue so they shed first — a
// stale-tolerant read is the cheapest work to refuse and the easiest for a
// client to retry elsewhere — while writes get a deeper queue because a
// shed write is work the client must redo against the same primary.
//
// The package imports only the standard library; the server and tenant
// layers adapt it through their own seams.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Class partitions requests by the resource they contend on. Limits are
// enforced per class so a flood of one kind cannot starve the others.
type Class int

const (
	// Read covers authorize/check/explain/audit/stats-free lookups — work
	// served lock-free from engine snapshots.
	Read Class = iota
	// Write covers submit and policy installs — work serialised through a
	// tenant's commit group.
	Write
	// Replication covers follower pull/bootstrap traffic — long-polls that
	// legitimately outlast any request deadline.
	Replication
	// Analysis covers offline what-if/reachability jobs (reserved; wired
	// when ROADMAP item 5 lands an analysis API).
	Analysis

	numClasses
)

func (c Class) String() string {
	switch c {
	case Read:
		return "read"
	case Write:
		return "write"
	case Replication:
		return "replication"
	case Analysis:
		return "analysis"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Typed refusal causes. Transports map IsOverloaded on reads to 429 and
// everything else to 503, always with Retry-After.
var (
	// ErrOverloaded means the class was saturated and its queue full — the
	// request was refused without waiting.
	ErrOverloaded = errors.New("admission: overloaded")
	// ErrDeadline means the request's deadline expired (or its client went
	// away) while it waited for capacity.
	ErrDeadline = errors.New("admission: deadline expired")
)

// IsOverloaded reports whether err is a queue-full refusal.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// IsDeadline reports whether err is a deadline expiry while queued.
func IsDeadline(err error) bool { return errors.Is(err, ErrDeadline) }

// Limits bounds one class. The zero value is "unlimited but accounted":
// in-flight and admitted counters still run so /stats shows load even where
// no limit applies.
type Limits struct {
	// MaxInFlight caps concurrently admitted requests (0 = unlimited).
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot; arrivals beyond
	// it are refused immediately with ErrOverloaded. 0 means no waiting at
	// all — saturation sheds on arrival, which is the read-class default.
	// Ignored while MaxInFlight is 0.
	MaxQueue int
}

// Config carries the per-class limits for a Controller.
type Config struct {
	Read        Limits
	Write       Limits
	Replication Limits
	Analysis    Limits
}

// ClassStats is one class's live admission state plus lifetime counters.
type ClassStats struct {
	InFlight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
	Admitted     uint64 `json:"admitted"`
	ShedOverload uint64 `json:"shed_overload"`
	ShedDeadline uint64 `json:"shed_deadline"`
	MaxInFlight  int    `json:"max_inflight"`
	MaxQueue     int    `json:"max_queue"`
}

// Stats is the per-class admission picture exposed on /stats and /healthz.
type Stats struct {
	Read        ClassStats `json:"read"`
	Write       ClassStats `json:"write"`
	Replication ClassStats `json:"replication"`
	Analysis    ClassStats `json:"analysis"`
}

// Shed is the lifetime total of refused requests across every class and
// cause — the number a load harness reconciles against client-observed
// 429/503 responses.
func (s Stats) Shed() uint64 {
	total := uint64(0)
	for _, c := range [...]ClassStats{s.Read, s.Write, s.Replication, s.Analysis} {
		total += c.ShedOverload + c.ShedDeadline
	}
	return total
}

// sem is one class's semaphore-with-deadline: a buffered channel holds the
// in-flight slots, an atomic counter bounds the wait queue, and atomics
// carry the stats so Acquire never takes a lock on the fast path.
type sem struct {
	limits Limits
	// slots carries one token per admitted request; nil when unlimited.
	slots chan struct{}

	inflight     atomic.Int64
	queued       atomic.Int64
	admitted     atomic.Uint64
	shedOverload atomic.Uint64
	shedDeadline atomic.Uint64
}

func newSem(l Limits) *sem {
	s := &sem{limits: l}
	if l.MaxInFlight > 0 {
		s.slots = make(chan struct{}, l.MaxInFlight)
	}
	return s
}

// acquire admits the caller or refuses with a typed error. On success the
// returned release must be called exactly once when the request finishes.
func (s *sem) acquire(ctx context.Context) (release func(), err error) {
	if s.slots == nil {
		// Unlimited: account, never refuse.
		s.inflight.Add(1)
		s.admitted.Add(1)
		return func() { s.inflight.Add(-1) }, nil
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// Saturated: wait in the bounded queue or shed on arrival.
		if int(s.queued.Add(1)) > s.limits.MaxQueue {
			s.queued.Add(-1)
			s.shedOverload.Add(1)
			return nil, fmt.Errorf("%d in flight, queue full: %w", s.limits.MaxInFlight, ErrOverloaded)
		}
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.shedDeadline.Add(1)
			return nil, fmt.Errorf("queued at %d in flight: %w", s.limits.MaxInFlight, ErrDeadline)
		}
	}
	s.inflight.Add(1)
	s.admitted.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.slots
	}, nil
}

func (s *sem) stats() ClassStats {
	return ClassStats{
		InFlight:     s.inflight.Load(),
		Queued:       s.queued.Load(),
		Admitted:     s.admitted.Load(),
		ShedOverload: s.shedOverload.Load(),
		ShedDeadline: s.shedDeadline.Load(),
		MaxInFlight:  s.limits.MaxInFlight,
		MaxQueue:     s.limits.MaxQueue,
	}
}

// Controller enforces per-class limits. A nil *Controller admits everything
// (and accounts nothing), so callers can wire it unconditionally.
type Controller struct {
	classes [numClasses]*sem
}

// New builds a controller over cfg.
func New(cfg Config) *Controller {
	c := &Controller{}
	c.classes[Read] = newSem(cfg.Read)
	c.classes[Write] = newSem(cfg.Write)
	c.classes[Replication] = newSem(cfg.Replication)
	c.classes[Analysis] = newSem(cfg.Analysis)
	return c
}

// Acquire admits one request of class cl, waiting within ctx's deadline if
// the class is saturated but its queue has room. On success, release must be
// called exactly once. Refusals carry ErrOverloaded (queue full — shed on
// arrival) or ErrDeadline (expired while queued).
func (c *Controller) Acquire(ctx context.Context, cl Class) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	rel, err := c.classes[cl].acquire(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cl, err)
	}
	return rel, nil
}

// Stats snapshots every class's admission state.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Read:        c.classes[Read].stats(),
		Write:       c.classes[Write].stats(),
		Replication: c.classes[Replication].stats(),
		Analysis:    c.classes[Analysis].stats(),
	}
}
