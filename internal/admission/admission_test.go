package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A saturated class with MaxQueue 0 sheds on arrival with ErrOverloaded.
func TestShedOnArrivalWhenQueueZero(t *testing.T) {
	c := New(Config{Read: Limits{MaxInFlight: 1, MaxQueue: 0}})
	rel, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := c.Acquire(context.Background(), Read); !IsOverloaded(err) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	rel()
	// Slot free again: admits.
	rel2, err := c.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	rel2()
	st := c.Stats().Read
	if st.Admitted != 2 || st.ShedOverload != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 shed / 0 inflight", st)
	}
}

// A queued waiter whose context expires is refused with ErrDeadline and
// gives its queue slot back.
func TestQueuedWaiterDeadline(t *testing.T) {
	c := New(Config{Write: Limits{MaxInFlight: 1, MaxQueue: 2}})
	rel, err := c.Acquire(context.Background(), Write)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx, Write); !IsDeadline(err) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	st := c.Stats().Write
	if st.ShedDeadline != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 deadline shed / 0 queued", st)
	}
	rel()
}

// A queued waiter is admitted when the slot frees before its deadline.
func TestQueuedWaiterAdmittedOnRelease(t *testing.T) {
	c := New(Config{Write: Limits{MaxInFlight: 1, MaxQueue: 1}})
	rel, err := c.Acquire(context.Background(), Write)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(context.Background(), Write)
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Give the waiter time to queue, then free the slot.
	for c.Stats().Write.Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

// The queue itself is bounded: arrivals beyond MaxQueue shed immediately
// even though earlier waiters are still waiting.
func TestQueueDepthBounded(t *testing.T) {
	c := New(Config{Write: Limits{MaxInFlight: 1, MaxQueue: 1}})
	rel, err := c.Acquire(context.Background(), Write)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Acquire(ctx, Write) // parks in the queue until cancel
	}()
	for c.Stats().Write.Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Acquire(context.Background(), Write); !IsOverloaded(err) {
		t.Fatalf("want ErrOverloaded beyond queue depth, got %v", err)
	}
	cancel()
	wg.Wait()
}

// Unlimited classes admit everything but still account in-flight load.
func TestUnlimitedClassAccounts(t *testing.T) {
	c := New(Config{})
	rel1, _ := c.Acquire(context.Background(), Read)
	rel2, _ := c.Acquire(context.Background(), Replication)
	st := c.Stats()
	if st.Read.InFlight != 1 || st.Replication.InFlight != 1 {
		t.Fatalf("stats = %+v, want 1 inflight read + replication", st)
	}
	rel1()
	rel2()
	if got := c.Stats().Read.InFlight; got != 0 {
		t.Fatalf("inflight after release = %d", got)
	}
}

// A nil controller admits everything — call sites wire it unconditionally.
func TestNilController(t *testing.T) {
	var c *Controller
	rel, err := c.Acquire(context.Background(), Write)
	if err != nil {
		t.Fatalf("nil acquire: %v", err)
	}
	rel()
	if got := c.Stats().Shed(); got != 0 {
		t.Fatalf("nil stats shed = %d", got)
	}
}

// Hammer one limited class from many goroutines under -race: the in-flight
// count never exceeds the limit and the books balance.
func TestConcurrentAdmissionInvariant(t *testing.T) {
	const limit = 4
	c := New(Config{Read: Limits{MaxInFlight: limit, MaxQueue: 8}})
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				rel, err := c.Acquire(ctx, Read)
				cancel()
				if err != nil {
					if !IsOverloaded(err) && !IsDeadline(err) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inflight.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("peak in-flight %d exceeds limit %d", p, limit)
	}
	st := c.Stats().Read
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("books unbalanced after drain: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

// Error text carries the class for log greppability.
func TestErrorMentionsClass(t *testing.T) {
	c := New(Config{Write: Limits{MaxInFlight: 1, MaxQueue: 0}})
	rel, _ := c.Acquire(context.Background(), Write)
	defer rel()
	_, err := c.Acquire(context.Background(), Write)
	if err == nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want overload, got %v", err)
	}
	if want := "write"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention class %q", err, want)
	}
}
