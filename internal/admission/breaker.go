package admission

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrBreakerOpen is the fast-local-failure a tripped Breaker returns in
// place of a doomed upstream call.
var ErrBreakerOpen = errors.New("admission: circuit breaker open")

// IsBreakerOpen reports whether err is a breaker fast-failure.
func IsBreakerOpen(err error) bool { return errors.Is(err, ErrBreakerOpen) }

// BreakerOptions configures a Breaker. The zero value gets sane defaults.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5).
	Threshold int
	// Cooldown is the initial open window before a half-open probe is
	// allowed (default 500ms). Each re-trip doubles it, jittered, up to
	// MaxCooldown.
	Cooldown time.Duration
	// MaxCooldown caps the doubling (default 30s).
	MaxCooldown time.Duration
	// JitterSeed seeds the cooldown jitter so a failure scenario replays
	// deterministically; 0 derives a seed from the clock. Mirrors
	// replication.FollowerOptions.JitterSeed.
	JitterSeed int64
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerStats is the breaker's observable state for /stats.
type BreakerStats struct {
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	Trips    uint64 `json:"trips"`
	// RetryAfterMs is how long until the next half-open probe is allowed
	// (0 when closed or probing now).
	RetryAfterMs int64 `json:"retry_after_ms"`
}

// Breaker is a circuit breaker shared between the follower's pull/bootstrap
// client and the server's write-forwarding path: after Threshold consecutive
// upstream failures it opens, turning every would-be upstream call into one
// fast local error until a jittered cooldown elapses; then a single
// half-open probe decides whether to close again or re-trip with a doubled
// cooldown. All methods are safe for concurrent use and nil-safe, so call
// sites need no breaker-configured conditionals.
type Breaker struct {
	opts BreakerOptions

	mu    sync.Mutex
	rng   *rand.Rand
	state breakerState
	// fails counts consecutive failures since the last success.
	fails int
	trips uint64
	// cool is the next open window; doubles per trip up to MaxCooldown.
	cool time.Duration
	// until is when the current open window ends.
	until time.Time
}

// NewBreaker builds a breaker with opts (zero fields defaulted).
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 500 * time.Millisecond
	}
	if opts.MaxCooldown <= 0 {
		opts.MaxCooldown = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = opts.Clock().UnixNano()
	}
	return &Breaker{opts: opts, rng: rand.New(rand.NewSource(seed)), cool: opts.Cooldown}
}

// Allow asks permission for one upstream call. Closed passes everything;
// open fails fast until the cooldown elapses, at which point exactly one
// caller is admitted as the half-open probe (its Success/Failure verdict
// closes or re-trips the breaker); half-open fails everyone but the probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if wait := b.until.Sub(b.opts.Clock()); wait > 0 {
			return fmt.Errorf("retry in %v: %w", wait.Round(time.Millisecond), ErrBreakerOpen)
		}
		// Cooldown over: this caller becomes the probe.
		b.state = stateHalfOpen
		return nil
	default: // half-open, probe already in flight
		return fmt.Errorf("probe in flight: %w", ErrBreakerOpen)
	}
}

// Success records an upstream call that got an answer; it closes the
// breaker and resets the failure streak and cooldown.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.cool = b.opts.Cooldown
	b.mu.Unlock()
}

// Failure records an upstream transport failure. The Threshold-th
// consecutive failure — or any failed half-open probe — trips the breaker
// for a jittered, doubling cooldown.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state != stateHalfOpen && b.fails < b.opts.Threshold {
		return
	}
	b.state = stateOpen
	b.trips++
	// Spread the window over [cool/2, 3*cool/2) so a fleet of breakers
	// tripped by one upstream outage does not probe in lockstep.
	window := b.cool/2 + time.Duration(b.rng.Int63n(int64(b.cool)))
	b.until = b.opts.Clock().Add(window)
	if b.cool *= 2; b.cool > b.opts.MaxCooldown {
		b.cool = b.opts.MaxCooldown
	}
}

// Open reports whether the breaker is currently refusing calls — the
// non-consuming peek the write-forwarding path uses to answer 503 fast
// instead of issuing a 307 toward a dead upstream. It stays true while a
// half-open probe is in flight: redirecting clients before the probe
// verdict would stampede a barely-recovered upstream.
func (b *Breaker) Open() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return b.opts.Clock().Before(b.until)
	case stateHalfOpen:
		return true
	default:
		return false
	}
}

// RetryAfter is how long until the next half-open probe may run (0 when
// closed, or when the cooldown already elapsed).
func (b *Breaker) RetryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateOpen {
		return 0
	}
	if wait := b.until.Sub(b.opts.Clock()); wait > 0 {
		return wait
	}
	return 0
}

// Reset forgets all failure history — called when the upstream changes
// (repoint), since the new upstream inherits none of the old one's faults.
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.cool = b.opts.Cooldown
	b.until = time.Time{}
	b.mu.Unlock()
}

// Stats snapshots the breaker for /stats.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: "none"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{State: b.state.String(), Failures: b.fails, Trips: b.trips}
	if b.state == stateOpen {
		if wait := b.until.Sub(b.opts.Clock()); wait > 0 {
			st.RetryAfterMs = wait.Milliseconds()
		}
	}
	return st
}
