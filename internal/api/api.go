// Package api defines the v1 wire contract shared by the server and every
// client (CLI, workload drivers, peer nodes). Its centrepiece is the unified
// error envelope: every non-2xx data-plane response body is
//
//	{"error":{"code":"...","message":"...", ...}}
//
// with a machine-readable code drawn from the constants below, so clients
// dispatch on codes rather than string-matching messages or inventing a
// decoder per status. The envelope refines the single-node contract: routing,
// placement, and migration surface only as new codes (misrouted, fenced) a
// naive client may treat as retryable, never as divergent response shapes.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Error codes. These are the wire contract: stable, lowercase, additive-only.
const (
	// CodeBadRequest: malformed body, invalid tenant/field, unparseable CAS
	// token. Not retryable.
	CodeBadRequest = "bad_request"
	// CodeNotFound: tenant or session does not exist (or a deprecated path).
	CodeNotFound = "not_found"
	// CodeForbidden: the request is well-formed but denied by policy
	// constraints (e.g. a session over unauthorizable roles).
	CodeForbidden = "forbidden"
	// CodeConflict: a CAS precondition failed (if_epoch/if_version mismatch,
	// policy already provisioned). Re-read current state before retrying.
	CodeConflict = "conflict"
	// CodeStaleGeneration: the read carried min_generation ahead of what the
	// node could serve within its wait budget. Envelope carries both the
	// node's generation and the requested min_generation.
	CodeStaleGeneration = "stale_generation"
	// CodeOverloaded: admission control shed the request (queue full or
	// inflight cap). Retry after the envelope's retry_after seconds.
	CodeOverloaded = "overloaded"
	// CodeDeadline: the request's deadline budget expired before the node
	// could finish (or was too small to start). Retryable with a larger
	// budget.
	CodeDeadline = "deadline"
	// CodeUnavailable: a dependency is unreachable (peer breaker open,
	// upstream down). Retryable.
	CodeUnavailable = "unavailable"
	// CodeFenced: the node (or the tenant, during a migration flip window)
	// cannot accept writes under its current epoch/placement. Envelope
	// carries the fencing epoch; re-point and retry.
	CodeFenced = "fenced"
	// CodeMisrouted: the request reached a node that does not own the tenant
	// under the current placement map. Envelope carries the owning node's
	// address and the placement version; refresh placement and go direct.
	CodeMisrouted = "misrouted"
	// CodeInternal: the node failed while applying the request. The batch's
	// staged effects were rolled back; nothing was acknowledged.
	CodeInternal = "internal"
)

// Error is the typed payload inside the envelope. Zero-valued optional
// fields are omitted on the wire.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Epoch is the fencing epoch of the answering node (fenced/conflict).
	Epoch uint64 `json:"epoch,omitempty"`
	// Generation and MinGeneration qualify stale_generation responses.
	Generation    uint64 `json:"generation,omitempty"`
	MinGeneration uint64 `json:"min_generation,omitempty"`
	// RetryAfter is a hint in seconds (overloaded/deadline/fenced).
	RetryAfter int `json:"retry_after,omitempty"`
	// Node is the base URL of the node that should be asked instead
	// (misrouted → owner, fenced → new primary when known).
	Node string `json:"node,omitempty"`
	// PlacementVersion is the answering node's placement map version
	// (misrouted), so clients know whether their map is the stale one.
	PlacementVersion uint64 `json:"placement_version,omitempty"`
}

// Error implements the error interface so decoded envelopes can flow
// through client call chains unchanged.
func (e *Error) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s: %s", e.Code, e.Message)
	}
	return e.Code
}

// envelope is the wire shape wrapping Error.
type envelope struct {
	Error *Error `json:"error"`
}

// HeaderPlacementVersion stamps the answering node's placement map version
// on every data-plane response, successful or not, so clients and peers
// learn about newer maps passively.
const HeaderPlacementVersion = "X-Placement-Version"

// HeaderRoutedBy marks a server-side forwarded request with the forwarding
// node's ID — the single-hop loop guard: a node receiving a request already
// carrying it answers misrouted instead of forwarding again, so two nodes
// holding maps that disagree bounce a request exactly once.
const HeaderRoutedBy = "X-Routed-By"

// Write emits the envelope with the given status. A positive RetryAfter is
// mirrored into the standard Retry-After header so generic HTTP clients
// back off without decoding the body.
func Write(w http.ResponseWriter, status int, e *Error) {
	if e.Code == "" {
		e.Code = CodeInternal
	}
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(envelope{Error: e})
}

// Decode parses an envelope out of a non-2xx body. It always returns a
// non-nil *Error: bodies that are not the typed shape (proxies, panics,
// truncation) degrade to CodeInternal with the raw body as message, so
// callers can rely on Code being set.
func Decode(status int, body []byte) *Error {
	var env envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	msg := string(body)
	if len(msg) > 256 {
		msg = msg[:256]
	}
	return &Error{Code: CodeInternal, Message: fmt.Sprintf("http %d: %s", status, msg)}
}
