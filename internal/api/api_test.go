package api

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteDecodeRoundTrip(t *testing.T) {
	in := &Error{
		Code:             CodeMisrouted,
		Message:          "tenant r001 owned elsewhere",
		Node:             "http://127.0.0.1:9001",
		PlacementVersion: 7,
	}
	rec := httptest.NewRecorder()
	Write(rec, 421, in)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	out := Decode(rec.Code, rec.Body.Bytes())
	if out.Code != CodeMisrouted || out.Node != in.Node || out.PlacementVersion != 7 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if out.Error() != "misrouted: tenant r001 owned elsewhere" {
		t.Fatalf("Error() = %q", out.Error())
	}
}

func TestWriteSetsRetryAfterHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 429, &Error{Code: CodeOverloaded, Message: "shed", RetryAfter: 3})
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q", got)
	}
	out := Decode(rec.Code, rec.Body.Bytes())
	if out.RetryAfter != 3 {
		t.Fatalf("retry_after = %d", out.RetryAfter)
	}
}

func TestWriteDefaultsEmptyCode(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 500, &Error{Message: "boom"})
	if out := Decode(rec.Code, rec.Body.Bytes()); out.Code != CodeInternal {
		t.Fatalf("code = %q", out.Code)
	}
}

func TestDecodeToleratesUntypedBodies(t *testing.T) {
	cases := []string{
		"plain text from a proxy",
		`{"error":"legacy string body"}`,
		`{"error":{}}`, // typed shape but no code
		"",
		strings.Repeat("x", 1024),
	}
	for _, body := range cases {
		e := Decode(502, []byte(body))
		if e == nil || e.Code != CodeInternal {
			t.Fatalf("body %q: got %+v", body[:min(len(body), 32)], e)
		}
		if len(e.Message) > 300 {
			t.Fatalf("message not truncated: %d bytes", len(e.Message))
		}
	}
}

func TestOptionalFieldsOmitted(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 409, &Error{Code: CodeConflict, Message: "stale epoch"})
	var raw map[string]map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	inner := raw["error"]
	for _, k := range []string{"epoch", "generation", "min_generation", "retry_after", "node", "placement_version"} {
		if _, ok := inner[k]; ok {
			t.Fatalf("zero field %q not omitted: %v", k, inner)
		}
	}
}
