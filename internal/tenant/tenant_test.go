package tenant

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/workload"
)

func churnRegistry(t *testing.T, dir string, opts Options) *Registry {
	t.Helper()
	opts.Dir = dir
	opts.Mode = engine.Refined
	if opts.Bootstrap == nil {
		opts.Bootstrap = func(string) *policy.Policy { return workload.ChurnPolicy(16, 16) }
	}
	return New(opts)
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "tenant-1", "T_2", "0123456789"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "é", string(long)} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestLazyOpenBootstrapAndIsolation(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{})
	defer reg.Close()

	if got := reg.Resident(); got != 0 {
		t.Fatalf("resident before first touch = %d", got)
	}
	// First touch opens and bootstraps tenant a.
	res, err := reg.Submit("a", workload.ChurnGrant(0, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != command.Applied {
		t.Fatalf("submit outcome %v", res.Outcome)
	}
	if got := reg.Resident(); got != 1 {
		t.Fatalf("resident = %d, want 1", got)
	}

	// Tenant b is isolated: same command stream, independent generation.
	ar, err := reg.Authorize("b", workload.ChurnGrant(0, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !ar.OK {
		t.Fatal("churn grant should be authorized in bootstrapped tenant")
	}
	sa, _ := reg.Stats("a")
	sb, _ := reg.Stats("b")
	if sa.Generation != 1 || sb.Generation != 0 {
		t.Fatalf("generations a=%d b=%d, want 1, 0", sa.Generation, sb.Generation)
	}
}

func TestRecoveryAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	reg := churnRegistry(t, dir, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := reg.Submit("t1", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	probe := workload.ChurnGrant(n, 16, 16)
	before, err := reg.Authorize("t1", probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := churnRegistry(t, dir, Options{})
	defer reg2.Close()
	after, err := reg2.Authorize("t1", probe)
	if err != nil {
		t.Fatal(err)
	}
	if before.OK != after.OK {
		t.Fatalf("decision changed across reopen: %v -> %v", before.OK, after.OK)
	}
	st, err := reg2.Stats("t1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != n {
		t.Fatalf("recovered generation %d, want %d", st.Generation, n)
	}
}

func TestLRUEvictionCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	reg := churnRegistry(t, dir, Options{Shards: 1, MaxResident: 2})
	defer reg.Close()

	names := []string{"e0", "e1", "e2", "e3"}
	for _, n := range names {
		if _, err := reg.Submit(n, workload.ChurnGrant(0, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Resident(); got != 2 {
		t.Fatalf("resident = %d, want 2 (MaxResident)", got)
	}
	// Evicted tenants were compacted: reopening replays no WAL records.
	st, err := reg.Stats("e0")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Recovered.SnapshotLoaded {
		t.Fatal("evicted tenant should reopen from a compacted snapshot")
	}
	if st.Recovered.Records != 0 {
		t.Fatalf("evicted tenant replayed %d WAL records, want 0", st.Recovered.Records)
	}
	if st.Generation != 1 {
		t.Fatalf("recovered generation %d, want 1", st.Generation)
	}
}

func TestExplicitEvict(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{})
	defer reg.Close()
	if _, err := reg.Submit("x", workload.ChurnGrant(0, 16, 16)); err != nil {
		t.Fatal(err)
	}
	if !reg.Evict("x") {
		t.Fatal("Evict(x) = false for idle resident tenant")
	}
	if reg.Evict("x") {
		t.Fatal("Evict(x) = true for non-resident tenant")
	}
	if got := reg.Resident(); got != 0 {
		t.Fatalf("resident = %d after evict", got)
	}
}

func TestCompactionTrigger(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{CompactEvery: 8})
	defer reg.Close()
	for i := 0; i < 20; i++ {
		if _, err := reg.Submit("c", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := reg.Stats("c")
	if err != nil {
		t.Fatal(err)
	}
	if st.SinceCompact >= 8 {
		t.Fatalf("since_compact = %d, want < CompactEvery(8)", st.SinceCompact)
	}
	if st.Generation != 20 {
		t.Fatalf("generation = %d, want 20", st.Generation)
	}
}

func TestBatchMatchesSingles(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{})
	defer reg.Close()

	cmds := make([]command.Command, 32)
	for i := range cmds {
		cmds[i] = workload.ChurnGrant(i, 16, 16)
	}
	// An ill-formed command inside the batch must not derail the rest.
	cmds[7] = command.Command{Actor: "nobody", Op: model.OpGrant, From: model.Perm("a", "b"), To: model.Role("r")}

	batch, err := reg.AuthorizeBatch("t", cmds)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cmds {
		single, err := reg.Authorize("t", c)
		if err != nil {
			t.Fatal(err)
		}
		if single.OK != batch[i].OK {
			t.Fatalf("cmd %d: batch %v, single %v", i, batch[i].OK, single.OK)
		}
	}

	sub, gen, err := reg.SubmitBatch("t", cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != len(cmds) {
		t.Fatalf("submit batch returned %d results", len(sub))
	}
	if want := uint64(31); gen != want {
		t.Fatalf("submit batch generation token = %d, want %d", gen, want)
	}
	if sub[7].Outcome != command.IllFormed {
		t.Fatalf("ill-formed command outcome %v", sub[7].Outcome)
	}
	st, _ := reg.Stats("t")
	if want := uint64(31); st.Generation != want {
		t.Fatalf("generation after batch = %d, want %d", st.Generation, want)
	}
}

func TestInstallPolicyOnlyWhenEmpty(t *testing.T) {
	reg := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer reg.Close()

	if err := reg.InstallPolicy("p", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Submit("p", workload.ChurnGrant(0, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := reg.InstallPolicy("p", workload.ChurnPolicy(8, 8)); err == nil {
		t.Fatal("InstallPolicy succeeded on a tenant with history")
	}
}

func TestConcurrentTenants(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{Shards: 4, MaxResident: 4})
	defer reg.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", g%4)
			for i := 0; i < 50; i++ {
				if i%5 == 0 {
					if _, err := reg.Submit(name, workload.ChurnGrant(g*50+i, 16, 16)); err != nil {
						errc <- err
						return
					}
					continue
				}
				if _, err := reg.Authorize(name, workload.ChurnGrant(i, 16, 16)); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestReadsDoNotCreateTenants(t *testing.T) {
	dir := t.TempDir()
	reg := New(Options{Dir: dir, Mode: engine.Refined}) // no Bootstrap
	defer reg.Close()

	if _, err := reg.Authorize("ghost", workload.ChurnGrant(0, 8, 8)); !IsNotFound(err) {
		t.Fatalf("Authorize on unknown tenant: err = %v, want not-found", err)
	}
	if _, err := reg.Stats("ghost"); !IsNotFound(err) {
		t.Fatalf("Stats on unknown tenant: err = %v, want not-found", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost")); !os.IsNotExist(err) {
		t.Fatalf("read-only touch minted on-disk state: %v", err)
	}
	// Writes do create the tenant; reads then see it.
	if _, err := reg.Submit("ghost", workload.ChurnGrant(0, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Stats("ghost"); err != nil {
		t.Fatalf("Stats after submit: %v", err)
	}
}

func TestInstallPolicySwapIsRaceFree(t *testing.T) {
	reg := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer reg.Close()
	if err := reg.InstallPolicy("p", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	// Readers load the engine pointer while InstallPolicy re-installs (the
	// tenant still has no history, so the swap path stays legal); run under
	// -race this pins the atomic engine handoff.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := reg.Authorize("p", workload.ChurnGrant(0, 8, 8)); err != nil {
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := reg.InstallPolicy("p", workload.ChurnPolicy(8, 8)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCacheStatsAndOptions(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{})
	defer reg.Close()
	q := workload.ChurnGrant(0, 16, 16)
	// Four sights: doorkeeper pass, intern + cache fill, two hits.
	for i := 0; i < 4; i++ {
		if res, err := reg.Authorize("t", q); err != nil || !res.OK {
			t.Fatalf("authorize %d: err=%v ok=%v", i, err, res.OK)
		}
	}
	st, err := reg.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Slots == 0 || st.Cache.Stores == 0 || st.Cache.Hits < 2 {
		t.Fatalf("cache counters not surfaced: %+v", st.Cache)
	}

	// A registry with caching disabled never counts cache traffic.
	off := churnRegistry(t, t.TempDir(), Options{CacheSlots: -1})
	defer off.Close()
	for i := 0; i < 3; i++ {
		if res, err := off.Authorize("t", q); err != nil || !res.OK {
			t.Fatalf("uncached authorize %d: err=%v ok=%v", i, err, res.OK)
		}
	}
	st, err = off.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Slots != 0 || st.Cache.Hits != 0 || st.Cache.Stores != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", st.Cache)
	}
}

func TestAuthorizeBatchIntoReuse(t *testing.T) {
	reg := churnRegistry(t, t.TempDir(), Options{})
	defer reg.Close()
	cmds := make([]command.Command, 8)
	for i := range cmds {
		cmds[i] = workload.ChurnGrant(i, 16, 16)
	}
	buf := make([]engine.AuthzResult, 0, len(cmds))
	got, _, err := reg.AuthorizeBatchInto("t", cmds, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AuthorizeBatchInto did not reuse the buffer")
	}
	ref, err := reg.AuthorizeBatch("t", cmds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmds {
		if got[i].OK != ref[i].OK {
			t.Fatalf("cmd %d: into %v, fresh %v", i, got[i].OK, ref[i].OK)
		}
	}
}
