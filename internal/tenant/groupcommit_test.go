package tenant

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/fault"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
	"adminrefine/internal/workload"
)

const gcRoles, gcUsers = 16, 64

// gcRegistry builds a Sync registry over the churn fixture with an optional
// fault-injecting file opener.
func gcRegistry(t *testing.T, dir string, fs *fault.FS) *Registry {
	t.Helper()
	opts := Options{
		Dir:          dir,
		Mode:         engine.Refined,
		Sync:         true,
		CompactEvery: -1,
		Bootstrap: func(name string) *policy.Policy {
			if name != "t" {
				return nil
			}
			return workload.ChurnPolicy(gcRoles, gcUsers)
		},
	}
	if fs != nil {
		opts.OpenFile = func(path string, flag int, perm os.FileMode) (storage.File, error) {
			return fs.Open(path, flag, perm)
		}
	}
	return New(opts)
}

// Concurrent -sync submitters under a seeded fsync/write-failure schedule:
// every submit acknowledged as Applied must survive a crash-reopen (the WAL
// file is re-read from disk without a clean close — the SIGKILL view), and
// every submit that reported an error must be absent, because a failed group
// flush rolls back all of its waiters exactly. Runs under -race in CI, which
// also exercises the commit-group queue for data races.
func TestGroupCommitConcurrentSubmittersAckedDurableFailedRolledBack(t *testing.T) {
	const workers, perWorker = 8, 30
	for _, seed := range []int64{3, 17} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// Bootstrap with a clean FS so the seeding compaction cannot wedge
			// the store before the contest starts.
			reg := gcRegistry(t, dir, nil)
			if _, err := reg.Stats("t"); err != nil {
				t.Fatal(err)
			}
			reg.Close()

			plan := fault.SeededPlan(seed, 400, 0.01, 0.01, 0.05)
			fs := fault.NewFS(plan)
			reg = gcRegistry(t, dir, fs)
			defer reg.Close()

			type verdict struct {
				cmd   command.Command
				acked bool
			}
			results := make([][]verdict, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						// Globally distinct (user, role) pairs: churn indexes
						// striped by worker never collide, so acked/rolled-back
						// edges are attributable to exactly one submit.
						c := workload.ChurnGrant(w*perWorker+i, gcUsers, gcRoles)
						res, err := reg.Submit("t", c)
						acked := err == nil && res.Outcome == command.Applied
						if err != nil {
							var ce *engine.CommitError
							if !errors.As(err, &ce) {
								t.Errorf("worker %d op %d: non-commit error %v", w, i, err)
							}
						}
						results[w] = append(results[w], verdict{cmd: c, acked: acked})
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Crash view: recover the WAL from disk while the live registry
			// still holds the file open — nothing depends on a clean close.
			st, pol, _, err := storage.Open(filepath.Join(dir, "t"), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			acked, failed := 0, 0
			for w := range results {
				for i, v := range results[w] {
					has := pol.HasEdge(v.cmd.From, v.cmd.To)
					if v.acked {
						acked++
						if !has {
							t.Fatalf("worker %d op %d: acknowledged write lost after crash-reopen", w, i)
						}
					} else {
						failed++
						if has {
							t.Fatalf("worker %d op %d: failed submit left its edge durable — partial group", w, i)
						}
					}
				}
			}
			if acked == 0 {
				t.Fatal("schedule acknowledged nothing — the run proves nothing")
			}
			if failed == 0 {
				t.Skipf("seed %d injected no commit failures at this interleaving", seed)
			}
			t.Logf("acked=%d failed=%d fsteps=%d", acked, failed, fs.Step())
		})
	}
}

// Group coalescing is observable and exact with a deterministic schedule:
// batches submitted through the registry land with one write + one fsync
// regardless of batch size, and the group's generation token covers every
// command in it.
func TestGroupCommitBatchSharesOneFsyncAndGeneration(t *testing.T) {
	dir := t.TempDir()
	reg := gcRegistry(t, dir, nil)
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	fs := fault.NewFS(nil)
	reg = gcRegistry(t, dir, fs)
	defer reg.Close()
	// Touch once so the store is open before counting.
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}

	cmds := make([]command.Command, 12)
	for i := range cmds {
		cmds[i] = workload.ChurnGrant(i, gcUsers, gcRoles)
	}
	before := fs.Step()
	out, gen, err := reg.SubmitBatch("t", cmds)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Step() - before; got != 2 {
		t.Fatalf("batch consumed %d mutations, want 2 (one write + one fsync)", got)
	}
	if len(out) != len(cmds) {
		t.Fatalf("got %d results", len(out))
	}
	for i, res := range out {
		if res.Outcome != command.Applied {
			t.Fatalf("cmd %d outcome %v", i, res.Outcome)
		}
	}
	if gen != uint64(len(cmds)) {
		t.Fatalf("generation token %d, want %d (covers the whole group)", gen, len(cmds))
	}
}

// A concurrent burst against one tenant must coalesce at least some
// submitters into shared groups: with S submitters issuing one durable write
// each, the fsync count comes in strictly below S once any grouping happens.
// The schedule is timing-dependent, so the assertion is the conservative
// one — never MORE than one fsync per submit, and the tenant's final state
// holds every acknowledged write.
func TestGroupCommitConcurrentBurstNeverExceedsOneFsyncPerSubmit(t *testing.T) {
	const submitters = 32
	dir := t.TempDir()
	reg := gcRegistry(t, dir, nil)
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	fs := fault.NewFS(nil)
	reg = gcRegistry(t, dir, fs)
	defer reg.Close()
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}

	before := fs.Step()
	var wg sync.WaitGroup
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := reg.Submit("t", workload.ChurnGrant(i, gcUsers, gcRoles))
			if err == nil && res.Outcome != command.Applied {
				err = fmt.Errorf("outcome %v", res.Outcome)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	steps := fs.Step() - before
	if steps > 2*submitters {
		t.Fatalf("%d submitters consumed %d mutations — more than one write+fsync each", submitters, steps)
	}
	t.Logf("%d submitters: %d mutations (%.1f per submit; 2.0 = no grouping)", submitters, steps, float64(steps)/submitters)
}
