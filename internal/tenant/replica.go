// Replication entry points of the Registry: the primary side serves its
// per-tenant WAL to pullers (PullWAL, SnapshotDump) and the follower side
// applies what it pulled (ApplyReplicated, InstallReplicaSnapshot). The
// transport lives in internal/replication; this file is the storage/engine
// coupling — a pulled record batch flows through engine.SubmitBatch, so a
// follower re-runs the transition function on an identical pre-state and
// readers never observe a half-applied batch.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
)

// errOutOfSync marks a replication apply that cannot extend the local state:
// a sequence gap (the primary compacted past us) or a divergent replay (a
// replicated command stepped differently than the primary logged). Either
// way the cure is a snapshot bootstrap, not a retry.
var errOutOfSync = errors.New("replica out of sync")

// IsOutOfSync reports whether err calls for a snapshot bootstrap: the
// tenant's local state can no longer be extended record-by-record.
func IsOutOfSync(err error) bool { return errors.Is(err, errOutOfSync) }

// PullResult is one answer of the primary's log-shipping endpoint.
type PullResult struct {
	// Records are the WAL records with sequence numbers above the requested
	// afterSeq, in order. Empty when the wait timed out with no new writes.
	Records []storage.Record
	// Head is the tenant's generation on the primary, measured together with
	// Edges on one snapshot.
	Head uint64
	// SnapshotNeeded reports that the log no longer covers afterSeq (a
	// compaction folded it into the snapshot): the puller must bootstrap
	// from SnapshotDump instead.
	SnapshotNeeded bool
	// Edges counts the policy's edges at Head — a cheap state checksum. A
	// follower that believes itself caught up (its generation equals Head and
	// no records were returned) verifies its own edge count against this and
	// treats a mismatch as out-of-sync. This closes the one hole generation
	// numbers alone cannot see: a policy installed at generation 0 after the
	// follower bootstrapped an empty tenant.
	Edges int
}

// PullWAL serves one log-shipping round for a tenant: it long-polls (bounded
// by wait and ctx) until the tenant's generation passes afterSeq, then
// returns every logged record above afterSeq together with the current head.
// Reads never create tenants, so pulling an unknown name reports not-found.
//
// afterEpoch is the fencing epoch of the puller's record at afterSeq — the
// Raft-style prefix check that makes promotion fork-proof. Serving a pull
// is only sound when the puller's history up to afterSeq is a prefix of
// ours; a sequence number alone cannot tell a lagging follower from one
// whose records past the failover branch point came from the deposed
// primary. If the epoch stamped on our record at afterSeq differs from
// afterEpoch (or the position was compacted away), the puller's suffix
// forked and SnapshotNeeded forces a rewinding bootstrap instead of serving
// records that would silently extend divergent history.
func (r *Registry) PullWAL(ctx context.Context, name string, afterSeq uint64, afterEpoch uint64, wait time.Duration) (PullResult, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return PullResult{}, err
	}
	defer t.release()
	if afterSeq > 0 {
		if e, ok := t.store.EpochAt(int(afterSeq)); !ok || e != afterEpoch {
			s := t.engine().Snapshot()
			res := PullResult{SnapshotNeeded: true, Head: s.Generation(), Edges: s.Policy().NumEdges()}
			s.Close()
			return res, nil
		}
	}
	t.engine().WaitGenerationCtx(ctx, afterSeq+1, wait)
	recs, gap, err := t.store.ReadSince(int(afterSeq))
	if err != nil {
		return PullResult{}, err
	}
	// Applied-command audit records are not shipped: the follower's own
	// commit hook re-mints an identical audit record as it replays the step,
	// so shipping them would only double the stream (and the apply would
	// discard them anyway). No-effect audits — denials, vetoes — have no
	// step to re-mint them from and pass through.
	kept := recs[:0]
	for _, rec := range recs {
		if rec.IsAudit() && rec.Outcome == "applied" {
			continue
		}
		kept = append(kept, rec)
	}
	recs = kept
	s := t.engine().Snapshot()
	head := s.Generation()
	edges := s.Policy().NumEdges()
	s.Close()
	// WAL appends run ahead of snapshot publication (write-ahead), so a
	// mid-commit pull may ship records beyond the published generation;
	// report a head covering them.
	if n := len(recs); n > 0 && uint64(recs[n-1].Seq) > head {
		head = uint64(recs[n-1].Seq)
	}
	return PullResult{Records: recs, Head: head, SnapshotNeeded: gap, Edges: edges}, nil
}

// ReplicaPosition reports the tenant's local replication position: the WAL
// head sequence and the fencing epoch stamped on the record there — exactly
// the (after_seq, after_epoch) pair a follower resumes pulling from.
func (r *Registry) ReplicaPosition(name string) (uint64, uint64, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, 0, err
	}
	defer t.release()
	seq, epoch := t.store.Position()
	return uint64(seq), epoch, nil
}

// EdgeCount reports the tenant policy's edge count (UA+RH+PA) — the
// follower's half of the replication state checksum. O(1) per call, unlike
// Stats (which walks the role hierarchy for chain depths).
func (r *Registry) EdgeCount(name string) (int, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	return s.Policy().NumEdges(), nil
}

// SnapshotDump serializes the tenant's current policy together with the
// generation it reflects, the fencing epoch of the record at that
// generation, and the retained audit window — the bootstrap payload a
// follower installs when it has no local state or the primary's log was
// compacted past its position. Shipping the audit window with the state
// means a snapshot-bootstrapped follower serves the same trail a
// step-replaying one does, instead of starting blind at its bootstrap
// point.
func (r *Registry) SnapshotDump(name string) (uint64, uint64, []byte, []storage.Record, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	data, err := json.Marshal(s.Policy())
	if err != nil {
		return 0, 0, nil, nil, err
	}
	gen := s.Generation()
	epoch, ok := t.store.EpochAt(int(gen))
	if !ok {
		// The published generation should always be determinable (tail or
		// snapshot base); fall back to the WAL head's epoch.
		_, epoch = t.store.Position()
	}
	audit, _ := t.store.Audit(0, 0)
	return gen, epoch, data, audit, nil
}

// InstallReplicaSnapshot replaces the tenant's state with a snapshot pulled
// from the upstream primary: the policy becomes the durable on-disk snapshot
// at seq (stamped with seqEpoch, the fencing epoch of the record it covers),
// the primary's audit window (when provided) becomes the local audit trail,
// and a fresh engine resumes from there. Installing a snapshot behind the
// local generation is refused within an epoch — replication never moves a
// tenant backwards — but allowed across one: a snapshot from a newer epoch
// rewinding us is the fork-healing install, discarding a suffix the deposed
// primary acknowledged but the promoted one never had (the puller was
// fenced off extending it record-by-record by PullWAL's prefix check).
func (r *Registry) InstallReplicaSnapshot(name string, policyJSON []byte, seq uint64, seqEpoch uint64, audit []storage.Record) error {
	t, err := r.acquire(name, true)
	if err != nil {
		return err
	}
	defer t.release()
	p := policy.New()
	if err := json.Unmarshal(policyJSON, p); err != nil {
		return fmt.Errorf("tenant %s: replica snapshot: %w", name, err)
	}
	t.submu.Lock()
	defer t.submu.Unlock()
	rewind := false
	if gen := t.engine().Generation(); seq < gen {
		if _, localEpoch := t.store.Position(); seqEpoch <= localEpoch {
			return fmt.Errorf("tenant %s: replica snapshot at %d behind local generation %d", name, seq, gen)
		}
		rewind = true
	}
	if err := r.installAt(t, p, seq, seqEpoch, rewind); err != nil {
		return err
	}
	// Adopt the upstream trail after the install: the install cleared the
	// local audit state (see storage.CompactAt), so this append rebuilds it
	// — durable in the local WAL, landed as one batched write.
	adopt := audit[:0]
	for _, a := range audit {
		if a.IsAudit() {
			adopt = append(adopt, a)
		}
	}
	if err := t.store.AppendRecords(adopt...); err != nil {
		return fmt.Errorf("tenant %s: replica audit: %w", name, err)
	}
	return nil
}

// ApplyReplicated extends the tenant's state with records pulled from the
// upstream primary, feeding the step records as one engine.SubmitBatch so
// readers never observe a half-applied batch and the local WAL (via the
// engine's commit hook) logs exactly what the primary logged. Records at or
// below the local generation are skipped (pull overlap on reconnect); a
// sequence gap or a replay that converges to a different generation than
// the primary's reports out-of-sync (see IsOutOfSync) and the caller
// bootstraps from a snapshot. It returns the tenant's generation after the
// apply.
//
// Audit records ride the same stream but are observations, not effects:
// applied-command audits are dropped here (the local commit hook re-mints
// an identical one as the step replays, so the follower's audit trail is
// exact without double entries), while no-effect audits — denials, vetoes —
// are appended verbatim when they extend the local position (they only ship
// while the follower is behind; a caught-up follower's pull cursor has
// already passed their sequence number, so those stay on the node that
// refused the command).
func (r *Registry) ApplyReplicated(name string, records []storage.Record) (uint64, error) {
	t, err := r.acquire(name, true)
	if err != nil {
		return 0, err
	}
	defer t.release()
	t.submu.Lock()
	defer t.submu.Unlock()
	eng := t.eng.Load()
	gen := eng.Generation()
	cmds := make([]command.Command, 0, len(records))
	epochs := make([]uint64, 0, len(records))
	var audits []storage.Record
	next := gen
	for _, rec := range records {
		if rec.IsAudit() {
			if rec.Outcome != "applied" && uint64(rec.Seq) > gen {
				audits = append(audits, rec)
			}
			continue
		}
		if uint64(rec.Seq) <= gen {
			continue
		}
		if uint64(rec.Seq) != next+1 {
			return gen, fmt.Errorf("tenant %s: replicated record seq %d does not extend generation %d: %w", name, rec.Seq, next, errOutOfSync)
		}
		c, err := rec.Command()
		if err != nil {
			return gen, err
		}
		cmds = append(cmds, c)
		epochs = append(epochs, rec.Epoch)
		next++
	}
	if len(cmds) == 0 && len(audits) == 0 {
		return gen, nil
	}
	if len(cmds) > 0 {
		t.submits.Add(uint64(len(cmds)))
		// Apply in runs of equal epoch, syncing the store's stamp epoch per
		// run: the commit hook re-logs each replayed step, and the local
		// record must carry the epoch the primary stamped — not the node's
		// current one — or the prefix check (PullWAL) would see phantom
		// forks. Runs are almost always the whole batch; a batch spanning an
		// epoch boundary (records from before and after a failover in one
		// pull) splits once.
		for i := 0; i < len(cmds); {
			j := i + 1
			for j < len(cmds) && epochs[j] == epochs[i] {
				j++
			}
			t.store.SetStampEpoch(epochs[i])
			if _, err := eng.SubmitBatch(cmds[i:j], nil); err != nil {
				return eng.Generation(), err
			}
			i = j
		}
		if got := eng.Generation(); got != next {
			// A replayed command stepped differently than on the primary
			// (denied or no-change): the states diverged somewhere behind us.
			return got, fmt.Errorf("tenant %s: replicated batch converged to generation %d, want %d: %w", name, got, next, errOutOfSync)
		}
	}
	// Best-effort, one write, after the steps landed: a lost no-effect audit
	// loses no state, and a failing WAL surfaces through the step path.
	t.store.AppendRecords(audits...)
	t.maybeCompact(r.opts.CompactEvery)
	return next, nil
}
