// Replication entry points of the Registry: the primary side serves its
// per-tenant WAL to pullers (PullWAL, SnapshotDump) and the follower side
// applies what it pulled (ApplyReplicated, InstallReplicaSnapshot). The
// transport lives in internal/replication; this file is the storage/engine
// coupling — a pulled record batch flows through engine.SubmitBatch, so a
// follower re-runs the transition function on an identical pre-state and
// readers never observe a half-applied batch.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
)

// errOutOfSync marks a replication apply that cannot extend the local state:
// a sequence gap (the primary compacted past us) or a divergent replay (a
// replicated command stepped differently than the primary logged). Either
// way the cure is a snapshot bootstrap, not a retry.
var errOutOfSync = errors.New("replica out of sync")

// IsOutOfSync reports whether err calls for a snapshot bootstrap: the
// tenant's local state can no longer be extended record-by-record.
func IsOutOfSync(err error) bool { return errors.Is(err, errOutOfSync) }

// PullResult is one answer of the primary's log-shipping endpoint.
type PullResult struct {
	// Records are the WAL records with sequence numbers above the requested
	// afterSeq, in order. Empty when the wait timed out with no new writes.
	Records []storage.Record
	// Head is the tenant's generation on the primary, measured together with
	// Edges on one snapshot.
	Head uint64
	// SnapshotNeeded reports that the log no longer covers afterSeq (a
	// compaction folded it into the snapshot): the puller must bootstrap
	// from SnapshotDump instead.
	SnapshotNeeded bool
	// Edges counts the policy's edges at Head — a cheap state checksum. A
	// follower that believes itself caught up (its generation equals Head and
	// no records were returned) verifies its own edge count against this and
	// treats a mismatch as out-of-sync. This closes the one hole generation
	// numbers alone cannot see: a policy installed at generation 0 after the
	// follower bootstrapped an empty tenant.
	Edges int
}

// PullWAL serves one log-shipping round for a tenant: it long-polls (bounded
// by wait and ctx) until the tenant's generation passes afterSeq, then
// returns every logged record above afterSeq together with the current head.
// Reads never create tenants, so pulling an unknown name reports not-found.
func (r *Registry) PullWAL(ctx context.Context, name string, afterSeq uint64, wait time.Duration) (PullResult, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return PullResult{}, err
	}
	defer t.release()
	t.engine().WaitGenerationCtx(ctx, afterSeq+1, wait)
	recs, gap, err := t.store.ReadSince(int(afterSeq))
	if err != nil {
		return PullResult{}, err
	}
	s := t.engine().Snapshot()
	head := s.Generation()
	edges := s.Policy().NumEdges()
	s.Close()
	// WAL appends run ahead of snapshot publication (write-ahead), so a
	// mid-commit pull may ship records beyond the published generation;
	// report a head covering them.
	if n := len(recs); n > 0 && uint64(recs[n-1].Seq) > head {
		head = uint64(recs[n-1].Seq)
	}
	return PullResult{Records: recs, Head: head, SnapshotNeeded: gap, Edges: edges}, nil
}

// EdgeCount reports the tenant policy's edge count (UA+RH+PA) — the
// follower's half of the replication state checksum. O(1) per call, unlike
// Stats (which walks the role hierarchy for chain depths).
func (r *Registry) EdgeCount(name string) (int, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	return s.Policy().NumEdges(), nil
}

// SnapshotDump serializes the tenant's current policy together with the
// generation it reflects — the bootstrap payload a follower installs when it
// has no local state or the primary's log was compacted past its position.
func (r *Registry) SnapshotDump(name string) (uint64, []byte, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, nil, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	data, err := json.Marshal(s.Policy())
	if err != nil {
		return 0, nil, err
	}
	return s.Generation(), data, nil
}

// InstallReplicaSnapshot replaces the tenant's state with a snapshot pulled
// from the upstream primary: the policy becomes the durable on-disk snapshot
// at seq and a fresh engine resumes from there. Installing a snapshot behind
// the local generation is refused — replication never moves a tenant
// backwards.
func (r *Registry) InstallReplicaSnapshot(name string, policyJSON []byte, seq uint64) error {
	t, err := r.acquire(name, true)
	if err != nil {
		return err
	}
	defer t.release()
	p := policy.New()
	if err := json.Unmarshal(policyJSON, p); err != nil {
		return fmt.Errorf("tenant %s: replica snapshot: %w", name, err)
	}
	t.submu.Lock()
	defer t.submu.Unlock()
	if gen := t.engine().Generation(); seq < gen {
		return fmt.Errorf("tenant %s: replica snapshot at %d behind local generation %d", name, seq, gen)
	}
	return r.installAt(t, p, seq)
}

// ApplyReplicated extends the tenant's state with records pulled from the
// upstream primary, feeding them as one engine.SubmitBatch so readers never
// observe a half-applied batch and the local WAL (via the engine's commit
// hook) logs exactly what the primary logged. Records at or below the local
// generation are skipped (pull overlap on reconnect); a sequence gap or a
// replay that converges to a different generation than the primary's reports
// out-of-sync (see IsOutOfSync) and the caller bootstraps from a snapshot.
// It returns the tenant's generation after the apply.
func (r *Registry) ApplyReplicated(name string, records []storage.Record) (uint64, error) {
	t, err := r.acquire(name, true)
	if err != nil {
		return 0, err
	}
	defer t.release()
	t.submu.Lock()
	defer t.submu.Unlock()
	eng := t.eng.Load()
	gen := eng.Generation()
	cmds := make([]command.Command, 0, len(records))
	next := gen
	for _, rec := range records {
		if uint64(rec.Seq) <= gen {
			continue
		}
		if uint64(rec.Seq) != next+1 {
			return gen, fmt.Errorf("tenant %s: replicated record seq %d does not extend generation %d: %w", name, rec.Seq, next, errOutOfSync)
		}
		c, err := rec.Command()
		if err != nil {
			return gen, err
		}
		cmds = append(cmds, c)
		next++
	}
	if len(cmds) == 0 {
		return gen, nil
	}
	t.submits.Add(uint64(len(cmds)))
	if _, err := eng.SubmitBatch(cmds, nil); err != nil {
		return eng.Generation(), err
	}
	if got := eng.Generation(); got != next {
		// A replayed command stepped differently than on the primary (denied
		// or no-change): the states diverged somewhere behind us.
		return got, fmt.Errorf("tenant %s: replicated batch converged to generation %d, want %d: %w", name, got, next, errOutOfSync)
	}
	t.maybeCompact(r.opts.CompactEvery)
	return next, nil
}
