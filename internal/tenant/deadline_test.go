package tenant

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/command"
	"adminrefine/internal/fault"
	"adminrefine/internal/storage"
	"adminrefine/internal/workload"
)

// resident returns the live *tenant for name (test-only peek at queue and
// writer-lock state, used to sequence leader/waiter interleavings without
// sleeps).
func resident(t *testing.T, reg *Registry, name string) *tenant {
	t.Helper()
	sh := reg.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tn, ok := sh.tenants[name]
	if !ok {
		t.Fatalf("tenant %s not resident", name)
	}
	return tn
}

// waitFor polls until cond holds or the budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// armSlowSyncs schedules a long stall on every upcoming fsync so the next
// group leader parks inside its covering flush — the replayable
// stalled-disk overload scenario from internal/fault.
func armSlowSyncs(plan *fault.Plan, from uint64, d time.Duration) {
	for i := from; i < from+64; i++ {
		plan.At(i, fault.Fault{Kind: fault.SlowSync, Delay: d})
	}
}

// A waiter whose deadline expires while queued behind a stalled commit
// group gets admission.ErrDeadline, its commands never commit, and the
// group's fsync-covered ack semantics hold for the remaining waiters: the
// leader's write is durable across a crash-view reopen, the expired
// waiter's is absent, and a retry after the stall lands cleanly.
func TestQueuedSubmitterDeadlineExpiresSlotReclaimed(t *testing.T) {
	dir := t.TempDir()
	reg := gcRegistry(t, dir, nil)
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	reg = gcRegistry(t, dir, fs)
	defer reg.Close()
	if _, err := reg.Stats("t"); err != nil { // open before arming
		t.Fatal(err)
	}
	armSlowSyncs(plan, fs.Step(), 600*time.Millisecond)

	leaderCmd := workload.ChurnGrant(0, gcUsers, gcRoles)
	waiterCmd := workload.ChurnGrant(1, gcUsers, gcRoles)

	type ack struct {
		res command.StepResult
		err error
	}
	leaderDone := make(chan ack, 1)
	go func() {
		res, err := reg.Submit("t", leaderCmd)
		leaderDone <- ack{res, err}
	}()

	// The leader is committing once it holds the writer lock with the queue
	// drained — from there it is parked inside the slow fsync.
	tn := resident(t, reg, "t")
	waitFor(t, "leader inside commit group", func() bool {
		tn.qmu.Lock()
		queued := len(tn.queue)
		tn.qmu.Unlock()
		return len(tn.submu) == 1 && queued == 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := reg.SubmitBatchCtx(ctx, "t", []command.Command{waiterCmd})
	if !admission.IsDeadline(err) {
		t.Fatalf("queued waiter got %v, want admission.ErrDeadline", err)
	}
	if waited := time.Since(start); waited > 450*time.Millisecond {
		t.Fatalf("expired waiter was held %v — it must not ride out the group's stall", waited)
	}
	// The reclaimed slot really is gone: no later leader may drain it.
	tn.qmu.Lock()
	if len(tn.queue) != 0 {
		t.Fatalf("expired waiter left %d queue entries", len(tn.queue))
	}
	tn.qmu.Unlock()

	la := <-leaderDone
	if la.err != nil || la.res.Outcome != command.Applied {
		t.Fatalf("leader submit: outcome %v err %v — the waiter's expiry must not touch the group", la.res.Outcome, la.err)
	}

	// Crash view: the leader's acknowledged write is fsync-covered, the
	// expired waiter's command never reached the WAL.
	st, pol, _, err := storage.Open(filepath.Join(dir, "t"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pol.HasEdge(leaderCmd.From, leaderCmd.To) {
		t.Fatal("leader's acknowledged write lost")
	}
	if pol.HasEdge(waiterCmd.From, waiterCmd.To) {
		t.Fatal("deadline-expired waiter's command was committed anyway")
	}
	st.Close()

	// The tenant is healthy after the expiry: the same command resubmitted
	// with headroom lands.
	fs.Disarm()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	out, gen, err := reg.SubmitBatchCtx(ctx2, "t", []command.Command{waiterCmd})
	if err != nil || out[0].Outcome != command.Applied {
		t.Fatalf("retry after expiry: outcome %+v err %v", out, err)
	}
	if gen != 2 {
		t.Fatalf("generation %d after leader+retry, want 2 (expired attempt must not consume one)", gen)
	}
}

// The commit-group queue is hard-capped: submitters beyond MaxQueuedSubmits
// are refused on arrival with admission.ErrOverloaded while queued-in-time
// waiters still commit.
func TestSubmitQueueHardCapSheds(t *testing.T) {
	dir := t.TempDir()
	reg := gcRegistry(t, dir, nil)
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}
	reg.Close()

	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	opts := Options{
		Dir: dir, Mode: reg.opts.Mode, Sync: true, CompactEvery: -1,
		MaxQueuedSubmits: 1,
		OpenFile: func(path string, flag int, perm os.FileMode) (storage.File, error) {
			return fs.Open(path, flag, perm)
		},
	}
	reg = New(opts)
	defer reg.Close()
	if _, err := reg.Stats("t"); err != nil {
		t.Fatal(err)
	}
	armSlowSyncs(plan, fs.Step(), 400*time.Millisecond)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := reg.Submit("t", workload.ChurnGrant(0, gcUsers, gcRoles))
		leaderDone <- err
	}()
	tn := resident(t, reg, "t")
	waitFor(t, "leader inside commit group", func() bool {
		tn.qmu.Lock()
		queued := len(tn.queue)
		tn.qmu.Unlock()
		return len(tn.submu) == 1 && queued == 0
	})

	queuedDone := make(chan error, 1)
	go func() {
		_, err := reg.Submit("t", workload.ChurnGrant(1, gcUsers, gcRoles))
		queuedDone <- err
	}()
	waitFor(t, "one waiter queued", func() bool {
		tn.qmu.Lock()
		defer tn.qmu.Unlock()
		return len(tn.queue) == 1
	})

	// Queue at cap: the next arrival sheds immediately, without waiting out
	// the stall.
	start := time.Now()
	_, err := reg.Submit("t", workload.ChurnGrant(2, gcUsers, gcRoles))
	if !admission.IsOverloaded(err) {
		t.Fatalf("over-cap submit got %v, want admission.ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("over-cap submit blocked %v, want immediate refusal", waited)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// A submit arriving with an already-expired context is refused before it
// takes a queue slot.
func TestSubmitDeadOnArrival(t *testing.T) {
	dir := t.TempDir()
	reg := gcRegistry(t, dir, nil)
	defer reg.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := reg.SubmitBatchCtx(ctx, "t", []command.Command{workload.ChurnGrant(0, gcUsers, gcRoles)})
	if !admission.IsDeadline(err) {
		t.Fatalf("dead-on-arrival submit got %v, want admission.ErrDeadline", err)
	}
	// Nothing committed.
	st, err := reg.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 0 {
		t.Fatalf("generation %d after refused submit", st.Generation)
	}
}
