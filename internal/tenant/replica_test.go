package tenant

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/workload"
)

// primaryWithWrites stands up a registry with one churn tenant and n applied
// writes, returning the registry.
func primaryWithWrites(t *testing.T, dir string, n int) *Registry {
	t.Helper()
	reg := New(Options{Dir: dir, Mode: engine.Refined})
	if err := reg.InstallPolicy("t", workload.ChurnPolicy(16, 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res, err := reg.Submit("t", workload.ChurnGrant(i, 16, 16))
		if err != nil || res.Outcome != command.Applied {
			t.Fatalf("churn submit %d: outcome=%v err=%v", i, res.Outcome, err)
		}
	}
	return reg
}

func TestPullWALAndApplyReplicated(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 10)
	defer prim.Close()

	res, err := prim.PullWAL(context.Background(), "t", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotNeeded {
		t.Fatal("uncompacted log should serve from seq 0")
	}
	if len(res.Records) != 10 || res.Head != 10 {
		t.Fatalf("pull got %d records head %d, want 10/10", len(res.Records), res.Head)
	}

	// A follower registry bootstraps from the snapshot dump and applies the
	// pulled records through the engine.
	seq, seqEpoch, polJSON, _, err := prim.SnapshotDump("t")
	if err != nil {
		t.Fatal(err)
	}
	fol := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer fol.Close()
	// Snapshot carries the whole state: installing at seq makes the pulled
	// suffix after seq a no-op overlap.
	if err := fol.InstallReplicaSnapshot("t", polJSON, seq, seqEpoch, nil); err != nil {
		t.Fatal(err)
	}
	gen, err := fol.ApplyReplicated("t", res.Records)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 10 {
		t.Fatalf("follower generation %d, want 10", gen)
	}

	// Decisions agree between primary and follower.
	probes := []command.Command{
		workload.ChurnGrant(11, 16, 16),
		command.Grant("nobody", model.User("u0001"), model.Role("c0002")),
	}
	for i, c := range probes {
		pr, err1 := prim.Authorize("t", c)
		fr, err2 := fol.Authorize("t", c)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if pr.OK != fr.OK {
			t.Fatalf("probe %d: primary %v follower %v", i, pr.OK, fr.OK)
		}
	}
}

func TestApplyReplicatedFromInitialPolicy(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 6)
	defer prim.Close()

	// Install the *initial* policy at seq 0 — the churn fixture — and replay
	// the whole log to reach the primary's state: the pure log-shipping path
	// with no snapshot shortcut.
	fol := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer fol.Close()
	initJSON, err := json.Marshal(workload.ChurnPolicy(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.InstallReplicaSnapshot("t", initJSON, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	all, err := prim.PullWAL(context.Background(), "t", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.ApplyReplicated("t", all.Records); err != nil {
		t.Fatal(err)
	}
	st, err := fol.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 6 {
		t.Fatalf("follower generation %d, want 6", st.Generation)
	}
	if _, err := fol.ApplyReplicated("t", all.Records); err != nil {
		t.Fatalf("re-applying an overlapping batch must be a no-op, got %v", err)
	}
	pst, err := prim.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if pst.Policy != st.Policy {
		t.Fatalf("policy stats diverged: primary %+v follower %+v", pst.Policy, st.Policy)
	}
}

func TestApplyReplicatedGapIsOutOfSync(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 5)
	defer prim.Close()
	res, err := prim.PullWAL(context.Background(), "t", 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fol := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer fol.Close()
	initJSON, err := json.Marshal(workload.ChurnPolicy(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.InstallReplicaSnapshot("t", initJSON, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Records 3..5 cannot extend generation 0: seq gap.
	if _, err := fol.ApplyReplicated("t", res.Records); !IsOutOfSync(err) {
		t.Fatalf("gap apply err = %v, want out-of-sync", err)
	}
}

func TestInstallReplicaSnapshotRefusesRewind(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 4)
	defer prim.Close()
	seq, seqEpoch, polJSON, _, err := prim.SnapshotDump("t")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("dump seq %d, want 4", seq)
	}
	fol := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer fol.Close()
	if err := fol.InstallReplicaSnapshot("t", polJSON, seq, seqEpoch, nil); err != nil {
		t.Fatal(err)
	}
	if err := fol.InstallReplicaSnapshot("t", polJSON, seq-1, seqEpoch, nil); err == nil {
		t.Fatal("installing a snapshot behind the local generation must fail")
	}
}

func TestPullWALAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := New(Options{Dir: dir, Mode: engine.Refined, CompactEvery: 4})
	defer reg.Close()
	if err := reg.InstallPolicy("t", workload.ChurnPolicy(16, 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := reg.Submit("t", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// The compaction budget (4) fired and truncated the log file, but the
	// in-memory tail still covers seq 0: a slightly-behind follower replays
	// incrementally instead of paying a snapshot bootstrap per compaction.
	res, err := reg.PullWAL(context.Background(), "t", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotNeeded || len(res.Records) != 9 {
		t.Fatalf("pull across compaction: snapshotNeeded=%v records=%d, want 9 from the tail",
			res.SnapshotNeeded, len(res.Records))
	}
	// Pulling from the head still works.
	st, err := reg.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	res, err = reg.PullWAL(context.Background(), "t", st.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotNeeded || len(res.Records) != 0 {
		t.Fatalf("head pull: %+v", res)
	}
	// A restart drops the tail (the file was truncated), so the same pull
	// from 0 now genuinely needs a snapshot — the gap path.
	if !reg.Evict("t") {
		t.Fatal("evict failed")
	}
	res, err = reg.PullWAL(context.Background(), "t", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotNeeded {
		t.Fatalf("pull from 0 after reopen: want SnapshotNeeded, got %d records", len(res.Records))
	}
}

// TestWaitGenerationSurvivesEngineSwap pins the bootstrap/wait race: a
// reader blocked on a generation token must wake when a replica snapshot
// bootstrap replaces the tenant's engine (the retired engine never publishes
// again), resuming against the successor instead of sleeping out its
// timeout.
func TestWaitGenerationSurvivesEngineSwap(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 4)
	defer prim.Close()
	seq, seqEpoch, polJSON, _, err := prim.SnapshotDump("t")
	if err != nil {
		t.Fatal(err)
	}

	fol := New(Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer fol.Close()
	initJSON, err := json.Marshal(workload.ChurnPolicy(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.InstallReplicaSnapshot("t", initJSON, 0, 0, nil); err != nil {
		t.Fatal(err)
	}

	type result struct {
		gen uint64
		ok  bool
		err error
	}
	done := make(chan result, 1)
	go func() {
		gen, ok, err := fol.WaitGeneration("t", seq, 10*time.Second)
		done <- result{gen, ok, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter block on the old engine
	if err := fol.InstallReplicaSnapshot("t", polJSON, seq, seqEpoch, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil || !res.ok || res.gen < seq {
			t.Fatalf("wait across engine swap: %+v (want generation >= %d)", res, seq)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("waiter stranded on the retired engine")
	}
}

func TestPullWALLongPollWakesOnWrite(t *testing.T) {
	prim := primaryWithWrites(t, t.TempDir(), 1)
	defer prim.Close()
	done := make(chan PullResult, 1)
	go func() {
		res, err := prim.PullWAL(context.Background(), "t", 1, 0, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := prim.Submit("t", workload.ChurnGrant(1, 16, 16)); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if len(res.Records) != 1 || res.Records[0].Seq != 2 {
			t.Fatalf("long-poll woke with %+v", res)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll did not wake on write")
	}
}
