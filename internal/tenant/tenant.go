// Package tenant serves many isolated policies from one process: a sharded
// registry where each tenant owns a snapshot engine (internal/engine) backed
// by its own WAL+snapshot store (internal/storage). Tenants are addressed by
// name, hashed onto N lock-striped shard maps so unrelated tenants never
// contend on a lock; a tenant is opened lazily — recovered from its on-disk
// snapshot and WAL — on first touch, and idle tenants are compacted and then
// LRU-evicted when a shard exceeds its residency budget, so a registry over
// millions of tenants holds only the working set in memory.
//
// The shard lock covers map/LRU bookkeeping plus the first-touch open of a
// cold tenant (so a tenant recovers exactly once); eviction I/O happens
// outside it. Once a tenant is resolved, authorization runs lock-free
// against engine snapshots and submissions serialise only against that
// tenant's writer. The batched entry points
// (AuthorizeBatch, SubmitBatch) amortise the resolve + snapshot acquisition
// across a whole request, which is what makes one network round-trip cheap
// (see internal/server).
package tenant

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/command"
	"adminrefine/internal/constraints"
	"adminrefine/internal/decision"
	"adminrefine/internal/engine"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
)

// Options configures a Registry.
type Options struct {
	// Dir is the root data directory; tenant t persists under Dir/t.
	Dir string
	// Mode is the authorization regime every tenant engine runs under.
	Mode engine.Mode
	// Shards is the number of lock-striped shard maps (default 8).
	Shards int
	// MaxResident caps resident tenants per shard; exceeding it compacts and
	// evicts the least-recently-used idle tenant (0 = unlimited).
	MaxResident int
	// CompactEvery triggers a compaction after this many WAL records
	// accumulate on a tenant (default 1024; negative disables).
	CompactEvery int
	// Sync fsyncs every WAL append (crash-durable). Concurrent submitters on
	// one tenant share their fsync: the write path coalesces whatever queued
	// while the previous group was flushing into one write + one fsync (group
	// commit), so durable throughput scales with concurrency instead of fsync
	// count. Default off.
	Sync bool
	// OpenFile, when non-nil, opens every tenant's WAL through this hook
	// instead of os.OpenFile — the deterministic fault-injection seam (see
	// internal/fault and storage.Options.OpenFile).
	OpenFile func(path string, flag int, perm os.FileMode) (storage.File, error)
	// CacheSlots sizes each tenant engine's decision cache (rounded up to a
	// power of two). 0 uses the engine default; negative disables caching.
	CacheSlots int
	// Constraints optionally guards every write: administrative commands
	// whose resulting policy would introduce a new SSD violation are denied
	// (and audited with the veto reason), and policy installs — provisioning
	// and bootstrap seeding alike — are refused outright when the policy
	// violates a constraint. Enforcement lives here, on the tenant write
	// path, so every writer (HTTP submit, CLI, bootstrap) passes through the
	// same guard. Replicated applies are exempt: a follower replays the
	// primary's already-guarded history verbatim, because vetoing it locally
	// would fork the replica.
	Constraints *constraints.Set
	// Bootstrap, when non-nil, seeds a tenant that has no durable state yet:
	// it is invoked on first touch of an empty tenant and the returned policy
	// is compacted to disk immediately. Return nil to leave the tenant empty.
	Bootstrap func(name string) *policy.Policy
	// Epoch, when non-nil, reports the node's current fencing epoch (see
	// internal/replication). The registry stamps it onto locally minted WAL
	// records before every write, which is what lets a post-failover primary
	// tell followers whose history is a prefix of its own from ones that
	// forked (see PullWAL). Nil reads as epoch 0 — a never-failed-over
	// cluster where every record agrees by construction.
	Epoch func() uint64
	// MaxQueuedSubmits hard-caps each tenant's commit-group queue: submitters
	// arriving while that many are already queued behind the in-flight group
	// are refused immediately with admission.ErrOverloaded instead of growing
	// the queue without bound (0 = unlimited). This is the write path's
	// backpressure floor — under a sustained overload the queue otherwise
	// absorbs the excess as unbounded latency for every later submitter.
	MaxQueuedSubmits int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 1024
	}
	return o
}

// Registry is a sharded set of resident tenants over one data directory.
// All methods are safe for concurrent use.
type Registry struct {
	opts   Options
	shards []*shard
	// guard is the write-path constraint veto (nil without constraints),
	// shared by every tenant engine.
	guard  engine.Guard
	closed atomic.Bool
}

type shard struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	// lru orders resident tenants, front = most recently used. Element
	// values are *tenant.
	lru *list.List
}

// wlock is the tenant writer lock: a one-slot semaphore with mutex-shaped
// methods. Unlike sync.Mutex its acquisition is selectable, which is what
// lets a queued submitter race the lock against its own deadline and the
// group leader's completion signal (see submitGrouped) instead of blocking
// unboundedly once the commit path saturates.
type wlock chan struct{}

func newWlock() wlock   { return make(wlock, 1) }
func (l wlock) Lock()   { l <- struct{}{} }
func (l wlock) Unlock() { <-l }

// tenant is one resident policy: engine + store + bookkeeping.
type tenant struct {
	name string
	// eng is an atomic pointer because InstallPolicy replaces the engine
	// while lock-free readers (Authorize, Stats, …) are loading it.
	eng   atomic.Pointer[engine.Engine]
	store *storage.Store
	elem  *list.Element
	// inuse counts in-flight operations; eviction skips busy tenants.
	inuse atomic.Int64
	// submu serialises submissions and compactions so a compaction always
	// snapshots the WAL head (no record can land between the policy snapshot
	// and the log truncation).
	submu wlock
	// qmu guards queue, the tenant's pending commit group: submitters enqueue
	// under qmu and then contend on submu; whoever wins drains the queue and
	// commits the whole group as one engine batch — one WAL write, one fsync —
	// releasing every drained waiter only after the covering flush. See
	// Registry.submitGrouped.
	qmu        sync.Mutex
	queue      []*submitWaiter
	recovered  storage.Recovery
	authorizes atomic.Uint64
	submits    atomic.Uint64
	// compactErr remembers the last budget-triggered compaction failure (nil
	// once one succeeds). Compaction failures are not submit failures — the
	// WAL already holds every applied record — so they surface via Stats,
	// not the submit path.
	compactErr atomic.Pointer[string]
	// fenced refuses new submissions while a migration flips the tenant to
	// another primary (see Registry.FenceWrites). Checked on entry and again
	// by the commit leader under submu, so once FenceWrites returns no later
	// group can commit.
	fenced atomic.Bool
}

func (t *tenant) engine() *engine.Engine { return t.eng.Load() }

// Stats describes one tenant's current state.
type Stats struct {
	Tenant     string `json:"tenant"`
	Mode       string `json:"mode"`
	Generation uint64 `json:"generation"`
	WALSeq     int    `json:"wal_seq"`
	// SinceCompact is the number of WAL records accumulated since the last
	// compaction.
	SinceCompact int          `json:"since_compact"`
	Policy       policy.Stats `json:"policy"`
	Authorizes   uint64       `json:"authorizes"`
	Submits      uint64       `json:"submits"`
	// Cache reports the tenant engine's decision-cache counters (hits,
	// misses, stores, evictions) and capacity.
	Cache decision.Stats `json:"cache"`
	// Recovered reports what the lazy open found on disk.
	Recovered storage.Recovery `json:"recovered"`
	// LastCompactError is the most recent budget-triggered compaction
	// failure, empty once a compaction succeeds. Failed compactions are
	// retried on later submits and never fail the submit itself (the WAL
	// already holds every applied record).
	LastCompactError string `json:"last_compact_error,omitempty"`
}

// New builds a registry rooted at opts.Dir. Tenants open lazily; New itself
// touches no tenant state.
func New(opts Options) *Registry {
	opts = opts.withDefaults()
	r := &Registry{opts: opts, guard: opts.Constraints.Guard(), shards: make([]*shard, opts.Shards)}
	for i := range r.shards {
		r.shards[i] = &shard{tenants: make(map[string]*tenant), lru: list.New()}
	}
	return r
}

// Sentinels wrapped into returned errors so transports can map them onto
// status codes without string matching.
var (
	errProvisioned = errors.New("already provisioned")
	// ErrBadName and ErrNotFound are exported so the replication follower
	// can surface name/missing-tenant faults through the same status-code
	// mapping transports use for the registry's own errors.
	ErrBadName  = errors.New("invalid tenant name")
	ErrNotFound = errors.New("no such tenant")
	// ErrFenced refuses a write to a tenant whose ownership is mid-flip to
	// another primary (see Registry.FenceWrites). Transient: clients retry
	// and land on the new owner once placement flips.
	ErrFenced = errors.New("tenant writes fenced for migration")
)

// IsBadName reports whether err came from an inadmissible tenant name.
func IsBadName(err error) bool { return errors.Is(err, ErrBadName) }

// IsNotFound reports whether err came from a read-only touch of a tenant
// that has no durable state (reads never create tenants; see acquire).
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// IsProvisioned reports whether err came from installing a policy on a
// tenant that already has administrative history.
func IsProvisioned(err error) bool { return errors.Is(err, errProvisioned) }

// IsFenced reports whether err came from a write refused during a migration
// flip window.
func IsFenced(err error) bool { return errors.Is(err, ErrFenced) }

// ValidName reports whether a tenant name is admissible: 1–64 characters
// drawn from [A-Za-z0-9_-], so every name maps to a safe directory name.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) shardOf(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// acquire resolves (lazily opening) the tenant and pins it against eviction.
// Callers must release it. Write entry points pass create=true; read-only
// entry points pass create=false so probing unknown names never mints
// durable on-disk state (they get ErrNotFound instead, unless Bootstrap
// supplies a policy for the name).
func (r *Registry) acquire(name string, create bool) (*tenant, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("tenant: registry closed")
	}
	if !ValidName(name) {
		return nil, fmt.Errorf("tenant %q: %w", name, ErrBadName)
	}
	sh := r.shardOf(name)
	sh.mu.Lock()
	// Re-check under the shard lock: Close sets the flag before sweeping the
	// shards, so an acquire that raced past the first check cannot insert a
	// tenant into a shard Close already swept.
	if r.closed.Load() {
		sh.mu.Unlock()
		return nil, fmt.Errorf("tenant: registry closed")
	}
	t, ok := sh.tenants[name]
	var evicted []*tenant
	if !ok {
		var err error
		t, err = r.open(name, create)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		sh.tenants[name] = t
		t.elem = sh.lru.PushFront(t)
		evicted = r.evictLocked(sh)
	} else {
		sh.lru.MoveToFront(t.elem)
	}
	t.inuse.Add(1)
	sh.mu.Unlock()
	// Compact-and-close of the evicted tenants happens outside the shard
	// lock: it is disk I/O and must not stall the shard's other tenants.
	for _, v := range evicted {
		v.shutdown()
	}
	return t, nil
}

func (t *tenant) release() { t.inuse.Add(-1) }

// open recovers a tenant from its directory (first touch), seeding it via
// Bootstrap when the name has no durable state yet. With create=false, a
// name with neither on-disk state nor a Bootstrap policy is not found.
func (r *Registry) open(name string, create bool) (*tenant, error) {
	dir := filepath.Join(r.opts.Dir, name)
	var seed *policy.Policy
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		if r.opts.Bootstrap != nil {
			seed = r.opts.Bootstrap(name)
		}
		if seed == nil && !create {
			return nil, fmt.Errorf("tenant %s: %w", name, ErrNotFound)
		}
	}
	st, eng, rec, err := storage.OpenEngine(dir, r.opts.Mode, storage.Options{Sync: r.opts.Sync, OpenFile: r.opts.OpenFile})
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	if r.opts.CacheSlots != 0 {
		eng.SetCacheSlots(r.opts.CacheSlots)
	}
	t := &tenant{name: name, store: st, recovered: rec, submu: newWlock()}
	t.eng.Store(eng)
	if seed != nil && !rec.SnapshotLoaded && rec.Records == 0 {
		if err := r.checkInstall(seed); err != nil {
			st.Close()
			return nil, fmt.Errorf("tenant %s: bootstrap: %w", name, err)
		}
		if err := r.installAt(t, seed, 0, r.epochNow(), false); err != nil {
			st.Close()
			return nil, fmt.Errorf("tenant %s: bootstrap: %w", name, err)
		}
	}
	return t, nil
}

// epochNow reports the node's current fencing epoch (0 without an epoch
// source).
func (r *Registry) epochNow() uint64 {
	if r.opts.Epoch == nil {
		return 0
	}
	return r.opts.Epoch()
}

// stampEpoch syncs the tenant store's record-stamp epoch with the node
// epoch before a local write — after a promotion bumps the node epoch, the
// next write on each tenant starts the tenant's new-epoch history. Caller
// holds t.submu.
func (r *Registry) stampEpoch(t *tenant) {
	if r.opts.Epoch != nil {
		t.store.SetStampEpoch(r.opts.Epoch())
	}
}

// checkInstall vetoes installing a policy that already violates the
// registry's SSD constraints — the install-path half of the write guard
// (bootstrap seeding and provisioning; replica snapshot installs are
// exempt, see Options.Constraints).
func (r *Registry) checkInstall(p *policy.Policy) error {
	if r.opts.Constraints == nil {
		return nil
	}
	if vs := r.opts.Constraints.CheckPolicy(p); len(vs) > 0 {
		return fmt.Errorf("policy violates constraint: %s", vs[0].Error())
	}
	return nil
}

// installAt replaces the tenant's state with p, durably (compacted snapshot
// on disk at seq, stamped with seqEpoch — the fencing epoch of the record
// the snapshot covers), and rebuilds the engine over it at that generation.
// seq is 0 for provisioning installs and the upstream generation for replica
// snapshot bootstraps; rewind permits moving below the local generation (the
// fork-healing install, see InstallReplicaSnapshot).
func (r *Registry) installAt(t *tenant, p *policy.Policy, seq, seqEpoch uint64, rewind bool) error {
	if err := t.store.CompactAt(p, int(seq), seqEpoch, rewind); err != nil {
		return err
	}
	eng := engine.NewAt(p, r.opts.Mode, seq)
	if r.opts.CacheSlots != 0 {
		eng.SetCacheSlots(r.opts.CacheSlots)
	}
	st := t.store
	eng.SetCommitHook(func(gen uint64, res command.StepResult) error {
		return st.StageCommit(int(gen), res)
	})
	eng.SetCommitFlush(st.FlushStaged)
	old := t.engine()
	t.eng.Store(eng)
	// Wake generation waiters blocked on the replaced engine so they
	// re-resolve the successor instead of sleeping out their timeout.
	old.Retire()
	return nil
}

// evictLocked shrinks the shard back to its residency budget, walking from
// the LRU tail and skipping tenants with in-flight operations. It only
// unlinks victims (map + LRU) — the caller shuts them down after releasing
// the shard lock; unlinked-with-inuse==0 guarantees exclusivity.
func (r *Registry) evictLocked(sh *shard) []*tenant {
	if r.opts.MaxResident <= 0 {
		return nil
	}
	var out []*tenant
	for e := sh.lru.Back(); e != nil && sh.lru.Len() > r.opts.MaxResident; {
		prev := e.Prev()
		t := e.Value.(*tenant)
		if t.inuse.Load() == 0 {
			sh.lru.Remove(e)
			delete(sh.tenants, t.name)
			out = append(out, t)
		}
		e = prev
	}
	return out
}

// shutdown compacts and closes a tenant's store. Called with the tenant
// unreachable from the maps and no in-flight operations.
func (t *tenant) shutdown() {
	t.submu.Lock()
	defer t.submu.Unlock()
	if t.store.SinceCompact() > 0 {
		s := t.engine().Snapshot()
		// Best-effort: an eviction-time compaction failure loses nothing —
		// the WAL still holds every applied command.
		t.store.Compact(s.Policy())
		s.Close()
	}
	t.store.Close()
}

// maybeCompact compacts the tenant when its WAL grew past the budget. Must
// run under submu so the snapshot is taken at the WAL head. A failure is
// recorded for Stats but deliberately not surfaced to the submitter: the
// commands are already WAL-durable, and the un-reset SinceCompact counter
// retries compaction on the next submit.
func (t *tenant) maybeCompact(every int) {
	if every <= 0 || t.store.SinceCompact() < every {
		return
	}
	s := t.engine().Snapshot()
	defer s.Close()
	if err := t.store.Compact(s.Policy()); err != nil {
		msg := err.Error()
		t.compactErr.Store(&msg)
		return
	}
	t.compactErr.Store(nil)
}

// Authorize decides one command for the tenant, lazily opening it.
func (r *Registry) Authorize(name string, c command.Command) (engine.AuthzResult, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return engine.AuthzResult{}, err
	}
	defer t.release()
	t.authorizes.Add(1)
	s := t.engine().Snapshot()
	defer s.Close()
	just, ok := s.Authorize(c)
	return engine.AuthzResult{Justification: just, OK: ok}, nil
}

// AuthorizeBatch decides every command against one snapshot of the tenant's
// policy: one registry resolve, one snapshot acquisition, one decider for
// the whole batch.
func (r *Registry) AuthorizeBatch(name string, cmds []command.Command) ([]engine.AuthzResult, error) {
	res, _, err := r.AuthorizeBatchInto(name, cmds, nil)
	return res, err
}

// AuthorizeBatchInto is AuthorizeBatch writing results into out's backing
// array when its capacity suffices, so request loops can reuse one buffer
// across calls (see internal/server). The returned generation is the engine
// generation every decision in the batch was taken at — the token a client
// passes back as min_generation to chain read-your-writes across replicas.
func (r *Registry) AuthorizeBatchInto(name string, cmds []command.Command, out []engine.AuthzResult) ([]engine.AuthzResult, uint64, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return nil, 0, err
	}
	defer t.release()
	t.authorizes.Add(uint64(len(cmds)))
	s := t.engine().Snapshot()
	defer s.Close()
	return s.AuthorizeBatchInto(cmds, out), s.Generation(), nil
}

// WaitGeneration blocks until the tenant's engine generation reaches min or
// the timeout elapses, returning the generation last observed and whether it
// satisfies min — the serving side of the min_generation consistency token.
// On a follower the generation advances as replicated records are applied;
// on a primary it advances with local writes.
func (r *Registry) WaitGeneration(name string, min uint64, timeout time.Duration) (uint64, bool, error) {
	return r.WaitGenerationCtx(context.Background(), name, min, timeout)
}

// WaitGenerationCtx is WaitGeneration bounded additionally by ctx (a server
// abandons the wait when its client disconnects). A wait survives engine
// replacement: when a replica snapshot bootstrap installs a successor
// engine mid-wait, the retired engine wakes its waiters and the wait
// resumes against the successor for the remaining budget.
func (r *Registry) WaitGenerationCtx(ctx context.Context, name string, min uint64, timeout time.Duration) (uint64, bool, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return 0, false, err
	}
	defer t.release()
	deadline := time.Now().Add(timeout)
	for {
		eng := t.engine()
		gen, ok := eng.WaitGenerationCtx(ctx, min, time.Until(deadline))
		if ok {
			return gen, true, nil
		}
		if t.engine() == eng || ctx.Err() != nil || !time.Now().Before(deadline) {
			return gen, false, nil
		}
	}
}

// Submit executes one administrative command through the tenant's transition
// function, guarded by the registry's constraint set; applied commands are
// WAL-durable (step + audit record, fsynced under Options.Sync via the
// group-commit flush) before the result returns, and commands without effect
// are audited with their veto reason. Concurrent submitters on one tenant
// are coalesced into commit groups sharing a single write and fsync.
func (r *Registry) Submit(name string, c command.Command) (command.StepResult, error) {
	return r.SubmitCtx(context.Background(), name, c)
}

// SubmitCtx is Submit bounded by ctx: a submitter whose context expires
// while queued behind the in-flight commit group is refused with
// admission.ErrDeadline and its queue slot is reclaimed before the next
// leader drains — the commands never reach the WAL. Once a leader has
// drained the waiter the commit's verdict is authoritative: an acknowledged
// write is never reported as expired.
func (r *Registry) SubmitCtx(ctx context.Context, name string, c command.Command) (command.StepResult, error) {
	t, err := r.acquire(name, true)
	if err != nil {
		return command.StepResult{}, err
	}
	defer t.release()
	t.submits.Add(1)
	w := r.submitGrouped(ctx, t, []command.Command{c})
	res := command.StepResult{Cmd: c, Outcome: command.Denied}
	if len(w.results) > 0 {
		res = w.results[0]
	}
	if w.err != nil {
		return res, w.err
	}
	if len(w.vetoes) > 0 && w.vetoes[0] != nil {
		// Surface the guard's veto like SubmitGuarded does for a direct call.
		return res, w.vetoes[0]
	}
	return res, nil
}

// SubmitBatch executes the commands in order under one writer acquisition,
// each guarded by the registry's constraint set, publishing at most one new
// snapshot (see engine.SubmitBatch). The returned generation is the engine
// generation after the batch — the (tenant, generation) token a client
// hands to a read replica as min_generation to get read-your-writes without
// global coordination. Like Submit, concurrent batches on one tenant share
// a commit group's single write and fsync.
func (r *Registry) SubmitBatch(name string, cmds []command.Command) ([]command.StepResult, uint64, error) {
	return r.SubmitBatchCtx(context.Background(), name, cmds)
}

// SubmitBatchCtx is SubmitBatch bounded by ctx, with the same queued-expiry
// semantics as SubmitCtx: admission.ErrDeadline while queued (slot
// reclaimed, nothing committed), admission.ErrOverloaded when the tenant's
// commit queue is at its MaxQueuedSubmits cap.
func (r *Registry) SubmitBatchCtx(ctx context.Context, name string, cmds []command.Command) ([]command.StepResult, uint64, error) {
	t, err := r.acquire(name, true)
	if err != nil {
		return nil, 0, err
	}
	defer t.release()
	t.submits.Add(uint64(len(cmds)))
	w := r.submitGrouped(ctx, t, cmds)
	return w.results, w.gen, w.err
}

// submitWaiter is one submitter's slot in a tenant commit group: its commands
// going in and — once the group's covering flush succeeded or failed — its
// results, read-your-writes generation, per-command guard vetoes and group
// error coming out. done is closed by the group leader after the output
// fields are final.
type submitWaiter struct {
	cmds    []command.Command
	done    chan struct{}
	results []command.StepResult
	vetoes  []error
	gen     uint64
	err     error
}

// submitGrouped funnels one submission through the tenant's commit group:
// enqueue, contend for the writer lock, and whichever submitter wins commits
// every queued submission as one engine batch — one WAL write, one fsync
// (see storage.FlushStaged) — before releasing the drained waiters. Group
// size self-tunes: an uncontended submitter forms a group of one (identical
// to the direct path), while under N concurrent -sync submitters the fsync
// is amortised across whatever queued while the previous group was flushing.
//
// The wait is bounded two ways. The queue has a hard cap
// (Options.MaxQueuedSubmits → admission.ErrOverloaded, checked on entry),
// and a queued waiter races the writer lock against its own ctx: on expiry
// it removes itself from the queue — reclaiming the slot before any leader
// drains it — and returns admission.ErrDeadline with nothing committed. The
// race has exactly two clean outcomes for an expiring waiter: either it was
// still queued (removed, never committed) or a leader had already drained
// it, in which case the commit is in flight and its verdict, not the
// deadline, is what the submitter must hear — an acknowledged write
// reported as expired would be a lost-write lie in the other direction.
func (r *Registry) submitGrouped(ctx context.Context, t *tenant, cmds []command.Command) *submitWaiter {
	w := &submitWaiter{cmds: cmds, done: make(chan struct{})}
	if err := ctx.Err(); err != nil {
		// Dead on arrival: don't burn commit-group capacity on a client that
		// already gave up.
		w.err = fmt.Errorf("tenant %s: submit: %w (%v)", t.name, admission.ErrDeadline, err)
		close(w.done)
		return w
	}
	if t.fenced.Load() {
		w.err = fmt.Errorf("tenant %s: %w", t.name, ErrFenced)
		close(w.done)
		return w
	}
	t.qmu.Lock()
	if max := r.opts.MaxQueuedSubmits; max > 0 && len(t.queue) >= max {
		t.qmu.Unlock()
		w.err = fmt.Errorf("tenant %s: commit queue full (%d queued): %w", t.name, max, admission.ErrOverloaded)
		close(w.done)
		return w
	}
	t.queue = append(t.queue, w)
	t.qmu.Unlock()

	select {
	case t.submu <- struct{}{}:
		// Leader: drain and commit whatever queued. w is either in the group
		// or was drained by an earlier leader (its done already closed).
		t.qmu.Lock()
		group := t.queue
		t.queue = nil
		t.qmu.Unlock()
		if len(group) > 0 {
			r.commitGroup(t, group)
		}
		t.submu.Unlock()
	case <-w.done:
		// An earlier leader committed w's group.
		return w
	case <-ctx.Done():
		t.qmu.Lock()
		removed := false
		for i, q := range t.queue {
			if q == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				removed = true
				break
			}
		}
		t.qmu.Unlock()
		if removed {
			w.err = fmt.Errorf("tenant %s: submit queued behind commit group: %w (%v)", t.name, admission.ErrDeadline, ctx.Err())
			close(w.done)
			return w
		}
		// Too late to withdraw: a leader drained w and its commit is in
		// flight. Wait for the authoritative verdict.
	}
	<-w.done
	return w
}

// commitGroup commits the drained waiters as one engine batch and
// distributes the outcome. The group shares fate on fatal errors: a failed
// covering flush rolled back every staged command (no waiter was
// acknowledged — see engine.SubmitBatch), and a mid-batch commit-hook stop
// leaves later waiters unprocessed, so every waiter sees the error. The
// generation handed to each waiter is the engine generation after the whole
// group — monotone, hence a valid read-your-writes token for every member.
// Caller holds t.submu.
func (r *Registry) commitGroup(t *tenant, group []*submitWaiter) {
	if t.fenced.Load() {
		// A submitter that passed the entry check before the fence landed can
		// still become a leader afterwards; FenceWrites sets the flag before
		// taking submu, so re-checking here (under submu) guarantees no group
		// commits once FenceWrites has returned.
		for _, w := range group {
			w.err = fmt.Errorf("tenant %s: %w", t.name, ErrFenced)
			close(w.done)
		}
		return
	}
	r.stampEpoch(t)
	eng := t.eng.Load()
	cmds := group[0].cmds
	if len(group) > 1 {
		total := 0
		for _, w := range group {
			total += len(w.cmds)
		}
		cmds = make([]command.Command, 0, total)
		for _, w := range group {
			cmds = append(cmds, w.cmds...)
		}
	}
	// Wrap the guard to capture per-command veto reasons for the audit
	// trail: the engine swallows guard errors batch-wise (a veto denies one
	// command, the batch continues).
	var vetoes []error
	guard := r.guard
	if guard != nil {
		inner := guard
		guard = func(pre *policy.Policy, c command.Command) error {
			err := inner(pre, c)
			vetoes = append(vetoes, err)
			return err
		}
	}
	out, err := eng.SubmitBatch(cmds, guard)
	t.auditMisses(eng, out, vetoes)
	gen := eng.Generation()
	off := 0
	for _, w := range group {
		end := off + len(w.cmds)
		// Copy this waiter's slices: out and vetoes are shared across the
		// group and the engine may have stopped before reaching its segment.
		if off < len(out) {
			w.results = append(w.results, out[off:min(end, len(out))]...)
		}
		if off < len(vetoes) {
			w.vetoes = append(w.vetoes, vetoes[off:min(end, len(vetoes))]...)
		}
		w.gen = gen
		w.err = err
		off = end
		close(w.done)
	}
	if err == nil {
		t.maybeCompact(r.opts.CompactEvery)
	}
}

// auditMisses appends audit records for the commands of a submission that
// did not change the policy (denied, vetoed, no-change, ill-formed);
// applied commands were already audited by the commit hook. vetoes[i], when
// present, is the guard's verdict on the i-th command. Appends are
// best-effort: a command without effect loses nothing on replay, and a
// failing WAL already surfaces through the submit path itself. Caller holds
// t.submu.
func (t *tenant) auditMisses(eng *engine.Engine, results []command.StepResult, vetoes []error) {
	gen := int(eng.Generation())
	for i, res := range results {
		if res.Outcome == command.Applied {
			continue
		}
		reason := ""
		if i < len(vetoes) && vetoes[i] != nil {
			if _, fatal := vetoes[i].(*engine.CommitError); !fatal {
				reason = vetoes[i].Error()
			}
		}
		t.store.AppendAudit(gen, res, reason)
	}
}

// Explain describes why a command would be authorized or denied for the
// tenant right now, without executing it, together with the generation the
// explanation was taken at.
func (r *Registry) Explain(name string, c command.Command) (string, uint64, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return "", 0, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	return s.ExplainCommand(c), s.Generation(), nil
}

// InstallPolicy provisions a tenant with an initial policy. It only
// succeeds while the tenant has no administrative history (generation 0 and
// an empty WAL): live tenants evolve exclusively through Submit, so the
// transition function mediates every later change.
func (r *Registry) InstallPolicy(name string, p *policy.Policy) error {
	t, err := r.acquire(name, true)
	if err != nil {
		return err
	}
	defer t.release()
	t.submu.Lock()
	defer t.submu.Unlock()
	if t.engine().Generation() != 0 || t.store.Seq() != 0 {
		return fmt.Errorf("tenant %s: %w (generation %d)", name, errProvisioned, t.engine().Generation())
	}
	if err := r.checkInstall(p); err != nil {
		return fmt.Errorf("tenant %s: %w", name, err)
	}
	return r.installAt(t, p, 0, r.epochNow(), false)
}

// View acquires a read snapshot of the tenant's engine, pinning the tenant
// against eviction until release is called. This is how layers above the
// registry — the session tables in internal/session — evaluate against
// tenant state: checks run lock-free against the snapshot while the tenant
// stays resident. Exactly one release call per successful View.
func (r *Registry) View(name string) (snap *engine.Snapshot, release func(), err error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return nil, nil, err
	}
	// Deliberately not counted under Stats.Authorizes: session/check
	// traffic has its own counters (session.Stats.Checks), and mixing the
	// two would make the authorize metric unusable for capacity planning.
	s := t.engine().Snapshot()
	return s, func() { s.Close(); t.release() }, nil
}

// Audit returns the tenant's retained audit records with audit indexes
// (storage.Record.ASeq, the unique pagination cursor) above after, oldest
// first (capped at limit; <= 0 = no cap), the total audit records seen,
// and the generation the tenant currently serves at. On a follower
// the audit trail is replicated: applied-command audit records are re-minted
// by the local commit hook as the replicated steps replay, so the follower's
// WAL carries the same trail the primary's does.
func (r *Registry) Audit(name string, after uint64, limit int) (records []storage.Record, total uint64, gen uint64, err error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return nil, 0, 0, err
	}
	defer t.release()
	records, total = t.store.Audit(after, limit)
	return records, total, t.engine().Generation(), nil
}

// Stats reports the tenant's current state, lazily opening it.
func (r *Registry) Stats(name string) (Stats, error) {
	t, err := r.acquire(name, false)
	if err != nil {
		return Stats{}, err
	}
	defer t.release()
	s := t.engine().Snapshot()
	defer s.Close()
	st := Stats{
		Tenant:       t.name,
		Mode:         r.opts.Mode.String(),
		Generation:   s.Generation(),
		WALSeq:       t.store.Seq(),
		SinceCompact: t.store.SinceCompact(),
		Policy:       s.Policy().Stats(),
		Authorizes:   t.authorizes.Load(),
		Submits:      t.submits.Load(),
		Cache:        t.engine().CacheStats(),
		Recovered:    t.recovered,
	}
	if msg := t.compactErr.Load(); msg != nil {
		st.LastCompactError = *msg
	}
	return st, nil
}

// Resident reports how many tenants are currently open across all shards.
func (r *Registry) Resident() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// FenceWrites refuses further submissions on the tenant and drains the
// in-flight commit group before returning: afterwards the tenant's
// generation is stable until UnfenceWrites (or eviction). This is the
// source-side flip window of a live migration — the migrating primary
// fences, waits for the head to stop moving, verifies the target caught up
// to exactly that head, and only then flips placement. Queued submitters
// are refused with ErrFenced; nothing of theirs was committed.
func (r *Registry) FenceWrites(name string) error {
	t, err := r.acquire(name, true)
	if err != nil {
		return err
	}
	defer t.release()
	t.fenced.Store(true)
	// Barrier: once we hold submu, no commit group is in flight, and any
	// leader acquiring it later re-checks the fence before committing.
	t.submu.Lock()
	t.qmu.Lock()
	queued := t.queue
	t.queue = nil
	t.qmu.Unlock()
	for _, w := range queued {
		w.err = fmt.Errorf("tenant %s: %w", t.name, ErrFenced)
		close(w.done)
	}
	t.submu.Unlock()
	return nil
}

// UnfenceWrites lifts a FenceWrites fence — the rollback path of a failed
// migration. No-op when the tenant is not resident (an evicted tenant
// reopens unfenced).
func (r *Registry) UnfenceWrites(name string) {
	sh := r.shardOf(name)
	sh.mu.Lock()
	t, ok := sh.tenants[name]
	sh.mu.Unlock()
	if ok {
		t.fenced.Store(false)
	}
}

// Evict compacts and closes the tenant if it is resident and idle, reporting
// whether it was evicted. Busy tenants are left alone.
func (r *Registry) Evict(name string) bool {
	sh := r.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.tenants[name]
	if !ok || t.inuse.Load() != 0 {
		return false
	}
	sh.lru.Remove(t.elem)
	delete(sh.tenants, name)
	t.shutdown()
	return true
}

// Close compacts and closes every resident tenant and rejects further
// operations.
func (r *Registry) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		for name, t := range sh.tenants {
			t.shutdown()
			delete(sh.tenants, name)
		}
		sh.lru.Init()
		sh.mu.Unlock()
	}
	return nil
}
