package storage

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/fault"
	"adminrefine/internal/policy"
	"adminrefine/internal/workload"
)

// faulty adapts a fault.FS to the Options.OpenFile seam.
func faulty(fs *fault.FS) func(path string, flag int, perm os.FileMode) (File, error) {
	return func(path string, flag int, perm os.FileMode) (File, error) {
		return fs.Open(path, flag, perm)
	}
}

// TestEngineAckedStateSurvivesInjectedWriteFaults is the write-error half of
// the crash-safety contract (engine_property_test covers the read/recovery
// half): under a seeded schedule of write errors, torn writes and fsync
// failures, every acknowledged submit must be durable and every failed one
// rolled back — the engine's generation, the WAL and the recovered policy
// agree at all times. A store wedged by a failed repair (ErrDamaged) must
// refuse further appends rather than write after garbage, and a clean reopen
// must recover an acknowledged-prefix-or-better of the deterministic stream.
func TestEngineAckedStateSurvivesInjectedWriteFaults(t *testing.T) {
	const roles, users, ops = 16, 16, 80
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			base := workload.ChurnPolicy(roles, users)
			{
				st, _, _, err := Open(dir, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Compact(base); err != nil {
					t.Fatal(err)
				}
				st.Close()
			}

			// Expected policy after k acknowledged churn grants.
			prefixes := make([]*policy.Policy, ops+2)
			prefixes[0] = base.Clone()
			cur := base.Clone()
			for i := 0; i <= ops; i++ {
				if _, err := command.Apply(cur, workload.ChurnGrant(i, users, roles)); err != nil {
					t.Fatal(err)
				}
				prefixes[i+1] = cur.Clone()
			}

			// Sync: true puts both Write and Sync on the schedule — torn
			// writes, failed fsyncs after the bytes landed, and repairs whose
			// own fsync fails (the wedge path) all occur across the seeds.
			fs := fault.NewFS(fault.SeededPlan(seed, 10_000, 0.08, 0.08, 0.08))
			st, eng, rec, err := OpenEngine(dir, engine.Refined, Options{Sync: true, OpenFile: faulty(fs)})
			if err != nil {
				t.Fatal(err)
			}
			if !rec.SnapshotLoaded {
				t.Fatal("fixture snapshot not loaded")
			}

			acked, wedged := 0, false
			for attempt := 0; acked < ops && attempt < 8*ops; attempt++ {
				res, err := eng.SubmitGuarded(workload.ChurnGrant(acked, users, roles), nil)
				if err != nil {
					var ce *engine.CommitError
					if !errors.As(err, &ce) {
						t.Fatalf("attempt %d: non-commit error: %v", attempt, err)
					}
					if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, ErrDamaged) {
						t.Fatalf("attempt %d: commit failure not from the schedule: %v", attempt, err)
					}
					// The failed append rolled back: nothing acknowledged,
					// nothing visible.
					if got := eng.Generation(); got != uint64(acked) {
						t.Fatalf("attempt %d: failed append advanced the engine to %d, acked %d", attempt, got, acked)
					}
					if got := st.Seq(); got != acked {
						t.Fatalf("attempt %d: failed append advanced the store to %d, acked %d", attempt, got, acked)
					}
					if errors.Is(err, ErrDamaged) {
						wedged = true
						break
					}
					continue
				}
				if res.Outcome != command.Applied {
					t.Fatalf("attempt %d: outcome %v", attempt, res.Outcome)
				}
				acked++
				if got := eng.Generation(); got != uint64(acked) {
					t.Fatalf("ack %d: engine generation %d", acked, got)
				}
			}
			if fs.Step() == 0 {
				t.Fatal("schedule never consulted: the fault seam is not wired")
			}

			if wedged {
				// A wedged store fails fast on every later append and
				// compaction — it must not write after an unrepaired tail.
				if err := st.AppendRecord(Record{Seq: acked + 1}); !errors.Is(err, ErrDamaged) {
					t.Fatalf("append on wedged store: %v, want ErrDamaged", err)
				}
				if err := st.Compact(prefixes[acked]); !errors.Is(err, ErrDamaged) {
					t.Fatalf("compact on wedged store: %v, want ErrDamaged", err)
				}
			}
			st.Close()

			// Clean reopen: recovery must land on the deterministic churn
			// stream at >= acked. Equality can be off by one only when the
			// wedge left a fully-landed frame the repair could not truncate —
			// an unacknowledged write surviving is allowed, a lost
			// acknowledged one never.
			st2, eng2, rec2, err := OpenEngine(dir, engine.Refined, Options{})
			if err != nil {
				t.Fatalf("clean reopen after faults: %v", err)
			}
			defer st2.Close()
			got := int(eng2.Generation())
			if got < acked {
				t.Fatalf("recovered generation %d below acknowledged %d: acknowledged write lost", got, acked)
			}
			if got > acked+1 || (got == acked+1 && !wedged) {
				t.Fatalf("recovered generation %d, acknowledged %d (wedged=%v): phantom writes recovered", got, acked, wedged)
			}
			if rec2.Records != got {
				t.Fatalf("recovery replayed %d step records, generation %d", rec2.Records, got)
			}
			s := eng2.Snapshot()
			defer s.Close()
			if !s.Policy().Equal(prefixes[got]) {
				t.Fatalf("recovered policy is not the %d-grant churn prefix", got)
			}
			// The recovered engine still takes writes.
			res, err := eng2.SubmitGuarded(workload.ChurnGrant(got, users, roles), nil)
			if err != nil || res.Outcome != command.Applied {
				t.Fatalf("submit on recovered engine: outcome %v err %v", res.Outcome, err)
			}
		})
	}
}

// stepAndAudit builds the step record for the i-th churn grant plus its
// audit twin — the shape AppendCommit lands, here driven through the bulk
// AppendRecords path.
func stepAndAudit(t *testing.T, seq int) []Record {
	t.Helper()
	res := command.StepResult{Cmd: workload.ChurnGrant(seq-1, 16, 16), Outcome: command.Applied}
	step, err := NewStepRecord(seq, res)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := NewAuditRecord(seq, res, "")
	if err != nil {
		t.Fatal(err)
	}
	return []Record{step, audit}
}

// TestAppendRecordsInjectedFaultsLeaveStoreConsistent pins the bulk append
// path's behaviour under each fault kind, armed one at a time at the exact
// next mutation index: a failed batch changes nothing (sequence, tail,
// audit index), the retry lands it, and a clean reopen sees every batch
// exactly once with a contiguous audit index — failed appends must not
// consume ASeq values or leave partial frames.
func TestAppendRecordsInjectedFaultsLeaveStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	st, _, _, err := Open(dir, Options{Sync: true, OpenFile: faulty(fs)})
	if err != nil {
		t.Fatal(err)
	}

	batches := 0
	appendNext := func(wantErr bool) {
		t.Helper()
		err := st.AppendRecords(stepAndAudit(t, batches+1)...)
		if wantErr {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("batch %d: err %v, want injected fault", batches+1, err)
			}
			seq, _ := st.Position()
			if seq != batches {
				t.Fatalf("failed batch moved the sequence to %d, want %d", seq, batches)
			}
			if _, total := st.Audit(0, 100); total != uint64(batches) {
				t.Fatalf("failed batch moved the audit index to %d, want %d", total, batches)
			}
			return
		}
		if err != nil {
			t.Fatalf("batch %d: %v", batches+1, err)
		}
		batches++
		if seq, _ := st.Position(); seq != batches {
			t.Fatalf("batch %d acknowledged at sequence %d", batches, seq)
		}
	}

	appendNext(false) // clean baseline

	// A write error: no byte lands.
	plan.At(fs.Step(), fault.Fault{Kind: fault.ErrWrite})
	appendNext(true)
	appendNext(false)

	// A torn write: a frame prefix lands and must be truncated away.
	plan.At(fs.Step(), fault.Fault{Kind: fault.TornWrite, Keep: 9})
	appendNext(true)
	appendNext(false)

	// A failed fsync after the full buffer landed: durability unknown, the
	// repair must remove the bytes so acknowledged and durable agree.
	plan.At(fs.Step()+1, fault.Fault{Kind: fault.ErrSync})
	appendNext(true)
	appendNext(false)

	st.Close()

	st2, pol, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after injected faults: %v", err)
	}
	defer st2.Close()
	if rec.Records != batches {
		t.Fatalf("recovery replayed %d step records, want %d", rec.Records, batches)
	}
	if st2.Seq() != batches {
		t.Fatalf("recovered sequence %d, want %d", st2.Seq(), batches)
	}
	records, total := st2.Audit(0, 100)
	if total != uint64(batches) || len(records) != batches {
		t.Fatalf("recovered %d/%d audit records, want %d", len(records), total, batches)
	}
	for i, r := range records {
		if r.ASeq != uint64(i+1) {
			t.Fatalf("audit record %d has index %d: failed appends consumed ASeq values", i, r.ASeq)
		}
	}
	// The recovered policy is the full churn prefix: no batch lost, none
	// duplicated.
	want := policy.New()
	for i := 0; i < batches; i++ {
		if _, err := command.Apply(want, workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if !pol.Equal(want) {
		t.Fatalf("recovered policy diverged from the %d-batch churn prefix", batches)
	}
}

// TestInjectedStorageLatencyStallsAppends pins the seeded latency seam the
// overload scenarios replay: a SlowWrite or SlowSync armed on the mutation
// schedule stalls the covering append for its delay but loses nothing — the
// batch acknowledges, the sequence advances, and a clean reopen replays it.
// This is what turns "the disk got slow" into a deterministic test input.
func TestInjectedStorageLatencyStallsAppends(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	st, _, _, err := Open(dir, Options{Sync: true, OpenFile: faulty(fs)})
	if err != nil {
		t.Fatal(err)
	}

	const stall = 40 * time.Millisecond
	appendTimed := func(wantStall bool) {
		t.Helper()
		start := time.Now()
		if err := st.AppendRecords(stepAndAudit(t, st.Seq()+1)...); err != nil {
			t.Fatalf("append under latency fault: %v", err)
		}
		if d := time.Since(start); wantStall && d < stall {
			t.Fatalf("append took %v, want >= %v stall", d, stall)
		}
	}

	appendTimed(false) // clean baseline

	// A slow write: the frame stalls on its way to the page cache.
	plan.At(fs.Step(), fault.Fault{Kind: fault.SlowWrite, Delay: stall})
	appendTimed(true)

	// A slow fsync: the bytes landed fast, durability is what stalls — the
	// group-commit overload case.
	plan.At(fs.Step()+1, fault.Fault{Kind: fault.SlowSync, Delay: stall})
	appendTimed(true)

	want := st.Seq()
	st.Close()

	st2, _, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after latency faults: %v", err)
	}
	defer st2.Close()
	if st2.Seq() != want || rec.Records != want {
		t.Fatalf("recovered seq %d (replayed %d), want %d: latency faults must lose nothing", st2.Seq(), rec.Records, want)
	}
}
