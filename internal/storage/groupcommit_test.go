package storage

import (
	"errors"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/fault"
	"adminrefine/internal/workload"
)

// seedChurn compacts the churn fixture into dir so a later OpenEngine
// recovers it as the starting policy.
func seedChurn(t *testing.T, dir string) {
	t.Helper()
	st, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// A whole batch lands with one file write and one fsync, no matter how many
// commands (and therefore step + audit record pairs) it carries — the
// storage half of group commit, counted through the fault FS's mutation
// index without scheduling any fault.
func TestGroupCommitBatchCostsOneWriteOneFsync(t *testing.T) {
	dir := t.TempDir()
	seedChurn(t, dir)
	fs := fault.NewFS(nil)
	st, eng, _, err := OpenEngine(dir, engine.Refined, Options{Sync: true, OpenFile: faulty(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const batch = 16
	cmds := make([]command.Command, batch)
	for i := range cmds {
		cmds[i] = workload.ChurnGrant(i, 8, 8)
	}
	before := fs.Step()
	out, err := eng.SubmitBatch(cmds, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res.Outcome != command.Applied {
			t.Fatalf("cmd %d outcome %v", i, res.Outcome)
		}
	}
	if got := fs.Step() - before; got != 2 {
		t.Fatalf("batch of %d consumed %d mutations, want exactly 2 (one write + one fsync)", batch, got)
	}
	if got := st.Seq(); got != batch {
		t.Fatalf("seq %d, want %d", got, batch)
	}
	// Every step + audit pair still landed: reopen and check.
	st2, pol, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Seq(); got != batch {
		t.Fatalf("recovered to seq %d, want %d", got, batch)
	}
	for i, c := range cmds {
		if !pol.HasEdge(c.From, c.To) {
			t.Fatalf("recovered policy missing edge of cmd %d", i)
		}
	}
}

// A failed covering fsync fails the whole group: every command of the batch
// rolls back (policy, generation, WAL seq and validity floors), nothing
// publishes, and once the disk heals the same commands go through — the
// no-ack-without-durability, no-partial-group contract.
func TestGroupCommitFlushFailureRollsBackWholeBatch(t *testing.T) {
	dir := t.TempDir()
	seedChurn(t, dir)
	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	st, eng, _, err := OpenEngine(dir, engine.Refined, Options{Sync: true, OpenFile: faulty(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// One acknowledged write first, so the rollback has a nonzero floor to
	// preserve.
	if res := eng.Submit(workload.ChurnGrant(0, 8, 8)); res.Outcome != command.Applied {
		t.Fatalf("seed submit outcome %v", res.Outcome)
	}

	// Schedule the next fsync to fail: the group's write lands in the page
	// cache, the covering fsync errors, and the store truncates back.
	plan.At(fs.Step()+1, fault.Fault{Kind: fault.ErrSync})
	cmds := []command.Command{
		workload.ChurnGrant(1, 8, 8),
		workload.ChurnGrant(2, 8, 8),
		workload.ChurnGrant(3, 8, 8),
	}
	out, err := eng.SubmitBatch(cmds, nil)
	if err == nil {
		t.Fatal("expected the covering fsync failure to surface")
	}
	var ce *engine.CommitError
	if !errors.As(err, &ce) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want *engine.CommitError wrapping the injected fault", err)
	}
	for i, res := range out {
		if res.Outcome != command.Denied {
			t.Fatalf("cmd %d outcome %v, want Denied — a partial group leaked", i, res.Outcome)
		}
	}
	if got := eng.Generation(); got != 1 {
		t.Fatalf("generation %d after failed group, want 1", got)
	}
	if got := st.Seq(); got != 1 {
		t.Fatalf("WAL seq %d after failed group, want 1", got)
	}
	s := eng.Snapshot()
	for i := 1; i <= 3; i++ {
		c := workload.ChurnGrant(i, 8, 8)
		if s.Policy().HasEdge(c.From, c.To) {
			t.Fatalf("rolled-back cmd %d left its edge in the policy", i)
		}
	}
	s.Close()

	// The disk heals: the identical batch commits, and a crash-reopen agrees
	// with everything acknowledged.
	fs.Disarm()
	out, err = eng.SubmitBatch(cmds, nil)
	if err != nil {
		t.Fatalf("post-heal batch: %v", err)
	}
	for i, res := range out {
		if res.Outcome != command.Applied {
			t.Fatalf("post-heal cmd %d outcome %v", i, res.Outcome)
		}
	}
	if eng.Generation() != 4 || st.Seq() != 4 {
		t.Fatalf("post-heal generation/seq = %d/%d, want 4/4", eng.Generation(), st.Seq())
	}
	st2, pol, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Seq(); got != 4 {
		t.Fatalf("recovered seq %d, want 4", got)
	}
	for i := 0; i <= 3; i++ {
		c := workload.ChurnGrant(i, 8, 8)
		if !pol.HasEdge(c.From, c.To) {
			t.Fatalf("recovery lost acknowledged cmd %d", i)
		}
	}
}

// The cache validity floors rewind with a failed group: a rolled-back revoke
// must not poison positive-verdict validity (posFloor only advances when a
// revoke actually commits).
func TestGroupCommitRollbackRestoresValidityFloors(t *testing.T) {
	dir := t.TempDir()
	seedChurn(t, dir)
	plan := fault.NewPlan()
	fs := fault.NewFS(plan)
	st, eng, _, err := OpenEngine(dir, engine.Refined, Options{Sync: true, OpenFile: faulty(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	grant := workload.ChurnGrant(0, 8, 8)
	if res := eng.Submit(grant); res.Outcome != command.Applied {
		t.Fatalf("outcome %v", res.Outcome)
	}

	plan.At(fs.Step()+1, fault.Fault{Kind: fault.ErrSync})
	if _, err := eng.SubmitBatch([]command.Command{
		command.Revoke(grant.Actor, grant.From, grant.To),
		workload.ChurnGrant(1, 8, 8),
	}, nil); err == nil {
		t.Fatal("expected flush failure")
	}
	fs.Disarm()
	// Publish once more so a fresh snapshot captures the floors.
	if res := eng.Submit(workload.ChurnGrant(2, 8, 8)); res.Outcome != command.Applied {
		t.Fatalf("outcome %v", res.Outcome)
	}
	s := eng.Snapshot()
	defer s.Close()
	pos, neg := s.ValidityFloors()
	if pos != 0 {
		t.Fatalf("posFloor %d after rolled-back revoke, want 0 (no committed revoke)", pos)
	}
	if neg != s.Generation() {
		t.Fatalf("negFloor %d, want generation %d", neg, s.Generation())
	}
}
