package storage_test

import (
	"fmt"
	"os"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/storage"
)

// Crash → recover → replay through the engine path: OpenEngine recovers the
// policy from snapshot + WAL and stands the engine up at the recovered
// generation, so a process that died without any shutdown hook serves its
// exact pre-crash decisions after restart.
func ExampleOpenEngine() {
	dir, err := os.MkdirTemp("", "storage-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Provision: compact an initial policy into the store.
	st, _, _, err := storage.OpenEngine(dir, engine.Refined, storage.Options{})
	if err != nil {
		panic(err)
	}
	p := policy.New()
	p.Assign("root", "admins")
	p.Assign("alice", "member")
	p.DeclareRole("team")
	if _, err := p.GrantPrivilege("admins", model.Grant(model.Role("member"), model.Role("team"))); err != nil {
		panic(err)
	}
	if err := st.Compact(p); err != nil {
		panic(err)
	}
	st.Close()

	// Serve: every applied command is WAL-durable before its snapshot
	// publishes (the commit hook installed by OpenEngine).
	st, eng, _, err := storage.OpenEngine(dir, engine.Refined, storage.Options{})
	if err != nil {
		panic(err)
	}
	res, err := eng.SubmitGuarded(command.Grant("root", model.User("alice"), model.Role("team")), nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("submit:", res.Outcome)
	st.Close() // crash: no compaction, the WAL holds the tail

	// Recover: the snapshot restores the provisioned policy, the WAL replays
	// the applied command, and the engine resumes at the same generation.
	st2, eng2, rec, err := storage.OpenEngine(dir, engine.Refined, storage.Options{})
	if err != nil {
		panic(err)
	}
	defer st2.Close()
	fmt.Println("snapshot loaded:", rec.SnapshotLoaded)
	fmt.Println("records replayed:", rec.Records)
	fmt.Println("generation:", eng2.Generation())
	s := eng2.Snapshot()
	defer s.Close()
	fmt.Println("alice in team:", s.Policy().HasEdge(model.User("alice"), model.Role("team")))

	// Output:
	// submit: applied
	// snapshot loaded: true
	// records replayed: 1
	// generation: 1
	// alice in team: true
}
