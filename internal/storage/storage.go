// Package storage persists policy state durably: a snapshot of the policy
// plus a write-ahead log of applied administrative commands. It serves two
// consumers. The reference monitor's audit stream is appended to the log via
// Store.Attach, and Open recovers the policy by loading the snapshot and
// replaying the log. The snapshot engine attaches through OpenEngine, which
// recovers an engine.Engine at the logged generation and installs a commit
// hook so every applied command is durable before its snapshot is published
// (write-ahead at the engine boundary — the multi-tenant service in
// internal/tenant runs one such store per tenant). Compaction writes a fresh
// snapshot and truncates the log; SinceCompact exposes the log growth so
// callers can trigger compaction on a budget.
//
// Log format: a fixed header followed by length-prefixed records,
//
//	"ARWAL1\n" | rec* , rec = len(u32 LE) | crc32(u32 LE, IEEE) | payload
//
// where payload is the JSON of a Record. A torn tail (incomplete or
// corrupt final record, e.g. after a crash mid-append) is detected by the
// CRC and truncated away on open; Recovery reports how many bytes were
// dropped.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

const logMagic = "ARWAL1\n"

// KindAudit marks an audit record: a logged observation of one processed
// administrative command (any outcome, with an optional denial reason) that
// is never replayed into the policy. An empty Kind is a step record — the
// original WAL record kind, a command whose effect recovery replays.
const KindAudit = "audit"

// KindEpoch marks a fencing-epoch control record: a durable note that the
// node adopted (or minted, at promotion) the given cluster epoch. Epoch
// records carry no command — only Record.Epoch is meaningful — and are never
// replayed into the policy or shipped to replication pullers; recovery takes
// the highest one as the store's durable epoch. The node-level store (see
// cmd/rbacd) is their home; per-tenant WALs carry epochs on the step records
// themselves instead.
const KindEpoch = "epoch"

// KindPlacement marks a placement-map control record: the durable copy of
// the cluster's tenant→primary placement map (see internal/placement) as
// last adopted by this node. Like epoch records they carry no command, are
// never replayed or shipped to replication pullers, and live only in the
// node-level store; the payload is the encoded map in Record.Data. Recovery
// keeps the last one in file order — the placement Table enforces version
// monotonicity before anything is persisted, so append order is version
// order.
const KindPlacement = "placement"

// Record is one logged administrative command with its outcome.
type Record struct {
	// Kind distinguishes step records ("" — replayed into the policy on
	// recovery) from audit records (KindAudit — collected into the audit
	// log, never replayed).
	Kind    string          `json:"kind,omitempty"`
	Seq     int             `json:"seq"`
	Actor   string          `json:"actor"`
	Op      string          `json:"op"` // "grant" or "revoke"
	From    json.RawMessage `json:"from"`
	To      json.RawMessage `json:"to"`
	Outcome string          `json:"outcome"` // "applied", "nochange", "denied", "illformed"
	// Reason carries a denial explanation beyond Definition 5 (e.g. a
	// separation-of-duty veto) on audit records.
	Reason string `json:"reason,omitempty"`
	// ASeq is the store-local audit index (1, 2, …), assigned at append
	// time on audit records. Unlike Seq — the engine generation, which
	// every no-effect audit at the same generation shares — ASeq is unique
	// per record, so it is the pagination cursor of the audit log. It is
	// node-local: a follower re-indexes adopted/replicated audit records
	// into its own sequence.
	ASeq uint64 `json:"aseq,omitempty"`
	// Epoch is the cluster fencing epoch the record was written under. On
	// step and audit records it is stamped at append time from the store's
	// stamp epoch and preserved verbatim by replication — the Raft-style
	// (term, index) pair that lets a new primary distinguish a follower
	// whose history is a prefix of its own (serve from its WAL seq) from one
	// that forked across a failover (force a rewinding snapshot bootstrap).
	// On KindEpoch control records it is the adopted epoch itself.
	Epoch uint64 `json:"epoch,omitempty"`
	// Data is the opaque payload of KindPlacement control records (the
	// encoded placement map); empty on every other kind.
	Data json.RawMessage `json:"data,omitempty"`
}

// IsAudit reports whether the record is an audit observation rather than a
// replayable step.
func (r Record) IsAudit() bool { return r.Kind == KindAudit }

// IsEpoch reports whether the record is a fencing-epoch control record.
func (r Record) IsEpoch() bool { return r.Kind == KindEpoch }

// IsPlacement reports whether the record is a placement-map control record.
func (r Record) IsPlacement() bool { return r.Kind == KindPlacement }

// IsControl reports whether the record is node-level control state (epoch
// or placement) rather than tenant history: never replayed, never tailed,
// never replicated, excluded from the compaction trigger.
func (r Record) IsControl() bool { return r.IsEpoch() || r.IsPlacement() }

// NewRecord converts an audit entry into a loggable record.
func NewRecord(e monitor.AuditEntry) (Record, error) {
	from, err := model.MarshalVertex(e.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(e.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     e.Seq,
		Actor:   e.Cmd.Actor,
		Op:      e.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: e.Outcome.WireName(),
	}, nil
}

// Command reconstructs the administrative command of the record.
func (r Record) Command() (command.Command, error) {
	from, err := model.UnmarshalVertex(r.From)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d from: %w", r.Seq, err)
	}
	to, err := model.UnmarshalVertex(r.To)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d to: %w", r.Seq, err)
	}
	var op model.Op
	switch r.Op {
	case "grant":
		op = model.OpGrant
	case "revoke":
		op = model.OpRevoke
	default:
		return command.Command{}, fmt.Errorf("storage: record %d: unknown op %q", r.Seq, r.Op)
	}
	return command.Command{Actor: r.Actor, Op: op, From: from, To: to}, nil
}

// Recovery summarises what Open found on disk.
type Recovery struct {
	// SnapshotLoaded reports whether a snapshot file existed.
	SnapshotLoaded bool
	// Records is the number of log records replayed.
	Records int
	// Applied is the number of replayed records that mutated the policy.
	Applied int
	// AuditRecords is the number of audit records recovered into the audit
	// log (they are collected, never replayed).
	AuditRecords int `json:",omitempty"`
	// DroppedBytes counts torn-tail bytes truncated from the log.
	DroppedBytes int
}

// File is the slice of *os.File the WAL needs. The default path opens real
// files; tests substitute a fault-injecting implementation through
// Options.OpenFile (see internal/fault) — the production path pays only the
// interface dispatch.
type File interface {
	io.ReadWriteSeeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
}

// Options configures a Store.
type Options struct {
	// Sync forces an fsync after every append (slow, durable). Default off.
	Sync bool
	// OpenFile, when non-nil, opens the WAL file instead of os.OpenFile —
	// the deterministic fault-injection seam (see internal/fault). Snapshot
	// files are written atomically via temp-file + rename and are not routed
	// through it.
	OpenFile func(path string, flag int, perm os.FileMode) (File, error)
}

// ErrDamaged marks a store wedged by an unrepaired write failure: a WAL
// append failed and the truncate restoring the last known-good offset failed
// too, so the on-disk suffix is untrusted. Every later append or compaction
// fails fast with it; recovery is a reopen (which re-reads the file and
// truncates the torn tail).
var ErrDamaged = errors.New("storage: wal damaged by earlier write failure")

// Store is a directory-backed policy store: snapshot.json + wal.log.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	f    File
	seq  int
	// off is the file offset one past the last fully landed frame — the
	// truncation point that repairs a torn append (a partial write or a
	// failed fsync leaves bytes of unknown durability; see appendLocked).
	off int64
	// damaged is set when that repair itself failed; see ErrDamaged.
	damaged bool
	// epoch is the durable fencing epoch: the highest KindEpoch control
	// record in the log (or snapshot meta). Only the node-level store (see
	// cmd/rbacd) writes these; per-tenant stores leave it zero.
	epoch uint64
	// stampEpoch is the in-memory epoch stamped onto locally minted step and
	// audit records (SetStampEpoch). The registry syncs it from the node
	// epoch before writes; replication apply sets it per pulled-record run
	// so replicated records keep the epoch the primary stamped.
	stampEpoch uint64
	// lastEpoch is the epoch of the step record at seq (== the snapshot's
	// epoch when the log holds no steps) — the follower's half of the
	// prefix-validation check (see EpochAt).
	lastEpoch uint64
	// snapEpoch is the epoch of the record the on-disk snapshot covers
	// (snapshotMeta.SeqEpoch).
	snapEpoch uint64
	// snapBase is the sequence number the on-disk snapshot covers; the log
	// holds exactly the records in (snapBase, seq]. A replication pull for
	// records at or below snapBase cannot be served from the log — the
	// follower needs a snapshot bootstrap (see ReadSince).
	snapBase int
	// tail caches the most recent records in memory (capped at maxTail,
	// invariant: every record with Seq in (tailBase, seq], whether or not a
	// head compaction already truncated it from the file), so the
	// replication hot path — followers pulling at or near the head — never
	// re-reads the log file and survives compactions without snapshot
	// bootstraps. ReadSince falls back to the file only for a position older
	// than tailBase but still at or above snapBase.
	tail     []Record
	tailBase int
	// audit is the in-memory recent-audit log (capped at maxAudit): every
	// audit record appended or recovered, in append order. It survives head
	// compactions like the record tail does; the durable window on disk is
	// bounded by compaction (a compaction folds the log, audit records
	// included, into the snapshot).
	audit []Record
	// auditTotal counts every audit record ever seen by this store instance
	// (recovered + appended), so consumers can detect ring truncation.
	auditTotal uint64
	// lastASeq is the highest audit index assigned or recovered; appends
	// continue from it.
	lastASeq uint64
	// placement is the payload of the most recent KindPlacement control
	// record (or the snapshot meta's copy), nil when none was ever adopted.
	// Like epoch it is node state: only the node-level store writes it.
	placement []byte
	// sinceCompact counts log records written since the last compaction
	// (records already in the log at Open count too): the compaction-trigger
	// signal.
	sinceCompact int
	// staged buffers records accepted by StageCommit but not yet landed by
	// FlushStaged — the group-commit window. Nothing in it is durable or
	// acknowledged; a flush failure or DiscardStaged simply drops it.
	staged []Record
}

// maxAudit caps the in-memory recent-audit log.
const maxAudit = 1024

// maxTail caps the in-memory record tail; with the default compaction
// budget the whole log fits.
const maxTail = 2048

// snapshotMeta wraps the policy snapshot with its log position.
type snapshotMeta struct {
	Seq int `json:"seq"`
	// SeqEpoch is the fencing epoch of the record at Seq — kept so a store
	// whose log was compacted (or installed from a snapshot) can still
	// answer EpochAt(SnapBase) and stamp its replication position.
	SeqEpoch uint64 `json:"seq_epoch,omitempty"`
	// Epoch is the durable fencing epoch at compaction time (see
	// Store.Epoch); folding it into the snapshot keeps it recoverable even
	// if every KindEpoch control record was truncated with the log.
	Epoch uint64 `json:"epoch,omitempty"`
	// Placement is the adopted placement map at compaction time (see
	// Store.Placement), kept recoverable across log truncation exactly like
	// Epoch.
	Placement json.RawMessage `json:"placement,omitempty"`
	Policy    json.RawMessage `json:"policy"`
}

// Open opens (or initialises) the store in dir, returning the recovered
// policy. The policy starts empty when the directory holds no state.
func Open(dir string, opts Options) (*Store, *policy.Policy, Recovery, error) {
	var rec Recovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, rec, err
	}
	pol := policy.New()
	seq := 0
	var epoch, snapEpoch uint64
	var placementData []byte

	// Load snapshot if present.
	snapPath := filepath.Join(dir, "snapshot.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		var meta snapshotMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot: %w", err)
		}
		if err := json.Unmarshal(meta.Policy, pol); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot policy: %w", err)
		}
		seq = meta.Seq
		epoch = meta.Epoch
		snapEpoch = meta.SeqEpoch
		placementData = meta.Placement
		rec.SnapshotLoaded = true
	} else if !os.IsNotExist(err) {
		return nil, nil, rec, err
	}
	snapSeq := seq

	// Replay the log.
	openFile := opts.OpenFile
	if openFile == nil {
		openFile = func(path string, flag int, perm os.FileMode) (File, error) {
			return os.OpenFile(path, flag, perm)
		}
	}
	logPath := filepath.Join(dir, "wal.log")
	f, err := openFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, rec, err
	}
	validEnd, records, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	if fi.Size() > validEnd {
		rec.DroppedBytes = int(fi.Size() - validEnd)
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, rec, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	var auditRecs []Record
	lastEpoch := snapEpoch
	ctrlRecs := 0
	for _, r := range records {
		if r.IsEpoch() {
			// Fencing-epoch control records: adopt the highest, replay
			// nothing.
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
			ctrlRecs++
			continue
		}
		if r.IsPlacement() {
			// Placement control records: the last in file order wins (appends
			// are version-ordered; see SetPlacement), replay nothing.
			placementData = r.Data
			ctrlRecs++
			continue
		}
		if r.IsAudit() {
			// Audit records are observations, not effects: collect them for
			// the audit log before the sequence filter (they share their
			// step's sequence number) and never replay them.
			auditRecs = append(auditRecs, r)
			rec.AuditRecords++
			continue
		}
		if r.Seq <= seq {
			continue // already covered by the snapshot
		}
		rec.Records++
		if r.Outcome == "applied" || r.Outcome == "nochange" {
			c, err := r.Command()
			if err != nil {
				f.Close()
				return nil, nil, rec, err
			}
			changed, err := command.Apply(pol, c)
			if err != nil {
				f.Close()
				return nil, nil, rec, fmt.Errorf("storage: replaying record %d: %w", r.Seq, err)
			}
			if changed {
				rec.Applied++
			}
		}
		seq = r.Seq
		lastEpoch = r.Epoch
	}

	// Seed the compaction trigger with the step records only: the log also
	// carries the re-appended audit window (see compactLocked) and control
	// records, and counting those would re-trigger a full compaction on the
	// first submit after every restart of a store with a populated window.
	s := &Store{dir: dir, opts: opts, f: f, seq: seq, snapBase: snapSeq,
		off: validEnd, epoch: epoch, stampEpoch: lastEpoch,
		lastEpoch: lastEpoch, snapEpoch: snapEpoch, placement: placementData,
		sinceCompact: len(records) - len(auditRecs) - ctrlRecs}
	// Seed the in-memory tail with the decoded log (records at or below
	// snapBase, if a crash mid-compaction left any, are filtered at serve
	// time exactly as the file path would; epoch control records never enter
	// the replication stream).
	s.tailBase = snapSeq
	for _, r := range records {
		if !r.IsControl() {
			s.appendTailLocked(r)
		}
	}
	for _, r := range auditRecs {
		// Records persisted before the audit index existed are indexed in
		// file order; persisted indexes are preserved (cursor stability).
		if r.ASeq == 0 {
			r.ASeq = s.lastASeq + 1
		}
		s.appendAuditLocked(r)
	}
	return s, pol, rec, nil
}

// appendAuditLocked adds one record (its ASeq already assigned) to the
// in-memory audit log, trimming the oldest half past the cap. Caller holds
// s.mu (or owns s exclusively).
func (s *Store) appendAuditLocked(r Record) {
	if r.ASeq > s.lastASeq {
		s.lastASeq = r.ASeq
	}
	s.audit = append(s.audit, r)
	s.auditTotal++
	if len(s.audit) > maxAudit {
		drop := len(s.audit) / 2
		s.audit = append(s.audit[:0], s.audit[drop:]...)
	}
}

// appendTailLocked adds one record to the in-memory tail, trimming the
// oldest half past the cap. Caller holds s.mu (or owns s exclusively).
func (s *Store) appendTailLocked(r Record) {
	s.tail = append(s.tail, r)
	if len(s.tail) > maxTail {
		drop := len(s.tail) / 2
		s.tailBase = s.tail[drop-1].Seq
		s.tail = append(s.tail[:0], s.tail[drop:]...)
	}
}

// OpenEngine opens the store and stands a snapshot engine up on the
// recovered policy: the engine starts at the recovered generation (the
// highest logged sequence number) and gets the group-commit hook pair — the
// per-command hook stages every applied command's step + audit records, and
// the commit flush lands the whole submission's staged records with one
// write and one fsync before its snapshot is published. A crash at any point
// recovers, via OpenEngine, to exactly the decisions the last published
// snapshot served, audit trail included. The engine takes ownership of the
// recovered policy; close the store only after the engine stops submitting.
func OpenEngine(dir string, mode engine.Mode, opts Options) (*Store, *engine.Engine, Recovery, error) {
	s, pol, rec, err := Open(dir, opts)
	if err != nil {
		return nil, nil, rec, err
	}
	eng := engine.NewAt(pol, mode, uint64(s.Seq()))
	eng.SetCommitHook(func(gen uint64, res command.StepResult) error {
		return s.StageCommit(int(gen), res)
	})
	eng.SetCommitFlush(s.FlushStaged)
	return s, eng, rec, nil
}

// readAll parses records from the start of the log, returning the offset of
// the end of the last valid record. A missing or wrong magic on a non-empty
// file is an error; a torn tail simply ends the scan.
func readAll(f File) (validEnd int64, records []Record, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, err
	}
	if len(data) == 0 {
		// Fresh log: write the magic.
		if _, err := f.Write([]byte(logMagic)); err != nil {
			return 0, nil, err
		}
		return int64(len(logMagic)), nil, nil
	}
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return 0, nil, fmt.Errorf("storage: wal.log has no valid header")
	}
	n, records := DecodeFrames(data[len(logMagic):])
	return int64(len(logMagic) + n), records, nil
}

// maxFrameBytes bounds one frame's payload; larger length prefixes are
// treated as a torn/corrupt tail rather than an allocation request.
const maxFrameBytes = 1 << 28

// DecodeFrames parses length-prefixed, CRC-checked record frames from data:
// the WAL record stream after the file magic, and exactly the body of a
// replication pull response (the two wire formats agree by construction, so
// a follower applies what the primary logged). It returns the offset one
// past the last whole valid frame and the decoded records; a torn, corrupt
// or undecodable tail simply ends the scan. DecodeFrames never panics on
// arbitrary input (fuzzed by FuzzWALDecode).
func DecodeFrames(data []byte) (validEnd int, records []Record) {
	off := 0
	for {
		if off+8 > len(data) {
			break // torn length/crc header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrameBytes { // implausible record: treat as torn tail
			break
		}
		if off+8+int(n) > len(data) {
			break // torn payload
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break // undecodable tail
		}
		records = append(records, r)
		off += 8 + int(n)
	}
	return off, records
}

// EncodeFrame appends r's length-prefix + CRC frame to buf, returning the
// extended buffer — the inverse of DecodeFrames for one record.
func EncodeFrame(buf []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return buf, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// Append logs one audit entry. Safe for concurrent use.
func (s *Store) Append(e monitor.AuditEntry) error {
	r, err := NewRecord(e)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// NewStepRecord converts an engine step result into a loggable record at the
// given sequence number (the engine generation the step produced).
func NewStepRecord(seq int, res command.StepResult) (Record, error) {
	from, err := model.MarshalVertex(res.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(res.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     seq,
		Actor:   res.Cmd.Actor,
		Op:      res.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: res.Outcome.WireName(),
	}, nil
}

// NewAuditRecord converts an engine step result into the audit observation
// of the command at the given sequence number: the engine generation after
// the command for applied steps, the unchanged generation otherwise. reason
// carries a veto explanation (e.g. an SSD violation) on denied commands.
func NewAuditRecord(seq int, res command.StepResult, reason string) (Record, error) {
	r, err := NewStepRecord(seq, res)
	if err != nil {
		return Record{}, err
	}
	r.Kind = KindAudit
	r.Reason = reason
	return r, nil
}

// AppendStep logs one engine step result — the engine commit hook. Safe for
// concurrent use.
func (s *Store) AppendStep(seq int, res command.StepResult) error {
	r, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// AppendCommit logs one applied engine step together with its audit record
// in a single write — the commit hook of the durable serving stack (see
// tenant.Options). Both frames land with one file write, so a crash
// mid-append truncates to a CRC-valid prefix: either nothing, the step
// alone, or both. The step is never lost once the hook returned, and the
// audit record shares its durability (write-ahead of snapshot publication).
func (s *Store) AppendCommit(seq int, res command.StepResult) error {
	step, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	audit, err := NewAuditRecord(seq, res, "")
	if err != nil {
		return err
	}
	return s.appendRecords(true, step, audit)
}

// StageCommit buffers one applied engine step — step record plus its audit
// record, exactly what AppendCommit writes — for the next FlushStaged. It
// performs no file I/O: the per-command half of group commit, run from the
// engine's CommitHook while the covering flush hook amortises the write and
// fsync across every command (and every submitter) in the group. The records
// are not durable, and the step must not be acknowledged, until FlushStaged
// returns nil. Safe for concurrent use, though the engine already serialises
// stage/flush pairs under its writer lock.
func (s *Store) StageCommit(seq int, res command.StepResult) error {
	step, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	audit, err := NewAuditRecord(seq, res, "")
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	s.staged = append(s.staged, step, audit)
	return nil
}

// FlushStaged lands every staged record with one file write (and one fsync
// under Options.Sync) — the group half of group commit. The records are
// epoch-stamped and audit-indexed at flush time, in stage order. On failure
// the staged buffer is discarded and writeLocked has already truncated the
// log back to the last known-good frame boundary, so the on-disk state is
// exactly as if the group never happened — the engine turns that into a
// rollback of every command the group covered. A flush with nothing staged
// is a no-op. Safe for concurrent use.
func (s *Store) FlushStaged() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.staged) == 0 {
		return nil
	}
	recs := s.staged
	s.staged = nil
	return s.appendRecordsLocked(true, recs...)
}

// DiscardStaged drops staged-but-unflushed records without writing — the
// escape hatch for a caller abandoning a submission before its flush. Records
// never staged or already flushed are unaffected.
func (s *Store) DiscardStaged() {
	s.mu.Lock()
	s.staged = nil
	s.mu.Unlock()
}

// AppendAudit logs the audit observation of a command that did not change
// the policy (denied, vetoed, no-change or ill-formed) at the current
// sequence number. Safe for concurrent use.
func (s *Store) AppendAudit(seq int, res command.StepResult, reason string) error {
	r, err := NewAuditRecord(seq, res, reason)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// AppendRecord logs one locally minted record with length-prefix + CRC
// framing, stamping it with the store's current epoch. Safe for concurrent
// use.
func (s *Store) AppendRecord(r Record) error {
	return s.appendRecords(true, r)
}

// AppendRecords logs a batch of records in a single file write (one fsync
// under Options.Sync) — the bulk path for adopting a replicated audit
// window, where per-record appends would multiply bootstrap latency. The
// records keep the epochs their origin node stamped. Safe for concurrent
// use.
func (s *Store) AppendRecords(records ...Record) error {
	if len(records) == 0 {
		return nil
	}
	return s.appendRecords(false, records...)
}

// appendRecords frames every record into one buffer and lands them with a
// single write, then updates the sequence, tail and audit bookkeeping.
// Audit records are (re)assigned this store's next audit index before
// encoding, so the persisted frame carries the same node-local pagination
// cursor the in-memory log serves — incoming indexes from another node
// (replicated denials, adopted bootstrap windows) are re-indexed here.
// stamp marks locally minted records, whose Epoch becomes the store's stamp
// epoch; records arriving from another node keep the epoch their primary
// stamped (the prefix-validation invariant EpochAt depends on).
func (s *Store) appendRecords(stamp bool, records ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendRecordsLocked(stamp, records...)
}

// appendRecordsLocked is appendRecords under an already-held s.mu — shared by
// the direct append paths and the group-commit flush.
func (s *Store) appendRecordsLocked(stamp bool, records ...Record) error {
	if err := s.writableLocked(); err != nil {
		return err
	}
	var buf []byte
	var err error
	next := s.lastASeq
	for i := range records {
		if records[i].IsAudit() {
			next++
			records[i].ASeq = next
		}
		if stamp {
			records[i].Epoch = s.stampEpoch
		}
		if buf, err = EncodeFrame(buf, records[i]); err != nil {
			return err
		}
	}
	if err := s.writeLocked(buf, s.opts.Sync); err != nil {
		return err
	}
	for _, r := range records {
		if r.Seq > s.seq && !r.IsAudit() {
			s.seq = r.Seq
			s.lastEpoch = r.Epoch
		}
		s.appendTailLocked(r)
		if r.IsAudit() {
			s.appendAuditLocked(r)
		}
		s.sinceCompact++
	}
	return nil
}

// writableLocked reports whether the store can take appends. Caller holds
// s.mu.
func (s *Store) writableLocked() error {
	if s.f == nil {
		return fmt.Errorf("storage: store closed")
	}
	if s.damaged {
		return ErrDamaged
	}
	return nil
}

// writeLocked lands buf at the current append offset, fsyncs when asked, and
// — on any failure — truncates back to the last known-good offset so a torn
// frame (or bytes of unknown durability after a failed fsync) never corrupts
// the records appended after it. A caller seeing an error knows the write is
// not durable AND the log still ends at a CRC-valid frame boundary; the
// engine's commit hook turns that into a rollback, so acknowledged state and
// recovered state agree. If the repair itself fails the store wedges
// (ErrDamaged) rather than risk appending after garbage. Caller holds s.mu.
func (s *Store) writeLocked(buf []byte, sync bool) error {
	pos := s.off
	n, err := s.f.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err == nil && sync {
		err = s.f.Sync()
	}
	if err != nil {
		if s.repairLocked(pos) != nil {
			s.damaged = true
		}
		return err
	}
	s.off = pos + int64(len(buf))
	return nil
}

// repairLocked truncates the log back to pos and restores the append
// position, fsyncing the shrunken length so the discarded suffix cannot
// resurface after a crash. Caller holds s.mu.
func (s *Store) repairLocked(pos int64) error {
	if err := s.f.Truncate(pos); err != nil {
		return err
	}
	if _, err := s.f.Seek(pos, io.SeekStart); err != nil {
		return err
	}
	return s.f.Sync()
}

// Epoch reports the store's durable fencing epoch: the highest KindEpoch
// control record persisted (see SetEpoch).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetEpoch durably adopts fencing epoch e by appending a KindEpoch control
// record, fsynced regardless of Options.Sync — an epoch adoption that could
// vanish in a crash would let a deposed primary resurrect split-brain.
// Adopting an epoch at or below the current one is a no-op (epochs only
// move forward). Control records stay out of the tail, the audit log and the
// compaction trigger: they are node state, not tenant history.
func (s *Store) SetEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e <= s.epoch {
		return nil
	}
	if err := s.writableLocked(); err != nil {
		return err
	}
	buf, err := EncodeFrame(nil, Record{Kind: KindEpoch, Epoch: e})
	if err != nil {
		return err
	}
	if err := s.writeLocked(buf, true); err != nil {
		return err
	}
	s.epoch = e
	return nil
}

// Placement reports the payload of the node's most recent placement-map
// control record, nil when none was ever adopted (see SetPlacement).
func (s *Store) Placement() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.placement
}

// SetPlacement durably adopts an encoded placement map by appending a
// KindPlacement control record, fsynced regardless of Options.Sync — a
// placement adoption that vanished in a crash could resurrect an owner the
// cluster already migrated away from. The store does not order payloads;
// the placement Table persists strictly version-increasing maps, so the
// last record in file order is the newest (see Open). Like epoch records,
// placement records stay out of the tail, the audit log and the compaction
// trigger: node state, not tenant history.
func (s *Store) SetPlacement(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	buf, err := EncodeFrame(nil, Record{Kind: KindPlacement, Data: data})
	if err != nil {
		return err
	}
	if err := s.writeLocked(buf, true); err != nil {
		return err
	}
	s.placement = append([]byte(nil), data...)
	return nil
}

// SetStampEpoch sets the epoch stamped onto locally minted records from now
// on. In-memory only: durability rides on the stamped records themselves.
func (s *Store) SetStampEpoch(e uint64) {
	s.mu.Lock()
	s.stampEpoch = e
	s.mu.Unlock()
}

// Position reports the replication position as a (seq, epoch) pair: the
// highest step sequence together with the fencing epoch stamped on that
// record — what a follower sends with a pull so the upstream can check the
// follower's history is a prefix of its own (see EpochAt).
func (s *Store) Position() (int, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.lastEpoch
}

// EpochAt reports the fencing epoch of the step record at seq, when the
// store can still determine it: from the in-memory tail, or from the
// snapshot meta when seq is exactly the snapshot base. The second return is
// false when the position was compacted away — the caller (PullWAL) forces a
// snapshot bootstrap then, exactly as it does for a sequence gap.
func (s *Store) EpochAt(seq int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.tail) - 1; i >= 0; i-- {
		r := s.tail[i]
		if r.Seq == seq && !r.IsAudit() {
			return r.Epoch, true
		}
		if r.Seq < seq {
			break
		}
	}
	if seq == s.snapBase {
		return s.snapEpoch, true
	}
	return 0, false
}

// Audit returns the retained audit records with audit indexes (Record.ASeq,
// the unique per-record cursor — NOT the shared step sequence number) above
// after, oldest first, capped at limit (<= 0 = no cap), together with the
// total number of audit records this store has seen (recovered + appended;
// a total exceeding the returned length means the retained window trimmed
// older entries). Page forward by passing the last record's ASeq back as
// after. Retention is the maxAudit window: compaction re-appends the window
// after truncating the log (see compactLocked), so the trail survives
// compaction cycles and restarts — graceful or SIGKILL — with at most the
// oldest entries beyond the window aged out.
func (s *Store) Audit(after uint64, limit int) ([]Record, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.audit))
	for _, r := range s.audit {
		if r.ASeq > after {
			out = append(out, r)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, s.auditTotal
}

// SinceCompact reports how many log records have accumulated since the last
// compaction — the signal callers use to trigger Compact on a budget.
func (s *Store) SinceCompact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceCompact
}

// Attach subscribes the store to a monitor's audit stream. Append errors are
// delivered to onErr (which may be nil to ignore them — not recommended
// outside tests).
func (s *Store) Attach(m *monitor.Monitor, onErr func(error)) {
	m.Observe(func(e monitor.AuditEntry) {
		if err := s.Append(e); err != nil && onErr != nil {
			onErr(err)
		}
	})
}

// Compact writes a snapshot of the policy at the current sequence number and
// truncates the log. The snapshot is written atomically (temp file + rename)
// so a crash mid-compaction never loses state.
func (s *Store) Compact(p *policy.Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked(p, s.seq, s.lastEpoch, true)
}

// CompactAt installs p as the snapshot at an explicit sequence number —
// the install path (provisioning and follower bootstrap), where the
// snapshot state arrives from outside the local engine — stamped with the
// fencing epoch of the record the snapshot covers. Installing below the
// current sequence is refused unless rewind is set: replication never moves
// a tenant backwards within an epoch, but healing a fork after a failover
// (a deposed primary's unreplicated tail, see tenant.InstallReplicaSnapshot)
// is exactly a rewind to the new primary's history. Unlike a head
// compaction, an install drops the local audit trail with the log: the
// installer replaces the state wholesale and supplies the matching trail
// itself, so keeping the old one would duplicate or misattribute history.
func (s *Store) CompactAt(p *policy.Policy, seq int, seqEpoch uint64, rewind bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.seq && !rewind {
		return fmt.Errorf("storage: CompactAt seq %d below current %d", seq, s.seq)
	}
	if err := s.compactLocked(p, seq, seqEpoch, false); err != nil {
		// The install failed and the caller keeps serving the old state: the
		// old audit trail stays with it (dropping it here would destroy it
		// even though nothing was replaced).
		return err
	}
	s.audit = s.audit[:0]
	s.auditTotal = 0
	return nil
}

func (s *Store) compactLocked(p *policy.Policy, seq int, seqEpoch uint64, keepAudit bool) error {
	if err := s.writableLocked(); err != nil {
		return err
	}
	polData, err := json.Marshal(p)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(snapshotMeta{Seq: seq, SeqEpoch: seqEpoch, Epoch: s.epoch, Placement: s.placement, Policy: polData})
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "snapshot.json.tmp")
	if err := os.WriteFile(tmp, meta, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot.json")); err != nil {
		return err
	}
	// Truncate the log to just the header.
	if err := s.f.Truncate(int64(len(logMagic))); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	s.off = int64(len(logMagic))
	// Re-append the retained audit window: compaction folds *state* into the
	// snapshot, but audit records are observations with no representation in
	// it, so truncating them away would erase the trail on every graceful
	// restart. The window is bounded (maxAudit), so the re-append keeps the
	// log small while audit history survives compaction cycles. Replay
	// collects audit records regardless of their (old) sequence numbers.
	if keepAudit && len(s.audit) > 0 {
		var buf []byte
		var err error
		for _, r := range s.audit {
			if buf, err = EncodeFrame(buf, r); err != nil {
				return err
			}
		}
		if err := s.writeLocked(buf, false); err != nil {
			return err
		}
	}
	if seq != s.seq || seqEpoch != s.lastEpoch {
		// Snapshot installed at a different position (replica bootstrap
		// jump, forward or — healing a fork — backward) or across an epoch
		// boundary: the cached records do not connect to it — drop them.
		s.tail = s.tail[:0]
		s.tailBase = seq
		s.lastEpoch = seqEpoch
	}
	// A compaction at the current head keeps the tail: the truncated
	// records remain valid, servable history, so a follower lagging by a
	// few records replays them incrementally instead of paying a snapshot
	// bootstrap every compaction cycle.
	s.seq = seq
	s.snapBase = seq
	s.snapEpoch = seqEpoch
	s.sinceCompact = 0
	if s.opts.Sync {
		return s.f.Sync()
	}
	return nil
}

// SnapBase reports the sequence number the on-disk snapshot covers; the log
// serves exactly the records in (SnapBase, Seq].
func (s *Store) SnapBase() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapBase
}

// ReadSince returns the logged records with sequence numbers above afterSeq,
// in order. gap reports that the log cannot serve that position because a
// compaction folded records at or below its snapshot base into the snapshot;
// the caller must bootstrap from a snapshot instead (see
// internal/replication). Pulls at or near the head — the replication steady
// state — are served from the in-memory tail without touching the file.
func (s *Store) ReadSince(afterSeq int) (records []Record, gap bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil, false, fmt.Errorf("storage: store closed")
	}
	if afterSeq >= s.seq {
		return nil, false, nil
	}
	if afterSeq >= s.tailBase {
		// The tail holds every record with Seq > tailBase — including
		// records a head compaction already truncated from the file, so
		// near-head pulls keep replaying incrementally across compactions.
		for _, r := range s.tail {
			if r.Seq > afterSeq {
				records = append(records, r)
			}
		}
		return records, false, nil
	}
	if afterSeq < s.snapBase {
		return nil, true, nil
	}
	// The position predates the cached tail but is still in the log (the
	// tail cap trimmed it): fall back to decoding the file. Cold path — it
	// only runs for a follower more than maxTail records behind yet not past
	// the last compaction. readAll seeks to the start; restore the append
	// position before inspecting its error so a failed read never leaves
	// the next append mid-file.
	_, recs, rerr := readAll(s.f)
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return nil, false, err
	}
	if rerr != nil {
		return nil, false, rerr
	}
	for _, r := range recs {
		if r.Seq > afterSeq {
			records = append(records, r)
		}
	}
	return records, false, nil
}

// Seq returns the highest sequence number seen.
func (s *Store) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
