// Package storage persists policy state durably: a snapshot of the policy
// plus a write-ahead log of applied administrative commands. It serves two
// consumers. The reference monitor's audit stream is appended to the log via
// Store.Attach, and Open recovers the policy by loading the snapshot and
// replaying the log. The snapshot engine attaches through OpenEngine, which
// recovers an engine.Engine at the logged generation and installs a commit
// hook so every applied command is durable before its snapshot is published
// (write-ahead at the engine boundary — the multi-tenant service in
// internal/tenant runs one such store per tenant). Compaction writes a fresh
// snapshot and truncates the log; SinceCompact exposes the log growth so
// callers can trigger compaction on a budget.
//
// Log format: a fixed header followed by length-prefixed records,
//
//	"ARWAL1\n" | rec* , rec = len(u32 LE) | crc32(u32 LE, IEEE) | payload
//
// where payload is the JSON of a Record. A torn tail (incomplete or
// corrupt final record, e.g. after a crash mid-append) is detected by the
// CRC and truncated away on open; Recovery reports how many bytes were
// dropped.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

const logMagic = "ARWAL1\n"

// KindAudit marks an audit record: a logged observation of one processed
// administrative command (any outcome, with an optional denial reason) that
// is never replayed into the policy. An empty Kind is a step record — the
// original WAL record kind, a command whose effect recovery replays.
const KindAudit = "audit"

// Record is one logged administrative command with its outcome.
type Record struct {
	// Kind distinguishes step records ("" — replayed into the policy on
	// recovery) from audit records (KindAudit — collected into the audit
	// log, never replayed).
	Kind    string          `json:"kind,omitempty"`
	Seq     int             `json:"seq"`
	Actor   string          `json:"actor"`
	Op      string          `json:"op"` // "grant" or "revoke"
	From    json.RawMessage `json:"from"`
	To      json.RawMessage `json:"to"`
	Outcome string          `json:"outcome"` // "applied", "nochange", "denied", "illformed"
	// Reason carries a denial explanation beyond Definition 5 (e.g. a
	// separation-of-duty veto) on audit records.
	Reason string `json:"reason,omitempty"`
	// ASeq is the store-local audit index (1, 2, …), assigned at append
	// time on audit records. Unlike Seq — the engine generation, which
	// every no-effect audit at the same generation shares — ASeq is unique
	// per record, so it is the pagination cursor of the audit log. It is
	// node-local: a follower re-indexes adopted/replicated audit records
	// into its own sequence.
	ASeq uint64 `json:"aseq,omitempty"`
}

// IsAudit reports whether the record is an audit observation rather than a
// replayable step.
func (r Record) IsAudit() bool { return r.Kind == KindAudit }

// NewRecord converts an audit entry into a loggable record.
func NewRecord(e monitor.AuditEntry) (Record, error) {
	from, err := model.MarshalVertex(e.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(e.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     e.Seq,
		Actor:   e.Cmd.Actor,
		Op:      e.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: e.Outcome.WireName(),
	}, nil
}

// Command reconstructs the administrative command of the record.
func (r Record) Command() (command.Command, error) {
	from, err := model.UnmarshalVertex(r.From)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d from: %w", r.Seq, err)
	}
	to, err := model.UnmarshalVertex(r.To)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d to: %w", r.Seq, err)
	}
	var op model.Op
	switch r.Op {
	case "grant":
		op = model.OpGrant
	case "revoke":
		op = model.OpRevoke
	default:
		return command.Command{}, fmt.Errorf("storage: record %d: unknown op %q", r.Seq, r.Op)
	}
	return command.Command{Actor: r.Actor, Op: op, From: from, To: to}, nil
}

// Recovery summarises what Open found on disk.
type Recovery struct {
	// SnapshotLoaded reports whether a snapshot file existed.
	SnapshotLoaded bool
	// Records is the number of log records replayed.
	Records int
	// Applied is the number of replayed records that mutated the policy.
	Applied int
	// AuditRecords is the number of audit records recovered into the audit
	// log (they are collected, never replayed).
	AuditRecords int `json:",omitempty"`
	// DroppedBytes counts torn-tail bytes truncated from the log.
	DroppedBytes int
}

// Options configures a Store.
type Options struct {
	// Sync forces an fsync after every append (slow, durable). Default off.
	Sync bool
}

// Store is a directory-backed policy store: snapshot.json + wal.log.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	f    *os.File
	seq  int
	// snapBase is the sequence number the on-disk snapshot covers; the log
	// holds exactly the records in (snapBase, seq]. A replication pull for
	// records at or below snapBase cannot be served from the log — the
	// follower needs a snapshot bootstrap (see ReadSince).
	snapBase int
	// tail caches the most recent records in memory (capped at maxTail,
	// invariant: every record with Seq in (tailBase, seq], whether or not a
	// head compaction already truncated it from the file), so the
	// replication hot path — followers pulling at or near the head — never
	// re-reads the log file and survives compactions without snapshot
	// bootstraps. ReadSince falls back to the file only for a position older
	// than tailBase but still at or above snapBase.
	tail     []Record
	tailBase int
	// audit is the in-memory recent-audit log (capped at maxAudit): every
	// audit record appended or recovered, in append order. It survives head
	// compactions like the record tail does; the durable window on disk is
	// bounded by compaction (a compaction folds the log, audit records
	// included, into the snapshot).
	audit []Record
	// auditTotal counts every audit record ever seen by this store instance
	// (recovered + appended), so consumers can detect ring truncation.
	auditTotal uint64
	// lastASeq is the highest audit index assigned or recovered; appends
	// continue from it.
	lastASeq uint64
	// sinceCompact counts log records written since the last compaction
	// (records already in the log at Open count too): the compaction-trigger
	// signal.
	sinceCompact int
}

// maxAudit caps the in-memory recent-audit log.
const maxAudit = 1024

// maxTail caps the in-memory record tail; with the default compaction
// budget the whole log fits.
const maxTail = 2048

// snapshotMeta wraps the policy snapshot with its log position.
type snapshotMeta struct {
	Seq    int             `json:"seq"`
	Policy json.RawMessage `json:"policy"`
}

// Open opens (or initialises) the store in dir, returning the recovered
// policy. The policy starts empty when the directory holds no state.
func Open(dir string, opts Options) (*Store, *policy.Policy, Recovery, error) {
	var rec Recovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, rec, err
	}
	pol := policy.New()
	seq := 0

	// Load snapshot if present.
	snapPath := filepath.Join(dir, "snapshot.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		var meta snapshotMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot: %w", err)
		}
		if err := json.Unmarshal(meta.Policy, pol); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot policy: %w", err)
		}
		seq = meta.Seq
		rec.SnapshotLoaded = true
	} else if !os.IsNotExist(err) {
		return nil, nil, rec, err
	}
	snapSeq := seq

	// Replay the log.
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, rec, err
	}
	validEnd, records, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	if fi.Size() > validEnd {
		rec.DroppedBytes = int(fi.Size() - validEnd)
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, rec, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	var auditRecs []Record
	for _, r := range records {
		if r.IsAudit() {
			// Audit records are observations, not effects: collect them for
			// the audit log before the sequence filter (they share their
			// step's sequence number) and never replay them.
			auditRecs = append(auditRecs, r)
			rec.AuditRecords++
			continue
		}
		if r.Seq <= seq {
			continue // already covered by the snapshot
		}
		rec.Records++
		if r.Outcome == "applied" || r.Outcome == "nochange" {
			c, err := r.Command()
			if err != nil {
				f.Close()
				return nil, nil, rec, err
			}
			changed, err := command.Apply(pol, c)
			if err != nil {
				f.Close()
				return nil, nil, rec, fmt.Errorf("storage: replaying record %d: %w", r.Seq, err)
			}
			if changed {
				rec.Applied++
			}
		}
		seq = r.Seq
	}

	// Seed the compaction trigger with the step records only: the log also
	// carries the re-appended audit window (see compactLocked), and counting
	// it would re-trigger a full compaction on the first submit after every
	// restart of a store with a populated window.
	s := &Store{dir: dir, opts: opts, f: f, seq: seq, snapBase: snapSeq,
		sinceCompact: len(records) - len(auditRecs)}
	// Seed the in-memory tail with the decoded log (records at or below
	// snapBase, if a crash mid-compaction left any, are filtered at serve
	// time exactly as the file path would).
	s.tailBase = snapSeq
	for _, r := range records {
		s.appendTailLocked(r)
	}
	for _, r := range auditRecs {
		// Records persisted before the audit index existed are indexed in
		// file order; persisted indexes are preserved (cursor stability).
		if r.ASeq == 0 {
			r.ASeq = s.lastASeq + 1
		}
		s.appendAuditLocked(r)
	}
	return s, pol, rec, nil
}

// appendAuditLocked adds one record (its ASeq already assigned) to the
// in-memory audit log, trimming the oldest half past the cap. Caller holds
// s.mu (or owns s exclusively).
func (s *Store) appendAuditLocked(r Record) {
	if r.ASeq > s.lastASeq {
		s.lastASeq = r.ASeq
	}
	s.audit = append(s.audit, r)
	s.auditTotal++
	if len(s.audit) > maxAudit {
		drop := len(s.audit) / 2
		s.audit = append(s.audit[:0], s.audit[drop:]...)
	}
}

// appendTailLocked adds one record to the in-memory tail, trimming the
// oldest half past the cap. Caller holds s.mu (or owns s exclusively).
func (s *Store) appendTailLocked(r Record) {
	s.tail = append(s.tail, r)
	if len(s.tail) > maxTail {
		drop := len(s.tail) / 2
		s.tailBase = s.tail[drop-1].Seq
		s.tail = append(s.tail[:0], s.tail[drop:]...)
	}
}

// OpenEngine opens the store and stands a snapshot engine up on the
// recovered policy: the engine starts at the recovered generation (the
// highest logged sequence number) and gets a commit hook that appends every
// applied command — step record plus its audit record, in one write — to
// the WAL before its snapshot is published. A crash at any point recovers,
// via OpenEngine, to exactly the decisions the last published snapshot
// served, audit trail included. The engine takes ownership of the recovered
// policy; close the store only after the engine stops submitting.
func OpenEngine(dir string, mode engine.Mode, opts Options) (*Store, *engine.Engine, Recovery, error) {
	s, pol, rec, err := Open(dir, opts)
	if err != nil {
		return nil, nil, rec, err
	}
	eng := engine.NewAt(pol, mode, uint64(s.Seq()))
	eng.SetCommitHook(func(gen uint64, res command.StepResult) error {
		return s.AppendCommit(int(gen), res)
	})
	return s, eng, rec, nil
}

// readAll parses records from the start of the log, returning the offset of
// the end of the last valid record. A missing or wrong magic on a non-empty
// file is an error; a torn tail simply ends the scan.
func readAll(f *os.File) (validEnd int64, records []Record, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, err
	}
	if len(data) == 0 {
		// Fresh log: write the magic.
		if _, err := f.Write([]byte(logMagic)); err != nil {
			return 0, nil, err
		}
		return int64(len(logMagic)), nil, nil
	}
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return 0, nil, fmt.Errorf("storage: wal.log has no valid header")
	}
	n, records := DecodeFrames(data[len(logMagic):])
	return int64(len(logMagic) + n), records, nil
}

// maxFrameBytes bounds one frame's payload; larger length prefixes are
// treated as a torn/corrupt tail rather than an allocation request.
const maxFrameBytes = 1 << 28

// DecodeFrames parses length-prefixed, CRC-checked record frames from data:
// the WAL record stream after the file magic, and exactly the body of a
// replication pull response (the two wire formats agree by construction, so
// a follower applies what the primary logged). It returns the offset one
// past the last whole valid frame and the decoded records; a torn, corrupt
// or undecodable tail simply ends the scan. DecodeFrames never panics on
// arbitrary input (fuzzed by FuzzWALDecode).
func DecodeFrames(data []byte) (validEnd int, records []Record) {
	off := 0
	for {
		if off+8 > len(data) {
			break // torn length/crc header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxFrameBytes { // implausible record: treat as torn tail
			break
		}
		if off+8+int(n) > len(data) {
			break // torn payload
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break // undecodable tail
		}
		records = append(records, r)
		off += 8 + int(n)
	}
	return off, records
}

// EncodeFrame appends r's length-prefix + CRC frame to buf, returning the
// extended buffer — the inverse of DecodeFrames for one record.
func EncodeFrame(buf []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return buf, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// Append logs one audit entry. Safe for concurrent use.
func (s *Store) Append(e monitor.AuditEntry) error {
	r, err := NewRecord(e)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// NewStepRecord converts an engine step result into a loggable record at the
// given sequence number (the engine generation the step produced).
func NewStepRecord(seq int, res command.StepResult) (Record, error) {
	from, err := model.MarshalVertex(res.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(res.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     seq,
		Actor:   res.Cmd.Actor,
		Op:      res.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: res.Outcome.WireName(),
	}, nil
}

// NewAuditRecord converts an engine step result into the audit observation
// of the command at the given sequence number: the engine generation after
// the command for applied steps, the unchanged generation otherwise. reason
// carries a veto explanation (e.g. an SSD violation) on denied commands.
func NewAuditRecord(seq int, res command.StepResult, reason string) (Record, error) {
	r, err := NewStepRecord(seq, res)
	if err != nil {
		return Record{}, err
	}
	r.Kind = KindAudit
	r.Reason = reason
	return r, nil
}

// AppendStep logs one engine step result — the engine commit hook. Safe for
// concurrent use.
func (s *Store) AppendStep(seq int, res command.StepResult) error {
	r, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// AppendCommit logs one applied engine step together with its audit record
// in a single write — the commit hook of the durable serving stack (see
// tenant.Options). Both frames land with one file write, so a crash
// mid-append truncates to a CRC-valid prefix: either nothing, the step
// alone, or both. The step is never lost once the hook returned, and the
// audit record shares its durability (write-ahead of snapshot publication).
func (s *Store) AppendCommit(seq int, res command.StepResult) error {
	step, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	audit, err := NewAuditRecord(seq, res, "")
	if err != nil {
		return err
	}
	return s.appendRecords(step, audit)
}

// AppendAudit logs the audit observation of a command that did not change
// the policy (denied, vetoed, no-change or ill-formed) at the current
// sequence number. Safe for concurrent use.
func (s *Store) AppendAudit(seq int, res command.StepResult, reason string) error {
	r, err := NewAuditRecord(seq, res, reason)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// AppendRecord logs one record with length-prefix + CRC framing. Safe for
// concurrent use.
func (s *Store) AppendRecord(r Record) error {
	return s.appendRecords(r)
}

// AppendRecords logs a batch of records in a single file write (one fsync
// under Options.Sync) — the bulk path for adopting a replicated audit
// window, where per-record appends would multiply bootstrap latency. Safe
// for concurrent use.
func (s *Store) AppendRecords(records ...Record) error {
	if len(records) == 0 {
		return nil
	}
	return s.appendRecords(records...)
}

// appendRecords frames every record into one buffer and lands them with a
// single write, then updates the sequence, tail and audit bookkeeping.
// Audit records are (re)assigned this store's next audit index before
// encoding, so the persisted frame carries the same node-local pagination
// cursor the in-memory log serves — incoming indexes from another node
// (replicated denials, adopted bootstrap windows) are re-indexed here.
func (s *Store) appendRecords(records ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("storage: store closed")
	}
	var buf []byte
	var err error
	next := s.lastASeq
	for i := range records {
		if records[i].IsAudit() {
			next++
			records[i].ASeq = next
		}
		if buf, err = EncodeFrame(buf, records[i]); err != nil {
			return err
		}
	}
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	if s.opts.Sync {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	for _, r := range records {
		if r.Seq > s.seq && !r.IsAudit() {
			s.seq = r.Seq
		}
		s.appendTailLocked(r)
		if r.IsAudit() {
			s.appendAuditLocked(r)
		}
		s.sinceCompact++
	}
	return nil
}

// Audit returns the retained audit records with audit indexes (Record.ASeq,
// the unique per-record cursor — NOT the shared step sequence number) above
// after, oldest first, capped at limit (<= 0 = no cap), together with the
// total number of audit records this store has seen (recovered + appended;
// a total exceeding the returned length means the retained window trimmed
// older entries). Page forward by passing the last record's ASeq back as
// after. Retention is the maxAudit window: compaction re-appends the window
// after truncating the log (see compactLocked), so the trail survives
// compaction cycles and restarts — graceful or SIGKILL — with at most the
// oldest entries beyond the window aged out.
func (s *Store) Audit(after uint64, limit int) ([]Record, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.audit))
	for _, r := range s.audit {
		if r.ASeq > after {
			out = append(out, r)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, s.auditTotal
}

// SinceCompact reports how many log records have accumulated since the last
// compaction — the signal callers use to trigger Compact on a budget.
func (s *Store) SinceCompact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceCompact
}

// Attach subscribes the store to a monitor's audit stream. Append errors are
// delivered to onErr (which may be nil to ignore them — not recommended
// outside tests).
func (s *Store) Attach(m *monitor.Monitor, onErr func(error)) {
	m.Observe(func(e monitor.AuditEntry) {
		if err := s.Append(e); err != nil && onErr != nil {
			onErr(err)
		}
	})
}

// Compact writes a snapshot of the policy at the current sequence number and
// truncates the log. The snapshot is written atomically (temp file + rename)
// so a crash mid-compaction never loses state.
func (s *Store) Compact(p *policy.Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked(p, s.seq, true)
}

// CompactAt installs p as the snapshot at an explicit sequence number at or
// above the current one, truncating the log and advancing Seq — the install
// path (provisioning and follower bootstrap), where the snapshot state
// arrives from outside the local engine. Unlike a head compaction, an
// install drops the local audit trail with the log: the installer replaces
// the state wholesale and supplies the matching trail itself (see
// tenant.InstallReplicaSnapshot), so keeping the old one would duplicate or
// misattribute history.
func (s *Store) CompactAt(p *policy.Policy, seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.seq {
		return fmt.Errorf("storage: CompactAt seq %d below current %d", seq, s.seq)
	}
	if err := s.compactLocked(p, seq, false); err != nil {
		// The install failed and the caller keeps serving the old state: the
		// old audit trail stays with it (dropping it here would destroy it
		// even though nothing was replaced).
		return err
	}
	s.audit = s.audit[:0]
	s.auditTotal = 0
	return nil
}

func (s *Store) compactLocked(p *policy.Policy, seq int, keepAudit bool) error {
	if s.f == nil {
		return fmt.Errorf("storage: store closed")
	}
	polData, err := json.Marshal(p)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(snapshotMeta{Seq: seq, Policy: polData})
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "snapshot.json.tmp")
	if err := os.WriteFile(tmp, meta, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot.json")); err != nil {
		return err
	}
	// Truncate the log to just the header.
	if err := s.f.Truncate(int64(len(logMagic))); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	// Re-append the retained audit window: compaction folds *state* into the
	// snapshot, but audit records are observations with no representation in
	// it, so truncating them away would erase the trail on every graceful
	// restart. The window is bounded (maxAudit), so the re-append keeps the
	// log small while audit history survives compaction cycles. Replay
	// collects audit records regardless of their (old) sequence numbers.
	if keepAudit && len(s.audit) > 0 {
		var buf []byte
		var err error
		for _, r := range s.audit {
			if buf, err = EncodeFrame(buf, r); err != nil {
				return err
			}
		}
		if _, err := s.f.Write(buf); err != nil {
			return err
		}
	}
	if seq != s.seq {
		// Snapshot installed at a different position (replica bootstrap
		// jump): the cached records do not connect to it — drop them.
		s.tail = s.tail[:0]
		s.tailBase = seq
	}
	// A compaction at the current head keeps the tail: the truncated
	// records remain valid, servable history, so a follower lagging by a
	// few records replays them incrementally instead of paying a snapshot
	// bootstrap every compaction cycle.
	s.seq = seq
	s.snapBase = seq
	s.sinceCompact = 0
	if s.opts.Sync {
		return s.f.Sync()
	}
	return nil
}

// SnapBase reports the sequence number the on-disk snapshot covers; the log
// serves exactly the records in (SnapBase, Seq].
func (s *Store) SnapBase() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapBase
}

// ReadSince returns the logged records with sequence numbers above afterSeq,
// in order. gap reports that the log cannot serve that position because a
// compaction folded records at or below its snapshot base into the snapshot;
// the caller must bootstrap from a snapshot instead (see
// internal/replication). Pulls at or near the head — the replication steady
// state — are served from the in-memory tail without touching the file.
func (s *Store) ReadSince(afterSeq int) (records []Record, gap bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil, false, fmt.Errorf("storage: store closed")
	}
	if afterSeq >= s.seq {
		return nil, false, nil
	}
	if afterSeq >= s.tailBase {
		// The tail holds every record with Seq > tailBase — including
		// records a head compaction already truncated from the file, so
		// near-head pulls keep replaying incrementally across compactions.
		for _, r := range s.tail {
			if r.Seq > afterSeq {
				records = append(records, r)
			}
		}
		return records, false, nil
	}
	if afterSeq < s.snapBase {
		return nil, true, nil
	}
	// The position predates the cached tail but is still in the log (the
	// tail cap trimmed it): fall back to decoding the file. Cold path — it
	// only runs for a follower more than maxTail records behind yet not past
	// the last compaction. readAll seeks to the start; restore the append
	// position before inspecting its error so a failed read never leaves
	// the next append mid-file.
	_, recs, rerr := readAll(s.f)
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return nil, false, err
	}
	if rerr != nil {
		return nil, false, rerr
	}
	for _, r := range recs {
		if r.Seq > afterSeq {
			records = append(records, r)
		}
	}
	return records, false, nil
}

// Seq returns the highest sequence number seen.
func (s *Store) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
