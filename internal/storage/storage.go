// Package storage persists policy state durably: a snapshot of the policy
// plus a write-ahead log of applied administrative commands. It serves two
// consumers. The reference monitor's audit stream is appended to the log via
// Store.Attach, and Open recovers the policy by loading the snapshot and
// replaying the log. The snapshot engine attaches through OpenEngine, which
// recovers an engine.Engine at the logged generation and installs a commit
// hook so every applied command is durable before its snapshot is published
// (write-ahead at the engine boundary — the multi-tenant service in
// internal/tenant runs one such store per tenant). Compaction writes a fresh
// snapshot and truncates the log; SinceCompact exposes the log growth so
// callers can trigger compaction on a budget.
//
// Log format: a fixed header followed by length-prefixed records,
//
//	"ARWAL1\n" | rec* , rec = len(u32 LE) | crc32(u32 LE, IEEE) | payload
//
// where payload is the JSON of a Record. A torn tail (incomplete or
// corrupt final record, e.g. after a crash mid-append) is detected by the
// CRC and truncated away on open; Recovery reports how many bytes were
// dropped.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

const logMagic = "ARWAL1\n"

// Record is one logged administrative command with its outcome.
type Record struct {
	Seq     int             `json:"seq"`
	Actor   string          `json:"actor"`
	Op      string          `json:"op"` // "grant" or "revoke"
	From    json.RawMessage `json:"from"`
	To      json.RawMessage `json:"to"`
	Outcome string          `json:"outcome"` // "applied", "nochange", "denied", "illformed"
}

// NewRecord converts an audit entry into a loggable record.
func NewRecord(e monitor.AuditEntry) (Record, error) {
	from, err := model.MarshalVertex(e.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(e.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     e.Seq,
		Actor:   e.Cmd.Actor,
		Op:      e.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: e.Outcome.WireName(),
	}, nil
}

// Command reconstructs the administrative command of the record.
func (r Record) Command() (command.Command, error) {
	from, err := model.UnmarshalVertex(r.From)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d from: %w", r.Seq, err)
	}
	to, err := model.UnmarshalVertex(r.To)
	if err != nil {
		return command.Command{}, fmt.Errorf("storage: record %d to: %w", r.Seq, err)
	}
	var op model.Op
	switch r.Op {
	case "grant":
		op = model.OpGrant
	case "revoke":
		op = model.OpRevoke
	default:
		return command.Command{}, fmt.Errorf("storage: record %d: unknown op %q", r.Seq, r.Op)
	}
	return command.Command{Actor: r.Actor, Op: op, From: from, To: to}, nil
}

// Recovery summarises what Open found on disk.
type Recovery struct {
	// SnapshotLoaded reports whether a snapshot file existed.
	SnapshotLoaded bool
	// Records is the number of log records replayed.
	Records int
	// Applied is the number of replayed records that mutated the policy.
	Applied int
	// DroppedBytes counts torn-tail bytes truncated from the log.
	DroppedBytes int
}

// Options configures a Store.
type Options struct {
	// Sync forces an fsync after every append (slow, durable). Default off.
	Sync bool
}

// Store is a directory-backed policy store: snapshot.json + wal.log.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	f    *os.File
	seq  int
	// sinceCompact counts log records written since the last compaction
	// (records already in the log at Open count too): the compaction-trigger
	// signal.
	sinceCompact int
}

// snapshotMeta wraps the policy snapshot with its log position.
type snapshotMeta struct {
	Seq    int             `json:"seq"`
	Policy json.RawMessage `json:"policy"`
}

// Open opens (or initialises) the store in dir, returning the recovered
// policy. The policy starts empty when the directory holds no state.
func Open(dir string, opts Options) (*Store, *policy.Policy, Recovery, error) {
	var rec Recovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, rec, err
	}
	pol := policy.New()
	seq := 0

	// Load snapshot if present.
	snapPath := filepath.Join(dir, "snapshot.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		var meta snapshotMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot: %w", err)
		}
		if err := json.Unmarshal(meta.Policy, pol); err != nil {
			return nil, nil, rec, fmt.Errorf("storage: corrupt snapshot policy: %w", err)
		}
		seq = meta.Seq
		rec.SnapshotLoaded = true
	} else if !os.IsNotExist(err) {
		return nil, nil, rec, err
	}

	// Replay the log.
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, rec, err
	}
	validEnd, records, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	if fi.Size() > validEnd {
		rec.DroppedBytes = int(fi.Size() - validEnd)
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, rec, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	for _, r := range records {
		if r.Seq <= seq {
			continue // already covered by the snapshot
		}
		rec.Records++
		if r.Outcome == "applied" || r.Outcome == "nochange" {
			c, err := r.Command()
			if err != nil {
				f.Close()
				return nil, nil, rec, err
			}
			changed, err := command.Apply(pol, c)
			if err != nil {
				f.Close()
				return nil, nil, rec, fmt.Errorf("storage: replaying record %d: %w", r.Seq, err)
			}
			if changed {
				rec.Applied++
			}
		}
		seq = r.Seq
	}

	s := &Store{dir: dir, opts: opts, f: f, seq: seq, sinceCompact: len(records)}
	return s, pol, rec, nil
}

// OpenEngine opens the store and stands a snapshot engine up on the
// recovered policy: the engine starts at the recovered generation (the
// highest logged sequence number) and gets a commit hook that appends every
// applied command to the WAL before its snapshot is published. A crash at
// any point recovers, via OpenEngine, to exactly the decisions the last
// published snapshot served. The engine takes ownership of the recovered
// policy; close the store only after the engine stops submitting.
func OpenEngine(dir string, mode engine.Mode, opts Options) (*Store, *engine.Engine, Recovery, error) {
	s, pol, rec, err := Open(dir, opts)
	if err != nil {
		return nil, nil, rec, err
	}
	eng := engine.NewAt(pol, mode, uint64(s.Seq()))
	eng.SetCommitHook(func(gen uint64, res command.StepResult) error {
		return s.AppendStep(int(gen), res)
	})
	return s, eng, rec, nil
}

// readAll parses records from the start of the log, returning the offset of
// the end of the last valid record. A missing or wrong magic on a non-empty
// file is an error; a torn tail simply ends the scan.
func readAll(f *os.File) (validEnd int64, records []Record, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, nil, err
	}
	if len(data) == 0 {
		// Fresh log: write the magic.
		if _, err := f.Write([]byte(logMagic)); err != nil {
			return 0, nil, err
		}
		return int64(len(logMagic)), nil, nil
	}
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return 0, nil, fmt.Errorf("storage: wal.log has no valid header")
	}
	off := len(logMagic)
	for {
		if off+8 > len(data) {
			break // torn length/crc header
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > 1<<28 { // implausible record: treat as torn tail
			break
		}
		if off+8+int(n) > len(data) {
			break // torn payload
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt tail
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break // undecodable tail
		}
		records = append(records, r)
		off += 8 + int(n)
	}
	return int64(off), records, nil
}

// Append logs one audit entry. Safe for concurrent use.
func (s *Store) Append(e monitor.AuditEntry) error {
	r, err := NewRecord(e)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// NewStepRecord converts an engine step result into a loggable record at the
// given sequence number (the engine generation the step produced).
func NewStepRecord(seq int, res command.StepResult) (Record, error) {
	from, err := model.MarshalVertex(res.Cmd.From)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode from vertex: %w", err)
	}
	to, err := model.MarshalVertex(res.Cmd.To)
	if err != nil {
		return Record{}, fmt.Errorf("storage: encode to vertex: %w", err)
	}
	return Record{
		Seq:     seq,
		Actor:   res.Cmd.Actor,
		Op:      res.Cmd.Op.String(),
		From:    from,
		To:      to,
		Outcome: res.Outcome.WireName(),
	}, nil
}

// AppendStep logs one engine step result — the engine commit hook. Safe for
// concurrent use.
func (s *Store) AppendStep(seq int, res command.StepResult) error {
	r, err := NewStepRecord(seq, res)
	if err != nil {
		return err
	}
	return s.AppendRecord(r)
}

// AppendRecord logs one record with length-prefix + CRC framing. Safe for
// concurrent use.
func (s *Store) AppendRecord(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("storage: store closed")
	}
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	if s.opts.Sync {
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	if r.Seq > s.seq {
		s.seq = r.Seq
	}
	s.sinceCompact++
	return nil
}

// SinceCompact reports how many log records have accumulated since the last
// compaction — the signal callers use to trigger Compact on a budget.
func (s *Store) SinceCompact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceCompact
}

// Attach subscribes the store to a monitor's audit stream. Append errors are
// delivered to onErr (which may be nil to ignore them — not recommended
// outside tests).
func (s *Store) Attach(m *monitor.Monitor, onErr func(error)) {
	m.Observe(func(e monitor.AuditEntry) {
		if err := s.Append(e); err != nil && onErr != nil {
			onErr(err)
		}
	})
}

// Compact writes a snapshot of the policy at the current sequence number and
// truncates the log. The snapshot is written atomically (temp file + rename)
// so a crash mid-compaction never loses state.
func (s *Store) Compact(p *policy.Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("storage: store closed")
	}
	polData, err := json.Marshal(p)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(snapshotMeta{Seq: s.seq, Policy: polData})
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "snapshot.json.tmp")
	if err := os.WriteFile(tmp, meta, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot.json")); err != nil {
		return err
	}
	// Truncate the log to just the header.
	if err := s.f.Truncate(int64(len(logMagic))); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	s.sinceCompact = 0
	if s.opts.Sync {
		return s.f.Sync()
	}
	return nil
}

// Seq returns the highest sequence number seen.
func (s *Store) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Close releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
