package storage

import (
	"os"
	"path/filepath"
	"testing"

	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
	"adminrefine/internal/workload"
)

// TestRecoveryAtEveryTruncationPoint cuts the log at every possible byte
// offset and requires that recovery (a) never errors, (b) replays a prefix
// of the original record sequence, and (c) yields exactly the policy
// obtained by replaying that prefix in memory. This is the WAL's core
// crash-safety contract.
func TestRecoveryAtEveryTruncationPoint(t *testing.T) {
	dir := t.TempDir()
	base := workload.Hospital(2)
	queue := workload.Queue(base, 12, 21)

	st, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(base); err != nil {
		t.Fatal(err)
	}
	m := monitor.New(base.Clone(), monitor.ModeStrict)
	st.Attach(m, func(err error) { t.Errorf("append: %v", err) })
	m.SubmitQueue(queue)
	st.Close()

	logPath := filepath.Join(dir, "wal.log")
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Expected prefix states: replay i commands in memory.
	prefixes := make([]*policy.Policy, len(queue)+1)
	prefixes[0] = base.Clone()
	cur := base.Clone()
	mm := monitor.New(cur, monitor.ModeStrict)
	for i, c := range queue {
		mm.Submit(c)
		prefixes[i+1] = mm.Policy()
	}

	step := len(full) / 60
	if step == 0 {
		step = 1
	}
	for cut := len(logMagic); cut <= len(full); cut += step {
		scratch := t.TempDir()
		if err := os.WriteFile(filepath.Join(scratch, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		snap, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, "snapshot.json"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, got, rec, err := Open(scratch, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		st2.Close()
		if rec.Records > len(queue) {
			t.Fatalf("cut %d: replayed %d records, more than written", cut, rec.Records)
		}
		if !got.Equal(prefixes[rec.Records]) {
			t.Fatalf("cut %d: state does not match %d-command prefix", cut, rec.Records)
		}
	}
}
