package storage

import (
	"os"
	"path/filepath"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
)

// runScenario drives a monitor attached to a store in dir and returns the
// final in-memory policy.
func runScenario(t *testing.T, dir string, mode monitor.Mode) *policy.Policy {
	t.Helper()
	s, pol, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Fresh store: seed with Figure 2.
	if pol.NumEdges() == 0 {
		pol = policy.Figure2()
	}
	m := monitor.New(pol, mode)
	s.Attach(m, func(err error) { t.Errorf("append: %v", err) })
	m.SubmitQueue(command.Queue{
		command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserDiana, model.User(policy.UserDiana), model.Role(policy.RoleSO)), // denied
		command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
	})
	return m.Policy()
}

func TestReplayReproducesState(t *testing.T) {
	dir := t.TempDir()

	// First run: seed + commands, but the snapshot was never written, so
	// recovery must replay from an empty policy... seed the snapshot first.
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	want := runScenario(t, dir, monitor.ModeStrict)

	// Recovery: snapshot + log replay must reproduce the exact policy.
	s2, got, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.SnapshotLoaded {
		t.Error("snapshot not loaded")
	}
	if rec.Records != 4 {
		t.Errorf("replayed %d records, want 4", rec.Records)
	}
	if rec.Applied != 3 {
		t.Errorf("applied %d records, want 3", rec.Applied)
	}
	if !got.Equal(want) {
		removed, added := want.Diff(got)
		t.Fatalf("recovered policy differs: missing %v extra %v", removed, added)
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	want := runScenario(t, dir, monitor.ModeStrict)

	// Compact with the live policy, then recover: log should be empty.
	s2, got, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(got); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, got3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec3.Records != 0 {
		t.Errorf("post-compaction replay saw %d records", rec3.Records)
	}
	if !got3.Equal(want) {
		t.Fatal("post-compaction recovery differs")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	runScenario(t, dir, monitor.ModeStrict)

	// Simulate a crash mid-append: chop bytes off the log tail.
	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, got, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer s2.Close()
	if rec.DroppedBytes == 0 {
		t.Error("no bytes reported dropped")
	}
	if rec.Records != 3 {
		t.Errorf("replayed %d records, want 3 (last record torn)", rec.Records)
	}
	// The state reflects the first three commands only.
	if !got.HasEdge(model.User(policy.UserJoe), model.Role(policy.RoleNurse)) {
		t.Error("torn-tail recovery lost the applied grant")
	}
	// Appending after recovery works and the log stays valid.
	m := monitor.New(got, monitor.ModeStrict)
	s2.Attach(m, func(err error) { t.Errorf("append: %v", err) })
	m.Submit(command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)))
	s2.Close()
	if _, _, rec3, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	} else if rec3.DroppedBytes != 0 {
		t.Error("log corrupt after post-recovery append")
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	runScenario(t, dir, monitor.ModeStrict)

	// Flip a byte inside the last record's payload: CRC must catch it.
	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.DroppedBytes == 0 {
		t.Fatal("corrupt record not dropped")
	}
	if rec.Records != 3 {
		t.Errorf("replayed %d records, want 3", rec.Records)
	}
}

func TestMissingHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("header-less log accepted")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestRefinedModeReplay(t *testing.T) {
	// Refined-mode decisions (Jane's ordering-authorized command) replay
	// identically: the log stores effects, not authorization mode.
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	pol := policy.Figure2()
	m := monitor.New(pol, monitor.ModeRefined)
	s.Attach(m, func(err error) { t.Errorf("append: %v", err) })
	res := m.Submit(command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)))
	if res.Outcome != command.Applied {
		t.Fatalf("refined submit outcome: %v", res.Outcome)
	}
	want := m.Policy()
	s.Close()

	_, got, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 || rec.Applied != 1 {
		t.Errorf("recovery = %+v", rec)
	}
	if !got.Equal(want) {
		t.Fatal("refined-mode state not reproduced")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	e := monitor.AuditEntry{Seq: 1, Cmd: command.Grant("u", model.User("a"), model.Role("b")), Outcome: command.Applied}
	if err := s.Append(e); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.Compact(policy.New()); err == nil {
		t.Fatal("compact after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close errored: %v", err)
	}
}

func TestSeqTracking(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Seq() != 0 {
		t.Fatal("fresh store has nonzero seq")
	}
	pol := policy.Figure2()
	m := monitor.New(pol, monitor.ModeStrict)
	s.Attach(m, nil)
	m.Submit(command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	m.Submit(command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)))
	if s.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", s.Seq())
	}
}

func TestSnapshotSkipsOldRecords(t *testing.T) {
	// Records already covered by the snapshot's seq must not be re-applied.
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := policy.Figure2()
	m := monitor.New(pol, monitor.ModeStrict)
	s.Attach(m, nil)
	m.Submit(command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	// Snapshot covers seq 1, but the log still contains record 1 (Compact
	// truncates, so emulate a snapshot-without-truncate by writing the
	// snapshot file directly through a second store call sequence).
	if err := s.Compact(m.Policy()); err != nil {
		t.Fatal(err)
	}
	// New command after compaction.
	m.Submit(command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)))
	want := m.Policy()
	s.Close()

	_, got, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 1 {
		t.Errorf("replayed %d records, want 1", rec.Records)
	}
	if !got.Equal(want) {
		t.Fatal("state mismatch")
	}
}

func TestPlacementRecordSurvivesRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Placement(); got != nil {
		t.Fatalf("fresh store placement = %q, want nil", got)
	}
	if err := s.SetPlacement([]byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPlacement([]byte(`{"version":2}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Restart: the last placement record in file order wins, and the control
	// records neither replay into the policy nor count as recovered steps.
	s2, _, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Errorf("control records counted as steps: %d", rec.Records)
	}
	if got := string(s2.Placement()); got != `{"version":2}` {
		t.Fatalf("recovered placement = %q", got)
	}
	if s2.SinceCompact() != 0 {
		t.Errorf("control records primed the compaction trigger: %d", s2.SinceCompact())
	}

	// Compaction folds the placement into the snapshot meta: it must survive
	// a compaction that truncates every control record plus a restart.
	if err := s2.Compact(policy.Figure2()); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := string(s3.Placement()); got != `{"version":2}` {
		t.Fatalf("placement after compaction+restart = %q", got)
	}
}
