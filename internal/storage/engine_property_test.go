package storage

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/policy"
	"adminrefine/internal/workload"
)

// writeScratch copies the compacted snapshot plus a damaged WAL into a fresh
// directory, simulating a crash that tore the log at byte `cut` (and, when
// flip >= 0, flipped a bit inside the surviving bytes).
func writeScratch(t *testing.T, snap, wal []byte, cut, flip int) string {
	t.Helper()
	dir := t.TempDir()
	damaged := append([]byte(nil), wal[:cut]...)
	if flip >= 0 && flip < len(damaged) {
		damaged[flip] ^= 0x40
	}
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// recordEnds parses the WAL framing (len | crc | payload) and returns the
// byte offset at which each record ends, so the test can map an arbitrary
// cut point to the longest surviving record prefix.
func recordEnds(t *testing.T, wal []byte) []int {
	t.Helper()
	ends := []int{len(logMagic)}
	off := len(logMagic)
	for off+8 <= len(wal) {
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		if off+8+n > len(wal) {
			break
		}
		off += 8 + n
		ends = append(ends, off)
	}
	return ends
}

// TestEngineRecoveryFromTornTail is the crash-safety contract of the engine
// path: a write killed mid-record (any byte cut, with or without a flipped
// bit in the tail) must recover, via OpenEngine, to exactly the last
// CRC-valid record prefix — same policy, same generation — with the engine
// serving decisions at the recovered generation.
func TestEngineRecoveryFromTornTail(t *testing.T) {
	const roles, users, ops = 16, 16, 24
	dir := t.TempDir()

	st, eng, _, err := OpenEngine(dir, engine.Refined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := workload.ChurnPolicy(roles, users)
	if err := st.Compact(base); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Reopen over the compacted snapshot so the engine owns the fixture.
	st, eng, rec, err := OpenEngine(dir, engine.Refined, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.SnapshotLoaded {
		t.Fatal("fixture snapshot not loaded")
	}
	for i := 0; i < ops; i++ {
		res, err := eng.SubmitGuarded(workload.ChurnGrant(i, users, roles), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != command.Applied {
			t.Fatalf("churn grant %d: %v", i, res.Outcome)
		}
	}
	st.Close()

	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The engine-path commit writes two frames per applied command — the
	// step record and its audit twin — so every cut below additionally
	// exercises mixed step/audit tails: a tear between a step and its audit
	// must recover the step (and its policy effect) while dropping only the
	// audit observation.
	ends := recordEnds(t, wal)
	if len(ends) != 2*ops+1 {
		t.Fatalf("parsed %d records in the WAL, want %d", len(ends)-1, 2*ops)
	}

	// Expected policy after k applied records.
	prefixes := make([]*policy.Policy, ops+1)
	prefixes[0] = base.Clone()
	cur := base.Clone()
	for i := 0; i < ops; i++ {
		if _, err := command.Apply(cur, workload.ChurnGrant(i, users, roles)); err != nil {
			t.Fatal(err)
		}
		prefixes[i+1] = cur.Clone()
	}

	// prefixFor maps a surviving byte length to the number of whole *step*
	// records: frames alternate step, audit, step, audit, …, so k surviving
	// frames carry ceil(k/2) steps (a surviving step whose audit twin was
	// torn away still counts — the effect is durable, the observation not).
	prefixFor := func(cut int) int {
		k := 0
		for k+1 < len(ends) && ends[k+1] <= cut {
			k++
		}
		return (k + 1) / 2
	}

	check := func(cut, flip, wantK int, what string) {
		t.Helper()
		scratch := writeScratch(t, snap, wal, cut, flip)
		st2, eng2, rec2, err := OpenEngine(scratch, engine.Refined, Options{})
		if err != nil {
			t.Fatalf("%s (cut=%d flip=%d): recovery failed: %v", what, cut, flip, err)
		}
		defer st2.Close()
		if rec2.Records != wantK {
			t.Fatalf("%s (cut=%d flip=%d): replayed %d records, want %d", what, cut, flip, rec2.Records, wantK)
		}
		if got := eng2.Generation(); got != uint64(wantK) {
			t.Fatalf("%s (cut=%d): engine generation %d, want %d", what, cut, got, wantK)
		}
		if got := st2.Seq(); got != wantK {
			t.Fatalf("%s (cut=%d): store seq %d, want %d", what, cut, got, wantK)
		}
		s := eng2.Snapshot()
		defer s.Close()
		if !s.Policy().Equal(prefixes[wantK]) {
			t.Fatalf("%s (cut=%d): recovered policy is not the %d-record prefix", what, cut, wantK)
		}
		// The engine serves at the recovered generation: the next churn
		// command is still authorized, and a submit keeps counting from k.
		if _, ok := s.Authorize(workload.ChurnGrant(wantK, users, roles)); !ok {
			t.Fatalf("%s (cut=%d): recovered engine denies the churn query", what, cut)
		}
		res, err := eng2.SubmitGuarded(workload.ChurnGrant(wantK, users, roles), nil)
		if err != nil || res.Outcome != command.Applied {
			t.Fatalf("%s (cut=%d): submit on recovered engine: outcome %v err %v", what, cut, res.Outcome, err)
		}
		if got := eng2.Generation(); got != uint64(wantK)+1 {
			t.Fatalf("%s (cut=%d): generation after recovery submit %d, want %d", what, cut, got, wantK+1)
		}
	}

	// Every record boundary, and every byte offset within the first records.
	for _, cut := range ends {
		check(cut, -1, prefixFor(cut), "boundary cut")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		cut := len(logMagic) + rng.Intn(len(wal)-len(logMagic)) + 1
		check(cut, -1, prefixFor(cut), "random cut")
	}
	// Bit flips inside the tail record: the CRC must reject the damaged
	// record, truncating recovery to the previous boundary — whether the
	// damaged frame is a step or an audit record.
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(2 * ops)
		flip := ends[k] + 8 + rng.Intn(ends[k+1]-ends[k]-8) // inside payload k
		check(len(wal), flip, (k+1)/2, "flipped payload byte")
	}
}
