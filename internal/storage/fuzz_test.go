package storage

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReadSinceTailMatchesFile pins the in-memory tail cache against the
// file-decode path: head-position reads serve from the tail, positions
// older than the trimmed window fall back to the file, and both agree with
// each other across reopen (which reseeds the tail from the decoded log).
func TestReadSinceTailMatchesFile(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Enough records to trim the tail (maxTail) at least once, so ReadSince
	// below exercises both the cached window and the file fallback.
	const n = maxTail + 500
	for i := 1; i <= n; i++ {
		r := Record{Seq: i, Actor: "a", Op: "grant",
			From: json.RawMessage(`{"kind":"user","name":"u"}`), To: json.RawMessage(`{"kind":"role","name":"r"}`), Outcome: "applied"}
		if err := st.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Store, afterSeq int) {
		t.Helper()
		recs, gap, err := s.ReadSince(afterSeq)
		if err != nil || gap {
			t.Fatalf("ReadSince(%d): gap=%v err=%v", afterSeq, gap, err)
		}
		if len(recs) != n-afterSeq {
			t.Fatalf("ReadSince(%d): %d records, want %d", afterSeq, len(recs), n-afterSeq)
		}
		for i, r := range recs {
			if r.Seq != afterSeq+1+i {
				t.Fatalf("ReadSince(%d): record %d has seq %d", afterSeq, i, r.Seq)
			}
		}
	}
	for _, afterSeq := range []int{0, 1, maxTail / 2, n - 100, n - 1} {
		check(st, afterSeq) // 0 and maxTail/2 predate the trimmed tail → file path
	}
	st.Close()

	st2, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, afterSeq := range []int{0, n - 100, n - 1} {
		check(st2, afterSeq)
	}
}

// TestReadSinceSurvivesCompaction pins the retained-tail contract: a head
// compaction truncates the file but keeps recent records servable, while a
// snapshot installed at a jumped position (CompactAt) drops them — the two
// sides of the gap/bootstrap decision.
func TestReadSinceSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	st, pol, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 40
	for i := 1; i <= n; i++ {
		r := Record{Seq: i, Actor: "a", Op: "grant",
			From: json.RawMessage(`{"kind":"user","name":"u"}`), To: json.RawMessage(`{"kind":"role","name":"r"}`), Outcome: "denied"}
		if err := st.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(pol); err != nil {
		t.Fatal(err)
	}
	// The file is truncated (snapBase == seq == n) but the tail still
	// serves any position it covers.
	recs, gap, err := st.ReadSince(n - 15)
	if err != nil || gap {
		t.Fatalf("post-compaction ReadSince: gap=%v err=%v", gap, err)
	}
	if len(recs) != 15 || recs[0].Seq != n-14 {
		t.Fatalf("post-compaction ReadSince served %d records from %d", len(recs), recs[0].Seq)
	}
	// A snapshot installed at a jumped position disconnects the tail: the
	// old records no longer extend to the new state.
	if err := st.CompactAt(pol, n+10, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, gap, err := st.ReadSince(n); err != nil || !gap {
		t.Fatalf("post-jump ReadSince(%d): gap=%v err=%v, want gap", n, gap, err)
	}
}

// FuzzWALDecode fuzzes the shared frame decoder — the parser both the WAL
// recovery path and the replication pull client run over bytes that crossed
// a crash or a network. Properties: never panic, never read past the input,
// report a valid prefix whose re-encoding is byte-identical, and stay
// prefix-stable (decoding a truncation of the input never yields records the
// full input did not).
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed streams, a torn tail, and corrupt bytes.
	frame := func(recs ...Record) []byte {
		var buf []byte
		for _, r := range recs {
			var err error
			if buf, err = EncodeFrame(buf, r); err != nil {
				f.Fatal(err)
			}
		}
		return buf
	}
	rec := Record{Seq: 1, Actor: "jane", Op: "grant",
		From: json.RawMessage(`{"user":"bob"}`), To: json.RawMessage(`{"role":"staff"}`), Outcome: "applied"}
	rec2 := rec
	rec2.Seq, rec2.Op, rec2.Outcome = 2, "revoke", "denied"
	// The audit record kind rides the same framing: a step with its audit
	// twin (the commit-hook layout), a standalone veto audit, and a tear
	// landing between a step and its audit.
	audit := rec
	audit.Kind, audit.Reason = KindAudit, ""
	veto := rec2
	veto.Kind, veto.Reason = KindAudit, "SSD eng-qa violated by bob"
	f.Add([]byte{})
	f.Add(frame(rec))
	f.Add(frame(rec, rec2))
	f.Add(frame(rec, audit))
	f.Add(frame(rec, audit, veto))
	f.Add(frame(rec, rec2)[:len(frame(rec, rec2))-3])   // torn tail
	f.Add(frame(rec, audit)[:len(frame(rec, audit))-5]) // torn mixed step/audit tail
	f.Add(frame(rec, audit, veto)[:len(frame(rec))+4])  // tear inside the audit header
	f.Add(append(frame(veto), 0xff, 0x00, 0x13))        // garbage after an audit frame
	f.Add(append(frame(rec), 0xff, 0x00, 0x13))         // garbage tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})   // implausible length
	f.Fuzz(func(t *testing.T, data []byte) {
		validEnd, records := DecodeFrames(data)
		if validEnd < 0 || validEnd > len(data) {
			t.Fatalf("validEnd %d out of range [0,%d]", validEnd, len(data))
		}
		// Round-trip: re-encoding the decoded records must reproduce the
		// valid prefix byte-for-byte (frames are canonical).
		var rebuilt []byte
		var err error
		for _, r := range records {
			if rebuilt, err = EncodeFrame(rebuilt, r); err != nil {
				t.Fatalf("re-encode decoded record: %v", err)
			}
		}
		if !bytes.Equal(rebuilt, data[:validEnd]) {
			// JSON round-tripping is not canonical in general (map order,
			// escapes), so only insist the re-encode decodes identically.
			end2, records2 := DecodeFrames(rebuilt)
			if end2 != len(rebuilt) || len(records2) != len(records) {
				t.Fatalf("re-encoded prefix decodes to %d/%d records", len(records2), len(records))
			}
		}
		// Prefix stability: truncating the input never invents records.
		if validEnd > 0 {
			cutEnd, cutRecords := DecodeFrames(data[:validEnd-1])
			if cutEnd > validEnd-1 || len(cutRecords) > len(records) {
				t.Fatalf("truncated input decoded further: end %d records %d", cutEnd, len(cutRecords))
			}
		}
	})
}
