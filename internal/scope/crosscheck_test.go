package scope_test

import (
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/domains"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/scope"
)

// These tests cross-check the two related-work administrative baselines —
// Crampton–Loizou administrative scope and Wang–Osborn administrative
// domains — against the paper's own authorization regimes on one shared
// fixture. The method: *compile* the baseline's administrative relation into
// Definition 3 admin privileges (for every administrator role a and every
// role r the baseline lets it administer, grant a the privilege ¤(u, r) for
// every user u), then compare decisions.
//
// The compiled policy makes two properties checkable:
//
//  1. Exactness under strict Definition 5: the actor reaches ¤(u, r) iff
//     some activatable role's baseline relation contains r — so strict
//     authorization must agree with the baseline decision exactly, pair by
//     pair. This pins the graph-reachability machinery to the published
//     scope/domain definitions.
//  2. Soundness under the refined regime (§4.1): refinement only adds
//     implicitly-held privileges (Ãφ-weaker than held ones), so every
//     baseline-allowed command must stay allowed, and every extra grant the
//     refinement admits must come with a held-stronger witness the ordering
//     validates — implicit authorization, never unexplained authorization.

// crosscheckFixture is a two-branch hierarchy with one top administrator:
//
//	r0 → {a1, a2};  a1 → x1 → x2, a1 → x3;  a2 → y1 → y2
//
// uroot activates r0, ua activates a1, ub activates a2, unone nothing.
func crosscheckFixture() *policy.Policy {
	p := policy.New()
	p.AddInherit("r0", "a1")
	p.AddInherit("r0", "a2")
	p.AddInherit("a1", "x1")
	p.AddInherit("x1", "x2")
	p.AddInherit("a1", "x3")
	p.AddInherit("a2", "y1")
	p.AddInherit("y1", "y2")
	p.Assign("uroot", "r0")
	p.Assign("ua", "a1")
	p.Assign("ub", "a2")
	p.DeclareUser("unone")
	p.DeclareUser("target")
	return p
}

var (
	crosscheckActors = []string{"uroot", "ua", "ub", "unone"}
	crosscheckUsers  = []string{"target", "ua", "ub"}
)

// compile clones the base policy and grants each administrator role the
// ¤(u, r) privileges for exactly the (role → target) pairs in admin.
func compile(t *testing.T, base *policy.Policy, admin func(adminRole, role string) bool) *policy.Policy {
	t.Helper()
	q := base.Clone()
	for _, ar := range base.Roles() {
		for _, r := range base.Roles() {
			if !admin(ar, r) {
				continue
			}
			for _, u := range crosscheckUsers {
				if _, err := q.GrantPrivilege(ar, model.Grant(model.User(u), model.Role(r))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return q
}

// crosscheck runs the two-regime comparison of a compiled policy against the
// baseline decision procedure.
func crosscheck(t *testing.T, q *policy.Policy, baseline func(actor, role string) bool, what string) {
	t.Helper()
	strict := command.Strict{}
	refined := core.NewRefinedAuthorizer(q)
	checked, widened := 0, 0
	for _, actor := range crosscheckActors {
		for _, role := range q.Roles() {
			for _, u := range crosscheckUsers {
				c := command.Grant(actor, model.User(u), model.Role(role))
				want := baseline(actor, role)
				if _, got := strict.Authorize(q, c); got != want {
					t.Fatalf("%s: strict Definition 5 for %s = %v, %s says %v", what, c, got, what, want)
				}
				just, got := refined.Authorize(q, c)
				if want && !got {
					t.Fatalf("%s: refined regime denies %s, which %s allows", what, c, what)
				}
				if got && !want {
					// The refinement widened the baseline: that is its stated
					// point (§4.1), but every widening must be *implicit
					// authorization* — justified by a held Ãφ-stronger
					// privilege the ordering validates.
					widened++
					priv, err := c.Privilege()
					if err != nil {
						t.Fatal(err)
					}
					d := core.NewDecider(q)
					held, ok := d.HeldStronger(actor, priv)
					if !ok {
						t.Fatalf("%s: refined allows %s with no held-stronger witness", what, c)
					}
					if !d.Weaker(held, priv) {
						t.Fatalf("%s: witness %s for %s is not Ãφ-stronger", what, held, c)
					}
					if just == nil {
						t.Fatalf("%s: refined allows %s without a justification", what, c)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatalf("%s: fixture produced no checks", what)
	}
	t.Logf("%s: %d decisions cross-checked, %d widened by refinement (each with a validated witness)", what, checked, widened)
}

// TestScopeAgreesWithRefinedCore asserts Crampton–Loizou strict-scope
// decisions against the paper's strict and refined authorization on the
// shared fixture.
func TestScopeAgreesWithRefinedCore(t *testing.T) {
	base := crosscheckFixture()
	adm := scope.New(base)
	q := compile(t, base, adm.InStrictScope)
	baseline := func(actor, role string) bool { return scope.CanAssignUser(q, actor, role) }
	// Sanity: the fixture exercises both verdicts of the baseline.
	if !baseline("ua", "x2") || baseline("ua", "y1") || baseline("unone", "x2") {
		t.Fatalf("fixture scope decisions off: ua/x2=%v ua/y1=%v unone/x2=%v",
			baseline("ua", "x2"), baseline("ua", "y1"), baseline("unone", "x2"))
	}
	crosscheck(t, q, baseline, "scope")
}

// TestRefinedWidensBeyondCompiledScope pins the one asymmetry the
// agreement tests cannot show (both baselines are downward-closed, so a
// full compilation leaves refinement nothing to widen): compile only the
// subtree *root* privilege and the refined regime still authorizes the
// descendants through Ãφ — Example 5's implicit authorization — exactly
// where strict Definition 5 denies them. Administrative scope reaches the
// same verdict structurally (x2 is in a1's strict scope), so refinement
// recovers the scope baseline's downward closure from a single compiled
// privilege instead of one per descendant.
func TestRefinedWidensBeyondCompiledScope(t *testing.T) {
	q := crosscheckFixture()
	if _, err := q.GrantPrivilege("a1", model.Grant(model.User("target"), model.Role("x1"))); err != nil {
		t.Fatal(err)
	}
	c := command.Grant("ua", model.User("target"), model.Role("x2"))
	if _, ok := (command.Strict{}).Authorize(q, c); ok {
		t.Fatal("strict regime allows the descendant grant")
	}
	if !scope.CanAssignUser(q, "ua", "x2") {
		t.Fatal("x2 left a1's strict scope — fixture drifted")
	}
	just, ok := core.NewRefinedAuthorizer(q).Authorize(q, c)
	if !ok {
		t.Fatal("refined regime denies the Ãφ-implied descendant grant")
	}
	want := model.Grant(model.User("target"), model.Role("x1"))
	if !model.SamePrivilege(just, want) {
		t.Fatalf("justification %s, want the held %s", just, want)
	}
	if d := core.NewDecider(q); !d.Weaker(want, mustPriv(t, c)) {
		t.Fatal("ordering does not validate the witness")
	}
}

func mustPriv(t *testing.T, c command.Command) model.Privilege {
	t.Helper()
	p, err := c.Privilege()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDomainsAgreeWithRefinedCore does the same for Wang–Osborn
// administrative domains: two sibling domains under a root domain.
func TestDomainsAgreeWithRefinedCore(t *testing.T) {
	base := crosscheckFixture()
	sys := domains.NewSystem(base)
	for _, d := range []struct {
		name, owner, parent string
		members             []string
	}{
		{"root", "r0", "", []string{"r0", "a1", "a2"}},
		{"left", "a1", "root", []string{"x1", "x2", "x3"}},
		{"right", "a2", "root", []string{"y1", "y2"}},
	} {
		if err := sys.AddDomain(d.name, d.owner, d.parent, d.members...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Compile the ownership relation role-wise: ar administers r when ar
	// owns r's domain or an ancestor of it. (Administers additionally
	// resolves which roles an *actor* activates; graph reachability plays
	// that part in the compiled policy.)
	byName := map[string]*domains.Domain{}
	for _, d := range sys.Domains() {
		byName[d.Name] = d
	}
	owners := map[string][]string{} // role → owner chain, innermost first
	for _, r := range base.Roles() {
		d, ok := sys.DomainOf(r)
		for ok {
			owners[r] = append(owners[r], d.Owner)
			if d.Parent == "" {
				break
			}
			d, ok = byName[d.Parent], byName[d.Parent] != nil
		}
	}
	q := compile(t, base, func(ar, r string) bool {
		for _, o := range owners[r] {
			if o == ar {
				return true
			}
		}
		return false
	})
	// The baseline decision runs the real Administers over the compiled
	// policy (same domain partition, same activation semantics).
	qsys := domains.NewSystem(q)
	for _, d := range sys.Domains() {
		members := make([]string, 0, len(d.Members))
		for m := range d.Members {
			members = append(members, m)
		}
		if err := qsys.AddDomain(d.Name, d.Owner, d.Parent, members...); err != nil {
			t.Fatal(err)
		}
	}
	baseline := qsys.Administers
	if !baseline("ua", "x2") || baseline("ua", "y1") || !baseline("uroot", "y2") || baseline("unone", "x1") {
		t.Fatalf("fixture domain decisions off: ua/x2=%v ua/y1=%v uroot/y2=%v unone/x1=%v",
			baseline("ua", "x2"), baseline("ua", "y1"), baseline("uroot", "y2"), baseline("unone", "x1"))
	}
	crosscheck(t, q, baseline, "domains")
}
