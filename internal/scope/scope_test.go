package scope

import (
	"reflect"
	"testing"

	"adminrefine/internal/policy"
)

func TestScopeOnFigure1(t *testing.T) {
	p := policy.Figure1()
	a := New(p)

	// staff sits at the top of the Figure 1 hierarchy fragment: every role
	// below it has all ancestors inside ↓staff ∪ ↑staff.
	want := []string{"dbusr1", "dbusr2", "nurse", "prntusr", "staff"}
	if got := a.Scope("staff"); !reflect.DeepEqual(got, want) {
		t.Fatalf("scope(staff) = %v, want %v", got, want)
	}

	// nurse does NOT have dbusr1 in scope: dbusr1 has the ancestor dbusr2,
	// which is incomparable with nurse.
	if a.InScope("nurse", "dbusr1") {
		t.Error("dbusr1 in scope(nurse) despite incomparable ancestor dbusr2")
	}
	// prntusr's only ancestors are nurse and staff, both above nurse — so it
	// is in nurse's scope.
	if !a.InScope("nurse", "prntusr") {
		t.Error("prntusr not in scope(nurse)")
	}
}

func TestStrictScopeExcludesSelf(t *testing.T) {
	p := policy.Figure1()
	a := New(p)
	if !a.InScope("staff", "staff") {
		t.Error("reflexive scope missing")
	}
	if a.InStrictScope("staff", "staff") {
		t.Error("strict scope includes the administrator")
	}
	if !a.InStrictScope("staff", "nurse") {
		t.Error("strict scope misses nurse")
	}
}

func TestScopeWithSO(t *testing.T) {
	p := policy.Figure2()
	a := New(p)
	// SO's only descendant is HR (plus itself); the medical hierarchy is
	// incomparable with SO.
	want := []string{"HR", "SO"}
	if got := a.Scope("SO"); !reflect.DeepEqual(got, want) {
		t.Fatalf("scope(SO) = %v, want %v", got, want)
	}
	if a.InScope("SO", "staff") {
		t.Error("staff wrongly in scope(SO)")
	}
}

func TestCanAssignUser(t *testing.T) {
	p := policy.Figure2()
	// Diana can activate staff, and nurse is in staff's strict scope.
	if !CanAssignUser(p, policy.UserDiana, policy.RoleNurse) {
		t.Error("diana (staff) cannot administer nurse under scope")
	}
	// Jane's only role is HR, whose strict scope is empty.
	if CanAssignUser(p, policy.UserJane, policy.RoleNurse) {
		t.Error("jane administers nurse despite empty scope")
	}
	// Unknown actors administer nothing.
	if CanAssignUser(p, "ghost", policy.RoleNurse) {
		t.Error("unknown actor administers roles")
	}
}

func TestUnknownRoles(t *testing.T) {
	p := policy.Figure1()
	a := New(p)
	if a.InScope("staff", "ghost") || a.InScope("ghost", "staff") {
		t.Error("unknown role in scope")
	}
	if !a.InScope("ghost", "ghost") {
		t.Error("reflexive scope on unknown role should hold")
	}
	if got := a.Scope("ghost"); len(got) != 0 {
		t.Errorf("scope(ghost) = %v", got)
	}
}

func TestScopeDiamond(t *testing.T) {
	// Diamond: top → {l, r} → bottom. bottom has ancestors l and r, which
	// are incomparable with each other, so bottom is in scope(top) but not
	// in scope(l) or scope(r).
	p := policy.New()
	p.AddInherit("top", "l")
	p.AddInherit("top", "r")
	p.AddInherit("l", "bottom")
	p.AddInherit("r", "bottom")
	a := New(p)
	if !a.InScope("top", "bottom") {
		t.Error("bottom not in scope(top)")
	}
	if a.InScope("l", "bottom") || a.InScope("r", "bottom") {
		t.Error("bottom in scope of an incomparable parent")
	}
}
