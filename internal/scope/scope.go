// Package scope implements the administrative-scope baseline of Crampton &
// Loizou ("Administrative scope: a foundation for role-based administrative
// models", TISSEC 2003), discussed in the paper's related work. A role r is
// within the administrative scope of an administrator role a when every
// ancestor of r is comparable to a — intuitively, changes to r cannot leak
// influence past a.
//
// Formally, with ↑r the ancestors of r and ↓a the descendants of a in the
// role hierarchy (both reflexive):
//
//	r ∈ scope(a)  iff  r ∈ ↓a  and  ↑r ⊆ ↑a ∪ ↓a
//
// Strict scope additionally excludes a itself. Administrators may assign
// users to, revoke users from, and edit the hierarchy below, roles in their
// scope.
package scope

import (
	"sort"

	"adminrefine/internal/graph"
	"adminrefine/internal/policy"
)

// Admin answers administrative-scope queries against one policy's role
// hierarchy. Build with New; rebuild after the hierarchy changes.
type Admin struct {
	g     *graph.Digraph // RH only, senior → junior
	roles []string
}

// New extracts the role hierarchy from the policy.
func New(p *policy.Policy) *Admin {
	a := &Admin{g: graph.New(), roles: p.Roles()}
	for _, r := range a.roles {
		a.g.AddVertex(r)
	}
	for _, e := range p.EdgesOf(policy.EdgeRH) {
		a.g.AddEdge(e.From.String(), e.To.String())
	}
	return a
}

// InScope reports whether role lies in the administrative scope of admin.
func (a *Admin) InScope(admin, role string) bool {
	aid, rid := a.g.Lookup(admin), a.g.Lookup(role)
	if aid == graph.NoVertex || rid == graph.NoVertex {
		return admin == role
	}
	// role must be a descendant of admin.
	if !a.g.ReachesID(aid, rid) {
		return false
	}
	// Every ancestor of role must be comparable to admin: an ancestor x with
	// neither x ⊒ a nor a ⊒ x breaks containment.
	for x := 0; x < a.g.NumVertices(); x++ {
		if !a.g.ReachesID(x, rid) {
			continue // not an ancestor of role
		}
		if !a.g.ReachesID(aid, x) && !a.g.ReachesID(x, aid) {
			return false
		}
	}
	return true
}

// InStrictScope is InScope excluding the administrator itself.
func (a *Admin) InStrictScope(admin, role string) bool {
	return admin != role && a.InScope(admin, role)
}

// Scope returns the administrative scope of admin, sorted.
func (a *Admin) Scope(admin string) []string {
	var out []string
	for _, r := range a.roles {
		if a.InScope(admin, r) {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// CanAssignUser reports whether actor (via one of their roles) may assign a
// user to the target role: some role of the actor must have the target in
// its strict administrative scope.
func CanAssignUser(p *policy.Policy, actor, role string) bool {
	a := New(p)
	for _, ar := range p.RolesActivatableBy(actor) {
		if a.InStrictScope(ar, role) {
			return true
		}
	}
	return false
}
