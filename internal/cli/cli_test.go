package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig2 = "testdata/figure2.rpl"
const run2 = "testdata/example2-run.rpl"

func ctl(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := Rbacctl(&buf, args)
	return buf.String(), err
}

func TestValidate(t *testing.T) {
	out, err := ctl(t, "validate", fig2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok: 5 users, 8 roles") {
		t.Fatalf("output = %q", out)
	}
	if _, err := ctl(t, "validate", "testdata/missing.rpl"); err == nil {
		t.Fatal("missing file validated")
	}
	if _, err := ctl(t, "validate"); err == nil {
		t.Fatal("argless validate accepted")
	}
}

func TestStats(t *testing.T) {
	out, err := ctl(t, "stats", fig2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"users", "roles", "max privilege nesting", "longest RH chain"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestFmtIdempotent(t *testing.T) {
	out1, err := ctl(t, "fmt", fig2)
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "roundtrip.rpl")
	if err := os.WriteFile(tmp, []byte(out1), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, err := ctl(t, "fmt", tmp)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("fmt not idempotent")
	}
}

func TestDot(t *testing.T) {
	out, err := ctl(t, "dot", fig2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Fatalf("dot output = %q", out[:80])
	}
}

func TestQuery(t *testing.T) {
	out, err := ctl(t, "query", fig2, "diana", "staff")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "path: diana -> staff") {
		t.Fatalf("query output = %q", out)
	}
	out, err = ctl(t, "query", fig2, "jane", "staff")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "false") {
		t.Fatalf("query output = %q", out)
	}
	// Permission target.
	out, err = ctl(t, "query", fig2, "diana", "(read, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("perm query output = %q", out)
	}
	if _, err := ctl(t, "query", fig2, "ghost", "staff"); err == nil {
		t.Fatal("unknown vertex accepted")
	}
}

func TestWeakerCLIExample5(t *testing.T) {
	out, err := ctl(t, "weaker", fig2, "grant(bob, staff)", "grant(bob, dbusr2)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "rule 2") {
		t.Fatalf("weaker output = %q", out)
	}
	// Nested derivation shows rule 3.
	out, err = ctl(t, "weaker", fig2,
		"grant(staff, grant(bob, staff))", "grant(staff, grant(bob, dbusr2))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rule 3") {
		t.Fatalf("nested weaker output = %q", out)
	}
	// Negative query.
	out, err = ctl(t, "weaker", fig2, "grant(bob, dbusr2)", "grant(bob, staff)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "false") {
		t.Fatalf("negative weaker output = %q", out)
	}
}

func TestWeakerSetCLI(t *testing.T) {
	out, err := ctl(t, "weaker-set", fig2, "grant(bob, staff)", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5 privileges") {
		t.Fatalf("weaker-set output = %q", out)
	}
	// Default bound comes from Remark 2.
	out, err = ctl(t, "weaker-set", fig2, "grant(bob, staff)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nesting bound 3") {
		t.Fatalf("default bound output = %q", out)
	}
}

func TestRunScript(t *testing.T) {
	out, err := ctl(t, "run", run2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "denied") {
		t.Fatalf("strict run should deny diana and the direct dbusr2 grant:\n%s", out)
	}
	// Count denials: diana's self-promotion AND jane's direct dbusr2 grant.
	if got := strings.Count(out, "denied"); got != 2 {
		t.Fatalf("denied count = %d, want 2:\n%s", got, out)
	}

	out, err = ctl(t, "run", "-refined", run2)
	if err != nil {
		t.Fatal(err)
	}
	// Refined mode authorizes the direct dbusr2 grant; only diana denied.
	if got := strings.Count(out, "denied"); got != 1 {
		t.Fatalf("refined denied count = %d, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, "grant(bob, staff)") {
		t.Fatalf("refined run should show the justification:\n%s", out)
	}
}

func TestRefinesCLI(t *testing.T) {
	// ψ: figure2 minus diana→staff (a refinement).
	psi := filepath.Join(t.TempDir(), "psi.rpl")
	data, err := os.ReadFile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	smaller := strings.Replace(string(data), "assign diana staff\n", "", 1)
	if err := os.WriteFile(psi, []byte(smaller), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ctl(t, "refines", fig2, psi)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Definition 6): true") {
		t.Fatalf("refines output = %q", out)
	}
	// Converse direction must report violations.
	out, err = ctl(t, "refines", psi, fig2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Definition 6): false") || !strings.Contains(out, "violation") {
		t.Fatalf("converse refines output = %q", out)
	}
	// Bounded admin check.
	out, err = ctl(t, "refines", fig2, psi, "-admin", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Definition 7") {
		t.Fatalf("admin refines output = %q", out)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if _, err := ctl(t); err == nil {
		t.Fatal("no-arg invocation accepted")
	}
	if _, err := ctl(t, "frobnicate"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	out, err := ctl(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "usage: rbacctl") {
		t.Fatalf("help output = %q", out)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"F1", "F2", "F3", "E5", "E6", "T1", "L1", "C1", "S1", "H1", "A1"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "nosuch"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestExperimentsRun executes every experiment; each one self-checks its
// claims and returns an error on divergence, so this is the top-level
// integration test of the whole reproduction.
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("experiment failed: %v\noutput so far:\n%s", err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}
