// Package cli implements the rbacctl and rbacbench command-line tools. The
// logic lives here, against io.Writer, so it is fully testable; the cmd/
// binaries are thin wrappers.
//
// The experiment registry reproduces every evaluation artifact of the paper
// (figures, worked examples, and the two formal claims) plus the scaling
// studies documented in EXPERIMENTS.md. Run one with:
//
//	rbacbench -exp F3
//	rbacbench -exp all
package cli

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"adminrefine/internal/analysis"
	"adminrefine/internal/arbac"
	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/domains"
	"adminrefine/internal/hru"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/policy"
	"adminrefine/internal/scope"
	"adminrefine/internal/storage"
	"adminrefine/internal/workload"
)

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Claim string // what the paper asserts / what shape we expect
	Run   func(w io.Writer) error
}

// Experiments returns the registry in canonical order.
func Experiments() []Experiment {
	return []Experiment{
		{"F1", "Figure 1 / Example 1: basic hospital RBAC policy",
			"Nurse reads t1,t2; staff additionally writes t3; sessions give least privilege.", runF1},
		{"F2", "Figure 2 / Example 2: administrative policy run",
			"HR appoints/dismisses via ¤/♦ privileges; unauthorized commands are consumed without effect.", runF2},
		{"F3", "Figure 3 / Example 4: the flexworker",
			"Strict Def. 5 denies Jane's direct dbusr2 assignment; the ordering authorizes it; the outcome is strictly safer.", runF3},
		{"E5", "Example 5: ordering decision procedure",
			"¤(bob,staff) Ã ¤(bob,dbusr2); nested variant via rule 3 then 2; fails after removing staff→dbusr2.", runE5},
		{"E6", "Example 6 / Remark 2: infinitely many weaker privileges",
			"Weaker-set grows without bound in nesting depth; Remark 2's RH-chain bound truncates the redundant tail.", runE6},
		{"T1", "Theorem 1: weakening yields administrative refinement",
			"Every Ãφ-weakening of a privilege assignment is an administrative refinement (zero violations expected).", runT1},
		{"L1", "Lemma 1: tractability of the ordering",
			"Decision cost grows linearly with nesting depth and stays flat in policy size (after closure).", runL1},
		{"C1", "Flexibility/safety comparison vs baselines",
			"The ordering authorizes strictly more commands than Def. 5 with zero safety violations; baselines need explicit configuration for the same coverage.", runC1},
		{"S1", "Systems: monitor throughput and WAL recovery",
			"Command processing is policy-graph bound; WAL replay reproduces state exactly.", runS1},
		{"H1", "HRU contrast (footnote 5)",
			"Bounded HRU safety explodes exponentially in subjects; the ordering decision stays polynomial.", runH1},
		{"A1", "Open problem (§6): candidate revocation orderings",
			"Every natural ♦-ordering rule is falsified under the printed Definition 7 and survives under the simulation reading — equality-only is the right call.", runA1},
		{"P1", "Incremental engine: churn speedup and concurrent snapshots",
			"Incremental closure/memo maintenance beats the rebuild-everything baseline on grant-then-query churn (≥10x at scale; the experiment gates on ≥2x to tolerate loaded CI) with identical outcomes, and snapshot reads stay consistent under writer churn.", runP1},
	}
}

func runA1(w io.Writer) error {
	const trials = 3
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "candidate rule\tdirection\ttrials\tsound (up to bounds)\n")
	for _, dir := range []core.Direction{core.DirPaper, core.DirSimulation} {
		findings := core.ExploreRevocationOrdering(dir, trials, 1, core.RevocationProbePolicy)
		for _, f := range findings {
			fmt.Fprintf(tw, "%v\t%v\t%d\t%v\n", f.Rule, f.Direction, f.Trials, f.Sound)
			if dir == core.DirPaper && f.Sound {
				tw.Flush()
				return fmt.Errorf("rule %v unexpectedly sound under the printed definition", f.Rule)
			}
			if dir == core.DirSimulation && !f.Sound {
				tw.Flush()
				return fmt.Errorf("rule %v falsified under the simulation reading: %s", f.Rule, f.Counterexample)
			}
		}
	}
	tw.Flush()

	// Show one concrete counterexample.
	findings := core.ExploreRevocationOrdering(core.DirPaper, 1, 1, core.RevocationProbePolicy)
	for _, f := range findings {
		if !f.Sound {
			fmt.Fprintf(w, "\nexample counterexample [%v]:\n  %s\n", f.Rule, f.Counterexample)
			break
		}
	}
	fmt.Fprintf(w, "\nreading: a policy that traded its exact ♦ privilege for a candidate-weaker\n")
	fmt.Fprintf(w, "one cannot track the original's revocations (printed Def. 7), but can only\n")
	fmt.Fprintf(w, "do less (informal reading) — hence the paper's equality-only ♦ ordering.\n")
	return nil
}

// RunExperiment runs one experiment by ID ("all" runs every one).
func RunExperiment(w io.Writer, id string) error {
	if id == "all" {
		for _, e := range Experiments() {
			if err := runOne(w, e); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return runOne(w, e)
		}
	}
	return fmt.Errorf("unknown experiment %q (use one of F1 F2 F3 E5 E6 T1 L1 C1 S1 H1 A1 P1, or all)", id)
}

func runOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "   claim: %s\n\n", e.Claim)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

func runF1(w io.Writer) error {
	p := policy.Figure1()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "vertex\tauthorized user privileges\n")
	vertices := []model.Vertex{
		model.User(policy.UserDiana),
		model.Role(policy.RoleNurse),
		model.Role(policy.RoleStaff),
		model.Role(policy.RoleDBUsr1),
		model.Role(policy.RoleDBUsr2),
		model.Role(policy.RolePrntUsr),
	}
	for _, v := range vertices {
		perms := p.AuthorizedPerms(v)
		strs := make([]string, len(perms))
		for i, q := range perms {
			strs[i] = q.String()
		}
		fmt.Fprintf(tw, "%s\t%v\n", v, strs)
	}
	tw.Flush()

	// Session least privilege: diana as nurse vs as staff.
	m := monitor.New(p.Clone(), monitor.ModeStrict)
	s, err := m.CreateSession(policy.UserDiana)
	if err != nil {
		return err
	}
	if err := m.ActivateRole(s.ID, policy.RoleNurse); err != nil {
		return err
	}
	nurseWrite, _ := m.CheckAccess(s.ID, "write", "t3")
	if err := m.ActivateRole(s.ID, policy.RoleStaff); err != nil {
		return err
	}
	staffWrite, _ := m.CheckAccess(s.ID, "write", "t3")
	fmt.Fprintf(w, "\nsession check: diana-as-nurse write t3 = %v, after activating staff = %v\n", nurseWrite, staffWrite)
	if nurseWrite || !staffWrite {
		return fmt.Errorf("session semantics diverge from Example 1")
	}
	return nil
}

func runF2(w io.Writer) error {
	p := policy.Figure2()
	q := command.Queue{
		command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserDiana, model.User(policy.UserDiana), model.Role(policy.RoleSO)),
		command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Grant(policy.UserAlice, model.Role(policy.RoleStaff), policy.PrivHRAssignBobStaff),
	}
	final, trace := command.RunOn(p, q, command.Strict{})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "command\toutcome\tjustification\n")
	for _, st := range trace {
		j := ""
		if st.Justification != nil {
			j = st.Justification.String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", st.Cmd, st.Outcome, j)
	}
	tw.Flush()
	removed, added := p.Diff(final)
	fmt.Fprintf(w, "\npolicy delta: +%d edges, -%d edges\n", len(added), len(removed))
	for _, e := range added {
		fmt.Fprintf(w, "  + [%s] %s\n", e.Kind, e)
	}
	for _, e := range removed {
		fmt.Fprintf(w, "  - [%s] %s\n", e.Kind, e)
	}
	return nil
}

func runF3(w io.Writer) error {
	base := policy.Figure2()
	direct := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	viaStaff := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff))

	_, strictOK := (command.Strict{}).Authorize(base, direct)
	ra := core.NewRefinedAuthorizer(base)
	just, refinedOK := ra.Authorize(base, direct)
	fmt.Fprintf(w, "cmd: %s\n  strict Def. 5: authorized=%v\n  ordering-refined: authorized=%v (via %v)\n",
		direct, strictOK, refinedOK, just)
	if strictOK || !refinedOK {
		return fmt.Errorf("authorization outcomes diverge from Example 4")
	}

	staffWorld, _ := command.RunOn(base, command.Queue{viaStaff}, command.Strict{})
	db2World := base.Clone()
	command.Step(db2World, direct, core.NewRefinedAuthorizer(db2World))

	bob := model.User(policy.UserBob)
	fmt.Fprintf(w, "\n  bob's privileges if Jane assigns him to staff:  %v\n", permList(staffWorld.AuthorizedPerms(bob)))
	fmt.Fprintf(w, "  bob's privileges if Jane assigns him to dbusr2: %v\n", permList(db2World.AuthorizedPerms(bob)))
	fmt.Fprintf(w, "  refined outcome refines strict outcome: %v (Theorem 1)\n", core.NonAdminRefines(staffWorld, db2World))
	if !core.NonAdminRefines(staffWorld, db2World) {
		return fmt.Errorf("refined outcome does not refine strict outcome")
	}
	return nil
}

func permList(ps []model.UserPrivilege) []string {
	out := make([]string, len(ps))
	for i, q := range ps {
		out[i] = q.String()
	}
	return out
}

func runE5(w io.Writer) error {
	p := policy.Figure2()
	d := core.NewDecider(p)
	bob := model.User(policy.UserBob)
	staff, db2 := model.Role(policy.RoleStaff), model.Role(policy.RoleDBUsr2)

	queries := []struct {
		name         string
		strong, weak model.Privilege
	}{
		{"flat", model.Grant(bob, staff), model.Grant(bob, db2)},
		{"nested", model.Grant(staff, model.Grant(bob, staff)), model.Grant(staff, model.Grant(bob, db2))},
	}
	for _, q := range queries {
		dv, ok := d.Explain(q.strong, q.weak)
		fmt.Fprintf(w, "%s: %s Ã %s = %v\n", q.name, q.strong, q.weak, ok)
		if !ok {
			return fmt.Errorf("query %s failed", q.name)
		}
		fmt.Fprintf(w, "%s\n", dv)
		if err := d.CheckDerivation(dv); err != nil {
			return fmt.Errorf("derivation check: %w", err)
		}
	}

	// Negative variant: remove staff → dbusr2.
	p2 := policy.Figure2()
	p2.RemoveInherit(policy.RoleStaff, policy.RoleDBUsr2)
	d2 := core.NewDecider(p2)
	neg := d2.Weaker(model.Grant(staff, model.Grant(bob, staff)), model.Grant(staff, model.Grant(bob, db2)))
	fmt.Fprintf(w, "after removing staff→dbusr2: nested query = %v (want false)\n", neg)
	if neg {
		return fmt.Errorf("negative query unexpectedly held")
	}
	return nil
}

func runE6(w io.Writer) error {
	p := policy.New()
	p.DeclareRole("r1")
	p.DeclareRole("r2")
	if _, err := p.GrantPrivilege("r2", model.Grant(model.Role("r1"), model.Role("r2"))); err != nil {
		return err
	}
	d := core.NewDecider(p)
	base := model.Grant(model.Role("r1"), model.Role("r2"))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "nesting bound\t|weaker set|\tdeepest term\n")
	prev := 0
	for bound := 1; bound <= 6; bound++ {
		ws := d.WeakerSet(base, bound)
		deepest := ws[len(ws)-1]
		fmt.Fprintf(tw, "%d\t%d\t%s\n", bound, len(ws), deepest)
		if len(ws) <= prev {
			tw.Flush()
			return fmt.Errorf("weaker set stopped growing at bound %d", bound)
		}
		prev = len(ws)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nRemark 2 default bound (depth + longest RH chain) = %d -> |weaker set| = %d\n",
		core.DefaultNestBound(p, base), len(d.WeakerSet(base, core.DefaultNestBound(p, base))))
	return nil
}

func runT1(w io.Writer) error {
	const trials = 60
	validated, simulatedQueues := 0, 0
	violations := 0
	for seed := int64(0); validated < trials && seed < trials*4; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Users, cfg.Roles, cfg.Perms, cfg.AdminAssignments = 4, 8, 5, 6
		phi := workload.Random(cfg)
		wk, ok := pickWeakening(phi)
		if !ok {
			continue
		}
		validated++
		queue := workload.Queue(phi, 4, seed)
		phiF, psiF, _, err := core.SimulateWeakening(phi, wk, queue)
		if err != nil {
			return err
		}
		simulatedQueues++
		if !core.NonAdminRefines(phiF, psiF) {
			violations++
		}
	}
	fmt.Fprintf(w, "random weakenings validated: %d (with %d simulated queues)\n", validated, simulatedQueues)
	fmt.Fprintf(w, "refinement violations: %d (Theorem 1 predicts 0)\n", violations)

	// Exhaustive bounded check of Definition 7 on the running example.
	phi := policy.Figure2()
	wk := core.Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)),
	}
	psi, err := core.WeakenAssignment(phi, wk)
	if err != nil {
		return err
	}
	alpha := core.RelevantCommands(phi, psi, []string{policy.UserJane, policy.UserAlice})
	for _, dir := range []core.Direction{core.DirPaper, core.DirSimulation} {
		res := core.BoundedAdminRefines(phi, psi, core.BoundedAdminOptions{MaxLen: 2, Alphabet: alpha, Direction: dir})
		fmt.Fprintf(w, "bounded Def. 7 on Figure 2 weakening [%v]: holds=%v over %d queues (truncated=%v)\n",
			dir, res.Holds, res.QueuesExplored, res.Truncated)
		if !res.Holds {
			return fmt.Errorf("bounded Definition 7 check failed: %v", res.Counterexample)
		}
	}
	if violations != 0 {
		return fmt.Errorf("%d Theorem 1 violations", violations)
	}
	return nil
}

// pickWeakening finds a weakenable assignment in the policy.
func pickWeakening(p *policy.Policy) (core.Weakening, bool) {
	d := core.NewDecider(p)
	for _, e := range p.EdgesOf(policy.EdgePA) {
		pv, ok := e.To.(model.AdminPrivilege)
		if !ok || pv.Op != model.OpGrant {
			continue
		}
		ws := d.WeakerSet(pv, pv.Depth()+1)
		if len(ws) < 2 {
			continue
		}
		return core.Weakening{Role: e.From.String(), Strong: pv, Weak: ws[len(ws)/2]}, true
	}
	return core.Weakening{}, false
}

// timeIt reports the median of n runs of f.
func timeIt(n int, f func()) time.Duration {
	times := make([]time.Duration, n)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func runL1(w io.Writer) error {
	// Depth sweep at fixed policy size.
	const chainLen = 64
	p := workload.Chain(chainLen)
	d := core.NewDecider(p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "nesting depth\tdecision time (median)\tresult\n")
	var depthTimes []time.Duration
	for _, depth := range []int{1, 2, 4, 8, 16, 32, 64} {
		strong, weak := workload.NestedPair(chainLen, depth)
		var res bool
		med := timeIt(21, func() {
			d.ResetMemo()
			res = d.Weaker(strong, weak)
		})
		depthTimes = append(depthTimes, med)
		fmt.Fprintf(tw, "%d\t%v\t%v\n", depth, med, res)
		if !res {
			tw.Flush()
			return fmt.Errorf("depth %d pair not ordered", depth)
		}
	}
	tw.Flush()
	// Sanity: cost at depth 64 is far from 64x... it should be roughly
	// linear; require it stays under depth-1 cost times 64*8 (generous CI
	// slack) to catch accidental exponential blow-up.
	if depthTimes[len(depthTimes)-1] > depthTimes[0]*64*8 {
		return fmt.Errorf("depth scaling looks super-linear: %v -> %v", depthTimes[0], depthTimes[len(depthTimes)-1])
	}

	// Policy-size sweep at fixed depth.
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "roles\tclosure build\tdecision time (median, depth 8)\n")
	for _, n := range []int{16, 64, 256, 1024} {
		p := workload.Chain(n)
		var d *core.Decider
		build := timeIt(5, func() { d = core.NewDecider(p) })
		strong, weak := workload.NestedPair(n, 8)
		med := timeIt(21, func() {
			d.ResetMemo()
			d.Weaker(strong, weak)
		})
		fmt.Fprintf(tw, "%d\t%v\t%v\n", n, build, med)
	}
	tw.Flush()
	return nil
}

func runC1(w io.Writer) error {
	const nDepts = 4
	p := workload.Hospital(nDepts)

	// Our model: strict vs refined flexibility over Jane's UA universe.
	universe := analysis.UAUniverse(p, "jane")
	rep := analysis.Flexibility(p, universe)

	// ARBAC97 with point ranges mirroring HR's explicit privileges.
	sysPoint := arbac.NewSystem(p.Clone())
	sysPoint.AddAdminRole("HRadmin")
	sysPoint.AssignAdmin("jane", "HRadmin")
	for dpt := 0; dpt < nDepts; dpt++ {
		staff := fmt.Sprintf("staff_%d", dpt)
		sysPoint.Assign = append(sysPoint.Assign, arbac.CanAssign{
			AdminRole: "HRadmin", Range: arbac.Range{Low: staff, High: staff},
		})
	}
	arbacPoint := countARBAC(sysPoint, p, "jane")

	// ARBAC97 with hand-widened down-ranges (the configuration burden the
	// ordering removes).
	sysRange := arbac.NewSystem(p.Clone())
	sysRange.AddAdminRole("HRadmin")
	sysRange.AssignAdmin("jane", "HRadmin")
	for dpt := 0; dpt < nDepts; dpt++ {
		sysRange.Assign = append(sysRange.Assign, arbac.CanAssign{
			AdminRole: "HRadmin",
			Range:     arbac.Range{Low: fmt.Sprintf("dbusr1_%d", dpt), High: fmt.Sprintf("staff_%d", dpt)},
		})
	}
	arbacRange := countARBAC(sysRange, p, "jane")

	// Administrative scope and domains for jane and alice.
	scopeJane := countScope(p, "jane")
	scopeAlice := countScope(p, "alice")

	ds := domains.NewSystem(p.Clone())
	if err := ds.AddDomain("security", "SO", "", "SO", "HR"); err != nil {
		return err
	}
	for dpt := 0; dpt < nDepts; dpt++ {
		members := []string{
			fmt.Sprintf("staff_%d", dpt), fmt.Sprintf("nurse_%d", dpt),
			fmt.Sprintf("dbusr1_%d", dpt), fmt.Sprintf("dbusr2_%d", dpt), fmt.Sprintf("dbusr3_%d", dpt),
		}
		if err := ds.AddDomain(fmt.Sprintf("dept_%d", dpt), members[0], "security", members...); err != nil {
			return err
		}
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	domJane := countDomains(ds, p, "jane")
	domAlice := countDomains(ds, p, "alice")

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tallowed (user,role) pairs for jane\tnotes\n")
	fmt.Fprintf(tw, "Def. 5 strict\t%d\tper-user privileges, no implicit authority\n", rep.Strict)
	fmt.Fprintf(tw, "ordering-refined (paper)\t%d\tderived down-set authority, %d unsafe extras\n", rep.Refined, rep.UnsafeExtras)
	fmt.Fprintf(tw, "ARBAC97 point ranges\t%d\tany user into staff_d: coarser per user, no down-set\n", arbacPoint)
	fmt.Fprintf(tw, "ARBAC97 widened ranges\t%d\tneeds per-department manual range configuration\n", arbacRange)
	fmt.Fprintf(tw, "admin scope (Crampton)\t%d\tjane holds no hierarchy position (alice: %d)\n", scopeJane, scopeAlice)
	fmt.Fprintf(tw, "role-graph domains (Wang-Osborn)\t%d\tjane owns no domain (alice: %d)\n", domJane, domAlice)
	tw.Flush()

	fmt.Fprintf(w, "\nuniverse size: %d; refined/strict gain: %.1fx; safety violations: %d (Theorem 1 predicts 0)\n",
		rep.Universe, float64(rep.Refined)/float64(max(rep.Strict, 1)), rep.UnsafeExtras)
	if rep.UnsafeExtras != 0 {
		return fmt.Errorf("unsafe extras present")
	}
	if rep.Refined <= rep.Strict {
		return fmt.Errorf("no flexibility gain measured")
	}
	return nil
}

func countARBAC(sys *arbac.System, p *policy.Policy, actor string) int {
	n := 0
	for _, u := range p.Users() {
		for _, r := range p.Roles() {
			if _, ok := sys.CanAssignUser(actor, u, r); ok {
				n++
			}
		}
	}
	return n
}

func countScope(p *policy.Policy, actor string) int {
	n := 0
	for _, u := range p.Users() {
		for _, r := range p.Roles() {
			if scope.CanAssignUser(p, actor, r) {
				n++
			}
		}
		_ = u
	}
	return n
}

func countDomains(ds *domains.System, p *policy.Policy, actor string) int {
	n := 0
	for range p.Users() {
		for _, r := range p.Roles() {
			if ds.Administers(actor, r) {
				n++
			}
		}
	}
	return n
}

func runS1(w io.Writer) error {
	p := workload.Hospital(8)
	queue := workload.Queue(p, 2000, 11)

	for _, mode := range []monitor.Mode{monitor.ModeStrict, monitor.ModeRefined} {
		m := monitor.New(p.Clone(), mode)
		start := time.Now()
		m.SubmitQueue(queue)
		el := time.Since(start)
		fmt.Fprintf(w, "monitor [%s]: %d commands in %v (%.0f cmds/s)\n",
			mode, len(queue), el.Round(time.Microsecond), float64(len(queue))/el.Seconds())
	}

	// WAL: append + recover.
	dir, err := tempDir()
	if err != nil {
		return err
	}
	st, _, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return err
	}
	if err := st.Compact(p); err != nil {
		return err
	}
	m := monitor.New(p.Clone(), monitor.ModeStrict)
	st.Attach(m, nil)
	start := time.Now()
	m.SubmitQueue(queue)
	appendTime := time.Since(start)
	want := m.Policy()
	st.Close()

	start = time.Now()
	st2, got, rec, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return err
	}
	replayTime := time.Since(start)
	st2.Close()
	fmt.Fprintf(w, "WAL: %d records appended in %v; recovery replayed %d records in %v; state match=%v\n",
		len(queue), appendTime.Round(time.Microsecond), rec.Records, replayTime.Round(time.Microsecond), got.Equal(want))
	if !got.Equal(want) {
		return fmt.Errorf("recovered state diverged")
	}
	return nil
}

func runH1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "HRU subjects\tstates explored (depth 3)\tsearch time\n")
	prev := 0
	for _, n := range []int{2, 3, 4, 5} {
		sys := hru.GrantSystem([]hru.Right{"read"})
		subjects := make([]string, n)
		for i := range subjects {
			subjects[i] = fmt.Sprintf("s%d", i)
		}
		sys.Subjects = subjects
		sys.Objects = []string{"file"}
		m := hru.Matrix{}
		m.Enter("s0", "file", "grant")
		m.Enter("s0", "file", "read")
		start := time.Now()
		res := hru.BoundedSafety(sys, m, "absent", "file", "read", 3)
		el := time.Since(start)
		fmt.Fprintf(tw, "%d\t%d\t%v\n", n, res.StatesExplored, el.Round(time.Microsecond))
		if res.StatesExplored <= prev {
			tw.Flush()
			return fmt.Errorf("HRU state count did not grow")
		}
		prev = res.StatesExplored
	}
	tw.Flush()

	// Matched-size ordering decision for contrast.
	p := workload.Chain(5)
	d := core.NewDecider(p)
	strong, weak := workload.NestedPair(5, 3)
	med := timeIt(21, func() {
		d.ResetMemo()
		d.Weaker(strong, weak)
	})
	fmt.Fprintf(w, "\nordering decision on a matched-size policy (5 roles, depth 3): %v (polynomial, Lemma 1)\n", med)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
