package cli

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/wire"
	"adminrefine/internal/workload"
)

// WireTarget drives a live rbacd over the binary wire protocol — the
// workload.Target the Wire* bench series measure against the HTTP Serve*
// baseline. Reads go to Read, writes to Write (same split as HTTPTarget);
// session checks lazily create one session per tenant on the read node and
// cache it. Requests and responses are pooled so the client side stays as
// allocation-light as the server it is measuring.
type WireTarget struct {
	Read  *wire.Client
	Write *wire.Client
	// SessionUser/SessionRoles shape the per-tenant check session; defaults
	// match workload.ChurnPolicy (u0 activating c0000), like HTTPTarget.
	SessionUser  string
	SessionRoles []string

	sessions sync.Map // tenant name -> uint64 session id
	shed     atomic.Uint64
}

// ShedCount reports how many requests the server refused with an overload,
// deadline or unavailable status (the binary twins of 429/503-with-retry).
func (t *WireTarget) ShedCount() uint64 { return t.shed.Load() }

func (t *WireTarget) write() *wire.Client {
	if t.Write != nil {
		return t.Write
	}
	return t.Read
}

// wireCall is a pooled request/response pair; Reset keeps slice capacity so
// steady-state encode allocates nothing.
type wireCall struct {
	req  wire.Request
	resp wire.Response
}

var wireCallPool = sync.Pool{New: func() any { return new(wireCall) }}

// mapErr translates the client's typed errors into the harness sentinels:
// staleness to ErrStale, the overload family to ErrShed, everything else
// surfaces as the *api.Error itself.
func (t *WireTarget) mapErr(err error) error {
	var e *api.Error
	if errors.As(err, &e) {
		switch e.Code {
		case api.CodeStaleGeneration:
			return workload.ErrStale
		case api.CodeOverloaded, api.CodeDeadline, api.CodeUnavailable:
			t.shed.Add(1)
			return fmt.Errorf("wire %s: %w", e.Code, workload.ErrShed)
		}
	}
	return err
}

// session returns the tenant's cached check session, creating it over the
// wire on first use (minGen makes a follower replicate the tenant first).
func (t *WireTarget) session(tenantName string, minGen uint64) (uint64, error) {
	if v, ok := t.sessions.Load(tenantName); ok {
		return v.(uint64), nil
	}
	user, roles := t.SessionUser, t.SessionRoles
	if user == "" {
		user = "u0"
	}
	if roles == nil {
		roles = []string{"c0000"}
	}
	c := wireCallPool.Get().(*wireCall)
	defer wireCallPool.Put(c)
	c.req.Reset()
	c.req.Op = wire.OpSessionCreate
	c.req.Tenant = tenantName
	c.req.MinGen = minGen
	c.req.User = user
	c.req.Roles = append(c.req.Roles[:0], roles...)
	if err := t.Read.Do(&c.req, &c.resp); err != nil {
		return 0, fmt.Errorf("create session for %s: %w", tenantName, t.mapErr(err))
	}
	actual, _ := t.sessions.LoadOrStore(tenantName, c.resp.Session)
	return actual.(uint64), nil
}

// Do implements workload.Target over the binary protocol.
func (t *WireTarget) Do(op *workload.ServeOp, minGen uint64) (uint64, error) {
	c := wireCallPool.Get().(*wireCall)
	defer wireCallPool.Put(c)
	req, resp := &c.req, &c.resp

	switch op.Kind {
	case workload.OpSubmit:
		req.Reset()
		req.Op = wire.OpSubmit
		req.Tenant = op.Tenant
		req.Cmds = append(req.Cmds[:0], op.Cmds...)
		if err := t.write().Do(req, resp); err != nil {
			return 0, t.mapErr(err)
		}
		if len(resp.Steps) != len(op.Cmds) {
			return 0, fmt.Errorf("submit %s: %d results for %d commands", op.Tenant, len(resp.Steps), len(op.Cmds))
		}
		for i := range resp.Steps {
			if resp.Steps[i].Outcome != wire.OutcomeApplied {
				return 0, fmt.Errorf("submit %s cmd %d: outcome %s", op.Tenant, i, wire.OutcomeName(resp.Steps[i].Outcome))
			}
		}
		return resp.Generation, nil

	case workload.OpAuthorize:
		req.Reset()
		req.Op = wire.OpAuthorize
		req.Tenant = op.Tenant
		req.MinGen = minGen
		req.Cmds = append(req.Cmds[:0], op.Cmds...)
		if err := t.Read.Do(req, resp); err != nil {
			return 0, t.mapErr(err)
		}
		if len(resp.Authz) != len(op.Cmds) {
			return 0, fmt.Errorf("authorize %s: %d results for %d commands", op.Tenant, len(resp.Authz), len(op.Cmds))
		}
		for i := range resp.Authz {
			if !resp.Authz[i].Allowed {
				return 0, fmt.Errorf("authorize %s cmd %d denied", op.Tenant, i)
			}
		}
		return resp.Generation, nil

	case workload.OpCheck:
		sess, err := t.session(op.Tenant, minGen)
		if err != nil {
			return 0, err
		}
		req.Reset()
		req.Op = wire.OpCheck
		req.Tenant = op.Tenant
		req.MinGen = minGen
		req.Session = sess
		req.Checks = req.Checks[:0]
		for _, q := range op.Checks {
			req.Checks = append(req.Checks, wire.Check{Action: q.Action, Object: q.Object})
		}
		if err := t.Read.Do(req, resp); err != nil {
			return 0, t.mapErr(err)
		}
		if len(resp.Allowed) != len(op.Checks) {
			return 0, fmt.Errorf("check %s: %d results for %d probes", op.Tenant, len(resp.Allowed), len(op.Checks))
		}
		for i, ok := range resp.Allowed {
			if !ok {
				return 0, fmt.Errorf("check %s probe %d denied", op.Tenant, i)
			}
		}
		return resp.Generation, nil
	}
	return 0, fmt.Errorf("unknown op kind %v", op.Kind)
}

// wireListen serves node's machinery on a binary loopback listener and
// returns its address plus a closer.
func wireListen(node *serveNode) (addr string, closer func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	wsrv := wire.NewServer(node.srv.WireConfig())
	go wsrv.Serve(ln)
	return ln.Addr().String(), func() { wsrv.Close() }, nil
}

// runWirePass stands up a fresh stack (same mix, same durability) with the
// binary listener alongside, drives the identical open-loop schedule through
// a WireTarget, and returns Wire* BENCH entries. A fresh stack — rather than
// reusing the HTTP pass's — keeps the submit stream's applied-only assertion
// intact (replaying the slab against already-granted state would answer
// nochange) and prices both planes from the same cold-start line.
func runWirePass(progress io.Writer, opts ServeBenchOptions, mix workload.ServeMix) (map[string]BenchResult, error) {
	read, write, cleanup, err := serveStack(mix, opts.Sync, opts.Follower)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	readAddr, closeRead, err := wireListen(read)
	if err != nil {
		return nil, err
	}
	defer closeRead()
	writeAddr := readAddr
	if write != read {
		var closeWrite func()
		if writeAddr, closeWrite, err = wireListen(write); err != nil {
			return nil, err
		}
		defer closeWrite()
	}

	copts := wire.ClientOptions{Conns: 4, CallTimeout: 30 * time.Second}
	readClient, err := wire.Dial(readAddr, copts)
	if err != nil {
		return nil, err
	}
	defer readClient.Close()
	// Submits get their own pool even against a single node: a pipelined
	// connection answers FIFO, so one fsync-bound submit would otherwise
	// head-of-line-block every read queued behind it and leak the commit
	// latency tail into the read histograms.
	writeClient, err := wire.Dial(writeAddr, copts)
	if err != nil {
		return nil, err
	}
	defer writeClient.Close()
	target := &WireTarget{Read: readClient, Write: writeClient}

	slab := int(opts.Rate*opts.Duration.Seconds()) + opts.Workers
	ops := workload.GenServeOps(mix, slab)
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate:     opts.Rate,
		Duration: opts.Duration,
		Workers:  opts.Workers,
	}, ops, target)
	if err != nil {
		return nil, err
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("wire bench completed no ops")
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("wire bench: %d/%d ops failed (%d stale)", res.Errors, res.Completed, res.Stale)
	}

	out := make(map[string]BenchResult)
	for kind, ks := range res.Kinds {
		name := "Wire" + strings.TrimPrefix(serveEntryName(kind, opts.Sync), "Serve")
		for _, q := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
			out[name+"/"+q.label] = BenchResult{
				NsPerOp: float64(ks.Hist.Quantile(q.q)),
				N:       int(ks.Count),
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-28s %s\n", name, ks.Hist.Summary("ms", 1e6))
		}
	}
	out["WireThroughput/achieved"] = BenchResult{
		NsPerOp: 1e9 / res.Achieved,
		N:       int(res.Completed),
	}
	if progress != nil {
		fmt.Fprintf(progress, "wire: offered %.0f ops/s, achieved %.0f ops/s, %d ops, %d dropped, %d stale\n",
			res.Offered, res.Achieved, res.Completed, res.Dropped(), res.Stale)
	}
	return out, nil
}
