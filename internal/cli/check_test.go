package cli

import (
	"strings"
	"testing"

	"adminrefine/internal/monitor"
	"adminrefine/internal/parser"
)

const checksFile = "testdata/flexworker-checks.rpl"

func TestCheckSubcommandRefined(t *testing.T) {
	out, err := ctl(t, "check", "-refined", checksFile)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "8 checks, 0 failed") {
		t.Fatalf("output = %q", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("unexpected failures:\n%s", out)
	}
}

func TestCheckSubcommandStrictFails(t *testing.T) {
	// In strict mode Jane's do-command is denied, so the first assertion
	// (bob reaches write t3) fails while the pure ordering facts still hold.
	out, err := ctl(t, "check", checksFile)
	if err == nil {
		t.Fatalf("strict check unexpectedly passed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "1 failed") {
		t.Fatalf("output = %q", out)
	}
	if !strings.Contains(out, "expect reaches bob (write,t3)") {
		t.Fatalf("failure not attributed to the right check:\n%s", out)
	}
}

func TestCheckSubcommandErrors(t *testing.T) {
	if _, err := ctl(t, "check"); err == nil {
		t.Fatal("argless check accepted")
	}
	if _, err := ctl(t, "check", fig2); err == nil {
		t.Fatal("check of file without expects accepted")
	}
}

func TestEvaluateChecksAPI(t *testing.T) {
	doc, err := parser.ParseFile(checksFile)
	if err != nil {
		t.Fatal(err)
	}
	strict := EvaluateChecks(doc, monitor.ModeStrict)
	refined := EvaluateChecks(doc, monitor.ModeRefined)
	if len(strict) != 8 || len(refined) != 8 {
		t.Fatalf("result counts %d/%d", len(strict), len(refined))
	}
	// EvaluateChecks must not mutate the document's policy.
	if doc.Policy.Reaches(doc.Checks[0].From, doc.Checks[0].To) {
		t.Fatal("document policy mutated by evaluation")
	}
	passStrict, passRefined := 0, 0
	for i := range strict {
		if strict[i].Pass {
			passStrict++
		}
		if refined[i].Pass {
			passRefined++
		}
	}
	if passStrict != 7 || passRefined != 8 {
		t.Fatalf("pass counts strict=%d refined=%d", passStrict, passRefined)
	}
}

func TestCanAssignCLI(t *testing.T) {
	out, err := ctl(t, "can-assign", fig2, "jane", "bob")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"staff", "strict (Def. 5)", "dbusr2", "ordering (§4.1)", "grant(bob, staff)"} {
		if !strings.Contains(out, want) {
			t.Errorf("can-assign output missing %q:\n%s", want, out)
		}
	}
	out, err = ctl(t, "can-assign", fig2, "diana", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "may not assign") {
		t.Errorf("empty result output = %q", out)
	}
	if _, err := ctl(t, "can-assign", fig2, "ghost", "bob"); err == nil {
		t.Error("unknown actor accepted")
	}
	if _, err := ctl(t, "can-assign", fig2, "jane", "phantom"); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := ctl(t, "can-assign", fig2); err == nil {
		t.Error("missing args accepted")
	}
}

func TestWeakenCLI(t *testing.T) {
	// Declarative file: prints the weakened policy.
	out, err := ctl(t, "weaken", fig2, "HR", "grant(bob, staff)", "grant(bob, dbusr2)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "grant HR grant(bob, dbusr2)") {
		t.Fatalf("weakened policy missing new assignment:\n%s", out)
	}
	if strings.Contains(out, "grant HR grant(bob, staff)") {
		t.Fatalf("weakened policy retains old assignment:\n%s", out)
	}

	// Script file: prints the Theorem 1 simulation.
	out, err = ctl(t, "weaken", run2, "HR", "grant(bob, staff)", "grant(bob, dbusr2)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"translate", "mirror", "Theorem 1): true"} {
		if !strings.Contains(out, want) {
			t.Errorf("simulation output missing %q:\n%s", want, out)
		}
	}

	// Non-weaker replacement is rejected.
	if _, err := ctl(t, "weaken", fig2, "HR", "grant(bob, dbusr2)", "grant(bob, staff)"); err == nil {
		t.Fatal("non-weaker replacement accepted")
	}
	if _, err := ctl(t, "weaken", fig2, "HR"); err == nil {
		t.Fatal("missing args accepted")
	}
}
