package cli

import (
	"encoding/json"
	"testing"
)

func TestBenchSpecsRegistry(t *testing.T) {
	specs := BenchSpecs()
	if len(specs) < 3 {
		t.Fatalf("only %d bench specs registered", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.F == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate bench spec %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{
		"IncrementalGrant/engine-incremental/roles=1024",
		"IncrementalGrant/seed-rebuild/roles=1024",
		"SnapshotAuthorizeParallel/roles=256",
	} {
		if !seen[want] {
			t.Fatalf("missing bench spec %q", want)
		}
	}
}

func TestBenchResultJSONShape(t *testing.T) {
	data, err := json.Marshal(map[string]BenchResult{
		"X": {NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 3, N: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]map[string]float64
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ns_per_op", "allocs_per_op"} {
		if _, ok := back["X"][key]; !ok {
			t.Fatalf("BENCH json missing %q field: %s", key, data)
		}
	}
}
