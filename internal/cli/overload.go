package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/fault"
	"adminrefine/internal/policy"
	"adminrefine/internal/server"
	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// OverloadBenchOptions configures the saturation proof: a steady phase
// measures the system's healthy latency yardstick, then an overload phase
// offers Multiplier× that rate against deliberately bounded capacity and
// asserts the degradation contract — excess load shed with 429/503 (never
// hard errors), admitted latency bounded relative to steady state, shed
// accounting reconciling between client and server, and every acknowledged
// write still readable afterwards.
type OverloadBenchOptions struct {
	// Rate is the steady-phase offered arrival rate in ops/sec (default 150).
	Rate float64
	// Multiplier scales Rate for the overload phase (default 3).
	Multiplier float64
	// Duration is each phase's load window (default 4s).
	Duration time.Duration
	// Workers is the harness issuer count (default 24).
	Workers int
	// Seed fixes the op slab and the fsync latency schedule (default 1).
	Seed int64
	// P99Floor is the minimum admitted-p99 bound, guarding the 5×-steady
	// comparison against a near-zero steady p99 on a fast machine (default
	// 400ms).
	P99Floor time.Duration
}

func (o *OverloadBenchOptions) fill() {
	if o.Rate <= 0 {
		o.Rate = 150
	}
	if o.Multiplier <= 1 {
		o.Multiplier = 3
	}
	if o.Duration <= 0 {
		o.Duration = 4 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 24
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.P99Floor <= 0 {
		o.P99Floor = 400 * time.Millisecond
	}
}

// overloadMix is the storm shape: a handful of tenants under a write-heavy
// administrative churn (40% durable submits), the workload that saturates
// the fsync-bound write path fastest.
func overloadMix(seed int64) workload.ServeMix {
	cfg := workload.DefaultMultiTenant(seed)
	cfg.Tenants = 4
	cfg.SubmitFrac = 0.40
	return workload.ServeMix{MultiTenantConfig: cfg, CheckFrac: 0.20, RYWFrac: 0.25, Batch: 1}
}

// overloadAdmission bounds the stack's capacity so Multiplier× the steady
// rate reliably exceeds it: one read slot shedding on arrival (reads shed
// first, cheaply, with 429) and one write slot with a short queue (writes
// queue briefly, then shed with 503).
func overloadAdmission() admission.Config {
	return admission.Config{
		Read:  admission.Limits{MaxInFlight: 1, MaxQueue: 0},
		Write: admission.Limits{MaxInFlight: 1, MaxQueue: 8},
	}
}

// overloadStack stands up the admission-limited system under storm: a
// primary whose fsyncs carry a seeded latency schedule (internal/fault), so
// the write path's capacity is deterministic enough that Multiplier× the
// steady rate saturates it on any machine.
func overloadStack(mix workload.ServeMix, seed int64) (*serveNode, error) {
	dir, err := os.MkdirTemp("", "rbacbench-overload")
	if err != nil {
		return nil, err
	}
	// Every fsync stalls up to 12ms on a schedule keyed by mutation index:
	// replayable (same seed, same storm) and bounding write throughput to
	// roughly a hundred commit groups per second — a capacity the storm's
	// submit rate decisively exceeds on any machine.
	plan := fault.SeededLatencyPlan(seed, 1<<20, 0, 1.0, 12*time.Millisecond)
	fs := fault.NewFS(plan)
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)
	reg := tenant.New(tenant.Options{
		Dir:              dir,
		Mode:             engine.Refined,
		Sync:             true,
		Bootstrap:        func(name string) *policy.Policy { return g.Bootstrap(name) },
		MaxQueuedSubmits: 256,
		OpenFile: func(path string, flag int, perm os.FileMode) (storage.File, error) {
			return fs.Open(path, flag, perm)
		},
	})
	for i := 0; i < mix.Tenants; i++ {
		if _, err := reg.Stats(g.TenantName(i)); err != nil {
			reg.Close()
			os.RemoveAll(dir)
			return nil, err
		}
	}
	srv := server.NewWithConfig(server.Config{
		Registry:       reg,
		MaxRequestTime: 2 * time.Second,
		Admission:      admission.New(overloadAdmission()),
	})
	node, err := listenNode(srv, reg)
	if err != nil {
		reg.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	node.extra = func() { os.RemoveAll(dir) }
	return node, nil
}

// statsOverload fetches the node-level overload block from /stats.
func statsOverload(base, tenantName string) (map[string]any, error) {
	resp, err := http.Get(base + "/v1/tenants/" + tenantName + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var body struct {
		Overload map[string]any `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if body.Overload == nil {
		return nil, fmt.Errorf("stats response has no overload block")
	}
	return body.Overload, nil
}

// shedTotal sums the server's shed counters out of the overload block.
func shedTotal(ov map[string]any) uint64 {
	total := 0.0
	for _, k := range []string{"shed_read", "shed_write", "shed_deadline", "breaker_fast_fail"} {
		if v, ok := ov[k].(float64); ok {
			total += v
		}
	}
	return uint64(total)
}

// runPhase drives one open-loop phase and renders its per-kind summary.
func runPhase(progress io.Writer, label string, rate float64, opts OverloadBenchOptions, ops []workload.ServeOp, target *HTTPTarget) (*workload.OpenLoopResult, error) {
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate:     rate,
		Duration: opts.Duration,
		Workers:  opts.Workers,
	}, ops, target)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "[%s] offered %.0f ops/s, achieved %.0f ops/s, %d completed, %d shed, %d errors (%d stale)\n",
			label, res.Offered, res.Achieved, res.Completed, res.Shed, res.Errors, res.Stale)
		for kind, ks := range res.Kinds {
			admitted := ks.Count - ks.Shed
			fmt.Fprintf(progress, "[%s] %-10s admitted %5d shed %5d  %s\n",
				label, kind, admitted, ks.Shed, ks.Hist.Summary("ms", 1e6))
		}
	}
	return res, nil
}

// RunOverloadBench is the saturation proof behind `rbacbench -serve
// -overload`: phase A measures steady-state admitted latency, phase B offers
// Multiplier× that rate against the same deliberately capacity-bounded
// stack, and the run fails unless the degradation contract holds:
//
//   - excess load is shed with 429 (reads) and 503 (writes), never hard
//     errors — admitted ops all succeed in both phases;
//   - admitted p99 in the storm stays within 5× the steady-state p99 (or
//     P99Floor, whichever is larger) for every op kind — shedding, not
//     collapsing;
//   - the server's /stats shed counters reconcile exactly with the client's
//     count of 429/503 answers;
//   - every write acknowledged during either phase is still readable at its
//     acked generation after the storm (zero acknowledged writes lost).
//
// Returned entries (OverloadSteady*/OverloadStorm* quantiles, OverloadShed
// counts) go to -serve-json for the record; they are not benchdiff-gated.
func RunOverloadBench(progress io.Writer, opts OverloadBenchOptions) (map[string]BenchResult, error) {
	opts.fill()
	mix := overloadMix(opts.Seed)
	node, err := overloadStack(mix, opts.Seed)
	if err != nil {
		return nil, err
	}
	defer node.close()
	target := NewHTTPTarget(node.url)
	target.Client = &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Workers * 2,
		},
	}

	// One continuous slab sliced across the phases: the storm must not
	// replay the steady phase's grants (a duplicate grant is "nochange" —
	// an op error, not a shed).
	stormRate := opts.Rate * opts.Multiplier
	steadyN := int(opts.Rate*opts.Duration.Seconds()) + opts.Workers
	stormN := int(stormRate*opts.Duration.Seconds()) + opts.Workers
	slab := workload.GenServeOps(mix, steadyN+stormN)

	steady, err := runPhase(progress, "steady", opts.Rate, opts, slab[:steadyN], target)
	if err != nil {
		return nil, err
	}
	if steady.Errors > 0 {
		return nil, fmt.Errorf("overload bench: steady phase had %d hard errors (%d stale)", steady.Errors, steady.Stale)
	}
	steady429, steady503 := target.ShedCounts()

	// The storm is the open-loop harness at Multiplier× rate PLUS a greedy
	// closed-loop client hammering the read path flat out: the misbehaving
	// tenant whose flood the admission layer exists to contain. The harness
	// measures what a well-behaved client experiences while the flood runs.
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)
	hammerStop := make(chan struct{})
	hammerWG := readHammer(hammerStop, target, g.TenantName(0), 4, []command.Command{
		workload.ChurnGrant(0, mix.Users, mix.Roles),
	})
	storm, err := runPhase(progress, "storm", stormRate, opts, slab[steadyN:], target)
	close(hammerStop)
	hammerWG.Wait()
	if err != nil {
		return nil, err
	}
	total429, total503 := target.ShedCounts()
	storm429, storm503 := total429-steady429, total503-steady503

	// Contract 1: excess load shed with the right codes, admitted ops clean.
	if storm.Errors > 0 {
		return nil, fmt.Errorf("overload bench: %d admitted ops failed during the storm (%d stale) — sheds must be 429/503, not errors", storm.Errors, storm.Stale)
	}
	if storm.Shed == 0 {
		return nil, fmt.Errorf("overload bench: %.0fx offered rate shed nothing from the harness — admission limits are not engaging", opts.Multiplier)
	}
	if storm429 == 0 {
		return nil, fmt.Errorf("overload bench: storm shed but produced no 429s — reads are not shedding first")
	}
	if storm503 == 0 {
		return nil, fmt.Errorf("overload bench: storm shed but produced no 503s — the write path is not shedding")
	}

	// Contract 2: admitted latency bounded — shed, don't collapse.
	out := make(map[string]BenchResult)
	for kind, sks := range steady.Kinds {
		admitted := sks.Count - sks.Shed
		if admitted <= 0 {
			continue
		}
		steadyP99 := time.Duration(sks.Hist.Quantile(0.99))
		bound := 5 * steadyP99
		if bound < opts.P99Floor {
			bound = opts.P99Floor
		}
		out["OverloadSteady"+serveEntryName(kind, true)+"/p99"] = BenchResult{NsPerOp: float64(steadyP99), N: int(admitted)}
		oks, ok := storm.Kinds[kind]
		if !ok || oks.Count == oks.Shed {
			continue
		}
		stormP99 := time.Duration(oks.Hist.Quantile(0.99))
		out["OverloadStorm"+serveEntryName(kind, true)+"/p99"] = BenchResult{NsPerOp: float64(stormP99), N: int(oks.Count - oks.Shed)}
		if stormP99 > bound {
			return nil, fmt.Errorf("overload bench: %s admitted p99 %v under storm exceeds bound %v (5x steady %v, floor %v) — overload is collapsing latency, not shedding load",
				kind, stormP99, bound, steadyP99, opts.P99Floor)
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-10s admitted p99 steady %v -> storm %v (bound %v)\n", kind, steadyP99, stormP99, bound)
		}
	}

	// Contract 3: server-side shed accounting reconciles with the client's
	// (the harness and the hammer share one target, so the target's counters
	// are the complete client-side view).
	ov, err := statsOverload(node.url, g.TenantName(0))
	if err != nil {
		return nil, err
	}
	if got, want := shedTotal(ov), total429+total503; got != want {
		return nil, fmt.Errorf("overload bench: server shed counters total %d, client observed %d (429 %d + 503 %d)", got, want, total429, total503)
	}

	// Contract 4: no acknowledged write lost — every tenant still serves
	// reads at its last acked generation, post-storm.
	audited := 0
	for ti := range storm.LastAcked {
		gen := storm.LastAcked[ti]
		if sg := steady.LastAcked[ti]; sg > gen {
			gen = sg
		}
		if gen == 0 {
			continue
		}
		probe := workload.ServeOp{
			Kind:   workload.OpAuthorize,
			Tenant: g.TenantName(ti),
			Cmds:   []command.Command{workload.ChurnGrant(0, mix.Users, mix.Roles)},
			RYW:    true,
		}
		if _, err := doWithRetry(target, &probe, gen); err != nil {
			return nil, fmt.Errorf("overload bench: tenant %s lost acked generation %d: %w", probe.Tenant, gen, err)
		}
		audited++
	}
	if audited == 0 {
		return nil, fmt.Errorf("overload bench: no tenant acknowledged a write — the storm never exercised the write path")
	}
	if progress != nil {
		fmt.Fprintf(progress, "storm shed %d (429 %d / 503 %d), server counters reconcile, %d tenants' acked writes verified\n",
			storm.Shed, storm429, storm503, audited)
	}
	out["OverloadShed/429"] = BenchResult{N: int(storm429)}
	out["OverloadShed/503"] = BenchResult{N: int(storm503)}
	return out, nil
}

// readHammer is the storm's greedy client against one tenant's read path —
// the flood the read class's admission limit exists to contain. Fast reads
// alone cannot reliably saturate MaxInFlight=1 (on one core the scheduler
// serialises sub-millisecond requests so they rarely overlap), so goroutine
// 0 parks: it authorizes read-your-writes against the next unborn
// generation, and the server holds its read slot while the generation wait
// runs — a commit interval at a time, deterministically pinning the class
// at capacity. The remaining goroutines probe the saturated class and
// collect 429s. Shed answers land in the shared target's counters; outcomes
// are otherwise discarded.
func readHammer(stop chan struct{}, target *HTTPTarget, tenantName string, conc int, cmds []command.Command) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		parker := i == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			op := workload.ServeOp{Kind: workload.OpAuthorize, Tenant: tenantName, Cmds: cmds}
			var minGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen, err := target.Do(&op, minGen)
				switch {
				case err == nil && parker:
					minGen = gen + 1
				case err == nil:
				case errors.Is(err, workload.ErrShed):
					// Refused; stay greedy but yield the core briefly so
					// the harness's own load keeps flowing.
					time.Sleep(time.Millisecond)
				default:
					// Stale (the tenant's writes paused) or a transport
					// hiccup: re-anchor on the live generation.
					minGen = 0
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	return &wg
}

// doWithRetry retries an op through post-storm stragglers: the storm's
// queued writes may still be draining, so a shed answer backs off briefly.
func doWithRetry(target *HTTPTarget, op *workload.ServeOp, minGen uint64) (uint64, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		gen, err := target.Do(op, minGen)
		if err == nil {
			return gen, nil
		}
		lastErr = err
		if !errors.Is(err, workload.ErrShed) {
			return 0, err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return 0, lastErr
}
