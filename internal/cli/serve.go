package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adminrefine/internal/api"
	"adminrefine/internal/engine"
	"adminrefine/internal/placement"
	"adminrefine/internal/policy"
	"adminrefine/internal/replication"
	"adminrefine/internal/server"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// HTTPTarget drives a live rbacd over its real HTTP API — the socket-level
// workload.Target of the serve-mode bench. Reads (authorize, check) go to
// ReadBase, writes (submit) to WriteBase, so a primary+follower pair can be
// loaded with reads on the replica and writes on the primary, the deployment
// shape. Session checks lazily create one session per tenant against the
// read node (sessions are node-local) and cache it.
type HTTPTarget struct {
	// ReadBase and WriteBase are server base URLs (no trailing slash), e.g.
	// "http://127.0.0.1:8080". WriteBase defaults to ReadBase.
	ReadBase  string
	WriteBase string
	// Client defaults to a pooled client with a sane timeout.
	Client *http.Client
	// SessionUser/SessionRoles shape the per-tenant check session. Defaults
	// match workload.ChurnPolicy: user "u0" activating the chain-bottom role
	// "c0000", which holds the fixture's read permission.
	SessionUser  string
	SessionRoles []string

	sessions sync.Map // tenant name -> uint64 session id

	// Shed accounting: how many requests the server refused with 429 (reads
	// at capacity) and 503 (writes at capacity, expired deadlines, open
	// breaker). Both surface as workload.ErrShed to the harness.
	shed429 atomic.Uint64
	shed503 atomic.Uint64
}

// ShedCounts reports the 429s and 503s this target has absorbed — the
// client-side half of the overload accounting, reconciled against the
// server's /stats shed counters by the overload bench.
func (t *HTTPTarget) ShedCounts() (s429, s503 uint64) {
	return t.shed429.Load(), t.shed503.Load()
}

// NewHTTPTarget builds a target for a single node serving reads and writes.
func NewHTTPTarget(base string) *HTTPTarget {
	return &HTTPTarget{ReadBase: base}
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTarget) writeBase() string {
	if t.WriteBase != "" {
		return t.WriteBase
	}
	return t.ReadBase
}

// batchReply mirrors the server's batch response envelope for authorize,
// submit and check.
type batchReply struct {
	Results    json.RawMessage `json:"results"`
	Generation uint64          `json:"generation"`
	Error      *api.Error      `json:"error,omitempty"`
}

// post sends body as JSON and returns the raw 200 response. Non-2xx bodies
// decode through the unified envelope (api.Decode) and dispatch on the typed
// code: stale_generation becomes workload.ErrStale, the overload codes
// (overloaded, deadline, breaker-open unavailable) become workload.ErrShed,
// everything else surfaces as the decoded *api.Error.
func (t *HTTPTarget) post(url string, body any) ([]byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return raw, nil
	}
	e := api.Decode(resp.StatusCode, raw)
	switch {
	case e.Code == api.CodeStaleGeneration || resp.StatusCode == http.StatusConflict:
		return nil, workload.ErrStale
	case resp.StatusCode == http.StatusTooManyRequests:
		t.shed429.Add(1)
		return nil, fmt.Errorf("%s: 429 %s: %w", url, e.Code, workload.ErrShed)
	case resp.StatusCode == http.StatusServiceUnavailable && e.RetryAfter > 0:
		// A 503 carrying retry_after is the overload contract (admission,
		// deadline or breaker shed); a bare 503 stays a hard error.
		t.shed503.Add(1)
		return nil, fmt.Errorf("%s: 503 %s: %w", url, e.Code, workload.ErrShed)
	default:
		return nil, fmt.Errorf("%s: %d: %w", url, resp.StatusCode, e)
	}
}

// postBatch posts and decodes the server's batch envelope.
func (t *HTTPTarget) postBatch(url string, body any) (*batchReply, error) {
	raw, err := t.post(url, body)
	if err != nil {
		return nil, err
	}
	var reply batchReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return nil, fmt.Errorf("%s: decode: %w", url, err)
	}
	return &reply, nil
}

// session returns the tenant's cached check session, creating it on first
// use. Creation carries minGen so a follower target has replicated the
// tenant before the session activates roles against it.
func (t *HTTPTarget) session(tenantName string, minGen uint64) (uint64, error) {
	if v, ok := t.sessions.Load(tenantName); ok {
		return v.(uint64), nil
	}
	user, roles := t.SessionUser, t.SessionRoles
	if user == "" {
		user = "u0"
	}
	if roles == nil {
		roles = []string{"c0000"}
	}
	raw, err := t.post(
		t.ReadBase+"/v1/tenants/"+tenantName+"/sessions",
		server.SessionRequest{User: user, Activate: roles, MinGeneration: minGen},
	)
	if err != nil {
		return 0, fmt.Errorf("create session for %s: %w", tenantName, err)
	}
	var reply struct {
		Results server.SessionResponse `json:"results"`
	}
	if err := json.Unmarshal(raw, &reply); err != nil {
		return 0, fmt.Errorf("create session for %s: %w", tenantName, err)
	}
	actual, _ := t.sessions.LoadOrStore(tenantName, reply.Results.Session)
	return actual.(uint64), nil
}

// Do implements workload.Target over the wire API.
func (t *HTTPTarget) Do(op *workload.ServeOp, minGen uint64) (uint64, error) {
	switch op.Kind {
	case workload.OpSubmit:
		req := server.BatchRequest{Commands: make([]server.WireCommand, len(op.Cmds))}
		for i, c := range op.Cmds {
			wc, err := server.EncodeCommand(c)
			if err != nil {
				return 0, err
			}
			req.Commands[i] = wc
		}
		reply, err := t.postBatch(t.writeBase()+"/v1/tenants/"+op.Tenant+"/submit", req)
		if err != nil {
			return 0, err
		}
		var results []server.SubmitResult
		if err := json.Unmarshal(reply.Results, &results); err != nil {
			return 0, err
		}
		for i, res := range results {
			if res.Outcome != "applied" {
				return 0, fmt.Errorf("submit %s cmd %d: outcome %s", op.Tenant, i, res.Outcome)
			}
		}
		return reply.Generation, nil

	case workload.OpAuthorize:
		req := server.BatchRequest{
			Commands:      make([]server.WireCommand, len(op.Cmds)),
			MinGeneration: minGen,
		}
		for i, c := range op.Cmds {
			wc, err := server.EncodeCommand(c)
			if err != nil {
				return 0, err
			}
			req.Commands[i] = wc
		}
		reply, err := t.postBatch(t.ReadBase+"/v1/tenants/"+op.Tenant+"/authorize", req)
		if err != nil {
			return 0, err
		}
		var results []server.AuthorizeResult
		if err := json.Unmarshal(reply.Results, &results); err != nil {
			return 0, err
		}
		for i, res := range results {
			if !res.Allowed {
				return 0, fmt.Errorf("authorize %s cmd %d denied", op.Tenant, i)
			}
		}
		return reply.Generation, nil

	case workload.OpCheck:
		sess, err := t.session(op.Tenant, minGen)
		if err != nil {
			return 0, err
		}
		req := server.CheckRequest{
			Session:       sess,
			Checks:        make([]server.CheckQuery, len(op.Checks)),
			MinGeneration: minGen,
		}
		for i, c := range op.Checks {
			req.Checks[i] = server.CheckQuery{Action: c.Action, Object: c.Object}
		}
		reply, err := t.postBatch(t.ReadBase+"/v1/tenants/"+op.Tenant+"/check", req)
		if err != nil {
			return 0, err
		}
		var results []server.CheckResult
		if err := json.Unmarshal(reply.Results, &results); err != nil {
			return 0, err
		}
		for i, res := range results {
			if !res.Allowed {
				return 0, fmt.Errorf("check %s probe %d denied", op.Tenant, i)
			}
		}
		return reply.Generation, nil
	}
	return 0, fmt.Errorf("unknown op kind %v", op.Kind)
}

// ServeBenchOptions configures a serve-mode bench run: a live rbacd stood up
// on a loopback socket (plus an optional follower for the read path), loaded
// open-loop at a fixed offered rate.
type ServeBenchOptions struct {
	// Rate is the offered arrival rate in ops/sec (default 800).
	Rate float64
	// Duration is the load window (default 6s).
	Duration time.Duration
	// Workers is the harness issuer count (default 16).
	Workers int
	// Sync makes the primary fsync each commit group — the durable-submit
	// configuration the group-commit path exists for (default true; the
	// bench names the submit series ServeDurableSubmit when set, ServeSubmit
	// otherwise).
	Sync bool
	// Follower stands up a WAL-streaming replica and points all reads at it,
	// writes at the primary.
	Follower bool
	// Routed stands up a two-primary placement cluster with EVERY benchmark
	// tenant pinned to the second node, and drives the whole load at the
	// first: each op crosses the routing front (bodies forward server-side),
	// so the Routed* series price the cross-node tax against the Serve*
	// baseline. Mutually exclusive with Follower and TargetURL.
	Routed bool
	// TargetURL, when set, skips standing up a server and loads an already
	// running rbacd at that base URL instead (reads and writes both).
	TargetURL string
	// Wire additionally runs the binary-protocol pass: a second stack with a
	// wire listener alongside, loaded with the identical open-loop schedule
	// through a WireTarget, emitting Wire* entries next to the same run's
	// Serve* HTTP baseline. Incompatible with Routed and TargetURL (the
	// routing front and remote daemons are HTTP-plane concerns).
	Wire bool
	// Seed fixes the op-slab generator (default 1).
	Seed int64
	// Mix overrides the generated op mix; zero value means
	// workload.DefaultServeMix(Seed).
	Mix *workload.ServeMix
}

func (o *ServeBenchOptions) fill() {
	if o.Rate <= 0 {
		o.Rate = 800
	}
	if o.Duration <= 0 {
		o.Duration = 6 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// serveNode is one in-process rbacd on a real loopback TCP socket.
type serveNode struct {
	url   string
	srv   *server.Server
	hsrv  *http.Server
	reg   *tenant.Registry
	extra func() // extra teardown (follower, temp dirs)
}

func (n *serveNode) close() {
	n.hsrv.Close()
	n.srv.Close()
	if n.reg != nil {
		n.reg.Close()
	}
	if n.extra != nil {
		n.extra()
	}
}

// listenNode serves srv on 127.0.0.1:0 and returns its base URL.
func listenNode(srv *server.Server, reg *tenant.Registry) (*serveNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv}
	go hsrv.Serve(ln)
	return &serveNode{
		url:  "http://" + ln.Addr().String(),
		srv:  srv,
		hsrv: hsrv,
		reg:  reg,
	}, nil
}

// serveStack stands up the system under load: a primary registry (bootstrap
// = the serve mix's multi-tenant churn fixture) behind a real socket, and
// optionally a follower replicating every tenant with reads pointed at it.
func serveStack(mix workload.ServeMix, sync, follower bool) (read, write *serveNode, cleanup func(), err error) {
	primDir, err := os.MkdirTemp("", "rbacbench-serve")
	if err != nil {
		return nil, nil, nil, err
	}
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)
	bootstrap := func(name string) *policy.Policy { return g.Bootstrap(name) }
	prim := tenant.New(tenant.Options{
		Dir:       primDir,
		Mode:      engine.Refined,
		Sync:      sync,
		Bootstrap: bootstrap,
	})
	// Pre-open every tenant so first-touch recovery stays out of the
	// measured window.
	for i := 0; i < mix.Tenants; i++ {
		if _, err := prim.Stats(g.TenantName(i)); err != nil {
			prim.Close()
			os.RemoveAll(primDir)
			return nil, nil, nil, err
		}
	}
	primSrv := server.New(prim)
	primNode, err := listenNode(primSrv, prim)
	if err != nil {
		prim.Close()
		os.RemoveAll(primDir)
		return nil, nil, nil, err
	}
	primNode.extra = func() { os.RemoveAll(primDir) }
	if !follower {
		return primNode, primNode, primNode.close, nil
	}

	folDir, err := os.MkdirTemp("", "rbacbench-serve-fol")
	if err != nil {
		primNode.close()
		return nil, nil, nil, err
	}
	folReg := tenant.New(tenant.Options{Dir: folDir, Mode: engine.Refined})
	fol := replication.NewFollower(folReg, replication.FollowerOptions{
		Upstream: primNode.url,
		PollWait: 10 * time.Second,
		Backoff:  20 * time.Millisecond,
	})
	fail := func(err error) (*serveNode, *serveNode, func(), error) {
		fol.Close()
		folReg.Close()
		os.RemoveAll(folDir)
		primNode.close()
		return nil, nil, nil, err
	}
	for i := 0; i < mix.Tenants; i++ {
		name := g.TenantName(i)
		if err := fol.Ensure(name); err != nil {
			return fail(err)
		}
		st, err := prim.Stats(name)
		if err != nil {
			return fail(err)
		}
		if gen, ok, err := folReg.WaitGeneration(name, st.Generation, 30*time.Second); err != nil || !ok {
			return fail(fmt.Errorf("follower stuck at generation %d of %d for %s (err %v)", gen, st.Generation, name, err))
		}
	}
	folSrv := server.NewWithConfig(server.Config{Registry: folReg, Follower: fol})
	folNode, err := listenNode(folSrv, folReg)
	if err != nil {
		return fail(err)
	}
	folNode.extra = func() {
		fol.Close()
		os.RemoveAll(folDir)
	}
	cleanup = func() {
		folNode.close()
		primNode.close()
	}
	return folNode, primNode, cleanup, nil
}

// serveStackRouted stands up the routed-mode system: two cluster-mode
// primaries sharing a placement map whose Overrides pin every benchmark
// tenant to the second node ("n2", which holds the data), with all load
// aimed at the first ("n1", which holds nothing). Every op the harness
// issues is a POST, so the front transparently forwards each request to the
// owner — the measured series price one routing hop over the Serve baseline.
func serveStackRouted(mix workload.ServeMix, sync bool) (front *serveNode, cleanup func(), err error) {
	ownerDir, err := os.MkdirTemp("", "rbacbench-routed-owner")
	if err != nil {
		return nil, nil, err
	}
	g := workload.NewMultiTenantGen(mix.MultiTenantConfig)
	owner := tenant.New(tenant.Options{
		Dir:       ownerDir,
		Mode:      engine.Refined,
		Sync:      sync,
		Bootstrap: func(name string) *policy.Policy { return g.Bootstrap(name) },
	})
	failOwner := func(err error) (*serveNode, func(), error) {
		owner.Close()
		os.RemoveAll(ownerDir)
		return nil, nil, err
	}
	for i := 0; i < mix.Tenants; i++ {
		if _, err := owner.Stats(g.TenantName(i)); err != nil {
			return failOwner(err)
		}
	}
	ownerTable := placement.NewTable(nil, nil)
	ownerNode, err := listenNode(server.NewWithConfig(server.Config{
		Registry:  owner,
		Placement: ownerTable,
		NodeID:    "n2",
	}), owner)
	if err != nil {
		return failOwner(err)
	}
	ownerNode.extra = func() { os.RemoveAll(ownerDir) }

	frontDir, err := os.MkdirTemp("", "rbacbench-routed-front")
	if err != nil {
		ownerNode.close()
		return nil, nil, err
	}
	frontReg := tenant.New(tenant.Options{Dir: frontDir, Mode: engine.Refined})
	frontTable := placement.NewTable(nil, nil)
	frontNode, err := listenNode(server.NewWithConfig(server.Config{
		Registry:  frontReg,
		Placement: frontTable,
		NodeID:    "n1",
	}), frontReg)
	if err != nil {
		frontReg.Close()
		os.RemoveAll(frontDir)
		ownerNode.close()
		return nil, nil, err
	}
	frontNode.extra = func() { os.RemoveAll(frontDir) }
	cleanup = func() {
		frontNode.close()
		ownerNode.close()
	}

	m, err := placement.New(1, []placement.Node{
		{ID: "n1", Addr: frontNode.url},
		{ID: "n2", Addr: ownerNode.url},
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	// Pin every benchmark tenant to the owner before the map's lazy ring is
	// ever consulted, so n1 never serves locally and each op pays the hop.
	m.Overrides = make(map[string]string, mix.Tenants)
	for i := 0; i < mix.Tenants; i++ {
		m.Overrides[g.TenantName(i)] = "n2"
	}
	for _, tbl := range []*placement.Table{frontTable, ownerTable} {
		if _, err := tbl.Install(m); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	return frontNode, cleanup, nil
}

// WriteResultsJSON writes a result map in the BENCH JSON shape (benchmark
// name → measurement), the same format WriteBenchJSON emits.
func WriteResultsJSON(path string, results map[string]BenchResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveEntryName maps an op kind to its BENCH JSON series prefix.
func serveEntryName(kind string, sync bool) string {
	switch kind {
	case "authorize":
		return "ServeAuthorize"
	case "check":
		return "ServeCheck"
	case "submit":
		if sync {
			return "ServeDurableSubmit"
		}
		return "ServeSubmit"
	}
	return "Serve" + kind
}

// RunServeBench stands up (or dials) a live rbacd, drives the open-loop
// socket harness against it, and returns BENCH JSON entries: per-kind
// latency quantiles (ns, measured from intended arrival — no coordinated
// omission) plus achieved throughput. Entries report zero allocs because the
// harness measures wire latency, not allocation; the alloc gate never fires
// on them.
func RunServeBench(progress io.Writer, opts ServeBenchOptions) (map[string]BenchResult, error) {
	opts.fill()
	if opts.Wire && (opts.Routed || opts.TargetURL != "") {
		return nil, fmt.Errorf("serve bench: -wire is incompatible with -routed and -target-url")
	}
	mix := workload.DefaultServeMix(opts.Seed)
	if opts.Mix != nil {
		mix = *opts.Mix
	}

	var target *HTTPTarget
	switch {
	case opts.TargetURL != "":
		target = NewHTTPTarget(opts.TargetURL)
	case opts.Routed:
		front, cleanup, err := serveStackRouted(mix, opts.Sync)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		target = &HTTPTarget{ReadBase: front.url, WriteBase: front.url}
	default:
		read, write, cleanup, err := serveStack(mix, opts.Sync, opts.Follower)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		target = &HTTPTarget{ReadBase: read.url, WriteBase: write.url}
	}
	target.Client = &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Workers * 2,
		},
	}

	// The slab is reused round-robin; size it past the schedule so submits
	// do not wrap into duplicate grants within one run.
	slab := int(opts.Rate*opts.Duration.Seconds()) + opts.Workers
	ops := workload.GenServeOps(mix, slab)
	res, err := workload.RunOpenLoop(workload.OpenLoopConfig{
		Rate:     opts.Rate,
		Duration: opts.Duration,
		Workers:  opts.Workers,
	}, ops, target)
	if err != nil {
		return nil, err
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("serve bench completed no ops")
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("serve bench: %d/%d ops failed (%d stale)", res.Errors, res.Completed, res.Stale)
	}

	out := make(map[string]BenchResult)
	for kind, ks := range res.Kinds {
		name := serveEntryName(kind, opts.Sync)
		if opts.Routed {
			name = "Routed" + strings.TrimPrefix(name, "Serve")
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
			out[name+"/"+q.label] = BenchResult{
				NsPerOp: float64(ks.Hist.Quantile(q.q)),
				N:       int(ks.Count),
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-28s %s\n", name, ks.Hist.Summary("ms", 1e6))
		}
	}
	// Achieved throughput as ns-per-op so benchdiff's lower-is-better
	// comparison gates saturation regressions too.
	tpKey := "ServeThroughput/achieved"
	if opts.Routed {
		tpKey = "RoutedThroughput/achieved"
	}
	out[tpKey] = BenchResult{
		NsPerOp: 1e9 / res.Achieved,
		N:       int(res.Completed),
	}
	if progress != nil {
		fmt.Fprintf(progress, "offered %.0f ops/s, achieved %.0f ops/s, %d ops, %d dropped, %d stale\n",
			res.Offered, res.Achieved, res.Completed, res.Dropped(), res.Stale)
	}
	if opts.Wire {
		wireOut, err := runWirePass(progress, opts, mix)
		if err != nil {
			return nil, fmt.Errorf("wire pass: %w", err)
		}
		for name, r := range wireOut {
			out[name] = r
		}
	}
	return out, nil
}
