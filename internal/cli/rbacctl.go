package cli

import (
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"adminrefine/internal/analysis"
	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/monitor"
	"adminrefine/internal/parser"
	"adminrefine/internal/policy"
)

// tempDir creates a scratch directory for experiment S1.
func tempDir() (string, error) { return os.MkdirTemp("", "adminrefine-s1-*") }

// Rbacctl dispatches one rbacctl invocation: args holds the subcommand and
// its operands. Output goes to w; the error return carries usage problems
// and negative results requested to be fatal.
func Rbacctl(w io.Writer, args []string) error {
	if len(args) == 0 {
		return usageError()
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "validate":
		return ctlValidate(w, rest)
	case "stats":
		return ctlStats(w, rest)
	case "fmt":
		return ctlFmt(w, rest)
	case "dot":
		return ctlDot(w, rest)
	case "query":
		return ctlQuery(w, rest)
	case "weaker":
		return ctlWeaker(w, rest)
	case "weaker-set":
		return ctlWeakerSet(w, rest)
	case "run":
		return ctlRun(w, rest)
	case "refines":
		return ctlRefines(w, rest)
	case "check":
		return ctlCheck(w, rest)
	case "can-assign":
		return ctlCanAssign(w, rest)
	case "weaken":
		return ctlWeaken(w, rest)
	case "help":
		printUsage(w)
		return nil
	default:
		return fmt.Errorf("rbacctl: unknown subcommand %q\n%s", sub, usage)
	}
}

const usage = `usage: rbacctl <subcommand> [args]

  validate <policy.rpl>                     parse and validate a policy file
  stats <policy.rpl>                        print policy size statistics
  fmt <policy.rpl>                          print the canonical form
  dot <policy.rpl>                          export Graphviz DOT
  query <policy.rpl> <from> <to>            reachability v ->φ v' (names resolve
                                            as user first, then role)
  weaker <policy.rpl> <strong> <weak>       decide the privilege ordering Ãφ
                                            (privileges in RPL syntax) and
                                            print the derivation
  weaker-set <policy.rpl> <priv> [bound]    enumerate weaker privileges
                                            (default bound: Remark 2)
  run [-refined] <file.rpl>                 execute the file's do-commands
                                            through the reference monitor
  refines <phi.rpl> <psi.rpl> [-admin N]    check φ º ψ (Definition 6), and
                                            with -admin N the bounded
                                            Definition 7 up to queue length N
  check [-refined] <file.rpl>               run the file's do-commands, then
                                            evaluate its expect assertions
  can-assign <policy.rpl> <actor> <user>    list the roles the actor may
                                            assign the user to, strict and
                                            ordering-derived
  weaken <file.rpl> <role> <strong> <weak>  apply Theorem 1: replace the
                                            assignment (role, strong) by the
                                            weaker privilege; prints the new
                                            policy, or — if the file has
                                            do-commands — the constructive
                                            simulation of the run
`

func usageError() error { return fmt.Errorf("rbacctl: missing subcommand\n%s", usage) }

func printUsage(w io.Writer) { fmt.Fprint(w, usage) }

func loadPolicy(path string) (*parser.Document, error) {
	return parser.ParseFile(path)
}

func ctlValidate(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rbacctl validate: want one file argument")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	if err := doc.Policy.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "ok: %d users, %d roles, %d edges, %d commands\n",
		len(doc.Policy.Users()), len(doc.Policy.Roles()), doc.Policy.NumEdges(), len(doc.Queue))
	return nil
}

func ctlStats(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rbacctl stats: want one file argument")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	s := doc.Policy.Stats()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "users\t%d\n", s.Users)
	fmt.Fprintf(tw, "roles\t%d\n", s.Roles)
	fmt.Fprintf(tw, "UA edges\t%d\n", s.UA)
	fmt.Fprintf(tw, "RH edges\t%d\n", s.RH)
	fmt.Fprintf(tw, "PA edges\t%d\n", s.PA)
	fmt.Fprintf(tw, "user privilege vertices\t%d\n", s.UserPrivVertices)
	fmt.Fprintf(tw, "admin privilege vertices\t%d\n", s.AdminPrivVertices)
	fmt.Fprintf(tw, "max privilege nesting\t%d\n", s.MaxPrivilegeDepth)
	fmt.Fprintf(tw, "longest RH chain (Remark 2 bound)\t%d\n", s.LongestRoleChainInRH)
	return tw.Flush()
}

func ctlFmt(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rbacctl fmt: want one file argument")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	fmt.Fprint(w, parser.Print(doc.Policy, doc.Queue))
	return nil
}

func ctlDot(w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("rbacctl dot: want one file argument")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	fmt.Fprint(w, doc.Policy.DOT(args[0]))
	return nil
}

// resolveVertex interprets a name against the policy: declared user first,
// then role; "(a,b)" parses as a permission.
func resolveVertex(p *policy.Policy, name string) (model.Vertex, error) {
	if strings.HasPrefix(name, "(") {
		pr, err := parsePrivArg(name)
		if err != nil {
			return nil, err
		}
		return pr, nil
	}
	switch {
	case p.HasUser(name) && p.HasRole(name):
		return nil, fmt.Errorf("%q is both a user and a role; qualify with user: or role:", name)
	case strings.HasPrefix(name, "user:"):
		return model.User(strings.TrimPrefix(name, "user:")), nil
	case strings.HasPrefix(name, "role:"):
		return model.Role(strings.TrimPrefix(name, "role:")), nil
	case p.HasUser(name):
		return model.User(name), nil
	case p.HasRole(name):
		return model.Role(name), nil
	default:
		return nil, fmt.Errorf("%q is not a declared user or role", name)
	}
}

// parsePrivArg parses a privilege given as a standalone command-line
// argument, reusing the RPL parser by wrapping it in a grant statement over
// a scratch role universe. Entities inside the privilege must be
// self-describing, so the caller's policy declarations are spliced in.
func parsePrivArg(src string) (model.Privilege, error) {
	doc, err := parser.Parse("roles ·scratch·\ngrant ·scratch· " + src + "\n")
	if err != nil {
		return nil, fmt.Errorf("privilege %q: %w", src, err)
	}
	for _, e := range doc.Policy.EdgesOf(policy.EdgePA) {
		return e.To.(model.Privilege), nil
	}
	return nil, fmt.Errorf("privilege %q: nothing parsed", src)
}

// parsePrivWithPolicy parses a privilege argument in the context of a policy
// file's declarations (so grant(bob, staff) resolves bob as a user).
func parsePrivWithPolicy(p *policy.Policy, src string) (model.Privilege, error) {
	var b strings.Builder
	if us := p.Users(); len(us) > 0 {
		b.WriteString("users ")
		for i, u := range us {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteArg(u))
		}
		b.WriteByte('\n')
	}
	rs := append([]string{"·scratch·"}, p.Roles()...)
	b.WriteString("roles ")
	for i, r := range rs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteArg(r))
	}
	b.WriteByte('\n')
	b.WriteString("grant ·scratch· " + src + "\n")
	doc, err := parser.Parse(b.String())
	if err != nil {
		return nil, fmt.Errorf("privilege %q: %w", src, err)
	}
	for _, e := range doc.Policy.EdgesOf(policy.EdgePA) {
		return e.To.(model.Privilege), nil
	}
	return nil, fmt.Errorf("privilege %q: nothing parsed", src)
}

func quoteArg(s string) string {
	return `"` + strings.ReplaceAll(strings.ReplaceAll(s, `\`, `\\`), `"`, `\"`) + `"`
}

func ctlQuery(w io.Writer, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("rbacctl query: want <policy.rpl> <from> <to>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	from, err := resolveVertex(doc.Policy, args[1])
	if err != nil {
		return err
	}
	to, err := resolveVertex(doc.Policy, args[2])
	if err != nil {
		return err
	}
	ok := doc.Policy.Reaches(from, to)
	fmt.Fprintf(w, "%s ->φ %s: %v\n", from, to, ok)
	if ok {
		path := doc.Policy.Path(from, to)
		strs := make([]string, len(path))
		for i, v := range path {
			strs[i] = v.String()
		}
		fmt.Fprintf(w, "path: %s\n", strings.Join(strs, " -> "))
	}
	return nil
}

func ctlWeaker(w io.Writer, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("rbacctl weaker: want <policy.rpl> <strong-priv> <weak-priv>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	strong, err := parsePrivWithPolicy(doc.Policy, args[1])
	if err != nil {
		return err
	}
	weak, err := parsePrivWithPolicy(doc.Policy, args[2])
	if err != nil {
		return err
	}
	d := core.NewDecider(doc.Policy)
	dv, ok := d.Explain(strong, weak)
	fmt.Fprintf(w, "%s Ãφ %s: %v\n", strong, weak, ok)
	if ok {
		fmt.Fprintf(w, "%s\n", dv)
	}
	return nil
}

func ctlWeakerSet(w io.Writer, args []string) error {
	if len(args) != 2 && len(args) != 3 {
		return fmt.Errorf("rbacctl weaker-set: want <policy.rpl> <priv> [bound]")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	priv, err := parsePrivWithPolicy(doc.Policy, args[1])
	if err != nil {
		return err
	}
	bound := core.DefaultNestBound(doc.Policy, priv)
	if len(args) == 3 {
		if _, err := fmt.Sscanf(args[2], "%d", &bound); err != nil {
			return fmt.Errorf("rbacctl weaker-set: bad bound %q", args[2])
		}
	}
	d := core.NewDecider(doc.Policy)
	ws := d.WeakerSet(priv, bound)
	fmt.Fprintf(w, "weaker than %s (nesting bound %d): %d privileges\n", priv, bound, len(ws))
	for _, pr := range ws {
		fmt.Fprintf(w, "  %s\n", pr)
	}
	return nil
}

func ctlRun(w io.Writer, args []string) error {
	mode := monitor.ModeStrict
	if len(args) > 0 && args[0] == "-refined" {
		mode = monitor.ModeRefined
		args = args[1:]
	}
	if len(args) != 1 {
		return fmt.Errorf("rbacctl run: want [-refined] <file.rpl>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	m := monitor.New(doc.Policy.Clone(), mode)
	results := m.SubmitQueue(doc.Queue)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "command\toutcome\tjustification\n")
	for _, r := range results {
		j := ""
		if r.Justification != nil {
			j = r.Justification.String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Cmd, r.Outcome, j)
	}
	tw.Flush()
	removed, added := doc.Policy.Diff(m.Policy())
	fmt.Fprintf(w, "\nfinal policy: +%d/-%d edges vs input\n", len(added), len(removed))
	return nil
}

func ctlRefines(w io.Writer, args []string) error {
	var adminLen int
	var files []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-admin" && i+1 < len(args) {
			if _, err := fmt.Sscanf(args[i+1], "%d", &adminLen); err != nil {
				return fmt.Errorf("rbacctl refines: bad -admin value %q", args[i+1])
			}
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		return fmt.Errorf("rbacctl refines: want <phi.rpl> <psi.rpl> [-admin N]")
	}
	phiDoc, err := loadPolicy(files[0])
	if err != nil {
		return err
	}
	psiDoc, err := loadPolicy(files[1])
	if err != nil {
		return err
	}
	phi, psi := phiDoc.Policy, psiDoc.Policy
	ok := core.NonAdminRefines(phi, psi)
	fmt.Fprintf(w, "φ º ψ (Definition 6): %v\n", ok)
	if !ok {
		for _, v := range core.NonAdminViolations(phi, psi, 5) {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
	}
	if adminLen > 0 {
		res := core.BoundedAdminRefines(phi, psi, core.BoundedAdminOptions{MaxLen: adminLen})
		fmt.Fprintf(w, "φ º† ψ bounded to length %d (Definition 7, printed direction): %v over %d queues\n",
			adminLen, res.Holds, res.QueuesExplored)
		if res.Truncated {
			fmt.Fprintf(w, "  warning: responder frontier truncated; a negative answer may be spurious\n")
		}
		if !res.Holds {
			fmt.Fprintf(w, "  counterexample: %s\n", res.Counterexample)
		}
	}
	return nil
}

// CheckResult is one evaluated `expect` assertion.
type CheckResult struct {
	Check parser.Check
	Got   bool
	Pass  bool
}

// EvaluateChecks runs the document's command queue on a clone of its policy
// under the given mode and evaluates every expect assertion against the
// resulting state.
func EvaluateChecks(doc *parser.Document, mode monitor.Mode) []CheckResult {
	m := monitor.New(doc.Policy.Clone(), mode)
	m.SubmitQueue(doc.Queue)
	final := m.Policy()
	d := core.NewDecider(final)
	out := make([]CheckResult, 0, len(doc.Checks))
	for _, c := range doc.Checks {
		var got bool
		switch c.Kind {
		case parser.CheckReaches:
			got = final.Reaches(c.From, c.To)
		case parser.CheckWeaker:
			got = d.Weaker(c.Strong, c.Weak)
		}
		out = append(out, CheckResult{Check: c, Got: got, Pass: got != c.Negated})
	}
	return out
}

func ctlCheck(w io.Writer, args []string) error {
	mode := monitor.ModeStrict
	if len(args) > 0 && args[0] == "-refined" {
		mode = monitor.ModeRefined
		args = args[1:]
	}
	if len(args) != 1 {
		return fmt.Errorf("rbacctl check: want [-refined] <file.rpl>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	if len(doc.Checks) == 0 {
		return fmt.Errorf("rbacctl check: %s contains no expect statements", args[0])
	}
	results := EvaluateChecks(doc, mode)
	failed := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%s  line %d: %s (got %v)\n", status, r.Check.Line, r.Check, r.Got)
	}
	fmt.Fprintf(w, "%d checks, %d failed [%s mode]\n", len(results), failed, mode)
	if failed > 0 {
		return fmt.Errorf("rbacctl check: %d of %d assertions failed", failed, len(results))
	}
	return nil
}

func ctlCanAssign(w io.Writer, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("rbacctl can-assign: want <policy.rpl> <actor> <user>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	actor, user := args[1], args[2]
	if !doc.Policy.HasUser(actor) {
		return fmt.Errorf("actor %q is not a declared user", actor)
	}
	if !doc.Policy.HasUser(user) {
		return fmt.Errorf("user %q is not a declared user", user)
	}
	options := analysis.AssignableRoles(doc.Policy, actor, user)
	if len(options) == 0 {
		fmt.Fprintf(w, "%s may not assign %s to any role\n", actor, user)
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "role\tregime\tjustified by\n")
	for _, o := range options {
		regime := "strict (Def. 5)"
		if !o.Strict {
			regime = "ordering (§4.1)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", o.Role, regime, o.Justification)
	}
	return tw.Flush()
}

func ctlWeaken(w io.Writer, args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("rbacctl weaken: want <file.rpl> <role> <strong-priv> <weak-priv>")
	}
	doc, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	strong, err := parsePrivWithPolicy(doc.Policy, args[2])
	if err != nil {
		return err
	}
	weak, err := parsePrivWithPolicy(doc.Policy, args[3])
	if err != nil {
		return err
	}
	wk := core.Weakening{Role: args[1], Strong: strong, Weak: weak}
	if len(doc.Queue) == 0 {
		psi, err := core.WeakenAssignment(doc.Policy, wk)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Theorem 1 weakening: %s\n", wk)
		fmt.Fprint(w, parser.Print(psi, nil))
		return nil
	}
	phiF, psiF, steps, err := core.SimulateWeakening(doc.Policy, wk, doc.Queue)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "weakening: %s\n\n", wk)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "φ command\tψ response\tkind\tφ outcome\tψ outcome\n")
	for _, s := range steps {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", s.PhiCmd, s.PsiCmd, s.Kind, s.PhiStep.Outcome, s.PsiStep.Outcome)
	}
	tw.Flush()
	ok := core.NonAdminRefines(phiF, psiF)
	fmt.Fprintf(w, "\nfinal states satisfy φ' º ψ' (Theorem 1): %v\n", ok)
	if !ok {
		for _, v := range core.NonAdminViolations(phiF, psiF, 5) {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		return fmt.Errorf("rbacctl weaken: refinement violated")
	}
	return nil
}
