package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"text/tabwriter"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/engine"
	"adminrefine/internal/graph"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/replication"
	"adminrefine/internal/session"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// runP1 is the incremental-engine experiment: it replays the same
// grant-then-query churn through the snapshot engine and through the
// rebuild-everything baseline, checks that both paths agree on every outcome
// and on the final policy, reports the speedup, and smoke-tests concurrent
// snapshot reads under writer churn.
func runP1(w io.Writer) error {
	const roles, users, ops = 256, 256, 300

	// Baseline: one long-lived decider that rebuilds closure, memo and
	// privilege-vertex tables on every generation change (the seed path).
	basePol := workload.ChurnPolicy(roles, users)
	baseAuth := core.NewRefinedAuthorizer(basePol)
	baseAuth.Decider().SetIncremental(false)
	baseOutcomes := make([]command.Outcome, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		res := command.Step(basePol, workload.ChurnGrant(i, users, roles), baseAuth)
		baseOutcomes[i] = res.Outcome
		q := workload.ChurnGrant(i+1, users, roles)
		priv, err := q.Privilege()
		if err != nil {
			return err
		}
		if _, ok := baseAuth.Decider().HeldStronger(q.Actor, priv); !ok {
			return fmt.Errorf("baseline churn query %d denied", i)
		}
	}
	baseDur := time.Since(start)

	// Incremental: the snapshot engine.
	eng := engine.New(workload.ChurnPolicy(roles, users), engine.Refined)
	start = time.Now()
	for i := 0; i < ops; i++ {
		res := eng.Submit(workload.ChurnGrant(i, users, roles))
		if res.Outcome != baseOutcomes[i] {
			return fmt.Errorf("op %d: engine outcome %v, baseline %v", i, res.Outcome, baseOutcomes[i])
		}
		s := eng.Snapshot()
		_, ok := s.Authorize(workload.ChurnGrant(i+1, users, roles))
		s.Close()
		if !ok {
			return fmt.Errorf("engine churn query %d denied", i)
		}
	}
	incDur := time.Since(start)

	s := eng.Snapshot()
	same := s.Policy().Equal(basePol)
	s.Close()
	if !same {
		return fmt.Errorf("engine and baseline final policies diverged")
	}

	speedup := float64(baseDur) / float64(incDur)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "path\tops\ttotal\tper op\n")
	fmt.Fprintf(tw, "seed-rebuild\t%d\t%v\t%v\n", ops, baseDur.Round(time.Microsecond), (baseDur / ops).Round(time.Microsecond))
	fmt.Fprintf(tw, "engine-incremental\t%d\t%v\t%v\n", ops, incDur.Round(time.Microsecond), (incDur / ops).Round(time.Microsecond))
	tw.Flush()
	fmt.Fprintf(w, "\nspeedup: %.1fx (outcomes and final policies identical)\n", speedup)
	if speedup < 2 {
		return fmt.Errorf("incremental path only %.1fx faster than rebuild baseline", speedup)
	}

	// Concurrency smoke: snapshot readers under writer churn.
	var wg sync.WaitGroup
	errc := make(chan error, 5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < 200; i++ {
				snap := eng.Snapshot()
				gen := snap.Generation()
				if gen < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d -> %d", lastGen, gen)
					snap.Close()
					return
				}
				lastGen = gen
				if _, ok := snap.Authorize(workload.ChurnGrant(i+g, users, roles)); !ok {
					errc <- fmt.Errorf("reader %d lost authorization", g)
					snap.Close()
					return
				}
				snap.Close()
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		eng.Submit(workload.ChurnGrant(ops+i, users, roles))
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintf(w, "concurrency smoke: 4 readers x 200 snapshot reads under 100 writer transitions: ok\n")
	return nil
}

// BenchResult is one machine-readable benchmark measurement.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// BenchSpec names one registered benchmark closure.
type BenchSpec struct {
	Name string
	F    func(b *testing.B)
}

// BenchSpecs returns the benchmarks rbacbench can run standalone (via
// testing.Benchmark) to emit the cross-PR perf trajectory. The root go-test
// benchmarks of the same names delegate to these specs, so the BENCH JSON
// and `go test -bench` always measure identical code.
func BenchSpecs() []BenchSpec {
	const roles, users = 1024, 1024
	return []BenchSpec{
		{"IncrementalGrant/engine-incremental/roles=1024", func(b *testing.B) {
			e := engine.New(workload.ChurnPolicy(roles, users), engine.Refined)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.Submit(workload.ChurnGrant(i, users, roles)); res.Outcome == command.Denied || res.Outcome == command.IllFormed {
					b.Fatalf("churn grant rejected: %v", res.Outcome)
				}
				s := e.Snapshot()
				if _, ok := s.Authorize(workload.ChurnGrant(i+1, users, roles)); !ok {
					b.Fatal("query denied")
				}
				s.Close()
			}
		}},
		{"IncrementalGrant/seed-rebuild/roles=1024", func(b *testing.B) {
			p := workload.ChurnPolicy(roles, users)
			auth := core.NewRefinedAuthorizer(p)
			auth.Decider().SetIncremental(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := command.Step(p, workload.ChurnGrant(i, users, roles), auth); res.Outcome == command.Denied || res.Outcome == command.IllFormed {
					b.Fatalf("churn grant rejected: %v", res.Outcome)
				}
				q := workload.ChurnGrant(i+1, users, roles)
				priv, err := q.Privilege()
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := auth.Decider().HeldStronger(q.Actor, priv); !ok {
					b.Fatal("query denied")
				}
			}
		}},
		{"SnapshotAuthorizeParallel/roles=256", func(b *testing.B) {
			e := engine.New(workload.ChurnPolicy(256, 256), engine.Refined)
			// Precompute the command slab so the measurement matches the root
			// benchmark: the engine, not fmt.Sprintf.
			cmds := workload.CommandSlab(4096, 256, 256)
			s := e.Snapshot()
			s.Authorize(cmds[0])
			s.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s := e.Snapshot()
					if _, ok := s.Authorize(cmds[i%len(cmds)]); !ok {
						s.Close()
						b.Error("query denied")
						return
					}
					s.Close()
					i++
				}
			})
		}},
		{"ClosureBuild/roles=1024", func(b *testing.B) {
			p := workload.Chain(1024)
			g := p.Graph()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.NewClosure(g)
			}
		}},
		{"MultiTenantAuthorize/tenants=32/zipf=1.1", func(b *testing.B) {
			reg, g, cleanup := benchRegistry(b, 32)
			defer cleanup()
			// Precompute a skewed op slab so the measurement is the registry
			// (shard resolve + snapshot + decide), not the generator.
			type op struct {
				tenant string
				cmd    command.Command
			}
			ops := make([]op, 4096)
			for i := range ops {
				o := g.Next()
				ops[i] = op{o.Tenant, o.Cmd}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := ops[i%len(ops)]
				res, err := reg.Authorize(o.tenant, o.cmd)
				if err != nil || !res.OK {
					b.Fatalf("authorize %s: err=%v ok=%v", o.tenant, err, res.OK)
				}
			}
		}},
		{"BatchVsSingle/single", func(b *testing.B) {
			reg, g, cleanup := benchRegistry(b, 4)
			defer cleanup()
			name, cmds := g.QueryBatch(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := reg.Authorize(name, cmds[i%len(cmds)])
				if err != nil || !res.OK {
					b.Fatalf("authorize: err=%v ok=%v", err, res.OK)
				}
			}
		}},
		{"BatchVsSingle/batch=32", func(b *testing.B) { benchBatch(b, 32) }},
		{"BatchVsSingle/batch=256", func(b *testing.B) { benchBatch(b, 256) }},
		{"CachedAuthorize/hit/roles=256", func(b *testing.B) {
			// Steady-state cache-hit cost: snapshot acquisition + fingerprint
			// lookup + decision-cache probe, per query. The slab is warmed so
			// every measured op hits.
			e, cmds := benchAuthorizeEngine(b, engine.Refined, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := e.Snapshot()
				if _, ok := s.Authorize(cmds[i%len(cmds)]); !ok {
					b.Fatal("query denied")
				}
				s.Close()
			}
		}},
		{"AuthorizeAllocs/refined-uncached/roles=256", func(b *testing.B) {
			// The uncached single-query path with the decision cache disabled:
			// full §4.1 ordering decision per op; the acceptance target is
			// 0 allocs/op once the fingerprint tables are warm.
			e, cmds := benchAuthorizeEngine(b, engine.Refined, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := e.Snapshot()
				if _, ok := s.Authorize(cmds[i%len(cmds)]); !ok {
					b.Fatal("query denied")
				}
				s.Close()
			}
		}},
		{"ReplicatedAuthorize/follower-batch=256/roles=256", func(b *testing.B) {
			// Steady-state read throughput on a caught-up follower, per query,
			// through the batched serving path: the follower must stay within
			// 15% of the identical single-node loop (and of the raw
			// SnapshotAuthorizeParallel engine cost) — replication replays
			// into a plain engine, so reads cost the same as anywhere else.
			_, folReg, cleanup := benchReplicatedPair(b)
			defer cleanup()
			benchRegistryBatch(b, folReg, "t", 256)
		}},
		{"ReplicatedAuthorize/single-batch=256/roles=256", func(b *testing.B) {
			// The single-node baseline of the follower benchmark above: the
			// same batched read loop against an unreplicated registry.
			reg, cleanup := benchChurnRegistry(b)
			defer cleanup()
			benchRegistryBatch(b, reg, "t", 256)
		}},
		{"ReplicationLag/submit-to-visible/roles=256", func(b *testing.B) {
			// End-to-end replication latency under churn: each op applies one
			// write on the primary and blocks until the follower's replayed
			// engine serves that generation — WAL append, long-poll wake,
			// HTTP ship, SubmitBatch replay and publication.
			prim, folReg, cleanup := benchReplicatedPair(b)
			defer cleanup()
			start, _, err := folReg.WaitGeneration("t", 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := prim.Submit("t", workload.ChurnGrant(benchReplWrites+i, 256, 256))
				if err != nil || res.Outcome != command.Applied {
					b.Fatalf("churn submit %d: outcome=%v err=%v", i, res.Outcome, err)
				}
				if gen, ok, err := folReg.WaitGeneration("t", start+uint64(i)+1, 10*time.Second); err != nil || !ok {
					b.Fatalf("follower stuck at generation %d (err %v)", gen, err)
				}
			}
			b.StopTimer()
		}},
		{"AccessCheck/session-hit/depts=32", func(b *testing.B) {
			// Steady-state session access check — the paper's primary
			// end-user workload: snapshot acquisition + privilege-id lookup +
			// check-verdict cache probe (falling back to the compiled role
			// bitset), per op. Target ≤150 ns/op, 0 allocs/op.
			e := engine.New(workload.Hospital(32), engine.Strict)
			tbl := session.NewTable(session.Options{})
			snap := e.Snapshot()
			s, err := tbl.Create(snap, "nurseuser_0", []string{"nurse_0"})
			if err != nil {
				snap.Close()
				b.Fatal(err)
			}
			probes := workload.CheckSlab(0)
			for i := 0; i < 2*len(probes); i++ { // warm: intern, fp, compile
				if ok, err := tbl.Check(snap, s.ID, probes[i%len(probes)]); err != nil || !ok {
					snap.Close()
					b.Fatalf("warm check: %v %v", ok, err)
				}
			}
			snap.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := e.Snapshot()
				ok, err := tbl.Check(snap, s.ID, probes[i%len(probes)])
				snap.Close()
				if err != nil || !ok {
					b.Fatalf("check denied: %v %v", ok, err)
				}
			}
		}},
		{"GroupCommit/sync-submit/conc=1", func(b *testing.B) { benchGroupCommit(b, 1) }},
		{"GroupCommit/sync-submit/conc=32", func(b *testing.B) { benchGroupCommit(b, 32) }},
		{"AuthorizeAllocs/strict-uncached/roles=256", func(b *testing.B) {
			// Definition 5 without the cache: actor/privilege vertex lookup by
			// fingerprint plus one closure bit test per op, 0 allocs/op. The
			// probe is the churn fixture's one strictly-held privilege (the
			// admin's ¤(member, c0000)), so this measures the allow path.
			e := engine.New(workload.ChurnPolicy(256, 256), engine.Strict)
			e.SetCacheSlots(-1)
			probe := command.Grant("churnadmin", model.Role("member"), model.Role("c0000"))
			s := e.Snapshot()
			for i := 0; i < 2; i++ { // doorkeeper pass, then admission
				if _, ok := s.Authorize(probe); !ok {
					b.Fatal("strict probe denied")
				}
			}
			s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := e.Snapshot()
				if _, ok := s.Authorize(probe); !ok {
					b.Fatal("query denied")
				}
				s.Close()
			}
		}},
	}
}

// benchGroupCommit measures durable (-sync) submit throughput per op with
// conc concurrent submitters against one tenant — the group-commit
// acceptance pair. At conc=1 every submit pays its own fsync; at conc=32
// the tenant's commit-group queue coalesces waiters behind the in-flight
// fsync, so per-op cost must drop by at least the grouping factor the
// acceptance gate demands (4x). The fixture is sized so the fsync, not the
// policy step, dominates; compaction is disabled to keep its fsyncs out of
// the measurement.
func benchGroupCommit(b *testing.B, conc int) {
	b.Helper()
	const gcRoles, gcUsers = 64, 4096
	dir, err := os.MkdirTemp("", "rbacbench-gc")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg := tenant.New(tenant.Options{
		Dir:          dir,
		Mode:         engine.Refined,
		Sync:         true,
		CompactEvery: -1,
		Bootstrap: func(name string) *policy.Policy {
			return workload.ChurnPolicy(gcRoles, gcUsers)
		},
	})
	defer reg.Close()
	// First touch outside the timer: recovery + the WAL file create.
	if res, err := reg.Submit("t", workload.ChurnGrant(0, gcUsers, gcRoles)); err != nil || res.Outcome != command.Applied {
		b.Fatalf("warm submit: outcome=%v err=%v", res.Outcome, err)
	}
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				c := workload.ChurnGrant(int(i)%(gcUsers*gcRoles-1)+1, gcUsers, gcRoles)
				res, err := reg.Submit("t", c)
				if err != nil {
					b.Errorf("submit %d: %v", i, err)
					return
				}
				if res.Outcome == command.Denied || res.Outcome == command.IllFormed {
					b.Errorf("submit %d: outcome %v", i, res.Outcome)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
}

// benchAuthorizeEngine builds the shared fixture of the authorize-path
// benchmarks: a churn engine, a 4096-command slab, and one warm pass so the
// interner, fingerprint tables and (when enabled) the decision cache are
// populated before measurement.
func benchAuthorizeEngine(b *testing.B, mode engine.Mode, cached bool) (*engine.Engine, []command.Command) {
	b.Helper()
	e := engine.New(workload.ChurnPolicy(256, 256), mode)
	if !cached {
		e.SetCacheSlots(-1)
	}
	cmds := workload.CommandSlab(4096, 256, 256)
	s := e.Snapshot()
	// Two passes: the first marks every command in the interner doorkeeper,
	// the second admits and fully resolves it (and fills the cache).
	for pass := 0; pass < 2; pass++ {
		for _, c := range cmds {
			s.Authorize(c)
		}
	}
	s.Close()
	return e, cmds
}

// benchRegistry stands up a disk-backed registry with every tenant
// pre-opened (bootstrapped from the churn fixture), so benchmarks measure
// steady-state serving rather than first-touch recovery.
func benchRegistry(b *testing.B, tenants int) (*tenant.Registry, *workload.MultiTenantGen, func()) {
	b.Helper()
	dir, err := os.MkdirTemp("", "rbacbench-mt")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultMultiTenant(42)
	cfg.Tenants = tenants
	cfg.SubmitFrac = 0 // read-path benchmarks
	g := workload.NewMultiTenantGen(cfg)
	reg := tenant.New(tenant.Options{Dir: dir, Mode: engine.Refined, Bootstrap: g.Bootstrap})
	for i := 0; i < tenants; i++ {
		if _, err := reg.Authorize(g.TenantName(i), workload.ChurnGrant(0, cfg.Users, cfg.Roles)); err != nil {
			b.Fatal(err)
		}
	}
	return reg, g, func() {
		reg.Close()
		os.RemoveAll(dir)
	}
}

// benchReplWrites is the churn prefix applied before measurement in the
// replication benchmarks, so the follower converges on a warm stream.
const benchReplWrites = 512

// benchChurnRegistry stands up a single-tenant churn registry with the warm
// write prefix applied — the single-node baseline of the replication
// benchmarks and the primary of benchReplicatedPair.
func benchChurnRegistry(b *testing.B) (*tenant.Registry, func()) {
	b.Helper()
	dir, err := os.MkdirTemp("", "rbacbench-repl")
	if err != nil {
		b.Fatal(err)
	}
	reg := tenant.New(tenant.Options{Dir: dir, Mode: engine.Refined})
	if err := reg.InstallPolicy("t", workload.ChurnPolicy(256, 256)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchReplWrites; i++ {
		if res, err := reg.Submit("t", workload.ChurnGrant(i, 256, 256)); err != nil || res.Outcome != command.Applied {
			b.Fatalf("churn prefix %d: outcome=%v err=%v", i, res.Outcome, err)
		}
	}
	return reg, func() {
		reg.Close()
		os.RemoveAll(dir)
	}
}

// benchReplicatedPair stands up a primary registry behind an HTTP source and
// a follower replicating tenant "t" from it, converged before return.
func benchReplicatedPair(b *testing.B) (prim, folReg *tenant.Registry, cleanup func()) {
	b.Helper()
	prim, cleanPrim := benchChurnRegistry(b)
	mux := http.NewServeMux()
	replication.NewSource(prim, replication.SourceOptions{}).Register(mux)
	ts := httptest.NewServer(mux)
	folDir, err := os.MkdirTemp("", "rbacbench-fol")
	if err != nil {
		b.Fatal(err)
	}
	folReg = tenant.New(tenant.Options{Dir: folDir, Mode: engine.Refined})
	// Production-shaped long-poll: new records still propagate instantly
	// (the in-flight pull wakes on the primary's publish broadcast), but an
	// idle follower only touches the CPU every PollWait — keeping the read
	// benchmark's background noise at the deployment level, not a test
	// loop's.
	fol := replication.NewFollower(folReg, replication.FollowerOptions{
		Upstream: ts.URL,
		PollWait: 10 * time.Second,
		Backoff:  20 * time.Millisecond,
	})
	cleanup = func() {
		fol.Close()
		ts.Close()
		folReg.Close()
		os.RemoveAll(folDir)
		cleanPrim()
	}
	if err := fol.Ensure("t"); err != nil {
		cleanup()
		b.Fatal(err)
	}
	if gen, ok, err := folReg.WaitGeneration("t", benchReplWrites, 30*time.Second); err != nil || !ok {
		cleanup()
		b.Fatalf("follower stuck at generation %d (err %v)", gen, err)
	}
	return prim, folReg, cleanup
}

// benchRegistryBatch measures the per-query cost of the batched read path at
// batch size k against one tenant (two warm passes first, so the interner
// and decision cache serve the measured loop).
func benchRegistryBatch(b *testing.B, reg *tenant.Registry, name string, k int) {
	b.Helper()
	cmds := workload.CommandSlab(4096, 256, 256)
	out := make([]engine.AuthzResult, 0, k)
	for pass := 0; pass < 2; pass++ {
		for off := 0; off+k <= len(cmds); off += k {
			if _, _, err := reg.AuthorizeBatchInto(name, cmds[off:off+k], out[:0]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += k {
		n := k
		if rem := b.N - i; rem < n {
			n = rem
		}
		off := i % (len(cmds) - k)
		results, _, err := reg.AuthorizeBatchInto(name, cmds[off:off+n], out[:0])
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			if !res.OK {
				b.Fatalf("query %d denied", off+j)
			}
		}
	}
	// The callers' deferred teardown closes registries and HTTP servers;
	// keep that out of the measurement.
	b.StopTimer()
}

// benchBatch measures the batched read path at batch size k, normalised per
// query (b.N counts queries, not batches) so it compares head-to-head with
// BatchVsSingle/single.
func benchBatch(b *testing.B, k int) {
	reg, g, cleanup := benchRegistry(b, 4)
	defer cleanup()
	name, cmds := g.QueryBatch(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i += k {
		n := k
		if rem := b.N - i; rem < n {
			n = rem
		}
		off := i % (len(cmds) - k)
		results, err := reg.AuthorizeBatch(name, cmds[off:off+n])
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			if !res.OK {
				b.Fatalf("batch query %d denied", off+j)
			}
		}
	}
}

// matchesFilter reports whether a benchmark name passes the filter: empty
// matches everything, otherwise the name must contain at least one of the
// comma-separated substrings.
func matchesFilter(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, part := range strings.Split(filter, ",") {
		if part != "" && strings.Contains(name, part) {
			return true
		}
	}
	return false
}

// serveBenchNames pre-enumerates the serve-mode entries so a filter decides
// whether the socket harness has to stand up at all. The names mirror what
// RunServeBench emits under the default (Sync) configuration.
var serveBenchNames = []string{
	"ServeAuthorize/p50", "ServeAuthorize/p99", "ServeAuthorize/p999",
	"ServeCheck/p50", "ServeCheck/p99", "ServeCheck/p999",
	"ServeDurableSubmit/p50", "ServeDurableSubmit/p99", "ServeDurableSubmit/p999",
	"ServeThroughput/achieved",
}

// wireBenchNames are the binary-protocol counterparts: the same ops driven
// over the persistent framed wire (rbacbench -serve -wire). They ride the
// same harness run as serveBenchNames so WireAuthorize/p50 vs
// ServeAuthorize/p50 is a same-run, same-rate comparison — the ≥3× socket
// win the binary plane exists for.
var wireBenchNames = []string{
	"WireAuthorize/p50", "WireAuthorize/p99", "WireAuthorize/p999",
	"WireCheck/p50", "WireCheck/p99", "WireCheck/p999",
	"WireDurableSubmit/p50", "WireDurableSubmit/p99", "WireDurableSubmit/p999",
	"WireThroughput/achieved",
}

// routedBenchNames are the routed-mode counterparts: the same ops driven at
// a node that owns none of the tenants, so every request crosses the routing
// front to the owning primary. RoutedAuthorize/p50 vs ServeAuthorize/p50 is
// the priced routing hop the acceptance gate bounds.
var routedBenchNames = []string{
	"RoutedAuthorize/p50", "RoutedAuthorize/p99", "RoutedAuthorize/p999",
	"RoutedCheck/p50", "RoutedCheck/p99", "RoutedCheck/p999",
	"RoutedDurableSubmit/p50", "RoutedDurableSubmit/p99", "RoutedDurableSubmit/p999",
	"RoutedThroughput/achieved",
}

// serveSpecs runs the socket-level serve bench when the filter asks for any
// of its entries, and returns only the entries the filter matched — the
// harness is one run regardless of how many of its series are wanted. The
// routed harness is a second, independent run gated the same way by its own
// names.
func serveSpecs(progress io.Writer, filter string) (map[string]BenchResult, error) {
	wanted := func(names []string) bool {
		for _, name := range names {
			if matchesFilter(name, filter) {
				return true
			}
		}
		return false
	}
	out := make(map[string]BenchResult)
	// The wire pass rides the serve harness run (RunServeBench with Wire set
	// emits both series), so a filter wanting either stands the stack up once
	// and Wire* vs Serve* stays a same-run comparison.
	if serveWanted, wireWanted := wanted(serveBenchNames), wanted(wireBenchNames); serveWanted || wireWanted {
		all, err := RunServeBench(progress, ServeBenchOptions{Sync: true, Wire: wireWanted})
		if err != nil {
			return nil, fmt.Errorf("serve bench (wire=%v): %w", wireWanted, err)
		}
		for name, r := range all {
			if matchesFilter(name, filter) {
				out[name] = r
			}
		}
	}
	if wanted(routedBenchNames) {
		all, err := RunServeBench(progress, ServeBenchOptions{Sync: true, Routed: true})
		if err != nil {
			return nil, fmt.Errorf("serve bench (routed): %w", err)
		}
		for name, r := range all {
			if matchesFilter(name, filter) {
				out[name] = r
			}
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// runSpecs measures the registered benchmarks passing the filter, plus the
// serve-mode socket entries when the filter wants them.
func runSpecs(progress io.Writer, filter string) (map[string]BenchResult, error) {
	results := make(map[string]BenchResult, len(BenchSpecs()))
	for _, spec := range BenchSpecs() {
		if !matchesFilter(spec.Name, filter) {
			continue
		}
		// Collect the previous spec's garbage (dead engines, registries)
		// before measuring, so one spec's heap does not tax the next one's
		// GC and the numbers stay comparable across runs and filters.
		runtime.GC()
		r := testing.Benchmark(spec.F)
		results[spec.Name] = BenchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-50s %12.0f ns/op %8d allocs/op\n",
				spec.Name, results[spec.Name].NsPerOp, results[spec.Name].AllocsPerOp)
		}
	}
	serve, err := serveSpecs(progress, filter)
	if err != nil {
		return nil, err
	}
	for name, r := range serve {
		results[name] = r
	}
	return results, nil
}

// WriteBenchJSON runs the registered benchmarks (all of them, or only those
// matching the comma-separated filter when it is non-empty) with
// testing.Benchmark and writes the results as a flat JSON map (benchmark
// name → measurement), the machine-readable perf trajectory consumed across
// PRs (BENCH_1.json, BENCH_2.json, …).
func WriteBenchJSON(out io.Writer, progress io.Writer, filter string) error {
	results, err := runSpecs(progress, filter)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// BenchDiff re-runs the registered benchmarks matching filter and compares
// them against the committed baseline JSON: it fails (returns an error
// naming every offender) when a benchmark regresses by more than
// tolerancePct on ns/op *beyond the run's prevailing skew*, or on allocs/op
// — exactly for zero-alloc baselines, with a small band for nonzero ones.
//
// Skew normalization: shared and hosted machines run uniformly faster or
// slower than the machine that produced the baseline, which would flap a
// fixed ns/op band. Two estimators feed the forgiven skew and the larger
// wins. The median delta across all compared benchmarks catches uniform
// slowness (a genuine single-benchmark regression barely moves the median),
// but flaps when the filtered set is small and each member is itself noisy
// — the IncrementalGrant flake. The canary, when named, is a benchmark
// measured in the same run (merged into it when the filter misses it) but
// exempt from gating: a stable CPU-bound workload (ClosureBuild) whose
// delta against ITS baseline estimates machine skew with a single long
// measurement instead of a noisy median. The forgiven skew is capped at
// +50% so a change that slows everything still fails. Benchmarks absent
// from the baseline are reported as new and do not fail the diff.
func BenchDiff(out io.Writer, baselinePath, filter, canary string, tolerancePct float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchdiff: read baseline: %w", err)
	}
	var base map[string]BenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchdiff: parse baseline %s: %w", baselinePath, err)
	}
	cur, err := runSpecs(nil, filter)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchdiff: no benchmarks match filter %q", filter)
	}
	if canary != "" {
		if _, ok := cur[canary]; !ok {
			// The canary rides along outside the filter: same process, same
			// machine state, measured under the same conditions as the gated
			// set it normalizes.
			extra, err := runSpecs(nil, canary)
			if err != nil {
				return err
			}
			if _, ok := extra[canary]; !ok {
				return fmt.Errorf("benchdiff: canary %q is not a registered benchmark", canary)
			}
			cur[canary] = extra[canary]
		}
		if _, ok := base[canary]; !ok {
			return fmt.Errorf("benchdiff: canary %q has no entry in baseline %s", canary, baselinePath)
		}
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	deltaOf := func(name string) (float64, bool) {
		want, ok := base[name]
		if !ok || want.NsPerOp <= 0 {
			return 0, false
		}
		return (cur[name].NsPerOp - want.NsPerOp) / want.NsPerOp * 100, true
	}
	var deltas []float64
	for _, name := range names {
		if strings.HasSuffix(name, "/p99") || strings.HasSuffix(name, "/p999") {
			continue // ungated tails stay out of the skew estimate too
		}
		if d, ok := deltaOf(name); ok {
			deltas = append(deltas, d)
		}
	}
	skew := 0.0
	estimator := "median delta"
	if len(deltas) > 0 {
		sort.Float64s(deltas)
		skew = deltas[len(deltas)/2]
	}
	if canary != "" {
		if cd, ok := deltaOf(canary); ok && cd > skew {
			skew = cd
			estimator = "canary " + canary
		}
	}
	if skew < 0 {
		skew = 0 // a faster machine must not mask regressions
	}
	if skew > 50 {
		skew = 50 // a change that slows everything still fails
	}
	var failures []string
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "machine skew estimate: %+.1f%% (%s, forgiven up to +50%%)\n", skew, estimator)
	fmt.Fprintf(tw, "benchmark\tbase ns/op\tnow ns/op\tdelta\tbase allocs\tnow allocs\tverdict\n")
	for _, name := range names {
		got := cur[name]
		want, ok := base[name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t-\t%d\tnew\n", name, got.NsPerOp, got.AllocsPerOp)
			continue
		}
		delta, _ := deltaOf(name)
		// Zero-alloc baselines are exact — any allocation is a real
		// regression. Nonzero baselines include amortized growth (slices,
		// maps) whose per-op rounding shifts with the iteration count
		// testing.Benchmark lands on, so they get a small band.
		allocLimit := want.AllocsPerOp
		if want.AllocsPerOp > 0 {
			allocLimit += 1 + want.AllocsPerOp/10
		}
		verdict := "ok"
		if name == canary {
			// The canary measures the machine, not the change: it normalizes
			// the gated set and is never itself an offender here.
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\tcanary\n",
				name, want.NsPerOp, got.NsPerOp, delta, want.AllocsPerOp, got.AllocsPerOp)
			continue
		}
		if strings.HasSuffix(name, "/p99") || strings.HasSuffix(name, "/p999") {
			// Tail quantiles of the socket harness are dominated by
			// scheduler and disk jitter a shared runner cannot hold steady;
			// they ride along for the record while the medians gate.
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\ttail (ungated)\n",
				name, want.NsPerOp, got.NsPerOp, delta, want.AllocsPerOp, got.AllocsPerOp)
			continue
		}
		if got.AllocsPerOp > allocLimit {
			verdict = "ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d (limit %d)", name, want.AllocsPerOp, got.AllocsPerOp, allocLimit))
		} else if delta-skew > tolerancePct {
			verdict = "NS REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%% vs %+.1f%% skew > %.0f%%)", name, want.NsPerOp, got.NsPerOp, delta, skew, tolerancePct))
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\t%s\n",
			name, want.NsPerOp, got.NsPerOp, delta, want.AllocsPerOp, got.AllocsPerOp, verdict)
	}
	tw.Flush()
	if len(failures) > 0 {
		return fmt.Errorf("benchdiff: %d regression(s) vs %s:\n  %s",
			len(failures), baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}
