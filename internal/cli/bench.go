package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"text/tabwriter"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/engine"
	"adminrefine/internal/graph"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// runP1 is the incremental-engine experiment: it replays the same
// grant-then-query churn through the snapshot engine and through the
// rebuild-everything baseline, checks that both paths agree on every outcome
// and on the final policy, reports the speedup, and smoke-tests concurrent
// snapshot reads under writer churn.
func runP1(w io.Writer) error {
	const roles, users, ops = 256, 256, 300

	// Baseline: one long-lived decider that rebuilds closure, memo and
	// privilege-vertex tables on every generation change (the seed path).
	basePol := workload.ChurnPolicy(roles, users)
	baseAuth := core.NewRefinedAuthorizer(basePol)
	baseAuth.Decider().SetIncremental(false)
	baseOutcomes := make([]command.Outcome, ops)
	start := time.Now()
	for i := 0; i < ops; i++ {
		res := command.Step(basePol, workload.ChurnGrant(i, users, roles), baseAuth)
		baseOutcomes[i] = res.Outcome
		q := workload.ChurnGrant(i+1, users, roles)
		priv, err := q.Privilege()
		if err != nil {
			return err
		}
		if _, ok := baseAuth.Decider().HeldStronger(q.Actor, priv); !ok {
			return fmt.Errorf("baseline churn query %d denied", i)
		}
	}
	baseDur := time.Since(start)

	// Incremental: the snapshot engine.
	eng := engine.New(workload.ChurnPolicy(roles, users), engine.Refined)
	start = time.Now()
	for i := 0; i < ops; i++ {
		res := eng.Submit(workload.ChurnGrant(i, users, roles))
		if res.Outcome != baseOutcomes[i] {
			return fmt.Errorf("op %d: engine outcome %v, baseline %v", i, res.Outcome, baseOutcomes[i])
		}
		s := eng.Snapshot()
		_, ok := s.Authorize(workload.ChurnGrant(i+1, users, roles))
		s.Close()
		if !ok {
			return fmt.Errorf("engine churn query %d denied", i)
		}
	}
	incDur := time.Since(start)

	s := eng.Snapshot()
	same := s.Policy().Equal(basePol)
	s.Close()
	if !same {
		return fmt.Errorf("engine and baseline final policies diverged")
	}

	speedup := float64(baseDur) / float64(incDur)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "path\tops\ttotal\tper op\n")
	fmt.Fprintf(tw, "seed-rebuild\t%d\t%v\t%v\n", ops, baseDur.Round(time.Microsecond), (baseDur / ops).Round(time.Microsecond))
	fmt.Fprintf(tw, "engine-incremental\t%d\t%v\t%v\n", ops, incDur.Round(time.Microsecond), (incDur / ops).Round(time.Microsecond))
	tw.Flush()
	fmt.Fprintf(w, "\nspeedup: %.1fx (outcomes and final policies identical)\n", speedup)
	if speedup < 2 {
		return fmt.Errorf("incremental path only %.1fx faster than rebuild baseline", speedup)
	}

	// Concurrency smoke: snapshot readers under writer churn.
	var wg sync.WaitGroup
	errc := make(chan error, 5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < 200; i++ {
				snap := eng.Snapshot()
				gen := snap.Generation()
				if gen < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d -> %d", lastGen, gen)
					snap.Close()
					return
				}
				lastGen = gen
				if _, ok := snap.Authorize(workload.ChurnGrant(i+g, users, roles)); !ok {
					errc <- fmt.Errorf("reader %d lost authorization", g)
					snap.Close()
					return
				}
				snap.Close()
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		eng.Submit(workload.ChurnGrant(ops+i, users, roles))
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintf(w, "concurrency smoke: 4 readers x 200 snapshot reads under 100 writer transitions: ok\n")
	return nil
}

// BenchResult is one machine-readable benchmark measurement.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// BenchSpec names one registered benchmark closure.
type BenchSpec struct {
	Name string
	F    func(b *testing.B)
}

// BenchSpecs returns the benchmarks rbacbench can run standalone (via
// testing.Benchmark) to emit the cross-PR perf trajectory. The root go-test
// benchmarks of the same names delegate to these specs, so the BENCH JSON
// and `go test -bench` always measure identical code.
func BenchSpecs() []BenchSpec {
	const roles, users = 1024, 1024
	return []BenchSpec{
		{"IncrementalGrant/engine-incremental/roles=1024", func(b *testing.B) {
			e := engine.New(workload.ChurnPolicy(roles, users), engine.Refined)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.Submit(workload.ChurnGrant(i, users, roles)); res.Outcome == command.Denied || res.Outcome == command.IllFormed {
					b.Fatalf("churn grant rejected: %v", res.Outcome)
				}
				s := e.Snapshot()
				if _, ok := s.Authorize(workload.ChurnGrant(i+1, users, roles)); !ok {
					b.Fatal("query denied")
				}
				s.Close()
			}
		}},
		{"IncrementalGrant/seed-rebuild/roles=1024", func(b *testing.B) {
			p := workload.ChurnPolicy(roles, users)
			auth := core.NewRefinedAuthorizer(p)
			auth.Decider().SetIncremental(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := command.Step(p, workload.ChurnGrant(i, users, roles), auth); res.Outcome == command.Denied || res.Outcome == command.IllFormed {
					b.Fatalf("churn grant rejected: %v", res.Outcome)
				}
				q := workload.ChurnGrant(i+1, users, roles)
				priv, err := q.Privilege()
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := auth.Decider().HeldStronger(q.Actor, priv); !ok {
					b.Fatal("query denied")
				}
			}
		}},
		{"SnapshotAuthorizeParallel/roles=256", func(b *testing.B) {
			e := engine.New(workload.ChurnPolicy(256, 256), engine.Refined)
			// Precompute the command slab so the measurement matches the root
			// benchmark: the engine, not fmt.Sprintf.
			cmds := make([]command.Command, 4096)
			for i := range cmds {
				cmds[i] = workload.ChurnGrant(i, 256, 256)
			}
			s := e.Snapshot()
			s.Authorize(cmds[0])
			s.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s := e.Snapshot()
					if _, ok := s.Authorize(cmds[i%len(cmds)]); !ok {
						s.Close()
						b.Error("query denied")
						return
					}
					s.Close()
					i++
				}
			})
		}},
		{"ClosureBuild/roles=1024", func(b *testing.B) {
			p := workload.Chain(1024)
			g := p.Graph()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.NewClosure(g)
			}
		}},
		{"MultiTenantAuthorize/tenants=32/zipf=1.1", func(b *testing.B) {
			reg, g, cleanup := benchRegistry(b, 32)
			defer cleanup()
			// Precompute a skewed op slab so the measurement is the registry
			// (shard resolve + snapshot + decide), not the generator.
			type op struct {
				tenant string
				cmd    command.Command
			}
			ops := make([]op, 4096)
			for i := range ops {
				o := g.Next()
				ops[i] = op{o.Tenant, o.Cmd}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := ops[i%len(ops)]
				res, err := reg.Authorize(o.tenant, o.cmd)
				if err != nil || !res.OK {
					b.Fatalf("authorize %s: err=%v ok=%v", o.tenant, err, res.OK)
				}
			}
		}},
		{"BatchVsSingle/single", func(b *testing.B) {
			reg, g, cleanup := benchRegistry(b, 4)
			defer cleanup()
			name, cmds := g.QueryBatch(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := reg.Authorize(name, cmds[i%len(cmds)])
				if err != nil || !res.OK {
					b.Fatalf("authorize: err=%v ok=%v", err, res.OK)
				}
			}
		}},
		{"BatchVsSingle/batch=32", func(b *testing.B) { benchBatch(b, 32) }},
		{"BatchVsSingle/batch=256", func(b *testing.B) { benchBatch(b, 256) }},
	}
}

// benchRegistry stands up a disk-backed registry with every tenant
// pre-opened (bootstrapped from the churn fixture), so benchmarks measure
// steady-state serving rather than first-touch recovery.
func benchRegistry(b *testing.B, tenants int) (*tenant.Registry, *workload.MultiTenantGen, func()) {
	b.Helper()
	dir, err := os.MkdirTemp("", "rbacbench-mt")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultMultiTenant(42)
	cfg.Tenants = tenants
	cfg.SubmitFrac = 0 // read-path benchmarks
	g := workload.NewMultiTenantGen(cfg)
	reg := tenant.New(tenant.Options{Dir: dir, Mode: engine.Refined, Bootstrap: g.Bootstrap})
	for i := 0; i < tenants; i++ {
		if _, err := reg.Authorize(g.TenantName(i), workload.ChurnGrant(0, cfg.Users, cfg.Roles)); err != nil {
			b.Fatal(err)
		}
	}
	return reg, g, func() {
		reg.Close()
		os.RemoveAll(dir)
	}
}

// benchBatch measures the batched read path at batch size k, normalised per
// query (b.N counts queries, not batches) so it compares head-to-head with
// BatchVsSingle/single.
func benchBatch(b *testing.B, k int) {
	reg, g, cleanup := benchRegistry(b, 4)
	defer cleanup()
	name, cmds := g.QueryBatch(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i += k {
		n := k
		if rem := b.N - i; rem < n {
			n = rem
		}
		off := i % (len(cmds) - k)
		results, err := reg.AuthorizeBatch(name, cmds[off:off+n])
		if err != nil {
			b.Fatal(err)
		}
		for j, res := range results {
			if !res.OK {
				b.Fatalf("batch query %d denied", off+j)
			}
		}
	}
}

// WriteBenchJSON runs the registered benchmarks (all of them, or only those
// whose name contains filter when it is non-empty) with testing.Benchmark
// and writes the results as a flat JSON map (benchmark name → measurement),
// the machine-readable perf trajectory consumed across PRs (BENCH_1.json,
// BENCH_2.json, …).
func WriteBenchJSON(out io.Writer, progress io.Writer, filter string) error {
	results := make(map[string]BenchResult, len(BenchSpecs()))
	for _, spec := range BenchSpecs() {
		if filter != "" && !strings.Contains(spec.Name, filter) {
			continue
		}
		r := testing.Benchmark(spec.F)
		results[spec.Name] = BenchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		if progress != nil {
			fmt.Fprintf(progress, "%-50s %12.0f ns/op %8d allocs/op\n",
				spec.Name, results[spec.Name].NsPerOp, results[spec.Name].AllocsPerOp)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
