package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEntityKeys(t *testing.T) {
	cases := []struct {
		e    Entity
		key  string
		str  string
		user bool
	}{
		{User("bob"), "u:bob", "bob", true},
		{Role("staff"), "r:staff", "staff", false},
		{User("staff"), "u:staff", "staff", true}, // same name, different sort
	}
	for _, c := range cases {
		if got := c.e.Key(); got != c.key {
			t.Errorf("Key(%v) = %q, want %q", c.e, got, c.key)
		}
		if got := c.e.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.e, got, c.str)
		}
		if c.e.IsUser() != c.user || c.e.IsRole() == c.user {
			t.Errorf("%v: kind predicates inconsistent", c.e)
		}
	}
}

func TestEntityKeyDisambiguatesKinds(t *testing.T) {
	if User("x").Key() == Role("x").Key() {
		t.Fatal("user and role with the same name must have distinct keys")
	}
}

func TestEntityValidate(t *testing.T) {
	if err := User("bob").Validate(); err != nil {
		t.Errorf("valid user rejected: %v", err)
	}
	if err := (Entity{}).Validate(); err == nil {
		t.Error("zero entity accepted")
	}
	if err := (Entity{Kind: KindUser}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (Entity{Kind: 99, Name: "x"}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestUserPrivilege(t *testing.T) {
	q := Perm("read", "t1")
	if got := q.String(); got != "(read,t1)" {
		t.Errorf("String = %q", got)
	}
	if got := q.Key(); got != "p:(read,t1)" {
		t.Errorf("Key = %q", got)
	}
	if q.Depth() != 0 || q.Size() != 1 {
		t.Errorf("Depth/Size = %d/%d, want 0/1", q.Depth(), q.Size())
	}
	if err := q.Validate(); err != nil {
		t.Errorf("valid user privilege rejected: %v", err)
	}
	if err := Perm("", "t1").Validate(); err == nil {
		t.Error("empty action accepted")
	}
	if err := Perm("read", "").Validate(); err == nil {
		t.Error("empty object accepted")
	}
}

func TestAdminPrivilegeShapes(t *testing.T) {
	bob, staff, nurse := User("bob"), Role("staff"), Role("nurse")
	readT1 := Perm("read", "t1")

	cases := []struct {
		name  string
		p     AdminPrivilege
		valid bool
		depth int
		size  int
	}{
		{"grant(u,r)", Grant(bob, staff), true, 1, 1},
		{"revoke(u,r)", Revoke(bob, staff), true, 1, 1},
		{"grant(r,r')", Grant(staff, nurse), true, 1, 1},
		{"grant(r,q)", Grant(staff, readT1), true, 1, 2},
		{"grant(r,grant(u,r))", Grant(staff, Grant(bob, staff)), true, 2, 2},
		{"grant(r,grant(r,grant(u,r)))", Grant(staff, Grant(nurse, Grant(bob, staff))), true, 3, 3},
		{"grant(u,q) is ungrammatical", Grant(bob, readT1), false, 0, 0},
		{"grant(u,grant(u,r)) is ungrammatical", Grant(bob, Grant(bob, staff)), false, 0, 0},
		{"grant(r,u) is ungrammatical", Grant(staff, bob), false, 0, 0},
		{"nil destination", AdminPrivilege{Op: OpGrant, Src: staff}, false, 0, 0},
		{"invalid op", AdminPrivilege{Op: 0, Src: staff, Dst: nurse}, false, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if c.valid && err != nil {
				t.Fatalf("unexpectedly invalid: %v", err)
			}
			if !c.valid {
				if err == nil {
					t.Fatal("unexpectedly valid")
				}
				return
			}
			if c.p.Depth() != c.depth {
				t.Errorf("Depth = %d, want %d", c.p.Depth(), c.depth)
			}
			if c.p.Size() != c.size {
				t.Errorf("Size = %d, want %d", c.p.Size(), c.size)
			}
		})
	}
}

func TestNewAdmin(t *testing.T) {
	if _, err := NewAdmin(OpGrant, User("bob"), Role("staff")); err != nil {
		t.Errorf("NewAdmin valid: %v", err)
	}
	if _, err := NewAdmin(OpGrant, User("bob"), Perm("read", "t1")); err == nil {
		t.Error("NewAdmin accepted ungrammatical privilege")
	}
}

func TestAdminPrivilegeStringsMatchPaperExamples(t *testing.T) {
	bob, staff, dbusr2 := User("bob"), Role("staff"), Role("dbusr2")
	// Example 5 privileges.
	p1 := Grant(bob, staff)
	if got := p1.String(); got != "grant(bob, staff)" {
		t.Errorf("p1 = %q", got)
	}
	p2 := Grant(staff, Grant(bob, dbusr2))
	if got := p2.String(); got != "grant(staff, grant(bob, dbusr2))" {
		t.Errorf("p2 = %q", got)
	}
	if got := p2.Key(); got != "+(r:staff,+(u:bob,r:dbusr2))" {
		t.Errorf("p2 key = %q", got)
	}
	p3 := Revoke(Role("dbusr2"), Role("dbusr1"))
	if got := p3.String(); got != "revoke(dbusr2, dbusr1)" {
		t.Errorf("p3 = %q", got)
	}
}

func TestKeyInjectivity(t *testing.T) {
	// Structurally different privileges must have different keys, including
	// tricky names containing the key syntax characters.
	ps := []Privilege{
		Perm("read", "t1"),
		Perm("read", "t2"),
		Perm("re", "ad,t1"), // would collide with (read,t1) without escaping
		Grant(User("bob"), Role("staff")),
		Grant(User("bob"), Role("sta")),
		Grant(User("bobstaff"), Role("x")),
		Revoke(User("bob"), Role("staff")),
		Grant(Role("bob"), Role("staff")),
		Grant(Role("a"), Grant(User("b"), Role("c"))),
		Grant(Role("a"), Revoke(User("b"), Role("c"))),
		Grant(Role("a"), Perm("b", "c")),
		Grant(Role("a,b"), Role("c")),
		Grant(Role("a"), Role("b,c")),
	}
	seen := make(map[string]Privilege)
	for _, p := range ps {
		k := p.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v both map to %q", prev, p, k)
		}
		seen[k] = p
	}
}

func TestEscapeRoundTripsViaQuick(t *testing.T) {
	// escape must be injective: distinct names yield distinct escapes.
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return escape(a) != escape(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSamePrivilegeAndSameVertex(t *testing.T) {
	p := Grant(User("bob"), Role("staff"))
	q := Grant(User("bob"), Role("staff"))
	if !SamePrivilege(p, q) {
		t.Error("structurally equal privileges not Same")
	}
	if SamePrivilege(p, Revoke(User("bob"), Role("staff"))) {
		t.Error("grant and revoke conflated")
	}
	if !SamePrivilege(nil, nil) {
		t.Error("nil,nil should be same")
	}
	if SamePrivilege(p, nil) || SamePrivilege(nil, p) {
		t.Error("nil vs non-nil should differ")
	}
	if !SameVertex(User("x"), User("x")) || SameVertex(User("x"), Role("x")) {
		t.Error("SameVertex on entities wrong")
	}
}

func TestSubterms(t *testing.T) {
	bob, staff, nurse := User("bob"), Role("staff"), Role("nurse")
	p := Grant(staff, Grant(nurse, Grant(bob, staff)))
	subs := Subterms(p)
	if len(subs) != 3 {
		t.Fatalf("len(Subterms) = %d, want 3", len(subs))
	}
	if subs[0].Depth() != 3 || subs[1].Depth() != 2 || subs[2].Depth() != 1 {
		t.Errorf("subterm depths = %d,%d,%d", subs[0].Depth(), subs[1].Depth(), subs[2].Depth())
	}
	q := Perm("read", "t1")
	if got := Subterms(q); len(got) != 1 || got[0].Key() != q.Key() {
		t.Errorf("Subterms(user priv) = %v", got)
	}
	inner := Grant(staff, q)
	if got := Subterms(inner); len(got) != 2 {
		t.Errorf("Subterms(grant(r,q)) = %v, want 2 elements", got)
	}
}

func TestEntities(t *testing.T) {
	bob, staff, nurse := User("bob"), Role("staff"), Role("nurse")
	p := Grant(staff, Grant(nurse, Grant(bob, staff)))
	es := Entities(p)
	want := []Entity{staff, nurse, bob}
	if len(es) != len(want) {
		t.Fatalf("Entities = %v, want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("Entities[%d] = %v, want %v", i, es[i], want[i])
		}
	}
	if got := Entities(Perm("a", "b")); len(got) != 0 {
		t.Errorf("Entities(user priv) = %v, want empty", got)
	}
}

func TestOpStrings(t *testing.T) {
	if OpGrant.String() != "grant" || OpRevoke.String() != "revoke" {
		t.Error("op names wrong")
	}
	if OpGrant.Symbol() != "+" || OpRevoke.Symbol() != "-" {
		t.Error("op symbols wrong")
	}
	if Op(0).Valid() || Op(9).Valid() {
		t.Error("invalid ops accepted")
	}
	if !strings.Contains(Op(9).String(), "Op(") {
		t.Error("unknown op String should be diagnostic")
	}
}

func TestValidatePrivilege(t *testing.T) {
	if err := ValidatePrivilege(Perm("read", "t1")); err != nil {
		t.Error(err)
	}
	if err := ValidatePrivilege(Grant(User("u"), Role("r"))); err != nil {
		t.Error(err)
	}
	if err := ValidatePrivilege(nil); err == nil {
		t.Error("nil privilege accepted")
	}
	if err := ValidatePrivilege(Grant(User("u"), Perm("a", "b"))); err == nil {
		t.Error("ungrammatical privilege accepted")
	}
}

func TestDeepNestingDepthAndKeyLinearity(t *testing.T) {
	// Build a depth-64 nested privilege and check Depth/Size do not blow up.
	var p Privilege = Grant(User("u"), Role("r0"))
	for i := 1; i <= 63; i++ {
		p = Grant(Role("r"), p)
	}
	if p.Depth() != 64 {
		t.Errorf("Depth = %d, want 64", p.Depth())
	}
	if p.Size() != 64 {
		t.Errorf("Size = %d, want 64", p.Size())
	}
	if err := ValidatePrivilege(p); err != nil {
		t.Errorf("deeply nested privilege invalid: %v", err)
	}
}
