package model

import (
	"encoding/json"
	"fmt"
)

// privWire is the JSON wire form of a privilege term. Exactly one of Perm
// and Admin is set.
type privWire struct {
	Perm  *permWire  `json:"perm,omitempty"`
	Admin *adminWire `json:"admin,omitempty"`
}

type permWire struct {
	Action string `json:"action"`
	Object string `json:"object"`
}

type adminWire struct {
	Op      string    `json:"op"` // "grant" or "revoke"
	SrcKind string    `json:"srcKind"`
	Src     string    `json:"src"`
	DstRole string    `json:"dstRole,omitempty"`
	DstPriv *privWire `json:"dstPriv,omitempty"`
}

func toWire(p Privilege) (*privWire, error) {
	switch t := p.(type) {
	case UserPrivilege:
		return &privWire{Perm: &permWire{Action: t.Action, Object: t.Object}}, nil
	case AdminPrivilege:
		w := &adminWire{Op: t.Op.String(), SrcKind: t.Src.Kind.String(), Src: t.Src.Name}
		switch d := t.Dst.(type) {
		case Entity:
			w.DstRole = d.Name
		case Privilege:
			inner, err := toWire(d)
			if err != nil {
				return nil, err
			}
			w.DstPriv = inner
		default:
			return nil, fmt.Errorf("marshal privilege: unsupported destination %T", t.Dst)
		}
		return &privWire{Admin: w}, nil
	default:
		return nil, fmt.Errorf("marshal privilege: unsupported type %T", p)
	}
}

func fromWire(w *privWire) (Privilege, error) {
	switch {
	case w == nil:
		return nil, fmt.Errorf("unmarshal privilege: empty term")
	case w.Perm != nil && w.Admin != nil:
		return nil, fmt.Errorf("unmarshal privilege: both perm and admin set")
	case w.Perm != nil:
		q := Perm(w.Perm.Action, w.Perm.Object)
		if err := q.Validate(); err != nil {
			return nil, err
		}
		return q, nil
	case w.Admin != nil:
		a := w.Admin
		var op Op
		switch a.Op {
		case "grant":
			op = OpGrant
		case "revoke":
			op = OpRevoke
		default:
			return nil, fmt.Errorf("unmarshal privilege: unknown op %q", a.Op)
		}
		var kind Kind
		switch a.SrcKind {
		case "user":
			kind = KindUser
		case "role":
			kind = KindRole
		default:
			return nil, fmt.Errorf("unmarshal privilege: unknown source kind %q", a.SrcKind)
		}
		src := Entity{Kind: kind, Name: a.Src}
		var dst Vertex
		switch {
		case a.DstRole != "" && a.DstPriv != nil:
			return nil, fmt.Errorf("unmarshal privilege: both dstRole and dstPriv set")
		case a.DstRole != "":
			dst = Role(a.DstRole)
		case a.DstPriv != nil:
			inner, err := fromWire(a.DstPriv)
			if err != nil {
				return nil, err
			}
			dst = inner
		default:
			return nil, fmt.Errorf("unmarshal privilege: no destination")
		}
		return NewAdmin(op, src, dst)
	default:
		return nil, fmt.Errorf("unmarshal privilege: neither perm nor admin set")
	}
}

// vertexWire is the JSON wire form of a Vertex: exactly one of Entity and
// Priv is set.
type vertexWire struct {
	Kind string    `json:"kind,omitempty"` // "user" or "role"
	Name string    `json:"name,omitempty"`
	Priv *privWire `json:"priv,omitempty"`
}

// MarshalVertex encodes an entity or privilege vertex as JSON.
func MarshalVertex(v Vertex) ([]byte, error) {
	switch t := v.(type) {
	case Entity:
		return json.Marshal(vertexWire{Kind: t.Kind.String(), Name: t.Name})
	case Privilege:
		w, err := toWire(t)
		if err != nil {
			return nil, err
		}
		return json.Marshal(vertexWire{Priv: w})
	default:
		return nil, fmt.Errorf("marshal vertex: unsupported type %T", v)
	}
}

// UnmarshalVertex decodes an entity or privilege vertex from JSON.
func UnmarshalVertex(data []byte) (Vertex, error) {
	var w vertexWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	switch {
	case w.Priv != nil && w.Name != "":
		return nil, fmt.Errorf("unmarshal vertex: both entity and privilege set")
	case w.Priv != nil:
		return fromWire(w.Priv)
	case w.Name != "":
		switch w.Kind {
		case "user":
			return User(w.Name), nil
		case "role":
			return Role(w.Name), nil
		default:
			return nil, fmt.Errorf("unmarshal vertex: unknown kind %q", w.Kind)
		}
	default:
		return nil, fmt.Errorf("unmarshal vertex: empty")
	}
}

// MarshalPrivilege encodes a privilege term as JSON.
func MarshalPrivilege(p Privilege) ([]byte, error) {
	w, err := toWire(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// UnmarshalPrivilege decodes a privilege term from JSON and validates it
// against the grammar.
func UnmarshalPrivilege(data []byte) (Privilege, error) {
	var w privWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	return fromWire(&w)
}
