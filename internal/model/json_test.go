package model

import (
	"strings"
	"testing"
)

func TestUnmarshalPrivilegeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"empty object", `{}`, "neither perm nor admin"},
		{"both set", `{"perm":{"action":"a","object":"b"},"admin":{"op":"grant","srcKind":"user","src":"u","dstRole":"r"}}`, "both perm and admin"},
		{"bad op", `{"admin":{"op":"frob","srcKind":"user","src":"u","dstRole":"r"}}`, "unknown op"},
		{"bad kind", `{"admin":{"op":"grant","srcKind":"thing","src":"u","dstRole":"r"}}`, "unknown source kind"},
		{"no destination", `{"admin":{"op":"grant","srcKind":"user","src":"u"}}`, "no destination"},
		{"two destinations", `{"admin":{"op":"grant","srcKind":"user","src":"u","dstRole":"r","dstPriv":{"perm":{"action":"a","object":"b"}}}}`, "both dstRole and dstPriv"},
		{"empty perm", `{"perm":{"action":"","object":"b"}}`, "empty action or object"},
		{"ungrammatical", `{"admin":{"op":"grant","srcKind":"user","src":"u","dstPriv":{"perm":{"action":"a","object":"b"}}}}`, "role destination"},
		{"nested bad", `{"admin":{"op":"grant","srcKind":"role","src":"r","dstPriv":{}}}`, "neither perm nor admin"},
		{"not json", `{`, "unexpected end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := UnmarshalPrivilege([]byte(c.json))
			if err == nil {
				t.Fatalf("accepted %s", c.json)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q missing %q", err, c.want)
			}
		})
	}
}

func TestUnmarshalVertexRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty", `{}`},
		{"bad kind", `{"kind":"thing","name":"x"}`},
		{"both", `{"kind":"user","name":"x","priv":{"perm":{"action":"a","object":"b"}}}`},
		{"bad priv", `{"priv":{}}`},
		{"not json", `[`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := UnmarshalVertex([]byte(c.json)); err == nil {
				t.Fatalf("accepted %s", c.json)
			}
		})
	}
	// Valid vertices decode.
	v, err := UnmarshalVertex([]byte(`{"kind":"role","name":"staff"}`))
	if err != nil || !SameVertex(v, Role("staff")) {
		t.Fatalf("role vertex = %v, %v", v, err)
	}
	v, err = UnmarshalVertex([]byte(`{"kind":"user","name":"bob"}`))
	if err != nil || !SameVertex(v, User("bob")) {
		t.Fatalf("user vertex = %v, %v", v, err)
	}
}

func TestMarshalPrivilegeRejectsInvalid(t *testing.T) {
	if _, err := MarshalPrivilege(nil); err == nil {
		t.Fatal("nil privilege marshalled")
	}
	bad := AdminPrivilege{Op: OpGrant, Src: User("u")} // nil destination
	if _, err := MarshalPrivilege(bad); err == nil {
		t.Fatal("destination-less privilege marshalled")
	}
	if _, err := MarshalVertex(nil); err == nil {
		t.Fatal("nil vertex marshalled")
	}
}

func TestDstAccessors(t *testing.T) {
	flat := Grant(User("u"), Role("r"))
	if e, ok := flat.DstEntity(); !ok || e != Role("r") {
		t.Fatalf("DstEntity = %v, %v", e, ok)
	}
	if _, ok := flat.DstPrivilege(); ok {
		t.Fatal("flat privilege reported nested destination")
	}
	nested := Grant(Role("r"), flat)
	if _, ok := nested.DstEntity(); ok {
		t.Fatal("nested privilege reported entity destination")
	}
	if p, ok := nested.DstPrivilege(); !ok || p.Key() != flat.Key() {
		t.Fatalf("DstPrivilege = %v, %v", p, ok)
	}
}
