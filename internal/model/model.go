// Package model defines the vocabulary of the administrative RBAC model of
// Dekker & Etalle, "Refinement for Administrative Policies" (SDM/VLDB 2007):
// users, roles, user privileges, and the full privilege grammar P† of
// Definition 2, in which administrative privileges are built from the grant
// connective ¤ and the revoke connective ♦ and may be nested to arbitrary
// depth.
//
// Values of this package are immutable once constructed. Every vertex of a
// policy graph (user, role, or privilege) has a canonical Key that is unique
// per structural identity, so that privileges can be interned, hashed and
// compared cheaply.
package model

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two entity sorts that may appear as graph vertices
// besides privileges: users (U) and roles (R).
type Kind uint8

const (
	// KindUser marks an entity u ∈ U.
	KindUser Kind = iota + 1
	// KindRole marks an entity r ∈ R.
	KindRole
)

// String returns "user" or "role".
func (k Kind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindRole:
		return "role"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k == KindUser || k == KindRole }

// Entity is a named user or role. Entities are value types and compare with
// ==.
type Entity struct {
	Kind Kind
	Name string
}

// User constructs a user entity.
func User(name string) Entity { return Entity{Kind: KindUser, Name: name} }

// Role constructs a role entity.
func Role(name string) Entity { return Entity{Kind: KindRole, Name: name} }

// IsUser reports whether e is a user.
func (e Entity) IsUser() bool { return e.Kind == KindUser }

// IsRole reports whether e is a role.
func (e Entity) IsRole() bool { return e.Kind == KindRole }

// Key returns the canonical unique key of the entity ("u:name" or "r:name",
// with the name escaped so keys never collide).
func (e Entity) Key() string {
	switch e.Kind {
	case KindUser:
		return "u:" + escape(e.Name)
	case KindRole:
		return "r:" + escape(e.Name)
	default:
		return "?:" + escape(e.Name)
	}
}

// String returns the bare entity name, as in the paper's figures.
func (e Entity) String() string { return e.Name }

// Validate checks that the entity has a defined kind and a non-empty name.
func (e Entity) Validate() error {
	if !e.Kind.Valid() {
		return fmt.Errorf("entity %q: invalid kind", e.Name)
	}
	if e.Name == "" {
		return fmt.Errorf("entity: empty name")
	}
	return nil
}

// Op is an administrative connective: ¤ (grant, add an edge) or ♦ (revoke,
// remove an edge).
type Op uint8

const (
	// OpGrant is the paper's ¤ connective: the privilege to add an edge.
	OpGrant Op = iota + 1
	// OpRevoke is the paper's ♦ connective: the privilege to remove an edge.
	OpRevoke
)

// String returns the ASCII rendering used by the RPL policy language:
// "grant" for ¤ and "revoke" for ♦.
func (o Op) String() string {
	switch o {
	case OpGrant:
		return "grant"
	case OpRevoke:
		return "revoke"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Symbol returns the paper's one-character connective symbol: "+" for ¤ and
// "-" for ♦ (the concrete syntax stand-ins for ¤ and ♦).
func (o Op) Symbol() string {
	switch o {
	case OpGrant:
		return "+"
	case OpRevoke:
		return "-"
	default:
		return "?"
	}
}

// Valid reports whether o is a defined connective.
func (o Op) Valid() bool { return o == OpGrant || o == OpRevoke }

// Vertex is anything that can appear as a node of the policy graph and as an
// operand of an administrative command: an Entity or a Privilege.
type Vertex interface {
	// Key returns a canonical string unique per structural identity.
	Key() string
	// String returns the human-readable rendering.
	String() string
}

// Privilege is the sealed sum type for the grammar P† of Definition 2:
//
//	p ::= q | ¤(u,r) | ♦(u,r) | ¤(r,r') | ♦(r,r') | ¤(r,p) | ♦(r,p)
//
// where q ranges over user privileges. The two implementations are
// UserPrivilege and AdminPrivilege.
type Privilege interface {
	Vertex
	// Depth returns the number of nested administrative connectives: 0 for
	// a user privilege, 1 for ¤(u,r), 2 for ¤(r,¤(u,r)), and so on.
	Depth() int
	// Size returns the total number of grammar nodes in the privilege term.
	Size() int
	sealedPrivilege()
}

// UserPrivilege is a permission q = (action, object) ∈ P ⊆ A×O, e.g.
// (read, ehrtable).
type UserPrivilege struct {
	Action string
	Object string
}

// Perm constructs the user privilege (action, object).
func Perm(action, object string) UserPrivilege {
	return UserPrivilege{Action: action, Object: object}
}

// Key returns the canonical key "p:(action,object)".
func (q UserPrivilege) Key() string {
	return "p:(" + escape(q.Action) + "," + escape(q.Object) + ")"
}

// String renders the privilege as "(action,object)", matching the paper.
func (q UserPrivilege) String() string {
	return "(" + q.Action + "," + q.Object + ")"
}

// Depth of a user privilege is 0.
func (q UserPrivilege) Depth() int { return 0 }

// Size of a user privilege is 1.
func (q UserPrivilege) Size() int { return 1 }

// Validate checks that both components are non-empty.
func (q UserPrivilege) Validate() error {
	if q.Action == "" || q.Object == "" {
		return fmt.Errorf("user privilege %s: empty action or object", q)
	}
	return nil
}

func (UserPrivilege) sealedPrivilege() {}

// AdminPrivilege is an administrative privilege a(src, dst) where a is ¤ or
// ♦, src is a user or role, and dst is a role or a (possibly administrative)
// privilege. The grammar of Definition 2 admits exactly:
//
//	¤(u,r)  ♦(u,r)   — src user, dst role   (user-assignment edges)
//	¤(r,r') ♦(r,r')  — src role, dst role   (role-hierarchy edges)
//	¤(r,p)  ♦(r,p)   — src role, dst priv   (privilege-assignment edges)
//
// Construct values with Grant/Revoke/NewAdmin; Validate enforces the grammar.
type AdminPrivilege struct {
	Op  Op
	Src Entity
	Dst Vertex // Entity (role) or Privilege
}

// Grant constructs ¤(src, dst).
func Grant(src Entity, dst Vertex) AdminPrivilege {
	return AdminPrivilege{Op: OpGrant, Src: src, Dst: dst}
}

// Revoke constructs ♦(src, dst).
func Revoke(src Entity, dst Vertex) AdminPrivilege {
	return AdminPrivilege{Op: OpRevoke, Src: src, Dst: dst}
}

// NewAdmin constructs op(src, dst) and validates it against the grammar.
func NewAdmin(op Op, src Entity, dst Vertex) (AdminPrivilege, error) {
	p := AdminPrivilege{Op: op, Src: src, Dst: dst}
	if err := p.Validate(); err != nil {
		return AdminPrivilege{}, err
	}
	return p, nil
}

// Key returns the canonical key, e.g. "+(u:bob,r:staff)" for ¤(bob,staff)
// or "-(r:a,+(u:b,r:c))" for ♦(a,¤(b,c)).
func (a AdminPrivilege) Key() string {
	var b strings.Builder
	a.writeKey(&b)
	return b.String()
}

func (a AdminPrivilege) writeKey(b *strings.Builder) {
	b.WriteString(a.Op.Symbol())
	b.WriteByte('(')
	b.WriteString(a.Src.Key())
	b.WriteByte(',')
	switch d := a.Dst.(type) {
	case Entity:
		b.WriteString(d.Key())
	case AdminPrivilege:
		d.writeKey(b)
	case UserPrivilege:
		b.WriteString(d.Key())
	default:
		if a.Dst == nil {
			b.WriteString("<nil>")
		} else {
			b.WriteString(a.Dst.Key())
		}
	}
	b.WriteByte(')')
}

// String renders the privilege in RPL concrete syntax, e.g.
// "grant(bob, staff)" or "grant(staff, grant(bob, staff))".
func (a AdminPrivilege) String() string {
	var b strings.Builder
	a.writeString(&b)
	return b.String()
}

func (a AdminPrivilege) writeString(b *strings.Builder) {
	b.WriteString(a.Op.String())
	b.WriteByte('(')
	b.WriteString(a.Src.String())
	b.WriteString(", ")
	switch d := a.Dst.(type) {
	case AdminPrivilege:
		d.writeString(b)
	default:
		if a.Dst == nil {
			b.WriteString("<nil>")
		} else {
			b.WriteString(a.Dst.String())
		}
	}
	b.WriteByte(')')
}

// Depth returns 1 + the depth of the destination when it is a privilege,
// and 1 otherwise.
func (a AdminPrivilege) Depth() int {
	if p, ok := a.Dst.(Privilege); ok {
		return 1 + p.Depth()
	}
	return 1
}

// Size returns the number of grammar nodes of the term.
func (a AdminPrivilege) Size() int {
	if p, ok := a.Dst.(Privilege); ok {
		return 1 + p.Size()
	}
	return 1
}

// DstPrivilege returns the destination as a Privilege when the privilege has
// the shape a(r, p); ok is false for the vertex-target shapes a(u,r), a(r,r').
func (a AdminPrivilege) DstPrivilege() (Privilege, bool) {
	p, ok := a.Dst.(Privilege)
	return p, ok
}

// DstEntity returns the destination as an Entity when the privilege has the
// shape a(u,r) or a(r,r'); ok is false for the privilege-target shape a(r,p).
func (a AdminPrivilege) DstEntity() (Entity, bool) {
	e, ok := a.Dst.(Entity)
	return e, ok
}

// Validate enforces the grammar of Definition 2:
//   - the connective must be ¤ or ♦;
//   - the source must be a valid user or role;
//   - the destination must be a role, or a valid privilege;
//   - when the source is a user, the destination must be a role (¤(u,r));
//   - nested privileges must themselves be grammatical.
func (a AdminPrivilege) Validate() error {
	if !a.Op.Valid() {
		return fmt.Errorf("admin privilege: invalid connective")
	}
	if err := a.Src.Validate(); err != nil {
		return fmt.Errorf("admin privilege %s: source: %w", a, err)
	}
	switch d := a.Dst.(type) {
	case Entity:
		if err := d.Validate(); err != nil {
			return fmt.Errorf("admin privilege %s: destination: %w", a, err)
		}
		if !d.IsRole() {
			return fmt.Errorf("admin privilege %s: destination entity must be a role, got %s", a, d.Kind)
		}
	case UserPrivilege:
		if err := d.Validate(); err != nil {
			return fmt.Errorf("admin privilege %s: destination: %w", a, err)
		}
		if a.Src.IsUser() {
			return fmt.Errorf("admin privilege %s: a user source requires a role destination", a)
		}
	case AdminPrivilege:
		if err := d.Validate(); err != nil {
			return fmt.Errorf("admin privilege %s: destination: %w", a, err)
		}
		if a.Src.IsUser() {
			return fmt.Errorf("admin privilege %s: a user source requires a role destination", a)
		}
	case nil:
		return fmt.Errorf("admin privilege: nil destination")
	default:
		return fmt.Errorf("admin privilege %s: unsupported destination type %T", a, a.Dst)
	}
	return nil
}

func (AdminPrivilege) sealedPrivilege() {}

// ValidatePrivilege validates any privilege term against the grammar.
func ValidatePrivilege(p Privilege) error {
	switch t := p.(type) {
	case UserPrivilege:
		return t.Validate()
	case AdminPrivilege:
		return t.Validate()
	case nil:
		return fmt.Errorf("nil privilege")
	default:
		return fmt.Errorf("unsupported privilege type %T", p)
	}
}

// SameVertex reports whether two vertices are structurally identical.
func SameVertex(a, b Vertex) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// SamePrivilege reports whether two privileges are structurally identical
// (rule (1) of Definition 8: p Ãφ p).
func SamePrivilege(p, q Privilege) bool {
	if p == nil || q == nil {
		return p == nil && q == nil
	}
	return p.Key() == q.Key()
}

// Subterms returns all privilege subterms of p, outermost first. A user
// privilege has exactly one subterm (itself); ¤(r,¤(u,r')) has two
// administrative subterms plus none below, and so on.
func Subterms(p Privilege) []Privilege {
	var out []Privilege
	for p != nil {
		out = append(out, p)
		a, ok := p.(AdminPrivilege)
		if !ok {
			break
		}
		inner, ok := a.DstPrivilege()
		if !ok {
			break
		}
		p = inner
	}
	return out
}

// Entities returns every entity mentioned anywhere in the privilege term,
// in first-occurrence order (duplicates removed).
func Entities(p Privilege) []Entity {
	var out []Entity
	seen := make(map[Entity]bool)
	add := func(e Entity) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	var walk func(Privilege)
	walk = func(p Privilege) {
		a, ok := p.(AdminPrivilege)
		if !ok {
			return
		}
		add(a.Src)
		switch d := a.Dst.(type) {
		case Entity:
			add(d)
		case Privilege:
			walk(d)
		}
	}
	walk(p)
	return out
}

// escape makes a name safe for embedding in canonical keys: the characters
// used by the key syntax — '(', ')', ',', ':' and '%' — are percent-encoded.
func escape(s string) string {
	if !strings.ContainsAny(s, "(),:%") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '(', ')', ',', ':', '%':
			fmt.Fprintf(&b, "%%%02X", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
