package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genPrivilege builds a random grammatical privilege from the rng, used as a
// custom quick generator.
func genPrivilege(rng *rand.Rand, depth int) Privilege {
	names := []string{"a", "b", "c", "r1", "r2", "weird name", "x(y)", "q,q"}
	pick := func() string { return names[rng.Intn(len(names))] }
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return Perm(pick(), pick())
		}
		if rng.Intn(2) == 0 {
			return AdminPrivilege{Op: randOp(rng), Src: User(pick()), Dst: Role(pick())}
		}
		return AdminPrivilege{Op: randOp(rng), Src: Role(pick()), Dst: Role(pick())}
	}
	return AdminPrivilege{Op: randOp(rng), Src: Role(pick()), Dst: genPrivilege(rng, depth-1)}
}

func randOp(rng *rand.Rand) Op {
	if rng.Intn(2) == 0 {
		return OpGrant
	}
	return OpRevoke
}

// privBox wraps a privilege so quick can generate it.
type privBox struct{ P Privilege }

// Generate implements quick.Generator.
func (privBox) Generate(rng *rand.Rand, size int) reflect.Value {
	d := size % 5
	return reflect.ValueOf(privBox{P: genPrivilege(rng, d)})
}

func TestQuickKeyInjective(t *testing.T) {
	// Structurally distinct privileges never share a key; equal keys imply
	// equal rendering and equal depth.
	f := func(a, b privBox) bool {
		ka, kb := a.P.Key(), b.P.Key()
		if ka == kb {
			return a.P.String() == b.P.String() && a.P.Depth() == b.P.Depth()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyDeterministic(t *testing.T) {
	f := func(a privBox) bool { return a.P.Key() == a.P.Key() && a.P.String() == a.P.String() }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	// Every grammatical privilege survives the JSON wire format.
	f := func(a privBox) bool {
		if ValidatePrivilege(a.P) != nil {
			return true // generator can build ungrammatical terms; skip them
		}
		data, err := MarshalPrivilege(a.P)
		if err != nil {
			return false
		}
		back, err := UnmarshalPrivilege(data)
		if err != nil {
			return false
		}
		return SamePrivilege(a.P, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtermsConsistent(t *testing.T) {
	// len(Subterms) equals Size for admin chains; depths strictly decrease.
	f := func(a privBox) bool {
		subs := Subterms(a.P)
		if len(subs) == 0 {
			return false
		}
		for i := 1; i < len(subs); i++ {
			if subs[i].Depth() >= subs[i-1].Depth() {
				return false
			}
		}
		return subs[0].Key() == a.P.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickVertexRoundTrip(t *testing.T) {
	f := func(a privBox, roleName string) bool {
		if roleName == "" {
			roleName = "r"
		}
		for _, v := range []Vertex{Role(roleName), User(roleName)} {
			data, err := MarshalVertex(v)
			if err != nil {
				return false
			}
			back, err := UnmarshalVertex(data)
			if err != nil || !SameVertex(v, back) {
				return false
			}
		}
		if ValidatePrivilege(a.P) != nil {
			return true
		}
		data, err := MarshalVertex(a.P)
		if err != nil {
			return false
		}
		back, err := UnmarshalVertex(data)
		return err == nil && SameVertex(a.P, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
