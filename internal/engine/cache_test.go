package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
	"adminrefine/internal/workload"
)

// equivPolicy builds a policy whose admin can both grant and revoke a set of
// UA edges, plus enough RH/PA structure (including nested administrative
// privileges) to exercise every rule of the refined ordering. It returns the
// toggle commands (all authorized for "admin") and a query battery of
// commands for "alice" whose answers depend on the toggled edges.
func equivPolicy() (*policy.Policy, []command.Command, []command.Command) {
	p := policy.New()
	p.Assign("admin", "radmin")
	p.AddInherit("c0", "c1")
	p.AddInherit("c1", "c2")
	alice, bob := model.User("alice"), model.User("bob")
	c0, c1, c2 := model.Role("c0"), model.Role("c1"), model.Role("c2")
	var toggles []command.Command
	for _, r := range []model.Entity{c0, c1, c2} {
		mustPA(p, "radmin", model.Grant(alice, r))
		mustPA(p, "radmin", model.Revoke(alice, r))
		toggles = append(toggles,
			command.Grant("admin", alice, r),
			command.Revoke("admin", alice, r))
	}
	// Privileges reachable through the chain: direct, role-role, and nested
	// (rule 3 of Definition 8 needs privilege-valued destinations).
	nested := model.Grant(c2, model.Grant(bob, c2))
	mustPA(p, "c0", model.Grant(bob, c0))
	mustPA(p, "c1", model.Grant(bob, c2))
	mustPA(p, "c1", nested)
	mustPA(p, "c2", model.Grant(c1, c2))
	battery := []command.Command{
		command.Grant("alice", bob, c0),
		command.Grant("alice", bob, c1), // never granted anywhere
		command.Grant("alice", bob, c2),
		command.Grant("alice", c1, c2),
		// Authorized (refined, via the nested privilege) only when alice
		// reaches c1: the command's privilege is exactly ¤(c2, ¤(bob, c2)).
		command.Grant("alice", c2, model.Grant(bob, c2)),
		command.Revoke("alice", bob, c2),
		command.Grant("admin", alice, c0),
		command.Revoke("admin", alice, c1),
	}
	return p, toggles, battery
}

func mustPA(p *policy.Policy, role string, priv model.Privilege) {
	if _, err := p.GrantPrivilege(role, priv); err != nil {
		panic(err)
	}
}

// TestCachedAuthorizeEquivalence is the tentpole correctness harness: under
// random grant/revoke churn, every cached decision (first and repeated
// query, so both the fill and the hit path are exercised) must match a
// fresh authorizer built from scratch on the snapshot's policy.
//
// In strict mode the match is bit-identical: same verdict, same
// justification (Definition 5's justification is the command's own
// privilege, which is canonical). In refined mode the verdict must be
// identical, and the justification must be a *valid* witness — held by the
// actor and at least as strong as the target. It need not be the same
// witness a cold decider would pick: a positive entry that (soundly, by
// monotonicity) survived an additive delta keeps the witness found when it
// was computed, while a cold decider may find an earlier-ordered one that
// churn has since created.
func TestCachedAuthorizeEquivalence(t *testing.T) {
	for _, mode := range []Mode{Strict, Refined} {
		t.Run(mode.String(), func(t *testing.T) {
			pol, toggles, battery := equivPolicy()
			e := New(pol, mode)
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 200; step++ {
				e.Submit(toggles[rng.Intn(len(toggles))])
				s := e.Snapshot()
				ref := core.NewDecider(s.Policy().Clone())
				fresh := freshAuthorizer(s.Policy().Clone(), mode)
				for i, c := range battery {
					firstJust, firstOK := s.Authorize(c)
					hitJust, hitOK := s.Authorize(c)
					wantJust, wantOK := fresh.Authorize(s.Policy(), c)
					if firstOK != wantOK {
						t.Fatalf("step %d query %d (%s): cached verdict %v != fresh %v",
							step, i, c, firstOK, wantOK)
					}
					if hitOK != firstOK {
						t.Fatalf("step %d query %d (%s): cache hit verdict %v != first %v",
							step, i, c, hitOK, firstOK)
					}
					if mode == Strict {
						if !model.SamePrivilege(firstJust, wantJust) || !model.SamePrivilege(hitJust, wantJust) {
							t.Fatalf("step %d query %d (%s): justification %v / %v != fresh %v",
								step, i, c, firstJust, hitJust, wantJust)
						}
					} else if firstOK {
						target, err := c.Privilege()
						if err != nil {
							t.Fatalf("step %d query %d: %v", step, i, err)
						}
						for _, just := range []model.Privilege{firstJust, hitJust} {
							if !s.Policy().Reaches(model.User(c.Actor), just) {
								t.Fatalf("step %d query %d (%s): witness %v not held by %s",
									step, i, c, just, c.Actor)
							}
							if !ref.Weaker(just, target) {
								t.Fatalf("step %d query %d (%s): witness %v not stronger than %v",
									step, i, c, just, target)
							}
						}
					}
				}
				s.Close()
			}
			st := e.CacheStats()
			if st.Hits == 0 || st.Stores == 0 {
				t.Fatalf("harness never exercised the cache: %+v", st)
			}
		})
	}
}

// freshAuthorizer builds the from-scratch reference for a mode. The clone
// (not the snapshot's live policy) backs the decider so the reference shares
// no caches with the engine; Authorize is still called with the snapshot
// policy, which the authorizers handle by building a throwaway decider.
func freshAuthorizer(p *policy.Policy, mode Mode) command.Authorizer {
	if mode == Refined {
		return core.NewRefinedAuthorizer(p)
	}
	return core.NewStrictAuthorizer(p)
}

// TestCacheInvalidationOnRevoke pins the invalidation rules: a cached
// positive must not survive the removal that breaks its justification, and a
// cached negative must not survive the grant that flips it.
func TestCacheInvalidationOnRevoke(t *testing.T) {
	pol, _, _ := equivPolicy()
	e := New(pol, Strict)
	alice, bob := model.User("alice"), model.User("bob")
	c0 := model.Role("c0")
	grant := command.Grant("admin", alice, c0)
	revoke := command.Revoke("admin", alice, c0)
	query := command.Grant("alice", bob, c0)

	authorize := func(want bool, when string) {
		t.Helper()
		s := e.Snapshot()
		defer s.Close()
		for i := 0; i < 2; i++ { // miss then hit
			if _, got := s.Authorize(query); got != want {
				t.Fatalf("%s (pass %d): authorize = %v, want %v", when, i, got, want)
			}
		}
	}

	authorize(false, "initially")
	if res := e.Submit(grant); res.Outcome != command.Applied {
		t.Fatalf("grant: %v", res.Outcome)
	}
	authorize(true, "after grant (stale negative must drop)")
	if res := e.Submit(revoke); res.Outcome != command.Applied {
		t.Fatalf("revoke: %v", res.Outcome)
	}
	authorize(false, "after revoke (stale positive must drop)")
	e.Submit(grant)
	authorize(true, "after re-grant")

	// An old snapshot taken before later churn keeps answering at its own
	// generation even though newer verdicts entered the shared cache.
	old := e.Snapshot()
	defer old.Close()
	e.Submit(revoke)
	if _, ok := old.Authorize(query); !ok {
		t.Fatal("old snapshot must still see the pre-revoke state")
	}
	cur := e.Snapshot()
	defer cur.Close()
	if _, ok := cur.Authorize(query); ok {
		t.Fatal("current snapshot must see the revoke")
	}
}

// TestCachedAuthorizePositiveSurvivesGrants pins the monotone half of the
// invalidation rules: additive churn must not evict-by-invalidation a
// cached positive (its generation stays >= posFloor), so a hot allowed
// command keeps hitting the cache across unrelated grants.
func TestCachedAuthorizePositiveSurvivesGrants(t *testing.T) {
	const roles, users = 64, 64
	e := New(workload.ChurnPolicy(roles, users), Refined)
	q := workload.ChurnGrant(0, users, roles)
	s := e.Snapshot()
	// Three sights: doorkeeper pass, intern + cache fill, first hit.
	for i := 0; i < 3; i++ {
		if _, ok := s.Authorize(q); !ok {
			t.Fatal("churn query denied")
		}
	}
	s.Close()
	base := e.CacheStats()
	for i := 1; i <= 32; i++ {
		if res := e.Submit(workload.ChurnGrant(i, users, roles)); res.Outcome != command.Applied {
			t.Fatalf("churn grant %d: %v", i, res.Outcome)
		}
		s := e.Snapshot()
		if _, ok := s.Authorize(q); !ok {
			t.Fatalf("hot query denied after grant %d", i)
		}
		s.Close()
	}
	st := e.CacheStats()
	if got := st.Hits - base.Hits; got < 32 {
		t.Fatalf("hot positive only hit %d times across 32 additive deltas (stats %+v)", got, st)
	}
}

// TestAuthorizeBatchInto verifies buffer reuse and agreement with the
// single-query path.
func TestAuthorizeBatchInto(t *testing.T) {
	pol, toggles, battery := equivPolicy()
	e := New(pol, Refined)
	for _, c := range toggles[:3] {
		e.Submit(c)
	}
	s := e.Snapshot()
	defer s.Close()
	buf := make([]AuthzResult, 0, len(battery))
	got := s.AuthorizeBatchInto(battery, buf)
	if &got[0] != &buf[:1][0] {
		t.Fatal("AuthorizeBatchInto did not reuse the provided buffer")
	}
	again := s.AuthorizeBatch(battery)
	for i, c := range battery {
		just, ok := s.Authorize(c)
		if got[i].OK != ok || !model.SamePrivilege(got[i].Justification, just) {
			t.Fatalf("batch result %d (%s) = (%v,%v), single = (%v,%v)",
				i, c, got[i].Justification, got[i].OK, just, ok)
		}
		if again[i] != got[i] {
			t.Fatalf("batch rerun diverged at %d", i)
		}
	}
	small := s.AuthorizeBatchInto(battery, make([]AuthzResult, 0, 1))
	if len(small) != len(battery) {
		t.Fatalf("undersized buffer: got %d results", len(small))
	}
}

// TestSetCacheSlots verifies disabling and resizing the decision cache.
func TestSetCacheSlots(t *testing.T) {
	pol, toggles, battery := equivPolicy()
	e := New(pol, Strict)
	e.SetCacheSlots(0)
	e.Submit(toggles[0])
	s := e.Snapshot()
	for i := 0; i < 3; i++ {
		s.Authorize(battery[0])
	}
	s.Close()
	if st := e.CacheStats(); st.Slots != 0 || st.Hits != 0 || st.Stores != 0 {
		t.Fatalf("disabled cache saw traffic: %+v", st)
	}
	e.SetCacheSlots(100)
	if st := e.CacheStats(); st.Slots < 100 {
		t.Fatalf("cache slots = %d after resize", st.Slots)
	}
	s = e.Snapshot()
	for i := 0; i < 3; i++ {
		s.Authorize(battery[0])
	}
	s.Close()
	if st := e.CacheStats(); st.Hits == 0 {
		t.Fatalf("re-enabled cache never hit: %+v", st)
	}
}

// TestConcurrentCachedAuthorizeChurn is the race-detector harness for the
// decision cache: one writer toggles the UA edge that an observed command's
// authorization hinges on, while readers authorize it through the cache.
// Each reader asserts (a) snapshot generations are monotone and (b) the
// verdict matches the exact policy state its generation implies — the edge
// is present iff the generation is odd — so a stale positive after a
// removal (or stale negative after a grant) fails the test deterministically.
func TestConcurrentCachedAuthorizeChurn(t *testing.T) {
	pol, _, _ := equivPolicy()
	e := New(pol, Strict)
	alice, bob := model.User("alice"), model.User("bob")
	c0 := model.Role("c0")
	grant := command.Grant("admin", alice, c0)
	revoke := command.Revoke("admin", alice, c0)
	query := command.Grant("alice", bob, c0)
	const (
		readers = 4
		toggles = 300
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				gen := s.Generation()
				_, ok := s.Authorize(query)
				s.Close()
				if gen < lastGen {
					errc <- fmt.Errorf("generation went backwards: %d -> %d", lastGen, gen)
					return
				}
				lastGen = gen
				if want := gen%2 == 1; ok != want {
					errc <- fmt.Errorf("gen %d: authorize = %v, want %v (stale verdict)", gen, ok, want)
					return
				}
			}
		}()
	}
	for i := 0; i < toggles; i++ {
		c := grant
		if i%2 == 1 {
			c = revoke
		}
		if res := e.Submit(c); res.Outcome != command.Applied {
			t.Fatalf("toggle %d: %v", i, res.Outcome)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
