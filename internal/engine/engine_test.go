package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// churnFixture builds a policy where root (via role admins) may assign any
// member user to role top under the refined regime (admins holds
// ¤(member, top), and every churned user is a member), plus exact ♦
// privileges for the churned UA edges so revocations are authorized too.
func churnFixture(users int) *policy.Policy {
	p := policy.New()
	p.AddInherit("top", "bot")
	p.Assign("root", "admins")
	if _, err := p.GrantPrivilege("admins", model.Grant(model.Role("member"), model.Role("top"))); err != nil {
		panic(err)
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("u%d", i)
		p.Assign(u, "member")
		if _, err := p.GrantPrivilege("admins", model.Revoke(model.User(u), model.Role("top"))); err != nil {
			panic(err)
		}
	}
	return p
}

func grantCmd(i int) command.Command {
	return command.Grant("root", model.User(fmt.Sprintf("u%d", i)), model.Role("top"))
}

func revokeCmd(i int) command.Command {
	return command.Revoke("root", model.User(fmt.Sprintf("u%d", i)), model.Role("top"))
}

func TestEngineSubmitAndSnapshot(t *testing.T) {
	e := New(churnFixture(4), Refined)
	if e.Generation() != 0 {
		t.Fatalf("fresh engine generation = %d", e.Generation())
	}
	res := e.Submit(grantCmd(0))
	if res.Outcome != command.Applied {
		t.Fatalf("grant outcome = %v", res.Outcome)
	}
	if e.Generation() != 1 {
		t.Fatalf("generation after grant = %d", e.Generation())
	}
	s := e.Snapshot()
	defer s.Close()
	if !s.Policy().CanActivate("u0", "top") {
		t.Fatal("grant not visible in snapshot")
	}
	// The applied grant is justified by the held stronger privilege.
	just, ok := s.Authorize(grantCmd(1))
	if !ok {
		t.Fatal("refined authorization failed")
	}
	if just.Key() != model.Grant(model.Role("member"), model.Role("top")).Key() {
		t.Fatalf("justification = %v", just)
	}
	// A stranger is never authorized.
	if _, ok := s.Authorize(command.Grant("stranger", model.User("u0"), model.Role("top"))); ok {
		t.Fatal("stranger authorized")
	}
}

func TestEngineDeniedDoesNotPublish(t *testing.T) {
	e := New(churnFixture(2), Strict)
	gen := e.Generation()
	// Strict mode denies the member-hierarchy grant (root does not reach the
	// exact privilege vertex ¤(u0, top)).
	res := e.Submit(grantCmd(0))
	if res.Outcome != command.Denied {
		t.Fatalf("outcome = %v, want denied", res.Outcome)
	}
	if e.Generation() != gen {
		t.Fatal("denied command bumped the generation")
	}
}

func TestEngineSnapshotIsolation(t *testing.T) {
	e := New(churnFixture(4), Refined)
	old := e.Snapshot()
	defer old.Close()
	oldGen := old.Generation()

	for i := 0; i < 4; i++ {
		if res := e.Submit(grantCmd(i)); res.Outcome != command.Applied {
			t.Fatalf("grant %d outcome = %v", i, res.Outcome)
		}
	}
	// The held snapshot still reflects the old state.
	if old.Generation() != oldGen {
		t.Fatal("held snapshot changed generation")
	}
	if old.Policy().CanActivate("u0", "top") {
		t.Fatal("held snapshot observed a later mutation")
	}
	// A fresh snapshot sees everything.
	s := e.Snapshot()
	defer s.Close()
	for i := 0; i < 4; i++ {
		if !s.Policy().CanActivate(fmt.Sprintf("u%d", i), "top") {
			t.Fatalf("grant %d missing from fresh snapshot", i)
		}
	}
}

func TestEngineGuard(t *testing.T) {
	e := New(churnFixture(2), Refined)
	veto := fmt.Errorf("constraint violated")
	res, err := e.SubmitGuarded(grantCmd(0), func(pre *policy.Policy, _ command.Command) error { return veto })
	if err != veto || res.Outcome != command.Denied {
		t.Fatalf("guarded submit = (%v, %v)", res.Outcome, err)
	}
	if e.Generation() != 0 {
		t.Fatal("vetoed command changed state")
	}
}

func TestEngineLogTrimResync(t *testing.T) {
	e := New(churnFixture(4), Refined)
	// Pin the initial replica with a long-held snapshot so the writer must
	// clone, then churn far past the log window to force a resync.
	held := e.Snapshot()
	for i := 0; i < maxEngineLog+128; i++ {
		u := i % 4
		e.Submit(grantCmd(u))
		e.Submit(revokeCmd(u))
	}
	e.Submit(grantCmd(3))
	held.Close()
	// The previously pinned replica is behind the trimmed window; the next
	// submit must resynchronise it, not replay garbage.
	e.Submit(grantCmd(2))
	s := e.Snapshot()
	defer s.Close()
	for i, want := range []bool{false, false, true, true} {
		if got := s.Policy().CanActivate(fmt.Sprintf("u%d", i), "top"); got != want {
			t.Fatalf("u%d on top = %v, want %v", i, got, want)
		}
	}
}

// TestEngineConcurrentAuthorize is the -race stress: readers hammer
// Authorize against snapshots while the writer churns grants and
// revocations (revocations exercise the closure-rebuild path). Readers
// assert two invariants the churn never touches — root's authority holds,
// a stranger's never does — and that observed generations are monotone
// (linearizable observation of the publication order).
func TestEngineConcurrentAuthorize(t *testing.T) {
	const (
		readers     = 8
		readsPerG   = 2000
		writerSteps = 1500
	)
	e := New(churnFixture(8), Refined)
	var wg sync.WaitGroup
	var failures atomic.Int64

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastGen uint64
			probe := grantCmd(g % 8)
			stranger := command.Grant("stranger", model.User("u0"), model.Role("top"))
			for i := 0; i < readsPerG; i++ {
				s := e.Snapshot()
				if gen := s.Generation(); gen < lastGen {
					t.Errorf("reader %d: generation went backwards %d -> %d", g, lastGen, gen)
					failures.Add(1)
				} else {
					lastGen = gen
				}
				if _, ok := s.Authorize(probe); !ok {
					t.Errorf("reader %d: root lost authority at generation %d", g, s.Generation())
					failures.Add(1)
				}
				if _, ok := s.Authorize(stranger); ok {
					t.Errorf("reader %d: stranger gained authority", g)
					failures.Add(1)
				}
				s.Close()
				if failures.Load() > 0 {
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerSteps && failures.Load() == 0; i++ {
			u := i % 8
			if i%3 == 2 {
				e.Submit(revokeCmd(u))
			} else {
				e.Submit(grantCmd(u))
			}
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatal("concurrent invariants violated")
	}
	// Post-condition: the final snapshot agrees with a sequential replay.
	s := e.Snapshot()
	defer s.Close()
	if _, ok := s.Authorize(grantCmd(0)); !ok {
		t.Fatal("root authority lost after churn")
	}
}

func TestNewAtStartsAtRecoveredGeneration(t *testing.T) {
	e := NewAt(churnFixture(4), Refined, 17)
	if got := e.Generation(); got != 17 {
		t.Fatalf("generation = %d, want 17", got)
	}
	res := e.Submit(grantCmd(0))
	if res.Outcome != command.Applied {
		t.Fatalf("outcome %v", res.Outcome)
	}
	if got := e.Generation(); got != 18 {
		t.Fatalf("generation after submit = %d, want 18", got)
	}
}

func TestCommitHookWriteAhead(t *testing.T) {
	e := New(churnFixture(4), Refined)
	var gens []uint64
	e.SetCommitHook(func(gen uint64, res command.StepResult) error {
		if res.Outcome != command.Applied {
			t.Errorf("hook saw outcome %v", res.Outcome)
		}
		// The hook runs pre-publish: readers must not see the new state yet.
		if cur := e.Generation(); cur != gen-1 {
			t.Errorf("hook at gen %d but published generation already %d", gen, cur)
		}
		gens = append(gens, gen)
		return nil
	})
	e.Submit(grantCmd(0))
	e.Submit(grantCmd(0)) // AppliedNoChange: hook must not fire
	e.Submit(revokeCmd(0))
	if want := []uint64{1, 2}; len(gens) != 2 || gens[0] != want[0] || gens[1] != want[1] {
		t.Fatalf("hook generations %v, want %v", gens, want)
	}
}

func TestCommitHookFailureRollsBack(t *testing.T) {
	e := New(churnFixture(4), Refined)
	fail := false
	e.SetCommitHook(func(gen uint64, res command.StepResult) error {
		if fail {
			return fmt.Errorf("disk full")
		}
		return nil
	})
	if res := e.Submit(grantCmd(0)); res.Outcome != command.Applied {
		t.Fatalf("outcome %v", res.Outcome)
	}
	fail = true
	res, err := e.SubmitGuarded(grantCmd(1), nil)
	if err == nil {
		t.Fatal("expected commit error")
	}
	var ce *CommitError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T, want *CommitError", err)
	}
	if res.Outcome != command.Denied {
		t.Fatalf("outcome %v, want Denied", res.Outcome)
	}
	if e.Generation() != 1 {
		t.Fatalf("generation advanced to %d despite hook failure", e.Generation())
	}
	s := e.Snapshot()
	defer s.Close()
	if s.Policy().HasEdge(model.User("u1"), model.Role("top")) {
		t.Fatal("failed commit left its edge in the policy")
	}
	// The engine recovers once the hook does: the same command goes through.
	fail = false
	if res := e.Submit(grantCmd(1)); res.Outcome != command.Applied {
		t.Fatalf("post-recovery outcome %v", res.Outcome)
	}
	if e.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", e.Generation())
	}
}

func TestSubmitBatchPublishesOnce(t *testing.T) {
	e := New(churnFixture(8), Refined)
	var published []uint64
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				s := e.Snapshot()
				g := s.Generation()
				s.Close()
				if len(published) == 0 || published[len(published)-1] != g {
					published = append(published, g)
				}
			}
		}
	}()

	cmds := []command.Command{grantCmd(0), grantCmd(1), grantCmd(1), grantCmd(2)}
	out, err := e.SubmitBatch(cmds, nil)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	wantOutcomes := []command.Outcome{command.Applied, command.Applied, command.AppliedNoChange, command.Applied}
	for i, w := range wantOutcomes {
		if out[i].Outcome != w {
			t.Fatalf("cmd %d outcome %v, want %v", i, out[i].Outcome, w)
		}
	}
	if e.Generation() != 3 {
		t.Fatalf("generation = %d, want 3", e.Generation())
	}
	// No intermediate generation was ever observable: the reader saw only 0
	// and then 3 (a batch publishes at most one snapshot).
	for _, g := range published {
		if g != 0 && g != 3 {
			t.Fatalf("reader observed intermediate generation %d during batch", g)
		}
	}
}

func TestSubmitBatchGuardVetoContinues(t *testing.T) {
	e := New(churnFixture(4), Refined)
	calls := 0
	out, err := e.SubmitBatch([]command.Command{grantCmd(0), grantCmd(1)}, func(pre *policy.Policy, _ command.Command) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("vetoed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("guard veto must not abort the batch: %v", err)
	}
	if out[0].Outcome != command.Denied || out[1].Outcome != command.Applied {
		t.Fatalf("outcomes %v, %v", out[0].Outcome, out[1].Outcome)
	}
}

func TestAuthorizeBatchMatchesSingle(t *testing.T) {
	e := New(churnFixture(8), Refined)
	e.Submit(grantCmd(0))
	cmds := []command.Command{
		grantCmd(1),
		command.Grant("u1", model.User("u2"), model.Role("top")), // u1 holds nothing
		revokeCmd(0),
		{}, // ill-formed
	}
	s := e.Snapshot()
	defer s.Close()
	batch := s.AuthorizeBatch(cmds)
	if len(batch) != len(cmds) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	for i, c := range cmds {
		just, ok := s.Authorize(c)
		if ok != batch[i].OK {
			t.Fatalf("cmd %d: batch OK=%v, single OK=%v", i, batch[i].OK, ok)
		}
		if ok && just.String() != batch[i].Justification.String() {
			t.Fatalf("cmd %d: justification %v vs %v", i, batch[i].Justification, just)
		}
	}
}

func TestSnapshotExplainCommand(t *testing.T) {
	e := New(churnFixture(2), Refined)
	s := e.Snapshot()
	defer s.Close()
	if got := s.ExplainCommand(grantCmd(0)); !strings.Contains(got, "authorized") {
		t.Fatalf("explain = %q, want authorized", got)
	}
	denied := command.Grant("u0", model.User("u1"), model.Role("top"))
	if got := s.ExplainCommand(denied); !strings.Contains(got, "denied") {
		t.Fatalf("explain = %q, want denied", got)
	}
	if got := s.ExplainCommand(command.Command{}); !strings.Contains(got, "ill-formed") {
		t.Fatalf("explain = %q, want ill-formed", got)
	}
}
