package engine_test

import (
	"fmt"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Snapshot isolation under a concurrent writer: a reader that acquired a
// snapshot keeps seeing its generation — unchanged, consistent — while the
// writer publishes new state. New readers see the new generation at once.
func Example_snapshotReadUnderWrite() {
	p := policy.New()
	p.Assign("root", "admins")
	p.Assign("alice", "member")
	p.DeclareRole("team")
	if _, err := p.GrantPrivilege("admins", model.Grant(model.Role("member"), model.Role("team"))); err != nil {
		panic(err)
	}
	e := engine.New(p, engine.Refined)

	// A long-lived reader pins generation 0.
	old := e.Snapshot()
	defer old.Close()

	// The writer runs an administrative transition (Definition 5): root may
	// assign alice because ¤(alice, team) is weaker than the held
	// ¤(member, team) — alice is a member.
	res := e.Submit(command.Grant("root", model.User("alice"), model.Role("team")))
	fmt.Println("submit:", res.Outcome)

	cur := e.Snapshot()
	defer cur.Close()
	fmt.Printf("gen %d sees alice in team: %v\n", old.Generation(), old.Policy().HasEdge(model.User("alice"), model.Role("team")))
	fmt.Printf("gen %d sees alice in team: %v\n", cur.Generation(), cur.Policy().HasEdge(model.User("alice"), model.Role("team")))

	// Output:
	// submit: applied
	// gen 0 sees alice in team: false
	// gen 1 sees alice in team: true
}

// One round-trip, many decisions: AuthorizeBatch decides a whole batch
// against a single snapshot with one borrowed decider.
func ExampleSnapshot_AuthorizeBatch() {
	p := policy.New()
	p.Assign("root", "admins")
	p.Assign("alice", "member")
	p.Assign("bob", "member")
	p.DeclareRole("team")
	if _, err := p.GrantPrivilege("admins", model.Grant(model.Role("member"), model.Role("team"))); err != nil {
		panic(err)
	}
	e := engine.New(p, engine.Refined)

	s := e.Snapshot()
	defer s.Close()
	results := s.AuthorizeBatch([]command.Command{
		command.Grant("root", model.User("alice"), model.Role("team")),
		command.Grant("root", model.User("bob"), model.Role("team")),
		command.Grant("bob", model.User("alice"), model.Role("team")), // bob holds nothing
	})
	for _, r := range results {
		fmt.Println(r.OK)
	}

	// Output:
	// true
	// true
	// false
}
