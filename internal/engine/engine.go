// Package engine provides a mutation-aware, concurrency-safe authorization
// engine over an administrative RBAC policy: unbounded concurrent readers
// evaluate Authorize / Weaker / HeldStronger queries lock-free against an
// immutable Snapshot, while a single writer applies grant/revoke transitions
// and publishes new snapshots behind an atomic pointer.
//
// The design is copy-on-write at replica granularity with RCU-style
// reclamation: the engine keeps a small set of policy replicas, exactly one
// of which is published at a time. A mutation is applied to a quiescent
// spare replica (first catching it up on the mutations it missed, replayed
// from a bounded log), which is then published with one atomic store. The
// previous replica becomes the next spare once its readers drain; a replica
// is only ever mutated when its reader count is zero. Decider caches attached
// to a replica survive publication cycles and refresh incrementally (see
// internal/core), so a grant costs O(delta), not a closure rebuild.
//
// See README.md in this package for the invalidation rules: what survives a
// mutation and what does not.
package engine

import (
	"sync"
	"sync/atomic"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Mode selects the authorization regime snapshots decide under.
type Mode uint8

const (
	// Strict authorizes by the literal Definition 5 check.
	Strict Mode = iota
	// Refined additionally grants every privilege weaker (Ãφ) than a held
	// one, per §4.1.
	Refined
)

// String names the mode.
func (m Mode) String() string {
	if m == Refined {
		return "refined"
	}
	return "strict"
}

// maxEngineLog bounds the engine's replay log; when exceeded the oldest half
// is dropped and replicas that were behind the dropped window resynchronise
// by cloning the current state.
const maxEngineLog = 4096

// replica is one materialisation of the policy state. Invariant: a replica
// is mutated only while unpublished and with zero readers.
type replica struct {
	pol  *policy.Policy
	auth command.Authorizer
	pos  int // engine log position pol reflects
	refs atomic.Int64
	pool *sync.Pool // *core.Decider bound to pol, one per concurrent reader
}

func newReplica(p *policy.Policy, mode Mode, pos int) *replica {
	r := &replica{}
	r.rebind(p, mode, pos)
	return r
}

// rebind points the replica at a fresh policy materialisation, discarding
// decider caches bound to the old one. Only called on quiescent replicas.
func (r *replica) rebind(p *policy.Policy, mode Mode, pos int) {
	r.pol = p
	r.pos = pos
	if mode == Refined {
		r.auth = core.NewRefinedAuthorizer(p)
	} else {
		r.auth = core.NewStrictAuthorizer(p)
	}
	r.pool = &sync.Pool{New: func() any { return core.NewDecider(p) }}
}

// Engine owns the policy state and coordinates one writer with any number of
// lock-free readers.
type Engine struct {
	mu   sync.Mutex // serialises writers
	mode Mode
	cur  atomic.Pointer[Snapshot]

	// log holds the applied mutations; log[i] moved the engine generation
	// from logBase+i to logBase+i+1. Replicas catch up by replaying their
	// suffix.
	log      []command.Command
	logBase  int
	replicas []*replica
}

// New builds an engine, taking ownership of the policy: the caller must not
// mutate p afterwards.
func New(p *policy.Policy, mode Mode) *Engine {
	e := &Engine{mode: mode}
	r := newReplica(p, mode, 0)
	e.replicas = []*replica{r}
	e.cur.Store(&Snapshot{e: e, r: r, gen: 0})
	return e
}

// Mode returns the engine's authorization mode.
func (e *Engine) Mode() Mode { return e.mode }

// Generation returns the number of applied (state-changing) transitions.
func (e *Engine) Generation() uint64 {
	return e.cur.Load().gen
}

// Snapshot returns the current published snapshot with a reader reference
// held. The caller must Close it; until then the snapshot is immutable and
// all its methods are safe for concurrent use with the writer and with other
// readers.
func (e *Engine) Snapshot() *Snapshot {
	for {
		s := e.cur.Load()
		s.r.refs.Add(1)
		if e.cur.Load() == s {
			return s
		}
		// The snapshot was republished between the load and the reference;
		// back off so the writer can reclaim the replica, and retry.
		s.r.refs.Add(-1)
	}
}

// Submit executes one administrative command through the transition function
// (Definition 5) against the current state, publishing a new snapshot when
// the policy changed.
func (e *Engine) Submit(c command.Command) command.StepResult {
	res, _ := e.SubmitGuarded(c, nil)
	return res
}

// SubmitGuarded is Submit with a veto hook: guard runs against the
// up-to-date pre-state under the writer lock, and a non-nil error denies the
// command without effect (the error is returned for audit trails).
// Constraint sets (SSD) hook in here.
func (e *Engine) SubmitGuarded(c command.Command, guard func(pre *policy.Policy) error) (command.StepResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	cur := e.cur.Load()
	next := e.writable(cur)
	e.catchUp(next)
	if guard != nil {
		if err := guard(next.pol); err != nil {
			return command.StepResult{Cmd: c, Outcome: command.Denied}, err
		}
	}
	res := command.Step(next.pol, c, next.auth)
	if res.Outcome != command.Applied {
		// State unchanged: keep the current snapshot published; next stays a
		// caught-up spare.
		return res, nil
	}
	e.log = append(e.log, c)
	e.trimLog()
	next.pos = e.logBase + len(e.log)
	e.cur.Store(&Snapshot{e: e, r: next, gen: uint64(next.pos)})
	return res, nil
}

// writable returns a quiescent replica distinct from the published one,
// cloning the current state when every spare is still pinned by readers.
func (e *Engine) writable(cur *Snapshot) *replica {
	for _, r := range e.replicas {
		if r != cur.r && r.refs.Load() == 0 {
			return r
		}
	}
	r := newReplica(cur.r.pol.Clone(), e.mode, cur.r.pos)
	e.replicas = append(e.replicas, r)
	return r
}

// catchUp replays the mutations r missed. A replica behind the trimmed log
// window resynchronises by cloning the published state.
func (e *Engine) catchUp(r *replica) {
	head := e.logBase + len(e.log)
	if r.pos == head {
		return
	}
	if r.pos < e.logBase {
		cur := e.cur.Load().r
		r.rebind(cur.pol.Clone(), e.mode, head)
		return
	}
	for i := r.pos - e.logBase; i < len(e.log); i++ {
		// Replay the effect only: the command was already authorized when it
		// entered the log.
		command.Apply(r.pol, e.log[i])
	}
	r.pos = head
}

func (e *Engine) trimLog() {
	if len(e.log) < maxEngineLog {
		return
	}
	drop := len(e.log) / 2
	e.log = append(e.log[:0], e.log[drop:]...)
	e.logBase += drop
}

// Snapshot is an immutable view of the policy at one engine generation:
// policy, reachability closure and decider caches. All methods are safe for
// concurrent use by multiple goroutines until Close releases the reader
// reference; using a snapshot after Close is a bug.
type Snapshot struct {
	e   *Engine
	r   *replica
	gen uint64
}

// Close releases the reader reference, allowing the writer to recycle the
// underlying replica.
func (s *Snapshot) Close() { s.r.refs.Add(-1) }

// Generation identifies the engine state the snapshot reflects. Generations
// are monotone: a snapshot acquired later never observes a smaller one.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Policy exposes the snapshot's policy for read-only use. Mutating it is a
// bug (it would corrupt concurrent readers).
func (s *Snapshot) Policy() *policy.Policy { return s.r.pol }

// decider borrows a per-reader decider from the replica's pool. Deciders
// carry warm closures and memo tables across queries and publication cycles,
// refreshing incrementally when the replica was advanced in between.
func (s *Snapshot) decider() *core.Decider {
	return s.r.pool.Get().(*core.Decider)
}

func (s *Snapshot) release(d *core.Decider) { s.r.pool.Put(d) }

// Authorize reports whether the command is authorized under the engine's
// mode, returning the justifying privilege. It never mutates policy state.
func (s *Snapshot) Authorize(c command.Command) (model.Privilege, bool) {
	priv, err := c.Privilege()
	if err != nil {
		return nil, false
	}
	d := s.decider()
	defer s.release(d)
	if s.e.mode == Refined {
		return d.HeldStronger(c.Actor, priv)
	}
	if d.Holds(c.Actor, priv) {
		return priv, true
	}
	return nil, false
}

// Weaker reports p Ãφ q under the snapshot's policy.
func (s *Snapshot) Weaker(p, q model.Privilege) bool {
	d := s.decider()
	defer s.release(d)
	return d.Weaker(p, q)
}

// HeldStronger reports whether the user holds a privilege at least as strong
// as q, returning the first witness.
func (s *Snapshot) HeldStronger(user string, q model.Privilege) (model.Privilege, bool) {
	d := s.decider()
	defer s.release(d)
	return d.HeldStronger(user, q)
}

// Explain decides strong Ãφ weak and produces a derivation witness.
func (s *Snapshot) Explain(strong, weak model.Privilege) (*core.Derivation, bool) {
	d := s.decider()
	defer s.release(d)
	return d.Explain(strong, weak)
}
