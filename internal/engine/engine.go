// Package engine provides a mutation-aware, concurrency-safe authorization
// engine over an administrative RBAC policy: unbounded concurrent readers
// evaluate Authorize / Weaker / HeldStronger queries lock-free against an
// immutable Snapshot, while a single writer applies grant/revoke transitions
// and publishes new snapshots behind an atomic pointer.
//
// The design is copy-on-write at replica granularity with RCU-style
// reclamation: the engine keeps a small set of policy replicas, exactly one
// of which is published at a time. A mutation is applied to a quiescent
// spare replica (first catching it up on the mutations it missed, replayed
// from a bounded log), which is then published with one atomic store. The
// previous replica becomes the next spare once its readers drain; a replica
// is only ever mutated when its reader count is zero. Decider caches attached
// to a replica survive publication cycles and refresh incrementally (see
// internal/core), so a grant costs O(delta), not a closure rebuild.
//
// Both sides of the engine batch: SubmitBatch applies a whole command queue
// under one writer-lock acquisition and publishes at most one snapshot, and
// Snapshot.AuthorizeBatch decides many queries with one borrowed decider.
// Durability hooks in through SetCommitHook — a WAL record staged before a
// state change becomes visible — plus SetCommitFlush, the group-commit seam
// that lands every staged record of a submission with one write and one
// fsync before the snapshot publishes (see storage.OpenEngine); NewAt
// restarts an engine at the generation a store recovered to.
//
// See README.md in this package for the invalidation rules: what survives a
// mutation and what does not.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/core"
	"adminrefine/internal/decision"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Mode selects the authorization regime snapshots decide under.
type Mode uint8

const (
	// Strict authorizes by the literal Definition 5 check.
	Strict Mode = iota
	// Refined additionally grants every privilege weaker (Ãφ) than a held
	// one, per §4.1.
	Refined
)

// String names the mode.
func (m Mode) String() string {
	if m == Refined {
		return "refined"
	}
	return "strict"
}

// maxEngineLog bounds the engine's replay log; when exceeded the oldest half
// is dropped and replicas that were behind the dropped window resynchronise
// by cloning the current state.
const maxEngineLog = 4096

// deciderRing bounds the pre-bound deciders a replica keeps. Unlike a
// sync.Pool, ring deciders are never reclaimed by the GC, so the warmth they
// accumulate (interned terms, fingerprint tables, memo entries) survives for
// the replica's whole lifetime.
const deciderRing = 16

// replica is one materialisation of the policy state. Invariant: a replica
// is mutated only while unpublished and with zero readers.
type replica struct {
	pol  *policy.Policy
	auth command.Authorizer
	pos  int // engine log position pol reflects
	refs atomic.Int64

	// deciders are the replica's pre-bound read deciders: a fixed ring of
	// lazily-built *core.Decider claimed with one CAS on the claimed bitmask.
	// Slots are atomic pointers because a claimer initialising its slot races
	// with other goroutines scanning the ring in release.
	deciders [deciderRing]atomic.Pointer[core.Decider]
	claimed  atomic.Uint64
	ringLen  int
	// overflow serves readers beyond the ring (oversubscription); entries
	// are bound to pol like ring deciders.
	overflow *sync.Pool
}

func newReplica(p *policy.Policy, mode Mode, pos int) *replica {
	r := &replica{}
	r.rebind(p, mode, pos)
	return r
}

// rebind points the replica at a fresh policy materialisation, discarding
// decider caches bound to the old one. Only called on quiescent replicas.
func (r *replica) rebind(p *policy.Policy, mode Mode, pos int) {
	r.pol = p
	r.pos = pos
	if mode == Refined {
		r.auth = core.NewRefinedAuthorizer(p)
	} else {
		r.auth = core.NewStrictAuthorizer(p)
	}
	n := runtime.GOMAXPROCS(0)
	if n > deciderRing {
		n = deciderRing
	}
	if n < 1 {
		n = 1
	}
	r.ringLen = n
	for i := range r.deciders {
		r.deciders[i].Store(nil)
	}
	r.claimed.Store(0)
	r.overflow = &sync.Pool{New: func() any { return core.NewDecider(p) }}
}

// claim returns a decider bound to the replica's policy for exclusive use by
// the caller; pair with release. The fast path is one CAS; ring deciders are
// built lazily on first claim of their slot.
func (r *replica) claim() *core.Decider {
	for {
		m := r.claimed.Load()
		free := ^m & (uint64(1)<<r.ringLen - 1)
		if free == 0 {
			return r.overflow.Get().(*core.Decider)
		}
		i := bits.TrailingZeros64(free)
		if r.claimed.CompareAndSwap(m, m|uint64(1)<<i) {
			if d := r.deciders[i].Load(); d != nil {
				return d
			}
			d := core.NewDecider(r.pol)
			r.deciders[i].Store(d)
			return d
		}
	}
}

// release returns a claimed decider.
func (r *replica) release(d *core.Decider) {
	for i := 0; i < r.ringLen; i++ {
		if r.deciders[i].Load() == d {
			r.claimed.And(^(uint64(1) << i))
			return
		}
	}
	r.overflow.Put(d)
}

// Guard is a write-path veto hook: it runs against the up-to-date pre-state
// under the writer lock, before the Definition 5 step, and a non-nil error
// denies the command without effect (the error is surfaced for audit
// trails). Constraint sets (SSD) hook in here — see constraints.Set.Guard.
type Guard func(pre *policy.Policy, c command.Command) error

// CommitHook is the engine's durability hook: it runs under the writer lock
// after a command has been applied to the pre-publish replica and before the
// new snapshot becomes visible to readers. gen is the generation the commit
// will publish. A non-nil error aborts the commit — the mutation is rolled
// back, no snapshot is published, and the error is surfaced from Submit — so
// a state change is never observable unless its hook (e.g. a WAL append)
// succeeded first: write-ahead semantics at the engine boundary.
type CommitHook func(gen uint64, res command.StepResult) error

// Engine owns the policy state and coordinates one writer with any number of
// lock-free readers.
type Engine struct {
	mu   sync.Mutex // serialises writers
	mode Mode
	cur  atomic.Pointer[Snapshot]

	// log holds the applied mutations; log[i] moved the engine generation
	// from logBase+i to logBase+i+1. Replicas catch up by replaying their
	// suffix.
	log      []command.Command
	logBase  int
	replicas []*replica
	hook     CommitHook
	flush    func() error

	// interner assigns fingerprints to commands at the read boundary; it is
	// shared by every replica and survives publication cycles.
	interner *command.Interner
	// cache is the generation-tagged decision cache consulted before the
	// decision kernel runs; swapped atomically by SetCacheSlots.
	cache atomic.Pointer[decision.Cache]
	// posFloor / negFloor are the cache validity watermarks (see package
	// decision): writer-owned, captured into each published Snapshot.
	posFloor, negFloor uint64

	// published is the generation broadcast: a channel closed (and replaced)
	// on every snapshot publication, so WaitGeneration blocks without
	// polling. Swapped under the writer lock, loaded lock-free by waiters.
	published atomic.Pointer[chan struct{}]
	// retired marks an engine that was replaced (a registry installed a
	// policy or a replica snapshot over it): it will never publish again, so
	// generation waiters return instead of sleeping out their timeout. The
	// owner re-resolves the successor engine (see tenant.WaitGenerationCtx).
	retired atomic.Bool
}

// New builds an engine, taking ownership of the policy: the caller must not
// mutate p afterwards.
func New(p *policy.Policy, mode Mode) *Engine {
	return NewAt(p, mode, 0)
}

// NewAt builds an engine whose state starts at a prior generation — the
// recovery constructor. A durable store that replayed its WAL into p hands
// the engine the policy together with the sequence number of the last
// replayed record, so generations keep counting from where the crashed
// process left off (see storage.OpenEngine).
func NewAt(p *policy.Policy, mode Mode, gen uint64) *Engine {
	e := &Engine{
		mode:     mode,
		logBase:  int(gen),
		interner: command.NewInterner(),
		posFloor: gen,
		negFloor: gen,
	}
	e.cache.Store(decision.New(decision.DefaultSlots))
	ch := make(chan struct{})
	e.published.Store(&ch)
	r := newReplica(p, mode, int(gen))
	e.replicas = []*replica{r}
	e.cur.Store(e.snapshotOf(r, gen))
	return e
}

// snapshotOf builds a Snapshot over r at generation gen, capturing the
// current cache pointer and validity floors. Callers publishing it must hold
// the writer lock (or be constructing the engine).
func (e *Engine) snapshotOf(r *replica, gen uint64) *Snapshot {
	return &Snapshot{
		e:        e,
		r:        r,
		gen:      gen,
		cache:    e.cache.Load(),
		posFloor: e.posFloor,
		negFloor: e.negFloor,
	}
}

// SetCacheSlots replaces the decision cache with a fresh one of the given
// slot count (rounded up to a power of two; <= 0 disables caching).
// Snapshots already published keep using the cache they captured.
func (e *Engine) SetCacheSlots(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache.Store(decision.New(n))
	cur := e.cur.Load()
	e.cur.Store(e.snapshotOf(cur.r, cur.gen))
}

// CacheStats reports the decision-cache counters.
func (e *Engine) CacheStats() decision.Stats {
	return e.cache.Load().Stats()
}

// SetCommitHook installs the durability hook invoked for every applied
// (state-changing) command. Pass nil to clear. The hook must not call back
// into the engine's write path (it runs under the writer lock).
func (e *Engine) SetCommitHook(fn CommitHook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = fn
}

// SetCommitFlush installs the group half of the durability contract: it runs
// once per submission (Submit, SubmitGuarded or SubmitBatch), after every
// applied command's CommitHook and before the covering snapshot publishes.
// A storage layer stages per-command records in the CommitHook and lands them
// all here with one file write and one fsync — group commit. A non-nil error
// rolls back every applied-but-unflushed command of the submission: nothing
// publishes, their results report Denied with a *CommitError, and the engine
// state is exactly what the last successful flush covered, so an acknowledged
// change always has its records durable even when many submitters share the
// flush. Pass nil to clear (the per-command hook then carries durability
// alone). Like the CommitHook, it must not call back into the write path.
func (e *Engine) SetCommitFlush(fn func() error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flush = fn
}

// Mode returns the engine's authorization mode.
func (e *Engine) Mode() Mode { return e.mode }

// Generation returns the number of applied (state-changing) transitions.
func (e *Engine) Generation() uint64 {
	return e.cur.Load().gen
}

// Snapshot returns the current published snapshot with a reader reference
// held. The caller must Close it; until then the snapshot is immutable and
// all its methods are safe for concurrent use with the writer and with other
// readers.
func (e *Engine) Snapshot() *Snapshot {
	for {
		s := e.cur.Load()
		s.r.refs.Add(1)
		if e.cur.Load() == s {
			return s
		}
		// The snapshot was republished between the load and the reference;
		// back off so the writer can reclaim the replica, and retry.
		s.r.refs.Add(-1)
	}
}

// Submit executes one administrative command through the transition function
// (Definition 5) against the current state, publishing a new snapshot when
// the policy changed.
func (e *Engine) Submit(c command.Command) command.StepResult {
	res, _ := e.SubmitGuarded(c, nil)
	return res
}

// SubmitGuarded is Submit with a veto hook: guard runs against the
// up-to-date pre-state under the writer lock, and a non-nil error denies the
// command without effect (the error is returned for audit trails).
// Constraint sets (SSD) hook in here.
func (e *Engine) SubmitGuarded(c command.Command, guard Guard) (command.StepResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	cur := e.cur.Load()
	next := e.writable(cur)
	e.catchUp(next)
	posFloor0, negFloor0 := e.posFloor, e.negFloor
	res, err := e.stepLocked(next, c, guard)
	if err != nil || res.Outcome != command.Applied {
		// State unchanged: keep the current snapshot published; next stays a
		// caught-up spare.
		return res, err
	}
	if e.flush != nil {
		if ferr := e.flush(); ferr != nil {
			e.rollbackLocked(next, []command.Command{c}, posFloor0, negFloor0)
			return command.StepResult{Cmd: c, Outcome: command.Denied}, &CommitError{Err: ferr}
		}
	}
	e.publishLocked(next)
	return res, nil
}

// SubmitBatch executes the commands in order through the transition function,
// each authorized against the state left by its predecessors, and publishes
// at most one new snapshot covering the whole batch — readers never observe a
// partially applied batch, and one publication amortises replica ping-pong
// across many writes. A commit-hook failure stops the batch: the results
// processed so far (the failed command reported as Denied) are returned
// together with the hook error, and the applied prefix is flushed and
// published. A commit-flush failure is total: every applied command of the
// batch rolls back (reported Denied), nothing publishes — no waiter in a
// commit group is ever acknowledged without the covering fsync.
func (e *Engine) SubmitBatch(cmds []command.Command, guard Guard) ([]command.StepResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	cur := e.cur.Load()
	next := e.writable(cur)
	e.catchUp(next)
	posFloor0, negFloor0 := e.posFloor, e.negFloor
	out := make([]command.StepResult, 0, len(cmds))
	var applied []command.Command
	var hookErr error
	for _, c := range cmds {
		res, err := e.stepLocked(next, c, guard)
		out = append(out, res)
		if res.Outcome == command.Applied {
			applied = append(applied, c)
		}
		// A guard veto denies one command and the batch continues; a
		// commit-hook failure means durability is gone and the batch stops.
		if _, fatal := err.(*CommitError); fatal {
			hookErr = err
			break
		}
	}
	if len(applied) == 0 {
		return out, hookErr
	}
	if e.flush != nil {
		if ferr := e.flush(); ferr != nil {
			e.rollbackLocked(next, applied, posFloor0, negFloor0)
			for i := range out {
				if out[i].Outcome == command.Applied {
					out[i] = command.StepResult{Cmd: out[i].Cmd, Outcome: command.Denied}
				}
			}
			return out, &CommitError{Err: ferr}
		}
	}
	e.publishLocked(next)
	return out, hookErr
}

// rollbackLocked undoes applied-but-unpublished commands after a failed
// commit flush: the inverse edge changes (applied in reverse order) restore
// the pre-submission policy on the unpublished replica, the engine log and
// position rewind, and the cache validity floors return to their captured
// values — nothing was published, so no snapshot ever observed the advance.
// When the submission outgrew the bounded log (trimLog dropped some of its
// own entries) the log is cleared instead: replicas behind the new logBase
// resynchronise by cloning the published state, which this rollback leaves
// untouched at exactly the rewound position.
func (e *Engine) rollbackLocked(next *replica, applied []command.Command, posFloor0, negFloor0 uint64) {
	for i := len(applied) - 1; i >= 0; i-- {
		command.Apply(next.pol, inverse(applied[i]))
	}
	next.pos -= len(applied)
	if len(e.log) >= len(applied) {
		e.log = e.log[:len(e.log)-len(applied)]
	} else {
		e.log = e.log[:0]
		e.logBase = next.pos
	}
	e.posFloor, e.negFloor = posFloor0, negFloor0
}

// publishLocked makes next the published replica and wakes generation
// waiters. Caller holds the writer lock.
func (e *Engine) publishLocked(next *replica) {
	e.cur.Store(e.snapshotOf(next, uint64(next.pos)))
	ch := make(chan struct{})
	old := e.published.Swap(&ch)
	close(*old)
}

// WaitGeneration blocks until the engine's generation reaches min or the
// timeout elapses, returning the generation observed last and whether it
// satisfies min. A zero or negative timeout polls once without blocking.
// This is the primitive behind read-your-writes generation tokens: a reader
// holding a write's (tenant, generation) token waits here before taking a
// snapshot — once a generation is published, every later Snapshot() observes
// a generation at least as large.
func (e *Engine) WaitGeneration(min uint64, timeout time.Duration) (uint64, bool) {
	return e.WaitGenerationCtx(context.Background(), min, timeout)
}

// WaitGenerationCtx is WaitGeneration bounded additionally by ctx, so a
// server can abandon the wait the moment its client disconnects (a
// replication long-poll must not hold resources for a peer that is gone).
// It also returns early when the engine is retired (see Retire).
func (e *Engine) WaitGenerationCtx(ctx context.Context, min uint64, timeout time.Duration) (uint64, bool) {
	gen := e.Generation()
	if gen >= min || timeout <= 0 {
		return gen, gen >= min
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := *e.published.Load()
		// Re-check after loading the channel: a publication between the
		// generation check and the load would otherwise be missed (its close
		// hit the previous channel).
		if gen = e.Generation(); gen >= min {
			return gen, true
		}
		if e.retired.Load() {
			return gen, false
		}
		select {
		case <-ch:
		case <-deadline.C:
			gen = e.Generation()
			return gen, gen >= min
		case <-ctx.Done():
			gen = e.Generation()
			return gen, gen >= min
		}
	}
}

// Retire marks the engine as replaced and wakes every generation waiter:
// this engine will never publish again, so blocked waiters must re-resolve
// whatever superseded it rather than sleep out their timeout. Reads against
// already-acquired snapshots stay valid.
func (e *Engine) Retire() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retired.Store(true)
	ch := make(chan struct{})
	old := e.published.Swap(&ch)
	close(*old)
}

// CommitError wraps a commit-hook failure so callers can distinguish a
// durability fault from an authorization denial.
type CommitError struct{ Err error }

func (e *CommitError) Error() string { return "engine: commit hook: " + e.Err.Error() }

// Unwrap exposes the underlying hook error.
func (e *CommitError) Unwrap() error { return e.Err }

// stepLocked runs one command against the caught-up spare under the writer
// lock: guard veto, Definition 5 step, then the commit hook. An applied
// command whose hook fails is rolled back (the inverse edge change restores
// the pre-command policy) and reported as Denied with a *CommitError.
func (e *Engine) stepLocked(next *replica, c command.Command, guard Guard) (command.StepResult, error) {
	if guard != nil {
		if err := guard(next.pol, c); err != nil {
			return command.StepResult{Cmd: c, Outcome: command.Denied}, err
		}
	}
	res := command.Step(next.pol, c, next.auth)
	if res.Outcome != command.Applied {
		return res, nil
	}
	if e.hook != nil {
		if err := e.hook(uint64(next.pos+1), res); err != nil {
			// Undo the edge change: Step reported Applied, so the grant added
			// an absent edge (undo = remove) or the revoke removed a present
			// one (undo = add). The replica is unpublished, so the transient
			// state was never visible to readers.
			command.Apply(next.pol, inverse(c))
			return command.StepResult{Cmd: c, Outcome: command.Denied}, &CommitError{Err: err}
		}
	}
	e.log = append(e.log, c)
	e.trimLog()
	next.pos++
	// Advance the decision-cache validity floors (see package decision): a
	// grant is additive — Ãφ and Definition 5 reachability are monotone, so
	// allowed verdicts survive and only denials can flip; a revoke shrinks
	// the policy, dropping everything.
	if c.Op == model.OpRevoke {
		e.posFloor = uint64(next.pos)
	}
	e.negFloor = uint64(next.pos)
	return res, nil
}

// inverse returns the command undoing c's edge change.
func inverse(c command.Command) command.Command {
	op := model.OpRevoke
	if c.Op == model.OpRevoke {
		op = model.OpGrant
	}
	return command.Command{Actor: c.Actor, Op: op, From: c.From, To: c.To}
}

// writable returns a quiescent replica distinct from the published one,
// cloning the current state when every spare is still pinned by readers.
func (e *Engine) writable(cur *Snapshot) *replica {
	for _, r := range e.replicas {
		if r != cur.r && r.refs.Load() == 0 {
			return r
		}
	}
	r := newReplica(cur.r.pol.Clone(), e.mode, cur.r.pos)
	e.replicas = append(e.replicas, r)
	return r
}

// catchUp replays the mutations r missed. A replica behind the trimmed log
// window resynchronises by cloning the published state.
func (e *Engine) catchUp(r *replica) {
	head := e.logBase + len(e.log)
	if r.pos == head {
		return
	}
	if r.pos < e.logBase {
		cur := e.cur.Load().r
		r.rebind(cur.pol.Clone(), e.mode, head)
		return
	}
	for i := r.pos - e.logBase; i < len(e.log); i++ {
		// Replay the effect only: the command was already authorized when it
		// entered the log.
		command.Apply(r.pol, e.log[i])
	}
	r.pos = head
}

func (e *Engine) trimLog() {
	if len(e.log) < maxEngineLog {
		return
	}
	drop := len(e.log) / 2
	e.log = append(e.log[:0], e.log[drop:]...)
	e.logBase += drop
}

// Snapshot is an immutable view of the policy at one engine generation:
// policy, reachability closure, decider caches and the decision cache with
// the validity floors this generation decides under. All methods are safe
// for concurrent use by multiple goroutines until Close releases the reader
// reference; using a snapshot after Close is a bug.
type Snapshot struct {
	e        *Engine
	r        *replica
	gen      uint64
	cache    *decision.Cache
	posFloor uint64
	negFloor uint64
}

// Close releases the reader reference, allowing the writer to recycle the
// underlying replica.
func (s *Snapshot) Close() { s.r.refs.Add(-1) }

// Generation identifies the engine state the snapshot reflects. Generations
// are monotone: a snapshot acquired later never observes a smaller one.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Policy exposes the snapshot's policy for read-only use. Mutating it is a
// bug (it would corrupt concurrent readers).
func (s *Snapshot) Policy() *policy.Policy { return s.r.pol }

// ValidityFloors returns the decision-cache validity watermarks this
// snapshot decides under (see package decision): pos is the oldest
// generation whose positive verdicts are still valid at this snapshot, neg
// the oldest whose negative verdicts are. Layers that maintain their own
// generation-tagged caches over snapshots — the session tables in
// internal/session key their compiled role bitsets and check verdicts on
// these — share the engine's invalidation rules through them.
func (s *Snapshot) ValidityFloors() (pos, neg uint64) { return s.posFloor, s.negFloor }

// decider claims a pre-bound decider from the replica's ring. Deciders
// carry warm closures, memo tables and fingerprint tables across queries
// and publication cycles, refreshing incrementally when the replica was
// advanced in between.
func (s *Snapshot) decider() *core.Decider { return s.r.claim() }

func (s *Snapshot) release(d *core.Decider) { s.r.release(d) }

// Authorize reports whether the command is authorized under the engine's
// mode, returning the justifying privilege. It never mutates policy state.
//
// This is the service's per-query kernel: the command is fingerprinted at
// the boundary (allocation-free once interned), the decision cache is
// consulted under the snapshot's validity floors, and only a miss claims a
// decider and runs the decision procedure. The steady-state path performs
// no allocations.
func (s *Snapshot) Authorize(c command.Command) (model.Privilege, bool) {
	r := s.authorize(c, nil)
	return r.Justification, r.OK
}

// authorize decides one command. d is a pre-claimed decider (batch path) or
// nil, in which case a decider is claimed only if the cache misses.
func (s *Snapshot) authorize(c command.Command, d *core.Decider) AuthzResult {
	info := s.e.interner.Command(c)
	if info == nil {
		// Interner at capacity and this command unseen: decide uncached.
		return s.authorizeSlow(c, d)
	}
	if info.Priv == nil {
		return AuthzResult{} // ill-formed: denied in every regime
	}
	fp := uint32(info.FP)
	if just, allowed, ok := s.cache.Get(fp, s.gen, s.posFloor, s.negFloor); ok {
		if !allowed {
			return AuthzResult{}
		}
		return AuthzResult{Justification: s.e.interner.Privilege(command.PrivID(just)), OK: true}
	}
	if d == nil {
		d = s.r.claim()
		defer s.r.release(d)
	}
	just, ok := d.AuthorizeFP(info, s.e.mode == Refined)
	if s.cache.Enabled() {
		pid := command.PrivID(0)
		if ok {
			// Both branches are lock-free, allocation-free interner hits in
			// steady state (witnesses and strict justifications recur).
			pid = s.e.interner.PrivilegeID(just)
		}
		if !ok || pid != 0 {
			// An allowed verdict whose witness could not be interned (full
			// table) is unrepresentable in the cache and simply not stored.
			s.cache.Put(fp, s.gen, ok, uint32(pid))
		}
	}
	return AuthzResult{Justification: just, OK: ok}
}

// authorizeSlow is the uninterned fallback (interner at capacity).
func (s *Snapshot) authorizeSlow(c command.Command, d *core.Decider) AuthzResult {
	if d == nil {
		d = s.r.claim()
		defer s.r.release(d)
	}
	return s.authorizeWith(d, c)
}

// AuthzResult is one batched authorization decision.
type AuthzResult struct {
	// Justification is the privilege justifying an allowed command (nil when
	// denied).
	Justification model.Privilege
	// OK reports whether the command is authorized.
	OK bool
}

// AuthorizeBatch decides every command against this one snapshot with a
// single claimed decider, amortising snapshot acquisition and decider
// traffic across the batch — the read-side analogue of SubmitBatch. The
// i-th result decides cmds[i]; all decisions are taken at the same
// generation.
func (s *Snapshot) AuthorizeBatch(cmds []command.Command) []AuthzResult {
	return s.AuthorizeBatchInto(cmds, nil)
}

// AuthorizeBatchInto is AuthorizeBatch writing into out's backing array when
// its capacity suffices, so callers serving request loops can reuse one
// result buffer across batches instead of allocating per call (see
// internal/server). It returns out resliced to len(cmds).
func (s *Snapshot) AuthorizeBatchInto(cmds []command.Command, out []AuthzResult) []AuthzResult {
	if cap(out) < len(cmds) {
		out = make([]AuthzResult, len(cmds))
	}
	out = out[:len(cmds)]
	d := s.decider()
	defer s.release(d)
	for i, c := range cmds {
		out[i] = s.authorize(c, d)
	}
	return out
}

func (s *Snapshot) authorizeWith(d *core.Decider, c command.Command) AuthzResult {
	priv, err := c.Privilege()
	if err != nil {
		return AuthzResult{}
	}
	if s.e.mode == Refined {
		just, ok := d.HeldStronger(c.Actor, priv)
		return AuthzResult{Justification: just, OK: ok}
	}
	if d.Holds(c.Actor, priv) {
		return AuthzResult{Justification: priv, OK: true}
	}
	return AuthzResult{}
}

// ExplainCommand describes why the command would be authorized or denied at
// this snapshot, without executing it. In refined mode the explanation
// includes the held stronger privilege and its Ãφ derivation.
func (s *Snapshot) ExplainCommand(c command.Command) string {
	if err := c.Validate(); err != nil {
		return fmt.Sprintf("ill-formed: %v", err)
	}
	target, _ := c.Privilege()
	if just, ok := (command.Strict{}).Authorize(s.r.pol, c); ok {
		return fmt.Sprintf("authorized (strict): %s reaches %s", c.Actor, just)
	}
	if s.e.mode == Refined {
		if held, ok := s.HeldStronger(c.Actor, target); ok {
			if dv, okd := s.Explain(held, target); okd {
				return fmt.Sprintf("authorized (refined): %s holds %s and\n%s", c.Actor, held, dv)
			}
			return fmt.Sprintf("authorized (refined): %s holds %s Ã %s", c.Actor, held, target)
		}
	}
	return fmt.Sprintf("denied: %s holds no privilege at least as strong as %s", c.Actor, target)
}

// Weaker reports p Ãφ q under the snapshot's policy.
func (s *Snapshot) Weaker(p, q model.Privilege) bool {
	d := s.decider()
	defer s.release(d)
	return d.Weaker(p, q)
}

// HeldStronger reports whether the user holds a privilege at least as strong
// as q, returning the first witness.
func (s *Snapshot) HeldStronger(user string, q model.Privilege) (model.Privilege, bool) {
	d := s.decider()
	defer s.release(d)
	return d.HeldStronger(user, q)
}

// Explain decides strong Ãφ weak and produces a derivation witness.
func (s *Snapshot) Explain(strong, weak model.Privilege) (*core.Derivation, bool) {
	d := s.decider()
	defer s.release(d)
	return d.Explain(strong, weak)
}
