package parser_test

import (
	"fmt"

	"adminrefine/internal/command"
	"adminrefine/internal/parser"
)

// A policy file with commands parses into a policy, a queue, and checks.
func ExampleParse() {
	doc, err := parser.Parse(`
users jane, bob
roles HR, staff, nurse
assign jane HR
inherit staff nurse
grant HR grant(bob, staff)
do jane grant bob staff
expect reaches bob staff
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(doc.Policy.Roles()), "roles,", len(doc.Queue), "command,", len(doc.Checks), "check")

	final, trace := command.RunOn(doc.Policy, doc.Queue, command.Strict{})
	fmt.Println(trace[0].Outcome)
	fmt.Println(final.CanActivate("bob", "nurse"))
	// Output:
	// 3 roles, 1 command, 1 check
	// applied
	// true
}
