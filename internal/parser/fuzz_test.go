package parser

import (
	"strings"
	"testing"
)

// FuzzParse exercises the lexer and parser with arbitrary input: parsing
// must never panic, and any input that parses must round-trip through the
// canonical printer to an equal document. Run the seeds with `go test`;
// explore with `go test -fuzz=FuzzParse ./internal/parser`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		figure2RPL,
		checksRPL,
		"users a\nroles r\nassign a r\ndo a grant a r\n",
		"roles r\ngrant r (x, y)\n",
		"roles r\ngrant r grant(r, grant(r, grant(r, r)))\n",
		`users "q\"uote"` + "\nroles r\nassign \"q\\\"uote\" r\n",
		"users a,\nroles", // truncated
		"users a roles r", // missing separators
		"expect reaches a b",
		"do u grant (a, b) r",
		"grant r revoke(r, (a, b))",
		"users \x00\nroles \xff\n",
		strings.Repeat("roles r\n", 50),
		"roles r\ngrant r " + strings.Repeat("grant(r, ", 30) + "r" + strings.Repeat(")", 30),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := doc.Policy.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid policy: %v\ninput: %q", err, src)
		}
		// Canonical round trip.
		text := PrintDoc(doc)
		doc2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ncanonical: %q", err, text)
		}
		if !doc2.Policy.Equal(doc.Policy) {
			t.Fatalf("round trip changed policy\ninput: %q\ncanonical: %q", src, text)
		}
		if len(doc2.Queue) != len(doc.Queue) || len(doc2.Checks) != len(doc.Checks) {
			t.Fatalf("round trip changed queue/checks\ninput: %q", src)
		}
	})
}

// FuzzLexer checks the tokenizer alone never panics and always terminates.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"", "a b c", `"unterminated`, "(,,)#", "\"\\\\\"", "\xf0\x9f\x92\xa9"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream not EOF-terminated for %q", src)
		}
	})
}
