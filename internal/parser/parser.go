package parser

import (
	"fmt"
	"os"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Document is the result of parsing an RPL source: a policy, the command
// queue of its `do` statements, and the assertions of its `expect`
// statements (either may be empty).
type Document struct {
	Policy *policy.Policy
	Queue  command.Queue
	Checks []Check
}

// CheckKind enumerates the assertion forms of the `expect` statement.
type CheckKind uint8

const (
	// CheckReaches asserts v →φ v' (or its negation).
	CheckReaches CheckKind = iota + 1
	// CheckWeaker asserts strong Ãφ weak (or its negation).
	CheckWeaker
)

// Check is one `expect` assertion, evaluated against the policy after the
// file's command queue has run:
//
//	expect reaches diana staff
//	expect not reaches jane (write, t3)
//	expect weaker grant(bob, staff) grant(bob, dbusr2)
//	expect not weaker grant(bob, dbusr2) grant(bob, staff)
type Check struct {
	Kind    CheckKind
	Negated bool
	// From/To are set for CheckReaches.
	From model.Vertex
	To   model.Vertex
	// Strong/Weak are set for CheckWeaker.
	Strong model.Privilege
	Weak   model.Privilege
	Line   int
}

// String renders the check in RPL syntax.
func (c Check) String() string {
	neg := ""
	if c.Negated {
		neg = "not "
	}
	switch c.Kind {
	case CheckReaches:
		return fmt.Sprintf("expect %sreaches %s %s", neg, c.From, c.To)
	case CheckWeaker:
		return fmt.Sprintf("expect %sweaker %s %s", neg, c.Strong, c.Weak)
	default:
		return "expect ?"
	}
}

// statement ASTs, produced by pass one and elaborated in pass two.

type stmtKind uint8

const (
	stmtUsers stmtKind = iota + 1
	stmtRoles
	stmtAssign
	stmtInherit
	stmtGrant
	stmtDo
	stmtExpect
)

type privExpr struct {
	// perm is set for "(action, object)".
	perm *[2]string
	// op/src/dst are set for "grant(src, dst)" / "revoke(src, dst)".
	op      model.Op
	src     string
	dstName string    // destination identifier (role), or
	dstPriv *privExpr // nested privilege
	line    int
	col     int
}

type stmt struct {
	kind  stmtKind
	names []string  // users/roles lists
	a, b  string    // assign/inherit operands; grant subject in a
	priv  *privExpr // grant privilege
	// do statement parts:
	actor  string
	op     model.Op
	from   string
	toName string
	toPriv *privExpr
	// expect statement parts:
	negated   bool
	checkKind CheckKind
	priv2     *privExpr // second privilege of expect weaker
	line      int
	col       int
}

// Parse parses RPL source into a policy and command queue.
func Parse(src string) (*Document, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.parseStatements()
	if err != nil {
		return nil, err
	}
	return elaborate(stmts)
}

// ParseFile parses the RPL file at path.
func ParseFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return doc, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errAt(t.line, t.col, "expected %s, found %q", kind, t.text)
	}
	return t, nil
}

// name accepts an identifier or quoted string as a name.
func (p *parser) name() (string, int, int, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokString {
		return "", t.line, t.col, errAt(t.line, t.col, "expected a name, found %s", t.kind)
	}
	if t.text == "" {
		return "", t.line, t.col, errAt(t.line, t.col, "empty name")
	}
	return t.text, t.line, t.col, nil
}

func (p *parser) parseStatements() ([]stmt, error) {
	var out []stmt
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return out, nil
		}
		if t.kind != tokIdent {
			return nil, errAt(t.line, t.col, "expected a statement keyword, found %s", t.kind)
		}
		switch t.text {
		case "users", "roles":
			p.next()
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			k := stmtUsers
			if t.text == "roles" {
				k = stmtRoles
			}
			out = append(out, stmt{kind: k, names: names, line: t.line, col: t.col})
		case "assign", "inherit":
			p.next()
			a, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			b, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			k := stmtAssign
			if t.text == "inherit" {
				k = stmtInherit
			}
			out = append(out, stmt{kind: k, a: a, b: b, line: t.line, col: t.col})
		case "grant":
			p.next()
			subject, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			pe, err := p.parsePriv()
			if err != nil {
				return nil, err
			}
			out = append(out, stmt{kind: stmtGrant, a: subject, priv: pe, line: t.line, col: t.col})
		case "do":
			p.next()
			st := stmt{kind: stmtDo, line: t.line, col: t.col}
			actor, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			st.actor = actor
			opTok := p.next()
			switch opTok.text {
			case "grant":
				st.op = model.OpGrant
			case "revoke":
				st.op = model.OpRevoke
			default:
				return nil, errAt(opTok.line, opTok.col, "expected grant or revoke, found %q", opTok.text)
			}
			from, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			st.from = from
			// Target: a privilege expression or a bare name.
			if p.isPrivStart() {
				pe, err := p.parsePriv()
				if err != nil {
					return nil, err
				}
				st.toPriv = pe
			} else {
				to, _, _, err := p.name()
				if err != nil {
					return nil, err
				}
				st.toName = to
			}
			out = append(out, st)
		case "expect":
			p.next()
			st := stmt{kind: stmtExpect, line: t.line, col: t.col}
			if p.peek().kind == tokIdent && p.peek().text == "not" {
				p.next()
				st.negated = true
			}
			kw := p.next()
			switch kw.text {
			case "reaches":
				st.checkKind = CheckReaches
				from, _, _, err := p.name()
				if err != nil {
					return nil, err
				}
				st.from = from
				if p.isPrivStart() {
					pe, err := p.parsePriv()
					if err != nil {
						return nil, err
					}
					st.toPriv = pe
				} else {
					to, _, _, err := p.name()
					if err != nil {
						return nil, err
					}
					st.toName = to
				}
			case "weaker":
				st.checkKind = CheckWeaker
				pe1, err := p.parsePriv()
				if err != nil {
					return nil, err
				}
				pe2, err := p.parsePriv()
				if err != nil {
					return nil, err
				}
				st.priv = pe1
				st.priv2 = pe2
			default:
				return nil, errAt(kw.line, kw.col, "expected reaches or weaker, found %q", kw.text)
			}
			out = append(out, st)
		default:
			return nil, errAt(t.line, t.col, "unknown statement %q", t.text)
		}
	}
}

func (p *parser) nameList() ([]string, error) {
	var names []string
	n, _, _, err := p.name()
	if err != nil {
		return nil, err
	}
	names = append(names, n)
	for p.peek().kind == tokComma {
		p.next()
		n, _, _, err := p.name()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	return names, nil
}

// isPrivStart reports whether the upcoming tokens begin a privilege
// expression: '(' (a permission) or grant/revoke followed by '('.
func (p *parser) isPrivStart() bool {
	t := p.peek()
	if t.kind == tokLParen {
		return true
	}
	if t.kind == tokIdent && (t.text == "grant" || t.text == "revoke") {
		return p.toks[p.pos+1].kind == tokLParen
	}
	return false
}

func (p *parser) parsePriv() (*privExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		// (action, object)
		p.next()
		action, _, _, err := p.name()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		object, _, _, err := p.name()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		perm := [2]string{action, object}
		return &privExpr{perm: &perm, line: t.line, col: t.col}, nil
	case t.kind == tokIdent && (t.text == "grant" || t.text == "revoke"):
		p.next()
		op := model.OpGrant
		if t.text == "revoke" {
			op = model.OpRevoke
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		src, _, _, err := p.name()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		pe := &privExpr{op: op, src: src, line: t.line, col: t.col}
		if p.isPrivStart() {
			inner, err := p.parsePriv()
			if err != nil {
				return nil, err
			}
			pe.dstPriv = inner
		} else {
			dst, _, _, err := p.name()
			if err != nil {
				return nil, err
			}
			pe.dstName = dst
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return pe, nil
	default:
		return nil, errAt(t.line, t.col, "expected a privilege, found %q", t.text)
	}
}

// elaborate runs the two resolution passes over the statement list.
func elaborate(stmts []stmt) (*Document, error) {
	users := map[string]bool{}
	roles := map[string]bool{}

	declareUser := func(n string) { users[n] = true }
	declareRole := func(n string) { roles[n] = true }

	// Pass one: collect declarations from unambiguous positions.
	var collectPriv func(pe *privExpr)
	collectPriv = func(pe *privExpr) {
		if pe == nil || pe.perm != nil {
			return
		}
		if pe.dstName != "" {
			declareRole(pe.dstName)
		}
		collectPriv(pe.dstPriv)
	}
	for _, s := range stmts {
		switch s.kind {
		case stmtUsers:
			for _, n := range s.names {
				declareUser(n)
			}
		case stmtRoles:
			for _, n := range s.names {
				declareRole(n)
			}
		case stmtAssign:
			declareUser(s.a)
			declareRole(s.b)
		case stmtInherit:
			declareRole(s.a)
			declareRole(s.b)
		case stmtGrant:
			declareRole(s.a)
			collectPriv(s.priv)
		case stmtDo:
			declareUser(s.actor)
			if s.toName != "" {
				declareRole(s.toName)
			}
			collectPriv(s.toPriv)
		case stmtExpect:
			// expect operands must already be declared elsewhere; only
			// privilege destinations auto-declare, as in grant.
			collectPriv(s.toPriv)
			collectPriv(s.priv)
			collectPriv(s.priv2)
		}
	}

	// resolve an identifier that may be a user or a role.
	resolve := func(n string, line, col int) (model.Entity, error) {
		isU, isR := users[n], roles[n]
		switch {
		case isU && isR:
			return model.Entity{}, errAt(line, col, "name %q is declared as both a user and a role; rename one", n)
		case isU:
			return model.User(n), nil
		case isR:
			return model.Role(n), nil
		default:
			return model.Entity{}, errAt(line, col, "name %q is not declared as a user or role", n)
		}
	}

	var buildPriv func(pe *privExpr) (model.Privilege, error)
	buildPriv = func(pe *privExpr) (model.Privilege, error) {
		if pe.perm != nil {
			q := model.Perm(pe.perm[0], pe.perm[1])
			if err := q.Validate(); err != nil {
				return nil, errAt(pe.line, pe.col, "%v", err)
			}
			return q, nil
		}
		src, err := resolve(pe.src, pe.line, pe.col)
		if err != nil {
			return nil, err
		}
		var dst model.Vertex
		if pe.dstPriv != nil {
			inner, err := buildPriv(pe.dstPriv)
			if err != nil {
				return nil, err
			}
			dst = inner
		} else {
			dst = model.Role(pe.dstName)
		}
		adm, err := model.NewAdmin(pe.op, src, dst)
		if err != nil {
			return nil, errAt(pe.line, pe.col, "%v", err)
		}
		return adm, nil
	}

	// Pass two: build the policy and queue.
	doc := &Document{Policy: policy.New()}
	for n := range users {
		doc.Policy.DeclareUser(n)
	}
	for n := range roles {
		doc.Policy.DeclareRole(n)
	}
	for _, s := range stmts {
		switch s.kind {
		case stmtAssign:
			if roles[s.a] {
				return nil, errAt(s.line, s.col, "assign source %q is a role; assign takes a user", s.a)
			}
			doc.Policy.Assign(s.a, s.b)
		case stmtInherit:
			if users[s.a] || users[s.b] {
				return nil, errAt(s.line, s.col, "inherit takes two roles")
			}
			doc.Policy.AddInherit(s.a, s.b)
		case stmtGrant:
			if users[s.a] {
				return nil, errAt(s.line, s.col, "grant subject %q is a user; privileges are assigned to roles", s.a)
			}
			pr, err := buildPriv(s.priv)
			if err != nil {
				return nil, err
			}
			if _, err := doc.Policy.GrantPrivilege(s.a, pr); err != nil {
				return nil, errAt(s.line, s.col, "%v", err)
			}
		case stmtDo:
			from, err := resolve(s.from, s.line, s.col)
			if err != nil {
				return nil, err
			}
			var to model.Vertex
			if s.toPriv != nil {
				pr, err := buildPriv(s.toPriv)
				if err != nil {
					return nil, err
				}
				to = pr
			} else {
				to = model.Role(s.toName)
			}
			c := command.Command{Actor: s.actor, Op: s.op, From: from, To: to}
			if err := c.Validate(); err != nil {
				return nil, errAt(s.line, s.col, "%v", err)
			}
			doc.Queue = append(doc.Queue, c)
		case stmtExpect:
			ck := Check{Kind: s.checkKind, Negated: s.negated, Line: s.line}
			switch s.checkKind {
			case CheckReaches:
				from, err := resolve(s.from, s.line, s.col)
				if err != nil {
					return nil, err
				}
				ck.From = from
				if s.toPriv != nil {
					pr, err := buildPriv(s.toPriv)
					if err != nil {
						return nil, err
					}
					ck.To = pr
				} else {
					to, err := resolve(s.toName, s.line, s.col)
					if err != nil {
						return nil, err
					}
					ck.To = to
				}
			case CheckWeaker:
				strong, err := buildPriv(s.priv)
				if err != nil {
					return nil, err
				}
				weak, err := buildPriv(s.priv2)
				if err != nil {
					return nil, err
				}
				ck.Strong, ck.Weak = strong, weak
			}
			doc.Checks = append(doc.Checks, ck)
		}
	}
	if err := doc.Policy.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}
