package parser

import (
	"math/rand"
	"strings"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

const figure2RPL = `
# Figure 2: Alice's administrative hospital policy.
users diana, alice, jane, bob, joe
roles SO, HR, staff, nurse, prntusr, dbusr1, dbusr2, dbusr3

assign diana nurse
assign diana staff
assign alice SO
assign jane HR

inherit staff nurse
inherit staff dbusr2
inherit nurse dbusr1
inherit nurse prntusr
inherit dbusr2 dbusr1
inherit SO HR

grant dbusr1 (read, t1)
grant dbusr1 (read, t2)
grant dbusr2 (write, t3)
grant nurse (prnt, black)
grant prntusr (prnt, color)

grant HR grant(bob, staff)
grant HR grant(joe, nurse)
grant HR revoke(joe, nurse)
grant SO grant(staff, grant(bob, staff))
grant dbusr3 revoke(dbusr2, dbusr1)
`

func TestParseFigure2MatchesFixture(t *testing.T) {
	doc, err := Parse(figure2RPL)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Queue) != 0 {
		t.Fatalf("declarative file produced commands: %v", doc.Queue)
	}
	want := policy.Figure2()
	if !doc.Policy.Equal(want) {
		removed, added := want.Diff(doc.Policy)
		t.Fatalf("parsed policy differs from fixture:\nmissing %v\nextra %v", removed, added)
	}
}

func TestParseCommands(t *testing.T) {
	src := figure2RPL + `
do jane grant bob staff
do jane revoke joe nurse
do alice grant staff grant(bob, staff)
do jane grant dbusr1 (read, t3)
do jane grant staff nurse
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Queue) != 5 {
		t.Fatalf("queue length = %d", len(doc.Queue))
	}
	c0 := doc.Queue[0]
	if c0.Actor != "jane" || c0.Op != model.OpGrant ||
		c0.From.Key() != model.User("bob").Key() || c0.To.Key() != model.Role("staff").Key() {
		t.Errorf("command 0 = %v", c0)
	}
	if doc.Queue[1].Op != model.OpRevoke {
		t.Errorf("command 1 op = %v", doc.Queue[1].Op)
	}
	// Command 2 targets a privilege.
	if _, ok := doc.Queue[2].To.(model.AdminPrivilege); !ok {
		t.Errorf("command 2 target = %T", doc.Queue[2].To)
	}
	// Command 3 grants a permission to a role.
	if _, ok := doc.Queue[3].To.(model.UserPrivilege); !ok {
		t.Errorf("command 3 target = %T", doc.Queue[3].To)
	}
	// Command 4 is an RH edge command (role from-vertex).
	if e, ok := doc.Queue[4].From.(model.Entity); !ok || !e.IsRole() {
		t.Errorf("command 4 from = %v", doc.Queue[4].From)
	}

	// The parsed queue must execute exactly like the hand-built fixture run.
	final, trace := command.RunOn(doc.Policy, doc.Queue, command.Strict{})
	if trace[0].Outcome != command.Applied {
		t.Errorf("jane's appoint denied: %v", trace[0].Outcome)
	}
	if !final.HasEdge(model.User("bob"), model.Role("staff")) {
		t.Error("bob not staff after run")
	}
}

func TestRoundTripFigure2(t *testing.T) {
	orig := policy.Figure2()
	text := Print(orig, nil)
	doc, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, text)
	}
	if !doc.Policy.Equal(orig) {
		removed, added := orig.Diff(doc.Policy)
		t.Fatalf("round trip changed policy:\nmissing %v\nextra %v", removed, added)
	}
	// Printing is deterministic and idempotent.
	if text2 := Print(doc.Policy, nil); text2 != text {
		t.Fatal("printing not canonical")
	}
}

func TestRoundTripWithQueue(t *testing.T) {
	doc, err := Parse(figure2RPL + "\ndo jane grant bob staff\ndo alice grant staff grant(bob, staff)\n")
	if err != nil {
		t.Fatal(err)
	}
	text := Print(doc.Policy, doc.Queue)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v", err)
	}
	if len(doc2.Queue) != len(doc.Queue) {
		t.Fatalf("queue round trip: %d -> %d", len(doc.Queue), len(doc2.Queue))
	}
	for i := range doc.Queue {
		if doc.Queue[i].Key() != doc2.Queue[i].Key() {
			t.Errorf("command %d changed: %v -> %v", i, doc.Queue[i], doc2.Queue[i])
		}
	}
}

func TestQuotedNamesAndEscapes(t *testing.T) {
	src := `
users "alice smith", "bob \"the builder\""
roles "night shift", grant
assign "alice smith" "night shift"
grant "night shift" ("read, write", "table(1)")
do "bob \"the builder\"" grant "alice smith" "grant"
`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Policy.HasUser("alice smith") || !doc.Policy.HasRole("night shift") {
		t.Fatal("quoted names not declared")
	}
	if !doc.Policy.HasRole("grant") {
		t.Fatal("keyword-named role not declared")
	}
	perm := model.Perm("read, write", "table(1)")
	if !doc.Policy.Reaches(model.Role("night shift"), perm) {
		t.Fatal("quoted permission missing")
	}
	// Round trip with hostile names.
	text := Print(doc.Policy, doc.Queue)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("hostile round trip: %v\n%s", err, text)
	}
	if !doc2.Policy.Equal(doc.Policy) {
		t.Fatal("hostile round trip changed policy")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unknown statement", "frobnicate x y", "unknown statement"},
		{"missing operand", "assign diana", "expected a name"},
		{"unterminated string", `users "alice`, "unterminated string"},
		{"bad char", "users alice; roles x", "unexpected character"},
		{"undeclared priv source", "roles r\ngrant r grant(ghost, r)", "not declared"},
		{"ambiguous name", "users x\nroles x, r\ngrant r grant(x, r)", "both a user and a role"},
		{"assign role as user", "roles r1, r2\nusers u\nassign r1 r2", "assign takes a user"},
		{"inherit user", "users u\nroles r\ninherit u r", "inherit takes two roles"},
		{"grant to user", "users u\nroles r\ngrant u (a, b)", "privileges are assigned to roles"},
		{"ungrammatical nested", "users u\nroles r\ngrant r grant(u, (a, b))", "role destination"},
		{"bad do op", "users u\nroles r\ndo u frob r r", "expected grant or revoke"},
		{"do undeclared from", "users u\nroles r\ndo u grant ghost r", "not declared"},
		{"unclosed priv", "roles r\ngrant r (a, b", "expected ')'"},
		{"missing comma", "roles r\ngrant r (a b)", "expected ','"},
		{"empty priv", "roles r\ngrant r", "expected a privilege"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("users alice\nroles r\nfrobnicate")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 || se.Col != 1 {
		t.Fatalf("position = %d:%d, want 3:1", se.Line, se.Col)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading comment\n\n   users   alice # trailing\n\t\nroles r # another\nassign alice r\n"
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Policy.HasUser("alice") || !doc.Policy.CanActivate("alice", "r") {
		t.Fatal("comment handling broke parsing")
	}
}

func TestEmptyInput(t *testing.T) {
	doc, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Policy.NumEdges() != 0 || len(doc.Queue) != 0 {
		t.Fatal("empty input produced content")
	}
	doc, err = Parse("# only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Policy.NumEdges() != 0 {
		t.Fatal("comment-only input produced content")
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("users u\nroles r0, r\n")
	b.WriteString("grant r ")
	depth := 30
	for i := 0; i < depth; i++ {
		b.WriteString("grant(r, ")
	}
	b.WriteString("grant(u, r0)")
	b.WriteString(strings.Repeat(")", depth))
	b.WriteByte('\n')
	doc, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	privs := doc.Policy.PrivilegeVertices()
	if len(privs) != 1 {
		t.Fatalf("privileges = %d", len(privs))
	}
	if got := privs[0].Depth(); got != depth+1 {
		t.Fatalf("depth = %d, want %d", got, depth+1)
	}
	// Round trip preserves deep nesting.
	doc2, err := Parse(Print(doc.Policy, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !doc2.Policy.Equal(doc.Policy) {
		t.Fatal("deep nesting round trip failed")
	}
}

func TestRoundTripRandomizedPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := randomPolicy(rng)
		text := Print(p, nil)
		doc, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if !doc.Policy.Equal(p) {
			removed, added := p.Diff(doc.Policy)
			t.Fatalf("trial %d: round trip diff: missing %v extra %v", trial, removed, added)
		}
	}
}

// randomPolicy builds a random policy with users, roles, hierarchy, perms
// and nested admin privileges, including names needing quoting.
func randomPolicy(rng *rand.Rand) *policy.Policy {
	p := policy.New()
	nRoles := 3 + rng.Intn(5)
	roles := make([]string, nRoles)
	for i := range roles {
		roles[i] = "role" + string(rune('A'+i))
		if rng.Intn(5) == 0 {
			roles[i] = "odd name " + roles[i]
		}
		p.DeclareRole(roles[i])
	}
	users := []string{"u1", "u2", "strange \"user\""}
	for _, u := range users {
		p.Assign(u, roles[rng.Intn(nRoles)])
	}
	for i := 0; i < nRoles; i++ {
		for j := i + 1; j < nRoles; j++ {
			if rng.Intn(3) == 0 {
				p.AddInherit(roles[i], roles[j])
			}
		}
	}
	for i := 0; i < 4; i++ {
		q := model.Perm("act", "obj"+string(rune('0'+i)))
		if _, err := p.GrantPrivilege(roles[rng.Intn(nRoles)], q); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 3; i++ {
		var inner model.Privilege = model.Grant(model.User(users[rng.Intn(len(users))]), model.Role(roles[rng.Intn(nRoles)]))
		for k := 0; k < rng.Intn(3); k++ {
			inner = model.Grant(model.Role(roles[rng.Intn(nRoles)]), inner)
		}
		if _, err := p.GrantPrivilege(roles[rng.Intn(nRoles)], inner); err != nil {
			panic(err)
		}
	}
	return p
}
