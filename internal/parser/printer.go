package parser

import (
	"fmt"
	"sort"
	"strings"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// PrintDoc renders a full document — policy, command queue and expect
// checks — in canonical RPL. Parse(PrintDoc(doc)) reproduces the document.
func PrintDoc(doc *Document) string {
	out := Print(doc.Policy, doc.Queue)
	if len(doc.Checks) == 0 {
		return out
	}
	var b strings.Builder
	b.WriteString(out)
	for _, c := range doc.Checks {
		b.WriteString(formatCheck(c))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCheck(c Check) string {
	neg := ""
	if c.Negated {
		neg = "not "
	}
	switch c.Kind {
	case CheckReaches:
		return fmt.Sprintf("expect %sreaches %s %s", neg, quoteName(c.From.String()), formatVertex(c.To))
	case CheckWeaker:
		return fmt.Sprintf("expect %sweaker %s %s", neg, FormatPrivilege(c.Strong), FormatPrivilege(c.Weak))
	default:
		return "# unknown check"
	}
}

// Print renders a policy (and optional command queue) in canonical RPL:
// declarations first, then UA, RH and PA edges in deterministic order, then
// `do` statements. Parse(Print(p)) reproduces the policy exactly.
func Print(p *policy.Policy, queue command.Queue) string {
	var b strings.Builder
	users, roles := p.Users(), p.Roles()
	if len(users) > 0 {
		fmt.Fprintf(&b, "users %s\n", strings.Join(quoteAll(users), ", "))
	}
	if len(roles) > 0 {
		fmt.Fprintf(&b, "roles %s\n", strings.Join(quoteAll(roles), ", "))
	}
	if len(users) > 0 || len(roles) > 0 {
		b.WriteByte('\n')
	}
	for _, e := range p.EdgesOf(policy.EdgeUA) {
		fmt.Fprintf(&b, "assign %s %s\n", quoteName(e.From.String()), quoteName(e.To.String()))
	}
	for _, e := range p.EdgesOf(policy.EdgeRH) {
		fmt.Fprintf(&b, "inherit %s %s\n", quoteName(e.From.String()), quoteName(e.To.String()))
	}
	for _, e := range p.EdgesOf(policy.EdgePA) {
		fmt.Fprintf(&b, "grant %s %s\n", quoteName(e.From.String()), FormatPrivilege(e.To.(model.Privilege)))
	}
	for _, c := range queue {
		fmt.Fprintf(&b, "do %s %s %s %s\n",
			quoteName(c.Actor), c.Op, quoteName(c.From.String()), formatVertex(c.To))
	}
	return b.String()
}

// FormatPrivilege renders a privilege in RPL concrete syntax.
func FormatPrivilege(p model.Privilege) string {
	switch t := p.(type) {
	case model.UserPrivilege:
		return fmt.Sprintf("(%s, %s)", quoteName(t.Action), quoteName(t.Object))
	case model.AdminPrivilege:
		return fmt.Sprintf("%s(%s, %s)", t.Op, quoteName(t.Src.Name), formatVertex(t.Dst))
	default:
		return fmt.Sprintf("<%v>", p)
	}
}

func formatVertex(v model.Vertex) string {
	switch t := v.(type) {
	case model.Entity:
		return quoteName(t.Name)
	case model.Privilege:
		return FormatPrivilege(t)
	default:
		return fmt.Sprintf("<%v>", v)
	}
}

// quoteName quotes a name when it is not a plain identifier or collides with
// a keyword.
func quoteName(n string) string {
	if n == "" {
		return `""`
	}
	plain := true
	for i := 0; i < len(n); i++ {
		if !isIdentByte(n[i]) {
			// Quote anything beyond plain ASCII identifier bytes — including
			// multi-byte runes and stray high bytes — so printing and lexing
			// stay inverse regardless of encoding validity.
			plain = false
			break
		}
	}
	switch n {
	case "users", "roles", "assign", "inherit", "grant", "revoke", "do":
		plain = false
	}
	if plain {
		return n
	}
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(n); i++ {
		if n[i] == '"' || n[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(n[i])
	}
	b.WriteByte('"')
	return b.String()
}

func quoteAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = quoteName(n)
	}
	sort.Strings(out)
	return out
}
