// Package parser implements RPL ("RBAC policy language"), a small concrete
// syntax for the paper's administrative policies and command queues. The
// privilege grammar of Definition 2 needs a readable notation once
// privileges nest — RPL is that notation:
//
//	# declarations (either explicit or inferred from positions)
//	users diana, jane, alice
//	roles SO, HR, staff, nurse
//
//	# edges
//	assign diana nurse              # (diana, nurse) ∈ UA
//	inherit staff nurse             # (staff, nurse) ∈ RH, senior first
//	grant dbusr1 (read, t1)         # (dbusr1, (read,t1)) ∈ PA
//	grant HR grant(bob, staff)      # (HR, ¤(bob,staff)) ∈ PA†
//	grant HR revoke(joe, nurse)     # (HR, ♦(joe,nurse)) ∈ PA†
//	grant SO grant(staff, grant(bob, staff))   # nesting to any depth
//
//	# commands (Definition 4), executed in order by `rbacctl run`
//	do jane grant bob staff         # cmd(jane, ¤, bob, staff)
//	do jane revoke joe nurse        # cmd(jane, ♦, joe, nurse)
//
// Identifier kinds are resolved in two passes: every position that is
// unambiguously a user (assign source, do actor) or a role (assign target,
// inherit endpoints, grant statement subject, privilege destinations)
// declares its identifier; privilege sources then resolve against the
// declared sets, and must be unambiguous.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokLParen
	tokRParen
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return "token"
	}
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenises the input. Comments run from '#' to end of line. Identifiers
// may contain letters, digits, '_', '-', '.' and '·'. Double-quoted strings
// permit arbitrary names (with \" and \\ escapes).
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '(':
			toks = append(toks, token{tokLParen, "(", line, col})
			advance(1)
		case c == ')':
			toks = append(toks, token{tokRParen, ")", line, col})
			advance(1)
		case c == ',':
			toks = append(toks, token{tokComma, ",", line, col})
			advance(1)
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					b.WriteByte(src[i+1])
					advance(2)
					continue
				}
				if src[i] == '"' {
					advance(1)
					closed = true
					break
				}
				if src[i] == '\n' {
					return nil, errAt(startLine, startCol, "unterminated string")
				}
				b.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, errAt(startLine, startCol, "unterminated string")
			}
			toks = append(toks, token{tokString, b.String(), startLine, startCol})
		case isIdentByte(c):
			startLine, startCol := line, col
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] >= 0x80) {
				j++
			}
			text := src[i:j]
			advance(j - i)
			toks = append(toks, token{tokIdent, text, startLine, startCol})
		default:
			r := rune(c)
			if r > unicode.MaxASCII {
				// Multi-byte runes are allowed inside identifiers; treat the
				// whole UTF-8 sequence as identifier content.
				startLine, startCol := line, col
				j := i
				for j < len(src) && (src[j] >= 0x80 || isIdentByte(src[j])) {
					j++
				}
				text := src[i:j]
				advance(j - i)
				toks = append(toks, token{tokIdent, text, startLine, startCol})
				continue
			}
			return nil, errAt(line, col, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}
