package parser

import (
	"strings"
	"testing"
)

const checksRPL = figure2RPL + `
do jane grant bob staff

expect reaches bob staff
expect reaches bob (write, t3)
expect not reaches jane staff
expect weaker grant(bob, staff) grant(bob, dbusr2)
expect not weaker grant(bob, dbusr2) grant(bob, staff)
`

func TestParseChecks(t *testing.T) {
	doc, err := Parse(checksRPL)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Checks) != 5 {
		t.Fatalf("checks = %d", len(doc.Checks))
	}
	c0 := doc.Checks[0]
	if c0.Kind != CheckReaches || c0.Negated || c0.From.String() != "bob" || c0.To.String() != "staff" {
		t.Errorf("check 0 = %+v", c0)
	}
	if doc.Checks[1].To.Key() != "p:(write,t3)" {
		t.Errorf("check 1 target = %v", doc.Checks[1].To)
	}
	if !doc.Checks[2].Negated {
		t.Error("check 2 not negated")
	}
	c3 := doc.Checks[3]
	if c3.Kind != CheckWeaker || c3.Strong == nil || c3.Weak == nil {
		t.Errorf("check 3 = %+v", c3)
	}
	if !doc.Checks[4].Negated || doc.Checks[4].Kind != CheckWeaker {
		t.Errorf("check 4 = %+v", doc.Checks[4])
	}
	// Lines are recorded for diagnostics.
	if c0.Line == 0 {
		t.Error("check line missing")
	}
}

func TestCheckStrings(t *testing.T) {
	doc, err := Parse(checksRPL)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Checks[0].String(); got != "expect reaches bob staff" {
		t.Errorf("String = %q", got)
	}
	if got := doc.Checks[2].String(); got != "expect not reaches jane staff" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(doc.Checks[3].String(), "expect weaker grant(bob, staff)") {
		t.Errorf("String = %q", doc.Checks[3].String())
	}
}

func TestChecksRoundTrip(t *testing.T) {
	doc, err := Parse(checksRPL)
	if err != nil {
		t.Fatal(err)
	}
	text := PrintDoc(doc)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(doc2.Checks) != len(doc.Checks) {
		t.Fatalf("check round trip: %d -> %d", len(doc.Checks), len(doc2.Checks))
	}
	for i := range doc.Checks {
		if doc.Checks[i].String() != doc2.Checks[i].String() {
			t.Errorf("check %d changed: %v -> %v", i, doc.Checks[i], doc2.Checks[i])
		}
	}
	// PrintDoc without checks equals Print.
	plain, err := Parse(figure2RPL)
	if err != nil {
		t.Fatal(err)
	}
	if PrintDoc(plain) != Print(plain.Policy, plain.Queue) {
		t.Error("PrintDoc diverges from Print for check-less documents")
	}
}

func TestCheckParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad keyword", "users u\nroles r\nexpect frobs u r", "expected reaches or weaker"},
		{"undeclared operand", "users u\nroles r\nexpect reaches ghost r", "not declared"},
		{"undeclared target", "users u\nroles r\nexpect reaches u ghost", "not declared"},
		{"weaker needs privileges", "users u\nroles r\nexpect weaker u r", "expected a privilege"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q missing %q", err, c.want)
			}
		})
	}
}
