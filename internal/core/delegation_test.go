package core

import (
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// The paper's §5 positions the model against PBDM (Zhang, Oh & Sandhu,
// SACMAT 2003): "The PDBM model defines a cascaded delegation. This form of
// delegation is also expressible in our grammar (by nesting the ¤
// connective). In the PBDM model, however, each delegation requires the
// addition of a separate role ... In our model the administrative privileges
// are assigned to roles just like the ordinary privileges. It is not
// required to add any additional roles."
//
// This test realises a three-level cascade purely by nesting, with zero
// auxiliary roles: the CISO may give department heads the right to give team
// leads the right to appoint an operator.
func TestCascadedDelegationWithoutExtraRoles(t *testing.T) {
	p := policy.New()
	p.Assign("carol", "ciso")
	p.Assign("dave", "depthead")
	p.Assign("lea", "teamlead")
	p.DeclareUser("oscar")
	p.DeclareRole("operator")
	if _, err := p.GrantPrivilege("operator", model.Perm("op", "console")); err != nil {
		t.Fatal(err)
	}

	appoint := model.Grant(model.User("oscar"), model.Role("operator")) // ¤(oscar, operator)
	level2 := model.Grant(model.Role("teamlead"), appoint)              // ¤(teamlead, ¤(oscar, operator))
	level3 := model.Grant(model.Role("depthead"), level2)               // ¤(depthead, ¤(teamlead, ¤(oscar, operator)))
	if _, err := p.GrantPrivilege("ciso", level3); err != nil {
		t.Fatal(err)
	}
	rolesBefore := len(p.Roles())

	// Nobody below the CISO can act yet.
	strict := command.Strict{}
	appointCmd := command.Grant("lea", model.User("oscar"), model.Role("operator"))
	if _, ok := strict.Authorize(p, appointCmd); ok {
		t.Fatal("team lead could appoint before the cascade")
	}

	// The cascade unwinds one administrative step per level.
	steps := command.Queue{
		command.Grant("carol", model.Role("depthead"), level2), // CISO → dept head
		command.Grant("dave", model.Role("teamlead"), appoint), // dept head → team lead
		appointCmd, // team lead appoints oscar
	}
	for i, c := range steps {
		res := command.Step(p, c, strict)
		if res.Outcome != command.Applied {
			t.Fatalf("cascade step %d (%v) outcome = %v", i+1, c, res.Outcome)
		}
	}
	if !p.Reaches(model.User("oscar"), model.Perm("op", "console")) {
		t.Fatal("cascade did not reach the operator permission")
	}
	// The PBDM contrast: no auxiliary delegation roles were created.
	if got := len(p.Roles()); got != rolesBefore {
		t.Fatalf("cascade created %d extra roles", got-rolesBefore)
	}
	// Each step had to wait for the previous one: replaying out of order is
	// denied (footnote 5's order-sensitivity, unlike HRU collusion).
	p2 := policy.New()
	p2.Assign("carol", "ciso")
	p2.Assign("dave", "depthead")
	p2.Assign("lea", "teamlead")
	p2.DeclareRole("operator")
	if _, err := p2.GrantPrivilege("ciso", level3); err != nil {
		t.Fatal(err)
	}
	if res := command.Step(p2, steps[1], strict); res.Outcome != command.Denied {
		t.Fatalf("out-of-order cascade step outcome = %v", res.Outcome)
	}

	// And the ordering composes with the cascade: the CISO's nested
	// privilege dominates the variant that appoints oscar one level lower…
	p3 := p.Clone()
	p3.AddInherit("operator", "junior-operator")
	d := NewDecider(p3)
	weakAppoint := model.Grant(model.User("oscar"), model.Role("junior-operator"))
	weakL3 := model.Grant(model.Role("depthead"), model.Grant(model.Role("teamlead"), weakAppoint))
	if !d.Weaker(level3, weakL3) {
		t.Fatal("nested cascade privilege does not dominate its junior variant")
	}
}
