package core

import (
	"strings"
	"testing"

	"adminrefine/internal/model"
)

func TestWeakerRevocationRules(t *testing.T) {
	p := RevocationProbePolicy(0)
	d := NewDecider(p)
	u, mid, bot, top := model.User("u"), model.Role("mid"), model.Role("bot"), model.Role("top")

	strong := model.Revoke(u, mid)
	cases := []struct {
		rule RevocationRule
		weak model.AdminPrivilege
		want bool
	}{
		{RevSamePremises, model.Revoke(u, bot), true},  // u→u, mid→bot
		{RevSamePremises, model.Revoke(u, top), false}, // mid does not reach top
		{RevInverted, model.Revoke(u, top), true},      // u→u, top→mid... inverted: v4→v3 means top→mid ✓
		{RevInverted, model.Revoke(u, bot), false},     // bot does not reach mid
		{RevTargetDown, model.Revoke(u, bot), true},    // same source, mid→bot
		{RevSourceOnly, model.Revoke(u, bot), false},   // destination moved
		{RevSamePremises, strong, true},                // reflexivity
	}
	for _, c := range cases {
		if got := d.WeakerRevocation(c.rule, strong, c.weak); got != c.want {
			t.Errorf("%v: %v Ã %v = %v, want %v", c.rule, strong, c.weak, got, c.want)
		}
	}
	// Role-sourced strong privilege for RevSourceOnly.
	p2 := RevocationProbePolicy(1)
	d2 := NewDecider(p2)
	strong2 := model.Revoke(mid, bot)
	if !d2.WeakerRevocation(RevSourceOnly, strong2, model.Revoke(top, bot)) {
		t.Error("RevSourceOnly rejected top→mid source move")
	}
	// Grants never participate.
	if d.WeakerRevocation(RevSamePremises, strong, model.Revoke(u, mid)) != true {
		t.Error("reflexivity broken")
	}
	g := model.Grant(u, mid)
	if d.WeakerRevocation(RevSamePremises, g, model.Revoke(u, bot)) {
		t.Error("grant accepted by revocation rule")
	}
}

// TestRevocationOrderingExploration is the paper's §6 open problem run as a
// counterexample hunt: under the printed Definition 7 every natural
// candidate rule for ordering ♦ privileges is unsound (the weakened policy
// cannot track the original's revocations), while under the informal
// simulation reading every candidate is sound within the bounds (a policy
// that revokes differently can only do less). This is exactly why the paper
// ships with an equality-only revocation ordering.
func TestRevocationOrderingExploration(t *testing.T) {
	const trials = 2
	paper := ExploreRevocationOrdering(DirPaper, trials, 1, RevocationProbePolicy)
	if len(paper) != len(AllRevocationRules()) {
		t.Fatalf("findings = %d", len(paper))
	}
	for _, f := range paper {
		if f.Trials == 0 {
			t.Errorf("[paper] rule %v: no instances probed", f.Rule)
			continue
		}
		if f.Sound {
			t.Errorf("[paper] rule %v survived %d trials; expected a counterexample", f.Rule, f.Trials)
		}
		if !strings.Contains(f.Counterexample, "replace") {
			t.Errorf("[paper] rule %v: counterexample lacks detail: %q", f.Rule, f.Counterexample)
		}
	}

	sim := ExploreRevocationOrdering(DirSimulation, trials, 1, RevocationProbePolicy)
	for _, f := range sim {
		if f.Trials == 0 {
			t.Errorf("[simulation] rule %v: no instances probed", f.Rule)
			continue
		}
		if !f.Sound {
			t.Errorf("[simulation] rule %v falsified: %s", f.Rule, f.Counterexample)
		}
	}
}

func TestRevocationProbePolicyShape(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		p := RevocationProbePolicy(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !p.Reaches(model.User("u"), model.Perm("read", "doc")) {
			t.Fatalf("seed %d: member cannot read", seed)
		}
		revs := 0
		for _, pv := range p.PrivilegeVertices() {
			if a, ok := pv.(model.AdminPrivilege); ok && a.Op == model.OpRevoke {
				revs++
			}
		}
		if revs != 1 {
			t.Fatalf("seed %d: %d revocation privileges, want exactly 1", seed, revs)
		}
	}
}

func TestRevocationRuleStrings(t *testing.T) {
	for _, r := range AllRevocationRules() {
		if s := r.String(); s == "" || strings.HasPrefix(s, "RevocationRule(") {
			t.Errorf("rule %d has no name", r)
		}
	}
	if !strings.Contains(RevocationRule(99).String(), "RevocationRule(") {
		t.Error("unknown rule not diagnostic")
	}
}
