package core

import (
	"math/rand"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

func TestNonAdminRefinesExample3(t *testing.T) {
	base := policy.Figure1()

	// "By removing any of the edges in the policy one obtains a refinement."
	for _, e := range base.Edges() {
		psi := base.Clone()
		if _, err := psi.RemoveEdge(e.From, e.To); err != nil {
			t.Fatalf("removing %v: %v", e, err)
		}
		if !NonAdminRefines(base, psi) {
			t.Errorf("removing edge %v did not refine", e)
		}
	}

	// "If we replace the edge between Diana and staff with an edge between
	// Diana and nurse, then we have another refinement."
	psi := base.Clone()
	psi.Deassign(policy.UserDiana, policy.RoleStaff)
	psi.Assign(policy.UserDiana, policy.RoleNurse)
	if !NonAdminRefines(base, psi) {
		t.Error("rearranged Diana edge did not refine")
	}

	// "If we replace the edge between nurse and dbusr1 with an edge between
	// nurse and dbusr2, we do not obtain a refinement, as nurses get more
	// privileges."
	psi2 := base.Clone()
	psi2.RemoveInherit(policy.RoleNurse, policy.RoleDBUsr1)
	psi2.AddInherit(policy.RoleNurse, policy.RoleDBUsr2)
	if NonAdminRefines(base, psi2) {
		t.Error("nurse→dbusr2 rearrangement wrongly accepted as refinement")
	}
	vs := NonAdminViolations(base, psi2, 0)
	if len(vs) == 0 {
		t.Fatal("no violations reported")
	}
	// The witness must be the nurse (or someone who reaches her) gaining
	// write access to t3.
	foundNurse := false
	for _, v := range vs {
		if v.Perm.Key() != policy.PermWriteT3.Key() {
			t.Errorf("unexpected violation perm %v", v.Perm)
		}
		if v.Entity == model.Role(policy.RoleNurse) {
			foundNurse = true
		}
	}
	if !foundNurse {
		t.Errorf("violations %v do not include the nurse role", vs)
	}
}

func TestNonAdminRefinesReflexiveAndMutual(t *testing.T) {
	p := policy.Figure2()
	if !NonAdminRefines(p, p) {
		t.Fatal("refinement not reflexive")
	}
	if !MutuallyNonAdminRefine(p, p.Clone()) {
		t.Fatal("clone not mutually refining")
	}
	// Swapping an admin privilege for a weaker one leaves user privileges
	// untouched: both directions hold.
	psi, err := WeakenAssignment(p, Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !MutuallyNonAdminRefine(p, psi) {
		t.Fatal("admin-only weakening changed user privileges")
	}
}

func TestNonAdminRefinementTransitivityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		a := randomPolicy(rng, 3, 6, 5)
		b := a.Clone()
		// Remove a few random edges to get b with a ⊒ b.
		edges := b.Edges()
		for i := 0; i < 2 && len(edges) > 0; i++ {
			e := edges[rng.Intn(len(edges))]
			if _, err := b.RemoveEdge(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
		c := b.Clone()
		edges = c.Edges()
		for i := 0; i < 2 && len(edges) > 0; i++ {
			e := edges[rng.Intn(len(edges))]
			if _, err := c.RemoveEdge(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
		if !NonAdminRefines(a, b) || !NonAdminRefines(b, c) {
			t.Fatal("edge removal did not refine")
		}
		if !NonAdminRefines(a, c) {
			t.Fatal("refinement not transitive")
		}
	}
}

func TestWeakenAssignmentValidation(t *testing.T) {
	p := policy.Figure2()
	// Unknown assignment.
	if _, err := WeakenAssignment(p, Weakening{
		Role:   policy.RoleHR,
		Strong: model.Grant(model.User("ghost"), model.Role(policy.RoleStaff)),
		Weak:   policy.PrivHRAssignBobStaff,
	}); err == nil {
		t.Fatal("weakening of absent assignment accepted")
	}
	// Non-weaker replacement.
	if _, err := WeakenAssignment(p, Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleSO)),
	}); err == nil {
		t.Fatal("non-weaker replacement accepted")
	}
	// Valid weakening replaces the edge.
	weak := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleNurse))
	psi, err := WeakenAssignment(p, Weakening{
		Role: policy.RoleHR, Strong: policy.PrivHRAssignBobStaff, Weak: weak,
	})
	if err != nil {
		t.Fatal(err)
	}
	if psi.HasEdge(model.Role(policy.RoleHR), policy.PrivHRAssignBobStaff) {
		t.Fatal("strong assignment still present")
	}
	if !psi.HasEdge(model.Role(policy.RoleHR), weak) {
		t.Fatal("weak assignment missing")
	}
	if p.HasEdge(model.Role(policy.RoleHR), weak) {
		t.Fatal("input policy mutated")
	}
}

func TestRelevantCommands(t *testing.T) {
	p := policy.Figure2()
	cmds := RelevantCommands(p, nil, []string{policy.UserJane})
	if len(cmds) == 0 {
		t.Fatal("no relevant commands")
	}
	keys := map[string]bool{}
	for _, c := range cmds {
		if c.Actor != policy.UserJane {
			t.Errorf("unexpected actor %s", c.Actor)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("relevant command %v invalid: %v", c, err)
		}
		keys[c.Key()] = true
	}
	// The nested privilege's inner subterm must yield a command.
	inner := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	if !keys[inner.Key()] {
		t.Error("subterm command missing from alphabet")
	}
	// The nested privilege itself yields a delegation command.
	outer := command.Grant(policy.UserJane, model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	if !keys[outer.Key()] {
		t.Error("nested privilege command missing from alphabet")
	}
	// Default actors are the union of the policies' users.
	all := RelevantCommands(p, nil, nil)
	actors := map[string]bool{}
	for _, c := range all {
		actors[c.Actor] = true
	}
	for _, u := range p.Users() {
		if !actors[u] {
			t.Errorf("default actor set missing %s", u)
		}
	}
}

func TestBoundedAdminRefinesIdentity(t *testing.T) {
	p := policy.Figure2()
	alpha := RelevantCommands(p, nil, []string{policy.UserJane})
	for _, dir := range []Direction{DirPaper, DirSimulation} {
		res := BoundedAdminRefines(p, p.Clone(), BoundedAdminOptions{
			MaxLen: 2, Alphabet: alpha, Direction: dir,
		})
		if !res.Holds {
			t.Fatalf("identity not admin-refining (%v): %v", dir, res.Counterexample)
		}
		if res.Truncated {
			t.Fatalf("identity check truncated (%v)", dir)
		}
		if res.QueuesExplored < len(alpha) {
			t.Fatalf("explored only %d queues", res.QueuesExplored)
		}
	}
}

func TestBoundedAdminRefinesRejectsNonRefinement(t *testing.T) {
	// ψ grants nurses write access to t3: not even a non-administrative
	// refinement, so the empty queue is a counterexample.
	p := policy.Figure2()
	psi := p.Clone()
	if _, err := psi.GrantPrivilege(policy.RoleNurse, policy.PermWriteT3); err != nil {
		t.Fatal(err)
	}
	res := BoundedAdminRefines(p, psi, BoundedAdminOptions{MaxLen: 1,
		Alphabet: RelevantCommands(p, psi, []string{policy.UserJane})})
	if res.Holds {
		t.Fatal("non-refinement accepted")
	}
	if len(res.Counterexample.Queue) != 0 {
		t.Fatalf("counterexample should be the empty queue, got %v", res.Counterexample.Queue)
	}
	if len(res.Counterexample.Violations) == 0 {
		t.Fatal("counterexample lacks violations")
	}
}

func TestTheorem1BoundedFigure2(t *testing.T) {
	// Theorem 1 on the running example: replacing HR's ¤(bob,staff) by the
	// weaker ¤(bob,dbusr2) yields an administrative refinement. Checked
	// exhaustively for queues up to length 2 over Jane's and Alice's
	// relevant commands, in both Definition 7 readings.
	phi := policy.Figure2()
	w := Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)),
	}
	psi, err := WeakenAssignment(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	alpha := RelevantCommands(phi, psi, []string{policy.UserJane, policy.UserAlice})
	for _, dir := range []Direction{DirPaper, DirSimulation} {
		res := BoundedAdminRefines(phi, psi, BoundedAdminOptions{
			MaxLen: 2, Alphabet: alpha, Direction: dir, MaxStates: 2048,
		})
		if res.Truncated {
			t.Fatalf("truncated (%v); raise MaxStates", dir)
		}
		if !res.Holds {
			t.Fatalf("Theorem 1 weakening rejected (%v): %v", dir, res.Counterexample)
		}
	}
}

func TestRevocationAsymmetryUnderPrintedDefinition(t *testing.T) {
	// Dropping a revocation privilege is NOT an administrative refinement
	// under the printed Definition 7 (∀φ ∃ψ): when φ revokes joe from nurse,
	// ψ cannot follow, so ψ' keeps privileges φ' lost. Under the informal
	// simulation reading it IS a refinement (ψ can only do less). This
	// asymmetry is exactly why the paper's §6 calls a revocation ordering
	// future work; see EXPERIMENTS.md.
	phi := policy.Figure2()
	phi.Assign(policy.UserJoe, policy.RoleNurse)
	psi := phi.Clone()
	psi.RevokePrivilege(policy.RoleHR, policy.PrivHRRevokeJoeNurse)

	alpha := RelevantCommands(phi, psi, []string{policy.UserJane})
	resPaper := BoundedAdminRefines(phi, psi, BoundedAdminOptions{
		MaxLen: 1, Alphabet: alpha, Direction: DirPaper,
	})
	if resPaper.Holds {
		t.Fatal("printed Definition 7 accepted the dropped revocation privilege")
	}
	if resPaper.Truncated {
		t.Fatal("truncated")
	}
	// The counterexample must be Jane's revocation command.
	if len(resPaper.Counterexample.Queue) != 1 || resPaper.Counterexample.Queue[0].Op != model.OpRevoke {
		t.Fatalf("counterexample queue = %v", resPaper.Counterexample.Queue)
	}

	resSim := BoundedAdminRefines(phi, psi, BoundedAdminOptions{
		MaxLen: 1, Alphabet: alpha, Direction: DirSimulation,
	})
	if !resSim.Holds {
		t.Fatalf("simulation reading rejected the strictly-less-capable policy: %v", resSim.Counterexample)
	}
}

func TestSimulateWeakeningFigure2(t *testing.T) {
	phi := policy.Figure2()
	w := Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)),
	}
	queue := command.Queue{
		command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		command.Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		command.Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
	}
	phiF, psiF, steps, err := SimulateWeakening(phi, w, queue)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Step 1 exercises the replaced privilege: must be translated.
	if steps[0].Kind != "translate" {
		t.Errorf("step 1 kind = %s, want translate", steps[0].Kind)
	}
	if steps[0].PsiStep.Outcome != command.Applied {
		t.Errorf("translated command not applied: %v", steps[0].PsiStep.Outcome)
	}
	// Steps 2–3 are untouched by the weakening: mirrored.
	if steps[1].Kind != "mirror" || steps[2].Kind != "mirror" {
		t.Errorf("steps 2,3 kinds = %s,%s", steps[1].Kind, steps[2].Kind)
	}
	// The final states satisfy φ' º ψ' (Theorem 1's conclusion).
	if !NonAdminRefines(phiF, psiF) {
		t.Fatalf("simulation broke refinement: %v", NonAdminViolations(phiF, psiF, 5))
	}
	// ψ's run put Bob into dbusr2 instead of staff: least privilege applied
	// for him (Example 4's punchline).
	if !psiF.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)) {
		t.Error("ψ final state misses bob→dbusr2")
	}
	if psiF.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleStaff)) {
		t.Error("ψ final state has bob→staff")
	}
	// The response queue is same-length, same-actors.
	resp := ResponseQueue(steps)
	if len(resp) != len(queue) {
		t.Fatal("response queue length mismatch")
	}
	for i := range resp {
		if resp[i].Actor != queue[i].Actor {
			t.Errorf("actor mismatch at %d", i)
		}
	}
}

func TestSimulateWeakeningRandomized(t *testing.T) {
	// Theorem 1 validation at scale: random policies, random weakenings,
	// random φ-queues; the constructed response must always land in a
	// refining state.
	rng := rand.New(rand.NewSource(2024))
	trials, simulated := 0, 0
	for trial := 0; trial < 40; trial++ {
		phi := randomPolicy(rng, 3, 6, 4)
		d := NewDecider(phi)
		privs := phi.PrivilegeVertices()
		if len(privs) == 0 {
			continue
		}
		// Pick an admin assignment to weaken.
		var w *Weakening
		for _, pv := range privs {
			a, ok := pv.(model.AdminPrivilege)
			if !ok || a.Op != model.OpGrant {
				continue
			}
			ws := d.WeakerSet(pv, pv.Depth()+1)
			if len(ws) < 2 {
				continue
			}
			weakPick := ws[1+rng.Intn(len(ws)-1)]
			// Find a role assigned this privilege.
			for _, e := range phi.EdgesOf(policy.EdgePA) {
				if e.To.Key() == pv.Key() {
					w = &Weakening{Role: e.From.String(), Strong: pv, Weak: weakPick}
					break
				}
			}
			if w != nil {
				break
			}
		}
		if w == nil {
			continue
		}
		trials++
		psi, err := WeakenAssignment(phi, *w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		alpha := RelevantCommands(phi, psi, nil)
		if len(alpha) == 0 {
			continue
		}
		for qi := 0; qi < 5; qi++ {
			qlen := 1 + rng.Intn(4)
			queue := make(command.Queue, qlen)
			for i := range queue {
				queue[i] = alpha[rng.Intn(len(alpha))]
			}
			phiF, psiF, _, err := SimulateWeakening(phi, *w, queue)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			simulated++
			if !NonAdminRefines(phiF, psiF) {
				t.Fatalf("trial %d queue %v: Theorem 1 simulation violated refinement: %v",
					trial, queue, NonAdminViolations(phiF, psiF, 5))
			}
		}
	}
	if trials == 0 || simulated == 0 {
		t.Fatal("randomized Theorem 1 test exercised no instances")
	}
}

func TestNoopCommandIsAlwaysDenied(t *testing.T) {
	p := policy.Figure2()
	c := noopCommand(policy.UserAlice)
	if err := c.Validate(); err != nil {
		t.Fatalf("noop command ill-formed: %v", err)
	}
	res := command.Step(p.Clone(), c, command.Strict{})
	if res.Outcome != command.Denied {
		t.Fatalf("noop command outcome = %v, want denied", res.Outcome)
	}
}

func TestRefinedAuthorizerExample4(t *testing.T) {
	// The flexworker scenario end to end: strict denies Jane's direct
	// assignment of Bob to dbusr2, refined allows it, and the refined
	// outcome refines the strict outcome.
	p := policy.Figure2()
	direct := command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))

	if _, ok := (command.Strict{}).Authorize(p, direct); ok {
		t.Fatal("strict authorizer allowed the direct assignment")
	}
	ra := NewRefinedAuthorizer(p)
	just, ok := ra.Authorize(p, direct)
	if !ok {
		t.Fatal("refined authorizer denied the direct assignment")
	}
	if just.Key() != policy.PrivHRAssignBobStaff.Key() {
		t.Errorf("justification = %v", just)
	}

	// Refined accepts everything strict accepts (rule 1).
	for _, c := range RelevantCommands(p, nil, nil) {
		if _, sok := (command.Strict{}).Authorize(p, c); sok {
			if _, rok := ra.Authorize(p, c); !rok {
				t.Errorf("refined rejected strict-authorized %v", c)
			}
		}
	}

	// Execute both worlds; the refined outcome grants Bob strictly fewer
	// privileges than the strict-world alternative (staff membership).
	strictWorld := p.Clone()
	command.Step(strictWorld, command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)), command.Strict{})
	refinedWorld := p.Clone()
	res := command.Step(refinedWorld, direct, NewRefinedAuthorizer(refinedWorld))
	if res.Outcome != command.Applied {
		t.Fatalf("refined execution outcome = %v", res.Outcome)
	}
	if !NonAdminRefines(strictWorld, refinedWorld) {
		t.Fatal("refined outcome does not refine the strict outcome")
	}
	// And strictly fewer: bob cannot reach the nurse's medical privileges.
	if refinedWorld.Reaches(model.User(policy.UserBob), policy.PermPrntBlack) {
		t.Error("bob gained nurse privileges in the refined world")
	}
	if !refinedWorld.Reaches(model.User(policy.UserBob), policy.PermWriteT3) {
		t.Error("bob lacks the dbusr2 privilege he needs")
	}
}

func TestRefinedAuthorizerName(t *testing.T) {
	p := policy.Figure2()
	ra := NewRefinedAuthorizer(p)
	if ra.Name() != "refined" || (command.Strict{}).Name() != "strict" {
		t.Fatal("authorizer names wrong")
	}
	if ra.Decider() == nil {
		t.Fatal("decider not exposed")
	}
	// Authorize against a different policy object falls back gracefully.
	other := policy.Figure2()
	if _, ok := ra.Authorize(other, command.Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))); !ok {
		t.Fatal("cross-policy authorization failed")
	}
}

func TestTheorem1UnderRefinedAuthorizer(t *testing.T) {
	// Theorem 1 under the ordering-based regime of §4.1: with both runs
	// authorized by the refined check, the weakened policy must still track
	// the original. This holds because the ordering is transitive — every
	// command ψ's weaker privilege authorizes is also authorized by φ's
	// stronger one.
	phi := policy.Figure2()
	w := Weakening{
		Role:   policy.RoleHR,
		Strong: policy.PrivHRAssignBobStaff,
		Weak:   model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)),
	}
	psi, err := WeakenAssignment(phi, w)
	if err != nil {
		t.Fatal(err)
	}
	alpha := RelevantCommands(phi, psi, []string{policy.UserJane})
	for _, dir := range []Direction{DirPaper, DirSimulation} {
		res := BoundedAdminRefines(phi, psi, BoundedAdminOptions{
			MaxLen:     1,
			Alphabet:   alpha,
			Direction:  dir,
			Authorizer: NewRefinedAuthorizer(phi),
		})
		if res.Truncated {
			t.Fatalf("truncated (%v)", dir)
		}
		if !res.Holds {
			t.Fatalf("Theorem 1 fails under refined authorization (%v): %v", dir, res.Counterexample)
		}
	}
}
