package core

import (
	"math/rand"
	"testing"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// fig2 returns the Figure 2 policy and a decider for it.
func fig2(t *testing.T) (*policy.Policy, *Decider) {
	t.Helper()
	p := policy.Figure2()
	return p, NewDecider(p)
}

func TestExample5Positive(t *testing.T) {
	// Example 5, first query: ¤(bob,staff) Ãφ ¤(bob,dbusr2) — needs
	// bob →φ bob (reflexivity) and staff →φ dbusr2 (hierarchy).
	_, d := fig2(t)
	strong := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	weak := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	if !d.Weaker(strong, weak) {
		t.Fatal("¤(bob,staff) Ã ¤(bob,dbusr2) does not hold")
	}
	// It also holds in one step (rule 2).
	if !d.WeakerOneStep(strong, weak) {
		t.Fatal("one-step derivation missing")
	}
	// The converse must fail: dbusr2 does not reach staff.
	if d.Weaker(weak, strong) {
		t.Fatal("ordering is not antisymmetric here: converse held")
	}
}

func TestExample5Nested(t *testing.T) {
	// Example 5, second query:
	// ¤(staff,¤(bob,staff)) Ã ¤(staff,¤(bob,dbusr2)) by rule (3) then (2).
	_, d := fig2(t)
	strong := model.Grant(model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	weak := model.Grant(model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)))
	if !d.Weaker(strong, weak) {
		t.Fatal("nested ordering query failed")
	}
	dv, ok := d.Explain(strong, weak)
	if !ok {
		t.Fatal("no derivation produced")
	}
	if dv.Rule != RuleNest {
		t.Fatalf("outer rule = %v, want rule 3", dv.Rule)
	}
	if dv.Premise == nil || dv.Premise.Rule != RuleEdge {
		t.Fatalf("premise rule = %+v, want rule 2", dv.Premise)
	}
	if err := d.CheckDerivation(dv); err != nil {
		t.Fatalf("derivation does not check: %v", err)
	}
}

func TestExample5Negative(t *testing.T) {
	// Example 5, third query: after removing the staff → dbusr2 edge the
	// relation no longer holds.
	p, _ := fig2(t)
	p.RemoveInherit(policy.RoleStaff, policy.RoleDBUsr2)
	d := NewDecider(p)
	strong := model.Grant(model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	weak := model.Grant(model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2)))
	if d.Weaker(strong, weak) {
		t.Fatal("ordering held after removing staff→dbusr2")
	}
	if _, ok := d.Explain(strong, weak); ok {
		t.Fatal("derivation produced for non-relation")
	}
	// The flat query fails too.
	s2 := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	w2 := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	if d.Weaker(s2, w2) {
		t.Fatal("flat ordering held after removing staff→dbusr2")
	}
}

func TestDeciderInvalidatesOnMutation(t *testing.T) {
	p, d := fig2(t)
	strong := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	weak := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	if !d.Weaker(strong, weak) {
		t.Fatal("precondition failed")
	}
	p.RemoveInherit(policy.RoleStaff, policy.RoleDBUsr2)
	if d.Weaker(strong, weak) {
		t.Fatal("decider served stale result after policy mutation")
	}
	p.AddInherit(policy.RoleStaff, policy.RoleDBUsr2)
	if !d.Weaker(strong, weak) {
		t.Fatal("decider did not recover after edge restoration")
	}
}

func TestRevocationOrderedByEqualityOnly(t *testing.T) {
	_, d := fig2(t)
	rs := model.Revoke(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	rw := model.Revoke(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	if !d.Weaker(rs, rs) {
		t.Fatal("♦ not reflexive")
	}
	if d.Weaker(rs, rw) {
		t.Fatal("♦ privileges ordered beyond equality (paper leaves this to future work)")
	}
	// Mixed connectives never relate.
	gs := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	if d.Weaker(gs, rw) || d.Weaker(rs, gs) {
		t.Fatal("grant and revoke privileges related")
	}
}

func TestUserPrivilegeOrderedByEqualityOnly(t *testing.T) {
	_, d := fig2(t)
	q1 := policy.PermReadT1
	q2 := policy.PermReadT2
	if !d.Weaker(q1, q1) {
		t.Fatal("user privilege not reflexive")
	}
	if d.Weaker(q1, q2) {
		t.Fatal("distinct user privileges related")
	}
	// User privileges never relate to admin privileges (either direction).
	adm := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	if d.Weaker(q1, adm) || d.Weaker(adm, q1) {
		t.Fatal("user and admin privileges related")
	}
}

func TestHeldStrongerExample4(t *testing.T) {
	// Example 4: Jane holds ¤(bob,staff) through HR, so she is implicitly
	// authorized for the weaker ¤(bob,dbusr2).
	_, d := fig2(t)
	weak := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	h, ok := d.HeldStronger(policy.UserJane, weak)
	if !ok {
		t.Fatal("Jane has no stronger held privilege")
	}
	if h.Key() != policy.PrivHRAssignBobStaff.Key() {
		t.Errorf("justification = %v, want ¤(bob,staff)", h)
	}
	// Diana holds nothing administrative.
	if _, ok := d.HeldStronger(policy.UserDiana, weak); ok {
		t.Fatal("Diana implicitly authorized")
	}
	// All stronger held privileges for Alice include the HR one (inherited).
	all := d.StrongerHeldBy(policy.UserAlice, weak)
	found := false
	for _, h := range all {
		if h.Key() == policy.PrivHRAssignBobStaff.Key() {
			found = true
		}
	}
	if !found {
		t.Errorf("Alice's stronger-held set %v misses ¤(bob,staff)", all)
	}
}

// example6Policy builds the Example 6 policy: roles r1, r2 and the
// assignment (r2, ¤(r1,r2)) ∈ PA.
func example6Policy(t *testing.T) *policy.Policy {
	t.Helper()
	p := policy.New()
	p.DeclareRole("r1")
	p.DeclareRole("r2")
	if _, err := p.GrantPrivilege("r2", model.Grant(model.Role("r1"), model.Role("r2"))); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExample6InfiniteChain(t *testing.T) {
	p := example6Policy(t)
	d := NewDecider(p)
	r1, r2 := model.Role("r1"), model.Role("r2")
	p0 := model.Grant(r1, r2) // ¤(r1,r2)
	p1 := model.Grant(r1, p0) // ¤(r1,¤(r1,r2))
	p2 := model.Grant(r1, p1) // ¤(r1,¤(r1,¤(r1,r2)))
	p3 := model.Grant(r1, p2)

	// The paper's chain: each is weaker than the previous.
	if !d.Weaker(p0, p1) {
		t.Fatal("¤(r1,r2) Ã ¤(r1,¤(r1,r2)) failed (rule 2 via privilege vertex)")
	}
	if !d.Weaker(p1, p2) {
		t.Fatal("second chain step failed (rule 3)")
	}
	// Transitivity: the deep terms are weaker than the original.
	if !d.Weaker(p0, p2) {
		t.Fatal("transitive chain step failed")
	}
	if !d.Weaker(p0, p3) {
		t.Fatal("depth-4 transitive chain step failed")
	}

	// Regression for DESIGN.md D3: the literal one-step relation derives the
	// first two steps but NOT the transitive composite, demonstrating that
	// Definition 8 as printed is not closed under transitivity.
	if !d.WeakerOneStep(p0, p1) {
		t.Fatal("one-step missed the Example 6 hop")
	}
	if !d.WeakerOneStep(p1, p2) {
		t.Fatal("one-step missed the rule 3 step")
	}
	if d.WeakerOneStep(p0, p2) {
		t.Fatal("one-step relation is unexpectedly transitive; D3 analysis is stale")
	}

	// Derivation for the hop names the via vertex.
	dv, ok := d.Explain(p0, p1)
	if !ok {
		t.Fatal("no derivation for the hop")
	}
	if dv.Rule != RuleHop || dv.Via == nil || dv.Via.Key() != p0.Key() {
		t.Fatalf("hop derivation = %v", dv)
	}
	if err := d.CheckDerivation(dv); err != nil {
		t.Fatalf("hop derivation does not check: %v", err)
	}
}

func TestWeakerSetExample6Growth(t *testing.T) {
	p := example6Policy(t)
	d := NewDecider(p)
	r1, r2 := model.Role("r1"), model.Role("r2")
	p0 := model.Grant(r1, r2)

	// At every extra unit of depth budget the weaker set strictly grows —
	// the finite shadow of Example 6's infinitude.
	prev := 0
	for bound := 1; bound <= 5; bound++ {
		ws := d.WeakerSet(p0, bound)
		if len(ws) <= prev {
			t.Fatalf("weaker set did not grow at bound %d: %d -> %d", bound, prev, len(ws))
		}
		// Everything enumerated must satisfy the decision procedure.
		for _, w := range ws {
			if !d.Weaker(p0, w) {
				t.Fatalf("enumerated non-weaker privilege %v at bound %d", w, bound)
			}
			if w.Depth() > bound {
				t.Fatalf("enumerated privilege %v exceeds depth bound %d", w, bound)
			}
		}
		prev = len(ws)
	}

	// Remark 2: with an empty RH the default bound is the privilege's own
	// depth, cutting the chain to the redundant-free core.
	if got := DefaultNestBound(p, p0); got != 1 {
		t.Fatalf("DefaultNestBound = %d, want 1", got)
	}
	ws := d.WeakerSet(p0, DefaultNestBound(p, p0))
	if len(ws) != 1 || ws[0].Key() != p0.Key() {
		t.Fatalf("bounded weaker set = %v, want just the privilege itself", ws)
	}
}

func TestWeakerSetFigure2(t *testing.T) {
	p, d := fig2(t)
	strong := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	ws := d.WeakerSet(strong, 1)
	keys := map[string]bool{}
	for _, w := range ws {
		keys[w.Key()] = true
	}
	for _, role := range []string{policy.RoleStaff, policy.RoleNurse, policy.RoleDBUsr1, policy.RoleDBUsr2, policy.RolePrntUsr} {
		want := model.Grant(model.User(policy.UserBob), model.Role(role))
		if !keys[want.Key()] {
			t.Errorf("weaker set missing ¤(bob,%s)", role)
		}
	}
	if len(ws) != 5 {
		t.Errorf("weaker set size = %d, want 5: %v", len(ws), ws)
	}
	// Soundness against the decision procedure.
	for _, w := range ws {
		if !d.Weaker(strong, w) {
			t.Errorf("enumerated non-weaker %v", w)
		}
	}
	// Remark 2 default bound for this policy: depth 1 + longest chain 2 = 3.
	if got := DefaultNestBound(p, strong); got != 3 {
		t.Errorf("DefaultNestBound = %d, want 3", got)
	}
}

func TestWeakerSetCompletenessSmall(t *testing.T) {
	// Exhaustively cross-check enumeration against the decision procedure on
	// a small candidate space.
	p, d := fig2(t)
	strong := model.Grant(model.Role(policy.RoleStaff),
		model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff)))
	const bound = 2
	ws := map[string]bool{}
	for _, w := range d.WeakerSet(strong, bound) {
		ws[w.Key()] = true
	}
	// Candidate space: ¤(x, ¤(u, r)) and ¤(x, r) over the policy's entities.
	var cands []model.Privilege
	for _, rn := range p.Roles() {
		cands = append(cands, model.Grant(model.Role(policy.RoleStaff), model.Role(rn)))
		for _, rn2 := range p.Roles() {
			cands = append(cands,
				model.Grant(model.Role(rn), model.Grant(model.User(policy.UserBob), model.Role(rn2))))
		}
	}
	for _, c := range cands {
		got := d.Weaker(strong, c)
		if got != ws[c.Key()] {
			t.Errorf("decision/enumeration mismatch for %v: weaker=%v enumerated=%v", c, got, ws[c.Key()])
		}
	}
}

// randomPolicy builds a random layered policy for property tests.
func randomPolicy(rng *rand.Rand, nUsers, nRoles, nPerms int) *policy.Policy {
	p := policy.New()
	roles := make([]string, nRoles)
	for i := range roles {
		roles[i] = "role" + string(rune('A'+i))
		p.DeclareRole(roles[i])
	}
	users := make([]string, nUsers)
	for i := range users {
		users[i] = "user" + string(rune('a'+i))
		p.Assign(users[i], roles[rng.Intn(nRoles)])
	}
	// Downward random hierarchy edges (acyclic by index ordering).
	for i := 0; i < nRoles; i++ {
		for j := i + 1; j < nRoles; j++ {
			if rng.Intn(3) == 0 {
				p.AddInherit(roles[i], roles[j])
			}
		}
	}
	for i := 0; i < nPerms; i++ {
		q := model.Perm("act"+string(rune('0'+i)), "obj")
		if _, err := p.GrantPrivilege(roles[rng.Intn(nRoles)], q); err != nil {
			panic(err)
		}
	}
	// Random admin privileges, some nested.
	for i := 0; i < nRoles; i++ {
		src := model.User(users[rng.Intn(nUsers)])
		var inner model.Privilege = model.Grant(src, model.Role(roles[rng.Intn(nRoles)]))
		depth := rng.Intn(3)
		for k := 0; k < depth; k++ {
			inner = model.Grant(model.Role(roles[rng.Intn(nRoles)]), inner)
		}
		if _, err := p.GrantPrivilege(roles[rng.Intn(nRoles)], inner); err != nil {
			panic(err)
		}
	}
	return p
}

func TestOrderingIsPreorderRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p := randomPolicy(rng, 3, 6, 4)
		d := NewDecider(p)
		privs := p.PrivilegeVertices()
		// Extend the sample with weaker terms to exercise nesting.
		sample := append([]model.Privilege{}, privs...)
		for _, pv := range privs {
			ws := d.WeakerSet(pv, pv.Depth()+1)
			if len(ws) > 4 {
				ws = ws[:4]
			}
			sample = append(sample, ws...)
		}
		// Reflexivity.
		for _, a := range sample {
			if !d.Weaker(a, a) {
				t.Fatalf("trial %d: not reflexive on %v", trial, a)
			}
		}
		// Transitivity.
		for _, a := range sample {
			for _, b := range sample {
				if !d.Weaker(a, b) {
					continue
				}
				for _, c := range sample {
					if d.Weaker(b, c) && !d.Weaker(a, c) {
						t.Fatalf("trial %d: transitivity fails: %v Ã %v Ã %v", trial, a, b, c)
					}
				}
			}
		}
		// One-step is contained in the preorder.
		for _, a := range sample {
			for _, b := range sample {
				if d.WeakerOneStep(a, b) && !d.Weaker(a, b) {
					t.Fatalf("trial %d: one-step not contained: %v vs %v", trial, a, b)
				}
			}
		}
	}
}

func TestExplainAgreesWithWeakerRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		p := randomPolicy(rng, 3, 5, 3)
		d := NewDecider(p)
		privs := p.PrivilegeVertices()
		var sample []model.Privilege
		for _, pv := range privs {
			sample = append(sample, pv)
			ws := d.WeakerSet(pv, pv.Depth()+1)
			if len(ws) > 3 {
				ws = ws[:3]
			}
			sample = append(sample, ws...)
		}
		for _, a := range sample {
			for _, b := range sample {
				dv, ok := d.Explain(a, b)
				if ok != d.Weaker(a, b) {
					t.Fatalf("trial %d: Explain/Weaker disagree on %v, %v", trial, a, b)
				}
				if ok {
					if err := d.CheckDerivation(dv); err != nil {
						t.Fatalf("trial %d: derivation fails check: %v", trial, err)
					}
				}
			}
		}
	}
}

func TestCheckDerivationRejectsCorrupt(t *testing.T) {
	_, d := fig2(t)
	strong := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))
	weak := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	dv, ok := d.Explain(strong, weak)
	if !ok {
		t.Fatal("setup failed")
	}
	// Corrupt: claim reflexivity between distinct terms.
	bad := &Derivation{Rule: RuleRefl, Strong: strong, Weak: weak}
	if err := d.CheckDerivation(bad); err == nil {
		t.Fatal("corrupt reflexivity accepted")
	}
	// Corrupt: swap the direction of a rule 2 node.
	bad2 := &Derivation{Rule: RuleEdge, Strong: weak, Weak: strong}
	if err := d.CheckDerivation(bad2); err == nil {
		t.Fatal("reversed rule 2 node accepted")
	}
	// Corrupt: missing premise.
	bad3 := &Derivation{Rule: RuleNest, Strong: strong, Weak: weak}
	if err := d.CheckDerivation(bad3); err == nil {
		t.Fatal("premise-less rule 3 node accepted")
	}
	_ = dv
}

func TestWeakerNilSafety(t *testing.T) {
	_, d := fig2(t)
	if d.Weaker(nil, policy.PermReadT1) || d.Weaker(policy.PermReadT1, nil) || d.Weaker(nil, nil) {
		t.Fatal("nil privileges related")
	}
	if d.WeakerOneStep(nil, policy.PermReadT1) {
		t.Fatal("nil one-step related")
	}
	if got := d.WeakerSet(nil, 3); got != nil {
		t.Fatal("weaker set of nil nonempty")
	}
}
