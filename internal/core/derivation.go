package core

import (
	"fmt"
	"strings"

	"adminrefine/internal/model"
)

// Rule identifies which clause of Definition 8 (or which closure step) a
// derivation node uses.
type Rule uint8

const (
	// RuleRefl is rule (1): p Ãφ p.
	RuleRefl Rule = iota + 1
	// RuleEdge is rule (2): ¤(v2,v3) Ãφ ¤(v1,v4) with v1 →φ v2, v3 →φ v4.
	RuleEdge
	// RuleNest is rule (3): ¤(v2,p1) Ãφ ¤(v1,p2) with v1 →φ v2, p1 Ãφ p2.
	RuleNest
	// RuleHop is the Example 6 step: the destination vertex reaches a
	// privilege vertex P' of the policy graph, and P' Ãφ the destination
	// term (rule (2) into P† followed transitively by further derivation).
	RuleHop
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleRefl:
		return "rule 1 (reflexivity)"
	case RuleEdge:
		return "rule 2 (edge privilege)"
	case RuleNest:
		return "rule 3 (nested privilege)"
	case RuleHop:
		return "rule 2 via privilege vertex (Example 6 hop)"
	default:
		return fmt.Sprintf("Rule(%d)", uint8(r))
	}
}

// Derivation is a machine-checkable witness that Strong Ãφ Weak holds.
type Derivation struct {
	Rule   Rule
	Strong model.Privilege
	Weak   model.Privilege
	// Via is the privilege vertex P' used by a RuleHop step.
	Via model.Privilege
	// Premise is the sub-derivation for RuleNest (p1 Ãφ p2) and RuleHop
	// (P' Ãφ destination term).
	Premise *Derivation
}

// String renders the derivation tree, innermost premises indented.
func (d *Derivation) String() string {
	var b strings.Builder
	d.write(&b, 0)
	return b.String()
}

func (d *Derivation) write(b *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(b, "%s%s  Ã  %s   [%s]", pad, d.Strong, d.Weak, d.Rule)
	if d.Via != nil {
		fmt.Fprintf(b, " via %s", d.Via)
	}
	if d.Premise != nil {
		b.WriteByte('\n')
		d.Premise.write(b, indent+1)
	}
}

// Explain decides Strong Ãφ Weak and, when it holds, produces a derivation
// witness. The derivation mirrors the decision procedure of DESIGN.md D4, so
// checking it only needs reachability queries plus the sub-derivations.
func (d *Decider) Explain(strong, weak model.Privilege) (*Derivation, bool) {
	d.check()
	return d.explain(strong, weak)
}

func (d *Decider) explain(p, q model.Privilege) (*Derivation, bool) {
	if p == nil || q == nil {
		return nil, false
	}
	if p.Key() == q.Key() {
		return &Derivation{Rule: RuleRefl, Strong: p, Weak: q}, true
	}
	if !d.weaker(p, q) {
		return nil, false
	}
	qa := q.(model.AdminPrivilege)
	pa := p.(model.AdminPrivilege)
	switch yt := qa.Dst.(type) {
	case model.Entity:
		return &Derivation{Rule: RuleEdge, Strong: p, Weak: q}, true
	case model.Privilege:
		if bp, ok := pa.Dst.(model.Privilege); ok {
			prem, ok := d.explain(bp, yt)
			if !ok {
				return nil, false
			}
			return &Derivation{Rule: RuleNest, Strong: p, Weak: q, Premise: prem}, true
		}
		// Entity destination hopping through a privilege vertex.
		be := pa.Dst.(model.Entity)
		for _, pv := range d.privVerts {
			if d.reaches(be.Key(), pv.Key()) && d.weaker(pv, yt) {
				prem, ok := d.explain(pv, yt)
				if !ok {
					continue
				}
				return &Derivation{Rule: RuleHop, Strong: p, Weak: q, Via: pv, Premise: prem}, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

// CheckDerivation re-validates a derivation against the policy: every rule
// application is re-checked from its premises. It returns an error naming
// the first invalid node. Use it to audit explanations produced by Explain
// or supplied externally.
func (d *Decider) CheckDerivation(dv *Derivation) error {
	d.check()
	return d.checkDerivation(dv)
}

func (d *Decider) checkDerivation(dv *Derivation) error {
	if dv == nil {
		return fmt.Errorf("nil derivation")
	}
	switch dv.Rule {
	case RuleRefl:
		if !model.SamePrivilege(dv.Strong, dv.Weak) {
			return fmt.Errorf("reflexivity node relates distinct privileges %s and %s", dv.Strong, dv.Weak)
		}
		return nil
	case RuleEdge:
		pa, ok1 := dv.Strong.(model.AdminPrivilege)
		qa, ok2 := dv.Weak.(model.AdminPrivilege)
		if !ok1 || !ok2 || pa.Op != model.OpGrant || qa.Op != model.OpGrant {
			return fmt.Errorf("rule 2 node must relate two grant privileges")
		}
		if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
			return fmt.Errorf("rule 2 premise v1 →φ v2 fails: %s does not reach %s", qa.Src, pa.Src)
		}
		be, ok := pa.Dst.(model.Entity)
		ye, ok2 := qa.Dst.(model.Entity)
		if !ok || !ok2 {
			return fmt.Errorf("rule 2 node requires entity destinations")
		}
		if !d.reaches(be.Key(), ye.Key()) {
			return fmt.Errorf("rule 2 premise v3 →φ v4 fails: %s does not reach %s", be, ye)
		}
		return nil
	case RuleNest:
		pa, ok1 := dv.Strong.(model.AdminPrivilege)
		qa, ok2 := dv.Weak.(model.AdminPrivilege)
		if !ok1 || !ok2 || pa.Op != model.OpGrant || qa.Op != model.OpGrant {
			return fmt.Errorf("rule 3 node must relate two grant privileges")
		}
		if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
			return fmt.Errorf("rule 3 premise v1 →φ v2 fails: %s does not reach %s", qa.Src, pa.Src)
		}
		bp, ok := pa.Dst.(model.Privilege)
		yp, ok2 := qa.Dst.(model.Privilege)
		if !ok || !ok2 {
			return fmt.Errorf("rule 3 node requires privilege destinations")
		}
		if dv.Premise == nil {
			return fmt.Errorf("rule 3 node missing premise")
		}
		if !model.SamePrivilege(dv.Premise.Strong, bp) || !model.SamePrivilege(dv.Premise.Weak, yp) {
			return fmt.Errorf("rule 3 premise relates wrong terms")
		}
		return d.checkDerivation(dv.Premise)
	case RuleHop:
		pa, ok1 := dv.Strong.(model.AdminPrivilege)
		qa, ok2 := dv.Weak.(model.AdminPrivilege)
		if !ok1 || !ok2 || pa.Op != model.OpGrant || qa.Op != model.OpGrant {
			return fmt.Errorf("hop node must relate two grant privileges")
		}
		if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
			return fmt.Errorf("hop premise v1 →φ v2 fails: %s does not reach %s", qa.Src, pa.Src)
		}
		be, ok := pa.Dst.(model.Entity)
		if !ok {
			return fmt.Errorf("hop node requires an entity destination on the strong side")
		}
		if dv.Via == nil {
			return fmt.Errorf("hop node missing via vertex")
		}
		if !d.reaches(be.Key(), dv.Via.Key()) {
			return fmt.Errorf("hop premise v3 →φ P' fails: %s does not reach %s", be, dv.Via)
		}
		yp, ok := qa.Dst.(model.Privilege)
		if !ok {
			return fmt.Errorf("hop node requires a privilege destination on the weak side")
		}
		if dv.Premise == nil {
			return fmt.Errorf("hop node missing premise")
		}
		if !model.SamePrivilege(dv.Premise.Strong, dv.Via) || !model.SamePrivilege(dv.Premise.Weak, yp) {
			return fmt.Errorf("hop premise relates wrong terms")
		}
		return d.checkDerivation(dv.Premise)
	default:
		return fmt.Errorf("unknown rule %v", dv.Rule)
	}
}
