package core

import (
	"fmt"
	"sort"
	"strings"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Violation is one witness against non-administrative refinement: the
// entity v reaches user privilege p in the candidate refinement but not in
// the original policy.
type Violation struct {
	Entity model.Entity
	Perm   model.UserPrivilege
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s %s gains %s", v.Entity.Kind, v.Entity, v.Perm)
}

// NonAdminRefines decides Definition 6: ψ is a non-administrative refinement
// of φ (φ º ψ) iff for every v ∈ U ∪ R and every user privilege p ∈ P,
// v →ψ p implies v →φ p. Administrative privileges do not participate:
// Definition 6 quantifies over user privileges only.
func NonAdminRefines(phi, psi *policy.Policy) bool {
	return len(NonAdminViolations(phi, psi, 1)) == 0
}

// NonAdminViolations returns up to max witnesses against φ º ψ (all of them
// when max <= 0), deterministically ordered.
func NonAdminViolations(phi, psi *policy.Policy, max int) []Violation {
	var out []Violation
	// Only entities of ψ can gain anything; entities absent from ψ's graph
	// reach no privilege in ψ.
	ents := make([]model.Entity, 0, 16)
	for _, u := range psi.Users() {
		ents = append(ents, model.User(u))
	}
	for _, r := range psi.Roles() {
		ents = append(ents, model.Role(r))
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Key() < ents[j].Key() })
	for _, v := range ents {
		for _, q := range psi.AuthorizedPerms(v) {
			if !phi.Reaches(v, q) {
				out = append(out, Violation{Entity: v, Perm: q})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// MutuallyNonAdminRefine reports φ º ψ and ψ º φ: the two policies grant
// exactly the same user privileges.
func MutuallyNonAdminRefine(phi, psi *policy.Policy) bool {
	return NonAdminRefines(phi, psi) && NonAdminRefines(psi, phi)
}

// RelevantCommands builds a finite command alphabet for bounded analyses of
// Definition 7: for every administrative privilege term occurring in either
// policy (as a PA† vertex) and every subterm of it, and for every actor, the
// command exercising that (sub)term. The alphabet is deduplicated and
// deterministically ordered. If actors is empty, the union of the policies'
// users is taken.
func RelevantCommands(phi, psi *policy.Policy, actors []string) []command.Command {
	if len(actors) == 0 {
		seen := map[string]struct{}{}
		for _, p := range []*policy.Policy{phi, psi} {
			if p == nil {
				continue
			}
			for _, u := range p.Users() {
				seen[u] = struct{}{}
			}
		}
		for u := range seen {
			actors = append(actors, u)
		}
		sort.Strings(actors)
	}
	type edge struct {
		op       model.Op
		from, to model.Vertex
	}
	edges := map[string]edge{}
	addTerm := func(t model.Privilege) {
		for _, sub := range model.Subterms(t) {
			a, ok := sub.(model.AdminPrivilege)
			if !ok {
				continue
			}
			e := edge{op: a.Op, from: a.Src, to: a.Dst}
			edges[a.Key()] = e
		}
	}
	for _, p := range []*policy.Policy{phi, psi} {
		if p == nil {
			continue
		}
		for _, pv := range p.PrivilegeVertices() {
			addTerm(pv)
		}
	}
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []command.Command
	for _, actor := range actors {
		for _, k := range keys {
			e := edges[k]
			out = append(out, command.Command{Actor: actor, Op: e.op, From: e.from, To: e.to})
		}
	}
	return out
}

// noopCommand returns a well-formed command for the actor that is denied in
// any policy built from the fixed universes: it exercises an edge whose
// privilege mentions vertices no policy assigns anything to. Issuing it is
// the "do nothing" response available to the refining policy in Definition 7
// (the third case of Definition 5 consumes it without effect).
func noopCommand(actor string) command.Command {
	return command.Grant(actor,
		model.User("·noop-user·"), model.Role("·noop-role·"))
}

// AdminCounterexample reports a φ-run that the candidate refinement ψ could
// not answer within the search bounds.
type AdminCounterexample struct {
	Queue      command.Queue
	FinalPhi   *policy.Policy
	Violations []Violation // against the closest ψ-final state found
}

// String summarises the counterexample.
func (c *AdminCounterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queue %s leaves no refining response", c.Queue)
	for _, v := range c.Violations {
		fmt.Fprintf(&b, "; %s", v)
	}
	return b.String()
}

// Direction selects which reading of Definition 7 a bounded check uses.
// The printed definition quantifies over runs of φ and asks ψ to respond
// ("for any queue cq there is cq' ... 〈cq,φ〉⇒*〈ε,φ'〉, 〈cq',ψ〉⇒*〈ε,ψ'〉,
// φ' º ψ'"), while the paper's informal gloss — "if ψ allows a certain
// policy change then either the same policy change is also allowed by φ, or
// it results in a safer policy" — quantifies over runs of ψ and asks φ to
// respond. The constructive pairing in Theorem 1's proof validates both
// readings (see DESIGN.md D5), so the checker supports both.
type Direction uint8

const (
	// DirPaper is the printed Definition 7: ∀ φ-run ∃ ψ-response with
	// φ' º ψ'.
	DirPaper Direction = iota
	// DirSimulation is the informal reading: ∀ ψ-run ∃ φ-response with
	// φ' º ψ'.
	DirSimulation
)

// String names the direction.
func (d Direction) String() string {
	if d == DirSimulation {
		return "simulation (∀ψ ∃φ)"
	}
	return "paper (∀φ ∃ψ)"
}

// BoundedAdminOptions configures BoundedAdminRefines.
type BoundedAdminOptions struct {
	// MaxLen bounds the length of leader command queues explored (default 2).
	MaxLen int
	// Alphabet is the leader command alphabet; when nil, RelevantCommands of
	// the two policies is used.
	Alphabet []command.Command
	// ResponseAlphabet is the responder alphabet; when nil, the leader
	// alphabet is reused. The responder may always answer with a no-op.
	ResponseAlphabet []command.Command
	// MaxStates caps the responder reachable-state frontier per step (safety
	// valve against exponential blow-up; 0 means 4096). When the cap fires
	// the result records Truncated and a counterexample is only advisory.
	MaxStates int
	// Direction selects the Definition 7 reading (default DirPaper).
	Direction Direction
	// Authorizer decides command authorization in both runs; nil means the
	// literal Definition 5 (command.Strict). Pass a RefinedAuthorizer to ask
	// whether refinement survives the ordering-based regime of §4.1.
	Authorizer command.Authorizer
}

func (o *BoundedAdminOptions) defaults(phi, psi *policy.Policy) {
	if o.MaxLen == 0 {
		o.MaxLen = 2
	}
	if o.Alphabet == nil {
		o.Alphabet = RelevantCommands(phi, psi, nil)
	}
	if o.ResponseAlphabet == nil {
		o.ResponseAlphabet = o.Alphabet
	}
	if o.MaxStates == 0 {
		o.MaxStates = 4096
	}
}

// AdminResult is the outcome of a bounded Definition 7 check.
type AdminResult struct {
	// Holds reports whether every explored leader run had a refining
	// response.
	Holds bool
	// Counterexample is the offending leader run when Holds is false.
	Counterexample *AdminCounterexample
	// Truncated reports whether the responder frontier hit MaxStates at any
	// point; if so, a negative result may be spurious.
	Truncated bool
	// QueuesExplored counts the leader queues (including the empty one).
	QueuesExplored int
}

// BoundedAdminRefines checks Definition 7 (φ º† ψ) exhaustively over all
// leader command queues up to MaxLen drawn from the alphabet. Under
// DirPaper the leader is φ and for each run 〈cq, φ〉⇒*〈ε, φ'〉 a response
// queue cq' with matching actors per position must reach some ψ' with
// φ' º ψ'; under DirSimulation the roles swap (ψ leads, φ responds), with
// the same final condition φ' º ψ'.
//
// A positive answer is evidence up to the bounds (Definition 7 quantifies
// over unboundedly many queues); a counterexample is a genuine refutation
// for the definition restricted to the alphabet unless Truncated is set,
// since the response search is exhaustive over the response alphabet plus
// no-ops. Both policies are treated as immutable; all runs use clones.
func BoundedAdminRefines(phi, psi *policy.Policy, opts BoundedAdminOptions) AdminResult {
	opts.defaults(phi, psi)
	result := AdminResult{Holds: true}
	if !NonAdminRefines(phi, psi) {
		// cq = cq' = ε must already work (paper: º† implies º).
		result.Holds = false
		result.QueuesExplored = 1
		result.Counterexample = &AdminCounterexample{
			Queue:      nil,
			FinalPhi:   phi.Clone(),
			Violations: NonAdminViolations(phi, psi, 3),
		}
		return result
	}

	// refines checks φ' º ψ' with the leader/follower states mapped per
	// direction.
	leader, follower := phi, psi
	refines := func(leaderSt, followerSt *policy.Policy) bool {
		return NonAdminRefines(leaderSt, followerSt)
	}
	violations := func(leaderSt, followerSt *policy.Policy) []Violation {
		return NonAdminViolations(leaderSt, followerSt, 3)
	}
	if opts.Direction == DirSimulation {
		leader, follower = psi, phi
		refines = func(leaderSt, followerSt *policy.Policy) bool {
			return NonAdminRefines(followerSt, leaderSt)
		}
		violations = func(leaderSt, followerSt *policy.Policy) []Violation {
			return NonAdminViolations(followerSt, leaderSt, 3)
		}
	}

	type state struct {
		pol *policy.Policy
		key string
	}
	hash := func(p *policy.Policy) string {
		data, err := p.MarshalJSON()
		if err != nil {
			return fmt.Sprintf("err:%v", err)
		}
		return string(data)
	}
	var auth command.Authorizer = command.Strict{}
	if opts.Authorizer != nil {
		auth = opts.Authorizer
	}

	var rec func(prefix command.Queue, leaderCur *policy.Policy, frontier []state) *AdminCounterexample
	rec = func(prefix command.Queue, leaderCur *policy.Policy, frontier []state) *AdminCounterexample {
		result.QueuesExplored++
		// Check the current (possibly empty) queue: some follower state must
		// satisfy the refinement condition.
		ok := false
		for _, st := range frontier {
			if refines(leaderCur, st.pol) {
				ok = true
				break
			}
		}
		if !ok {
			ce := &AdminCounterexample{Queue: append(command.Queue(nil), prefix...), FinalPhi: leaderCur.Clone()}
			if len(frontier) > 0 {
				ce.Violations = violations(leaderCur, frontier[0].pol)
			}
			return ce
		}
		if len(prefix) >= opts.MaxLen {
			return nil
		}
		for _, c := range opts.Alphabet {
			leaderNext := leaderCur.Clone()
			command.Step(leaderNext, c, auth)
			// Advance the follower frontier with every same-actor response,
			// including the no-op (a denied command leaves the state put).
			nextSeen := map[string]*policy.Policy{}
			addState := func(p *policy.Policy) {
				k := hash(p)
				if _, dup := nextSeen[k]; !dup {
					nextSeen[k] = p
				}
			}
			for _, st := range frontier {
				addState(st.pol)
				for _, rc := range opts.ResponseAlphabet {
					if rc.Actor != c.Actor {
						continue
					}
					cl := st.pol.Clone()
					res := command.Step(cl, rc, auth)
					if res.Outcome == command.Applied {
						addState(cl)
					}
				}
			}
			next := make([]state, 0, len(nextSeen))
			for k, p := range nextSeen {
				if len(next) >= opts.MaxStates {
					result.Truncated = true
					break
				}
				next = append(next, state{pol: p, key: k})
			}
			sort.Slice(next, func(i, j int) bool { return next[i].key < next[j].key })
			if ce := rec(append(prefix, c), leaderNext, next); ce != nil {
				return ce
			}
		}
		return nil
	}

	initial := []state{{pol: follower.Clone(), key: hash(follower)}}
	if ce := rec(nil, leader.Clone(), initial); ce != nil {
		result.Holds = false
		result.Counterexample = ce
	}
	return result
}
