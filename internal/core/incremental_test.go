package core

import (
	"fmt"
	"math/rand"
	"testing"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// TestIncrementalDeciderEquivalence churns a policy through random grant,
// revoke, assign and deassign mutations and checks after every step that a
// long-lived incremental Decider answers exactly like a freshly built one
// (and like a long-lived rebuild-everything Decider).
func TestIncrementalDeciderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := policy.Figure2()
	inc := NewDecider(p)
	reb := NewDecider(p)
	reb.SetIncremental(false)

	roles := p.Roles()
	users := p.Users()
	queries := buildQueryPairs(p)

	for step := 0; step < 120; step++ {
		switch rng.Intn(5) {
		case 0:
			p.Assign(users[rng.Intn(len(users))], roles[rng.Intn(len(roles))])
		case 1:
			p.Deassign(users[rng.Intn(len(users))], roles[rng.Intn(len(roles))])
		case 2:
			p.AddInherit(roles[rng.Intn(len(roles))], roles[rng.Intn(len(roles))])
		case 3:
			p.RemoveInherit(roles[rng.Intn(len(roles))], roles[rng.Intn(len(roles))])
		case 4:
			priv := model.Grant(model.User(users[rng.Intn(len(users))]), model.Role(roles[rng.Intn(len(roles))]))
			if rng.Intn(2) == 0 {
				p.GrantPrivilege(roles[rng.Intn(len(roles))], priv)
			} else {
				p.RevokePrivilege(roles[rng.Intn(len(roles))], priv)
			}
		}
		fresh := NewDecider(p)
		for qi, q := range queries {
			want := fresh.Weaker(q[0], q[1])
			if got := inc.Weaker(q[0], q[1]); got != want {
				t.Fatalf("step %d query %d: incremental = %v, fresh = %v (%s Ã %s)", step, qi, got, want, q[0], q[1])
			}
			if got := reb.Weaker(q[0], q[1]); got != want {
				t.Fatalf("step %d query %d: rebuild = %v, fresh = %v", step, qi, got, want)
			}
		}
		for _, u := range users {
			probe := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
			_, wantOK := fresh.HeldStronger(u, probe)
			if _, gotOK := inc.HeldStronger(u, probe); gotOK != wantOK {
				t.Fatalf("step %d: HeldStronger(%s) incremental = %v, fresh = %v", step, u, gotOK, wantOK)
			}
			if fresh.Holds(u, probe) != inc.Holds(u, probe) {
				t.Fatalf("step %d: Holds(%s) diverged", step, u)
			}
		}
	}
}

func buildQueryPairs(p *policy.Policy) [][2]model.Privilege {
	var privs []model.Privilege
	for _, r := range p.Roles() {
		privs = append(privs, model.Grant(model.User(policy.UserBob), model.Role(r)))
		privs = append(privs, model.Grant(model.Role(policy.RoleStaff), model.Grant(model.User(policy.UserBob), model.Role(r))))
	}
	privs = append(privs,
		model.Revoke(model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		model.Grant(model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
	)
	var out [][2]model.Privilege
	for i := range privs {
		for j := range privs {
			if i != j && len(out) < 200 {
				out = append(out, [2]model.Privilege{privs[i], privs[j]})
			}
		}
	}
	return out
}

// TestIncrementalDeciderNewVertices exercises the lazy vertex-id resolution:
// a term interned before its entities exist in the graph must start working
// once the entities are granted into the policy.
func TestIncrementalDeciderNewVertices(t *testing.T) {
	p := policy.New()
	p.AddInherit("top", "bot")
	d := NewDecider(p)

	strong := model.Grant(model.User("newbie"), model.Role("top"))
	weak := model.Grant(model.User("newbie"), model.Role("bot"))
	// newbie is not a vertex yet: only reflexivity applies.
	if !d.Weaker(strong, strong) {
		t.Fatal("reflexivity failed for unknown vertices")
	}
	if !d.Weaker(strong, weak) {
		t.Fatal("src-equal terms with unknown src should still order via dst reachability")
	}
	// Granting a privilege mentioning newbie interns the vertex; cached
	// unresolved ids must re-resolve.
	if _, err := p.GrantPrivilege("top", strong); err != nil {
		t.Fatal(err)
	}
	p.Assign("newbie", "top")
	if _, ok := d.HeldStronger("newbie", weak); !ok {
		t.Fatal("newbie holds grant(newbie,top) which should dominate grant(newbie,bot)")
	}
}

// TestIncrementalManyMutations stresses the mutation-log window: more
// mutations than the log retains must still produce correct answers.
func TestIncrementalManyMutations(t *testing.T) {
	p := policy.New()
	p.AddInherit("r0", "r1")
	d := NewDecider(p)
	for i := 0; i < 10000; i++ {
		p.Assign(fmt.Sprintf("u%d", i%50), "r0")
		p.Deassign(fmt.Sprintf("u%d", i%50), "r0")
	}
	p.Assign("u7", "r0")
	if _, err := p.GrantPrivilege("r1", model.Perm("read", "x")); err != nil {
		t.Fatal(err)
	}
	if !d.Holds("u7", model.Perm("read", "x")) {
		t.Fatal("reachability lost after log-window churn")
	}
}
