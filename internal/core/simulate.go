package core

import (
	"fmt"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Weakening describes one application of Theorem 1: the privilege assignment
// (Role, Strong) ∈ PA† of φ is replaced by (Role, Weak), where
// Strong Ãφ Weak, producing ψ = (φ \ (r,p)) ∪ (r,q).
type Weakening struct {
	Role   string
	Strong model.Privilege
	Weak   model.Privilege
}

// String renders the weakening.
func (w Weakening) String() string {
	return fmt.Sprintf("replace (%s, %s) by (%s, %s)", w.Role, w.Strong, w.Role, w.Weak)
}

// WeakenAssignment builds ψ from φ per Theorem 1. It verifies that the
// assignment exists and that Strong Ãφ Weak holds, returning an error
// otherwise. φ is not mutated.
func WeakenAssignment(phi *policy.Policy, w Weakening) (*policy.Policy, error) {
	role := model.Role(w.Role)
	if !phi.HasEdge(role, w.Strong) {
		return nil, fmt.Errorf("weaken: policy has no assignment (%s, %s)", w.Role, w.Strong)
	}
	if !Weaker(phi, w.Strong, w.Weak) {
		return nil, fmt.Errorf("weaken: %s is not weaker than %s in the policy", w.Weak, w.Strong)
	}
	psi := phi.Clone()
	psi.RevokePrivilege(w.Role, w.Strong)
	if _, err := psi.GrantPrivilege(w.Role, w.Weak); err != nil {
		return nil, fmt.Errorf("weaken: granting weak privilege: %w", err)
	}
	return psi, nil
}

// SimulationStep records how the simulator answered one φ-command.
type SimulationStep struct {
	PhiCmd  command.Command
	PsiCmd  command.Command
	Kind    string // "mirror", "translate", "noop"
	PhiStep command.StepResult
	PsiStep command.StepResult
}

// SimulateWeakening plays the constructive strategy from the proof of
// Theorem 1: it executes the φ-queue on φ and produces, command by command,
// a same-actor response queue for ψ:
//
//   - a φ-command that ψ authorizes as-is is mirrored (it did not depend on
//     the replaced privilege);
//   - a φ-command authorized exactly by the replaced privilege p = a(v2,v3)
//     is answered by the weaker command a(v1,v4) drawn from q (the proof's
//     case 2/3 response);
//   - anything else is answered by a denied no-op command, keeping ψ
//     strictly safer.
//
// It returns the final policies, the per-step log, and the response queue.
// Neither input policy is mutated.
func SimulateWeakening(phi *policy.Policy, w Weakening, queue command.Queue) (phiFinal, psiFinal *policy.Policy, steps []SimulationStep, err error) {
	psi0, err := WeakenAssignment(phi, w)
	if err != nil {
		return nil, nil, nil, err
	}
	phiCur, psiCur := phi.Clone(), psi0.Clone()
	strict := command.Strict{}
	strongKey := w.Strong.Key()

	for _, c := range queue {
		st := SimulationStep{PhiCmd: c}
		// Advance φ first (its run is the universally quantified one).
		phiAuthorized := false
		if c.Validate() == nil {
			_, phiAuthorized = strict.Authorize(phiCur, c)
		}
		st.PhiStep = command.Step(phiCur, c, strict)

		// Choose ψ's answer.
		var resp command.Command
		switch {
		case c.Validate() != nil:
			// Ill-formed commands are consumed without effect everywhere;
			// mirroring keeps the actor sequence aligned.
			resp, st.Kind = c, "mirror"
		default:
			if _, ok := strict.Authorize(psiCur, c); ok {
				resp, st.Kind = c, "mirror"
			} else if phiAuthorized {
				target, _ := c.Privilege()
				if target.Key() == strongKey {
					// The command exercised exactly the replaced privilege:
					// answer with the weaker command from q.
					if qa, ok := w.Weak.(model.AdminPrivilege); ok {
						resp = command.Command{Actor: c.Actor, Op: qa.Op, From: qa.Src, To: qa.Dst}
						st.Kind = "translate"
					} else {
						// p Ãφ q with q a user privilege forces p = q, so
						// this branch cannot fire for a valid Weakening;
						// answer safely anyway.
						resp, st.Kind = noopCommand(c.Actor), "noop"
					}
				} else {
					// Authorized in φ through state divergence: ψ declines.
					resp, st.Kind = noopCommand(c.Actor), "noop"
				}
			} else {
				// Denied in φ; ψ declines too.
				resp, st.Kind = noopCommand(c.Actor), "noop"
			}
		}
		st.PsiCmd = resp
		st.PsiStep = command.Step(psiCur, resp, strict)
		steps = append(steps, st)
	}
	return phiCur, psiCur, steps, nil
}

// ResponseQueue extracts the ψ-side queue from a simulation log.
func ResponseQueue(steps []SimulationStep) command.Queue {
	q := make(command.Queue, len(steps))
	for i, s := range steps {
		q[i] = s.PsiCmd
	}
	return q
}
