package core

import (
	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// RefinedAuthorizer implements the paper's practical proposal (§4.1,
// Example 4): a command cmd(u, a, v, v') is authorized when u holds any
// privilege h with h Ãφ a(v, v'). By rule (1) every privilege is at least as
// strong as itself, so the refined authorizer accepts a strict superset of
// the commands Definition 5 accepts, and by Theorem 1 every extra command it
// accepts leads to a policy that an allowed strict command refines.
//
// RefinedAuthorizer satisfies command.Authorizer. It owns a Decider and may
// be reused across policy mutations (the Decider self-invalidates), but is
// not safe for concurrent use.
type RefinedAuthorizer struct {
	d *Decider
}

// NewRefinedAuthorizer builds the ordering-refined authorizer for a policy.
func NewRefinedAuthorizer(p *policy.Policy) *RefinedAuthorizer {
	return &RefinedAuthorizer{d: NewDecider(p)}
}

// Decider exposes the underlying ordering decider (shared caches).
func (r *RefinedAuthorizer) Decider() *Decider { return r.d }

// Authorize implements command.Authorizer. The justification is the held
// stronger privilege.
func (r *RefinedAuthorizer) Authorize(p *policy.Policy, c command.Command) (model.Privilege, bool) {
	target, err := c.Privilege()
	if err != nil {
		return nil, false
	}
	if r.d.pol != p {
		// Authorizing against a different policy object: use a fresh decider.
		return NewDecider(p).HeldStronger(c.Actor, target)
	}
	return r.d.HeldStronger(c.Actor, target)
}

// Name implements command.Authorizer.
func (r *RefinedAuthorizer) Name() string { return "refined" }

// StrictAuthorizer implements the literal Definition 5 check like
// command.Strict, but answers from a Decider's incrementally maintained
// reachability closure instead of a per-query DFS. Same semantics, O(1)
// per check after the closure is warm. Not safe for concurrent use.
type StrictAuthorizer struct {
	d *Decider
}

// NewStrictAuthorizer builds the closure-backed strict authorizer.
func NewStrictAuthorizer(p *policy.Policy) *StrictAuthorizer {
	return &StrictAuthorizer{d: NewDecider(p)}
}

// Decider exposes the underlying decider (shared caches).
func (s *StrictAuthorizer) Decider() *Decider { return s.d }

// Authorize implements command.Authorizer with Definition 5 semantics.
func (s *StrictAuthorizer) Authorize(p *policy.Policy, c command.Command) (model.Privilege, bool) {
	priv, err := c.Privilege()
	if err != nil {
		return nil, false
	}
	if s.d.pol != p {
		return command.Strict{}.Authorize(p, c)
	}
	if s.d.Holds(c.Actor, priv) {
		return priv, true
	}
	return nil, false
}

// Name implements command.Authorizer.
func (s *StrictAuthorizer) Name() string { return "strict" }
