// Package core implements the paper's primary contribution: the privilege
// ordering Ãφ on administrative privileges (Definition 8), its decision
// procedure (Lemma 1), the refinement relations º (Definition 6) and º†
// (Definition 7), the constructive simulation behind Theorem 1, and the
// ordering-refined command authorizer that the paper's Example 4 motivates.
//
// # The ordering
//
// Definition 8 declares Ãφ the smallest relation with
//
//	(1) p Ãφ p
//	(2) ¤(v2,v3) Ãφ ¤(v1,v4)  if v1 →φ v2 and v3 →φ v4
//	(3) ¤(v2,p1) Ãφ ¤(v1,p2)  if v1 →φ v2 and p1 Ãφ p2
//
// and §4.1 asserts the relation is reflexive and transitive. The paper's own
// Example 6 applies rule (2) with v4 a privilege *vertex* of the policy
// graph and chains derivations transitively; we therefore decide the
// smallest preorder closed under the rules, with rule (2) ranging over
// privilege vertices (see DESIGN.md D3/D4 for the analysis). WeakerOneStep
// retains the literal, non-transitive reading for comparison.
//
// Revocation privileges (♦) are ordered only by equality: the paper's §6
// explicitly leaves a revocation ordering to future work.
package core

import (
	"adminrefine/internal/graph"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Decider answers p Ãφ q queries against one policy, caching the policy's
// reachability closure and memoising subterm decisions. A Decider detects
// policy mutation via the policy generation counter and rebuilds its caches,
// so it is safe to keep one Decider per long-lived policy. Not safe for
// concurrent use.
type Decider struct {
	pol *policy.Policy

	gen          uint64
	closure      *graph.Closure
	privVerts    []model.Privilege
	privVertIDs  []termID
	privVertKeys []string
	memo         map[[2]termID]int8

	// Privilege terms are hash-consed into dense termIDs so that structural
	// equality is an integer comparison and memoisation never hashes a whole
	// nested term. Each level of a term contributes one table entry keyed by
	// its own small payload plus the child's id, so interning a depth-d term
	// costs O(d) once and the ordering recursion stays linear (Lemma 1).
	terms    map[levelKey]termID
	children []termID // termID -> id of the nested privilege, or noChild
}

// termID identifies a hash-consed privilege term inside one Decider.
type termID int32

// noChild marks a term whose destination is not a privilege.
const noChild termID = -1

// levelKey identifies one grammar level: the payload string encodes the
// constructor and its non-privilege operands; child is the interned nested
// privilege, if any.
type levelKey struct {
	payload string
	child   termID
}

// NewDecider builds a Decider for the policy.
func NewDecider(p *policy.Policy) *Decider {
	d := &Decider{pol: p, terms: make(map[levelKey]termID)}
	d.refresh()
	return d
}

func (d *Decider) refresh() {
	d.gen = d.pol.Generation()
	d.closure = graph.NewClosure(d.pol.Graph())
	d.privVerts = d.pol.PrivilegeVertices()
	d.memo = make(map[[2]termID]int8)
	d.privVertIDs = make([]termID, len(d.privVerts))
	d.privVertKeys = make([]string, len(d.privVerts))
	for i, pv := range d.privVerts {
		d.privVertIDs[i] = d.id(pv)
		d.privVertKeys[i] = pv.Key()
	}
}

// id interns a privilege term, returning its dense identifier. Two terms
// receive the same id iff they are structurally identical.
func (d *Decider) id(p model.Privilege) termID {
	switch t := p.(type) {
	case model.UserPrivilege:
		return d.intern(levelKey{payload: "q\x00" + t.Action + "\x00" + t.Object, child: noChild})
	case model.AdminPrivilege:
		switch dst := t.Dst.(type) {
		case model.Entity:
			return d.intern(levelKey{
				payload: "e\x00" + t.Op.Symbol() + "\x00" + t.Src.Key() + "\x00" + dst.Key(),
				child:   noChild,
			})
		case model.Privilege:
			return d.intern(levelKey{
				payload: "n\x00" + t.Op.Symbol() + "\x00" + t.Src.Key(),
				child:   d.id(dst),
			})
		}
	}
	// Ungrammatical terms (nil or foreign destinations) never equal anything:
	// give each occurrence a fresh id.
	id := termID(len(d.children))
	d.children = append(d.children, noChild)
	return id
}

func (d *Decider) intern(key levelKey) termID {
	if id, ok := d.terms[key]; ok {
		return id
	}
	id := termID(len(d.children))
	d.terms[key] = id
	d.children = append(d.children, key.child)
	return id
}

func (d *Decider) check() {
	if d.gen != d.pol.Generation() {
		d.refresh()
	}
}

// ResetMemo clears the memoisation table while keeping the reachability
// closure and the interning tables. Benchmarks use it to measure cold
// decision cost without paying the closure build on every iteration.
func (d *Decider) ResetMemo() {
	d.check()
	d.memo = make(map[[2]termID]int8)
}

// reaches reports v →φ v' over canonical keys using the cached closure.
func (d *Decider) reaches(fromKey, toKey string) bool {
	if fromKey == toKey {
		return true
	}
	g := d.pol.Graph()
	f, t := g.Lookup(fromKey), g.Lookup(toKey)
	if f == graph.NoVertex || t == graph.NoVertex {
		return false
	}
	return d.closure.Reaches(f, t)
}

// Weaker reports p Ãφ q: q is (possibly equal to or) weaker than p, so a
// holder of p is implicitly authorized for q. This is the transitive
// preorder of DESIGN.md D3.
func (d *Decider) Weaker(p, q model.Privilege) bool {
	d.check()
	return d.weaker(p, q)
}

func (d *Decider) weaker(p, q model.Privilege) bool {
	if p == nil || q == nil {
		return false
	}
	return d.weakerID(p, q, d.id(p), d.id(q))
}

// weakerID is the memoised core; pid/qid are the interned ids of p/q, so
// rule (1) and the memo lookup are integer operations.
func (d *Decider) weakerID(p, q model.Privilege, pid, qid termID) bool {
	if pid == qid {
		return true // rule (1)
	}
	key := [2]termID{pid, qid}
	if v, ok := d.memo[key]; ok {
		return v > 0
	}
	res := d.weakerUncached(p, q, pid, qid)
	if res {
		d.memo[key] = 1
	} else {
		d.memo[key] = -1
	}
	return res
}

func (d *Decider) weakerUncached(p, q model.Privilege, pid, qid termID) bool {
	qa, ok := q.(model.AdminPrivilege)
	if !ok {
		// q is a user privilege: only rule (1) applies, already checked.
		return false
	}
	if qa.Op != model.OpGrant {
		// ♦ privileges are ordered by equality only.
		return false
	}
	pa, ok := p.(model.AdminPrivilege)
	if !ok || pa.Op != model.OpGrant {
		return false
	}
	// q = ¤(x, y), p = ¤(a, b): rules (2)/(3) require x →φ a ...
	if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
		return false
	}
	// ... and the destination of p to dominate the destination of q.
	return d.below(pa.Dst, qa.Dst, d.children[pid], d.children[qid])
}

// below captures the destination side of the rules: b dominates y when a
// derivation chain can rewrite destination b into destination y. bid/yid are
// the interned ids of b/y when they are privileges (noChild otherwise).
func (d *Decider) below(b, y model.Vertex, bid, yid termID) bool {
	switch yt := y.(type) {
	case model.Entity:
		be, ok := b.(model.Entity)
		if !ok {
			// A privilege destination never rewrites back to an entity.
			return false
		}
		return d.reaches(be.Key(), yt.Key()) // rule (2): v3 →φ v4
	case model.Privilege:
		if bp, ok := b.(model.Privilege); ok {
			return d.weakerID(bp, yt, bid, yid) // rule (3): p1 Ãφ p2
		}
		// b is an entity and y a privilege term: rule (2) can hop from the
		// vertex b to any privilege vertex P' of the policy graph that b
		// reaches (Example 6), after which rule (3) chains P' Ãφ y.
		be := b.(model.Entity)
		beKey := be.Key()
		for i, pv := range d.privVerts {
			if d.reaches(beKey, d.privVertKeys[i]) && d.weakerID(pv, yt, d.privVertIDs[i], yid) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// WeakerOneStep decides the literal, non-transitive reading of Definition 8:
// a single application of rule (1), (2) or (3), with rule (3) recursing into
// the same relation, and rule (2) ranging over privilege vertices exactly as
// Example 6 requires. Provided for the DESIGN.md D3 gap analysis; Weaker is
// the relation every other component uses.
func (d *Decider) WeakerOneStep(p, q model.Privilege) bool {
	d.check()
	return d.oneStep(p, q)
}

func (d *Decider) oneStep(p, q model.Privilege) bool {
	if p == nil || q == nil {
		return false
	}
	if d.id(p) == d.id(q) {
		return true // rule (1)
	}
	qa, ok := q.(model.AdminPrivilege)
	if !ok || qa.Op != model.OpGrant {
		return false
	}
	pa, ok := p.(model.AdminPrivilege)
	if !ok || pa.Op != model.OpGrant {
		return false
	}
	if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
		return false
	}
	// Rule (2): both destinations are graph vertices with v3 →φ v4. The
	// destination of q may be an entity or a privilege vertex; a privilege
	// destination of q only qualifies when it is literally a vertex of φ
	// reachable from p's destination vertex.
	if be, ok := pa.Dst.(model.Entity); ok {
		switch yt := qa.Dst.(type) {
		case model.Entity:
			return d.reaches(be.Key(), yt.Key())
		case model.Privilege:
			ytKey := yt.Key()
			return d.pol.Graph().Lookup(ytKey) != graph.NoVertex &&
				d.reaches(be.Key(), ytKey)
		}
		return false
	}
	// Rule (3): both destinations are privilege terms with p1 Ãφ p2 (the
	// premise refers to the relation being defined, hence the recursion).
	bp, ok := pa.Dst.(model.Privilege)
	if !ok {
		return false
	}
	yp, ok := qa.Dst.(model.Privilege)
	if !ok {
		return false
	}
	return d.oneStep(bp, yp)
}

// Weaker is a convenience wrapper constructing a throwaway Decider. Use a
// Decider directly for repeated queries against one policy.
func Weaker(p *policy.Policy, strong, weak model.Privilege) bool {
	return NewDecider(p).Weaker(strong, weak)
}

// HeldStronger reports whether user u holds (reaches) some privilege h of
// the policy with h Ãφ q, returning the first such h. This is the paper's
// implicit authorization: "users with administrative privileges are
// implicitly authorized for weaker administrative privileges" (§4.1).
func (d *Decider) HeldStronger(user string, q model.Privilege) (model.Privilege, bool) {
	d.check()
	uk := model.User(user).Key()
	qid := d.id(q)
	for i, h := range d.privVerts {
		if d.reaches(uk, d.privVertKeys[i]) && d.weakerID(h, q, d.privVertIDs[i], qid) {
			return h, true
		}
	}
	return nil, false
}

// StrongerHeldBy returns all privilege vertices of the policy reachable by
// the user that are at least as strong as q, sorted by key order of the
// policy's privilege vertices. Used by analyses and explanations.
func (d *Decider) StrongerHeldBy(user string, q model.Privilege) []model.Privilege {
	d.check()
	uk := model.User(user).Key()
	var out []model.Privilege
	qid := d.id(q)
	for i, h := range d.privVerts {
		if d.reaches(uk, d.privVertKeys[i]) && d.weakerID(h, q, d.privVertIDs[i], qid) {
			out = append(out, h)
		}
	}
	return out
}
