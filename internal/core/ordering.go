// Package core implements the paper's primary contribution: the privilege
// ordering Ãφ on administrative privileges (Definition 8), its decision
// procedure (Lemma 1), the refinement relations º (Definition 6) and º†
// (Definition 7), the constructive simulation behind Theorem 1, and the
// ordering-refined command authorizer that the paper's Example 4 motivates.
//
// # The ordering
//
// Definition 8 declares Ãφ the smallest relation with
//
//	(1) p Ãφ p
//	(2) ¤(v2,v3) Ãφ ¤(v1,v4)  if v1 →φ v2 and v3 →φ v4
//	(3) ¤(v2,p1) Ãφ ¤(v1,p2)  if v1 →φ v2 and p1 Ãφ p2
//
// and §4.1 asserts the relation is reflexive and transitive. The paper's own
// Example 6 applies rule (2) with v4 a privilege *vertex* of the policy
// graph and chains derivations transitively; we therefore decide the
// smallest preorder closed under the rules, with rule (2) ranging over
// privilege vertices (see DESIGN.md D3/D4 for the analysis). WeakerOneStep
// retains the literal, non-transitive reading for comparison.
//
// Revocation privileges (♦) are ordered only by equality: the paper's §6
// explicitly leaves a revocation ordering to future work.
//
// # Incremental maintenance
//
// A Decider survives policy mutation without rebuilding from scratch. Its
// caches fall into three invalidation classes:
//
//   - The hash-consing tables (terms/children and the per-term vertex-id
//     caches) are policy-independent: a term's identity never changes, and
//     graph vertex ids are append-only, so the interner survives every
//     mutation unconditionally.
//   - The reachability closure is maintained incrementally: edge insertions
//     OR bit-rows forward through the predecessor worklist (graph.Closure);
//     edge removals trigger a scoped rebuild of the closure only.
//   - The memo is split by polarity. Ãφ is monotone in →φ, so a purely
//     additive policy delta can only flip negative answers: positive memo
//     entries survive, negative ones are dropped. Any removal clears both.
//
// The privilege-vertex list is re-derived only when the graph's vertex count
// changes (vertices are never removed; see DESIGN.md D6). SetIncremental
// disables all of this and restores the rebuild-everything behaviour, which
// benchmarks use as the baseline.
package core

import (
	"adminrefine/internal/graph"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Decider answers p Ãφ q queries against one policy, caching the policy's
// reachability closure and memoising subterm decisions. A Decider detects
// policy mutation via the policy generation counter and refreshes its caches
// incrementally (see the package comment for what survives), so it is safe
// and cheap to keep one Decider per long-lived policy. Not safe for
// concurrent use.
type Decider struct {
	pol *policy.Policy

	// incremental enables delta-based refresh; when false every policy
	// mutation rebuilds closure, memo and privilege-vertex tables in full
	// (the seed behaviour, kept as a benchmark baseline).
	incremental bool

	gen          uint64
	closure      *graph.Closure
	numVerts     int
	privVerts    []model.Privilege
	privVertIDs  []termID
	privVertKeys []string
	privVertGIDs []int32 // graph vertex ids of the privilege vertices

	// memo is split by polarity so additive policy deltas can drop the
	// (possibly flipped) negatives in O(1) while keeping the positives.
	memoPos map[[2]termID]struct{}
	memoNeg map[[2]termID]struct{}

	// Privilege terms are hash-consed into dense termIDs so that structural
	// equality is an integer comparison and memoisation never hashes a whole
	// nested term. Each level of a term contributes one table entry keyed by
	// its own small payload plus the child's id, so interning a depth-d term
	// costs O(d) once and the ordering recursion stays linear (Lemma 1).
	terms    map[levelKey]termID
	children []termID // termID -> id of the nested privilege, or noChild

	// Per-term vertex-id caches: the graph ids of an admin term's source and
	// (entity) destination, so the hot reachability checks are two integer
	// comparisons plus a bit test with no string-map lookups. vidNone marks
	// terms without that operand; vidUnresolved marks operands whose vertex
	// was not in the graph at interning time and is re-looked-up lazily
	// (vertex ids are append-only, so a resolved id never goes stale).
	srcKeys []string
	srcVIDs []int32
	dstKeys []string
	dstVIDs []int32

	// fpTab caches per-command-fingerprint resolutions for the authorize
	// fast path (see fastpath.go), indexed by command.Fingerprint.
	fpTab []fpState
}

// termID identifies a hash-consed privilege term inside one Decider.
type termID int32

// noChild marks a term whose destination is not a privilege.
const noChild termID = -1

const (
	// vidNone marks a term level without that vertex operand.
	vidNone int32 = -1
	// vidUnresolved marks an operand whose vertex was absent from the graph
	// when last looked up; it is retried on use.
	vidUnresolved int32 = -2
)

// levelKey identifies one grammar level: the payload string encodes the
// constructor and its non-privilege operands; child is the interned nested
// privilege, if any.
type levelKey struct {
	payload string
	child   termID
}

// NewDecider builds a Decider for the policy with incremental cache
// maintenance enabled.
func NewDecider(p *policy.Policy) *Decider {
	d := &Decider{pol: p, terms: make(map[levelKey]termID), incremental: true}
	d.refresh()
	return d
}

// SetIncremental toggles incremental cache maintenance. Disabling it makes
// every refresh rebuild the closure, memo and privilege-vertex tables from
// scratch — the rebuild-everything baseline the benchmarks compare against.
func (d *Decider) SetIncremental(on bool) { d.incremental = on }

func (d *Decider) refresh() {
	g := d.pol.Graph()
	additive := false
	if d.incremental && d.closure != nil {
		additive = d.closure.Update()
	} else {
		d.closure = graph.NewClosure(g)
	}
	if additive && d.memoPos != nil {
		// Ãφ is monotone in →φ: growth can only flip negatives.
		d.memoNeg = make(map[[2]termID]struct{})
	} else {
		d.memoPos = make(map[[2]termID]struct{})
		d.memoNeg = make(map[[2]termID]struct{})
	}
	if !d.incremental || d.privVerts == nil || g.NumVertices() != d.numVerts {
		d.numVerts = g.NumVertices()
		d.privVerts = d.pol.PrivilegeVertices()
		d.privVertIDs = make([]termID, len(d.privVerts))
		d.privVertKeys = make([]string, len(d.privVerts))
		d.privVertGIDs = make([]int32, len(d.privVerts))
		for i, pv := range d.privVerts {
			d.privVertIDs[i] = d.id(pv)
			d.privVertKeys[i] = pv.Key()
			d.privVertGIDs[i] = int32(g.Lookup(d.privVertKeys[i]))
		}
	}
	d.gen = d.pol.Generation()
}

// id interns a privilege term, returning its dense identifier. Two terms
// receive the same id iff they are structurally identical.
func (d *Decider) id(p model.Privilege) termID {
	switch t := p.(type) {
	case model.UserPrivilege:
		return d.intern(levelKey{payload: "q\x00" + t.Action + "\x00" + t.Object, child: noChild}, "", "")
	case model.AdminPrivilege:
		switch dst := t.Dst.(type) {
		case model.Entity:
			return d.intern(levelKey{
				payload: "e\x00" + t.Op.Symbol() + "\x00" + t.Src.Key() + "\x00" + dst.Key(),
				child:   noChild,
			}, t.Src.Key(), dst.Key())
		case model.Privilege:
			return d.intern(levelKey{
				payload: "n\x00" + t.Op.Symbol() + "\x00" + t.Src.Key(),
				child:   d.id(dst),
			}, t.Src.Key(), "")
		}
	}
	// Ungrammatical terms (nil or foreign destinations) never equal anything:
	// give each occurrence a fresh id.
	id := termID(len(d.children))
	d.children = append(d.children, noChild)
	d.srcKeys = append(d.srcKeys, "")
	d.srcVIDs = append(d.srcVIDs, vidNone)
	d.dstKeys = append(d.dstKeys, "")
	d.dstVIDs = append(d.dstVIDs, vidNone)
	return id
}

func (d *Decider) intern(key levelKey, srcKey, dstKey string) termID {
	if id, ok := d.terms[key]; ok {
		return id
	}
	id := termID(len(d.children))
	d.terms[key] = id
	d.children = append(d.children, key.child)
	d.srcKeys = append(d.srcKeys, srcKey)
	d.srcVIDs = append(d.srcVIDs, vidOf(d.pol, srcKey))
	d.dstKeys = append(d.dstKeys, dstKey)
	d.dstVIDs = append(d.dstVIDs, vidOf(d.pol, dstKey))
	return id
}

func vidOf(p *policy.Policy, key string) int32 {
	if key == "" {
		return vidNone
	}
	if v := p.Graph().Lookup(key); v != graph.NoVertex {
		return int32(v)
	}
	return vidUnresolved
}

// resolveVID returns the cached graph vertex id of a term operand, retrying
// the lookup for operands that were absent at interning time (the vertex may
// have been added since). Resolved ids are permanent: vertices are never
// removed.
func (d *Decider) resolveVID(vids []int32, keys []string, id termID) int32 {
	v := vids[id]
	if v != vidUnresolved {
		return v
	}
	if g := d.pol.Graph().Lookup(keys[id]); g != graph.NoVertex {
		vids[id] = int32(g)
		return int32(g)
	}
	return vidUnresolved
}

// srcReaches reports Src(from) →φ Src(to) over cached vertex ids. Operands
// missing from the graph reach only themselves.
func (d *Decider) srcReaches(from, to termID) bool {
	f := d.resolveVID(d.srcVIDs, d.srcKeys, from)
	t := d.resolveVID(d.srcVIDs, d.srcKeys, to)
	if f >= 0 && t >= 0 {
		return d.closure.Reaches(int(f), int(t))
	}
	return d.srcKeys[from] == d.srcKeys[to]
}

// dstReaches reports Dst(from) →φ Dst(to) for entity destinations.
func (d *Decider) dstReaches(from, to termID) bool {
	f := d.resolveVID(d.dstVIDs, d.dstKeys, from)
	t := d.resolveVID(d.dstVIDs, d.dstKeys, to)
	if f >= 0 && t >= 0 {
		return d.closure.Reaches(int(f), int(t))
	}
	return d.dstKeys[from] == d.dstKeys[to]
}

func (d *Decider) check() {
	if d.gen != d.pol.Generation() {
		d.refresh()
	}
}

// ResetMemo clears the memoisation table while keeping the reachability
// closure and the interning tables. Benchmarks use it to measure cold
// decision cost without paying the closure build on every iteration.
func (d *Decider) ResetMemo() {
	d.check()
	d.memoPos = make(map[[2]termID]struct{})
	d.memoNeg = make(map[[2]termID]struct{})
}

// reaches reports v →φ v' over canonical keys using the cached closure.
// Cold-path callers (derivations, enumeration) use it; the decision
// procedure itself runs on cached vertex ids.
func (d *Decider) reaches(fromKey, toKey string) bool {
	if fromKey == toKey {
		return true
	}
	g := d.pol.Graph()
	f, t := g.Lookup(fromKey), g.Lookup(toKey)
	if f == graph.NoVertex || t == graph.NoVertex {
		return false
	}
	return d.closure.Reaches(f, t)
}

// Weaker reports p Ãφ q: q is (possibly equal to or) weaker than p, so a
// holder of p is implicitly authorized for q. This is the transitive
// preorder of DESIGN.md D3.
func (d *Decider) Weaker(p, q model.Privilege) bool {
	d.check()
	return d.weaker(p, q)
}

func (d *Decider) weaker(p, q model.Privilege) bool {
	if p == nil || q == nil {
		return false
	}
	return d.weakerID(p, q, d.id(p), d.id(q))
}

// weakerID is the memoised core; pid/qid are the interned ids of p/q, so
// rule (1) and the memo lookup are integer operations.
func (d *Decider) weakerID(p, q model.Privilege, pid, qid termID) bool {
	if pid == qid {
		return true // rule (1)
	}
	key := [2]termID{pid, qid}
	if _, ok := d.memoPos[key]; ok {
		return true
	}
	if _, ok := d.memoNeg[key]; ok {
		return false
	}
	res := d.weakerUncached(p, q, pid, qid)
	if res {
		d.memoPos[key] = struct{}{}
	} else {
		d.memoNeg[key] = struct{}{}
	}
	return res
}

func (d *Decider) weakerUncached(p, q model.Privilege, pid, qid termID) bool {
	qa, ok := q.(model.AdminPrivilege)
	if !ok {
		// q is a user privilege: only rule (1) applies, already checked.
		return false
	}
	if qa.Op != model.OpGrant {
		// ♦ privileges are ordered by equality only.
		return false
	}
	pa, ok := p.(model.AdminPrivilege)
	if !ok || pa.Op != model.OpGrant {
		return false
	}
	// q = ¤(x, y), p = ¤(a, b): rules (2)/(3) require x →φ a ...
	if !d.srcReaches(qid, pid) {
		return false
	}
	// ... and the destination of p to dominate the destination of q.
	return d.below(pa.Dst, qa.Dst, pid, qid)
}

// below captures the destination side of the rules: b = Dst(pid) dominates
// y = Dst(qid) when a derivation chain can rewrite destination b into
// destination y.
func (d *Decider) below(b, y model.Vertex, pid, qid termID) bool {
	switch yt := y.(type) {
	case model.Entity:
		if _, ok := b.(model.Entity); !ok {
			// A privilege destination never rewrites back to an entity.
			return false
		}
		return d.dstReaches(pid, qid) // rule (2): v3 →φ v4
	case model.Privilege:
		if bp, ok := b.(model.Privilege); ok {
			return d.weakerID(bp, yt, d.children[pid], d.children[qid]) // rule (3): p1 Ãφ p2
		}
		// b is an entity and y a privilege term: rule (2) can hop from the
		// vertex b to any privilege vertex P' of the policy graph that b
		// reaches (Example 6), after which rule (3) chains P' Ãφ y.
		bv := d.resolveVID(d.dstVIDs, d.dstKeys, pid)
		if bv < 0 {
			return false // b is not a vertex of the policy graph
		}
		yid := d.children[qid]
		for i, pv := range d.privVerts {
			if d.closure.Reaches(int(bv), int(d.privVertGIDs[i])) &&
				d.weakerID(pv, yt, d.privVertIDs[i], yid) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// WeakerOneStep decides the literal, non-transitive reading of Definition 8:
// a single application of rule (1), (2) or (3), with rule (3) recursing into
// the same relation, and rule (2) ranging over privilege vertices exactly as
// Example 6 requires. Provided for the DESIGN.md D3 gap analysis; Weaker is
// the relation every other component uses.
func (d *Decider) WeakerOneStep(p, q model.Privilege) bool {
	d.check()
	return d.oneStep(p, q)
}

func (d *Decider) oneStep(p, q model.Privilege) bool {
	if p == nil || q == nil {
		return false
	}
	if d.id(p) == d.id(q) {
		return true // rule (1)
	}
	qa, ok := q.(model.AdminPrivilege)
	if !ok || qa.Op != model.OpGrant {
		return false
	}
	pa, ok := p.(model.AdminPrivilege)
	if !ok || pa.Op != model.OpGrant {
		return false
	}
	if !d.reaches(qa.Src.Key(), pa.Src.Key()) {
		return false
	}
	// Rule (2): both destinations are graph vertices with v3 →φ v4. The
	// destination of q may be an entity or a privilege vertex; a privilege
	// destination of q only qualifies when it is literally a vertex of φ
	// reachable from p's destination vertex.
	if be, ok := pa.Dst.(model.Entity); ok {
		switch yt := qa.Dst.(type) {
		case model.Entity:
			return d.reaches(be.Key(), yt.Key())
		case model.Privilege:
			ytKey := yt.Key()
			return d.pol.Graph().Lookup(ytKey) != graph.NoVertex &&
				d.reaches(be.Key(), ytKey)
		}
		return false
	}
	// Rule (3): both destinations are privilege terms with p1 Ãφ p2 (the
	// premise refers to the relation being defined, hence the recursion).
	bp, ok := pa.Dst.(model.Privilege)
	if !ok {
		return false
	}
	yp, ok := qa.Dst.(model.Privilege)
	if !ok {
		return false
	}
	return d.oneStep(bp, yp)
}

// Weaker is a convenience wrapper constructing a throwaway Decider. Use a
// Decider directly for repeated queries against one policy.
func Weaker(p *policy.Policy, strong, weak model.Privilege) bool {
	return NewDecider(p).Weaker(strong, weak)
}

// Holds reports the literal Definition 5 authorization condition: user u
// reaches the privilege vertex q in the policy graph. It answers from the
// cached closure, so repeated strict checks avoid the per-query DFS that
// policy.Reaches performs.
func (d *Decider) Holds(user string, q model.Privilege) bool {
	d.check()
	g := d.pol.Graph()
	uv := g.Lookup(model.User(user).Key())
	pv := g.Lookup(q.Key())
	if uv == graph.NoVertex || pv == graph.NoVertex {
		return false
	}
	return d.closure.Reaches(uv, pv)
}

// HeldStronger reports whether user u holds (reaches) some privilege h of
// the policy with h Ãφ q, returning the first such h. This is the paper's
// implicit authorization: "users with administrative privileges are
// implicitly authorized for weaker administrative privileges" (§4.1).
func (d *Decider) HeldStronger(user string, q model.Privilege) (model.Privilege, bool) {
	d.check()
	uv := d.pol.Graph().Lookup(model.User(user).Key())
	if uv == graph.NoVertex {
		return nil, false
	}
	qid := d.id(q)
	for i, h := range d.privVerts {
		if d.closure.Reaches(uv, int(d.privVertGIDs[i])) && d.weakerID(h, q, d.privVertIDs[i], qid) {
			return h, true
		}
	}
	return nil, false
}

// StrongerHeldBy returns all privilege vertices of the policy reachable by
// the user that are at least as strong as q, sorted by key order of the
// policy's privilege vertices. Used by analyses and explanations.
func (d *Decider) StrongerHeldBy(user string, q model.Privilege) []model.Privilege {
	d.check()
	uv := d.pol.Graph().Lookup(model.User(user).Key())
	if uv == graph.NoVertex {
		return nil
	}
	var out []model.Privilege
	qid := d.id(q)
	for i, h := range d.privVerts {
		if d.closure.Reaches(uv, int(d.privVertGIDs[i])) && d.weakerID(h, q, d.privVertIDs[i], qid) {
			out = append(out, h)
		}
	}
	return out
}
