package core

import (
	"fmt"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// This file explores the paper's stated open problem (§6): "Revocation
// privileges are included in our model, but we have not identified (yet) a
// separate ordering for revocation privileges." We formulate the natural
// candidate rules a reader might propose and hunt for soundness
// counterexamples with the bounded Definition 7 checker — turning the open
// problem into a counterexample-guided experiment (EXPERIMENTS.md A1).

// RevocationRule is a candidate ordering rule of the shape
//
//	♦(v2,v3) Ã ♦(v1,v4)  if <premise over →φ>
//
// mirroring the grant rules of Definition 8 in different orientations.
type RevocationRule uint8

const (
	// RevSamePremises transplants rule (2) verbatim: v1 →φ v2 and v3 →φ v4.
	RevSamePremises RevocationRule = iota + 1
	// RevInverted flips both premises: v2 →φ v1 and v4 →φ v3 (revoking from
	// a more senior pair as the "weaker" act).
	RevInverted
	// RevSourceOnly keeps the destination fixed: v1 →φ v2 and v4 = v3.
	RevSourceOnly
	// RevTargetDown keeps the source fixed and moves the destination down:
	// v1 = v2 and v3 →φ v4.
	RevTargetDown
)

// String names the rule.
func (r RevocationRule) String() string {
	switch r {
	case RevSamePremises:
		return "same premises as rule 2 (v1→v2, v3→v4)"
	case RevInverted:
		return "inverted premises (v2→v1, v4→v3)"
	case RevSourceOnly:
		return "source only (v1→v2, v4=v3)"
	case RevTargetDown:
		return "target down (v1=v2, v3→v4)"
	default:
		return fmt.Sprintf("RevocationRule(%d)", uint8(r))
	}
}

// AllRevocationRules lists the candidates in canonical order.
func AllRevocationRules() []RevocationRule {
	return []RevocationRule{RevSamePremises, RevInverted, RevSourceOnly, RevTargetDown}
}

// WeakerRevocation decides the candidate relation strong Ã weak for two
// flat revocation privileges under the given rule (plus reflexivity).
func (d *Decider) WeakerRevocation(rule RevocationRule, strong, weak model.AdminPrivilege) bool {
	d.check()
	if strong.Op != model.OpRevoke || weak.Op != model.OpRevoke {
		return false
	}
	if strong.Key() == weak.Key() {
		return true
	}
	sd, ok1 := strong.DstEntity()
	wd, ok2 := weak.DstEntity()
	if !ok1 || !ok2 {
		return false // nested ♦ candidates are out of scope for the flat rules
	}
	v2, v3 := strong.Src, sd
	v1, v4 := weak.Src, wd
	switch rule {
	case RevSamePremises:
		return d.reaches(v1.Key(), v2.Key()) && d.reaches(v3.Key(), v4.Key())
	case RevInverted:
		return d.reaches(v2.Key(), v1.Key()) && d.reaches(v4.Key(), v3.Key())
	case RevSourceOnly:
		return v4 == v3 && d.reaches(v1.Key(), v2.Key())
	case RevTargetDown:
		return v1 == v2 && d.reaches(v3.Key(), v4.Key())
	default:
		return false
	}
}

// RevocationFinding reports the outcome of probing one candidate rule in one
// Definition 7 direction.
type RevocationFinding struct {
	Rule      RevocationRule
	Direction Direction
	// Trials is the number of (policy, weakening) instances checked.
	Trials int
	// Sound reports whether no counterexample was found within the bounds.
	Sound bool
	// Counterexample describes the first violation: the policy seed, the
	// replacement performed, and the offending leader queue.
	Counterexample string
}

// revCandidate finds a ♦ assignment in the policy and a strictly different
// replacement admitted by the rule.
func revCandidate(p *policy.Policy, d *Decider, rule RevocationRule) (role string, strong, weak model.AdminPrivilege, ok bool) {
	entities := make([]model.Entity, 0, 16)
	for _, u := range p.Users() {
		entities = append(entities, model.User(u))
	}
	for _, r := range p.Roles() {
		entities = append(entities, model.Role(r))
	}
	for _, e := range p.EdgesOf(policy.EdgePA) {
		pv, isAdmin := e.To.(model.AdminPrivilege)
		if !isAdmin || pv.Op != model.OpRevoke {
			continue
		}
		if _, flat := pv.DstEntity(); !flat {
			continue
		}
		for _, v1 := range entities {
			for _, r := range p.Roles() {
				cand := model.AdminPrivilege{Op: model.OpRevoke, Src: v1, Dst: model.Role(r)}
				if cand.Validate() != nil || cand.Key() == pv.Key() {
					continue
				}
				if d.WeakerRevocation(rule, pv, cand) {
					return e.From.String(), pv, cand, true
				}
			}
		}
	}
	return "", model.AdminPrivilege{}, model.AdminPrivilege{}, false
}

// ExploreRevocationOrdering probes every candidate rule in the given
// direction over randomly generated policies: for each instance it replaces
// one ♦ assignment by a rule-weaker one and runs the bounded Definition 7
// check. Truncated checks are discarded (a negative there is not a genuine
// counterexample). The generator is the exported seam so tests and the A1
// experiment share instances.
func ExploreRevocationOrdering(dir Direction, trials, maxLen int, gen func(seed int64) *policy.Policy) []RevocationFinding {
	var out []RevocationFinding
	for _, rule := range AllRevocationRules() {
		finding := RevocationFinding{Rule: rule, Direction: dir, Sound: true}
		for seed := int64(0); finding.Trials < trials && seed < int64(trials*6); seed++ {
			phi := gen(seed)
			d := NewDecider(phi)
			role, strong, weak, ok := revCandidate(phi, d, rule)
			if !ok {
				continue
			}
			psi := phi.Clone()
			psi.RevokePrivilege(role, strong)
			if _, err := psi.GrantPrivilege(role, weak); err != nil {
				continue
			}
			finding.Trials++
			alpha := RelevantCommands(phi, psi, nil)
			if len(alpha) > 40 {
				alpha = alpha[:40]
			}
			res := BoundedAdminRefines(phi, psi, BoundedAdminOptions{
				MaxLen: maxLen, Alphabet: alpha, Direction: dir, MaxStates: 256,
			})
			if res.Truncated {
				finding.Trials--
				continue
			}
			if !res.Holds {
				finding.Sound = false
				finding.Counterexample = fmt.Sprintf(
					"seed %d: replace (%s, %s) by (%s, %s); %s",
					seed, role, strong, role, weak, res.Counterexample)
				break
			}
		}
		out = append(out, finding)
	}
	return out
}

// RevocationProbePolicy builds the small policy family used to probe the
// candidate rules: a three-role chain top → mid → bot carrying one
// permission, a member user on mid, and an administrator holding exactly one
// ♦ privilege — user-assignment flavoured on even seeds, hierarchy-edge
// flavoured on odd seeds. With a single ♦ in play, a policy that loses its
// exact revocation power cannot track the original's revocations, which is
// what the candidate rules must survive under the printed Definition 7.
func RevocationProbePolicy(seed int64) *policy.Policy {
	p := policy.New()
	p.AddInherit("top", "mid")
	p.AddInherit("mid", "bot")
	if _, err := p.GrantPrivilege("bot", model.Perm("read", "doc")); err != nil {
		panic(err)
	}
	p.Assign("u", "mid")
	p.Assign("adm", "admrole")
	var strong model.AdminPrivilege
	if seed%2 == 0 {
		strong = model.Revoke(model.User("u"), model.Role("mid"))
	} else {
		strong = model.Revoke(model.Role("mid"), model.Role("bot"))
	}
	if _, err := p.GrantPrivilege("admrole", strong); err != nil {
		panic(err)
	}
	return p
}
