package core

import (
	"sort"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// DefaultNestBound returns the nesting bound conjectured by Remark 2 for
// enumerating weaker privileges: the depth of the privilege itself plus the
// length of the longest chain in RH. Beyond that depth additional nestings
// only add redundant administrative steps.
func DefaultNestBound(p *policy.Policy, priv model.Privilege) int {
	return priv.Depth() + p.LongestRoleChain()
}

// WeakerSet enumerates every privilege q with priv Ãφ q whose nesting depth
// does not exceed maxDepth and whose entities come from the policy's
// universe. Example 6 shows the unbounded set is infinite whenever a policy
// assigns a privilege speaking about a role that reaches it, so a depth
// bound is mandatory; DefaultNestBound supplies Remark 2's choice.
//
// The enumeration runs the derivation rules forward to a fixpoint, which is
// sound and complete up to the depth bound because Ãφ is the transitive
// closure of single rule applications. The result is sorted by (depth, key)
// and always contains priv itself (rule 1).
func (d *Decider) WeakerSet(priv model.Privilege, maxDepth int) []model.Privilege {
	d.check()
	if priv == nil {
		return nil
	}
	seen := map[string]model.Privilege{priv.Key(): priv}
	work := []model.Privilege{priv}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for _, next := range d.successors(cur, maxDepth) {
			k := next.Key()
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = next
			work = append(work, next)
		}
	}
	out := make([]model.Privilege, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Depth(), out[j].Depth()
		if di != dj {
			return di < dj
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// successors applies the rules forward once from a known-weaker term,
// producing candidate weaker terms within the depth bound.
func (d *Decider) successors(p model.Privilege, maxDepth int) []model.Privilege {
	pa, ok := p.(model.AdminPrivilege)
	if !ok || pa.Op != model.OpGrant {
		return nil // user privileges and ♦ privileges have no strict weakenings
	}
	var out []model.Privilege

	// Candidate sources v1 with v1 →φ v2 (the entities of the policy that
	// reach p's source).
	var sources []model.Entity
	for _, name := range d.pol.Users() {
		u := model.User(name)
		if d.reaches(u.Key(), pa.Src.Key()) {
			sources = append(sources, u)
		}
	}
	for _, name := range d.pol.Roles() {
		r := model.Role(name)
		if d.reaches(r.Key(), pa.Src.Key()) {
			sources = append(sources, r)
		}
	}

	emit := func(src model.Entity, dst model.Vertex) {
		cand := model.AdminPrivilege{Op: model.OpGrant, Src: src, Dst: dst}
		if cand.Validate() != nil {
			return // e.g. user source with privilege destination
		}
		if cand.Depth() > maxDepth {
			return
		}
		out = append(out, cand)
	}

	switch dst := pa.Dst.(type) {
	case model.Entity:
		// Rule (2): destinations v4 with v3 →φ v4 — role entities ...
		for _, name := range d.pol.Roles() {
			r := model.Role(name)
			if !d.reaches(dst.Key(), r.Key()) {
				continue
			}
			for _, src := range sources {
				emit(src, r)
			}
		}
		// ... and privilege vertices of the policy graph (Example 6 hop).
		for _, pv := range d.privVerts {
			if !d.reaches(dst.Key(), pv.Key()) {
				continue
			}
			for _, src := range sources {
				emit(src, pv)
			}
		}
	case model.Privilege:
		// Rule (3): nested destinations p2 with p1 Ãφ p2, enumerated
		// recursively within the remaining depth budget.
		for _, inner := range d.WeakerSet(dst, maxDepth-1) {
			for _, src := range sources {
				emit(src, inner)
			}
		}
	}
	return out
}
