package core_test

import (
	"fmt"

	"adminrefine/internal/core"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// The paper's Example 5: Jane's privilege to add Bob to staff implicitly
// authorizes adding him to the junior dbusr2 role.
func ExampleDecider_Weaker() {
	p := policy.Figure2()
	d := core.NewDecider(p)

	strong := model.Grant(model.User("bob"), model.Role("staff"))
	weak := model.Grant(model.User("bob"), model.Role("dbusr2"))

	fmt.Println(d.Weaker(strong, weak))
	fmt.Println(d.Weaker(weak, strong))
	// Output:
	// true
	// false
}

// Derivations explain ordering decisions and can be re-checked.
func ExampleDecider_Explain() {
	p := policy.Figure2()
	d := core.NewDecider(p)

	strong := model.Grant(model.Role("staff"), model.Grant(model.User("bob"), model.Role("staff")))
	weak := model.Grant(model.Role("staff"), model.Grant(model.User("bob"), model.Role("dbusr2")))

	dv, ok := d.Explain(strong, weak)
	fmt.Println(ok)
	fmt.Println(dv)
	// Output:
	// true
	// grant(staff, grant(bob, staff))  Ã  grant(staff, grant(bob, dbusr2))   [rule 3 (nested privilege)]
	//   grant(bob, staff)  Ã  grant(bob, dbusr2)   [rule 2 (edge privilege)]
}

// Theorem 1: replacing a privilege assignment by a weaker one refines the
// policy; the weakened policy grants exactly the same user privileges.
func ExampleWeakenAssignment() {
	phi := policy.Figure2()
	psi, err := core.WeakenAssignment(phi, core.Weakening{
		Role:   "HR",
		Strong: model.Grant(model.User("bob"), model.Role("staff")),
		Weak:   model.Grant(model.User("bob"), model.Role("dbusr2")),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(core.NonAdminRefines(phi, psi))
	fmt.Println(core.NonAdminRefines(psi, phi))
	// Output:
	// true
	// true
}

// Example 6: the weaker set is infinite, so enumeration takes a nesting
// bound; each extra unit of budget admits one more chain element.
func ExampleDecider_WeakerSet() {
	p := policy.New()
	p.DeclareRole("r1")
	p.DeclareRole("r2")
	p.GrantPrivilege("r2", model.Grant(model.Role("r1"), model.Role("r2")))

	d := core.NewDecider(p)
	base := model.Grant(model.Role("r1"), model.Role("r2"))
	for bound := 1; bound <= 3; bound++ {
		fmt.Println(len(d.WeakerSet(base, bound)))
	}
	// Output:
	// 1
	// 2
	// 3
}
