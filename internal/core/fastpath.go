package core

import (
	"adminrefine/internal/command"
	"adminrefine/internal/graph"
	"adminrefine/internal/model"
)

// This file is the fingerprint-indexed authorization fast path: the decision
// kernel behind Snapshot.Authorize once the boundary has interned the
// command (see command.Interner). The first query for a fingerprint resolves
// the strings the Decider needs — actor vertex id, interned privilege term,
// privilege vertex id — into a dense per-fingerprint table; every later
// query is integer indexing, closure bit tests and memo lookups, with no
// string-keyed map hits, no interning writes and no allocations.

// fpState caches what one fingerprint resolves to inside this Decider.
// Vertex ids are append-only in the graph, and term ids are stable for the
// Decider's lifetime, so a resolved state never goes stale; operands that
// were absent from the graph are retried on use (vidUnresolved), exactly
// like the per-term vertex caches.
type fpState struct {
	qid     termID // interned id of the authorizing privilege
	actVID  int32  // graph vertex id of the actor (u:<actor>)
	privVID int32  // graph vertex id of the privilege vertex (strict path)
	privKey string // canonical key of the privilege, for retrying privVID
	ready   bool
}

// AuthorizeFP decides the interned command described by info: under
// refined=false the literal Definition 5 check (actor reaches the privilege
// vertex), under refined=true the §4.1 ordering check (actor holds a
// privilege at least as strong). The justification matches HeldStronger /
// Holds exactly. info.Priv must be non-nil (ill-formed commands are filtered
// at the boundary).
func (d *Decider) AuthorizeFP(info *command.FPInfo, refined bool) (model.Privilege, bool) {
	d.check()
	fp := int(info.FP)
	if fp >= len(d.fpTab) {
		d.growFPTab(fp)
	}
	st := &d.fpTab[fp]
	if !st.ready {
		st.qid = d.id(info.Priv)
		st.actVID = vidOf(d.pol, info.ActorKey)
		if !refined {
			// Only the strict check addresses the privilege vertex itself;
			// deriving the canonical key here (not at intern time) keeps
			// refined-mode interning free of it.
			st.privKey = info.Priv.Key()
			st.privVID = vidOf(d.pol, st.privKey)
		} else {
			st.privVID = vidUnresolved
		}
		st.ready = true
	}
	act := st.actVID
	if act == vidUnresolved {
		if v := d.pol.Graph().Lookup(info.ActorKey); v != graph.NoVertex {
			st.actVID = int32(v)
			act = st.actVID
		}
	}
	if act < 0 {
		// An actor absent from the graph reaches only itself; no privilege
		// vertex is an actor, so the command is denied in both regimes.
		return nil, false
	}
	if refined {
		qid := st.qid
		for i, h := range d.privVerts {
			if d.closure.Reaches(int(act), int(d.privVertGIDs[i])) &&
				d.weakerID(h, info.Priv, d.privVertIDs[i], qid) {
				return h, true
			}
		}
		return nil, false
	}
	pv := st.privVID
	if pv == vidUnresolved {
		if st.privKey == "" {
			st.privKey = info.Priv.Key() // first strict use of a refined-resolved state
		}
		if v := d.pol.Graph().Lookup(st.privKey); v != graph.NoVertex {
			st.privVID = int32(v)
			pv = st.privVID
		}
	}
	if pv < 0 {
		return nil, false
	}
	if d.closure.Reaches(int(act), int(pv)) {
		return info.Priv, true
	}
	return nil, false
}

// growFPTab extends the fingerprint table to cover fp (amortised doubling).
func (d *Decider) growFPTab(fp int) {
	n := len(d.fpTab) * 2
	if n <= fp {
		n = fp + 1
	}
	if n < 64 {
		n = 64
	}
	grown := make([]fpState, n)
	copy(grown, d.fpTab)
	d.fpTab = grown
}
