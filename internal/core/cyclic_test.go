package core

import (
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// The paper's footnote 3 deliberately does not assume RH is a partial order
// (citing Li et al.'s critique of the ANSI standard): cyclic hierarchies
// must be handled, with mutually-reachable roles becoming equivalent. These
// tests pin that behaviour across the stack.

func cyclicPolicy(t *testing.T) *policy.Policy {
	t.Helper()
	p := policy.New()
	// a and b form a cycle; c hangs below b.
	p.AddInherit("a", "b")
	p.AddInherit("b", "a")
	p.AddInherit("b", "c")
	if _, err := p.GrantPrivilege("c", model.Perm("read", "t")); err != nil {
		t.Fatal(err)
	}
	p.Assign("u", "a")
	if _, err := p.GrantPrivilege("adm", model.Grant(model.User("x"), model.Role("a"))); err != nil {
		t.Fatal(err)
	}
	p.Assign("admin", "adm")
	return p
}

func TestCyclicHierarchyReachability(t *testing.T) {
	p := cyclicPolicy(t)
	// Both cycle members reach each other and the junior role's privileges.
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}} {
		if !p.Reaches(model.Role(pair[0]), model.Role(pair[1])) {
			t.Errorf("%s does not reach %s", pair[0], pair[1])
		}
	}
	if !p.Reaches(model.User("u"), model.Perm("read", "t")) {
		t.Error("user through cycle cannot read")
	}
	if p.LongestRoleChain() != 1 {
		t.Errorf("LongestRoleChain = %d, want 1 (cycle condenses)", p.LongestRoleChain())
	}
}

func TestCyclicHierarchyOrdering(t *testing.T) {
	p := cyclicPolicy(t)
	d := NewDecider(p)
	x := model.User("x")
	// ¤(x,a) and ¤(x,b) are mutually weaker: the cycle makes them
	// equivalent under the ordering.
	pa := model.Grant(x, model.Role("a"))
	pb := model.Grant(x, model.Role("b"))
	if !d.Weaker(pa, pb) || !d.Weaker(pb, pa) {
		t.Fatal("cycle members not ordering-equivalent")
	}
	// Both dominate ¤(x,c); neither is dominated by it.
	pc := model.Grant(x, model.Role("c"))
	if !d.Weaker(pa, pc) || !d.Weaker(pb, pc) {
		t.Fatal("cycle members do not dominate junior")
	}
	if d.Weaker(pc, pa) {
		t.Fatal("junior dominates cycle member")
	}
	// The refined authorizer accepts the equivalent command.
	cmd := command.Grant("admin", x, model.Role("b"))
	if _, ok := NewRefinedAuthorizer(p).Authorize(p, cmd); !ok {
		t.Fatal("refined authorizer rejected cycle-equivalent command")
	}
	// And the weakening is a (mutual) refinement.
	psi, err := WeakenAssignment(p, Weakening{Role: "adm", Strong: pa, Weak: pb})
	if err != nil {
		t.Fatal(err)
	}
	if !MutuallyNonAdminRefine(p, psi) {
		t.Fatal("cycle-equivalent weakening changed user privileges")
	}
}

func TestCyclicWeakerSetTerminates(t *testing.T) {
	p := cyclicPolicy(t)
	d := NewDecider(p)
	ws := d.WeakerSet(model.Grant(model.User("x"), model.Role("a")), 2)
	// Enumeration over a cyclic hierarchy must terminate and include both
	// cycle members.
	keys := map[string]bool{}
	for _, w := range ws {
		keys[w.Key()] = true
	}
	if !keys[model.Grant(model.User("x"), model.Role("b")).Key()] {
		t.Errorf("weaker set misses the cycle twin: %v", ws)
	}
	if !keys[model.Grant(model.User("x"), model.Role("c")).Key()] {
		t.Errorf("weaker set misses the junior: %v", ws)
	}
}
