package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
)

// ErrUpstreamFenced marks a pull or bootstrap answered with 421: the
// upstream is not the primary of the follower's epoch (demoted, fenced, or
// never was one). The follower keeps serving its local state and retries
// with backoff; the cure is re-pointing at the current primary (see the
// server's repoint endpoint).
var ErrUpstreamFenced = errors.New("replication: upstream is not the primary")

// IsUpstreamFenced reports whether err is a 421 fencing rejection from the
// upstream.
func IsUpstreamFenced(err error) bool { return errors.Is(err, ErrUpstreamFenced) }

// maxPullBody bounds one pull response body. The primary's log is compacted
// on a budget, so a batch ever approaching this signals a broken peer, not a
// big backlog (a genuinely far-behind follower gets 410 + snapshot instead).
const maxPullBody = 64 << 20

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Upstream is the primary's base URL, e.g. "http://10.0.0.1:8270".
	Upstream string
	// PollWait is the long-poll bound each pull asks the primary to hold the
	// request open for when there is nothing to ship (default 10s).
	PollWait time.Duration
	// SyncWait bounds how long Ensure blocks waiting for a tenant's first
	// sync before reporting the replication error (default 10s).
	SyncWait time.Duration
	// Backoff is the initial retry delay after a failed pull, doubled up to
	// 16x (default 250ms).
	Backoff time.Duration
	// IdleAfter retires a tenant's pull loop when no read has touched it for
	// this long (default 5m): the goroutine and its standing long-poll go
	// away and the local registry may LRU-evict the tenant. The next read
	// re-Ensures and replication resumes from the local WAL position.
	// Negative disables retirement.
	IdleAfter time.Duration
	// SnapshotTimeout bounds one snapshot bootstrap round-trip (default
	// 90s). Bootstraps get their own context deadline instead of riding
	// Client's overall timeout: that timeout is sized for long-polls, and a
	// large tenant's snapshot transfer should not share a budget chosen for
	// an idle pull.
	SnapshotTimeout time.Duration
	// Client overrides the HTTP client (tests, fault injection — wrap its
	// Transport with a fault.Transport to chaos-test convergence). Its
	// timeout must exceed PollWait or every idle long-poll errors; snapshot
	// bootstraps reuse its Transport but not its timeout (see
	// SnapshotTimeout).
	Client *http.Client
	// Epoch is the node's fencing epoch handle, shared with the server and
	// the node-level store. Every pull carries it and every response epoch
	// above it is adopted durably before a single record is applied. Nil
	// reads as a permanent epoch 0.
	Epoch *Epoch
	// JitterSeed seeds the retry-backoff jitter (0 = time-seeded). Fixed
	// seeds make chaos tests replayable.
	JitterSeed int64
	// Breaker, when non-nil, gates every upstream round trip (pull and
	// snapshot bootstrap): after its threshold of consecutive transport
	// failures the follower stops dialing a dead upstream and fails fast
	// until a half-open probe gets an answer. Share the same breaker with
	// the server (server.Config.Breaker) so the write-forwarding 307 path
	// learns about upstream death from replication traffic and vice versa.
	// Any HTTP response — including 421/404 — counts as upstream-alive; only
	// transport-level failures feed the breaker.
	Breaker *admission.Breaker
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollWait <= 0 {
		o.PollWait = 10 * time.Second
	}
	if o.SyncWait <= 0 {
		o.SyncWait = 10 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.IdleAfter == 0 {
		o.IdleAfter = 5 * time.Minute
	}
	if o.SnapshotTimeout <= 0 {
		o.SnapshotTimeout = 90 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: o.PollWait + 15*time.Second}
	}
	return o
}

// Follower replicates tenants from an upstream primary into a local
// registry and tracks per-tenant lag. Tenants replicate lazily: the first
// read touching a name starts its pull loop (Ensure), mirroring the
// registry's own lazy open. Reads keep being served from the local replayed
// state when the upstream drops — stale but available — and the loops
// reconnect with backoff.
type Follower struct {
	reg  *tenant.Registry
	opts FollowerOptions
	// snapClient shares Client's transport but drops its overall timeout:
	// snapshot bootstraps are bounded per-request by SnapshotTimeout
	// contexts instead of the long-poll-sized Client.Timeout.
	snapClient *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// rngMu guards rng, the backoff-jitter source shared by the per-tenant
	// pull loops.
	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	tenants map[string]*followTenant
}

// followTenant is one tenant's replication state.
type followTenant struct {
	name string
	// synced is closed when the first sync attempt concludes (either way);
	// Ensure waits on it, then reads the live fields below.
	synced    chan struct{}
	mu        sync.Mutex
	syncDone  bool
	syncErr   error // nil once the tenant has local state to serve
	haveLocal bool
	// lastTouch is the last time a read Ensured this tenant; the pull loop
	// retires itself past IdleAfter.
	lastTouch time.Time
	gen       uint64
	// epoch is the fencing epoch of the local record at gen — the
	// after_epoch half of the pull cursor (see tenant.PullWAL).
	epoch   uint64
	head    uint64
	healthy bool
	lastOK  time.Time
	lastErr string
	pulls   uint64
	bootstr uint64
	applied uint64
}

// LagStats is one tenant's replication telemetry, surfaced on the follower's
// stats endpoint.
type LagStats struct {
	// Generation is the tenant's local (replayed) generation.
	Generation uint64 `json:"generation"`
	// UpstreamHead is the primary's generation at the last successful pull.
	UpstreamHead uint64 `json:"upstream_head"`
	// Lag is UpstreamHead - Generation as of the last contact: how many
	// applied writes the replica still has to replay.
	Lag uint64 `json:"lag"`
	// Healthy reports the last pull succeeded; reads keep serving the local
	// state either way (graceful failover).
	Healthy     bool   `json:"healthy"`
	LastContact string `json:"last_contact,omitempty"`
	Pulls       uint64 `json:"pulls"`
	Bootstraps  uint64 `json:"bootstraps"`
	// RecordsApplied counts WAL records replayed into the local engine.
	RecordsApplied uint64 `json:"records_applied"`
	LastError      string `json:"last_error,omitempty"`
}

// NewFollower builds a follower replicating into reg from opts.Upstream.
// Close it to stop the pull loops.
func NewFollower(reg *tenant.Registry, opts FollowerOptions) *Follower {
	ctx, cancel := context.WithCancel(context.Background())
	opts = opts.withDefaults()
	snap := *opts.Client
	snap.Timeout = 0
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Follower{
		reg:        reg,
		opts:       opts,
		snapClient: &snap,
		ctx:        ctx,
		cancel:     cancel,
		rng:        rand.New(rand.NewSource(seed)),
		tenants:    make(map[string]*followTenant),
	}
}

// WithUpstream builds a fresh follower over the same registry and options
// pointed at a different primary — the repoint primitive (see the server's
// /v1/repoint). The receiver is left untouched; the caller closes it once
// the replacement is in place, and each tenant's new pull loop resumes from
// the durable local WAL position.
func (f *Follower) WithUpstream(upstream string) *Follower {
	opts := f.opts
	opts.Upstream = upstream
	return NewFollower(f.reg, opts)
}

// Upstream returns the primary's base URL (the follower's redirect target
// for writes).
func (f *Follower) Upstream() string { return f.opts.Upstream }

// Options returns a copy of the follower's effective options (defaults
// applied) — the template a server reuses when it must build a replacement
// follower pointing at a different upstream.
func (f *Follower) Options() FollowerOptions { return f.opts }

// Close stops every pull loop and waits for them to exit.
func (f *Follower) Close() {
	// Cancel under the mutex: Ensure checks ctx.Err() and does wg.Add in the
	// same critical section, so a loop is either fully registered before the
	// cancel (Wait covers it) or never started — no Add racing Wait at zero.
	f.mu.Lock()
	f.cancel()
	f.mu.Unlock()
	f.wg.Wait()
}

// Ensure makes sure the tenant is being replicated, starting its pull loop
// on first touch, and blocks (bounded by SyncWait) until the tenant has
// local state to serve. It returns nil once reads can be answered locally —
// including stale-but-available service while the upstream is down — and the
// replication error otherwise (an upstream miss maps onto tenant.IsNotFound).
func (f *Follower) Ensure(name string) error {
	if !tenant.ValidName(name) {
		// Same sentinel the registry uses, so the transport maps a bad name
		// to 400 on followers exactly as it does on primaries.
		return fmt.Errorf("tenant %q: %w", name, tenant.ErrBadName)
	}
	f.mu.Lock()
	ft, ok := f.tenants[name]
	if !ok {
		if f.ctx.Err() != nil {
			f.mu.Unlock()
			return fmt.Errorf("replication: follower closed")
		}
		ft = &followTenant{name: name, synced: make(chan struct{}), lastTouch: time.Now()}
		f.tenants[name] = ft
		f.wg.Add(1)
		go f.run(ft)
	}
	f.mu.Unlock()
	ft.update(func() { ft.lastTouch = time.Now() })

	select {
	case <-ft.synced:
	case <-time.After(f.opts.SyncWait):
	case <-f.ctx.Done():
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.haveLocal {
		return nil
	}
	if ft.syncErr != nil {
		return ft.syncErr
	}
	return fmt.Errorf("replication: tenant %s: initial sync timed out after %v (last error: %s)",
		name, f.opts.SyncWait, ft.lastErr)
}

// LagStats reports the tenant's replication telemetry (false when the tenant
// is not replicated here).
func (f *Follower) LagStats(name string) (LagStats, bool) {
	f.mu.Lock()
	ft, ok := f.tenants[name]
	f.mu.Unlock()
	if !ok {
		return LagStats{}, false
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	st := LagStats{
		Generation:     ft.gen,
		UpstreamHead:   ft.head,
		Healthy:        ft.healthy,
		Pulls:          ft.pulls,
		Bootstraps:     ft.bootstr,
		RecordsApplied: ft.applied,
		LastError:      ft.lastErr,
	}
	if ft.head > ft.gen {
		st.Lag = ft.head - ft.gen
	}
	if !ft.lastOK.IsZero() {
		st.LastContact = ft.lastOK.UTC().Format(time.RFC3339Nano)
	}
	return st, true
}

// Tenants lists the replicated tenant names.
func (f *Follower) Tenants() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		names = append(names, name)
	}
	return names
}

// run is one tenant's pull loop: bootstrap when there is no local state,
// then long-poll the primary and apply record batches, falling back to a
// snapshot bootstrap whenever the apply reports out-of-sync or the primary
// compacted past us (410).
func (f *Follower) run(ft *followTenant) {
	defer f.wg.Done()

	// A SIGKILLed follower restarts with durable local state: serve reads
	// from it immediately (and catch up in the background) so losing the
	// upstream never takes reads down with it.
	gen, epoch, err := f.localPosition(ft.name)
	switch {
	case err == nil:
		ft.update(func() { ft.gen, ft.epoch, ft.haveLocal = gen, epoch, true })
		ft.finishSync(nil)
	case !tenant.IsNotFound(err):
		ft.update(func() { ft.lastErr = err.Error() })
	}

	backoff := f.opts.Backoff
	for f.ctx.Err() == nil {
		if f.opts.IdleAfter > 0 && time.Since(ft.touched()) > f.opts.IdleAfter && ft.hasLocal() {
			// No read has wanted this tenant for a while: retire the loop
			// (and its standing long-poll) so idle tenants cost nothing and
			// the local registry may evict them. The next read re-Ensures
			// and replication resumes from the durable local position.
			// Re-checked under the map lock so an Ensure that just resolved
			// this entry almost always keeps its loop; the residual window
			// (Ensure between the check and the delete) only delays resync
			// until that tenant's next read.
			f.mu.Lock()
			if time.Since(ft.touched()) > f.opts.IdleAfter {
				delete(f.tenants, ft.name)
				f.mu.Unlock()
				return
			}
			f.mu.Unlock()
		}
		advanced, err := f.step(ft)
		switch {
		case err == nil:
			backoff = f.opts.Backoff
			if !advanced {
				continue // idle long-poll round; re-poll immediately
			}
		case tenant.IsNotFound(err) && !ft.hasLocal():
			// The tenant does not exist upstream and we hold nothing local:
			// report not-found and retire the loop so probing bogus names
			// costs one snapshot round-trip, not a goroutine forever. The
			// next read retries from scratch.
			ft.finishSync(err)
			f.mu.Lock()
			delete(f.tenants, ft.name)
			f.mu.Unlock()
			return
		default:
			ft.update(func() { ft.healthy, ft.lastErr = false, err.Error() })
			ft.finishSync(err)
			f.sleep(f.jitter(backoff))
			if backoff < 16*f.opts.Backoff {
				backoff *= 2
			}
		}
	}
}

// step performs one replication round: bootstrap if needed, else one pull +
// apply. advanced reports whether new records were applied (so the caller
// can distinguish progress from an idle long-poll).
func (f *Follower) step(ft *followTenant) (advanced bool, err error) {
	if !ft.hasLocal() {
		if err := f.bootstrap(ft); err != nil {
			return false, err
		}
		ft.finishSync(nil)
		return true, nil
	}
	gen, epoch := ft.position()
	res, err := f.pull(ft.name, gen, epoch)
	if err != nil {
		return false, err
	}
	ft.update(func() {
		ft.pulls++
		ft.head = res.head
		ft.healthy = true
		ft.lastOK = time.Now()
		ft.lastErr = ""
	})
	if res.snapshotNeeded {
		if err := f.bootstrap(ft); err != nil {
			return false, err
		}
		return true, nil
	}
	if len(res.records) == 0 {
		// Caught up and idle. Verify the state checksum: generation equality
		// plus edge-count equality catches the one divergence generations
		// cannot see (a policy installed at generation 0 after we
		// bootstrapped the tenant empty).
		if gen == res.head && res.edges >= 0 {
			if edges, err := f.localEdges(ft.name); err == nil && edges != res.edges {
				if err := f.bootstrap(ft); err != nil {
					return false, err
				}
				return true, nil
			}
		}
		return false, nil
	}
	newGen, err := f.reg.ApplyReplicated(ft.name, res.records)
	if err != nil {
		if tenant.IsOutOfSync(err) {
			if err := f.bootstrap(ft); err != nil {
				return false, err
			}
			return true, nil
		}
		return false, err
	}
	ft.update(func() {
		ft.applied += uint64(len(res.records))
		ft.gen = newGen
		// Advance the epoch half of the cursor to the epoch stamped on the
		// record now at the head — records keep their primary's stamp
		// through the apply, so the cursor matches the local WAL exactly.
		for i := len(res.records) - 1; i >= 0; i-- {
			if r := res.records[i]; !r.IsAudit() && uint64(r.Seq) <= newGen {
				ft.epoch = r.Epoch
				break
			}
		}
	})
	return true, nil
}

// pullResult is one decoded pull response.
type pullResult struct {
	records        []storage.Record
	head           uint64
	edges          int
	snapshotNeeded bool
}

// pull performs one long-poll GET against the primary's pull endpoint.
func (f *Follower) pull(name string, afterSeq, afterEpoch uint64) (pullResult, error) {
	url := fmt.Sprintf("%s/v1/replicate/%s/pull?after_seq=%d&after_epoch=%d&wait_ms=%d",
		f.opts.Upstream, name, afterSeq, afterEpoch, f.opts.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return pullResult{}, err
	}
	req.Header.Set(HeaderEpoch, strconv.FormatUint(f.opts.Epoch.Current(), 10))
	if err := f.opts.Breaker.Allow(); err != nil {
		return pullResult{}, fmt.Errorf("replication: pull %s: %w", name, err)
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		f.opts.Breaker.Failure()
		return pullResult{}, err
	}
	// Any response means the upstream is alive; what it said is a protocol
	// matter, not a transport one.
	f.opts.Breaker.Success()
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusGone:
	case http.StatusNotFound:
		return pullResult{}, fmt.Errorf("replication: pull %s: %w", name, tenant.ErrNotFound)
	case http.StatusMisdirectedRequest:
		return pullResult{}, f.fencedByUpstream("pull", name, resp)
	default:
		return pullResult{}, fmt.Errorf("replication: pull %s: upstream status %d", name, resp.StatusCode)
	}
	if err := f.adoptEpoch("pull", name, resp); err != nil {
		return pullResult{}, err
	}
	var res pullResult
	head, err := strconv.ParseUint(resp.Header.Get(HeaderHead), 10, 64)
	if err != nil {
		return pullResult{}, fmt.Errorf("replication: pull %s: bad %s header", name, HeaderHead)
	}
	res.head = head
	res.edges = -1
	if edges, err := strconv.Atoi(resp.Header.Get(HeaderEdges)); err == nil {
		res.edges = edges
	}
	if resp.StatusCode == http.StatusGone {
		res.snapshotNeeded = true
		return res, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPullBody))
	if err != nil {
		return pullResult{}, fmt.Errorf("replication: pull %s: read body: %w", name, err)
	}
	n, records := storage.DecodeFrames(body)
	if n != len(body) {
		// A truncated transfer (or a peer exceeding our read limit, which a
		// well-behaved source never does — it caps batches in whole frames).
		// The valid prefix is real history either way: apply it so the
		// replica makes progress, and let the next pull fetch the rest.
		// Only a body with no whole frame at all is a hard fault.
		if len(records) == 0 {
			return pullResult{}, fmt.Errorf("replication: pull %s: %d trailing bytes undecodable", name, len(body)-n)
		}
	}
	res.records = records
	return res, nil
}

// bootstrap fetches the primary's snapshot and installs it locally, leaving
// the tenant at the snapshot's generation. The request runs under its own
// SnapshotTimeout deadline on the timeout-free snapshot client: a large
// tenant's transfer must not be cut off by the long-poll-sized
// Client.Timeout.
func (f *Follower) bootstrap(ft *followTenant) error {
	ctx, cancel := context.WithTimeout(f.ctx, f.opts.SnapshotTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/replicate/%s/snapshot", f.opts.Upstream, ft.name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderEpoch, strconv.FormatUint(f.opts.Epoch.Current(), 10))
	if err := f.opts.Breaker.Allow(); err != nil {
		return fmt.Errorf("replication: snapshot %s: %w", ft.name, err)
	}
	resp, err := f.snapClient.Do(req)
	if err != nil {
		f.opts.Breaker.Failure()
		return err
	}
	f.opts.Breaker.Success()
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return fmt.Errorf("replication: snapshot %s: %w", ft.name, tenant.ErrNotFound)
	case http.StatusMisdirectedRequest:
		return f.fencedByUpstream("snapshot", ft.name, resp)
	default:
		return fmt.Errorf("replication: snapshot %s: upstream status %d", ft.name, resp.StatusCode)
	}
	if err := f.adoptEpoch("snapshot", ft.name, resp); err != nil {
		return err
	}
	var payload struct {
		Seq      uint64           `json:"seq"`
		SeqEpoch uint64           `json:"seq_epoch"`
		Policy   json.RawMessage  `json:"policy"`
		Audit    []storage.Record `json:"audit"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPullBody)).Decode(&payload); err != nil {
		return fmt.Errorf("replication: snapshot %s: decode: %w", ft.name, err)
	}
	if err := f.reg.InstallReplicaSnapshot(ft.name, payload.Policy, payload.Seq, payload.SeqEpoch, payload.Audit); err != nil {
		return err
	}
	ft.update(func() {
		ft.bootstr++
		ft.gen = payload.Seq
		ft.epoch = payload.SeqEpoch
		if payload.Seq > ft.head {
			ft.head = payload.Seq
		}
		ft.haveLocal = true
		ft.healthy = true
		ft.lastOK = time.Now()
		ft.lastErr = ""
	})
	return nil
}

// fencedByUpstream turns a 421 into ErrUpstreamFenced, first adopting the
// epoch the upstream proved exists (a deposed ex-primary answering 421
// still teaches us the current epoch).
func (f *Follower) fencedByUpstream(what, name string, resp *http.Response) error {
	if peer, err := parseEpoch(resp.Header.Get(HeaderEpoch)); err == nil {
		f.opts.Epoch.Observe(peer)
	}
	return fmt.Errorf("replication: %s %s: upstream at epoch %s: %w",
		what, name, resp.Header.Get(HeaderEpoch), ErrUpstreamFenced)
}

// adoptEpoch processes a successful response's epoch header: an epoch above
// ours is adopted durably BEFORE any record or snapshot from the response
// is applied (so local stamps always match the primary's), and an upstream
// behind our own epoch is refused — a deposed primary that somehow still
// answers 200 must not feed us history.
func (f *Follower) adoptEpoch(what, name string, resp *http.Response) error {
	respEpoch, err := parseEpoch(resp.Header.Get(HeaderEpoch))
	if err != nil {
		return fmt.Errorf("replication: %s %s: bad %s header", what, name, HeaderEpoch)
	}
	own := f.opts.Epoch.Current()
	switch {
	case respEpoch < own:
		return fmt.Errorf("replication: %s %s: upstream epoch %d behind ours %d: %w",
			what, name, respEpoch, own, ErrUpstreamFenced)
	case respEpoch > own:
		if _, err := f.opts.Epoch.Observe(respEpoch); err != nil {
			return fmt.Errorf("replication: %s %s: adopt epoch %d: %w", what, name, respEpoch, err)
		}
	}
	return nil
}

// localPosition reads the tenant's local replication position — WAL head
// sequence plus the epoch of the record there — without blocking
// (tenant.IsNotFound when there is no durable local state).
func (f *Follower) localPosition(name string) (uint64, uint64, error) {
	return f.reg.ReplicaPosition(name)
}

// jitter spreads a retry delay over [d/2, 3d/2): deterministic doubling
// alone would reconnect every follower in lockstep after a primary restart
// — a thundering herd aimed at exactly the node that just recovered.
func (f *Follower) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return d/2 + time.Duration(f.rng.Int63n(int64(d)))
}

// localEdges counts the local policy's edges — the follower half of the
// pull checksum.
func (f *Follower) localEdges(name string) (int, error) {
	return f.reg.EdgeCount(name)
}

// sleep blocks for d or until the follower closes.
func (f *Follower) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.ctx.Done():
	}
}

func (ft *followTenant) update(fn func()) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	fn()
}

func (ft *followTenant) hasLocal() bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.haveLocal
}

func (ft *followTenant) position() (uint64, uint64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.gen, ft.epoch
}

func (ft *followTenant) touched() time.Time {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.lastTouch
}

// finishSync concludes the first sync attempt: Ensure unblocks and reads
// the outcome. Later calls only refresh the recorded error.
func (ft *followTenant) finishSync(err error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.syncErr = err
	if !ft.syncDone {
		ft.syncDone = true
		close(ft.synced)
	}
}
