// The fencing epoch: a monotonically increasing cluster-wide counter that
// makes split-brain structurally impossible. Exactly one node mints writes
// per epoch; a promotion advances the epoch durably *before* the new
// primary takes its first write, and every replication exchange and write
// acknowledgment carries the sender's epoch. A node that observes a higher
// epoch than its own has, by construction, been deposed — it demotes on the
// spot (see server) — and a stale-epoch node's pull is answered with a
// fencing rejection or a rewinding bootstrap (see tenant.PullWAL), never
// with records that would extend a forked history.
package replication

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errNilEpoch rejects an Advance on a node without an epoch handle —
// promotion needs durable fencing to be meaningful.
var errNilEpoch = errors.New("replication: no epoch configured")

// Epoch is a node's view of the cluster fencing epoch: a current value plus
// a persistence hook that makes transitions durable before they are
// observable. The zero epoch is the birth epoch of a cluster that has never
// failed over. All methods are safe for concurrent use and on a nil
// receiver (a nil *Epoch reads as a permanently-zero epoch — the
// single-node deployments that predate failover keep working unchanged).
type Epoch struct {
	mu  sync.Mutex
	cur atomic.Uint64
	// persist durably records an adopted epoch (the node-level WAL control
	// record, see storage.SetEpoch); nil keeps the epoch in memory only
	// (tests).
	persist func(uint64) error
}

// NewEpoch builds an epoch handle starting at cur (the recovered durable
// epoch) with the given persistence hook.
func NewEpoch(cur uint64, persist func(uint64) error) *Epoch {
	e := &Epoch{persist: persist}
	e.cur.Store(cur)
	return e
}

// Current reports the node's current epoch.
func (e *Epoch) Current() uint64 {
	if e == nil {
		return 0
	}
	return e.cur.Load()
}

// Advance mints the next epoch — the promotion step. The new value is
// persisted before it becomes observable: an epoch that could vanish in a
// crash would let two nodes mint writes under the same fencing token.
func (e *Epoch) Advance() (uint64, error) {
	if e == nil {
		return 0, errNilEpoch
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	next := e.cur.Load() + 1
	if e.persist != nil {
		if err := e.persist(next); err != nil {
			return e.cur.Load(), err
		}
	}
	e.cur.Store(next)
	return next, nil
}

// Observe adopts v if it exceeds the current epoch (durably, like Advance),
// returning the epoch after the call. Observing an older epoch is a no-op:
// epochs only move forward.
func (e *Epoch) Observe(v uint64) (uint64, error) {
	if e == nil {
		return 0, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.cur.Load()
	if v <= cur {
		return cur, nil
	}
	if e.persist != nil {
		if err := e.persist(v); err != nil {
			return cur, err
		}
	}
	e.cur.Store(v)
	return v, nil
}
