package replication

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// TestReplicatedChurnMultiTenant drives the workload.ReplicatedGen
// multi-node generator against a real topology — one primary, two
// followers, Zipf-skewed tenants — honouring every generated routing
// decision and generation token: writes go to the primary, reads go to the
// designated follower, and a read carrying a token first waits for that
// follower to reach it, then asserts the decision matches the primary's at
// that generation. This is the oracle for the generator's token accounting
// (its assumed generation must equal the primary's actual one) and for
// cross-follower read-your-writes under churn.
func TestReplicatedChurnMultiTenant(t *testing.T) {
	cfg := workload.DefaultReplicated(11)
	cfg.Tenants = 4
	cfg.Roles, cfg.Users = 16, 16
	cfg.SubmitFrac = 0.2
	cfg.TokenFrac = 0.5
	g := workload.NewReplicatedGen(cfg)

	prim := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined, Bootstrap: g.Bootstrap})
	defer prim.Close()
	mux := http.NewServeMux()
	NewSource(prim, SourceOptions{}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	followers := make([]*tenant.Registry, cfg.Followers)
	for i := range followers {
		folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
		defer folReg.Close()
		fol := NewFollower(folReg, FollowerOptions{
			Upstream: ts.URL,
			PollWait: 150 * time.Millisecond,
			Backoff:  20 * time.Millisecond,
		})
		defer fol.Close()
		followers[i] = folReg
		// First touch starts replication of every tenant on every follower.
		for j := 0; j < cfg.Tenants; j++ {
			if err := fol.Ensure(g.TenantName(j)); err != nil {
				t.Fatalf("follower %d ensure %s: %v", i, g.TenantName(j), err)
			}
		}
	}

	const ops = 600
	reads, tokenReads := 0, 0
	for i := 0; i < ops; i++ {
		op := g.Next()
		if op.Submit {
			res, err := prim.Submit(op.Tenant, op.Cmd)
			if err != nil || res.Outcome != command.Applied {
				t.Fatalf("op %d: write %s outcome=%v err=%v", i, op.Tenant, res.Outcome, err)
			}
			// The generator's token accounting must track the primary
			// exactly: its assumed generation is the real one.
			st, err := prim.Stats(op.Tenant)
			if err != nil {
				t.Fatal(err)
			}
			var idx int
			if _, err := fmt.Sscanf(op.Tenant, "r%03d", &idx); err != nil {
				t.Fatal(err)
			}
			if st.Generation != g.Generation(idx) {
				t.Fatalf("op %d: generator thinks %s is at %d, primary at %d",
					i, op.Tenant, g.Generation(idx), st.Generation)
			}
			continue
		}
		reads++
		fol := followers[op.Node]
		if op.MinGeneration > 0 {
			tokenReads++
			gen, ok, err := fol.WaitGeneration(op.Tenant, op.MinGeneration, 10*time.Second)
			if err != nil || !ok {
				t.Fatalf("op %d: follower %d stuck at %d for token %d on %s (err %v)",
					i, op.Node, gen, op.MinGeneration, op.Tenant, err)
			}
		}
		fr, err := fol.Authorize(op.Tenant, op.Cmd)
		if err != nil {
			t.Fatalf("op %d: follower %d authorize %s: %v", i, op.Node, op.Tenant, err)
		}
		if op.MinGeneration > 0 {
			// At or past the token, the follower's decision must match the
			// primary's (churn reads probe the next unapplied grant, which
			// the churn fixture always authorizes).
			pr, err := prim.Authorize(op.Tenant, op.Cmd)
			if err != nil {
				t.Fatal(err)
			}
			if fr.OK != pr.OK {
				t.Fatalf("op %d: follower %d says %v, primary says %v for %s at token %d",
					i, op.Node, fr.OK, pr.OK, op.Tenant, op.MinGeneration)
			}
		}
	}
	if reads == 0 || tokenReads == 0 {
		t.Fatalf("degenerate stream: %d reads, %d with tokens", reads, tokenReads)
	}

	// Every follower converges to the primary's final generations.
	for j := 0; j < cfg.Tenants; j++ {
		name := g.TenantName(j)
		want, err := prim.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, fol := range followers {
			if gen, ok, err := fol.WaitGeneration(name, want.Generation, 10*time.Second); err != nil || !ok {
				t.Fatalf("follower %d stuck at %d on %s, want %d (err %v)", i, gen, name, want.Generation, err)
			}
		}
	}
}
