package replication

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"adminrefine/internal/admission"
	"adminrefine/internal/engine"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// switchableTransport counts round trips and fails them all while fail is
// set — a dead upstream the test can resurrect.
type switchableTransport struct {
	fail  atomic.Bool
	calls atomic.Int64
	base  http.RoundTripper
}

func (t *switchableTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.calls.Add(1)
	if t.fail.Load() {
		return nil, fmt.Errorf("switchable transport: upstream dead")
	}
	return t.base.RoundTrip(req)
}

// With a breaker wired, a dead upstream costs a handful of dials and then
// fast local failures: after the trip, the transport sees only half-open
// probes instead of one connect attempt per backoff tick. When the upstream
// comes back, a probe closes the breaker and replication converges.
func TestFollowerBreakerStopsDialingDeadUpstreamThenRecovers(t *testing.T) {
	prim := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { prim.Close() })
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewSource(prim, SourceOptions{}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	tr := &switchableTransport{base: http.DefaultTransport}
	tr.fail.Store(true)
	br := admission.NewBreaker(admission.BreakerOptions{
		Threshold:   3,
		Cooldown:    100 * time.Millisecond,
		MaxCooldown: 200 * time.Millisecond,
		JitterSeed:  9,
	})
	folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { folReg.Close() })
	fol := NewFollower(folReg, FollowerOptions{
		Upstream:   ts.URL,
		PollWait:   200 * time.Millisecond,
		Backoff:    2 * time.Millisecond,
		SyncWait:   200 * time.Millisecond,
		JitterSeed: 9,
		Client:     &http.Client{Transport: tr, Timeout: 2 * time.Second},
		Breaker:    br,
	})
	t.Cleanup(fol.Close)

	if err := fol.Ensure("alpha"); err == nil {
		t.Fatal("Ensure succeeded against a dead upstream")
	}
	waitFor(t, "breaker to trip", func() bool { return br.Open() })
	if st := br.Stats(); st.Trips == 0 {
		t.Fatalf("breaker stats after trip: %+v", st)
	}

	// While open, the pull loop keeps retrying every few ms but the
	// transport sees only the sparse half-open probes (cooldown >= 50ms
	// after jitter, doubling): a bounded trickle, not a dial storm.
	before := tr.calls.Load()
	time.Sleep(400 * time.Millisecond)
	probes := tr.calls.Load() - before
	if probes > 6 {
		t.Fatalf("%d transport calls in 400ms with the breaker open — it is not gating", probes)
	}

	// Upstream resurrects: the next probe answers, the breaker closes, and
	// the follower converges from where it left off.
	tr.fail.Store(false)
	waitFor(t, "follower to converge after recovery", func() bool {
		if err := fol.Ensure("alpha"); err != nil {
			return false
		}
		st, ok := fol.LagStats("alpha")
		return ok && st.Healthy
	})
	if br.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if st := br.Stats(); st.State != "closed" {
		t.Fatalf("breaker state %q after recovery", st.State)
	}
}
