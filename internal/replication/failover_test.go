package replication

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/fault"
	"adminrefine/internal/model"
	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

func TestEpochHandle(t *testing.T) {
	// A nil handle is the permanently-zero epoch of pre-failover nodes:
	// reads and observations no-op, promotion is refused.
	var nilE *Epoch
	if got := nilE.Current(); got != 0 {
		t.Fatalf("nil epoch reads %d", got)
	}
	if got, err := nilE.Observe(7); got != 0 || err != nil {
		t.Fatalf("nil observe: %d, %v", got, err)
	}
	if _, err := nilE.Advance(); !errors.Is(err, errNilEpoch) {
		t.Fatalf("nil advance: %v, want errNilEpoch", err)
	}

	// Advance persists before the new value becomes observable; a failed
	// persist leaves the epoch unchanged — an epoch that could vanish in a
	// crash would let two nodes mint writes under the same fencing token.
	var persisted []uint64
	fail := errors.New("disk full")
	var persistErr error
	e := NewEpoch(3, func(v uint64) error {
		if persistErr != nil {
			return persistErr
		}
		persisted = append(persisted, v)
		return nil
	})
	if got, err := e.Advance(); got != 4 || err != nil {
		t.Fatalf("advance: %d, %v", got, err)
	}
	persistErr = fail
	if got, err := e.Advance(); !errors.Is(err, fail) || got != 4 {
		t.Fatalf("failed advance returned %d, %v; the epoch must not move", got, err)
	}
	if e.Current() != 4 {
		t.Fatalf("epoch moved to %d past a failed persist", e.Current())
	}
	persistErr = nil

	// Observe adopts only forward, also durably-first.
	if got, err := e.Observe(2); got != 4 || err != nil {
		t.Fatalf("observe backward: %d, %v", got, err)
	}
	if got, err := e.Observe(9); got != 9 || err != nil {
		t.Fatalf("observe forward: %d, %v", got, err)
	}
	persistErr = fail
	if got, err := e.Observe(12); !errors.Is(err, fail) || got != 9 {
		t.Fatalf("failed observe returned %d, %v", got, err)
	}
	want := fmt.Sprint([]uint64{4, 9})
	if fmt.Sprint(persisted) != want {
		t.Fatalf("persisted %v, want %v", persisted, want)
	}
}

// TestEpochDurableInStore closes the loop with the node-level store: an
// advanced epoch survives a reopen (the KindEpoch control record is always
// fsynced), which is what lets a SIGKILLed ex-primary come back knowing it
// was deposed.
func TestEpochDurableInStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), ".node")
	st, _, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEpoch(st.Epoch(), st.SetEpoch)
	if _, err := e.Advance(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Observe(5); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, _, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Epoch(); got != 5 {
		t.Fatalf("recovered epoch %d, want 5", got)
	}
	e2 := NewEpoch(st2.Epoch(), st2.SetEpoch)
	if got, err := e2.Advance(); got != 6 || err != nil {
		t.Fatalf("advance after reopen: %d, %v", got, err)
	}
}

// TestSourceFencesOnHigherPeerEpoch pins the source half of the fencing
// protocol: a request carrying a higher epoch proves the node was deposed —
// it must invoke OnFenced (or adopt the epoch itself) and answer 421 with
// its raised epoch, for both the pull and the snapshot endpoint, before
// shipping a single record.
func TestSourceFencesOnHigherPeerEpoch(t *testing.T) {
	reg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { reg.Close() })
	if err := reg.InstallPolicy("alpha", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}

	epoch := NewEpoch(0, nil)
	var fencedWith []uint64
	src := NewSource(reg, SourceOptions{Epoch: epoch, OnFenced: func(peer uint64) {
		fencedWith = append(fencedWith, peer)
		epoch.Observe(peer)
	}})
	mux := http.NewServeMux()
	src.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	get := func(path, peerEpoch string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if peerEpoch != "" {
			req.Header.Set(HeaderEpoch, peerEpoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// An equal-epoch peer is served.
	if resp := get("/v1/replicate/alpha/pull?after_seq=0", "0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("equal-epoch pull: status %d", resp.StatusCode)
	}

	// A higher-epoch peer demotes the source on the spot: 421 carrying the
	// adopted epoch, OnFenced told which epoch deposed it.
	resp := get("/v1/replicate/alpha/pull?after_seq=0", "3")
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("higher-epoch pull: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderEpoch); got != "3" {
		t.Fatalf("421 carries epoch %q, want the adopted 3", got)
	}
	if fmt.Sprint(fencedWith) != fmt.Sprint([]uint64{3}) {
		t.Fatalf("OnFenced calls: %v", fencedWith)
	}

	// The demoted node keeps refusing even same-epoch peers once serving is
	// off (the server's fence() flips it), on both endpoints.
	src.SetServing(false)
	for _, path := range []string{"/v1/replicate/alpha/pull?after_seq=0", "/v1/replicate/alpha/snapshot"} {
		if resp := get(path, "3"); resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s on demoted node: status %d, want 421", path, resp.StatusCode)
		}
	}

	// A garbled epoch header is the client's fault, not a fencing event.
	if resp := get("/v1/replicate/alpha/pull?after_seq=0", "banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad epoch header: status %d, want 400", resp.StatusCode)
	}
	if len(fencedWith) != 1 {
		t.Fatalf("OnFenced fired again: %v", fencedWith)
	}
}

// TestFollowerRefusesStaleUpstream pins the follower half: a response epoch
// below the follower's own proves the upstream is a deposed ex-primary, and
// the follower must refuse its records (ErrUpstreamFenced) rather than
// extend a fenced history.
func TestFollowerRefusesStaleUpstream(t *testing.T) {
	prim := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { prim.Close() })
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewSource(prim, SourceOptions{Epoch: NewEpoch(0, nil)}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { folReg.Close() })
	fol := NewFollower(folReg, FollowerOptions{
		Upstream: ts.URL,
		PollWait: 100 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
		SyncWait: 2 * time.Second,
		Epoch:    NewEpoch(2, nil), // the follower already lives in epoch 2
	})
	t.Cleanup(fol.Close)

	err := fol.Ensure("alpha")
	if err == nil {
		t.Fatal("follower synced from an upstream two epochs behind it")
	}
	if !IsUpstreamFenced(err) {
		t.Fatalf("ensure error %v, want ErrUpstreamFenced", err)
	}
}

// TestFollowerConvergesThroughFlakyTransport drives replication through a
// fault.Transport that drops requests, severs response bodies mid-transfer
// and injects delays on a seeded schedule — including the very first
// bootstrap round-trips — and asserts the follower still converges to the
// primary's exact state. A failing seed replays bit-for-bit.
func TestFollowerConvergesThroughFlakyTransport(t *testing.T) {
	const roles, users = 16, 16
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prim := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
			t.Cleanup(func() { prim.Close() })
			mux := http.NewServeMux()
			NewSource(prim, SourceOptions{}).Register(mux)
			ts := httptest.NewServer(mux)
			t.Cleanup(ts.Close)

			if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(roles, users)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				if _, err := prim.Submit("alpha", workload.ChurnGrant(i, users, roles)); err != nil {
					t.Fatal(err)
				}
			}

			// Guarantee the bootstrap path itself is hit: the first request
			// drops outright, the second delivers a severed body.
			plan := fault.SeededNetPlan(seed, 5000, 0.2, 0.1, 0.1, 5*time.Millisecond)
			plan.At(0, fault.NetFault{Kind: fault.NetDrop})
			plan.At(1, fault.NetFault{Kind: fault.NetSever, Keep: 25})
			tr := fault.NewTransport(nil, plan)

			folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
			t.Cleanup(func() { folReg.Close() })
			fol := NewFollower(folReg, FollowerOptions{
				Upstream:   ts.URL,
				PollWait:   100 * time.Millisecond,
				Backoff:    5 * time.Millisecond,
				SyncWait:   2 * time.Second,
				Client:     &http.Client{Timeout: 5 * time.Second, Transport: tr},
				JitterSeed: seed,
			})
			t.Cleanup(fol.Close)

			converge := func(want uint64) {
				t.Helper()
				waitFor(t, fmt.Sprintf("generation %d through the flaky transport", want), func() bool {
					fol.Ensure("alpha") // first syncs may fault; the loop retries
					gen, ok, err := folReg.WaitGeneration("alpha", want, 100*time.Millisecond)
					return err == nil && ok && gen >= want
				})
			}
			converge(30)

			// Keep writing while the transport misbehaves.
			for i := 30; i < 60; i++ {
				if _, err := prim.Submit("alpha", workload.ChurnGrant(i, users, roles)); err != nil {
					t.Fatal(err)
				}
			}
			converge(60)

			probes := []command.Command{
				workload.ChurnGrant(61, users, roles),
				command.Grant("nobody", model.User("u0001"), model.Role("c0002")),
			}
			for i, c := range probes {
				pr, err1 := prim.Authorize("alpha", c)
				fr, err2 := folReg.Authorize("alpha", c)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if pr.OK != fr.OK {
					t.Fatalf("probe %d: primary %v, follower %v", i, pr.OK, fr.OK)
				}
			}
			if tr.Step() < 3 {
				t.Fatalf("transport consumed %d request indexes: the fault seam is not wired", tr.Step())
			}
		})
	}
}
