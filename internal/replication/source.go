// Package replication streams per-tenant write-ahead logs from a primary
// rbacd process to follower processes over HTTP — horizontal read fan-out
// for the authorization service. The primary mounts a Source: a long-poll
// pull endpoint framed exactly like the on-disk WAL (storage.EncodeFrame /
// storage.DecodeFrames) plus a snapshot bootstrap endpoint for followers
// that have no local state or fell behind a compaction. Each follower runs a
// Follower: per-tenant pull loops that feed pulled record batches through
// engine.SubmitBatch on a local registry (readers never observe a
// half-applied batch) and persist them to a local WAL, so a SIGKILLed
// follower resumes from its own log.
//
// Consistency is generation-token based, after the paper's generation-
// ordered refinement semantics: every write on the primary has a generation,
// followers apply the same records at the same generations, and a reader
// holding a write's (tenant, generation) token gets read-your-writes on any
// replica by demanding min_generation (wait bounded, else 409) — no global
// coordination, staleness bounded exactly the way the decision cache bounds
// validity.
//
// Wire protocol (mounted under the primary's /v1 mux; every request and
// response carries the sender's fencing epoch in X-Replication-Epoch):
//
//	GET /v1/replicate/{tenant}/pull?after_seq=N&after_epoch=T&wait_ms=M
//	    200: body = WAL frames of the records with seq > N
//	         X-Replication-Head: primary generation
//	         X-Replication-Edges: policy edge count at head (state checksum)
//	         X-Replication-Epoch: primary fencing epoch (follower adopts)
//	    410: the log was compacted past N, or the follower's record at N is
//	         not on the primary's history (after_epoch mismatch — a fork
//	         across a failover) — bootstrap from /snapshot
//	    421: the serving node is not the primary of the follower's epoch
//	         (demoted, fenced, or just deposed by this very request) — the
//	         follower must re-point at the current primary
//	    404: no such tenant
//	GET /v1/replicate/{tenant}/snapshot
//	    200: {"seq":G,"seq_epoch":T,"policy":{...}} — install, then pull
//	         from after_seq=G&after_epoch=T
package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
)

// Header names of the pull response.
const (
	// HeaderHead carries the primary's generation for the tenant, measured
	// on one snapshot together with HeaderEdges.
	HeaderHead = "X-Replication-Head"
	// HeaderEdges carries the policy edge count at head — the cheap state
	// checksum a caught-up follower verifies (see tenant.PullResult.Edges).
	HeaderEdges = "X-Replication-Edges"
	// HeaderEpoch carries the sender's fencing epoch: followers send theirs
	// on every pull/snapshot request, the source answers with its own. A
	// request epoch above the source's proves the source was deposed — it
	// demotes before answering 421 (see SourceOptions.OnFenced). A response
	// epoch above the follower's is adopted durably before any record from
	// that response is applied.
	HeaderEpoch = "X-Replication-Epoch"
)

// SourceOptions configures the primary's log-shipping endpoints.
type SourceOptions struct {
	// MaxWait caps how long one pull may long-poll server-side regardless of
	// the wait_ms the follower asked for (default 30s).
	MaxWait time.Duration
	// MaxBatchBytes caps one pull response's framed payload (default 4 MiB,
	// comfortably under the follower's read limit). A backlog larger than
	// the cap ships across several pulls — the follower re-pulls from its
	// new position immediately — so a response is never truncated mid-frame.
	MaxBatchBytes int
	// Epoch is the node's fencing epoch handle (nil reads as a permanent
	// epoch 0 — the pre-failover deployments).
	Epoch *Epoch
	// OnFenced, when non-nil, is invoked (before the 421 goes out) when a
	// request proves a higher epoch exists: this node was deposed and must
	// demote. The callback adopts the epoch and stops serving writes (see
	// server.Server).
	OnFenced func(peer uint64)
}

// Source serves a registry's per-tenant WALs to pulling followers.
type Source struct {
	reg  *tenant.Registry
	opts SourceOptions
	// serving gates the endpoints: a follower or demoted node keeps them
	// mounted but answers 421 + its epoch, which is exactly the re-point
	// signal a stray puller needs. Promotion flips it on (see server).
	serving atomic.Bool
	// done, when closed, aborts in-flight long-polls: http.Server.Shutdown
	// waits for active handlers but does not cancel their request contexts,
	// so a draining primary must wake its parked pulls itself (see Close).
	done chan struct{}
}

// NewSource builds the log-shipping source over a registry, initially
// serving.
func NewSource(reg *tenant.Registry, opts SourceOptions) *Source {
	if opts.MaxWait <= 0 {
		opts.MaxWait = 30 * time.Second
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 4 << 20
	}
	s := &Source{reg: reg, opts: opts, done: make(chan struct{})}
	s.serving.Store(true)
	return s
}

// SetServing flips whether the endpoints serve (primary) or answer 421
// (follower / demoted node).
func (s *Source) SetServing(on bool) { s.serving.Store(on) }

// Serving reports whether the endpoints currently serve pulls.
func (s *Source) Serving() bool { return s.serving.Load() }

// gate runs the fencing protocol for one request: it demotes this node if
// the peer proves a higher epoch exists, then rejects the request with 421
// unless this node is the serving primary. It reports whether the handler
// may proceed.
func (s *Source) gate(w http.ResponseWriter, r *http.Request) bool {
	if peer, err := parseEpoch(r.Header.Get(HeaderEpoch)); err != nil {
		http.Error(w, "bad "+HeaderEpoch, http.StatusBadRequest)
		return false
	} else if peer > s.opts.Epoch.Current() {
		if s.opts.OnFenced != nil {
			s.opts.OnFenced(peer)
		} else {
			s.opts.Epoch.Observe(peer)
		}
		s.fenced(w)
		return false
	}
	if !s.serving.Load() {
		s.fenced(w)
		return false
	}
	return true
}

// fenced answers 421 Misdirected Request with this node's (possibly just
// raised) epoch — the re-point signal.
func (s *Source) fenced(w http.ResponseWriter) {
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.opts.Epoch.Current(), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	fmt.Fprintf(w, `{"error":"not the primary of epoch %d"}`+"\n", s.opts.Epoch.Current())
}

// parseEpoch decodes an epoch header value ("" = 0, the pre-epoch peers).
func parseEpoch(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}

// Close wakes every in-flight long-poll so a graceful server shutdown is
// not held hostage by parked follower pulls. Idempotent.
func (s *Source) Close() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// Register mounts the replication endpoints on mux.
func (s *Source) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/replicate/{tenant}/pull", s.handlePull)
	mux.HandleFunc("GET /v1/replicate/{tenant}/snapshot", s.handleSnapshot)
}

// SnapshotPayload is the bootstrap document: the tenant's policy at one
// generation (plus the fencing epoch of the record at that generation) and
// the primary's retained audit window. Its shape extends the on-disk
// snapshot.json.
type SnapshotPayload struct {
	Seq uint64 `json:"seq"`
	// SeqEpoch is the fencing epoch of the record at Seq; the follower
	// resumes pulling from after_seq=Seq&after_epoch=SeqEpoch.
	SeqEpoch uint64           `json:"seq_epoch,omitempty"`
	Policy   any              `json:"policy"`
	Audit    []storage.Record `json:"audit,omitempty"`
}

func (s *Source) handlePull(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r) {
		return
	}
	name := r.PathValue("tenant")
	q := r.URL.Query()
	afterSeq, err := strconv.ParseUint(q.Get("after_seq"), 10, 64)
	if err != nil && q.Get("after_seq") != "" {
		http.Error(w, "bad after_seq", http.StatusBadRequest)
		return
	}
	afterEpoch, err := parseEpoch(q.Get("after_epoch"))
	if err != nil {
		http.Error(w, "bad after_epoch", http.StatusBadRequest)
		return
	}
	wait := time.Duration(0)
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad wait_ms", http.StatusBadRequest)
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	if wait > s.opts.MaxWait {
		wait = s.opts.MaxWait
	}
	// The long-poll aborts when the follower disconnects (request context)
	// or the primary drains (Close).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	res, err := s.reg.PullWAL(ctx, name, afterSeq, afterEpoch, wait)
	if err != nil {
		sourceError(w, err)
		return
	}
	w.Header().Set(HeaderHead, strconv.FormatUint(res.Head, 10))
	w.Header().Set(HeaderEdges, strconv.Itoa(res.Edges))
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.opts.Epoch.Current(), 10))
	if res.SnapshotNeeded {
		// The log no longer covers after_seq: the follower must bootstrap.
		w.WriteHeader(http.StatusGone)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	var buf []byte
	for _, rec := range res.Records {
		if buf, err = storage.EncodeFrame(buf, rec); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(buf) >= s.opts.MaxBatchBytes {
			// Whole frames only, never a mid-frame cut: the follower applies
			// this batch and immediately re-pulls the rest from its new
			// position (Head in the header shows it the remaining lag).
			break
		}
	}
	w.Write(buf)
}

func (s *Source) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w, r) {
		return
	}
	name := r.PathValue("tenant")
	seq, seqEpoch, policyJSON, audit, err := s.reg.SnapshotDump(name)
	if err != nil {
		sourceError(w, err)
		return
	}
	auditJSON, err := json.Marshal(audit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(HeaderEpoch, strconv.FormatUint(s.opts.Epoch.Current(), 10))
	w.Header().Set("Content-Type", "application/json")
	// Assemble by hand so the policy JSON passes through byte-exact. The
	// audit window rides along so a bootstrapping follower adopts the
	// primary's trail instead of starting blind (older followers ignore it).
	fmt.Fprintf(w, `{"seq":%d,"seq_epoch":%d,"policy":%s,"audit":%s}`, seq, seqEpoch, policyJSON, auditJSON)
}

func sourceError(w http.ResponseWriter, err error) {
	switch {
	case tenant.IsBadName(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case tenant.IsNotFound(err):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
