package replication

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adminrefine/internal/command"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/tenant"
	"adminrefine/internal/workload"
)

// testPair stands up a primary registry behind an httptest source and a
// follower replicating into its own registry with test-friendly timings.
func testPair(t *testing.T, primOpts tenant.Options) (*tenant.Registry, *tenant.Registry, *Follower, *httptest.Server) {
	t.Helper()
	if primOpts.Dir == "" {
		primOpts.Dir = t.TempDir()
	}
	primOpts.Mode = engine.Refined
	prim := tenant.New(primOpts)
	t.Cleanup(func() { prim.Close() })

	mux := http.NewServeMux()
	NewSource(prim, SourceOptions{}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	t.Cleanup(func() { folReg.Close() })
	fol := NewFollower(folReg, FollowerOptions{
		Upstream: ts.URL,
		PollWait: 200 * time.Millisecond,
		Backoff:  20 * time.Millisecond,
		SyncWait: 5 * time.Second,
	})
	t.Cleanup(fol.Close)
	return prim, folReg, fol, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFollowerReplicatesAndConverges(t *testing.T) {
	prim, folReg, fol, _ := testPair(t, tenant.Options{})
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(16, 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := prim.Submit("alpha", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}

	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	if gen, ok, err := folReg.WaitGeneration("alpha", 20, 5*time.Second); err != nil || !ok {
		t.Fatalf("follower stuck at generation %d (err %v)", gen, err)
	}

	// The long-poll picks up later writes without re-Ensure.
	for i := 20; i < 40; i++ {
		if _, err := prim.Submit("alpha", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if gen, ok, err := folReg.WaitGeneration("alpha", 40, 5*time.Second); err != nil || !ok {
		t.Fatalf("follower stuck at generation %d after more writes (err %v)", gen, err)
	}

	// Identical decisions for every probe, allowed and denied alike.
	probes := []command.Command{
		workload.ChurnGrant(41, 16, 16),
		command.Grant("nobody", model.User("u0001"), model.Role("c0002")),
		command.Revoke("churnadmin", model.User("u0000"), model.Role("c0000")),
	}
	for i, c := range probes {
		pr, err1 := prim.Authorize("alpha", c)
		fr, err2 := folReg.Authorize("alpha", c)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if pr.OK != fr.OK {
			t.Fatalf("probe %d: primary %v follower %v", i, pr.OK, fr.OK)
		}
	}

	lag, ok := fol.LagStats("alpha")
	if !ok {
		t.Fatal("no lag stats for replicated tenant")
	}
	if lag.Generation != 40 || !lag.Healthy {
		t.Fatalf("lag stats %+v, want generation 40 healthy", lag)
	}
}

func TestFollowerBootstrapsPastCompaction(t *testing.T) {
	prim, folReg, fol, _ := testPair(t, tenant.Options{Dir: t.TempDir(), CompactEvery: 4})
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(16, 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if _, err := prim.Submit("alpha", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// The primary compacted past seq 0: a fresh follower must bootstrap.
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	if gen, ok, err := folReg.WaitGeneration("alpha", 11, 5*time.Second); err != nil || !ok {
		t.Fatalf("follower stuck at generation %d (err %v)", gen, err)
	}
	lag, _ := fol.LagStats("alpha")
	if lag.Bootstraps == 0 {
		t.Fatalf("expected a snapshot bootstrap, lag stats %+v", lag)
	}
}

func TestFollowerDetectsGenZeroInstall(t *testing.T) {
	prim, folReg, fol, _ := testPair(t, tenant.Options{})
	// Create the tenant upstream with no policy (a denied submit mints the
	// directory but applies nothing).
	if _, err := prim.Submit("alpha", command.Grant("nobody", model.User("u"), model.Role("r"))); err != nil {
		t.Fatal(err)
	}
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	// Both sides sit at generation 0 with an empty policy. Now the primary
	// provisions a policy without moving the generation — the case pure
	// generation comparison cannot see.
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "edge-checksum resync", func() bool {
		st, err := folReg.Stats("alpha")
		return err == nil && st.Policy.UA > 0
	})
	// And decisions now flow through the installed policy.
	res, err := folReg.Authorize("alpha", workload.ChurnGrant(0, 8, 8))
	if err != nil || !res.OK {
		t.Fatalf("follower authorize after resync: ok=%v err=%v", res.OK, err)
	}
}

func TestFollowerServesReadsWithUpstreamDown(t *testing.T) {
	prim, folReg, fol, ts := testPair(t, tenant.Options{})
	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(16, 16)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := prim.Submit("alpha", workload.ChurnGrant(i, 16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := folReg.WaitGeneration("alpha", 5, 5*time.Second); err != nil || !ok {
		t.Fatal("follower did not converge before upstream drop")
	}

	ts.Close() // upstream gone

	// Reads keep working from the replayed local state and Ensure still
	// admits them: stale but available.
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatalf("Ensure with upstream down: %v", err)
	}
	res, err := folReg.Authorize("alpha", workload.ChurnGrant(5, 16, 16))
	if err != nil || !res.OK {
		t.Fatalf("read with upstream down: ok=%v err=%v", res.OK, err)
	}
	waitFor(t, "unhealthy lag stats", func() bool {
		lag, ok := fol.LagStats("alpha")
		return ok && !lag.Healthy && lag.LastError != ""
	})
}

func TestFollowerRetiresIdleTenants(t *testing.T) {
	prim := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer prim.Close()
	mux := http.NewServeMux()
	NewSource(prim, SourceOptions{}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	folReg := tenant.New(tenant.Options{Dir: t.TempDir(), Mode: engine.Refined})
	defer folReg.Close()
	fol := NewFollower(folReg, FollowerOptions{
		Upstream:  ts.URL,
		PollWait:  50 * time.Millisecond,
		Backoff:   20 * time.Millisecond,
		IdleAfter: 150 * time.Millisecond,
	})
	defer fol.Close()

	if err := prim.InstallPolicy("alpha", workload.ChurnPolicy(8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Submit("alpha", workload.ChurnGrant(0, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := folReg.WaitGeneration("alpha", 1, 5*time.Second); !ok {
		t.Fatal("follower did not converge")
	}

	// With no reads touching the tenant, the pull loop retires itself: the
	// goroutine and its standing long-poll go away.
	waitFor(t, "idle retirement", func() bool {
		_, ok := fol.LagStats("alpha")
		return !ok
	})
	// Local reads still serve, and the next Ensure resumes replication from
	// the durable local position.
	if res, err := folReg.Authorize("alpha", workload.ChurnGrant(1, 8, 8)); err != nil || !res.OK {
		t.Fatalf("read on retired tenant: ok=%v err=%v", res.OK, err)
	}
	if _, err := prim.Submit("alpha", workload.ChurnGrant(1, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := fol.Ensure("alpha"); err != nil {
		t.Fatal(err)
	}
	if gen, ok, err := folReg.WaitGeneration("alpha", 2, 5*time.Second); err != nil || !ok {
		t.Fatalf("resumed follower stuck at %d (err %v)", gen, err)
	}
}

func TestEnsureUnknownTenantIsNotFound(t *testing.T) {
	_, _, fol, _ := testPair(t, tenant.Options{})
	err := fol.Ensure("ghost")
	if !tenant.IsNotFound(err) {
		t.Fatalf("Ensure(ghost) = %v, want not-found", err)
	}
	// The loop retires itself: no lag stats linger for the bogus name.
	waitFor(t, "ghost retirement", func() bool {
		_, ok := fol.LagStats("ghost")
		return !ok
	})
}
