package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"adminrefine/internal/storage"
	"adminrefine/internal/tenant"
)

// CatchUpOptions configures a one-shot migration catch-up (see CatchUp).
type CatchUpOptions struct {
	// Upstream is the source primary's base URL.
	Upstream string
	// Client performs the round trips (default: 30s-timeout client).
	Client *http.Client
	// Epoch is the node's fencing-epoch handle. CatchUp never SENDS an epoch
	// — the source and target are independent primaries, and presenting the
	// target's (possibly higher) epoch would make the source demote itself,
	// a fencing rule meant for rivals within one lineage, not for a
	// migration peer. Response epochs above ours are still adopted durably,
	// so records the target will stamp after the flip never move the
	// tenant's epoch backwards. Nil reads as a permanent epoch 0.
	Epoch *Epoch
	// MaxAttempts bounds transient-error retries (default 3).
	MaxAttempts int
	// Backoff is the delay between retries (default 100ms).
	Backoff time.Duration
}

func (o CatchUpOptions) withDefaults() CatchUpOptions {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// CatchUp replicates one tenant from opts.Upstream into reg until the local
// copy reaches the source's head, returning the generation it stopped at —
// the target half of a live migration. It reuses the replication wire
// protocol (snapshot bootstrap + pull) but runs to completion instead of
// looping forever: a pull answering "no records, head == local generation,
// edge counts match" ends it. The migration flip protocol calls it twice —
// once unfenced for the bulk transfer, once after the source fenced the
// tenant's writes, when the head is frozen and the returned generation is
// exactly the value the source verifies before flipping placement.
func CatchUp(ctx context.Context, reg *tenant.Registry, name string, opts CatchUpOptions) (uint64, error) {
	opts = opts.withDefaults()
	gen, epoch, err := reg.ReplicaPosition(name)
	haveLocal := err == nil
	if err != nil && !tenant.IsNotFound(err) {
		return 0, err
	}
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("replication: catch up %s: %w", name, err)
		}
		done, newGen, newEpoch, err := catchUpStep(ctx, reg, name, gen, epoch, haveLocal, opts)
		if err != nil {
			if tenant.IsNotFound(err) || IsUpstreamFenced(err) {
				return 0, err // no amount of retrying fixes these
			}
			attempts++
			if attempts >= opts.MaxAttempts {
				return 0, err
			}
			t := time.NewTimer(opts.Backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, ctx.Err()
			}
			continue
		}
		attempts = 0
		gen, epoch, haveLocal = newGen, newEpoch, true
		if done {
			return gen, nil
		}
	}
}

// catchUpStep performs one replication round: a snapshot bootstrap when
// there is no local state (or the source signalled a gap/fork), else one
// immediate pull + apply. done reports the caught-up-and-verified state.
func catchUpStep(ctx context.Context, reg *tenant.Registry, name string, gen, epoch uint64, haveLocal bool, opts CatchUpOptions) (done bool, newGen, newEpoch uint64, err error) {
	if !haveLocal {
		newGen, newEpoch, err = catchUpBootstrap(ctx, reg, name, opts)
		return false, newGen, newEpoch, err
	}
	url := fmt.Sprintf("%s/v1/replicate/%s/pull?after_seq=%d&after_epoch=%d&wait_ms=0",
		opts.Upstream, name, gen, epoch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, gen, epoch, err
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return false, gen, epoch, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusGone:
	case http.StatusNotFound:
		return false, gen, epoch, fmt.Errorf("replication: catch up %s: %w", name, tenant.ErrNotFound)
	case http.StatusMisdirectedRequest:
		return false, gen, epoch, fmt.Errorf("replication: catch up %s: source at epoch %s: %w",
			name, resp.Header.Get(HeaderEpoch), ErrUpstreamFenced)
	default:
		return false, gen, epoch, fmt.Errorf("replication: catch up %s: source status %d", name, resp.StatusCode)
	}
	if err := catchUpAdoptEpoch(name, resp, opts.Epoch); err != nil {
		return false, gen, epoch, err
	}
	head, err := strconv.ParseUint(resp.Header.Get(HeaderHead), 10, 64)
	if err != nil {
		return false, gen, epoch, fmt.Errorf("replication: catch up %s: bad %s header", name, HeaderHead)
	}
	if resp.StatusCode == http.StatusGone {
		newGen, newEpoch, err = catchUpBootstrap(ctx, reg, name, opts)
		return false, newGen, newEpoch, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPullBody))
	if err != nil {
		return false, gen, epoch, fmt.Errorf("replication: catch up %s: read body: %w", name, err)
	}
	_, records := storage.DecodeFrames(body)
	if len(records) == 0 {
		if gen != head {
			// The source served nothing yet claims a different head — a
			// fresh compaction window; bootstrap resolves it.
			newGen, newEpoch, err = catchUpBootstrap(ctx, reg, name, opts)
			return false, newGen, newEpoch, err
		}
		// Caught up; run the same state checksum the steady-state follower
		// uses (generation equality alone misses a policy installed at
		// generation 0 after an empty bootstrap).
		if edges, err := strconv.Atoi(resp.Header.Get(HeaderEdges)); err == nil && edges >= 0 {
			if local, err := reg.EdgeCount(name); err == nil && local != edges {
				newGen, newEpoch, err = catchUpBootstrap(ctx, reg, name, opts)
				return false, newGen, newEpoch, err
			}
		}
		return true, gen, epoch, nil
	}
	newGen, err = reg.ApplyReplicated(name, records)
	if err != nil {
		if tenant.IsOutOfSync(err) {
			newGen, newEpoch, err = catchUpBootstrap(ctx, reg, name, opts)
			return false, newGen, newEpoch, err
		}
		return false, gen, epoch, err
	}
	newEpoch = epoch
	for i := len(records) - 1; i >= 0; i-- {
		if r := records[i]; !r.IsAudit() && uint64(r.Seq) <= newGen {
			newEpoch = r.Epoch
			break
		}
	}
	return false, newGen, newEpoch, nil
}

// catchUpBootstrap installs the source's snapshot locally and returns the
// position it covers.
func catchUpBootstrap(ctx context.Context, reg *tenant.Registry, name string, opts CatchUpOptions) (uint64, uint64, error) {
	url := fmt.Sprintf("%s/v1/replicate/%s/snapshot", opts.Upstream, name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, 0, fmt.Errorf("replication: catch up %s: %w", name, tenant.ErrNotFound)
	case http.StatusMisdirectedRequest:
		return 0, 0, fmt.Errorf("replication: catch up %s: source at epoch %s: %w",
			name, resp.Header.Get(HeaderEpoch), ErrUpstreamFenced)
	default:
		return 0, 0, fmt.Errorf("replication: catch up %s: source status %d", name, resp.StatusCode)
	}
	if err := catchUpAdoptEpoch(name, resp, opts.Epoch); err != nil {
		return 0, 0, err
	}
	var payload struct {
		Seq      uint64           `json:"seq"`
		SeqEpoch uint64           `json:"seq_epoch"`
		Policy   json.RawMessage  `json:"policy"`
		Audit    []storage.Record `json:"audit"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPullBody)).Decode(&payload); err != nil {
		return 0, 0, fmt.Errorf("replication: catch up %s: decode snapshot: %w", name, err)
	}
	if err := reg.InstallReplicaSnapshot(name, payload.Policy, payload.Seq, payload.SeqEpoch, payload.Audit); err != nil {
		return 0, 0, err
	}
	return payload.Seq, payload.SeqEpoch, nil
}

// catchUpAdoptEpoch adopts a response epoch above our own durably before any
// of the response is applied. Unlike the steady-state follower it never
// refuses a source behind our epoch: source and target are separate
// lineages, and placement-version CAS — not epochs — fences the migration.
func catchUpAdoptEpoch(name string, resp *http.Response, epoch *Epoch) error {
	respEpoch, err := parseEpoch(resp.Header.Get(HeaderEpoch))
	if err != nil {
		return fmt.Errorf("replication: catch up %s: bad %s header", name, HeaderEpoch)
	}
	if respEpoch > epoch.Current() {
		if _, err := epoch.Observe(respEpoch); err != nil {
			return fmt.Errorf("replication: catch up %s: adopt epoch %d: %w", name, respEpoch, err)
		}
	}
	return nil
}
