// Package domains implements the role-graph administrative-domains baseline
// of Wang & Osborn (DBSec 2003), cited in the paper's introduction: the role
// graph is partitioned into administrative domains, each owned by exactly
// one administrator role; an administrator may modify precisely the roles of
// their own domain (and, transitively, of domains nested inside it).
package domains

import (
	"fmt"
	"sort"

	"adminrefine/internal/policy"
)

// Domain is one administrative domain: an owner role and the set of member
// roles it administers. Domains may nest via Parent.
type Domain struct {
	Name    string
	Owner   string
	Members map[string]struct{}
	Parent  string // empty for the root domain
}

// System is a partition of a policy's roles into administrative domains.
type System struct {
	Policy  *policy.Policy
	domains map[string]*Domain
	// roleDomain maps each role to the domain containing it.
	roleDomain map[string]string
}

// NewSystem creates an empty partition over the policy.
func NewSystem(p *policy.Policy) *System {
	return &System{
		Policy:     p,
		domains:    make(map[string]*Domain),
		roleDomain: make(map[string]string),
	}
}

// AddDomain declares a domain. The owner need not be a member.
func (s *System) AddDomain(name, owner, parent string, members ...string) error {
	if _, dup := s.domains[name]; dup {
		return fmt.Errorf("domains: duplicate domain %q", name)
	}
	d := &Domain{Name: name, Owner: owner, Parent: parent, Members: make(map[string]struct{})}
	for _, m := range members {
		if prev, taken := s.roleDomain[m]; taken {
			return fmt.Errorf("domains: role %q already in domain %q", m, prev)
		}
		d.Members[m] = struct{}{}
		s.roleDomain[m] = name
	}
	s.domains[name] = d
	return nil
}

// Validate checks that every role of the policy belongs to exactly one
// domain and that parents exist.
func (s *System) Validate() error {
	for _, r := range s.Policy.Roles() {
		if _, ok := s.roleDomain[r]; !ok {
			return fmt.Errorf("domains: role %q belongs to no domain", r)
		}
	}
	for _, d := range s.domains {
		if d.Parent != "" {
			if _, ok := s.domains[d.Parent]; !ok {
				return fmt.Errorf("domains: domain %q has unknown parent %q", d.Name, d.Parent)
			}
		}
	}
	return nil
}

// DomainOf returns the domain containing the role.
func (s *System) DomainOf(role string) (*Domain, bool) {
	name, ok := s.roleDomain[role]
	if !ok {
		return nil, false
	}
	return s.domains[name], true
}

// Administers reports whether the actor may administer the role: some role
// the actor can activate must own the role's domain or one of its ancestor
// domains.
func (s *System) Administers(actor, role string) bool {
	d, ok := s.DomainOf(role)
	if !ok {
		return false
	}
	owners := map[string]struct{}{}
	for cur := d; cur != nil; {
		owners[cur.Owner] = struct{}{}
		if cur.Parent == "" {
			break
		}
		cur = s.domains[cur.Parent]
	}
	for _, r := range s.Policy.RolesActivatableBy(actor) {
		if _, ok := owners[r]; ok {
			return true
		}
	}
	return false
}

// AssignUser performs a domain-checked user assignment.
func (s *System) AssignUser(actor, user, role string) error {
	if !s.Administers(actor, role) {
		return fmt.Errorf("domains: %s does not administer %s", actor, role)
	}
	s.Policy.Assign(user, role)
	return nil
}

// RevokeUser performs a domain-checked user revocation.
func (s *System) RevokeUser(actor, user, role string) error {
	if !s.Administers(actor, role) {
		return fmt.Errorf("domains: %s does not administer %s", actor, role)
	}
	s.Policy.Deassign(user, role)
	return nil
}

// Domains lists the declared domains, sorted by name.
func (s *System) Domains() []*Domain {
	out := make([]*Domain, 0, len(s.domains))
	for _, d := range s.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
