package domains

import (
	"testing"

	"adminrefine/internal/policy"
)

// figure2Domains partitions the Figure 2 roles into a security domain (SO,
// HR) owned by SO and a medical domain owned by staff, nested under it.
func figure2Domains(t *testing.T) *System {
	t.Helper()
	s := NewSystem(policy.Figure2())
	if err := s.AddDomain("security", "SO", "", "SO", "HR"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDomain("medical", "staff", "security",
		"staff", "nurse", "prntusr", "dbusr1", "dbusr2", "dbusr3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDomainPartition(t *testing.T) {
	s := figure2Domains(t)
	d, ok := s.DomainOf("nurse")
	if !ok || d.Name != "medical" {
		t.Fatalf("DomainOf(nurse) = %v, %v", d, ok)
	}
	if _, ok := s.DomainOf("ghost"); ok {
		t.Fatal("unknown role has a domain")
	}
	if got := len(s.Domains()); got != 2 {
		t.Fatalf("domains = %d", got)
	}
}

func TestDuplicateAndOverlapRejected(t *testing.T) {
	s := NewSystem(policy.Figure2())
	if err := s.AddDomain("a", "SO", "", "SO"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDomain("a", "SO", ""); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	if err := s.AddDomain("b", "HR", "", "SO"); err == nil {
		t.Fatal("overlapping membership accepted")
	}
}

func TestValidateCompleteness(t *testing.T) {
	s := NewSystem(policy.Figure2())
	if err := s.AddDomain("partial", "SO", "", "SO", "HR"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil {
		t.Fatal("partial partition validated")
	}
	s2 := NewSystem(policy.Figure2())
	if err := s2.AddDomain("orphan", "SO", "missing-parent", "SO"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err == nil {
		t.Fatal("unknown parent validated")
	}
}

func TestAdministers(t *testing.T) {
	s := figure2Domains(t)
	// Diana activates staff, which owns the medical domain.
	if !s.Administers(policy.UserDiana, "nurse") {
		t.Error("diana does not administer nurse")
	}
	// Alice's SO owns security, the PARENT of medical: nested authority.
	if !s.Administers(policy.UserAlice, "nurse") {
		t.Error("alice does not administer the nested medical domain")
	}
	// Jane (HR) owns nothing.
	if s.Administers(policy.UserJane, "nurse") {
		t.Error("jane administers nurse")
	}
	if s.Administers(policy.UserJane, "ghost") {
		t.Error("unknown role administered")
	}
}

func TestAssignRevoke(t *testing.T) {
	s := figure2Domains(t)
	if err := s.AssignUser(policy.UserDiana, policy.UserBob, "nurse"); err != nil {
		t.Fatal(err)
	}
	if !s.Policy.CanActivate(policy.UserBob, "nurse") {
		t.Fatal("assignment ineffective")
	}
	if err := s.RevokeUser(policy.UserDiana, policy.UserBob, "nurse"); err != nil {
		t.Fatal(err)
	}
	if s.Policy.CanActivate(policy.UserBob, "nurse") {
		t.Fatal("revocation ineffective")
	}
	if err := s.AssignUser(policy.UserJane, policy.UserBob, "nurse"); err == nil {
		t.Fatal("unauthorized assignment succeeded")
	}
}
