package session

import (
	"fmt"
	"sync"
	"testing"

	"adminrefine/internal/command"
	"adminrefine/internal/constraints"
	"adminrefine/internal/engine"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// hospitalFixture is Figure 1 plus a root administrator holding the strict
// grant/revoke privileges over Diana's assignments, so tests can mutate UA
// through the transition function (Definition 5 requires held privileges).
func hospitalFixture(t *testing.T) *policy.Policy {
	t.Helper()
	p := policy.Figure1()
	p.Assign("root", "admins")
	// eve holds exactly one path to her privileges (unlike diana, who
	// reaches nurse through staff as well): the clean revocation probe.
	p.Assign("eve", policy.RoleNurse)
	for _, user := range []string{policy.UserDiana, "eve"} {
		for _, role := range []string{policy.RoleNurse, policy.RoleStaff} {
			for _, priv := range []model.Privilege{
				model.Grant(model.User(user), model.Role(role)),
				model.Revoke(model.User(user), model.Role(role)),
			} {
				if _, err := p.GrantPrivilege("admins", priv); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return p
}

// oracle recomputes the check from first principles: some activated role
// must be activatable and reach the privilege.
func oracle(pol *policy.Policy, user string, roles []string, perm model.Privilege) bool {
	for _, r := range roles {
		if pol.CanActivate(user, r) && pol.Reaches(model.Role(r), perm) {
			return true
		}
	}
	return false
}

func checkAgainstOracle(t *testing.T, e *engine.Engine, tbl *Table, s *Session, perms []model.UserPrivilege) {
	t.Helper()
	snap := e.Snapshot()
	defer snap.Close()
	for _, perm := range perms {
		got, err := tbl.Check(snap, s.ID, perm)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle(snap.Policy(), s.User, s.Roles(), perm)
		if got != want {
			t.Fatalf("Check(%s) = %v, oracle %v (roles %v, gen %d)", perm, got, want, s.Roles(), snap.Generation())
		}
	}
}

var probePerms = []model.UserPrivilege{
	policy.PermReadT1, policy.PermReadT2, policy.PermWriteT3,
	policy.PermPrntBlack, policy.PermPrntColor,
	model.Perm("no", "such"),
}

func TestSessionLifecycle(t *testing.T) {
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{})
	snap := e.Snapshot()
	defer snap.Close()

	if _, err := tbl.Create(snap, "", nil); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleSO}); err == nil {
		t.Fatal("unactivatable role accepted at create")
	}
	s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Roles(); len(got) != 1 || got[0] != policy.RoleNurse {
		t.Fatalf("roles = %v", got)
	}
	if err := tbl.Activate(snap, s.ID, policy.RoleSO); err == nil {
		t.Fatal("diana activated SO")
	}
	if err := tbl.Activate(snap, s.ID, policy.RoleStaff); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Deactivate(s.ID, policy.RoleSO); err == nil {
		t.Fatal("deactivated an inactive role")
	}
	if err := tbl.Deactivate(s.ID, policy.RoleStaff); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Check(snap, s.ID+99, policy.PermReadT1); err == nil {
		t.Fatal("check on unknown session")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Drop(s.ID); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Drop(s.ID); err == nil {
		t.Fatal("double drop")
	}
}

// TestCheckTracksPolicyChurn drives activations, grants and revocations and
// asserts Check stays verdict-identical to the recomputed oracle after every
// mutation — the floors/bitset invalidation contract.
func TestCheckTracksPolicyChurn(t *testing.T) {
	for _, cache := range []int{0, -1} {
		t.Run(fmt.Sprintf("cacheSlots=%d", cache), func(t *testing.T) {
			e := engine.New(hospitalFixture(t), engine.Strict)
			tbl := NewTable(Options{CacheSlots: cache})
			snap := e.Snapshot()
			s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse})
			snap.Close()
			if err != nil {
				t.Fatal(err)
			}

			checkAgainstOracle(t, e, tbl, s, probePerms)
			// Repeat on the warm path (cache + bitset hits).
			checkAgainstOracle(t, e, tbl, s, probePerms)

			// Activate staff: the session gains write t3.
			snap = e.Snapshot()
			if err := tbl.Activate(snap, s.ID, policy.RoleStaff); err != nil {
				t.Fatal(err)
			}
			snap.Close()
			checkAgainstOracle(t, e, tbl, s, probePerms)

			// Revoke diana's staff assignment through the transition
			// function: the activated role silently stops contributing.
			res := e.Submit(command.Revoke("root", model.User(policy.UserDiana), model.Role(policy.RoleStaff)))
			if res.Outcome != command.Applied {
				t.Fatalf("revoke: %v", res.Outcome)
			}
			checkAgainstOracle(t, e, tbl, s, probePerms)

			// Re-grant it: positive verdicts must reappear (negFloor moved).
			res = e.Submit(command.Grant("root", model.User(policy.UserDiana), model.Role(policy.RoleStaff)))
			if res.Outcome != command.Applied {
				t.Fatalf("grant: %v", res.Outcome)
			}
			checkAgainstOracle(t, e, tbl, s, probePerms)

			// Deactivate staff again: verdicts keyed under the old epoch
			// must not leak.
			if err := tbl.Deactivate(s.ID, policy.RoleStaff); err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, e, tbl, s, probePerms)
		})
	}
}

// TestCheckStaleSnapshotStaysConsistent pins an old snapshot across a
// revocation: the old snapshot must keep answering at its own generation
// (allowed), while a fresh snapshot sees the revocation.
func TestCheckStaleSnapshotStaysConsistent(t *testing.T) {
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{})
	old := e.Snapshot()
	defer old.Close()
	s, err := tbl.Create(old, "eve", []string{policy.RoleNurse})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := tbl.Check(old, s.ID, policy.PermReadT1); !ok {
		t.Fatal("nurse cannot read t1")
	}
	res := e.Submit(command.Revoke("root", model.User("eve"), model.Role(policy.RoleNurse)))
	if res.Outcome != command.Applied {
		t.Fatalf("revoke: %v", res.Outcome)
	}
	fresh := e.Snapshot()
	defer fresh.Close()
	if ok, _ := tbl.Check(fresh, s.ID, policy.PermReadT1); ok {
		t.Fatal("revoked role still contributes on the fresh snapshot")
	}
	// The pinned snapshot still serves its own generation's verdict.
	if ok, _ := tbl.Check(old, s.ID, policy.PermReadT1); !ok {
		t.Fatal("pinned snapshot lost its verdict after the revocation")
	}
}

func TestDSDConstraintsGuardActivation(t *testing.T) {
	cons, err := constraints.NewSet(constraints.Constraint{
		Name: "nurse-staff", Kind: constraints.DSD,
		Roles: []string{policy.RoleNurse, policy.RoleStaff}, N: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{Constraints: cons})
	snap := e.Snapshot()
	defer snap.Close()
	if _, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse, policy.RoleStaff}); err == nil {
		t.Fatal("create violated DSD")
	}
	s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Activate(snap, s.ID, policy.RoleStaff); err == nil {
		t.Fatal("activation violated DSD")
	}
	if err := tbl.Deactivate(s.ID, policy.RoleNurse); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Activate(snap, s.ID, policy.RoleStaff); err != nil {
		t.Fatalf("activation after deactivate: %v", err)
	}
}

// TestUpdateIsAtomic pins the transactional contract of the role-set
// update: a rejected batch (invalid role, DSD veto) must leave the session
// exactly as it was — no partially applied activations.
func TestUpdateIsAtomic(t *testing.T) {
	cons, err := constraints.NewSet(constraints.Constraint{
		Name: "nurse-staff", Kind: constraints.DSD,
		Roles: []string{policy.RoleNurse, policy.RoleStaff}, N: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{Constraints: cons})
	snap := e.Snapshot()
	defer snap.Close()
	s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse})
	if err != nil {
		t.Fatal(err)
	}
	// First role would be fine, second is unactivatable: nothing applies.
	if _, err := tbl.Update(snap, s.ID, []string{policy.RoleStaff, policy.RoleSO}, nil); err == nil {
		t.Fatal("update with an unactivatable role accepted")
	}
	if got := s.Roles(); len(got) != 1 || got[0] != policy.RoleNurse {
		t.Fatalf("roles after rejected update = %v (partial apply)", got)
	}
	// DSD veto on the proposed final set: still nothing applies.
	if _, err := tbl.Update(snap, s.ID, []string{policy.RoleStaff}, nil); err == nil {
		t.Fatal("update violating DSD accepted")
	}
	if got := s.Roles(); len(got) != 1 || got[0] != policy.RoleNurse {
		t.Fatalf("roles after DSD-vetoed update = %v", got)
	}
	// Swapping nurse out while staff comes in passes the DSD pair — the
	// whole point of evaluating constraints on the final proposed set.
	if _, err := tbl.Update(snap, s.ID, []string{policy.RoleStaff}, []string{policy.RoleNurse}); err != nil {
		t.Fatalf("swap update: %v", err)
	}
	if got := s.Roles(); len(got) != 1 || got[0] != policy.RoleStaff {
		t.Fatalf("roles after swap = %v", got)
	}
	// Unknown deactivation rejects without touching the activations.
	if _, err := tbl.Update(snap, s.ID, []string{policy.RoleNurse}, []string{policy.RoleSO}); err == nil {
		t.Fatal("update deactivating an inactive role accepted")
	}
	if got := s.Roles(); len(got) != 1 || got[0] != policy.RoleStaff {
		t.Fatalf("roles after rejected deactivation = %v", got)
	}
}

func TestMaxSessions(t *testing.T) {
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{MaxSessions: 2})
	snap := e.Snapshot()
	defer snap.Close()
	for i := 0; i < 2; i++ {
		if _, err := tbl.Create(snap, policy.UserDiana, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Create(snap, policy.UserDiana, nil); err == nil {
		t.Fatal("table over capacity")
	}
	if n := tbl.Drain(); n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	if _, err := tbl.Create(snap, policy.UserDiana, nil); err != nil {
		t.Fatalf("create after drain: %v", err)
	}
}

func TestRegistryPerTenantTables(t *testing.T) {
	r := NewRegistry(Options{})
	a, b := r.Table("a"), r.Table("b")
	if a == b {
		t.Fatal("tenants share a table")
	}
	if got := r.Table("a"); got != a {
		t.Fatal("table not cached")
	}
	if _, ok := r.Peek("c"); ok {
		t.Fatal("Peek minted a table")
	}
	e := engine.New(hospitalFixture(t), engine.Strict)
	snap := e.Snapshot()
	defer snap.Close()
	if _, err := a.Create(snap, policy.UserDiana, nil); err != nil {
		t.Fatal(err)
	}
	if r.Sessions() != 1 {
		t.Fatalf("Sessions = %d", r.Sessions())
	}
	if n := r.DrainAll(); n != 1 {
		t.Fatalf("DrainAll = %d", n)
	}
}

// TestCheckAllocs pins the fast-path contract: a warm check allocates
// nothing, with and without the verdict cache (the compiled-bitset path must
// be allocation-free on its own).
func TestCheckAllocs(t *testing.T) {
	for _, cache := range []int{0, -1} {
		t.Run(fmt.Sprintf("cacheSlots=%d", cache), func(t *testing.T) {
			e := engine.New(hospitalFixture(t), engine.Strict)
			tbl := NewTable(Options{CacheSlots: cache})
			snap := e.Snapshot()
			defer snap.Close()
			s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse})
			if err != nil {
				t.Fatal(err)
			}
			// Box the privilege once, outside the measured loop: the
			// interface conversion is the caller's allocation, exactly like
			// the command slabs of the authorize benchmarks.
			var perm model.Privilege = policy.PermReadT1
			for i := 0; i < 3; i++ { // warm: intern, fingerprint, compile
				if ok, err := tbl.Check(snap, s.ID, perm); err != nil || !ok {
					t.Fatalf("warm check: %v %v", ok, err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				ok, err := tbl.Check(snap, s.ID, perm)
				if err != nil || !ok {
					t.Fatal("check failed")
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Check allocates %v per op, want 0", allocs)
			}
		})
	}
}

// TestCheckConcurrentChurn hammers Check from many goroutines while a
// writer grants and revokes the contributing assignment — the -race pass
// over the lock-free structures, with a quiesced exactness check at the end.
func TestCheckConcurrentChurn(t *testing.T) {
	e := engine.New(hospitalFixture(t), engine.Strict)
	tbl := NewTable(Options{})
	snap := e.Snapshot()
	s, err := tbl.Create(snap, policy.UserDiana, []string{policy.RoleNurse, policy.RoleStaff})
	snap.Close()
	if err != nil {
		t.Fatal(err)
	}

	const iters = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				for _, perm := range probePerms {
					if _, err := tbl.Check(snap, s.ID, perm); err != nil {
						t.Error(err)
						snap.Close()
						return
					}
				}
				snap.Close()
			}
		}()
	}
	for i := 0; i < iters; i++ {
		op := command.Revoke
		if i%2 == 1 {
			op = command.Grant
		}
		res := e.Submit(op("root", model.User(policy.UserDiana), model.Role(policy.RoleStaff)))
		if res.Outcome != command.Applied {
			t.Fatalf("churn %d: %v", i, res.Outcome)
		}
	}
	close(stop)
	wg.Wait()
	checkAgainstOracle(t, e, tbl, s, probePerms)
}
