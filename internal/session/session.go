// Package session implements the serving-stack refactor of the reference
// monitor's session concern (paper §2–3): per-tenant, node-local session
// tables with selective role activation, and a zero-allocation access-check
// fast path over engine snapshots.
//
// A Table owns the sessions of one tenant on one node. Sessions are
// node-local runtime state (they are not replicated — audit and policy are;
// see internal/storage and internal/replication): a client creates its
// session on the replica it reads from, exactly like a database connection.
//
// The access-check fast path has two layers, both riding the engine's
// decision-cache invalidation machinery (internal/decision):
//
//   - A verdict cache: each (session, privilege) pair checked gets a
//     table-unique check fingerprint, and the verdict computed at engine
//     generation G is stored in a decision.Cache. Validity is decided
//     reader-side against the snapshot's posFloor/negFloor watermarks — an
//     allowed check survives arbitrary grant-only churn, one revocation
//     invalidates everything in O(1) — and a session's activation change
//     abandons its fingerprints wholesale (a fresh fingerprint map means
//     stale verdicts are simply never looked up again).
//   - A compiled role bitset: a session's activated roles, filtered by
//     current activatability (u →φ r), are compiled into a bitset over graph
//     vertex ids — the union of the roles' reachable sets. A check is then
//     one privilege-id → vertex-id table hit and one bit test. The bitset is
//     bound to one policy materialisation (vertex ids are per-instance) and
//     revalidated against the same floors: set bits survive grants, clear
//     bits survive only a mutation-free window.
//
// Both layers are allocation-free in steady state; compiles and fingerprint
// assignment are amortised slow paths. Constraint sets guard activations
// (DSD) here, while SSD guards ride the tenant write path — see
// internal/constraints and tenant.Options.Constraints.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"adminrefine/internal/command"
	"adminrefine/internal/constraints"
	"adminrefine/internal/decision"
	"adminrefine/internal/engine"
	"adminrefine/internal/graph"
	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// DefaultMaxSessions caps a table's live sessions unless configured
// otherwise: sessions are node-local RAM, so a bound keeps a misbehaving
// client from growing the table without end.
const DefaultMaxSessions = 1 << 16

// ErrTableFull marks a create refused by the MaxSessions bound — transient
// capacity pressure, not an authorization denial; transports map it to a
// retryable status (see internal/server).
var ErrTableFull = errors.New("session table at capacity")

// IsTableFull reports whether err is the MaxSessions capacity refusal.
func IsTableFull(err error) bool { return errors.Is(err, ErrTableFull) }

// ErrNoSession marks an operation against a session id this table never
// issued (or already dropped) — an addressing miss, not an authorization
// denial; transports map it to 404.
var ErrNoSession = errors.New("no such session")

// IsNoSession reports whether err is an unknown-session miss.
func IsNoSession(err error) bool { return errors.Is(err, ErrNoSession) }

// Options configures a Table (and, through a Registry, every table).
type Options struct {
	// Constraints optionally guards role activations (DSD). SSD constraints
	// belong on the write path (tenant.Options.Constraints), not here.
	Constraints *constraints.Set
	// CacheSlots sizes the check verdict cache (rounded up to a power of
	// two). 0 uses decision.DefaultSlots; negative disables caching.
	CacheSlots int
	// MaxSessions bounds live sessions per table (0 = DefaultMaxSessions;
	// negative = unlimited).
	MaxSessions int
}

// Table is one tenant's node-local session table. All methods are safe for
// concurrent use; Check is lock-free and allocation-free in steady state.
type Table struct {
	cons  atomic.Pointer[constraints.Set]
	cache *decision.Cache
	// interner assigns dense privilege ids at the check boundary (identity,
	// not hash: collisions are impossible by construction).
	interner *command.Interner
	// nextFP allocates table-unique check fingerprints; 0 is the cache's
	// empty-slot sentinel, so allocation starts at 1.
	nextFP      atomic.Uint32
	maxSessions int

	nextID   atomic.Uint64
	count    atomic.Int64
	sessions sync.Map // uint64 -> *Session

	// vids caches privilege-id → graph-vertex-id per policy materialisation
	// (vertex ids are per-instance: Policy.Clone re-interns in map order).
	vids atomic.Pointer[vidTable]
	vmu  sync.Mutex // serialises vidTable replacement/growth

	checks   atomic.Uint64
	compiles atomic.Uint64
}

// NewTable builds an empty session table.
func NewTable(opts Options) *Table {
	slots := opts.CacheSlots
	if slots == 0 {
		slots = decision.DefaultSlots
	}
	max := opts.MaxSessions
	if max == 0 {
		max = DefaultMaxSessions
	}
	t := &Table{
		cache:       decision.New(slots),
		interner:    command.NewInterner(),
		maxSessions: max,
	}
	t.cons.Store(opts.Constraints)
	return t
}

// SetConstraints installs (or clears, with nil) the DSD activation guard.
func (t *Table) SetConstraints(cons *constraints.Set) { t.cons.Store(cons) }

// Session is one user session with an explicitly activated role set.
// Sessions are owned by their Table; read accessors are safe for concurrent
// use.
type Session struct {
	// ID is the table-unique session identifier.
	ID uint64
	// User owns the session.
	User string
	t    *Table

	mu    sync.Mutex // guards roles, epoch bumps, fp assignment
	roles map[string]struct{}

	// view is the compiled role bitset; nil until the first check compiles
	// it, reset on every activation change.
	view atomic.Pointer[view]
	// fps maps privilege ids to this session's check fingerprints; replaced
	// wholesale on activation change, which orphans every cached verdict.
	fps atomic.Pointer[fpMap]
}

type fpMap struct {
	m map[command.PrivID]uint32
}

// view is one compiled materialisation of the session's access rights:
// the union of the reachable sets of the still-activatable active roles,
// as a bitset over pol's vertex ids.
type view struct {
	pol  *policy.Policy // instance identity: vertex ids are per-instance
	gen  uint64         // engine generation compiled at
	bits []uint64
	n    int // vertex count covered; ids >= n read as clear
}

func (v *view) has(id int32) bool {
	if id < 0 || int(id) >= v.n {
		return false
	}
	return v.bits[id>>6]&(1<<(uint(id)&63)) != 0
}

// vidTable resolves interned privilege ids to vertex ids of one policy
// instance. Entries are vid+1 (0 = unresolved, retried on use).
type vidTable struct {
	pol *policy.Policy
	ids []atomic.Int32
}

// Roles returns the activated role names, sorted.
func (s *Session) Roles() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rolesLocked()
}

func (s *Session) rolesLocked() []string {
	out := make([]string, 0, len(s.roles))
	for r := range s.roles {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// invalidateLocked abandons the compiled view and the fingerprint map after
// an activation change; caller holds s.mu.
func (s *Session) invalidateLocked() {
	s.view.Store(nil)
	s.fps.Store(&fpMap{m: map[command.PrivID]uint32{}})
}

// Create starts a session for user, activating the given roles after
// validating each against the snapshot (u →φ r) and the DSD constraints.
func (t *Table) Create(snap *engine.Snapshot, user string, roles []string) (*Session, error) {
	if user == "" {
		return nil, fmt.Errorf("session: empty user")
	}
	pol := snap.Policy()
	active := make(map[string]struct{}, len(roles))
	for _, r := range roles {
		if !pol.CanActivate(user, r) {
			return nil, fmt.Errorf("session: user %s may not activate role %s", user, r)
		}
		active[r] = struct{}{}
	}
	if err := t.checkDSD(user, active); err != nil {
		return nil, err
	}
	// Reserve the slot before publishing: Add-then-check keeps concurrent
	// creates from racing past the bound (a plain Load-then-Add would admit
	// a whole burst at capacity-1).
	if n := t.count.Add(1); t.maxSessions > 0 && n > int64(t.maxSessions) {
		t.count.Add(-1)
		return nil, fmt.Errorf("session: %w (%d live sessions)", ErrTableFull, t.maxSessions)
	}
	s := &Session{ID: t.nextID.Add(1), User: user, t: t, roles: active}
	s.fps.Store(&fpMap{m: map[command.PrivID]uint32{}})
	t.sessions.Store(s.ID, s)
	return s, nil
}

// Get resolves a session by id.
func (t *Table) Get(id uint64) (*Session, bool) {
	v, ok := t.sessions.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*Session), true
}

func (t *Table) session(id uint64) (*Session, error) {
	s, ok := t.Get(id)
	if !ok {
		return nil, fmt.Errorf("session: no session %d: %w", id, ErrNoSession)
	}
	return s, nil
}

// Activate activates a role in the session. Permitted iff u →φ r under the
// snapshot (§2) and the DSD constraints admit the resulting active set.
func (t *Table) Activate(snap *engine.Snapshot, id uint64, role string) error {
	s, err := t.session(id)
	if err != nil {
		return err
	}
	if !snap.Policy().CanActivate(s.User, role) {
		return fmt.Errorf("session: user %s may not activate role %s", s.User, role)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[role]; ok {
		return nil
	}
	proposed := make(map[string]struct{}, len(s.roles)+1)
	for r := range s.roles {
		proposed[r] = struct{}{}
	}
	proposed[role] = struct{}{}
	if err := t.checkDSD(s.User, proposed); err != nil {
		return err
	}
	s.roles[role] = struct{}{}
	s.invalidateLocked()
	return nil
}

// checkDSD evaluates the table's DSD constraints (if any) against a
// proposed active role set — the one activation guard Create, Activate and
// Update all share.
func (t *Table) checkDSD(user string, proposed map[string]struct{}) error {
	cons := t.cons.Load()
	if cons == nil || len(proposed) == 0 {
		return nil
	}
	names := make([]string, 0, len(proposed))
	for r := range proposed {
		names = append(names, r)
	}
	if vs := cons.CheckActivation(user, names); len(vs) > 0 {
		return fmt.Errorf("session: activation rejected: %s", vs[0].Error())
	}
	return nil
}

// Update applies a whole role-set change atomically: every requested
// activation is validated (u →φ r and the DSD constraints against the
// final proposed set) and every requested deactivation checked for
// membership BEFORE anything mutates, so a rejected update leaves the
// session exactly as it was — the transactional entry point the HTTP
// session-update endpoint uses (a partial apply that reports failure would
// leave the session holding privilege no response ever confirmed). It
// returns the session so callers render the post-update state without a
// second lookup that could race a concurrent Drop into a false failure.
func (t *Table) Update(snap *engine.Snapshot, id uint64, activate, deactivate []string) (*Session, error) {
	s, err := t.session(id)
	if err != nil {
		return nil, err
	}
	pol := snap.Policy()
	for _, role := range activate {
		if !pol.CanActivate(s.User, role) {
			return nil, fmt.Errorf("session: user %s may not activate role %s", s.User, role)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	proposed := make(map[string]struct{}, len(s.roles)+len(activate))
	for r := range s.roles {
		proposed[r] = struct{}{}
	}
	for _, role := range deactivate {
		if _, ok := proposed[role]; !ok {
			return nil, fmt.Errorf("session: role %s not active in session %d", role, id)
		}
		delete(proposed, role)
	}
	changed := len(deactivate) > 0
	for _, role := range activate {
		if _, ok := proposed[role]; !ok {
			proposed[role] = struct{}{}
			changed = true
		}
	}
	if err := t.checkDSD(s.User, proposed); err != nil {
		return nil, err
	}
	if !changed {
		return s, nil
	}
	s.roles = proposed
	s.invalidateLocked()
	return s, nil
}

// Deactivate drops a role from the session's active set (least privilege in
// action).
func (t *Table) Deactivate(id uint64, role string) error {
	s, err := t.session(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[role]; !ok {
		return fmt.Errorf("session: role %s not active in session %d", role, id)
	}
	delete(s.roles, role)
	s.invalidateLocked()
	return nil
}

// Drop ends the session.
func (t *Table) Drop(id uint64) error {
	if _, ok := t.sessions.LoadAndDelete(id); !ok {
		return fmt.Errorf("session: no session %d: %w", id, ErrNoSession)
	}
	t.count.Add(-1)
	return nil
}

// Len reports the live session count.
func (t *Table) Len() int { return int(t.count.Load()) }

// Drain drops every session, returning how many were live — the SIGTERM
// path: sessions are node-local and die with the node, loudly not silently.
func (t *Table) Drain() int {
	n := 0
	t.sessions.Range(func(k, _ any) bool {
		if _, ok := t.sessions.LoadAndDelete(k); ok {
			t.count.Add(-1)
			n++
		}
		return true
	})
	return n
}

// Check reports whether the session may exercise priv under the snapshot:
// some activated role r that is still activatable (u →φ r) must reach the
// privilege vertex (r →φ p) — the monitor CheckAccess semantics of §2,
// served lock-free. The steady-state path (verdict-cache or compiled-bitset
// hit) performs no allocations.
func (t *Table) Check(snap *engine.Snapshot, id uint64, priv model.Privilege) (bool, error) {
	s, err := t.session(id)
	if err != nil {
		return false, err
	}
	t.checks.Add(1)
	gen := snap.Generation()
	posFloor, negFloor := snap.ValidityFloors()

	pid := t.interner.PrivilegeID(priv)
	// The fingerprint map is captured once: the verdict computed below is
	// only cached under a fingerprint of THIS activation epoch (fpFor
	// refuses to allocate into a newer map), so a concurrent role change
	// can never get a pre-change verdict stored under its fresh epoch.
	var fm *fpMap
	fp := uint32(0)
	if pid != 0 && t.cache.Enabled() {
		if fm = s.fps.Load(); fm != nil {
			fp = fm.m[pid]
		}
		if fp != 0 {
			if _, allowed, ok := t.cache.Get(fp, gen, posFloor, negFloor); ok {
				return allowed, nil
			}
		}
	}

	allowed := t.checkView(snap, s, pid, priv, gen, posFloor, negFloor)
	if fm != nil {
		if fp == 0 {
			fp = s.fpFor(fm, pid)
		}
		if fp != 0 {
			t.cache.Put(fp, gen, allowed, 0)
		}
	}
	return allowed, nil
}

// checkView answers the check from the compiled bitset, recompiling it
// against the snapshot when it is missing, bound to another policy
// materialisation, or invalidated by the floors.
func (t *Table) checkView(snap *engine.Snapshot, s *Session, pid command.PrivID, priv model.Privilege, gen, posFloor, negFloor uint64) bool {
	pol := snap.Policy()
	v := s.view.Load()
	if v != nil && v.pol == pol {
		vid := t.vidOf(pol, pid, priv)
		if v.has(vid) {
			if v.gen >= posFloor {
				return true // set bits survive grants (reachability is monotone)
			}
		} else if v.gen >= negFloor {
			return false // clear bits only survive a mutation-free window
		}
	}
	v = s.compile(snap)
	return v.has(t.vidOf(pol, pid, priv))
}

// compile (re)builds the session's bitset against the snapshot: the union of
// the reachable sets of every active role the user can still activate.
func (s *Session) compile(snap *engine.Snapshot) *view {
	s.mu.Lock()
	defer s.mu.Unlock()
	pol := snap.Policy()
	if v := s.view.Load(); v != nil && v.pol == pol && v.gen >= snap.Generation() {
		return v // a concurrent check already compiled for this state
	}
	s.t.compiles.Add(1)
	g := pol.Graph()
	n := g.NumVertices()
	v := &view{pol: pol, gen: snap.Generation(), bits: make([]uint64, (n+63)/64), n: n}
	for role := range s.roles {
		if !pol.CanActivate(s.User, role) {
			continue // assignment revoked since activation
		}
		rid := g.Lookup(model.Role(role).Key())
		if rid == graph.NoVertex {
			continue
		}
		for i, in := range g.ReachableFrom(rid) {
			if in {
				v.bits[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	s.view.Store(v)
	return v
}

// fpFor returns (allocating on first use) the session's check fingerprint
// for the privilege id, provided the activation epoch the caller computed
// its verdict under — identified by the fpMap it loaded — is still current.
// Fingerprints are scoped to one epoch: a role change swaps in a fresh map,
// so verdicts cached under old fingerprints can never be observed again,
// and a verdict computed against the old roles must not be allocated a slot
// in the new map (fpFor returns 0 and the caller skips the cache).
func (s *Session) fpFor(seen *fpMap, pid command.PrivID) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	fm := s.fps.Load()
	if fm != seen {
		return 0 // roles changed since the verdict was computed
	}
	if f, ok := fm.m[pid]; ok {
		return f
	}
	f := s.t.nextFP.Add(1)
	next := make(map[command.PrivID]uint32, len(fm.m)+1)
	for k, v := range fm.m {
		next[k] = v
	}
	next[pid] = f
	s.fps.Store(&fpMap{m: next})
	return f
}

// vidOf resolves the privilege's graph vertex id under pol, caching by
// privilege id per policy materialisation. Returns -1 when the privilege is
// not a vertex of the policy (denied in every session).
func (t *Table) vidOf(pol *policy.Policy, pid command.PrivID, priv model.Privilege) int32 {
	if pid == 0 {
		// Interner at capacity: resolve uncached.
		if id := pol.Graph().Lookup(priv.Key()); id != graph.NoVertex {
			return int32(id)
		}
		return -1
	}
	vt := t.vids.Load()
	if vt == nil || vt.pol != pol || int(pid) >= len(vt.ids) {
		vt = t.growVids(vt, pol, int(pid))
	}
	if c := vt.ids[pid].Load(); c != 0 {
		return c - 1
	}
	id := pol.Graph().Lookup(priv.Key())
	if id == graph.NoVertex {
		return -1 // absent vertices are retried (they may be interned later)
	}
	vt.ids[pid].Store(int32(id) + 1)
	return int32(id)
}

// growVids replaces or extends the vertex-id table so it covers pid under
// pol. Lost concurrent stores are harmless (it is a cache).
func (t *Table) growVids(old *vidTable, pol *policy.Policy, pid int) *vidTable {
	t.vmu.Lock()
	defer t.vmu.Unlock()
	cur := t.vids.Load()
	if cur != nil && cur.pol == pol && pid < len(cur.ids) {
		return cur
	}
	n := pid + 1
	if cur != nil && cur.pol == pol {
		if m := 2 * len(cur.ids); m > n {
			n = m
		}
	}
	if n < 64 {
		n = 64
	}
	next := &vidTable{pol: pol, ids: make([]atomic.Int32, n)}
	if cur != nil && cur.pol == pol {
		for i := range cur.ids {
			next.ids[i].Store(cur.ids[i].Load())
		}
	}
	t.vids.Store(next)
	return next
}

// Perms returns the user privileges currently granted to the session
// through its active, still-activatable roles, sorted by key.
func (t *Table) Perms(snap *engine.Snapshot, id uint64) ([]model.UserPrivilege, error) {
	s, err := t.session(id)
	if err != nil {
		return nil, err
	}
	pol := snap.Policy()
	seen := map[string]model.UserPrivilege{}
	for _, role := range s.Roles() {
		if !pol.CanActivate(s.User, role) {
			continue
		}
		for _, q := range pol.AuthorizedPerms(model.Role(role)) {
			seen[q.Key()] = q
		}
	}
	out := make([]model.UserPrivilege, 0, len(seen))
	for _, q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// Stats is a point-in-time view of one table's counters.
type Stats struct {
	Sessions int            `json:"sessions"`
	Checks   uint64         `json:"checks"`
	Compiles uint64         `json:"compiles"`
	Cache    decision.Stats `json:"cache"`
}

// Stats reads the table's counters.
func (t *Table) Stats() Stats {
	return Stats{
		Sessions: t.Len(),
		Checks:   t.checks.Load(),
		Compiles: t.compiles.Load(),
		Cache:    t.cache.Stats(),
	}
}
