package session

import "sync"

// Registry holds one session Table per tenant on this node. Tables are
// created on first touch and live until DrainAll — they are runtime state,
// deliberately decoupled from the tenant registry's residency/LRU lifecycle
// (evicting a tenant's engine must not log out its users).
type Registry struct {
	opts   Options
	mu     sync.Mutex
	tables map[string]*Table
}

// NewRegistry builds an empty registry; every table inherits opts.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts, tables: make(map[string]*Table)}
}

// Table returns the tenant's session table, creating it on first touch.
func (r *Registry) Table(tenant string) *Table {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tables[tenant]
	if !ok {
		t = NewTable(r.opts)
		r.tables[tenant] = t
	}
	return t
}

// Peek returns the tenant's table without creating one.
func (r *Registry) Peek(tenant string) (*Table, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tables[tenant]
	return t, ok
}

// Sessions reports the live session count across all tables.
func (r *Registry) Sessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.tables {
		n += t.Len()
	}
	return n
}

// DrainAll drops every session of every table, returning how many were
// live — the server's SIGTERM hook, run before the registry compacts so
// shutdown surfaces the sessions it is abandoning.
func (r *Registry) DrainAll() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.tables {
		n += t.Drain()
	}
	return n
}
