package command

import (
	"math/rand"
	"testing"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// TestTransitionTotalityRandomized drives the transition function with
// arbitrary (including ill-formed) commands and checks the Definition 5
// totality guarantees: every command is consumed, the policy never becomes
// invalid, and denied/ill-formed commands never change it.
func TestTransitionTotalityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	names := []string{"diana", "alice", "jane", "bob", "joe", "ghost", ""}
	roles := []string{"SO", "HR", "staff", "nurse", "dbusr1", "dbusr2", "phantom"}

	randVertex := func() model.Vertex {
		switch rng.Intn(4) {
		case 0:
			return model.User(names[rng.Intn(len(names))])
		case 1:
			return model.Role(roles[rng.Intn(len(roles))])
		case 2:
			return model.Perm("act", "obj")
		default:
			return model.Grant(model.User(names[rng.Intn(len(names))]), model.Role(roles[rng.Intn(len(roles))]))
		}
	}

	p := policy.Figure2()
	for i := 0; i < 3000; i++ {
		c := Command{
			Actor: names[rng.Intn(len(names))],
			Op:    model.Op(rng.Intn(4)), // includes invalid ops
			From:  randVertex(),
			To:    randVertex(),
		}
		before := p.Clone()
		res := Step(p, c, Strict{})
		switch res.Outcome {
		case Denied, IllFormed, AppliedNoChange:
			if !p.Equal(before) {
				t.Fatalf("command %v with outcome %v changed the policy", c, res.Outcome)
			}
		case Applied:
			if p.Equal(before) {
				t.Fatalf("command %v reported applied but nothing changed", c)
			}
			if res.Justification == nil {
				t.Fatalf("applied command %v lacks justification", c)
			}
		default:
			t.Fatalf("command %v produced unknown outcome %v", c, res.Outcome)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("policy invalid after %v: %v", c, err)
		}
	}
}

// TestRunDeterministic re-runs the same queue and requires identical traces
// and final states.
func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var q Queue
	names := []string{"jane", "alice", "diana"}
	targets := []string{"staff", "nurse", "dbusr2"}
	for i := 0; i < 40; i++ {
		op := model.OpGrant
		if rng.Intn(3) == 0 {
			op = model.OpRevoke
		}
		q = append(q, Command{
			Actor: names[rng.Intn(len(names))],
			Op:    op,
			From:  model.User("bob"),
			To:    model.Role(targets[rng.Intn(len(targets))]),
		})
	}
	f1, t1 := RunOn(policy.Figure2(), q, Strict{})
	f2, t2 := RunOn(policy.Figure2(), q, Strict{})
	if !f1.Equal(f2) {
		t.Fatal("same queue produced different final policies")
	}
	for i := range t1 {
		if t1[i].Outcome != t2[i].Outcome {
			t.Fatalf("step %d outcomes differ: %v vs %v", i, t1[i].Outcome, t2[i].Outcome)
		}
	}
}

// TestGrantRevokeInverse checks that an authorized grant followed by the
// matching authorized revoke restores the original policy.
func TestGrantRevokeInverse(t *testing.T) {
	p := policy.Figure2()
	before := p.Clone()
	g := Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse))
	r := Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse))
	if res := Step(p, g, Strict{}); res.Outcome != Applied {
		t.Fatalf("grant outcome %v", res.Outcome)
	}
	if res := Step(p, r, Strict{}); res.Outcome != Applied {
		t.Fatalf("revoke outcome %v", res.Outcome)
	}
	if !p.Equal(before) {
		t.Fatal("grant;revoke did not restore the policy")
	}
}
