package command

import (
	"sync"
	"sync/atomic"

	"adminrefine/internal/model"
)

// This file implements command and privilege fingerprinting: dense integer
// identities assigned once at the system boundary (parse, HTTP decode,
// workload generation) so the per-query authorization kernel never touches a
// string-keyed map. A Fingerprint is an *interned id*, not a hash — two
// commands receive the same fingerprint iff they are structurally identical,
// so fingerprint equality is command equality with no collision risk, and a
// (fingerprint, generation) pair is a sound decision-cache key.
//
// The Interner is a lock-free-read, locked-write open-addressing index over
// chunked entry storage: lookups of already-interned values cost one
// structural hash plus a short probe with zero allocations and no lock,
// which is what keeps the engine's authorize hot path allocation-free.
// First-time interning takes a mutex, resolves everything the decision
// kernel will ever need from the command's strings (canonical
// actor/privilege keys, the boxed authorizing privilege), and publishes the
// entry with an atomic slot store, so the cost of string handling is paid
// once per distinct command, not once per query.
//
// Entries live in fixed-size chunks that never move: growth allocates one
// new chunk and doubles only the uint32 slot index, so interning churn never
// copies or re-clears the (large) entry structs, *FPInfo pointers stay valid
// forever, and a reader can follow a slot it observed without coordination.

// Fingerprint is the dense identity of an interned command. Fingerprints
// start at 1; 0 is never a valid fingerprint.
type Fingerprint uint32

// PrivID is the dense identity of an interned privilege term. PrivIDs start
// at 1; 0 means "no privilege" (denied verdicts, ill-formed commands).
type PrivID uint32

// FPInfo is everything the authorization kernel needs about one interned
// command, resolved once at intern time. Fields are immutable after
// publication.
type FPInfo struct {
	// FP is the command's fingerprint.
	FP Fingerprint
	// Cmd is the interned command.
	Cmd Command
	// Priv is the boxed authorizing privilege a(v, v') of Definition 5, nil
	// when the command is ill-formed (no grammatical privilege speaks about
	// its edge). Returning this interface value re-uses the one boxing done
	// at intern time. Its canonical key and interned id are deliberately NOT
	// precomputed: only strict-mode consumers need them, and they derive
	// them lazily (Priv.Key(), Interner.PrivilegeID) so refined-mode
	// interning stays cheap on single-use commands.
	Priv model.Privilege
	// ActorKey is the canonical graph key of the actor ("u:<actor>").
	ActorKey string

	hash uint64
}

// privEntry is one interned privilege term.
type privEntry struct {
	priv model.Privilege
	hash uint64
}

const (
	// chunkBits sizes the entry chunks (4096 entries each).
	chunkBits = 12
	chunkLen  = 1 << chunkBits
	chunkMask = chunkLen - 1
	// maxChunks bounds each interner side to maxChunks*chunkLen entries
	// (1<<20) so an adversarial stream of distinct commands cannot grow
	// memory without bound; commands beyond the cap are served by the
	// uninterned slow path.
	maxChunks = 1 << (20 - chunkBits)
	// minTableSlots is the initial open-addressing index size.
	minTableSlots = 512
)

// Interner assigns fingerprints to commands and ids to privilege terms.
// All methods are safe for concurrent use; lookups of already-interned
// values are lock-free and allocation-free.
//
// Admission is gated by a doorkeeper (the TinyLFU idea): a command is only
// interned on its *second* sight. Interned state is immortal — entry
// structs, canonical keys, boxed privileges, per-decider fingerprint tables
// — so admitting single-use commands would grow the live heap (and the
// GC's marking bill) linearly with traffic while the cache never hits.
// First sight marks two bits of the command's structural hash in a compact
// filter and reports "not interned"; callers fall back to the uninterned
// decision path, which is exactly as fast as the pre-fingerprint engine.
// Repeated commands — the only ones a cache can ever help — pay one extra
// slow decision and are fully resolved from then on. The filter ages by
// resetting once an eighth of its bits are set, so a long-lived engine's
// doorkeeper never saturates into admitting everything.
type Interner struct {
	mu sync.Mutex

	cmdSlots  atomic.Pointer[slotTable]
	cmdChunks [maxChunks]atomic.Pointer[[chunkLen]FPInfo]
	nCmds     int

	privSlots  atomic.Pointer[slotTable]
	privChunks [maxChunks]atomic.Pointer[[chunkLen]privEntry]
	nPrivs     int

	door atomic.Pointer[doorkeeper]
}

// doorBits sizes the doorkeeper filter (2^17 bits = 16 KiB): two bits per
// sighted command keeps the false-admission rate low into the tens of
// thousands of distinct one-shot commands between resets.
const doorBits = 1 << 17

// doorkeeper is a compact atomic Bloom filter over structural command
// hashes. seen returns whether both probe bits were already set, setting
// them as a side effect; sets counts newly-set bits to drive aging.
type doorkeeper struct {
	bits [doorBits / 64]atomic.Uint64
	sets atomic.Int64
}

func (d *doorkeeper) seen(h uint64) bool {
	i1 := uint32(h) % doorBits
	i2 := uint32(h>>32) % doorBits
	newly := int64(0)
	if setBit(&d.bits[i1/64], uint64(1)<<(i1%64)) {
		newly++
	}
	if setBit(&d.bits[i2/64], uint64(1)<<(i2%64)) {
		newly++
	}
	if newly != 0 {
		d.sets.Add(newly)
	}
	return newly == 0
}

// setBit sets m in w, reporting whether it was newly set. Implemented as a
// load + CAS loop rather than atomic.Uint64.Or: go1.24.0 miscompiles two
// consecutive value-returning Or intrinsics (the first CAS loop clobbers
// the register holding the receiver base before the second address is
// formed), and the load-first shape is what this call site wants anyway —
// the common already-set case stays read-only.
func setBit(w *atomic.Uint64, m uint64) (newly bool) {
	for {
		old := w.Load()
		if old&m != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|m) {
			return true
		}
	}
}

// slotTable is one generation of an open-addressing index: values are entry
// ids (index+1 into the chunked storage, 0 = empty), written with atomic
// stores after the corresponding entry is fully populated, so a reader that
// observes a slot observes a complete entry.
type slotTable struct {
	slots []uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	it := &Interner{}
	it.cmdSlots.Store(&slotTable{slots: make([]uint32, minTableSlots)})
	it.privSlots.Store(&slotTable{slots: make([]uint32, minTableSlots)})
	it.door.Store(&doorkeeper{})
	return it
}

// cmdInfo returns the entry for a published command id (1-based).
func (it *Interner) cmdInfo(id uint32) *FPInfo {
	idx := id - 1
	return &it.cmdChunks[idx>>chunkBits].Load()[idx&chunkMask]
}

func (it *Interner) privEntryAt(id uint32) *privEntry {
	idx := id - 1
	return &it.privChunks[idx>>chunkBits].Load()[idx&chunkMask]
}

// Command returns the info of an interned command, interning c when the
// doorkeeper has seen it before. The hit path is lock-free and
// allocation-free. Returns nil — callers must then fall back to uninterned
// authorization — on a command's first sight, and permanently once the
// interner is at capacity.
func (it *Interner) Command(c Command) *FPInfo {
	h := hashCommand(c)
	if info := it.findCmd(it.cmdSlots.Load(), h, c); info != nil {
		return info
	}
	d := it.door.Load()
	if d.sets.Load() > doorBits/8 {
		// Age the filter *before* consulting it — a stream of single-use
		// commands must keep resetting the filter, or its saturation would
		// fake "second sights" and admit the whole stream.
		it.ageDoorkeeper(d)
		d = it.door.Load()
	}
	if !d.seen(h) {
		return nil // first sight: not worth immortal interned state yet
	}
	return it.internCommand(h, c)
}

// ageDoorkeeper swaps in a fresh filter once the current one fills past an
// eighth of its bits (≤ ~1.5% false-admission rate), bounding spurious
// interning on long-lived engines. Sighted-once commands forgotten by the
// reset simply pay one more slow decision before admission.
func (it *Interner) ageDoorkeeper(old *doorkeeper) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.door.Load() == old {
		it.door.Store(&doorkeeper{})
	}
}

func (it *Interner) findCmd(t *slotTable, h uint64, c Command) *FPInfo {
	mask := uint32(len(t.slots) - 1)
	for i, n := uint32(h)&mask, 0; n < len(t.slots); i, n = (i+1)&mask, n+1 {
		v := atomic.LoadUint32(&t.slots[i])
		if v == 0 {
			return nil
		}
		info := it.cmdInfo(v)
		if info.hash == h && equalCommand(info.Cmd, c) {
			return info
		}
	}
	return nil
}

func (it *Interner) internCommand(h uint64, c Command) *FPInfo {
	it.mu.Lock()
	defer it.mu.Unlock()
	t := it.cmdSlots.Load()
	if info := it.findCmd(t, h, c); info != nil {
		return info
	}
	if it.nCmds >= maxChunks*chunkLen {
		return nil
	}
	if (it.nCmds+1)*4 > len(t.slots)*3 {
		t = it.growCmdSlots(t)
	}
	idx := it.nCmds
	if idx&chunkMask == 0 {
		it.cmdChunks[idx>>chunkBits].Store(new([chunkLen]FPInfo))
	}
	info := &it.cmdChunks[idx>>chunkBits].Load()[idx&chunkMask]
	info.FP = Fingerprint(idx + 1)
	info.Cmd = c
	info.hash = h
	info.ActorKey = model.User(c.Actor).Key()
	if priv, err := c.Privilege(); err == nil {
		info.Priv = priv
	}
	it.nCmds++
	// Publish: the entry is complete, so the atomic slot store makes it
	// visible to lock-free readers.
	storeSlot(t, h, uint32(idx+1))
	return info
}

// storeSlot publishes id at h's probe position. Caller holds it.mu.
func storeSlot(t *slotTable, h uint64, id uint32) {
	mask := uint32(len(t.slots) - 1)
	for i := uint32(h) & mask; ; i = (i + 1) & mask {
		if t.slots[i] == 0 {
			atomic.StoreUint32(&t.slots[i], id)
			return
		}
	}
}

// growCmdSlots doubles the command index, rehashing live entries, and
// publishes the new generation. Entries themselves never move. Caller holds
// it.mu.
func (it *Interner) growCmdSlots(old *slotTable) *slotTable {
	t := &slotTable{slots: make([]uint32, len(old.slots)*2)}
	for idx := 0; idx < it.nCmds; idx++ {
		storeSlot(t, it.cmdInfo(uint32(idx+1)).hash, uint32(idx+1))
	}
	it.cmdSlots.Store(t)
	return t
}

// PrivilegeID interns p (or finds it) and returns its id; 0 for nil p or a
// full table. The hit path is lock-free and allocation-free.
func (it *Interner) PrivilegeID(p model.Privilege) PrivID {
	if p == nil {
		return 0
	}
	h := hashVertex(fnvOffset, p)
	if id := it.findPriv(it.privSlots.Load(), h, p); id != 0 {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.internPrivLocked(p)
}

func (it *Interner) findPriv(t *slotTable, h uint64, p model.Privilege) PrivID {
	mask := uint32(len(t.slots) - 1)
	for i, n := uint32(h)&mask, 0; n < len(t.slots); i, n = (i+1)&mask, n+1 {
		v := atomic.LoadUint32(&t.slots[i])
		if v == 0 {
			return 0
		}
		e := it.privEntryAt(v)
		if e.hash == h && equalVertex(e.priv, p) {
			return PrivID(v)
		}
	}
	return 0
}

// internPrivLocked interns p under it.mu.
func (it *Interner) internPrivLocked(p model.Privilege) PrivID {
	h := hashVertex(fnvOffset, p)
	t := it.privSlots.Load()
	if id := it.findPriv(t, h, p); id != 0 {
		return id
	}
	if it.nPrivs >= maxChunks*chunkLen {
		return 0
	}
	if (it.nPrivs+1)*4 > len(t.slots)*3 {
		t = it.growPrivSlots(t)
	}
	idx := it.nPrivs
	if idx&chunkMask == 0 {
		it.privChunks[idx>>chunkBits].Store(new([chunkLen]privEntry))
	}
	e := &it.privChunks[idx>>chunkBits].Load()[idx&chunkMask]
	e.priv = p
	e.hash = h
	it.nPrivs++
	storeSlot(t, h, uint32(idx+1))
	return PrivID(idx + 1)
}

func (it *Interner) growPrivSlots(old *slotTable) *slotTable {
	t := &slotTable{slots: make([]uint32, len(old.slots)*2)}
	for idx := 0; idx < it.nPrivs; idx++ {
		storeSlot(t, it.privEntryAt(uint32(idx+1)).hash, uint32(idx+1))
	}
	it.privSlots.Store(t)
	return t
}

// Privilege returns the boxed privilege for an id minted by PrivilegeID (or
// carried in an FPInfo); nil for 0 or unknown ids. Lock-free.
func (it *Interner) Privilege(id PrivID) model.Privilege {
	if id == 0 {
		return nil
	}
	idx := uint32(id) - 1
	if idx >= uint32(maxChunks*chunkLen) {
		return nil
	}
	chunk := it.privChunks[idx>>chunkBits].Load()
	if chunk == nil {
		return nil
	}
	e := &chunk[idx&chunkMask]
	if e.priv == nil {
		return nil // id beyond the published entries of a partial chunk
	}
	return e.priv
}

// Len reports how many distinct commands and privileges are interned.
func (it *Interner) Len() (cmds, privs int) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.nCmds, it.nPrivs
}

// --- structural hashing and equality (allocation-free) ---------------------

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashString(h uint64, s string) uint64 {
	// Fold 8 bytes per multiply (FNV-1a over words, not bytes): the hot path
	// hashes every query's actor and vertex names, so halving the multiply
	// count matters more than byte-exact FNV compatibility.
	i := 0
	for ; i+8 <= len(s); i += 8 {
		w := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = (h ^ w) * fnvPrime
	}
	for ; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	// Fold in the length and terminate so ("ab","c") and ("a","bc") differ
	// and the word/byte boundary cannot alias across strings.
	return hashByte(h^uint64(len(s)), 0xFF)
}

func hashCommand(c Command) uint64 {
	h := hashString(fnvOffset, c.Actor)
	h = hashByte(h, byte(c.Op))
	h = hashVertex(h, c.From)
	return hashVertex(h, c.To)
}

// hashVertex folds a vertex structurally, walking nested privileges without
// building canonical key strings.
func hashVertex(h uint64, v model.Vertex) uint64 {
	switch t := v.(type) {
	case nil:
		return hashByte(h, 'n')
	case model.Entity:
		return hashString(hashByte(hashByte(h, 'e'), byte(t.Kind)), t.Name)
	case model.UserPrivilege:
		return hashString(hashString(hashByte(h, 'q'), t.Action), t.Object)
	case model.AdminPrivilege:
		h = hashByte(hashByte(h, 'a'), byte(t.Op))
		// Hash Src inline: passing the concrete Entity through the Vertex
		// parameter would box it (and the default branch's Key() call makes
		// the parameter escape), costing one heap allocation per level.
		h = hashString(hashByte(hashByte(h, 'e'), byte(t.Src.Kind)), t.Src.Name)
		return hashVertex(h, t.Dst)
	default:
		// Foreign Vertex implementations never occur on the hot path; fall
		// back to the canonical key (allocates).
		return hashString(hashByte(h, '?'), v.Key())
	}
}

func equalCommand(a, b Command) bool {
	return a.Actor == b.Actor && a.Op == b.Op &&
		equalVertex(a.From, b.From) && equalVertex(a.To, b.To)
}

// equalVertex is structural vertex equality without key construction: the
// allocation-free equivalent of model.SameVertex for the model's own types.
func equalVertex(a, b model.Vertex) bool {
	switch at := a.(type) {
	case nil:
		return b == nil
	case model.Entity:
		bt, ok := b.(model.Entity)
		return ok && at == bt
	case model.UserPrivilege:
		bt, ok := b.(model.UserPrivilege)
		return ok && at == bt
	case model.AdminPrivilege:
		bt, ok := b.(model.AdminPrivilege)
		return ok && at.Op == bt.Op && at.Src == bt.Src && equalVertex(at.Dst, bt.Dst)
	default:
		return b != nil && model.SameVertex(a, b)
	}
}
