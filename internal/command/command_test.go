package command

import (
	"strings"
	"testing"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

func TestCommandStringAndKey(t *testing.T) {
	c := Grant("jane", model.User("bob"), model.Role("staff"))
	if got := c.String(); got != "cmd(jane, grant, bob, staff)" {
		t.Errorf("String = %q", got)
	}
	r := Revoke("jane", model.User("joe"), model.Role("nurse"))
	if got := r.String(); got != "cmd(jane, revoke, joe, nurse)" {
		t.Errorf("String = %q", got)
	}
	if c.Key() == r.Key() {
		t.Error("distinct commands share a key")
	}
	if c.Key() != Grant("jane", model.User("bob"), model.Role("staff")).Key() {
		t.Error("equal commands have different keys")
	}
	empty := Command{}
	if !strings.Contains(empty.String(), "<nil>") {
		t.Error("zero command String should be diagnostic")
	}
}

func TestCommandPrivilege(t *testing.T) {
	c := Grant("jane", model.User("bob"), model.Role("staff"))
	priv, err := c.Privilege()
	if err != nil {
		t.Fatal(err)
	}
	want := model.Grant(model.User("bob"), model.Role("staff"))
	if priv.Key() != want.Key() {
		t.Errorf("Privilege = %v, want %v", priv, want)
	}

	// Edge source must be an entity.
	bad := Grant("jane", model.Perm("a", "b"), model.Role("r"))
	if _, err := bad.Privilege(); err == nil {
		t.Error("privilege-source command accepted")
	}
	// Empty actor.
	actorless := Command{Op: model.OpGrant, From: model.User("a"), To: model.Role("b")}
	if _, err := actorless.Privilege(); err == nil {
		t.Error("actorless command accepted")
	}
	// Ungrammatical edge: user -> user privilege.
	bad2 := Grant("jane", model.User("bob"), model.Perm("a", "b"))
	if err := bad2.Validate(); err == nil {
		t.Error("ungrammatical command validated")
	}
}

func TestQueueString(t *testing.T) {
	if got := (Queue{}).String(); got != "ε" {
		t.Errorf("empty queue = %q", got)
	}
	q := Queue{Grant("a", model.User("u"), model.Role("r"))}
	if got := q.String(); got != "cmd(a, grant, u, r) : ε" {
		t.Errorf("queue = %q", got)
	}
}

func TestStrictAuthorizationExample2(t *testing.T) {
	// Example 2: members of HR can appoint new staff members or nurses.
	p := policy.Figure2()

	// Jane (HR) may assign Bob to staff.
	c := Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	just, ok := (Strict{}).Authorize(p, c)
	if !ok {
		t.Fatal("Jane's authorized command denied")
	}
	if just.Key() != policy.PrivHRAssignBobStaff.Key() {
		t.Errorf("justification = %v", just)
	}

	// Diana (no admin privileges) may not.
	d := Grant(policy.UserDiana, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	if _, ok := (Strict{}).Authorize(p, d); ok {
		t.Fatal("Diana's unauthorized command allowed")
	}

	// Alice inherits HR's privileges through SO -> HR.
	a := Grant(policy.UserAlice, model.User(policy.UserJoe), model.Role(policy.RoleNurse))
	if _, ok := (Strict{}).Authorize(p, a); !ok {
		t.Fatal("Alice's inherited command denied")
	}

	// Strict does NOT authorize the weaker command of Example 4: Jane
	// assigning Bob directly to dbusr2 requires the ordering.
	w := Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleDBUsr2))
	if _, ok := (Strict{}).Authorize(p, w); ok {
		t.Fatal("strict authorizer allowed the ordering-only command")
	}
}

func TestStepDefinition5(t *testing.T) {
	p := policy.Figure2()

	// Authorized grant: edge appears.
	c := Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	res := Step(p, c, Strict{})
	if res.Outcome != Applied {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !p.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleStaff)) {
		t.Fatal("edge not added")
	}

	// Same command again: φ ∪ (v,v') unchanged.
	res = Step(p, c, Strict{})
	if res.Outcome != AppliedNoChange {
		t.Fatalf("repeat outcome = %v", res.Outcome)
	}

	// Unauthorized command consumed without change (Def. 5 third case).
	before := p.Clone()
	d := Grant(policy.UserDiana, model.User(policy.UserJoe), model.Role(policy.RoleNurse))
	res = Step(p, d, Strict{})
	if res.Outcome != Denied {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !p.Equal(before) {
		t.Fatal("denied command changed the policy")
	}

	// Ill-formed command consumed without change.
	bad := Grant(policy.UserJane, model.User(policy.UserBob), model.User(policy.UserJoe))
	res = Step(p, bad, Strict{})
	if res.Outcome != IllFormed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !p.Equal(before) {
		t.Fatal("ill-formed command changed the policy")
	}
}

func TestRevocationStep(t *testing.T) {
	p := policy.Figure2()
	p.Assign(policy.UserJoe, policy.RoleNurse)

	// Jane may revoke Joe from nurse (♦(joe,nurse) held by HR).
	c := Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse))
	res := Step(p, c, Strict{})
	if res.Outcome != Applied {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if p.HasEdge(model.User(policy.UserJoe), model.Role(policy.RoleNurse)) {
		t.Fatal("edge not removed")
	}
	// Revoking an absent edge: authorized, no change.
	res = Step(p, c, Strict{})
	if res.Outcome != AppliedNoChange {
		t.Fatalf("outcome = %v", res.Outcome)
	}

	// Jane may NOT revoke Diana from nurse (no ♦(diana,nurse) anywhere).
	d := Revoke(policy.UserJane, model.User(policy.UserDiana), model.Role(policy.RoleNurse))
	if res := Step(p, d, Strict{}); res.Outcome != Denied {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestRunTraceExample2(t *testing.T) {
	// Example 2 scenario: HR appoints Bob to staff and Joe to nurse, then
	// dismisses Joe; Diana's rogue command is denied.
	p := policy.Figure2()
	q := Queue{
		Grant(policy.UserJane, model.User(policy.UserBob), model.Role(policy.RoleStaff)),
		Grant(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
		Grant(policy.UserDiana, model.User(policy.UserDiana), model.Role(policy.RoleSO)),
		Revoke(policy.UserJane, model.User(policy.UserJoe), model.Role(policy.RoleNurse)),
	}
	final, trace := RunOn(p, q, Strict{})
	if len(trace) != 4 {
		t.Fatalf("trace length %d", len(trace))
	}
	wantOutcomes := []Outcome{Applied, Applied, Denied, Applied}
	for i, w := range wantOutcomes {
		if trace[i].Outcome != w {
			t.Errorf("step %d outcome = %v, want %v", i, trace[i].Outcome, w)
		}
	}
	if Changed(trace) != 3 || DeniedCount(trace) != 1 {
		t.Errorf("Changed=%d Denied=%d", Changed(trace), DeniedCount(trace))
	}
	// RunOn must not mutate the input.
	if p.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleStaff)) {
		t.Fatal("RunOn mutated its input policy")
	}
	// Final state: Bob in staff, Joe not in nurse, Diana not SO.
	if !final.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleStaff)) {
		t.Error("bob not staff in final policy")
	}
	if final.HasEdge(model.User(policy.UserJoe), model.Role(policy.RoleNurse)) {
		t.Error("joe still nurse in final policy")
	}
	if final.HasEdge(model.User(policy.UserDiana), model.Role(policy.RoleSO)) {
		t.Error("diana became SO")
	}
}

func TestNestedPrivilegeDelegationRun(t *testing.T) {
	// Alice exercises ¤(staff, ¤(bob,staff)): she gives staff the privilege
	// to appoint Bob; afterwards Diana (a staff member) can appoint Bob.
	p := policy.Figure2()
	inner := model.Grant(model.User(policy.UserBob), model.Role(policy.RoleStaff))

	// Before delegation Diana cannot appoint Bob.
	appoint := Grant(policy.UserDiana, model.User(policy.UserBob), model.Role(policy.RoleStaff))
	if _, ok := (Strict{}).Authorize(p, appoint); ok {
		t.Fatal("Diana could appoint before delegation")
	}

	delegate := Grant(policy.UserAlice, model.Role(policy.RoleStaff), inner)
	if res := Step(p, delegate, Strict{}); res.Outcome != Applied {
		t.Fatalf("delegation outcome = %v", res.Outcome)
	}
	if res := Step(p, appoint, Strict{}); res.Outcome != Applied {
		t.Fatalf("post-delegation appoint outcome = %v", res.Outcome)
	}
	if !p.HasEdge(model.User(policy.UserBob), model.Role(policy.RoleStaff)) {
		t.Fatal("bob not assigned to staff")
	}
}

func TestApplyIllSorted(t *testing.T) {
	p := policy.New()
	if _, err := Apply(p, Grant("x", model.User("a"), model.User("b"))); err == nil {
		t.Fatal("ill-sorted apply accepted")
	}
	if _, err := Apply(p, Command{Actor: "x", From: model.User("a"), To: model.Role("b")}); err == nil {
		t.Fatal("op-less apply accepted")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Applied: "applied", AppliedNoChange: "applied (no change)",
		Denied: "denied", IllFormed: "ill-formed",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q", o, o.String())
		}
	}
	if !strings.Contains(Outcome(99).String(), "Outcome(") {
		t.Error("unknown outcome not diagnostic")
	}
}
