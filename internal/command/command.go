// Package command implements administrative commands (Definition 4) and the
// administrative transition function ⇒ (Definition 5) of Dekker & Etalle.
//
// A command cmd(u, a, v, v') asks the reference monitor, on behalf of user
// u, to add (a = ¤) or remove (a = ♦) the edge (v, v'). Definition 5 makes
// the transition relation total: an authorized command mutates the policy;
// an unauthorized or ill-sorted one is consumed without effect.
//
// Authorization is pluggable through the Authorizer interface so that the
// literal Definition 5 check (Strict) and the paper's ordering-refined check
// (provided by package core) share one execution engine.
package command

import (
	"fmt"
	"strings"

	"adminrefine/internal/model"
	"adminrefine/internal/policy"
)

// Command is an administrative command cmd(u, a, v, v') (Definition 4).
type Command struct {
	// Actor is the user u issuing the command.
	Actor string
	// Op is ¤ (add edge) or ♦ (remove edge).
	Op model.Op
	// From, To are the edge endpoints v, v' ∈ U ∪ R ∪ P†.
	From model.Vertex
	To   model.Vertex
}

// Grant builds cmd(actor, ¤, from, to).
func Grant(actor string, from, to model.Vertex) Command {
	return Command{Actor: actor, Op: model.OpGrant, From: from, To: to}
}

// Revoke builds cmd(actor, ♦, from, to).
func Revoke(actor string, from, to model.Vertex) Command {
	return Command{Actor: actor, Op: model.OpRevoke, From: from, To: to}
}

// String renders the command as in the paper, e.g.
// "cmd(jane, grant, bob, staff)".
func (c Command) String() string {
	from, to := "<nil>", "<nil>"
	if c.From != nil {
		from = c.From.String()
	}
	if c.To != nil {
		to = c.To.String()
	}
	return fmt.Sprintf("cmd(%s, %s, %s, %s)", c.Actor, c.Op, from, to)
}

// Key returns a canonical identity for the command.
func (c Command) Key() string {
	from, to := "", ""
	if c.From != nil {
		from = c.From.Key()
	}
	if c.To != nil {
		to = c.To.Key()
	}
	return c.Actor + "\x00" + c.Op.Symbol() + "\x00" + from + "\x00" + to
}

// Privilege returns the administrative privilege a(v, v') that authorizes
// this command under Definition 5, or an error if the command is ill-sorted
// (no grammatical privilege speaks about the edge).
func (c Command) Privilege() (model.AdminPrivilege, error) {
	if c.Actor == "" {
		return model.AdminPrivilege{}, fmt.Errorf("command has no actor")
	}
	src, ok := c.From.(model.Entity)
	if !ok {
		return model.AdminPrivilege{}, fmt.Errorf("command %s: edge source must be a user or role", c)
	}
	return model.NewAdmin(c.Op, src, c.To)
}

// Validate reports whether the command is well-sorted: its edge must be
// admitted by one of UA/RH/PA and its authorizing privilege grammatical.
func (c Command) Validate() error {
	if _, err := c.Privilege(); err != nil {
		return err
	}
	_, err := policy.ClassifyEdge(c.From, c.To)
	return err
}

// Queue is a command queue cq (Definition 4): commands execute head first.
type Queue []Command

// String renders the queue as "cmd(...) : cmd(...) : ε".
func (q Queue) String() string {
	if len(q) == 0 {
		return "ε"
	}
	parts := make([]string, 0, len(q)+1)
	for _, c := range q {
		parts = append(parts, c.String())
	}
	parts = append(parts, "ε")
	return strings.Join(parts, " : ")
}

// Authorizer decides whether a policy authorizes a command. Implementations:
// Strict (this package, literal Definition 5) and the ordering-refined
// authorizer in package core.
type Authorizer interface {
	// Authorize returns the privilege justifying the command, or ok=false.
	Authorize(p *policy.Policy, c Command) (justification model.Privilege, ok bool)
	// Name identifies the authorizer in traces and reports.
	Name() string
}

// Strict is the literal Definition 5 authorizer: cmd(u, a, v, v') is allowed
// iff u →φ r and r →φ a(v,v') for some role r — equivalently, iff the
// privilege vertex a(v,v') is reachable from u (every path from a user
// passes through a role first, since users' only out-edges are UA edges).
type Strict struct{}

// Authorize implements Authorizer.
func (Strict) Authorize(p *policy.Policy, c Command) (model.Privilege, bool) {
	priv, err := c.Privilege()
	if err != nil {
		return nil, false
	}
	if p.Reaches(model.User(c.Actor), priv) {
		return priv, true
	}
	return nil, false
}

// Name implements Authorizer.
func (Strict) Name() string { return "strict" }

// Outcome describes what Definition 5 did with one command.
type Outcome uint8

const (
	// Applied: the command was authorized and the edge was added/removed.
	Applied Outcome = iota + 1
	// AppliedNoChange: authorized, but the edge was already present (¤) or
	// already absent (♦); φ ∪ (v,v') / φ \ (v,v') left the policy unchanged.
	AppliedNoChange
	// Denied: the command was not authorized; it was consumed without
	// changing the policy (third case of Definition 5).
	Denied
	// IllFormed: the command is not well-sorted; consumed without effect.
	IllFormed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Applied:
		return "applied"
	case AppliedNoChange:
		return "applied (no change)"
	case Denied:
		return "denied"
	case IllFormed:
		return "ill-formed"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// WireName is the stable machine encoding of the outcome, shared by the WAL
// record format and the HTTP API (distinct from the human-facing String).
// Changing these strings breaks WAL replay compatibility.
func (o Outcome) WireName() string {
	switch o {
	case Applied:
		return "applied"
	case AppliedNoChange:
		return "nochange"
	case Denied:
		return "denied"
	default:
		return "illformed"
	}
}

// StepResult records one ⇒ transition.
type StepResult struct {
	Cmd           Command
	Outcome       Outcome
	Justification model.Privilege // the authorizing privilege when applied
}

// Apply mutates p with the command's edge change without any authorization
// check: φ ∪ (v,v') for ¤, φ \ (v,v') for ♦. It reports whether the policy
// changed. Ill-sorted edges return an error and leave p untouched.
func Apply(p *policy.Policy, c Command) (changed bool, err error) {
	switch c.Op {
	case model.OpGrant:
		return p.AddEdge(c.From, c.To)
	case model.OpRevoke:
		return p.RemoveEdge(c.From, c.To)
	default:
		return false, fmt.Errorf("command %s: invalid op", c)
	}
}

// Step executes one ⇒ transition (Definition 5) in place on p, using auth to
// decide the side condition. The transition is total: every command is
// consumed; unauthorized and ill-formed commands leave the policy unchanged.
func Step(p *policy.Policy, c Command, auth Authorizer) StepResult {
	if err := c.Validate(); err != nil {
		return StepResult{Cmd: c, Outcome: IllFormed}
	}
	just, ok := auth.Authorize(p, c)
	if !ok {
		return StepResult{Cmd: c, Outcome: Denied}
	}
	changed, err := Apply(p, c)
	if err != nil {
		// Unreachable after Validate, but keep the transition total.
		return StepResult{Cmd: c, Outcome: IllFormed}
	}
	if !changed {
		return StepResult{Cmd: c, Outcome: AppliedNoChange, Justification: just}
	}
	return StepResult{Cmd: c, Outcome: Applied, Justification: just}
}

// Run executes the whole queue on p (the run ⇒* of the paper), mutating p in
// place, and returns the per-command trace. Callers needing the original
// policy should Clone first.
func Run(p *policy.Policy, q Queue, auth Authorizer) []StepResult {
	trace := make([]StepResult, 0, len(q))
	for _, c := range q {
		trace = append(trace, Step(p, c, auth))
	}
	return trace
}

// RunOn clones p, executes the queue on the clone, and returns the final
// policy with the trace. The input policy is never mutated.
func RunOn(p *policy.Policy, q Queue, auth Authorizer) (*policy.Policy, []StepResult) {
	c := p.Clone()
	trace := Run(c, q, auth)
	return c, trace
}

// Changed reports how many steps in a trace actually mutated the policy.
func Changed(trace []StepResult) int {
	n := 0
	for _, s := range trace {
		if s.Outcome == Applied {
			n++
		}
	}
	return n
}

// DeniedCount reports how many steps were denied.
func DeniedCount(trace []StepResult) int {
	n := 0
	for _, s := range trace {
		if s.Outcome == Denied {
			n++
		}
	}
	return n
}
