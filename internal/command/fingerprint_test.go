package command

import (
	"fmt"
	"sync"
	"testing"

	"adminrefine/internal/model"
)

// intern admits a command through the doorkeeper: the first sight returns
// nil by design (single-use commands are not worth immortal interned
// state), the second sight interns.
func intern(t *testing.T, it *Interner, c Command) *FPInfo {
	t.Helper()
	if info := it.Command(c); info != nil {
		return info
	}
	info := it.Command(c)
	if info == nil {
		t.Fatalf("command %v not interned on second sight", c)
	}
	return info
}

func TestDoorkeeperAdmitsOnSecondSight(t *testing.T) {
	it := NewInterner()
	c := Grant("jane", model.User("bob"), model.Role("staff"))
	if info := it.Command(c); info != nil {
		t.Fatalf("first sight interned: %+v", info)
	}
	info := it.Command(c)
	if info == nil {
		t.Fatal("second sight not interned")
	}
	if again := it.Command(c); again != info {
		t.Fatal("later sights returned a different info")
	}
}

func TestFingerprintIdentity(t *testing.T) {
	it := NewInterner()
	a := Grant("jane", model.User("bob"), model.Role("staff"))
	b := Grant("jane", model.User("bob"), model.Role("staff"))
	c := Grant("jane", model.User("bob"), model.Role("staf"))
	ia, ib, ic := intern(t, it, a), intern(t, it, b), intern(t, it, c)
	if ia.FP != ib.FP {
		t.Fatalf("equal commands got fingerprints %d and %d", ia.FP, ib.FP)
	}
	if ia.FP == ic.FP {
		t.Fatalf("distinct commands share fingerprint %d", ia.FP)
	}
	if ia != ib {
		t.Fatal("re-interning returned a different info")
	}
	if ia.Priv == nil {
		t.Fatalf("well-formed command lost its privilege: %+v", ia)
	}
	pid := it.PrivilegeID(ia.Priv)
	if pid == 0 {
		t.Fatal("privilege not internable")
	}
	if got := it.Privilege(pid); !model.SamePrivilege(got, ia.Priv) {
		t.Fatalf("privilege round trip: %v != %v", got, ia.Priv)
	}
	if ia.ActorKey != model.User("jane").Key() {
		t.Fatalf("resolved keys wrong: %+v", ia)
	}
}

func TestFingerprintIllFormed(t *testing.T) {
	it := NewInterner()
	// Role source for a UA-shaped edge target: no grammatical privilege.
	bad := Command{Actor: "jane", Op: model.OpGrant, From: model.Perm("read", "t"), To: model.Role("r")}
	info := intern(t, it, bad)
	if info.Priv != nil {
		t.Fatalf("ill-formed command minted a privilege: %+v", info)
	}
	if again := it.Command(bad); again.FP != info.FP {
		t.Fatal("ill-formed command fingerprint unstable")
	}
}

func TestFingerprintGrowth(t *testing.T) {
	it := NewInterner()
	const n = 3000 // forces several table growths
	fps := make(map[Fingerprint]Command, n)
	for i := 0; i < n; i++ {
		c := Grant(fmt.Sprintf("u%d", i%7), model.User(fmt.Sprintf("v%d", i)), model.Role("r"))
		info := intern(t, it, c)
		if prev, dup := fps[info.FP]; dup {
			t.Fatalf("fingerprint %d assigned to both %v and %v", info.FP, prev, c)
		}
		fps[info.FP] = c
	}
	// Every command still resolves to its original fingerprint after growth.
	for fp, c := range fps {
		if got := it.Command(c); got.FP != fp {
			t.Fatalf("%v: fingerprint changed %d -> %d across growth", c, fp, got.FP)
		}
	}
	if cmds, _ := it.Len(); cmds != n {
		t.Fatalf("interned %d commands, want %d", cmds, n)
	}
}

func TestPrivilegeInterning(t *testing.T) {
	it := NewInterner()
	nested := model.Grant(model.Role("a"), model.Grant(model.User("b"), model.Role("c")))
	id := it.PrivilegeID(nested)
	if id == 0 {
		t.Fatal("privilege not interned")
	}
	if it.PrivilegeID(model.Grant(model.Role("a"), model.Grant(model.User("b"), model.Role("c")))) != id {
		t.Fatal("structurally equal privilege got a new id")
	}
	if it.PrivilegeID(model.Revoke(model.Role("a"), model.Grant(model.User("b"), model.Role("c")))) == id {
		t.Fatal("distinct privilege shares an id")
	}
	if it.PrivilegeID(nil) != 0 {
		t.Fatal("nil privilege interned")
	}
	if it.Privilege(0) != nil || it.Privilege(9999) != nil {
		t.Fatal("bogus ids resolved")
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	it := NewInterner()
	const goroutines, per = 8, 400
	var wg sync.WaitGroup
	got := make([][]Fingerprint, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]Fingerprint, per)
			for i := 0; i < per; i++ {
				c := Grant("admin", model.User(fmt.Sprintf("u%d", i)), model.Role(fmt.Sprintf("r%d", i%13)))
				info := it.Command(c)
				if info == nil {
					info = it.Command(c) // doorkeeper: admitted on second sight
				}
				if info == nil {
					// Another goroutine may not have pushed it through yet.
					info = it.Command(c)
				}
				got[g][i] = info.FP
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d command %d: fp %d != %d", g, i, got[g][i], got[0][i])
			}
		}
	}
	if cmds, _ := it.Len(); cmds != per {
		t.Fatalf("interned %d commands, want %d", cmds, per)
	}
}

// FuzzCommandFingerprint is the satellite fuzz target: for arbitrary pairs
// of commands (including nested administrative privileges as edge targets),
// fingerprints must agree exactly when the commands are structurally equal
// — interning is identity assignment, not hashing, so distinct commands
// must never collide.
func FuzzCommandFingerprint(f *testing.F) {
	f.Add("jane", true, "bob", "staff", "x", "y", uint8(0), uint8(1))
	f.Add("jane", true, "bob", "staff", "bob", "staff", uint8(0), uint8(0))
	f.Add("", false, "", "", "", "", uint8(7), uint8(3))
	f.Add("a", true, "b,c", "d(e", "f)g", "h:i", uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, actor string, grant bool, n1, n2, n3, n4 string, shape1, shape2 uint8) {
		c1 := fuzzCommand(actor, grant, n1, n2, shape1)
		c2 := fuzzCommand(actor, grant, n3, n4, shape2)
		it := NewInterner()
		i1, i2 := intern(t, it, c1), intern(t, it, c2)
		same := c1.Key() == c2.Key()
		if (i1.FP == i2.FP) != same {
			t.Fatalf("fp equality %v but key equality %v for %v / %v",
				i1.FP == i2.FP, same, c1, c2)
		}
		// Interning is stable, and a second interner agrees on equality.
		if it.Command(c1).FP != i1.FP || it.Command(c2).FP != i2.FP {
			t.Fatal("fingerprints unstable across re-interning")
		}
		it2 := NewInterner()
		j2, j1 := intern(t, it2, c2), intern(t, it2, c1) // reversed order
		if (j1.FP == j2.FP) != same {
			t.Fatalf("fp equality depends on interning order for %v / %v", c1, c2)
		}
		// The resolved privilege must match what the command derives.
		if priv, err := c1.Privilege(); err == nil {
			if i1.Priv == nil || i1.Priv.Key() != priv.Key() {
				t.Fatalf("info privilege %v != derived %v", i1.Priv, priv)
			}
		} else if i1.Priv != nil {
			t.Fatalf("ill-formed command %v minted privilege %v", c1, i1.Priv)
		}
	})
}

// fuzzCommand derives a command from fuzz inputs; shape selects the vertex
// sorts and nesting of the edge target.
func fuzzCommand(actor string, grant bool, n1, n2 string, shape uint8) Command {
	op := model.OpRevoke
	if grant {
		op = model.OpGrant
	}
	var from, to model.Vertex
	switch shape % 5 {
	case 0:
		from, to = model.User(n1), model.Role(n2)
	case 1:
		from, to = model.Role(n1), model.Role(n2)
	case 2:
		from, to = model.Role(n1), model.Perm(n1, n2)
	case 3:
		from, to = model.Role(n1), model.Grant(model.User(n1), model.Role(n2))
	default:
		from = model.Role(n1)
		to = model.Grant(model.Role(n2), model.Revoke(model.User(n1), model.Role(n2)))
	}
	return Command{Actor: actor, Op: op, From: from, To: to}
}
