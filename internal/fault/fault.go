// Package fault provides deterministic fault injection for the storage and
// replication layers: a file implementation whose writes and fsyncs fail on
// a seeded schedule (wired through storage.Options.OpenFile) and a flaky
// http.RoundTripper that drops, delays and severs responses mid-body (wired
// through replication.FollowerOptions.Client). Both consume faults from a
// schedule fixed before the run, so a failing chaos test replays bit-for-bit
// from its seed — no "flaky when the moon is wrong" failures.
//
// The package deliberately imports nothing from this repository: the
// consumers adapt its concrete types through their own interface seams
// (storage tests run in package storage, so an import the other way would
// cycle), and the production paths never touch it.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"
)

// ErrInjected is the root cause of every injected failure; test assertions
// use errors.Is against it to separate scheduled faults from real bugs.
var ErrInjected = errors.New("fault: injected")

// Kind enumerates the injectable storage faults.
type Kind int

const (
	// None leaves the operation untouched.
	None Kind = iota
	// ErrWrite fails a Write before any byte lands.
	ErrWrite
	// TornWrite lands a prefix of the buffer (Fault.Keep bytes), then fails
	// — the mid-append power cut.
	TornWrite
	// ErrSync fails an fsync after the bytes reached the page cache —
	// durability unknown, the fsyncgate case.
	ErrSync
	// SlowWrite stalls a Write for Fault.Delay before completing it — the
	// congested-disk case, mirroring NetDelay on the transport side.
	SlowWrite
	// SlowSync stalls an fsync for Fault.Delay before completing it — the
	// saturated-write-cache case that turns group commit into a queue. This
	// is the primitive behind replayable stalled-fsync overload scenarios.
	SlowSync
)

func (k Kind) String() string {
	switch k {
	case ErrWrite:
		return "write-error"
	case TornWrite:
		return "torn-write"
	case ErrSync:
		return "sync-error"
	case SlowWrite:
		return "slow-write"
	case SlowSync:
		return "slow-sync"
	default:
		return "none"
	}
}

// Fault is one scheduled storage fault.
type Fault struct {
	Kind Kind
	// Keep is the number of bytes a TornWrite lands before failing (clamped
	// to the buffer).
	Keep int
	// Delay is how long a SlowWrite/SlowSync stalls before completing.
	Delay time.Duration
}

// Plan is a deterministic schedule of storage faults keyed by mutation
// index: the n-th Write or Sync across every file of one FS consults the
// plan and fails as scheduled. Build one explicitly with At, or derive one
// from a seed with SeededPlan.
type Plan struct {
	faults map[uint64]Fault
}

// NewPlan returns an empty schedule.
func NewPlan() *Plan { return &Plan{faults: make(map[uint64]Fault)} }

// At schedules f at mutation index step (0-based), returning the plan for
// chaining.
func (p *Plan) At(step uint64, f Fault) *Plan {
	p.faults[step] = f
	return p
}

// SeededPlan derives a schedule over the first steps mutation indexes from
// seed: each step independently fails as a write error, torn write or sync
// error with the given probabilities (torn writes keep a random prefix of
// up to 64 bytes). The same seed always yields the same schedule.
func SeededPlan(seed int64, steps uint64, pWrite, pTorn, pSync float64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan()
	for i := uint64(0); i < steps; i++ {
		switch r := rng.Float64(); {
		case r < pWrite:
			p.At(i, Fault{Kind: ErrWrite})
		case r < pWrite+pTorn:
			p.At(i, Fault{Kind: TornWrite, Keep: rng.Intn(64)})
		case r < pWrite+pTorn+pSync:
			p.At(i, Fault{Kind: ErrSync})
		}
	}
	return p
}

// SeededLatencyPlan derives a latency schedule over the first steps mutation
// indexes from seed: each step independently stalls as a SlowWrite or
// SlowSync (for up to maxDelay) with the given probabilities. The same seed
// always yields the same schedule, so a stalled-fsync overload scenario
// replays bit-for-bit. Compose with an error plan by building both from
// seeds and merging via At.
func SeededLatencyPlan(seed int64, steps uint64, pSlowWrite, pSlowSync float64, maxDelay time.Duration) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := NewPlan()
	for i := uint64(0); i < steps; i++ {
		r := rng.Float64()
		// One delay draw per step keeps the schedule stable whether or not
		// the step stalls.
		d := time.Duration(rng.Int63n(int64(maxDelay) + 1))
		switch {
		case r < pSlowWrite:
			p.At(i, Fault{Kind: SlowWrite, Delay: d})
		case r < pSlowWrite+pSlowSync:
			p.At(i, Fault{Kind: SlowSync, Delay: d})
		}
	}
	return p
}

// FS hands out files whose mutating operations (Write, Sync) consume
// mutation indexes from one shared plan, in call order. Reads, seeks and
// truncates pass through unfaulted: the schedule models a misbehaving disk
// under append load, and the repair path (storage truncating a torn tail)
// must be able to run.
type FS struct {
	mu   sync.Mutex
	plan *Plan
	step uint64
	off  bool
}

// NewFS builds a fault-injecting file opener over plan (nil = no faults).
func NewFS(plan *Plan) *FS {
	if plan == nil {
		plan = NewPlan()
	}
	return &FS{plan: plan}
}

// Open opens the real file at path and wraps it with the FS's schedule.
// The signature matches storage.Options.OpenFile up to the concrete return
// type; adapt with a closure.
func (fs *FS) Open(path string, flag int, perm os.FileMode) (*File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f, fs: fs}, nil
}

// Step reports how many mutation indexes have been consumed so far.
func (fs *FS) Step() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.step
}

// Disarm stops injecting: every later operation passes through. Lets a test
// run a faulty phase and then drive the same store cleanly.
func (fs *FS) Disarm() {
	fs.mu.Lock()
	fs.off = true
	fs.mu.Unlock()
}

// next consumes one mutation index and returns its scheduled fault.
func (fs *FS) next() Fault {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	step := fs.step
	fs.step++
	if fs.off {
		return Fault{}
	}
	return fs.plan.faults[step]
}

// File is a real file whose Write and Sync fail on the owning FS's
// schedule. It satisfies storage.File.
type File struct {
	f  *os.File
	fs *FS
}

// Write consults the schedule: an ErrWrite fails with no byte landed, a
// TornWrite lands a prefix and then fails (exactly what a kernel crash
// mid-append leaves behind), a SlowWrite stalls and then completes, anything
// else passes through.
func (f *File) Write(p []byte) (int, error) {
	switch ft := f.fs.next(); ft.Kind {
	case ErrWrite:
		return 0, fmt.Errorf("write %d bytes: %w", len(p), ErrInjected)
	case TornWrite:
		keep := ft.Keep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if n, err := f.f.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		return keep, fmt.Errorf("torn after %d of %d bytes: %w", keep, len(p), ErrInjected)
	case SlowWrite:
		time.Sleep(ft.Delay)
		return f.f.Write(p)
	default:
		return f.f.Write(p)
	}
}

// Sync consults the schedule: an ErrSync reports failure after the write
// already reached the file (durability unknown — the caller must treat the
// suffix as untrusted), a SlowSync stalls and then completes — the overload
// case where durability is fine but the disk is the queue — anything else
// passes through.
func (f *File) Sync() error {
	switch ft := f.fs.next(); ft.Kind {
	case ErrSync:
		return fmt.Errorf("fsync: %w", ErrInjected)
	case SlowSync:
		time.Sleep(ft.Delay)
		return f.f.Sync()
	default:
		return f.f.Sync()
	}
}

func (f *File) Read(p []byte) (int, error)                { return f.f.Read(p) }
func (f *File) Seek(off int64, whence int) (int64, error) { return f.f.Seek(off, whence) }
func (f *File) Truncate(size int64) error                 { return f.f.Truncate(size) }
func (f *File) Close() error                              { return f.f.Close() }
func (f *File) Stat() (os.FileInfo, error)                { return f.f.Stat() }

// NetKind enumerates the injectable transport faults.
type NetKind int

const (
	// NetNone passes the request through.
	NetNone NetKind = iota
	// NetDrop fails the round trip without sending — the connection-refused
	// / blackholed-SYN case.
	NetDrop
	// NetDelay sleeps before sending — the congested-link case.
	NetDelay
	// NetSever delivers the response headers and a prefix of the body, then
	// fails the read — the connection-reset-mid-transfer case.
	NetSever
)

// NetFault is one scheduled transport fault.
type NetFault struct {
	Kind NetKind
	// Delay is the NetDelay sleep.
	Delay time.Duration
	// Keep is the number of body bytes a NetSever delivers before failing.
	Keep int64
}

// NetPlan is a deterministic schedule of transport faults keyed by request
// index across one Transport.
type NetPlan struct {
	faults map[uint64]NetFault
}

// NewNetPlan returns an empty schedule.
func NewNetPlan() *NetPlan { return &NetPlan{faults: make(map[uint64]NetFault)} }

// At schedules f at request index step (0-based), returning the plan for
// chaining.
func (p *NetPlan) At(step uint64, f NetFault) *NetPlan {
	p.faults[step] = f
	return p
}

// SeededNetPlan derives a schedule over the first steps request indexes
// from seed: each request independently drops, severs (keeping up to 512
// body bytes) or delays (up to maxDelay) with the given probabilities.
func SeededNetPlan(seed int64, steps uint64, pDrop, pSever, pDelay float64, maxDelay time.Duration) *NetPlan {
	rng := rand.New(rand.NewSource(seed))
	p := NewNetPlan()
	for i := uint64(0); i < steps; i++ {
		switch r := rng.Float64(); {
		case r < pDrop:
			p.At(i, NetFault{Kind: NetDrop})
		case r < pDrop+pSever:
			p.At(i, NetFault{Kind: NetSever, Keep: rng.Int63n(512)})
		case r < pDrop+pSever+pDelay:
			p.At(i, NetFault{Kind: NetDelay, Delay: time.Duration(rng.Int63n(int64(maxDelay) + 1))})
		}
	}
	return p
}

// Transport is a flaky http.RoundTripper: each round trip consumes one
// request index from the schedule and fails, delays or severs as planned.
// Wrap a follower's client with it to prove replication converges through
// an unreliable network.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper

	mu   sync.Mutex
	plan *NetPlan
	step uint64
}

// NewTransport builds a fault-injecting round tripper over plan (nil = no
// faults).
func NewTransport(base http.RoundTripper, plan *NetPlan) *Transport {
	if plan == nil {
		plan = NewNetPlan()
	}
	return &Transport{Base: base, plan: plan}
}

// Step reports how many request indexes have been consumed so far.
func (t *Transport) Step() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.step
}

func (t *Transport) next() NetFault {
	t.mu.Lock()
	defer t.mu.Unlock()
	step := t.step
	t.step++
	return t.plan.faults[step]
}

// RoundTrip implements http.RoundTripper with the scheduled faults.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	ft := t.next()
	switch ft.Kind {
	case NetDrop:
		return nil, fmt.Errorf("drop %s %s: %w", req.Method, req.URL.Path, ErrInjected)
	case NetDelay:
		select {
		case <-time.After(ft.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil || ft.Kind != NetSever {
		return resp, err
	}
	resp.Body = &severedBody{rc: resp.Body, left: ft.Keep}
	return resp, nil
}

// severedBody delivers at most left bytes, then fails the read — the
// mid-body connection reset.
type severedBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *severedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, fmt.Errorf("severed mid-body: %w", ErrInjected)
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		// Report the sever on this read: returning the bytes with a nil
		// error would let a short response complete successfully.
		return n, fmt.Errorf("severed mid-body: %w", ErrInjected)
	}
	return n, err
}

func (b *severedBody) Close() error { return b.rc.Close() }
