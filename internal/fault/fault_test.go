package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// SeededLatencyPlan is deterministic: the same seed yields the same
// schedule, so a stalled-fsync overload scenario replays bit-for-bit.
func TestSeededLatencyPlanDeterministic(t *testing.T) {
	a := SeededLatencyPlan(7, 1000, 0.1, 0.2, 50*time.Millisecond)
	b := SeededLatencyPlan(7, 1000, 0.1, 0.2, 50*time.Millisecond)
	if !reflect.DeepEqual(a.faults, b.faults) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.faults) == 0 {
		t.Fatal("empty schedule at 30% fault probability over 1000 steps")
	}
	c := SeededLatencyPlan(8, 1000, 0.1, 0.2, 50*time.Millisecond)
	if reflect.DeepEqual(a.faults, c.faults) {
		t.Fatal("different seeds produced identical schedules")
	}
	slow, syncs := 0, 0
	for _, f := range a.faults {
		switch f.Kind {
		case SlowWrite:
			slow++
		case SlowSync:
			syncs++
		default:
			t.Fatalf("latency plan scheduled a %v fault", f.Kind)
		}
		if f.Delay < 0 || f.Delay > 50*time.Millisecond {
			t.Fatalf("delay %v outside [0, maxDelay]", f.Delay)
		}
	}
	if slow == 0 || syncs == 0 {
		t.Fatalf("schedule has %d slow writes / %d slow syncs, want both kinds", slow, syncs)
	}
}

// SlowWrite and SlowSync stall the scheduled mutation, then complete it —
// the data lands and no error surfaces.
func TestSlowFaultsStallThenComplete(t *testing.T) {
	plan := NewPlan().
		At(0, Fault{Kind: SlowWrite, Delay: 30 * time.Millisecond}).
		At(2, Fault{Kind: SlowSync, Delay: 30 * time.Millisecond})
	fs := NewFS(plan)
	f, err := fs.Open(filepath.Join(t.TempDir(), "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	if _, err := f.Write([]byte("hello")); err != nil { // index 0: slow write
		t.Fatalf("slow write failed: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow write completed in %v, want >= 30ms stall", d)
	}
	if _, err := f.Write([]byte(" world")); err != nil { // index 1: clean
		t.Fatal(err)
	}
	start = time.Now()
	if err := f.Sync(); err != nil { // index 2: slow sync
		t.Fatalf("slow sync failed: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow sync completed in %v, want >= 30ms stall", d)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if _, err := f.Read(buf); err != nil || string(buf) != "hello world" {
		t.Fatalf("read back %q (%v): slow faults must not lose bytes", buf, err)
	}
	if fs.Step() != 3 {
		t.Fatalf("consumed %d mutation indexes, want 3", fs.Step())
	}
}
