package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientOptions tunes a Client.
type ClientOptions struct {
	// Conns is the connection pool size (default 4). Calls are spread
	// round-robin; calls sharing a connection pipeline, which is what lets
	// the server batch them into single engine passes.
	Conns int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds one call end-to-end (0 = none). A timed-out call
	// kills its connection — the pipeline behind it is dead anyway, and the
	// pool redials on next use.
	CallTimeout time.Duration
}

// Client is a pooled, pipelined binary-protocol client. Safe for concurrent
// use; each call is one request frame and one response frame, correlated in
// FIFO order per connection. Errors surface as *api.Error carrying the same
// codes the HTTP client decodes, so callers dispatch identically.
type Client struct {
	addr string
	opts ClientOptions

	mu     sync.Mutex
	conns  []*clientConn
	next   int
	closed bool
}

// Dial connects a pool to a wire listener address. The first connection is
// established eagerly so an unreachable address fails here, not on first use.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 4
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: opts, conns: make([]*clientConn, opts.Conns)}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

func (c *Client) dial() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	cc := &clientConn{conn: conn, wbuf: make([]byte, 0, 16<<10)}
	go cc.readLoop()
	return cc, nil
}

// Close tears the pool down; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := make([]*clientConn, len(c.conns))
	copy(conns, c.conns)
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.kill(errors.New("wire: client closed"))
		}
	}
	return nil
}

// conn picks the next pool slot round-robin, redialing dead entries.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("wire: client closed")
	}
	i := c.next
	c.next = (c.next + 1) % len(c.conns)
	cc := c.conns[i]
	c.mu.Unlock()
	if cc != nil && !cc.dead() {
		return cc, nil
	}
	fresh, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fresh.kill(errors.New("wire: client closed"))
		return nil, errors.New("wire: client closed")
	}
	if old := c.conns[i]; old != nil && !old.dead() {
		// Another caller already replaced it; use theirs and discard ours.
		c.mu.Unlock()
		fresh.kill(errors.New("wire: redundant dial"))
		return old, nil
	}
	c.conns[i] = fresh
	c.mu.Unlock()
	return fresh, nil
}

// Do sends req on one pooled connection and fills resp with the answer.
// The client assigns req.ID. The returned error is a transport fault, or
// the response's *api.Error for a non-OK status (resp still filled).
func (c *Client) Do(req *Request, resp *Response) error {
	cc, err := c.conn()
	if err != nil {
		return err
	}
	return cc.do(req, resp, c.opts.CallTimeout)
}

// Ping round-trips an OpPing and returns the node's fencing epoch.
func (c *Client) Ping() (epoch uint64, err error) {
	var req Request
	var resp Response
	req.Op = OpPing
	if err := c.Do(&req, &resp); err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// pendingCall is one in-flight request awaiting its FIFO response.
type pendingCall struct {
	op   Opcode
	id   uint64
	resp *Response
	err  error
	done chan struct{}
}

var callPool = sync.Pool{New: func() any { return &pendingCall{done: make(chan struct{}, 1)} }}

// clientConn is one pooled connection: writers serialize on mu (write order
// defines response order), a single reader goroutine correlates responses.
type clientConn struct {
	mu      sync.Mutex
	conn    net.Conn
	wbuf    []byte
	nextID  uint64
	pending []*pendingCall
	head    int
	err     error
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// kill marks the connection dead and fails every pending call.
func (cc *clientConn) kill(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	calls := cc.pending[cc.head:]
	cc.pending = nil
	cc.head = 0
	conn := cc.conn
	cc.mu.Unlock()
	conn.Close()
	for _, call := range calls {
		call.err = err
		call.done <- struct{}{}
	}
}

func (cc *clientConn) do(req *Request, resp *Response, timeout time.Duration) error {
	call := callPool.Get().(*pendingCall)
	call.op = req.Op
	call.resp = resp
	call.err = nil

	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		callPool.Put(call)
		return err
	}
	cc.nextID++
	req.ID = cc.nextID
	call.id = req.ID
	buf, err := AppendRequest(cc.wbuf[:0], req)
	if err != nil {
		cc.mu.Unlock()
		callPool.Put(call)
		return err
	}
	cc.wbuf = buf[:0]
	cc.pending = append(cc.pending, call)
	_, werr := cc.conn.Write(buf)
	cc.mu.Unlock()
	if werr != nil {
		cc.kill(fmt.Errorf("wire: write: %w", werr))
		// kill completed this call (it was pending); drain its signal.
		<-call.done
		err := call.err
		callPool.Put(call)
		return err
	}

	if timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case <-call.done:
			t.Stop()
		case <-t.C:
			// The pipeline is stuck; the connection (and every call behind
			// this one) is unrecoverable. kill always completes the call,
			// so the wait below is bounded.
			cc.kill(fmt.Errorf("wire: call timed out after %v", timeout))
			<-call.done
		}
	} else {
		<-call.done
	}
	err = call.err
	callPool.Put(call)
	if err != nil {
		return err
	}
	return resp.Err()
}

// readLoop is the connection's single reader: frames arrive in the order
// requests were written, each completing the oldest pending call.
func (cc *clientConn) readLoop() {
	buf := make([]byte, 0, 64<<10)
	for {
		if cap(buf)-len(buf) < 4<<10 {
			grown := make([]byte, len(buf), cap(buf)*2)
			copy(grown, buf)
			buf = grown
		}
		cc.mu.Lock()
		conn := cc.conn
		cc.mu.Unlock()
		n, err := conn.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		for {
			payload, n, ok, ferr := NextFrame(buf)
			if ferr != nil {
				cc.kill(ferr)
				return
			}
			if !ok {
				break
			}
			call := cc.pop()
			if call == nil {
				cc.kill(errors.New("wire: response with no pending call"))
				return
			}
			if perr := ParseResponse(payload, call.op, call.resp); perr != nil {
				call.err = perr
				call.done <- struct{}{}
				cc.kill(perr)
				return
			}
			if call.resp.ID != call.id {
				call.err = fmt.Errorf("wire: response id %d for call %d", call.resp.ID, call.id)
				call.done <- struct{}{}
				cc.kill(call.err)
				return
			}
			call.done <- struct{}{}
			buf = buf[:copy(buf, buf[n:])]
		}
		if err != nil {
			cc.kill(fmt.Errorf("wire: read: %w", err))
			return
		}
	}
}

// pop removes the oldest pending call.
func (cc *clientConn) pop() *pendingCall {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.head >= len(cc.pending) {
		return nil
	}
	call := cc.pending[cc.head]
	cc.pending[cc.head] = nil
	cc.head++
	if cc.head == len(cc.pending) {
		cc.pending = cc.pending[:0]
		cc.head = 0
	}
	return call
}
